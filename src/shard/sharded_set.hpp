// lfbst shard: range-partitioned sharded front-end over any of the
// repo's concurrent sets — the first layer that scales the
// reproduction *out* instead of just measuring it.
//
// Motivation: however few CASes the NM-BST needs per operation, a
// single instance ultimately bottlenecks on cache-line contention
// around the root-adjacent nodes (every seek starts there). A
// sharded_set splits the key domain into S contiguous ranges (S a
// power of two) and gives each range its own independent tree — its
// own reclaimer domain, its own node pools, its own obs metrics
// registry — so contention divides by S while every single-key
// operation stays exactly as linearizable as the underlying tree: a
// key maps to one shard for the sharded set's whole lifetime, and the
// shard *is* the linearization authority for that key.
//
// Composition: the inner tree is a template parameter, so the front-end
// wraps NM-BST, EFRB, HJ (or any ConcurrentSet with an integral
// key_type) with whatever Reclaimer/Stats/Tagging/Atomics policies the
// tree was built with — including dsched::sched_atomics, which lets the
// deterministic scheduler explore interleavings *through* the shard
// layer (tests/shard/sharded_dsched_test.cpp).
//
// Batched operations (insert_batch / erase_batch / contains_batch)
// take a vector of keys, group them by shard with one stable counting
// sort, and execute each shard's group consecutively — the router and
// each shard's upper tree levels are touched once per group instead of
// once per key. Results come back in input order. A batch is NOT
// atomic: each element is its own linearizable operation whose
// linearization point lies somewhere inside the batch call (the
// per-element guarantee the lincheck and dsched suites pin down).
// Elements targeting the same shard apply in input order.
//
// range_scan(lo, hi) / range_scan_closed(lo, hi) walk the shards that
// intersect the interval in splitter order and stitch their ordered
// scans into one sorted sequence. When the inner tree provides a
// concurrent scan (nm_tree::range_scan), each per-shard scan runs
// *while writers run* — no quiescence anywhere; the stitched result
// carries the per-shard conservative-interval contract (every key
// present in the whole call's interval appears, every key absent
// throughout does not — see docs/SHARDING.md for the cross-shard
// story). Inner trees without a concurrent scan (EFRB/HJ baselines)
// fall back to their quiescent for_each_slow, restoring the old
// visited-shards-must-be-quiescent precondition for them only.
//
// Metrics: when the inner tree records per-instance metrics
// (obs::recording), merged_counters() / merged_latency_histogram() /
// merged_seek_depth_histogram() fold the S registries with the obs
// merge algebra (counter-wise and bucket-wise addition), so the sharded
// instance reports one attribution exactly like a single tree does.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "common/cacheline.hpp"
#include "core/concurrent_set.hpp"
#include "core/stats.hpp"
#include "obs/histogram.hpp"
#include "obs/metrics.hpp"
#include "shard/router.hpp"

namespace lfbst::shard {

/// Trees whose Stats policy is the per-instance recording registry —
/// only those can offer merged metrics across shards.
template <typename Tree>
concept recording_stats_tree =
    std::is_same_v<typename Tree::stats_policy, obs::recording>;

template <typename Tree, typename Router = range_router<typename Tree::key_type>>
class sharded_set {
 public:
  using key_type = typename Tree::key_type;
  using tree_type = Tree;
  using router_type = Router;

  static constexpr const char* algorithm_name = "Sharded";
  static constexpr std::size_t default_shard_count = 8;

  /// Default: 8 shards split evenly over the key type's whole domain.
  sharded_set() : sharded_set(Router(default_shard_count)) {}

  /// shard_count shards split evenly over [lo, hi) (power of two).
  sharded_set(std::size_t shard_count, key_type lo, key_type hi)
      : sharded_set(Router(shard_count, lo, hi)) {}

  explicit sharded_set(Router router) : router_(std::move(router)) {
    shards_.reserve(router_.shard_count());
    for (std::size_t i = 0; i < router_.shard_count(); ++i) {
      shards_.push_back(std::make_unique<slot>());
    }
  }

  sharded_set(const sharded_set&) = delete;
  sharded_set& operator=(const sharded_set&) = delete;

  // --- single-key operations: route once, delegate ------------------

  [[nodiscard]] bool contains(const key_type& key) const {
    return shards_[router_.shard_of(key)]->tree.contains(key);
  }

  bool insert(const key_type& key) {
    return shards_[router_.shard_of(key)]->tree.insert(key);
  }

  bool erase(const key_type& key) {
    return shards_[router_.shard_of(key)]->tree.erase(key);
  }

  // --- batched operations -------------------------------------------
  // One stable counting sort groups the keys by shard; each group runs
  // back-to-back so router and per-shard cache traffic amortize over
  // the group. results[i] is what op(keys[i]) would have returned;
  // same-shard elements apply in input order.

  [[nodiscard]] std::vector<bool> contains_batch(
      const std::vector<key_type>& keys) const {
    return batch_apply(*this, keys, [](const Tree& t, const key_type& k) {
      return t.contains(k);
    });
  }

  std::vector<bool> insert_batch(const std::vector<key_type>& keys) {
    return batch_apply(*this, keys, [](Tree& t, const key_type& k) {
      return t.insert(k);
    });
  }

  std::vector<bool> erase_batch(const std::vector<key_type>& keys) {
    return batch_apply(*this, keys, [](Tree& t, const key_type& k) {
      return t.erase(k);
    });
  }

  // --- cross-shard ordered scan --------------------------------------

  /// All keys in the half-open interval [lo, hi), sorted. Visits only
  /// the shards whose range intersects [lo, hi), in splitter order
  /// (== key order). Runs concurrently with writers when the inner
  /// tree has a concurrent scan; each key behaves like an individual
  /// contains() linearized inside the call, so every key present for
  /// the whole call appears and every key absent throughout does not.
  /// Note [lo, hi) cannot name the key domain's maximum value — use
  /// range_scan_closed to reach it.
  [[nodiscard]] std::vector<key_type> range_scan(const key_type& lo,
                                                 const key_type& hi) const {
    std::vector<key_type> out;
    if (!(lo < hi)) return out;
    // lo < hi makes hi - 1 safe: it cannot underflow past lo.
    const std::size_t first = router_.shard_of(lo);
    const std::size_t last = router_.shard_of(static_cast<key_type>(hi - 1));
    for (std::size_t s = first; s <= last; ++s) {
      scan_shard(shards_[s]->tree, lo, hi, /*closed=*/false, out);
    }
    return out;
  }

  /// All keys in the closed interval [lo, hi], sorted — the form that
  /// can return the key domain's maximum (the half-open bound above
  /// stops one short of it by construction). Same concurrency contract
  /// as range_scan.
  [[nodiscard]] std::vector<key_type> range_scan_closed(
      const key_type& lo, const key_type& hi) const {
    std::vector<key_type> out;
    if (hi < lo) return out;
    const std::size_t first = router_.shard_of(lo);
    const std::size_t last = router_.shard_of(hi);
    for (std::size_t s = first; s <= last; ++s) {
      scan_shard(shards_[s]->tree, lo, hi, /*closed=*/true, out);
    }
    return out;
  }

  /// One page of a bounded scan plus how to get the next one. When
  /// truncated, resume_key is the smallest key the page did NOT cover:
  /// range_scan_limit(resume_key, hi, n) continues exactly where this
  /// page stopped, with no key skipped or repeated across pages.
  /// `truncated` is conservative — a full page reports truncated even
  /// when the range happened to end at the boundary; the follow-up call
  /// then returns an empty, non-truncated page.
  struct scan_page {
    std::vector<key_type> keys;
    bool truncated = false;
    key_type resume_key{};
  };

  /// Bounded form of range_scan: the up-to-max_items smallest keys of
  /// [lo, hi), sorted, same conservative-interval contract. One scan of
  /// a huge subrange costs O(max_items) instead of O(range) — the form
  /// the network server pages responses with so a big scan cannot
  /// head-of-line-block a connection.
  [[nodiscard]] scan_page range_scan_limit(const key_type& lo,
                                           const key_type& hi,
                                           std::size_t max_items) const {
    scan_page page;
    if (!(lo < hi)) return page;
    if (max_items == 0) {  // zero budget: pure continuation marker
      page.truncated = true;
      page.resume_key = lo;
      return page;
    }
    const std::size_t first = router_.shard_of(lo);
    const std::size_t last = router_.shard_of(static_cast<key_type>(hi - 1));
    for (std::size_t s = first; s <= last; ++s) {
      const std::size_t remaining = max_items - page.keys.size();
      const std::size_t before = page.keys.size();
      scan_shard_limit(shards_[s]->tree, lo, hi, remaining, page.keys);
      if (page.keys.size() - before == remaining) {
        // Budget filled. The page holds the smallest `max_items` keys
        // seen; whether more remain is unknown without scanning on, so
        // report truncated and resume just above the last emitted key —
        // unless that key is hi - 1, where [resume, hi) would be empty
        // by construction (this also keeps resume_key + 1 from
        // overflowing at the key domain's maximum).
        const key_type last_key = page.keys.back();
        if (!(last_key < static_cast<key_type>(hi - 1))) return page;
        page.truncated = true;
        page.resume_key = static_cast<key_type>(last_key + 1);
        return page;
      }
    }
    return page;
  }

  // --- quiescent observers -------------------------------------------

  [[nodiscard]] std::size_t size_slow() const {
    std::size_t n = 0;
    for (const auto& s : shards_) n += s->tree.size_slow();
    return n;
  }

  [[nodiscard]] bool empty_slow() const { return size_slow() == 0; }

  /// In-order traversal across all shards (splitter order == key order).
  template <typename F>
  void for_each_slow(F&& fn) const {
    for (const auto& s : shards_) s->tree.for_each_slow(fn);
  }

  /// Every shard's own structural validator, plus the shard layer's
  /// placement invariant: each key lives in the shard the router maps
  /// it to. Empty string when healthy.
  [[nodiscard]] std::string validate() const {
    std::string err;
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      const std::string inner = shards_[i]->tree.validate();
      if (!inner.empty()) {
        err += "shard " + std::to_string(i) + ": " + inner;
      }
      std::size_t misplaced = 0;
      shards_[i]->tree.for_each_slow([&](const key_type& k) {
        if (router_.shard_of(k) != i) ++misplaced;
      });
      if (misplaced != 0) {
        err += "shard " + std::to_string(i) + ": " +
               std::to_string(misplaced) + " keys routed elsewhere; ";
      }
    }
    return err;
  }

  // --- structure access ----------------------------------------------

  [[nodiscard]] std::size_t shard_count() const noexcept {
    return shards_.size();
  }
  [[nodiscard]] const Router& router() const noexcept { return router_; }
  [[nodiscard]] Tree& shard(std::size_t i) noexcept {
    return shards_[i]->tree;
  }
  [[nodiscard]] const Tree& shard(std::size_t i) const noexcept {
    return shards_[i]->tree;
  }

  // --- merged metrics (obs::recording inner trees only) ---------------
  // The S per-shard registries fold with the obs merge algebra into the
  // same shapes a single instrumented tree reports.

  /// Counter-wise sum of every shard's metrics snapshot.
  [[nodiscard]] obs::metrics_snapshot merged_counters() const
    requires recording_stats_tree<Tree>
  {
    obs::metrics_snapshot merged;
    for (const auto& s : shards_) {
      merged.merge(s->tree.stats().counters().snapshot());
    }
    return merged;
  }

  /// One shard's counter snapshot, unmerged — the per-shard view the
  /// telemetry sampler turns into load-share/imbalance gauges
  /// (obs/telemetry.hpp; ROADMAP item 3 consumes those).
  [[nodiscard]] obs::metrics_snapshot shard_counters(std::size_t i) const
    requires recording_stats_tree<Tree>
  {
    return shards_[i]->tree.stats().counters().snapshot();
  }

  /// Visits every shard's recording stats instance in shard order —
  /// the attachment hook for cross-shard sinks (one trace_log /
  /// key_heatmap shared by all shards).
  template <typename F>
  void for_each_shard_stats(F&& fn) const
    requires recording_stats_tree<Tree>
  {
    for (const auto& s : shards_) fn(s->tree.stats());
  }

  /// Bucket-wise merge of every shard's latency histogram for `kind`.
  /// Safe concurrently with writers (racy-monotone, obs/histogram.hpp);
  /// exact at quiescence.
  [[nodiscard]] obs::histogram merged_latency_histogram(
      stats::op_kind kind) const
    requires recording_stats_tree<Tree>
  {
    obs::histogram merged;
    for (const auto& s : shards_) {
      merged.merge(s->tree.stats().latency_histogram(kind));
    }
    return merged;
  }

  /// Bucket-wise merge of every shard's seek-depth histogram. Depths
  /// are per-shard (each shard is its own, shallower tree); the merged
  /// distribution is what the whole front-end makes a seek traverse.
  [[nodiscard]] obs::histogram merged_seek_depth_histogram() const
    requires recording_stats_tree<Tree>
  {
    obs::histogram merged;
    for (const auto& s : shards_) {
      merged.merge(s->tree.stats().seek_depth_histogram());
    }
    return merged;
  }

 private:
  /// One shard: the tree on its own cache lines so adjacent shards'
  /// hot members (head pointers, stats) never share a line.
  struct alignas(cacheline_size) slot {
    Tree tree;
  };

  /// Per-shard scan dispatch: the inner tree's concurrent ordered scan
  /// when it has one, else its quiescent walk (which keeps EFRB/HJ
  /// compositions compiling, at the price of their old quiescence
  /// precondition). The bounds are passed through unchanged — the tree
  /// filters inherently, and a shard never holds keys outside its
  /// router range, so no double filtering happens.
  static void scan_shard(const Tree& tree, const key_type& lo,
                         const key_type& hi, bool closed,
                         std::vector<key_type>& out) {
    if constexpr (requires {
                    tree.range_scan(lo, hi);
                    tree.range_scan_closed(lo, hi);
                  }) {
      const std::vector<key_type> part = closed
                                             ? tree.range_scan_closed(lo, hi)
                                             : tree.range_scan(lo, hi);
      out.insert(out.end(), part.begin(), part.end());
    } else {
      tree.for_each_slow([&](const key_type& k) {
        if (k < lo) return;
        if (closed ? !(hi < k) : (k < hi)) out.push_back(k);
      });
    }
  }

  /// Bounded per-shard scan dispatch: the inner tree's budgeted scan
  /// when it has one (stops walking once the page fills), else the
  /// quiescent walk trimmed to the budget — for_each_slow visits in
  /// order, so the first `max_items` in-range keys are the smallest.
  static void scan_shard_limit(const Tree& tree, const key_type& lo,
                               const key_type& hi, std::size_t max_items,
                               std::vector<key_type>& out) {
    if constexpr (requires { tree.range_scan(lo, hi, max_items); }) {
      const std::vector<key_type> part = tree.range_scan(lo, hi, max_items);
      out.insert(out.end(), part.begin(), part.end());
    } else {
      std::size_t budget = max_items;
      tree.for_each_slow([&](const key_type& k) {
        if (budget == 0 || k < lo || !(k < hi)) return;
        out.push_back(k);
        --budget;
      });
    }
  }

  /// Shared batch engine; `Self` deduces const for contains_batch and
  /// non-const for the mutating batches.
  template <typename Self, typename Op>
  static std::vector<bool> batch_apply(Self& self,
                                       const std::vector<key_type>& keys,
                                       Op&& op) {
    const std::size_t n = keys.size();
    const std::size_t nshards = self.shards_.size();
    std::vector<bool> results(n);
    if (n == 0) return results;

    // Stable counting sort of key indices by shard id.
    std::vector<std::uint32_t> shard_ids(n);
    std::vector<std::size_t> group_start(nshards + 1, 0);
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t s = self.router_.shard_of(keys[i]);
      shard_ids[i] = static_cast<std::uint32_t>(s);
      ++group_start[s + 1];
    }
    for (std::size_t s = 0; s < nshards; ++s) {
      group_start[s + 1] += group_start[s];
    }
    std::vector<std::uint32_t> order(n);
    {
      std::vector<std::size_t> cursor(group_start.begin(),
                                      group_start.end() - 1);
      for (std::size_t i = 0; i < n; ++i) {
        order[cursor[shard_ids[i]]++] = static_cast<std::uint32_t>(i);
      }
    }

    // Execute per shard group; results land at the original positions.
    for (std::size_t s = 0; s < nshards; ++s) {
      auto& tree = self.shards_[s]->tree;
      for (std::size_t j = group_start[s]; j < group_start[s + 1]; ++j) {
        const std::uint32_t i = order[j];
        results[i] = op(tree, keys[i]);
      }
    }
    return results;
  }

  Router router_;
  std::vector<std::unique_ptr<slot>> shards_;
};

}  // namespace lfbst::shard
