// lfbst shard: range-partitioned sharded front-end over any of the
// repo's concurrent sets — the first layer that scales the
// reproduction *out* instead of just measuring it.
//
// Motivation: however few CASes the NM-BST needs per operation, a
// single instance ultimately bottlenecks on cache-line contention
// around the root-adjacent nodes (every seek starts there). A
// sharded_set splits the key domain into S contiguous ranges (S a
// power of two) and gives each range its own independent tree — its
// own reclaimer domain, its own node pools, its own obs metrics
// registry — so contention divides by S while every single-key
// operation stays exactly as linearizable as the underlying tree: a
// key maps to one logical shard at every linearization point, and that
// shard *is* the linearization authority for the key.
//
// Composition: the inner tree is a template parameter, so the front-end
// wraps NM-BST, EFRB, HJ (or any ConcurrentSet with an integral
// key_type) with whatever Reclaimer/Stats/Tagging/Atomics policies the
// tree was built with — including dsched::sched_atomics, which lets the
// deterministic scheduler explore interleavings *through* the shard
// layer (tests/shard/sharded_dsched_test.cpp). The shard layer's own
// atomics reuse the tree's policy (tree_atomics below), so migrations
// are schedulable too.
//
// Batched operations (insert_batch / erase_batch / contains_batch)
// take a vector of keys, group them by shard with one stable counting
// sort, and execute each shard's group consecutively — the router and
// each shard's upper tree levels are touched once per group instead of
// once per key. Results come back in input order. A batch is NOT
// atomic: each element is its own linearizable operation whose
// linearization point lies somewhere inside the batch call (the
// per-element guarantee the lincheck and dsched suites pin down).
// Elements targeting the same shard apply in input order.
//
// range_scan(lo, hi) / range_scan_closed(lo, hi) walk the shards that
// intersect the interval in splitter order and stitch their ordered
// scans into one sorted sequence. When the inner tree provides a
// concurrent scan (nm_tree::range_scan), each per-shard scan runs
// *while writers run* — no quiescence anywhere; the stitched result
// carries the per-shard conservative-interval contract (every key
// present in the whole call's interval appears, every key absent
// throughout does not — see docs/SHARDING.md for the cross-shard
// story). Inner trees without a concurrent scan (EFRB/HJ baselines)
// fall back to their quiescent for_each_slow, restoring the old
// visited-shards-must-be-quiescent precondition for them only.
//
// Online subrange migration (docs/SHARDING.md has the full protocol):
// once arm_rebalancing() is called, migrate_splitter(boundary, key)
// moves one router boundary while readers and writers keep running.
// The partition is versioned — ops load an immutable router snapshot
// through one atomic pointer — and a seqlock-published migration
// record opens a brief dual-routing window for the moving subrange:
// covered writers take a striped per-key lock and consult both the
// donor and the recipient tree, covered reads stay lock-free by
// reading donor-then-recipient in the order that matches the drain's
// insert-before-erase move. Two generation-parity quiescence waits
// (an asymmetric op gate: striped counters on the op side, one
// generation flip + drain wait on the migration side) fence the window
// so that every operation either sees a stable partition or sees the
// record; no operation ever blocks on the gate itself. The drain moves
// keys with the concurrent bounded range_scan, one striped lock per
// key, so a key is in exactly one logical shard at every linearization
// point throughout.
//
// Metrics: when the inner tree records per-instance metrics
// (obs::recording), merged_counters() / merged_latency_histogram() /
// merged_seek_depth_histogram() fold the S registries with the obs
// merge algebra (counter-wise and bucket-wise addition), so the sharded
// instance reports one attribution exactly like a single tree does.
// The shard layer's own counters (migrations, keys_migrated,
// dual_route_window_ns) fold in through add_layer_counters().
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "common/atomics_policy.hpp"
#include "common/cacheline.hpp"
#include "common/thread_id.hpp"
#include "core/concurrent_set.hpp"
#include "core/stats.hpp"
#include "obs/histogram.hpp"
#include "obs/metrics.hpp"
#include "shard/numa.hpp"
#include "shard/router.hpp"

namespace lfbst::shard {

/// Trees whose Stats policy is the per-instance recording registry —
/// only those can offer merged metrics across shards.
template <typename Tree>
concept recording_stats_tree =
    std::is_same_v<typename Tree::stats_policy, obs::recording>;

/// Trees with a concurrent bounded ordered scan — the drain primitive
/// online migration is built from.
template <typename Tree>
concept migratable_tree = requires(const Tree& t, typename Tree::key_type k) {
  {
    t.range_scan(k, k, std::size_t{1})
  } -> std::convertible_to<std::vector<typename Tree::key_type>>;
};

/// The range router routes and stitches in *numeric* key order
/// (raw `<` over the integral key — router.hpp), silently assuming
/// the per-shard tree agrees. A tree ordered by a non-default
/// Compare (std::greater, scramble_less, ...) would accept every
/// routed key but break validate()'s placement check and interleave
/// stitched scans — quiet corruption, so sharded_set rejects the
/// combination at compile time. Trees that do not export key_compare
/// predate the check and are presumed numeric-ordered.
template <typename Tree>
struct router_order_compatible : std::true_type {};

template <typename Tree>
  requires requires { typename Tree::key_compare; }
struct router_order_compatible<Tree>
    : std::bool_constant<std::is_same_v<typename Tree::key_compare,
                                        std::less<typename Tree::key_type>>> {
};

template <typename Tree>
inline constexpr bool router_order_compatible_v =
    router_order_compatible<Tree>::value;

namespace detail {

/// The inner tree's atomics policy when it exports one (so the shard
/// layer's spin loops become dsched schedule points under
/// sched_atomics compositions); atomics::native otherwise.
template <typename Tree>
struct tree_atomics {
  using type = atomics::native;
};

template <typename Tree>
  requires requires { typename Tree::atomics_policy; }
struct tree_atomics<Tree> {
  using type = typename Tree::atomics_policy;
};

}  // namespace detail

template <typename Tree,
          typename Router = range_router<typename Tree::key_type>>
class sharded_set {
 public:
  using key_type = typename Tree::key_type;
  using tree_type = Tree;
  using router_type = Router;
  using atomics_policy = typename detail::tree_atomics<Tree>::type;

  static_assert(router_order_compatible_v<Tree>,
                "sharded_set's range router partitions and stitches in "
                "numeric key order, but this tree orders its keys with a "
                "non-default Compare — every key would land in a shard "
                "chosen by an order the tree does not use (mis-sharding). "
                "Apply key transforms ABOVE the router instead: "
                "scrambled_set<sharded_set<T>> (src/core/key_scramble.hpp).");

  static constexpr const char* algorithm_name = "Sharded";
  static constexpr std::size_t default_shard_count = 8;

  /// A live migration's shape: the subrange [lo, hi) currently being
  /// moved from shard `src` into adjacent shard `dst`.
  struct migration {
    key_type lo{};
    key_type hi{};
    std::size_t src = 0;
    std::size_t dst = 0;

    [[nodiscard]] bool covers(const key_type& k) const noexcept {
      return !(k < lo) && k < hi;
    }
  };

  /// Default: 8 shards split evenly over the key type's whole domain.
  sharded_set() : sharded_set(Router(default_shard_count)) {}

  /// shard_count shards split evenly over [lo, hi) (power of two).
  sharded_set(std::size_t shard_count, key_type lo, key_type hi)
      : sharded_set(Router(shard_count, lo, hi)) {}

  explicit sharded_set(Router router, numa::policy placement = {})
      : numa_(placement) {
    const std::size_t count = router.shard_count();
    shards_.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      shards_.push_back(make_slot(numa_.node_for_shard(i, count)));
    }
    routers_.push_back(std::make_unique<Router>(std::move(router)));
    router_.store(routers_.back().get(), std::memory_order_seq_cst);
  }

  sharded_set(const sharded_set&) = delete;
  sharded_set& operator=(const sharded_set&) = delete;

  // --- single-key operations: route once, delegate ------------------

  [[nodiscard]] bool contains(const key_type& key) const {
    if (!armed()) {
      return shards_[current_router().shard_of(key)]->tree.contains(key);
    }
    op_gate_guard gate(*this);
    migration rec;
    const bool dual = read_migration(rec);
    return contains_routed(dual ? &rec : nullptr,
                           current_router().shard_of(key), key);
  }

  bool insert(const key_type& key) {
    if (!armed()) {
      return shards_[current_router().shard_of(key)]->tree.insert(key);
    }
    op_gate_guard gate(*this);
    migration rec;
    const bool dual = read_migration(rec);
    return insert_routed(dual ? &rec : nullptr,
                         current_router().shard_of(key), key);
  }

  bool erase(const key_type& key) {
    if (!armed()) {
      return shards_[current_router().shard_of(key)]->tree.erase(key);
    }
    op_gate_guard gate(*this);
    migration rec;
    const bool dual = read_migration(rec);
    return erase_routed(dual ? &rec : nullptr,
                        current_router().shard_of(key), key);
  }

  // --- batched operations -------------------------------------------
  // One stable counting sort groups the keys by shard id; each group
  // runs back-to-back so router and per-shard cache traffic amortize
  // over the group. results[i] is what op(keys[i]) would have returned;
  // same-shard elements apply in input order. The whole batch runs
  // under one gate entry and one migration-record snapshot: the gate
  // blocks a migration's quiescence waits while the batch is inside,
  // so the snapshot stays valid for every element.

  [[nodiscard]] std::vector<bool> contains_batch(
      const std::vector<key_type>& keys) const {
    return batch_apply(*this, keys,
                       [](const sharded_set& self, const migration* rec,
                          std::size_t s, const key_type& k) {
                         return self.contains_routed(rec, s, k);
                       });
  }

  std::vector<bool> insert_batch(const std::vector<key_type>& keys) {
    return batch_apply(*this, keys,
                       [](sharded_set& self, const migration* rec,
                          std::size_t s, const key_type& k) {
                         return self.insert_routed(rec, s, k);
                       });
  }

  std::vector<bool> erase_batch(const std::vector<key_type>& keys) {
    return batch_apply(*this, keys,
                       [](sharded_set& self, const migration* rec,
                          std::size_t s, const key_type& k) {
                         return self.erase_routed(rec, s, k);
                       });
  }

  // --- cross-shard ordered scan --------------------------------------

  /// All keys in the half-open interval [lo, hi), sorted. Visits only
  /// the shards whose range intersects [lo, hi), in splitter order
  /// (== key order). Runs concurrently with writers when the inner
  /// tree has a concurrent scan; each key behaves like an individual
  /// contains() linearized inside the call, so every key present for
  /// the whole call appears and every key absent throughout does not —
  /// including across a concurrent subrange migration (scan_impl
  /// widens the shard window to the migration's donor/recipient and
  /// deduplicates keys caught mid-move).
  /// Note [lo, hi) cannot name the key domain's maximum value — use
  /// range_scan_closed to reach it.
  [[nodiscard]] std::vector<key_type> range_scan(const key_type& lo,
                                                 const key_type& hi) const {
    std::vector<key_type> out;
    if (!(lo < hi)) return out;
    // lo < hi makes hi - 1 safe: it cannot underflow past lo.
    scan_impl(lo, hi, /*closed=*/false, out);
    return out;
  }

  /// All keys in the closed interval [lo, hi], sorted — the form that
  /// can return the key domain's maximum (the half-open bound above
  /// stops one short of it by construction). Same concurrency contract
  /// as range_scan.
  [[nodiscard]] std::vector<key_type> range_scan_closed(
      const key_type& lo, const key_type& hi) const {
    std::vector<key_type> out;
    if (hi < lo) return out;
    scan_impl(lo, hi, /*closed=*/true, out);
    return out;
  }

  /// One page of a bounded scan plus how to get the next one. When
  /// truncated, resume_key is the smallest key the page did NOT cover:
  /// range_scan_limit(resume_key, hi, n) continues exactly where this
  /// page stopped, with no key skipped or repeated across pages.
  /// `truncated` is conservative — a full page reports truncated even
  /// when the range happened to end at the boundary; the follow-up call
  /// then returns an empty, non-truncated page.
  struct scan_page {
    std::vector<key_type> keys;
    bool truncated = false;
    key_type resume_key{};
  };

  /// Bounded form of range_scan: the up-to-max_items smallest keys of
  /// [lo, hi), sorted, same conservative-interval contract. One scan of
  /// a huge subrange costs O(max_items) instead of O(range) — the form
  /// the network server pages responses with so a big scan cannot
  /// head-of-line-block a connection. During a migration the page costs
  /// O(max_items) per visited shard before trimming.
  [[nodiscard]] scan_page range_scan_limit(const key_type& lo,
                                           const key_type& hi,
                                           std::size_t max_items) const {
    scan_page page;
    if (!(lo < hi)) return page;
    if (max_items == 0) {  // zero budget: pure continuation marker
      page.truncated = true;
      page.resume_key = lo;
      return page;
    }
    std::optional<op_gate_guard> gate;
    migration rec;
    bool dual = false;
    if (armed()) {
      gate.emplace(*this);
      dual = read_migration(rec) && rec.lo < hi && lo < rec.hi;
    }
    const Router& r = current_router();
    std::size_t first = r.shard_of(lo);
    std::size_t last = r.shard_of(static_cast<key_type>(hi - 1));
    if (!dual) {
      bool filled = false;
      for (std::size_t s = first; s <= last && !filled; ++s) {
        const std::size_t remaining = max_items - page.keys.size();
        const std::size_t before = page.keys.size();
        scan_shard_limit(shards_[s]->tree, lo, hi, remaining, page.keys);
        filled = page.keys.size() - before == remaining;
      }
      if (gate.has_value()) {
        // Same late-record repair as scan_impl: a record published
        // after our entry read cannot have started its drain (its
        // quiesce blocks on this gate entry), but dual-path inserts of
        // new covered keys already land in the recipient, so the
        // stitch can be out of splitter order. Sort before the resume
        // arithmetic below relies on back() being the maximum.
        migration late;
        if (read_migration(late) && late.lo < hi && lo < late.hi) {
          std::sort(page.keys.begin(), page.keys.end());
          page.keys.erase(
              std::unique(page.keys.begin(), page.keys.end()),
              page.keys.end());
        }
      }
      if (filled && !page.keys.empty()) {
        // Budget filled. The page holds the smallest `max_items` keys
        // seen; whether more remain is unknown without scanning on, so
        // report truncated and resume just above the last emitted key
        // — unless that key is hi - 1, where [resume, hi) would be
        // empty by construction (this also keeps resume_key + 1 from
        // overflowing at the key domain's maximum).
        const key_type last_key = page.keys.back();
        if (last_key < static_cast<key_type>(hi - 1)) {
          page.truncated = true;
          page.resume_key = static_cast<key_type>(last_key + 1);
        }
      }
      return page;
    }
    // Migration in flight and overlapping [lo, hi): give every visited
    // shard the full budget (a moving key may surface in donor or
    // recipient), widen to the migration's shards, merge, trim.
    first = std::min(first, std::min(rec.src, rec.dst));
    last = std::max(last, std::max(rec.src, rec.dst));
    for (std::size_t s = first; s <= last; ++s) {
      scan_shard_limit(shards_[s]->tree, lo, hi, max_items, page.keys);
    }
    if (rec.dst < rec.src) {
      scan_shard_limit(shards_[rec.dst]->tree, lo, hi, max_items, page.keys);
    }
    std::sort(page.keys.begin(), page.keys.end());
    page.keys.erase(std::unique(page.keys.begin(), page.keys.end()),
                    page.keys.end());
    if (page.keys.size() >= max_items) {
      page.keys.resize(max_items);
      const key_type last_key = page.keys.back();
      if (last_key < static_cast<key_type>(hi - 1)) {
        page.truncated = true;
        page.resume_key = static_cast<key_type>(last_key + 1);
      }
    }
    return page;
  }

  // --- online subrange migration -------------------------------------

  /// Enables the migration-aware operation paths. Must happen-before
  /// any concurrent operation (arm, then spawn the op threads): the
  /// flag itself is read without synchronization on the hot path, so
  /// arming under load is not supported. Once armed, every operation
  /// pays one gate round-trip (two uncontended striped fetch_adds).
  void arm_rebalancing() noexcept {
    armed_.store(true, std::memory_order_seq_cst);
  }

  [[nodiscard]] bool rebalancing_armed() const noexcept { return armed(); }

  /// Moves router boundary `boundary` (1 <= boundary < shard_count) to
  /// `new_splitter` while readers and writers keep running, migrating
  /// the keys of the subrange that changed hands between the two
  /// adjacent shards. The splitter is quantized to the router's bucket
  /// grid; a request that quantizes onto an existing boundary (or out
  /// of the boundary's legal interval) is a no-op. Returns the number
  /// of keys migrated. Requires arm_rebalancing() beforehand. Safe to
  /// call from any thread; concurrent migrations serialize.
  std::size_t migrate_splitter(std::size_t boundary, key_type new_splitter)
    requires migratable_tree<Tree>
  {
    LFBST_ASSERT(armed(), "arm_rebalancing() before migrate_splitter()");
    std::lock_guard<std::mutex> serialize(migrate_mutex_);
    const Router& cur = current_router();
    const std::size_t count = cur.shard_count();
    LFBST_ASSERT(boundary >= 1 && boundary < count,
                 "migrate_splitter boundary out of range");
    const key_type q = cur.quantize_down(new_splitter);
    const key_type old_splitter = cur.splitter(boundary);
    if (q == old_splitter) return 0;
    if (!(cur.splitter(boundary - 1) < q)) return 0;
    if (boundary + 1 < count && !(q < cur.splitter(boundary + 1))) return 0;

    // The subrange changing hands and its direction. Lowering the
    // splitter grows shard `boundary` downward (donor is the left
    // neighbor); raising it shrinks shard `boundary` (donor).
    migration m;
    if (q < old_splitter) {
      m = migration{q, old_splitter, boundary - 1, boundary};
    } else {
      m = migration{old_splitter, q, boundary, boundary - 1};
    }

    const auto t0 = std::chrono::steady_clock::now();
    // 1. Publish the record. 2. Quiesce: every operation still running
    // after this entered the gate after the record was visible, so it
    // routes the subrange through the dual path. Only now is it safe to
    // change where the router sends covered keys.
    publish_migration(m);
    quiesce_gate();
    // 3. Flip the partition. Old router versions stay alive in
    // routers_ until the post-drain quiesce proves no reader holds one.
    auto next = std::make_unique<Router>(cur.with_splitter(boundary, q));
    const Router* next_raw = next.get();
    routers_.push_back(std::move(next));
    router_.store(next_raw, std::memory_order_seq_cst);
    // 4. Drain: move the subrange's keys donor -> recipient, one
    // striped per-key lock at a time, insert-before-erase so lock-free
    // readers never miss a moving key.
    const std::size_t moved = drain(m);
    // 5. Quiesce again: operations that predate the router flip (and
    // could still route covered keys to the donor solo) are gone, and
    // no reader can still hold a retired router version. 6. Close the
    // dual-routing window and retire old routers.
    quiesce_gate();
    clear_migration();
    if (routers_.size() > 1) {
      std::unique_ptr<Router> live = std::move(routers_.back());
      routers_.clear();
      routers_.push_back(std::move(live));
    }
    const auto t1 = std::chrono::steady_clock::now();
    migrations_.fetch_add(1, std::memory_order_relaxed);
    keys_migrated_.fetch_add(moved, std::memory_order_relaxed);
    dual_route_window_ns_.fetch_add(
        static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                .count()),
        std::memory_order_relaxed);
    return moved;
  }

  /// Shard-layer counters (monotone, racy-read-safe).
  [[nodiscard]] std::uint64_t migration_count() const noexcept {
    return migrations_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t keys_migrated() const noexcept {
    return keys_migrated_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t dual_route_window_ns() const noexcept {
    return dual_route_window_ns_.load(std::memory_order_relaxed);
  }

  /// Folds the shard layer's own counters into `snap` — the hook
  /// merged_counters, the telemetry sampler and the server's stat
  /// handler use so migration activity flows through every exposition
  /// surface (JSON, Prometheus, the stat opcode) like tree counters.
  void add_layer_counters(obs::metrics_snapshot& snap) const noexcept {
    snap.values[static_cast<std::size_t>(obs::counter::migrations)] +=
        migration_count();
    snap.values[static_cast<std::size_t>(obs::counter::keys_migrated)] +=
        keys_migrated();
    snap.values[static_cast<std::size_t>(
        obs::counter::dual_route_window_ns)] += dual_route_window_ns();
  }

  // --- quiescent observers -------------------------------------------

  [[nodiscard]] std::size_t size_slow() const {
    std::size_t n = 0;
    for (const auto& s : shards_) n += s->tree.size_slow();
    return n;
  }

  [[nodiscard]] bool empty_slow() const { return size_slow() == 0; }

  /// In-order traversal across all shards (splitter order == key order).
  template <typename F>
  void for_each_slow(F&& fn) const {
    for (const auto& s : shards_) s->tree.for_each_slow(fn);
  }

  /// Every shard's own structural validator, plus the shard layer's
  /// placement invariant: each key lives in the shard the live router
  /// maps it to. Empty string when healthy. Quiescent (no concurrent
  /// writers or migrations).
  [[nodiscard]] std::string validate() const {
    std::string err;
    const Router& r = current_router();
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      const std::string inner = shards_[i]->tree.validate();
      if (!inner.empty()) {
        err += "shard " + std::to_string(i) + ": " + inner;
      }
      std::size_t misplaced = 0;
      shards_[i]->tree.for_each_slow([&](const key_type& k) {
        if (r.shard_of(k) != i) ++misplaced;
      });
      if (misplaced != 0) {
        err += "shard " + std::to_string(i) + ": " +
               std::to_string(misplaced) + " keys routed elsewhere; ";
      }
    }
    return err;
  }

  // --- structure access ----------------------------------------------

  [[nodiscard]] std::size_t shard_count() const noexcept {
    return shards_.size();
  }
  /// The live router version. The reference stays valid until the next
  /// migration completes; ops inside the gate may rely on it, external
  /// callers should treat it as a point-in-time snapshot.
  [[nodiscard]] const Router& router() const noexcept {
    return current_router();
  }
  [[nodiscard]] Tree& shard(std::size_t i) noexcept {
    return shards_[i]->tree;
  }
  [[nodiscard]] const Tree& shard(std::size_t i) const noexcept {
    return shards_[i]->tree;
  }
  /// The NUMA node shard i's slot was placed on (-1: unplaced).
  [[nodiscard]] int shard_numa_node(std::size_t i) const noexcept {
    return numa_.node_for_shard(i, shards_.size());
  }

  // --- merged metrics (obs::recording inner trees only) ---------------
  // The S per-shard registries fold with the obs merge algebra into the
  // same shapes a single instrumented tree reports.

  /// Counter-wise sum of every shard's metrics snapshot, plus the shard
  /// layer's own counters.
  [[nodiscard]] obs::metrics_snapshot merged_counters() const
    requires recording_stats_tree<Tree>
  {
    obs::metrics_snapshot merged;
    for (const auto& s : shards_) {
      merged.merge(s->tree.stats().counters().snapshot());
    }
    add_layer_counters(merged);
    return merged;
  }

  /// One shard's counter snapshot, unmerged — the per-shard view the
  /// telemetry sampler turns into load-share/imbalance gauges and the
  /// rebalancer turns into migration decisions.
  [[nodiscard]] obs::metrics_snapshot shard_counters(std::size_t i) const
    requires recording_stats_tree<Tree>
  {
    return shards_[i]->tree.stats().counters().snapshot();
  }

  /// Visits every shard's recording stats instance in shard order —
  /// the attachment hook for cross-shard sinks (one trace_log /
  /// key_heatmap shared by all shards).
  template <typename F>
  void for_each_shard_stats(F&& fn) const
    requires recording_stats_tree<Tree>
  {
    for (const auto& s : shards_) fn(s->tree.stats());
  }

  /// Bucket-wise merge of every shard's latency histogram for `kind`.
  /// Safe concurrently with writers (racy-monotone, obs/histogram.hpp);
  /// exact at quiescence.
  [[nodiscard]] obs::histogram merged_latency_histogram(
      stats::op_kind kind) const
    requires recording_stats_tree<Tree>
  {
    obs::histogram merged;
    for (const auto& s : shards_) {
      merged.merge(s->tree.stats().latency_histogram(kind));
    }
    return merged;
  }

  /// Bucket-wise merge of every shard's seek-depth histogram. Depths
  /// are per-shard (each shard is its own, shallower tree); the merged
  /// distribution is what the whole front-end makes a seek traverse.
  [[nodiscard]] obs::histogram merged_seek_depth_histogram() const
    requires recording_stats_tree<Tree>
  {
    obs::histogram merged;
    for (const auto& s : shards_) {
      merged.merge(s->tree.stats().seek_depth_histogram());
    }
    return merged;
  }

 private:
  /// One shard: the tree on its own cache lines so adjacent shards'
  /// hot members (head pointers, stats) never share a line.
  struct alignas(cacheline_size) slot {
    Tree tree;
  };

  using slot_ptr = std::unique_ptr<slot, void (*)(slot*)>;

  /// Slot storage: NUMA-bound pages when the placement policy names a
  /// node (numa.hpp), the ordinary heap otherwise or on fallback.
  static slot_ptr make_slot(int node) {
    if (node >= 0) {
      if (void* raw = numa::alloc_for_node(sizeof(slot), node)) {
        slot* s = new (raw) slot;
        return slot_ptr(s, [](slot* p) {
          p->~slot();
          numa::free_for_node(p);
        });
      }
    }
    return slot_ptr(new slot, [](slot* p) { delete p; });
  }

  [[nodiscard]] bool armed() const noexcept {
    return armed_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] const Router& current_router() const noexcept {
    return *router_.load(std::memory_order_seq_cst);
  }

  // --- the op gate ----------------------------------------------------
  // Asymmetric generation-parity quiescence. Operations enter by
  // incrementing one striped counter under the current generation's
  // parity and re-checking the generation (retry on a flip); the
  // migration worker flips the generation and waits for the old
  // parity's counters to drain. seq_cst on the entry path and the flip
  // gives the key ordering property: an operation that enters after a
  // flip also sees every store the worker published before the flip
  // (the migration record, the new router pointer).

  static constexpr std::size_t gate_stripe_count = 16;

  struct alignas(cacheline_size) gate_stripe {
    std::atomic<std::uint32_t> entries[2] = {};
  };

  class op_gate_guard {
   public:
    explicit op_gate_guard(const sharded_set& set) {
      gate_stripe& stripe =
          set.gates_[this_thread_index() % gate_stripe_count];
      for (;;) {
        atomics_policy::shared_step();
        const std::uint64_t g = set.gate_gen_.load(std::memory_order_seq_cst);
        std::atomic<std::uint32_t>& slot = stripe.entries[g & 1];
        slot.fetch_add(1, std::memory_order_seq_cst);
        if (set.gate_gen_.load(std::memory_order_seq_cst) == g) {
          slot_ = &slot;
          return;
        }
        // Raced a generation flip: the quiescer may already have read
        // this parity as drained. Undo and re-enter under the new
        // generation.
        slot.fetch_sub(1, std::memory_order_seq_cst);
      }
    }
    ~op_gate_guard() { slot_->fetch_sub(1, std::memory_order_release); }

    op_gate_guard(const op_gate_guard&) = delete;
    op_gate_guard& operator=(const op_gate_guard&) = delete;

   private:
    std::atomic<std::uint32_t>* slot_ = nullptr;
  };

  /// Worker side: flip the generation, wait until every operation that
  /// entered under the old one has left. Serialized by migrate_mutex_
  /// (consecutive quiesces must alternate parities in order).
  void quiesce_gate() {
    const std::uint64_t g = gate_gen_.fetch_add(1, std::memory_order_seq_cst);
    for (const gate_stripe& stripe : gates_) {
      while (stripe.entries[g & 1].load(std::memory_order_acquire) != 0) {
        atomics_policy::shared_step();
      }
    }
  }

  // --- the migration record (seqlock-published) -----------------------

  void publish_migration(const migration& m) {
    mig_seq_.fetch_add(1, std::memory_order_seq_cst);  // odd: writing
    rec_lo_.store(m.lo, std::memory_order_relaxed);
    rec_hi_.store(m.hi, std::memory_order_relaxed);
    rec_src_.store(static_cast<std::uint32_t>(m.src),
                   std::memory_order_relaxed);
    rec_dst_.store(static_cast<std::uint32_t>(m.dst),
                   std::memory_order_relaxed);
    mig_active_.store(true, std::memory_order_relaxed);
    mig_seq_.fetch_add(1, std::memory_order_seq_cst);  // even: stable
  }

  void clear_migration() {
    mig_seq_.fetch_add(1, std::memory_order_seq_cst);
    mig_active_.store(false, std::memory_order_relaxed);
    mig_seq_.fetch_add(1, std::memory_order_seq_cst);
  }

  /// Consistent snapshot of the record; false when no migration is in
  /// flight. Lock-free seqlock read (fields are relaxed atomics, the
  /// sequence word validates them).
  [[nodiscard]] bool read_migration(migration& out) const {
    for (;;) {
      const std::uint64_t s0 = mig_seq_.load(std::memory_order_seq_cst);
      if ((s0 & 1) == 0) {
        const bool active = mig_active_.load(std::memory_order_relaxed);
        out.lo = rec_lo_.load(std::memory_order_relaxed);
        out.hi = rec_hi_.load(std::memory_order_relaxed);
        out.src = rec_src_.load(std::memory_order_relaxed);
        out.dst = rec_dst_.load(std::memory_order_relaxed);
        std::atomic_thread_fence(std::memory_order_acquire);
        if (mig_seq_.load(std::memory_order_relaxed) == s0) return active;
      }
      atomics_policy::shared_step();
    }
  }

  // --- striped per-key locks for the dual-routing window --------------
  // Held only for keys covered by a live migration record: by mutating
  // operations and by the drain's per-key move, never by reads. TTAS
  // with a schedule point in the spin so dsched can explore the window.

  static constexpr std::size_t key_lock_count = 64;

  struct alignas(cacheline_size) key_lock {
    std::atomic<bool> locked{false};

    void lock() noexcept {
      for (;;) {
        atomics_policy::shared_step();
        if (!locked.exchange(true, std::memory_order_acquire)) return;
        while (locked.load(std::memory_order_relaxed)) {
          atomics_policy::shared_step();
        }
      }
    }
    void unlock() noexcept { locked.store(false, std::memory_order_release); }
  };

  [[nodiscard]] static std::size_t key_lock_index(
      const key_type& k) noexcept {
    std::uint64_t h = static_cast<std::uint64_t>(std::hash<key_type>{}(k));
    h *= 0x9E3779B97F4A7C15ull;  // Fibonacci mix: spread poor hashes
    return static_cast<std::size_t>(h >> 58);
  }

  class key_lock_guard {
   public:
    key_lock_guard(sharded_set& set, const key_type& key)
        : lock_(set.key_locks_[key_lock_index(key)]) {
      lock_.lock();
    }
    ~key_lock_guard() { lock_.unlock(); }

    key_lock_guard(const key_lock_guard&) = delete;
    key_lock_guard& operator=(const key_lock_guard&) = delete;

   private:
    key_lock& lock_;
  };

  // --- routed operation bodies ---------------------------------------
  // `rec` is the caller's migration-record snapshot (nullptr: none).
  // Covered keys take the dual path; everything else routes to shard
  // `s` exactly as before. The caller must hold the op gate whenever
  // rec could be non-null.

  [[nodiscard]] bool contains_routed(const migration* rec, std::size_t s,
                                     const key_type& k) const {
    if (rec != nullptr && rec->covers(k)) {
      // Lock-free dual read, donor before recipient — the mirror image
      // of the drain's insert-into-recipient-before-erase-from-donor
      // order, so a key caught mid-move is seen in at least one tree:
      // if the donor read ran after the erase, the recipient insert
      // (which preceded that erase) is visible to the recipient read.
      if (shards_[rec->src]->tree.contains(k)) return true;
      return shards_[rec->dst]->tree.contains(k);
    }
    return shards_[s]->tree.contains(k);
  }

  bool insert_routed(const migration* rec, std::size_t s,
                     const key_type& k) {
    if (rec != nullptr && rec->covers(k)) {
      key_lock_guard guard(*this, k);
      // Single-copy invariant: a covered key lives in exactly one of
      // donor/recipient outside the lock. New inserts always land in
      // the recipient so the donor's subrange only ever shrinks.
      if (shards_[rec->src]->tree.contains(k)) return false;
      return shards_[rec->dst]->tree.insert(k);
    }
    return shards_[s]->tree.insert(k);
  }

  bool erase_routed(const migration* rec, std::size_t s, const key_type& k) {
    if (rec != nullptr && rec->covers(k)) {
      key_lock_guard guard(*this, k);
      if (shards_[rec->src]->tree.erase(k)) return true;
      return shards_[rec->dst]->tree.erase(k);
    }
    return shards_[s]->tree.erase(k);
  }

  /// The drain: page the donor's covered subrange with the concurrent
  /// bounded scan and move each key under its stripe lock. Dual-path
  /// inserts only ever target the recipient, so the donor subrange is
  /// drained monotonically and the loop terminates.
  std::size_t drain(const migration& m)
    requires migratable_tree<Tree>
  {
    Tree& src = shards_[m.src]->tree;
    Tree& dst = shards_[m.dst]->tree;
    std::size_t moved = 0;
    for (;;) {
      const std::vector<key_type> page =
          src.range_scan(m.lo, m.hi, drain_page_size);
      if (page.empty()) return moved;
      for (const key_type& k : page) {
        key_lock_guard guard(*this, k);
        if (src.contains(k)) {
          // Insert before erase: the lock-free dual read (donor first)
          // relies on the key never being absent from both trees.
          dst.insert(k);
          src.erase(k);
          ++moved;
        }
      }
    }
  }

  static constexpr std::size_t drain_page_size = 4096;

  // --- scan machinery -------------------------------------------------

  /// Shared body of range_scan / range_scan_closed. `hi` is the upper
  /// bound in the caller's convention (exclusive unless closed). While
  /// a migration overlaps the interval, the visited shard window widens
  /// to the donor/recipient pair, the recipient is re-read when keys
  /// move toward lower shard ids (an ascending stitch reads it too
  /// early), and duplicates from keys caught mid-move are collapsed.
  /// The gate makes this sufficient: the drain only runs between the
  /// two quiescence waits, and any scan running then entered after the
  /// record was published, so it takes the widened path. A scan that
  /// entered *before* the record cannot race the drain (the first
  /// quiesce waits for it) but can race dual-path inserts of new
  /// covered keys into the recipient — the late-record repair at the
  /// bottom restores ordering for that case.
  void scan_impl(const key_type& lo, const key_type& hi, bool closed,
                 std::vector<key_type>& out) const {
    const key_type hi_incl = closed ? hi : static_cast<key_type>(hi - 1);
    std::optional<op_gate_guard> gate;
    migration rec;
    bool dual = false;
    if (armed()) {
      gate.emplace(*this);
      dual = read_migration(rec) && !(hi_incl < rec.lo) && lo < rec.hi;
    }
    const Router& r = current_router();
    std::size_t first = r.shard_of(lo);
    std::size_t last = r.shard_of(hi_incl);
    if (dual) {
      first = std::min(first, std::min(rec.src, rec.dst));
      last = std::max(last, std::max(rec.src, rec.dst));
    }
    for (std::size_t s = first; s <= last; ++s) {
      scan_shard(shards_[s]->tree, lo, hi, closed, out);
    }
    if (dual) {
      if (rec.dst < rec.src) {
        // A key moving to a lower shard id can escape both walks: the
        // recipient was read before the insert and the donor after the
        // erase. Re-reading the recipient after the donor walk closes
        // the gap (the insert preceded that erase, so it is visible
        // now); sort/unique below collapses double sightings.
        scan_shard(shards_[rec.dst]->tree, lo, hi, closed, out);
      }
      std::sort(out.begin(), out.end());
      out.erase(std::unique(out.begin(), out.end()), out.end());
    } else if (gate.has_value()) {
      // Entered with no record, but one may have been published since:
      // its first quiescence wait is blocked on this scan, so the
      // drain cannot have started — no key moved and no key is
      // double-present — but dual-path inserts of *new* covered keys
      // already target the recipient, out of splitter order relative
      // to this stitch. Those inserts are concurrent with the whole
      // scan (seeing or missing them is fine); only ordering needs
      // repair. The record, if any, is still live here (the quiesce
      // cannot pass until we release the gate).
      migration late;
      if (read_migration(late) && !(hi_incl < late.lo) && lo < late.hi) {
        std::sort(out.begin(), out.end());
        out.erase(std::unique(out.begin(), out.end()), out.end());
      }
    }
  }

  /// Per-shard scan dispatch: the inner tree's concurrent ordered scan
  /// when it has one, else its quiescent walk (which keeps EFRB/HJ
  /// compositions compiling, at the price of their old quiescence
  /// precondition). The bounds are passed through unchanged — the tree
  /// filters inherently, and a shard never holds keys outside its
  /// router range, so no double filtering happens.
  static void scan_shard(const Tree& tree, const key_type& lo,
                         const key_type& hi, bool closed,
                         std::vector<key_type>& out) {
    if constexpr (requires {
                    tree.range_scan(lo, hi);
                    tree.range_scan_closed(lo, hi);
                  }) {
      const std::vector<key_type> part = closed
                                             ? tree.range_scan_closed(lo, hi)
                                             : tree.range_scan(lo, hi);
      out.insert(out.end(), part.begin(), part.end());
    } else {
      tree.for_each_slow([&](const key_type& k) {
        if (k < lo) return;
        if (closed ? !(hi < k) : (k < hi)) out.push_back(k);
      });
    }
  }

  /// Bounded per-shard scan dispatch: the inner tree's budgeted scan
  /// when it has one (stops walking once the page fills), else the
  /// quiescent walk trimmed to the budget — for_each_slow visits in
  /// order, so the first `max_items` in-range keys are the smallest.
  static void scan_shard_limit(const Tree& tree, const key_type& lo,
                               const key_type& hi, std::size_t max_items,
                               std::vector<key_type>& out) {
    if constexpr (requires { tree.range_scan(lo, hi, max_items); }) {
      const std::vector<key_type> part = tree.range_scan(lo, hi, max_items);
      out.insert(out.end(), part.begin(), part.end());
    } else {
      std::size_t budget = max_items;
      tree.for_each_slow([&](const key_type& k) {
        if (budget == 0 || k < lo || !(k < hi)) return;
        out.push_back(k);
        --budget;
      });
    }
  }

  /// Shared batch engine; `Self` deduces const for contains_batch and
  /// non-const for the mutating batches. One gate entry and one record
  /// snapshot cover the whole batch (see the batched-operations note).
  template <typename Self, typename Op>
  static std::vector<bool> batch_apply(Self& self,
                                       const std::vector<key_type>& keys,
                                       Op&& op) {
    const std::size_t n = keys.size();
    const std::size_t nshards = self.shards_.size();
    std::vector<bool> results(n);
    if (n == 0) return results;

    std::optional<op_gate_guard> gate;
    migration rec;
    bool dual = false;
    if (self.armed()) {
      gate.emplace(self);
      dual = self.read_migration(rec);
    }
    const Router& r = self.current_router();

    // Stable counting sort of key indices by shard id.
    std::vector<std::uint32_t> shard_ids(n);
    std::vector<std::size_t> group_start(nshards + 1, 0);
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t s = r.shard_of(keys[i]);
      shard_ids[i] = static_cast<std::uint32_t>(s);
      ++group_start[s + 1];
    }
    for (std::size_t s = 0; s < nshards; ++s) {
      group_start[s + 1] += group_start[s];
    }
    std::vector<std::uint32_t> order(n);
    {
      std::vector<std::size_t> cursor(group_start.begin(),
                                      group_start.end() - 1);
      for (std::size_t i = 0; i < n; ++i) {
        order[cursor[shard_ids[i]]++] = static_cast<std::uint32_t>(i);
      }
    }

    // Execute per shard group; results land at the original positions.
    const migration* rec_ptr = dual ? &rec : nullptr;
    for (std::size_t s = 0; s < nshards; ++s) {
      for (std::size_t j = group_start[s]; j < group_start[s + 1]; ++j) {
        const std::uint32_t i = order[j];
        results[i] = op(self, rec_ptr, s, keys[i]);
      }
    }
    return results;
  }

  numa::policy numa_;
  std::vector<slot_ptr> shards_;
  // Router versioning: ops read `router_` (the live version); retired
  // versions stay in `routers_` until the post-drain quiesce proves no
  // reader can still hold one. Guarded by migrate_mutex_ for writers.
  std::vector<std::unique_ptr<Router>> routers_;
  std::atomic<const Router*> router_{nullptr};
  std::atomic<bool> armed_{false};
  std::atomic<std::uint64_t> gate_gen_{0};
  mutable std::array<gate_stripe, gate_stripe_count> gates_{};
  // Migration record seqlock: odd mig_seq_ = fields changing.
  mutable std::atomic<std::uint64_t> mig_seq_{0};
  std::atomic<bool> mig_active_{false};
  std::atomic<key_type> rec_lo_{};
  std::atomic<key_type> rec_hi_{};
  std::atomic<std::uint32_t> rec_src_{0};
  std::atomic<std::uint32_t> rec_dst_{0};
  std::array<key_lock, key_lock_count> key_locks_{};
  std::mutex migrate_mutex_;
  std::atomic<std::uint64_t> migrations_{0};
  std::atomic<std::uint64_t> keys_migrated_{0};
  std::atomic<std::uint64_t> dual_route_window_ns_{0};
};

}  // namespace lfbst::shard
