// lfbst shard: the adaptive rebalancer — the control loop that turns
// the telemetry plane's imbalance signal (per-shard op counters, the
// key heatmap) into online subrange migrations.
//
// ROADMAP item 3's problem: a static range partition melts one shard
// under a Zipf or append-mostly key stream while the rest idle. The
// rebalancer closes the loop. Every interval it diffs each shard's
// point-op counters against the previous window; when the hottest
// shard's share of the window exceeds trigger_ratio / shard_count (and
// the window saw enough traffic to mean anything), it donates part of
// the hot shard's key range to the cooler adjacent neighbor with one
// sharded_set::migrate_splitter() call.
//
// The split point is traffic-weighted when a key_heatmap is attached:
// the donated subrange carries about half the hot shard's observed
// traffic, so repeated cycles spread a concentrated hotspot over more
// and more shards geometrically (max_shard_share -> 1/S). Without a
// heatmap it falls back to the range midpoint — still convergent for
// hotspots that fill their shard's range, just slower for very narrow
// ones.
//
// After each migration the window snapshot re-primes: the drain's own
// tree traffic (a contains/insert/erase per moved key) would otherwise
// pollute the next decision's signal.
//
// rebalance_once() runs one decision cycle synchronously — that is the
// deterministic-test entry point, and exactly what the background
// thread calls every interval.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "obs/heatmap.hpp"
#include "obs/metrics.hpp"
#include "shard/numa.hpp"

namespace lfbst::shard {

struct rebalancer_options {
  /// Decision interval of the background thread.
  std::uint64_t interval_ms = 50;
  /// Act when the hottest shard's window share exceeds ratio / S.
  /// 1.0 would chase noise; 1.5 tolerates mild skew.
  double trigger_ratio = 1.5;
  /// Ignore windows with less total traffic than this (startup, lulls).
  std::uint64_t min_window_ops = 2048;
  /// Traffic-weighted split points when set (otherwise range midpoint).
  const obs::key_heatmap* heatmap = nullptr;
  /// Pin the background thread to this NUMA node (-1: don't pin).
  int pin_node = -1;
};

/// Drives sharded_set migrations from its per-shard counters. Set must
/// be a sharded_set over a recording, concurrently-scannable tree (the
/// NM-BST compositions).
template <typename Set>
class rebalancer {
 public:
  using key_type = typename Set::key_type;

  explicit rebalancer(Set& set, rebalancer_options opts = {})
      : set_(set), opts_(opts), prev_ops_(set.shard_count(), 0) {
    set_.arm_rebalancing();
    prime();
  }

  rebalancer(const rebalancer&) = delete;
  rebalancer& operator=(const rebalancer&) = delete;

  ~rebalancer() { stop(); }

  void start() {
    if (worker_.joinable()) return;
    stop_.store(false, std::memory_order_relaxed);
    worker_ = std::thread([this] { run(); });
  }

  void stop() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (stop_.exchange(true, std::memory_order_relaxed)) {
        // already stopping/stopped; still join below if joinable
      }
    }
    cv_.notify_all();
    if (worker_.joinable()) worker_.join();
  }

  /// Re-reads the per-shard counters without deciding anything, so the
  /// next window starts from "now".
  void prime() {
    for (std::size_t i = 0; i < set_.shard_count(); ++i) {
      prev_ops_[i] = set_.shard_counters(i).point_ops();
    }
  }

  /// One decision cycle, synchronously: diff the per-shard op windows,
  /// migrate if the imbalance trigger trips. Returns keys moved (0:
  /// balanced, too little traffic, or nothing movable). This is what
  /// the background thread runs every interval; deterministic tests
  /// call it directly.
  std::size_t rebalance_once() {
    const std::size_t count = set_.shard_count();
    if (count < 2) return 0;
    std::vector<std::uint64_t> window(count, 0);
    std::uint64_t total = 0;
    std::size_t hot = 0;
    for (std::size_t i = 0; i < count; ++i) {
      const std::uint64_t now = set_.shard_counters(i).point_ops();
      window[i] = now - prev_ops_[i];
      prev_ops_[i] = now;
      total += window[i];
      if (window[i] > window[hot]) hot = i;
    }
    decisions_.fetch_add(1, std::memory_order_relaxed);
    if (total < opts_.min_window_ops) return 0;
    const double share =
        static_cast<double>(window[hot]) / static_cast<double>(total);
    if (share * static_cast<double>(count) <= opts_.trigger_ratio) return 0;

    // Donate toward the cooler adjacent neighbor (migrations only move
    // boundary subranges, so only neighbors are candidates).
    std::size_t nbr;
    if (hot == 0) {
      nbr = 1;
    } else if (hot == count - 1) {
      nbr = count - 2;
    } else {
      nbr = window[hot - 1] <= window[hot + 1] ? hot - 1 : hot + 1;
    }

    const auto& router = set_.router();
    const key_type range_lo = router.splitter(hot);
    const key_type range_hi_incl =
        hot + 1 < count ? static_cast<key_type>(router.splitter(hot + 1) - 1)
                        : router.hi_inclusive();
    const key_type split = choose_split(range_lo, range_hi_incl);
    const key_type q = router.quantize_down(split);
    if (!(range_lo < q)) return 0;  // hot shard is down to one bucket

    // Raising splitter `hot` donates the head [range_lo, q) to the left
    // neighbor; lowering splitter `hot + 1` donates the tail [q,
    // range_hi] to the right one.
    const std::size_t boundary = nbr < hot ? hot : hot + 1;
    const std::size_t moved = set_.migrate_splitter(boundary, q);
    if (moved != 0) migrations_.fetch_add(1, std::memory_order_relaxed);
    // The drain's own tree ops polluted the counters; restart the
    // window from the post-migration state.
    prime();
    return moved;
  }

  /// Decision cycles run (including no-ops) and migrations executed.
  [[nodiscard]] std::uint64_t decisions() const noexcept {
    return decisions_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t migrations() const noexcept {
    return migrations_.load(std::memory_order_relaxed);
  }

 private:
  /// The key where the hot shard's traffic splits in half, per the
  /// heatmap; the range midpoint when no heatmap (or no signal in this
  /// range) is available. Always inside [range_lo, range_hi_incl].
  [[nodiscard]] key_type choose_split(key_type range_lo,
                                      key_type range_hi_incl) const {
    if (opts_.heatmap != nullptr) {
      const obs::key_heatmap& h = *opts_.heatmap;
      // Weight of each heatmap bucket overlapping the shard's range.
      std::uint64_t total = 0;
      std::vector<std::uint64_t> weight(obs::key_heatmap::bucket_count, 0);
      for (std::size_t b = 0; b < obs::key_heatmap::bucket_count; ++b) {
        const auto b_lo = h.bucket_lo(b);
        const auto b_hi = h.bucket_lo(b + 1);
        if (static_cast<key_type>(b_hi) <= range_lo ||
            range_hi_incl < static_cast<key_type>(b_lo)) {
          continue;
        }
        weight[b] = h.bucket(b);
        total += weight[b];
      }
      if (total > 0) {
        std::uint64_t acc = 0;
        for (std::size_t b = 0; b < obs::key_heatmap::bucket_count; ++b) {
          if (weight[b] == 0) continue;
          acc += weight[b];
          if (acc * 2 >= total) {
            // Split at this bucket's upper edge, clamped into the range.
            key_type cand = static_cast<key_type>(h.bucket_lo(b + 1));
            if (cand < range_lo) cand = range_lo;
            if (range_hi_incl < cand) cand = range_hi_incl;
            return cand;
          }
        }
      }
    }
    using uk = std::make_unsigned_t<key_type>;
    const uk a = static_cast<uk>(range_lo);
    const uk span = static_cast<uk>(range_hi_incl) - a;
    return static_cast<key_type>(a + span / 2);
  }

  void run() {
    if (opts_.pin_node >= 0) {
      (void)numa::pin_current_thread_to_node(opts_.pin_node);
    }
    std::unique_lock<std::mutex> lk(mu_);
    while (!stop_.load(std::memory_order_relaxed)) {
      cv_.wait_for(lk, std::chrono::milliseconds(opts_.interval_ms), [&] {
        return stop_.load(std::memory_order_relaxed);
      });
      if (stop_.load(std::memory_order_relaxed)) break;
      lk.unlock();
      rebalance_once();
      lk.lock();
    }
  }

  Set& set_;
  rebalancer_options opts_;
  std::vector<std::uint64_t> prev_ops_;
  std::atomic<std::uint64_t> decisions_{0};
  std::atomic<std::uint64_t> migrations_{0};
  std::atomic<bool> stop_{false};
  std::mutex mu_;
  std::condition_variable cv_;
  std::thread worker_;
};

}  // namespace lfbst::shard
