// lfbst shard: NUMA-aware placement for the sharded front-end.
//
// A sharded_set's whole point is that each shard's tree, reclaimer and
// node pools are touched mostly by the threads working that key range.
// On a multi-socket machine that locality is wasted if a shard's slot
// header lands on one node while its worker threads run on another:
// every root seek then crosses the interconnect. This header supplies
// the three primitives the shard layer needs to keep a shard's memory
// and threads on one node, behind a small runtime `policy` knob:
//
//   * topology       — NUMA nodes and their CPUs, read once from
//                      /sys/devices/system/node (no libnuma dependency;
//                      raw syscalls only, so the toolchain needs nothing
//                      beyond the kernel headers).
//   * alloc_for_node — page-aligned allocation whose pages are bound to
//                      a node with an mbind(MPOL_PREFERRED) syscall, so
//                      first touch lands where the shard lives no matter
//                      which thread constructs it.
//   * pin_current_thread_to_node — sched_setaffinity over the node's
//                      CPU list, for rebalance workers and bench/load
//                      threads that want to sit next to their shards.
//
// Everything degrades to a no-op when the machine has one node (or the
// platform is not Linux): policy::active() turns false, allocations fall
// back to the ordinary heap and pinning returns false. Callers never
// need their own #ifdefs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <vector>

#if defined(__linux__)
#include <sched.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cstdio>
#endif

namespace lfbst::shard::numa {

/// Placement modes for sharded_set's slots and helper threads.
enum class placement : unsigned char {
  none,        // ordinary heap, no binding, no pinning
  interleave,  // contiguous blocks of shards per node, round the nodes
};

/// The machine's NUMA shape: one CPU list per node, detected once.
struct topology {
  std::vector<std::vector<int>> node_cpus;

  [[nodiscard]] std::size_t node_count() const noexcept {
    return node_cpus.empty() ? 1 : node_cpus.size();
  }

  /// Reads /sys/devices/system/node/node<i>/cpulist until the files run
  /// out. A machine without the sysfs tree (or a non-Linux platform)
  /// reports a single node with an unknown CPU list.
  static topology detect() {
    topology t;
#if defined(__linux__)
    for (unsigned node = 0; node < 1024; ++node) {
      char path[64];
      std::snprintf(path, sizeof(path),
                    "/sys/devices/system/node/node%u/cpulist", node);
      std::FILE* f = std::fopen(path, "re");
      if (f == nullptr) break;
      char line[4096];
      std::vector<int> cpus;
      if (std::fgets(line, sizeof(line), f) != nullptr) {
        cpus = parse_cpulist(line);
      }
      std::fclose(f);
      t.node_cpus.push_back(std::move(cpus));
    }
#endif
    return t;
  }

  /// Process-wide cached topology (detection reads sysfs once).
  static const topology& cached() {
    static const topology t = detect();
    return t;
  }

 private:
  /// "0-3,8,10-11" -> {0,1,2,3,8,10,11}.
  static std::vector<int> parse_cpulist(const char* s) {
    std::vector<int> cpus;
    const char* p = s;
    while (*p != '\0' && *p != '\n') {
      char* end = nullptr;
      const long a = std::strtol(p, &end, 10);
      if (end == p) break;
      long b = a;
      p = end;
      if (*p == '-') {
        ++p;
        b = std::strtol(p, &end, 10);
        if (end == p) break;
        p = end;
      }
      for (long c = a; c <= b; ++c) cpus.push_back(static_cast<int>(c));
      if (*p == ',') ++p;
    }
    return cpus;
  }
};

/// Runtime placement policy handed to sharded_set (and the rebalancer /
/// bench workers). Inert by default and on single-node machines.
struct policy {
  placement mode = placement::none;

  [[nodiscard]] bool active() const noexcept {
    return mode != placement::none && topology::cached().node_count() > 1;
  }

  /// Node owning shard i of shard_count: contiguous blocks of shards
  /// per node, so neighboring shards (and thus migrations, which only
  /// ever move a boundary subrange to an adjacent shard) mostly stay
  /// on one node. -1 = unplaced.
  [[nodiscard]] int node_for_shard(std::size_t shard,
                                   std::size_t shard_count) const noexcept {
    if (!active() || shard_count == 0) return -1;
    const std::size_t nodes = topology::cached().node_count();
    return static_cast<int>(shard * nodes / shard_count);
  }
};

/// Page-aligned allocation of at least `bytes`, with its pages bound to
/// `node` via mbind(MPOL_PREFERRED) before first touch. Returns nullptr
/// when binding is unavailable — callers fall back to the plain heap.
/// Release with free_for_node.
inline void* alloc_for_node(std::size_t bytes, int node) {
#if defined(__linux__)
  const long page = ::sysconf(_SC_PAGESIZE);
  if (page <= 0 || node < 0 || node >= 64) return nullptr;
  const std::size_t psize = static_cast<std::size_t>(page);
  const std::size_t rounded = (bytes + psize - 1) / psize * psize;
  void* p = std::aligned_alloc(psize, rounded);
  if (p == nullptr) return nullptr;
  // MPOL_PREFERRED (=1): allocate on `node` at first touch, fall back
  // to other nodes under memory pressure instead of failing.
  constexpr int mpol_preferred = 1;
  unsigned long nodemask = 1ul << node;  // NOLINT: kernel ABI type
  (void)::syscall(SYS_mbind, p, rounded, mpol_preferred, &nodemask,
                  sizeof(nodemask) * 8, 0);
  // A failed mbind (old kernel, cpuset restrictions) still leaves a
  // valid first-touch allocation; keep it rather than failing over.
  return p;
#else
  (void)bytes;
  (void)node;
  return nullptr;
#endif
}

inline void free_for_node(void* p) noexcept { std::free(p); }

/// Pins the calling thread to `node`'s CPUs. False when the node is
/// unknown, has no detected CPUs, or the platform cannot pin.
inline bool pin_current_thread_to_node(int node) noexcept {
#if defined(__linux__)
  const topology& t = topology::cached();
  if (node < 0 || static_cast<std::size_t>(node) >= t.node_cpus.size()) {
    return false;
  }
  const std::vector<int>& cpus = t.node_cpus[static_cast<std::size_t>(node)];
  if (cpus.empty()) return false;
  cpu_set_t set;
  CPU_ZERO(&set);
  for (int c : cpus) {
    if (c >= 0 && c < CPU_SETSIZE) CPU_SET(c, &set);
  }
  return ::sched_setaffinity(0, sizeof(set), &set) == 0;
#else
  (void)node;
  return false;
#endif
}

}  // namespace lfbst::shard::numa
