// lfbst shard: range-partitioned key router — the address decoder of
// the sharded front-end (src/shard/sharded_set.hpp).
//
// A router owns an ordered partition of the key domain into S
// contiguous ranges (S a power of two): shard i holds the keys in
// [splitter(i), splitter(i+1)), with splitter(0) = lo and splitter(S)
// = hi. Routing must be *exact* — a key on a splitter boundary belongs
// to the right-hand shard, always — because the sharded range_scan
// stitches per-shard walks back together in splitter order and any
// misrouting would break the global key order.
//
// Lookup is branch-free: no binary search over the splitters. The
// domain [lo, hi) is covered by a power-of-two grid of buckets (at most
// 2^12 of them) and a flat table maps bucket -> shard id, so shard_of()
// is a subtract, a shift and one table load (plus two conditional moves
// clamping out-of-range keys to the edge shards). To keep the table
// exact rather than approximate, splitters are quantized to bucket
// edges: the *induced* splitters (what splitter(i) reports and what the
// partition actually uses) are the requested ones rounded down to a
// multiple of the bucket width. The uniform constructor picks them
// evenly; the explicit constructor accepts any strictly increasing set
// that survives quantization.
//
// The router is immutable after construction and safe to read from any
// number of threads.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <type_traits>
#include <vector>

#include "common/assert.hpp"

namespace lfbst::shard {

template <typename Key>
class range_router {
  static_assert(std::is_integral_v<Key>,
                "range_router partitions integral key domains; supply a "
                "custom Router policy for other key types");

  using ukey = std::make_unsigned_t<Key>;
  static constexpr unsigned key_bits = std::numeric_limits<ukey>::digits;

 public:
  /// Lookup-table resolution: bucket grid size is min(2^table_bits,
  /// domain size). 4096 entries of one byte keep the whole table in a
  /// few cache lines.
  static constexpr unsigned table_bits = 12;
  static constexpr std::size_t table_size = std::size_t{1} << table_bits;

  /// Largest supported shard count (must fit the table with room for
  /// distinct bucket edges, and shard ids are stored as bytes).
  static constexpr std::size_t max_shards = 256;

  /// Uniform partition of [lo, hi) into `shard_count` equal ranges
  /// (quantized to the bucket grid). shard_count must be a power of
  /// two; the domain must hold at least one bucket per shard.
  range_router(std::size_t shard_count, Key lo, Key hi)
      : range_router(shard_count, lo, hi, /*splitters=*/nullptr) {}

  /// Uniform partition of the key type's whole domain.
  explicit range_router(std::size_t shard_count)
      : range_router(shard_count, std::numeric_limits<Key>::min(),
                     std::numeric_limits<Key>::max(),
                     /*splitters=*/nullptr, /*full_domain=*/true) {}

  /// Explicit partition of [lo, hi): `splitters` are the lower bounds
  /// of shards 1..S-1, strictly increasing, inside (lo, hi). The shard
  /// count (splitters.size() + 1) must be a power of two. Splitters are
  /// quantized down to bucket edges and must remain distinct.
  range_router(Key lo, Key hi, const std::vector<Key>& splitters)
      : range_router(splitters.size() + 1, lo, hi, &splitters) {}

  /// The shard owning `key`. Keys outside [lo, hi) clamp to the edge
  /// shards. Branch-free: compiles to two conditional moves, a
  /// subtract, a shift and a table load.
  [[nodiscard]] std::size_t shard_of(Key key) const noexcept {
    const Key clamped =
        key < lo_ ? lo_ : (key > hi_inclusive_ ? hi_inclusive_ : key);
    const ukey offset = static_cast<ukey>(clamped) - static_cast<ukey>(lo_);
    return table_[static_cast<std::size_t>(offset >> shift_)];
  }

  [[nodiscard]] std::size_t shard_count() const noexcept {
    return shard_count_;
  }

  /// Induced lower bound of shard i. splitter(0) == lo; for 1 <= i < S
  /// this is the first key routed to shard i.
  [[nodiscard]] Key splitter(std::size_t i) const noexcept {
    LFBST_ASSERT(i < shard_count_, "splitter index out of range");
    return splitters_[i];
  }

  [[nodiscard]] Key lo() const noexcept { return lo_; }
  /// One past the last routed key (inclusive upper edge + 1 saturated).
  [[nodiscard]] Key hi_inclusive() const noexcept { return hi_inclusive_; }

  /// `key` rounded down to its bucket edge — the induced splitter a
  /// router with this domain would use for a requested splitter at
  /// `key`. Rebalancers pass candidate split points through this before
  /// validating them against the neighboring splitters, so a midpoint
  /// that quantizes onto an existing boundary is rejected up front
  /// instead of tripping with_splitter's assertions.
  [[nodiscard]] Key quantize_down(Key key) const noexcept {
    const Key clamped =
        key < lo_ ? lo_ : (key > hi_inclusive_ ? hi_inclusive_ : key);
    const ukey offset = static_cast<ukey>(clamped) - static_cast<ukey>(lo_);
    return static_cast<Key>(static_cast<ukey>(lo_) +
                            ((offset >> shift_) << shift_));
  }

  /// A router identical to this one except splitter(boundary) moves to
  /// `new_splitter` (1 <= boundary < shard_count). The new splitter
  /// must already be a bucket edge (quantize_down) lying strictly
  /// between the two neighboring induced splitters. Domain, shard count
  /// and bucket grid are preserved, so the copy routes every key to the
  /// same shard as before except across the one moved boundary — the
  /// exact property the online migration protocol relies on.
  [[nodiscard]] range_router with_splitter(std::size_t boundary,
                                           Key new_splitter) const {
    LFBST_ASSERT(boundary >= 1 && boundary < shard_count_,
                 "with_splitter boundary out of range");
    std::vector<Key> splitters(splitters_.begin() + 1, splitters_.end());
    splitters[boundary - 1] = new_splitter;
    const bool full_domain =
        lo_ == std::numeric_limits<Key>::min() &&
        hi_inclusive_ == std::numeric_limits<Key>::max();
    const Key hi =
        full_domain ? hi_inclusive_ : static_cast<Key>(hi_inclusive_ + 1);
    return range_router(shard_count_, lo_, hi, &splitters, full_domain);
  }

 private:
  range_router(std::size_t shard_count, Key lo, Key hi,
               const std::vector<Key>* splitters, bool full_domain = false)
      : lo_(lo), shard_count_(shard_count) {
    LFBST_ASSERT(shard_count >= 1 && shard_count <= max_shards,
                 "shard count out of range");
    LFBST_ASSERT((shard_count & (shard_count - 1)) == 0,
                 "shard count must be a power of two");
    // Domain span in offset space. A full-domain router spans 2^W,
    // which does not fit ukey; represent it as span_bits == W.
    unsigned span_bits;
    if (full_domain) {
      span_bits = key_bits;
      hi_inclusive_ = std::numeric_limits<Key>::max();
    } else {
      LFBST_ASSERT(lo < hi, "router domain [lo, hi) is empty");
      const ukey span = static_cast<ukey>(hi) - static_cast<ukey>(lo);
      span_bits = bit_width(span - 1);  // ceil(log2(span)), 0 for span 1
      hi_inclusive_ = static_cast<Key>(hi - 1);
    }
    const unsigned bits = span_bits < table_bits ? span_bits : table_bits;
    shift_ = span_bits - bits;
    const std::size_t buckets = std::size_t{1} << bits;
    // Buckets actually occupied by the domain (the grid rounds the span
    // up to a power of two, so the tail of the grid can be dead space).
    const std::size_t occupied =
        full_domain
            ? buckets
            : static_cast<std::size_t>(
                  ((static_cast<ukey>(hi_inclusive_) -
                    static_cast<ukey>(lo_)) >>
                   shift_) +
                  1);
    LFBST_ASSERT(occupied >= shard_count,
                 "domain too small for this many shards");

    // Bucket edge of each shard's lower bound.
    std::vector<std::size_t> edges(shard_count, 0);
    if (splitters == nullptr) {
      for (std::size_t i = 1; i < shard_count; ++i) {
        // Even split of the occupied buckets, i.e. of the key domain up
        // to bucket granularity.
        edges[i] = i * occupied / shard_count;
      }
    } else {
      LFBST_ASSERT(splitters->size() + 1 == shard_count,
                   "splitter count must be shard_count - 1");
      for (std::size_t i = 1; i < shard_count; ++i) {
        const Key s = (*splitters)[i - 1];
        LFBST_ASSERT(lo < s && (full_domain || s < static_cast<Key>(hi)),
                     "splitters must lie strictly inside (lo, hi)");
        const ukey offset = static_cast<ukey>(s) - static_cast<ukey>(lo);
        edges[i] = static_cast<std::size_t>(offset >> shift_);
      }
    }
    for (std::size_t i = 1; i < shard_count; ++i) {
      LFBST_ASSERT(edges[i] > edges[i - 1],
                   "splitters collapsed after bucket quantization; spread "
                   "them or reduce the shard count");
    }

    // Induced splitters: bucket edges mapped back to keys.
    splitters_.resize(shard_count);
    splitters_[0] = lo_;
    for (std::size_t i = 1; i < shard_count; ++i) {
      splitters_[i] = static_cast<Key>(
          static_cast<ukey>(lo_) +
          (static_cast<ukey>(edges[i]) << shift_));
    }

    // Fill the table monotonically: bucket b belongs to the last shard
    // whose edge is <= b. Buckets past the domain (the grid rounds the
    // span up to a power of two) inherit the last shard; clamping in
    // shard_of() keeps real keys inside the domain anyway.
    table_.assign(table_size, 0);
    std::size_t s = 0;
    for (std::size_t b = 0; b < buckets; ++b) {
      while (s + 1 < shard_count && edges[s + 1] <= b) ++s;
      table_[b] = static_cast<std::uint8_t>(s);
    }
    for (std::size_t b = buckets; b < table_size; ++b) {
      table_[b] = static_cast<std::uint8_t>(shard_count - 1);
    }
  }

  static unsigned bit_width(ukey v) noexcept {
    unsigned bits = 0;
    while (v != 0) {
      ++bits;
      v >>= 1;
    }
    return bits;
  }

  Key lo_;
  Key hi_inclusive_;
  std::size_t shard_count_;
  unsigned shift_ = 0;
  std::vector<Key> splitters_;
  std::vector<std::uint8_t> table_;
};

}  // namespace lfbst::shard
