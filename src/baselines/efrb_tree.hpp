// lfbst: EFRB-BST baseline — the lock-free external BST of Ellen,
// Fatourou, Ruppert & van Breugel (PODC 2010), the primary comparison
// point of the paper (§4, "EFRB-BST").
//
// Same external shape as the NM tree, but coordination is *node-level*:
// every internal node carries an `update` word = (state, Info*) with
// state ∈ {CLEAN, IFLAG, DFLAG, MARK}. A modify operation "locks" nodes
// by flagging their update words with a freshly allocated Info record
// describing the operation, so any thread that encounters the flag can
// complete (help) the operation from the record:
//
//   insert: allocate leaf(k), a *copy* of the existing leaf, a new
//           internal node, and an IInfo record (4 objects — Table 1);
//           IFLAG the parent, swing its child edge, unflag. 3 CAS.
//   delete: allocate a DInfo record (1 object); DFLAG the grandparent,
//           MARK the parent (permanent), swing the grandparent's child
//           edge to the sibling, unflag the grandparent. 4 CAS. If the
//           MARK fails, the delete *aborts*: it unflags the grandparent
//           (backtrack CAS) and retries from scratch — the behaviour the
//           NM paper's §5 contrasts with its own non-aborting deletes.
//
// The update word reuses tagged_word: flag bit = IFLAG, tag bit = DFLAG,
// both = MARK, neither = CLEAN, with the Info record address in the
// pointer bits.
//
// Sentinels: root key ∞₂ with children leaf(∞₁), leaf(∞₂); client keys
// all live in the left subtree of the root, so a client leaf always has
// a parent and grandparent.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <new>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "alloc/node_pool.hpp"
#include "common/assert.hpp"
#include "common/tagged_word.hpp"
#include "core/sentinel_key.hpp"
#include "core/stats.hpp"
#include "reclaim/epoch.hpp"
#include "reclaim/leaky.hpp"

namespace lfbst {

// The Atomics policy (common/atomics_policy.hpp) interposes on every
// load/CAS of the child and update words, exactly as in nm_tree — the
// dsched scheduler explores this baseline's Info-record helping protocol
// with the same machinery.
template <typename Key, typename Compare = std::less<Key>,
          typename Reclaimer = reclaim::leaky, typename Stats = stats::none,
          typename Atomics = atomics::native>
class efrb_tree {
  static_assert(Reclaimer::reclaims_eagerly ||
                    std::is_trivially_destructible_v<Key>,
                "leaky reclamation requires trivially destructible keys");
  static_assert(!Reclaimer::requires_validated_traversal,
                "this tree's traversal does not validate per-node; use the "
                "leaky or epoch reclaimer (hazard pointers need the NM "
                "tree's protected seek)");

 public:
  using key_type = Key;
  using key_compare = Compare;
  using stats_policy = Stats;
  using reclaimer_type = Reclaimer;

  static constexpr const char* algorithm_name = "EFRB-BST";

  efrb_tree()
      : node_pool_(sizeof(node)), info_pool_(sizeof(info_record)) {
    node* left = make_leaf(skey::inf1());
    node* right = make_leaf(skey::inf2());
    root_ = make_internal(skey::inf2(), left, right);
  }

  efrb_tree(const efrb_tree&) = delete;
  efrb_tree& operator=(const efrb_tree&) = delete;

  ~efrb_tree() {
    destroy_reachable(root_);
    reclaimer_.drain_all_unsafe();
  }

  [[nodiscard]] bool contains(const Key& key) const {
    stats_.on_op_begin(stats::op_kind::search);
    bool found;
    {
      [[maybe_unused]] auto guard = reclaimer_.pin();
      search_result s = search(key);
      found = less_.equal(key, s.leaf->key);
    }
    stats_.on_op_end(stats::op_kind::search, found);
    return found;
  }

  bool insert(const Key& key) {
    stats_.on_op_begin(stats::op_kind::insert);
    const bool inserted = insert_impl(key);
    stats_.on_op_end(stats::op_kind::insert, inserted);
    return inserted;
  }

  bool erase(const Key& key) {
    stats_.on_op_begin(stats::op_kind::erase);
    const bool erased = erase_impl(key);
    stats_.on_op_end(stats::op_kind::erase, erased);
    return erased;
  }

 private:
  bool insert_impl(const Key& key) {
    [[maybe_unused]] auto guard = reclaimer_.pin();
    for (;;) {
      search_result s = search(key);
      if (less_.equal(key, s.leaf->key)) return false;
      if (update_state(s.pupdate) != state::clean) {
        help(s.pupdate);
        stats_.on_seek_restart();
        continue;
      }
      // Four allocations, matching the original algorithm (and Table 1):
      // the new leaf, a copy of the existing leaf, the new internal
      // node, and the IInfo coordination record.
      node* new_leaf = make_leaf(skey(key));
      node* sibling = make_leaf(s.leaf->key);
      node* new_internal;
      if (less_(key, s.leaf->key)) {
        new_internal = make_internal(s.leaf->key, new_leaf, sibling);
      } else {
        new_internal = make_internal(skey(key), sibling, new_leaf);
      }
      info_record* op = make_info();
      op->iinfo = {s.parent, s.leaf, new_internal};

      update_t expected = s.pupdate;
      stats_.on_cas();
      if (s.parent->update.compare_exchange(
              expected, update_t(op, /*iflag=*/true, /*dflag=*/false))) {
        help_insert(op);  // completes the insert (child CAS + unflag)
        if constexpr (Reclaimer::reclaims_eagerly) {
          // The displaced leaf was replaced by its copy; only the
          // winning inserter retires it (helpers never do).
          reclaimer_.retire(s.leaf, &node_deleter, &node_pool_);
          retire_info_later(op);
        }
        return true;
      }
      // Flag lost: the nodes we built were never published; recycle them
      // immediately and help whoever beat us.
      stats_.on_cas_fail();
      destroy_node(new_leaf);
      destroy_node(sibling);
      destroy_node(new_internal);
      destroy_info(op);
      help(expected);
      stats_.on_seek_restart();
    }
  }

  bool erase_impl(const Key& key) {
    [[maybe_unused]] auto guard = reclaimer_.pin();
    for (;;) {
      search_result s = search(key);
      if (!less_.equal(key, s.leaf->key)) return false;
      if (update_state(s.gpupdate) != state::clean) {
        help(s.gpupdate);
        stats_.on_seek_restart();
        continue;
      }
      if (update_state(s.pupdate) != state::clean) {
        help(s.pupdate);
        stats_.on_seek_restart();
        continue;
      }
      info_record* op = make_info();
      op->dinfo = {s.grandparent, s.parent, s.leaf, s.pupdate};

      update_t expected = s.gpupdate;
      stats_.on_cas();
      if (s.grandparent->update.compare_exchange(
              expected, update_t(op, /*iflag=*/false, /*dflag=*/true))) {
        if (help_delete(op)) {
          if constexpr (Reclaimer::reclaims_eagerly) {
            // The delete owner retires the two removed nodes and its
            // coordination record.
            reclaimer_.retire(s.parent, &node_deleter, &node_pool_);
            reclaimer_.retire(s.leaf, &node_deleter, &node_pool_);
            retire_info_later(op);
          }
          return true;
        }
        // Aborted (mark lost): op is permanently retired below; retry.
        if constexpr (Reclaimer::reclaims_eagerly) retire_info_later(op);
      } else {
        stats_.on_cas_fail();
        destroy_info(op);
        help(expected);
      }
      stats_.on_seek_restart();
    }
  }

 public:
  // --- quiescent observers (same contract as nm_tree) -----------------

  [[nodiscard]] std::size_t size_slow() const {
    std::size_t n = 0;
    for_each_slow([&n](const Key&) { ++n; });
    return n;
  }

  template <typename F>
  void for_each_slow(F&& fn) const {
    // In-order via explicit stack (left-spine push).
    std::vector<const node*> spine;
    const node* n = root_;
    while (n != nullptr || !spine.empty()) {
      while (n != nullptr) {
        spine.push_back(n);
        n = n->left.load(std::memory_order_relaxed).address();
      }
      const node* top = spine.back();
      spine.pop_back();
      if (top->left.load(std::memory_order_relaxed).address() == nullptr &&
          !top->key.is_sentinel()) {
        fn(top->key.key);
      }
      n = top->right.load(std::memory_order_relaxed).address();
    }
  }

  [[nodiscard]] std::string validate() const {
    std::string err;
    if (root_->key.rank != 3) err += "root key is not inf2; ";
    struct frame {
      const node* n;
      const skey* low;
      const skey* high;
    };
    std::vector<frame> stack{{root_, nullptr, nullptr}};
    while (!stack.empty()) {
      auto [n, low, high] = stack.back();
      stack.pop_back();
      const node* l = n->left.load(std::memory_order_relaxed).address();
      const node* r = n->right.load(std::memory_order_relaxed).address();
      if ((l == nullptr) != (r == nullptr)) {
        err += "external shape violated; ";
        continue;
      }
      if (l != nullptr &&
          update_state(n->update.load(std::memory_order_relaxed)) !=
              state::clean) {
        err += "reachable non-CLEAN update word at quiescence; ";
      }
      if (low != nullptr && less_(n->key, *low)) err += "key below bound; ";
      if (high != nullptr && !less_(n->key, *high)) {
        err += "key not below bound; ";
      }
      if (l != nullptr) {
        stack.push_back({l, low, &n->key});
        stack.push_back({r, &n->key, high});
      }
    }
    return err;
  }

  [[nodiscard]] std::size_t reclaimer_pending() const {
    return reclaimer_.pending();
  }

  /// The Stats policy instance this tree reports into (see nm_tree).
  [[nodiscard]] Stats& stats() const noexcept { return stats_; }

 private:
  using skey = sentinel_key<Key>;

  enum class state { clean, iflag, dflag, mark };

  struct node;
  struct info_record;

  /// (state, Info*) packed via tagged_word: flag bit = IFLAG,
  /// tag bit = DFLAG, both = MARK.
  using update_t = tagged_ptr<info_record>;

  struct node {
    skey key;
    // coordination word (internal only)
    tagged_word<info_record, Atomics> update;
    tagged_word<node, Atomics> left;
    tagged_word<node, Atomics> right;
  };
  using word_t = tagged_word<node, Atomics>;

  struct iinfo_fields {
    node* parent;
    node* leaf;
    node* new_internal;
  };
  struct dinfo_fields {
    node* grandparent;
    node* parent;
    node* leaf;
    update_t pupdate;  // parent's update word as seen by the search
  };

  /// One allocation type for both record kinds; the kind is implied by
  /// the state bits of the update word that points at the record.
  struct info_record {
    union {
      iinfo_fields iinfo;
      dinfo_fields dinfo;
    };
    info_record() : iinfo{} {}
  };

  struct search_result {
    node* grandparent = nullptr;
    node* parent = nullptr;
    node* leaf = nullptr;
    update_t gpupdate{};
    update_t pupdate{};
  };

  static state update_state(update_t u) noexcept {
    const bool f = u.flagged(), t = u.tagged();
    if (f && t) return state::mark;
    if (f) return state::iflag;
    if (t) return state::dflag;
    return state::clean;
  }

  // --- node/info lifecycle ---------------------------------------------

  node* make_leaf(skey k) {
    stats_.on_alloc();
    node* n = new (node_pool_.allocate(sizeof(node))) node{std::move(k),
                                                           {}, {}, {}};
    return n;
  }

  node* make_internal(skey k, node* l, node* r) {
    stats_.on_alloc();
    node* n = new (node_pool_.allocate(sizeof(node))) node{std::move(k),
                                                           {}, {}, {}};
    n->left.store_relaxed(tagged_ptr<node>::clean(l));
    n->right.store_relaxed(tagged_ptr<node>::clean(r));
    return n;
  }

  info_record* make_info() {
    stats_.on_alloc();
    return new (info_pool_.allocate(sizeof(info_record))) info_record();
  }

  void destroy_node(node* n) {
    n->~node();
    node_pool_.deallocate(n);
  }
  void destroy_info(info_record* op) {
    op->~info_record();
    info_pool_.deallocate(op);
  }

  static void node_deleter(void* obj, void* ctx) noexcept {
    auto* n = static_cast<node*>(obj);
    n->~node();
    static_cast<node_pool*>(ctx)->deallocate(obj);
  }
  static void info_deleter(void* obj, void* ctx) noexcept {
    auto* op = static_cast<info_record*>(obj);
    op->~info_record();
    static_cast<node_pool*>(ctx)->deallocate(obj);
  }

  void retire_info_later(info_record* op) {
    // Info records stay referenced by CLEAN update words, but are only
    // dereferenced while the word is flagged; after the grace period no
    // helper can still act on this record.
    reclaimer_.retire(op, &info_deleter, &info_pool_);
  }

  // --- search (Ellen et al. Search) --------------------------------------

  search_result search(const Key& key) const {
    search_result s;
    s.leaf = root_;
    node* current = root_;
    [[maybe_unused]] std::uint64_t depth = 0;
    while (current->left.load(std::memory_order_acquire).address() !=
           nullptr) {
      if constexpr (Stats::enabled) ++depth;
      s.grandparent = s.parent;
      s.gpupdate = s.pupdate;
      s.parent = current;
      s.pupdate = current->update.load();
      current = less_(key, current->key)
                    ? current->left.load().address()
                    : current->right.load().address();
      s.leaf = current;
    }
    if constexpr (Stats::enabled) stats_.on_seek(depth);
    return s;
  }

  // --- helping ----------------------------------------------------------

  void help(update_t u) {
    // Info-record helping is node-level, not edge-marked: no flagged/
    // tagged distinction to attribute.
    stats_.on_help(stats::help_kind::unattributed);
    switch (update_state(u)) {
      case state::iflag:
        help_insert(u.address());
        break;
      case state::mark:
        help_marked(u.address());
        break;
      case state::dflag:
        help_delete(u.address());
        break;
      case state::clean:
        break;
    }
  }

  void help_insert(info_record* op) {
    // Swing the parent's child edge from the old leaf to the new
    // internal node, then unflag.
    cas_child(op->iinfo.parent, op->iinfo.leaf, op->iinfo.new_internal);
    update_t expected(op, /*iflag=*/true, /*dflag=*/false);
    stats_.on_cas();
    if (!op->iinfo.parent->update.compare_exchange(
            expected, update_t(op, false, false))) {  // CLEAN, record kept
      stats_.on_cas_fail();
    }
  }

  /// Returns true if the delete committed, false if it must abort
  /// (backtrack) because the parent could not be marked.
  bool help_delete(info_record* op) {
    update_t expected = op->dinfo.pupdate;
    stats_.on_cas();
    const bool marked = op->dinfo.parent->update.compare_exchange(
        expected, update_t(op, /*iflag=*/true, /*dflag=*/true));  // MARK
    if (!marked) stats_.on_cas_fail();
    if (marked || expected == update_t(op, true, true)) {
      help_marked(op);
      return true;
    }
    // Someone else owns the parent: help them, then backtrack our DFLAG
    // so the grandparent becomes CLEAN again and we can retry.
    help(expected);
    update_t gp_expected(op, /*iflag=*/false, /*dflag=*/true);
    stats_.on_cas();
    if (!op->dinfo.grandparent->update.compare_exchange(
            gp_expected, update_t(op, false, false))) {
      stats_.on_cas_fail();
    }
    return false;
  }

  void help_marked(info_record* op) {
    // Identify the sibling of the deleted leaf, splice the parent out,
    // then unflag the grandparent.
    node* parent = op->dinfo.parent;
    node* sibling;
    if (parent->right.load().address() == op->dinfo.leaf) {
      sibling = parent->left.load().address();
    } else {
      sibling = parent->right.load().address();
    }
    cas_child(op->dinfo.grandparent, parent, sibling);
    update_t expected(op, /*iflag=*/false, /*dflag=*/true);
    stats_.on_cas();
    if (!op->dinfo.grandparent->update.compare_exchange(
            expected, update_t(op, false, false))) {
      stats_.on_cas_fail();
    }
  }

  /// CAS the child edge of `parent` that currently addresses `old_child`
  /// toward `new_child` (direction chosen by new_child's key — both old
  /// and new cover the same key interval).
  void cas_child(node* parent, node* old_child, node* new_child) {
    word_t& field = less_(new_child->key, parent->key)
                        ? parent->left
                        : parent->right;
    tagged_ptr<node> expected = tagged_ptr<node>::clean(old_child);
    stats_.on_cas();
    if (!field.compare_exchange(expected, tagged_ptr<node>::clean(new_child))) {
      stats_.on_cas_fail();
    }
  }

  void destroy_reachable(node* root) {
    std::vector<node*> stack{root};
    while (!stack.empty()) {
      node* n = stack.back();
      stack.pop_back();
      if (node* l = n->left.load(std::memory_order_relaxed).address()) {
        stack.push_back(l);
      }
      if (node* r = n->right.load(std::memory_order_relaxed).address()) {
        stack.push_back(r);
      }
      destroy_node(n);
    }
    // Info records that were committed are not reachable from the tree;
    // leaky mode leaves them in the pool (freed with the slabs), epoch
    // mode already retired them.
  }

  [[no_unique_address]] sentinel_less<Key, Compare> less_{};
  [[no_unique_address]] mutable Stats stats_{};
  node_pool node_pool_;
  node_pool info_pool_;
  mutable Reclaimer reclaimer_{};
  node* root_ = nullptr;
};

}  // namespace lfbst
