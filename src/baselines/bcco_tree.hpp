// lfbst: BCCO-BST baseline — the lock-based concurrent relaxed-balance
// AVL tree of Bronson, Casper, Chafi & Olukotun (PPoPP 2010), the
// lock-based comparison point of the paper's evaluation (§4).
//
// Three ideas define the algorithm:
//
//   1. *Optimistic hand-over-hand traversal.* Readers take no locks.
//      Every node carries a version word; a rotation ("shrink") sets a
//      Shrinking bit for its duration and bumps a counter when done, and
//      unlinking sets a permanent Unlinked bit. A traversal captures a
//      node's version, reads the child pointer, re-validates the
//      version, and descends; if validation fails the search retries
//      from the parent (or propagates RETRY upward when the parent
//      itself changed).
//
//   2. *Partially external deletion.* Removing a key held by a node with
//      two children does not restructure the tree: the node's `present`
//      flag is cleared and it stays as a routing node (re-usable by a
//      later insert of the same key). Nodes with at most one child are
//      physically unlinked under the locks of node and parent. Routing
//      nodes left with fewer than two children are unlinked
//      opportunistically during rebalancing.
//
//   3. *Relaxed AVL balancing.* Heights may be stale; writers repair
//      height and balance bottom-up after each structural change
//      (fixHeightAndRebalance), performing single or double rotations
//      under the locks of the affected nodes only. Balance is restored
//      eventually rather than instantly, so rebalancing never blocks
//      readers and rarely blocks disjoint writers.
//
// The paper benchmarks Wicht's C++ port of this algorithm; this is a
// from-scratch port of the same design (DESIGN.md substitution table).
// Progress: blocking (deadlock-free: locks are acquired parent-before-
// child along tree edges). Unlinked-node memory follows the same
// Reclaimer policies as the lock-free trees.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <new>
#include <string>
#include <type_traits>
#include <vector>

#include "alloc/node_pool.hpp"
#include "common/assert.hpp"
#include "common/backoff.hpp"
#include "common/spinlock.hpp"
#include "core/stats.hpp"
#include "reclaim/epoch.hpp"
#include "reclaim/leaky.hpp"

namespace lfbst {

template <typename Key, typename Compare = std::less<Key>,
          typename Reclaimer = reclaim::leaky, typename Stats = stats::none>
class bcco_tree {
  static_assert(Reclaimer::reclaims_eagerly ||
                    std::is_trivially_destructible_v<Key>,
                "leaky reclamation requires trivially destructible keys");
  static_assert(!Reclaimer::requires_validated_traversal,
                "this tree's traversal does not validate per-node; use the "
                "leaky or epoch reclaimer (hazard pointers need the NM "
                "tree's protected seek)");

 public:
  using key_type = Key;
  using key_compare = Compare;
  using stats_policy = Stats;
  using reclaimer_type = Reclaimer;

  static constexpr const char* algorithm_name = "BCCO-BST";

  bcco_tree() : pool_(sizeof(node)) {
    // rootHolder: an unkeyed pseudo-node whose right child is the tree.
    // Its version never changes and it is never unlinked, so top-level
    // retries simply re-enter the loop.
    root_holder_ = make_node(Key{}, /*present=*/false);
  }

  bcco_tree(const bcco_tree&) = delete;
  bcco_tree& operator=(const bcco_tree&) = delete;

  ~bcco_tree() {
    destroy_reachable(root_holder_);
    reclaimer_.drain_all_unsafe();
  }

  [[nodiscard]] bool contains(const Key& key) const {
    [[maybe_unused]] auto guard = reclaimer_.pin();
    for (;;) {
      node* right = root_holder_->right.load(std::memory_order_acquire);
      if (right == nullptr) return false;
      const std::uint64_t ovl = right->version.load(std::memory_order_acquire);
      if (is_shrinking_or_unlinked(ovl)) {
        wait_until_not_changing(right);
        continue;
      }
      if (root_holder_->right.load(std::memory_order_acquire) != right) {
        continue;  // the root was swapped while we read its version
      }
      const tri result = attempt_get(key, right, ovl);
      if (result != tri::retry) return result == tri::yes;
    }
  }

  bool insert(const Key& key) {
    [[maybe_unused]] auto guard = reclaimer_.pin();
    return update(key, /*is_insert=*/true);
  }

  bool erase(const Key& key) {
    [[maybe_unused]] auto guard = reclaimer_.pin();
    return update(key, /*is_insert=*/false);
  }

  // --- quiescent observers ----------------------------------------------

  [[nodiscard]] std::size_t size_slow() const {
    std::size_t n = 0;
    for_each_slow([&n](const Key&) { ++n; });
    return n;
  }

  /// In-order walk over present keys; routing nodes are skipped.
  template <typename F>
  void for_each_slow(F&& fn) const {
    std::vector<const node*> spine;
    const node* n = root_holder_->right.load(std::memory_order_relaxed);
    while (n != nullptr || !spine.empty()) {
      while (n != nullptr) {
        spine.push_back(n);
        n = n->left.load(std::memory_order_relaxed);
      }
      const node* top = spine.back();
      spine.pop_back();
      if (top->present.load(std::memory_order_relaxed)) fn(top->key);
      n = top->right.load(std::memory_order_relaxed);
    }
  }

  [[nodiscard]] std::string validate() const {
    std::string err;
    struct frame {
      const node* n;
      const node* parent;
      bool has_low = false, has_high = false;
      Key low{}, high{};  // exclusive bounds, by value
    };
    const node* top = root_holder_->right.load(std::memory_order_relaxed);
    if (top == nullptr) return err;
    std::vector<frame> stack{frame{top, root_holder_}};
    while (!stack.empty()) {
      const frame f = stack.back();
      stack.pop_back();
      const node* n = f.n;
      if (n->version.load(std::memory_order_relaxed) & unlinked_bit) {
        err += "reachable unlinked node; ";
      }
      if (n->parent.load(std::memory_order_relaxed) != f.parent) {
        err += "parent pointer mismatch; ";
      }
      if (f.has_low && !less_(f.low, n->key)) err += "key <= low bound; ";
      if (f.has_high && !less_(n->key, f.high)) err += "key >= high bound; ";
      const node* l = n->left.load(std::memory_order_relaxed);
      const node* r = n->right.load(std::memory_order_relaxed);
      if (!n->present.load(std::memory_order_relaxed) && l == nullptr &&
          r == nullptr) {
        // Routing nodes with exactly one child are legal transients of
        // the relaxed scheme, but a *childless* routing node must always
        // be cleaned by fixHeightAndRebalance before quiescence.
        err += "childless routing node at quiescence; ";
      }
      if (l != nullptr) {
        stack.push_back(frame{l, n, f.has_low, true, f.low, n->key});
      }
      if (r != nullptr) {
        stack.push_back(frame{r, n, true, f.has_high, n->key, f.high});
      }
    }
    return err;
  }

  [[nodiscard]] std::size_t reclaimer_pending() const {
    return reclaimer_.pending();
  }

  /// Deepest node depth (diagnostics; relaxed AVL keeps this O(log n)).
  [[nodiscard]] std::size_t height_slow() const {
    std::size_t best = 0;
    std::vector<std::pair<const node*, std::size_t>> stack{
        {root_holder_->right.load(std::memory_order_relaxed), 1}};
    while (!stack.empty()) {
      auto [n, d] = stack.back();
      stack.pop_back();
      if (n == nullptr) continue;
      best = std::max(best, d);
      stack.push_back({n->left.load(std::memory_order_relaxed), d + 1});
      stack.push_back({n->right.load(std::memory_order_relaxed), d + 1});
    }
    return best;
  }

 private:
  // --- version word ------------------------------------------------------
  // bit 0: unlinked (permanent); bit 1: shrinking (held during a
  // rotation); bits 2..63: shrink counter, bumped once per rotation.
  static constexpr std::uint64_t unlinked_bit = 0x1;
  static constexpr std::uint64_t shrinking_bit = 0x2;
  static constexpr std::uint64_t version_incr = 0x4;

  static bool is_shrinking_or_unlinked(std::uint64_t v) noexcept {
    return (v & (unlinked_bit | shrinking_bit)) != 0;
  }

  struct node {
    explicit node(const Key& k) : key(k) {}

    Key key;
    std::atomic<bool> present{false};
    std::atomic<std::uint64_t> version{0};
    std::atomic<int> height{1};
    std::atomic<node*> parent{nullptr};
    std::atomic<node*> left{nullptr};
    std::atomic<node*> right{nullptr};
    spinlock lock;
  };

  enum class tri { retry, yes, no };

  // --- read path ----------------------------------------------------------

  tri attempt_get(const Key& key, node* n, std::uint64_t n_ovl) const {
    for (;;) {
      if (eq(key, n->key)) {
        // Keys are immutable; arriving at the node is enough — the
        // present flag is the linearizable answer (reading false on a
        // just-unlinked node linearizes at the unlink, which cleared it).
        return n->present.load(std::memory_order_acquire) ? tri::yes
                                                          : tri::no;
      }
      std::atomic<node*>& child_ref =
          less_(key, n->key) ? n->left : n->right;
      node* child = child_ref.load(std::memory_order_acquire);
      if (n->version.load(std::memory_order_acquire) != n_ovl) {
        return tri::retry;
      }
      if (child == nullptr) return tri::no;  // validated absent
      const std::uint64_t c_ovl =
          child->version.load(std::memory_order_acquire);
      if (c_ovl & shrinking_bit) {
        wait_until_not_changing(child);
        if (n->version.load(std::memory_order_acquire) != n_ovl) {
          return tri::retry;
        }
        continue;  // re-read the child pointer
      }
      if ((c_ovl & unlinked_bit) != 0 ||
          child_ref.load(std::memory_order_acquire) != child) {
        if (n->version.load(std::memory_order_acquire) != n_ovl) {
          return tri::retry;
        }
        continue;
      }
      const tri result = attempt_get(key, child, c_ovl);
      if (result != tri::retry) return result;
      if (n->version.load(std::memory_order_acquire) != n_ovl) {
        return tri::retry;
      }
      // Child-level retry with our own version intact: re-descend.
    }
  }

  // --- write path ----------------------------------------------------------

  bool update(const Key& key, bool is_insert) {
    for (;;) {
      // rootHolder's version is immutable, so this call only returns
      // retry on internal races; loop until it resolves.
      const tri result =
          attempt_update(key, is_insert, root_holder_, root_version_);
      if (result != tri::retry) return result == tri::yes;
      Stats::on_seek_restart();
    }
  }

  static constexpr std::uint64_t root_version_ = 0;

  /// Descend from validated `parent` toward `key`; perform the
  /// insert/remove when the key's node (or its null slot) is found.
  tri attempt_update(const Key& key, bool is_insert, node* parent,
                     std::uint64_t parent_ovl) {
    std::atomic<node*>& child_ref = (parent == root_holder_)
                                        ? parent->right
                                        : (less_(key, parent->key)
                                               ? parent->left
                                               : parent->right);
    for (;;) {
      node* child = child_ref.load(std::memory_order_acquire);
      if (parent->version.load(std::memory_order_acquire) != parent_ovl) {
        return tri::retry;
      }
      if (child == nullptr) {
        if (!is_insert) return tri::no;  // validated absent
        const tri r = attempt_insert_at(key, parent, parent_ovl, child_ref);
        if (r != tri::retry) return r;
        continue;  // local retry: the slot changed under the lock attempt
      }
      if (eq(key, child->key)) {
        return is_insert ? attempt_node_add(child)
                         : attempt_rm_node(parent, child);
      }
      const std::uint64_t c_ovl =
          child->version.load(std::memory_order_acquire);
      if (c_ovl & shrinking_bit) {
        wait_until_not_changing(child);
        if (parent->version.load(std::memory_order_acquire) != parent_ovl) {
          return tri::retry;
        }
        continue;
      }
      if ((c_ovl & unlinked_bit) != 0 ||
          child_ref.load(std::memory_order_acquire) != child) {
        if (parent->version.load(std::memory_order_acquire) != parent_ovl) {
          return tri::retry;
        }
        continue;
      }
      const tri result = attempt_update(key, is_insert, child, c_ovl);
      if (result != tri::retry) return result;
      if (parent->version.load(std::memory_order_acquire) != parent_ovl) {
        return tri::retry;
      }
    }
  }

  /// Install a fresh leaf in a validated-null child slot of `parent`.
  tri attempt_insert_at(const Key& key, node* parent,
                        std::uint64_t parent_ovl,
                        std::atomic<node*>& child_ref) {
    node* fresh;
    {
      std::lock_guard<spinlock> g(parent->lock);
      if (parent->version.load(std::memory_order_relaxed) != parent_ovl) {
        return tri::retry;
      }
      if (child_ref.load(std::memory_order_relaxed) != nullptr) {
        // Someone inserted here first. The caller's loop re-reads the
        // slot (its own version check decides whether to propagate).
        return tri::retry;
      }
      fresh = make_node(key, /*present=*/true);
      fresh->parent.store(parent, std::memory_order_relaxed);
      child_ref.store(fresh, std::memory_order_release);
    }
    fix_height_and_rebalance(parent);
    return tri::yes;
  }

  /// Re-arm a routing node that already carries the key.
  tri attempt_node_add(node* n) {
    std::lock_guard<spinlock> g(n->lock);
    if (n->version.load(std::memory_order_relaxed) & unlinked_bit) {
      return tri::retry;
    }
    if (n->present.load(std::memory_order_relaxed)) return tri::no;
    n->present.store(true, std::memory_order_release);
    return tri::yes;
  }

  /// Remove the key at `n` (child of validated `parent`): unlink if n
  /// has at most one child, else demote to a routing node.
  tri attempt_rm_node(node* parent, node* n) {
    if (!n->present.load(std::memory_order_acquire)) return tri::no;
    if (n->left.load(std::memory_order_acquire) != nullptr &&
        n->right.load(std::memory_order_acquire) != nullptr) {
      // Two children: partially external removal — demote in place.
      std::lock_guard<spinlock> g(n->lock);
      if (n->version.load(std::memory_order_relaxed) & unlinked_bit) {
        return tri::retry;
      }
      if (!n->present.load(std::memory_order_relaxed)) return tri::no;
      if (n->left.load(std::memory_order_relaxed) == nullptr ||
          n->right.load(std::memory_order_relaxed) == nullptr) {
        // Lost a child since we looked: take the unlink path instead so
        // we never create a one-child routing node.
        return tri::retry;
      }
      n->present.store(false, std::memory_order_release);
      return tri::yes;
    }
    // At most one child: physically unlink under parent+node locks.
    {
      std::lock_guard<spinlock> gp(parent->lock);
      if ((parent->version.load(std::memory_order_relaxed) & unlinked_bit) ||
          n->parent.load(std::memory_order_relaxed) != parent) {
        return tri::retry;
      }
      std::lock_guard<spinlock> gn(n->lock);
      if (!n->present.load(std::memory_order_relaxed)) return tri::no;
      node* left = n->left.load(std::memory_order_relaxed);
      node* right = n->right.load(std::memory_order_relaxed);
      if (left != nullptr && right != nullptr) {
        // Grew a second child since we looked: demote instead.
        n->present.store(false, std::memory_order_release);
        return tri::yes;
      }
      node* splice = (left != nullptr) ? left : right;
      n->present.store(false, std::memory_order_relaxed);
      n->version.store(
          n->version.load(std::memory_order_relaxed) | unlinked_bit,
          std::memory_order_release);
      if (parent->left.load(std::memory_order_relaxed) == n) {
        parent->left.store(splice, std::memory_order_release);
      } else {
        parent->right.store(splice, std::memory_order_release);
      }
      if (splice != nullptr) {
        splice->parent.store(parent, std::memory_order_release);
      }
      if constexpr (Reclaimer::reclaims_eagerly) {
        reclaimer_.retire(n, &node_deleter, &pool_);
      }
    }
    fix_height_and_rebalance(parent);
    return tri::yes;
  }

  // --- relaxed AVL repair --------------------------------------------------

  static int height_of(node* n) noexcept {
    return n == nullptr ? 0 : n->height.load(std::memory_order_acquire);
  }

  enum class condition { nothing, unlink, rebalance, fix_height };

  condition node_condition(node* n, int& new_height) const {
    node* l = n->left.load(std::memory_order_acquire);
    node* r = n->right.load(std::memory_order_acquire);
    if ((l == nullptr || r == nullptr) &&
        !n->present.load(std::memory_order_acquire)) {
      return condition::unlink;
    }
    const int hl = height_of(l), hr = height_of(r);
    new_height = 1 + std::max(hl, hr);
    const int bal = hl - hr;
    if (bal < -1 || bal > 1) return condition::rebalance;
    return new_height != n->height.load(std::memory_order_acquire)
               ? condition::fix_height
               : condition::nothing;
  }

  void fix_height_and_rebalance(node* n) {
    backoff delay;
    while (n != nullptr && n != root_holder_) {
      int new_height = 0;
      const condition c = node_condition(n, new_height);
      if (c == condition::nothing ||
          (n->version.load(std::memory_order_acquire) & unlinked_bit)) {
        return;
      }
      if (c == condition::fix_height) {
        std::lock_guard<spinlock> g(n->lock);
        n = fix_height_nl(n);
      } else {
        node* parent = n->parent.load(std::memory_order_acquire);
        if (parent == nullptr) return;
        std::lock_guard<spinlock> gp(parent->lock);
        if ((parent->version.load(std::memory_order_relaxed) &
             unlinked_bit) ||
            n->parent.load(std::memory_order_acquire) != parent) {
          delay();
          continue;  // parent moved; re-evaluate
        }
        std::lock_guard<spinlock> gn(n->lock);
        n = rebalance_nl(parent, n);
      }
    }
  }

  /// Caller holds n's lock. Repairs the height if that is all n needs;
  /// returns the next node to examine (parent on change, n itself if a
  /// structural fix is now needed, null when done).
  node* fix_height_nl(node* n) {
    int new_height = 0;
    switch (node_condition(n, new_height)) {
      case condition::nothing:
        return nullptr;
      case condition::unlink:
      case condition::rebalance:
        return n;  // needs the two-lock path
      case condition::fix_height:
        n->height.store(new_height, std::memory_order_release);
        return n->parent.load(std::memory_order_acquire);
    }
    return nullptr;
  }

  /// Caller holds parent's and n's locks.
  node* rebalance_nl(node* parent, node* n) {
    node* l = n->left.load(std::memory_order_relaxed);
    node* r = n->right.load(std::memory_order_relaxed);
    if ((l == nullptr || r == nullptr) &&
        !n->present.load(std::memory_order_relaxed)) {
      if (attempt_unlink_nl(parent, n)) {
        // n is gone; repair the parent (we still hold its lock).
        return fix_height_nl(parent);
      }
      return n;  // couldn't unlink right now; re-examine
    }
    const int hn = n->height.load(std::memory_order_relaxed);
    const int hl0 = height_of(l), hr0 = height_of(r);
    const int new_height = 1 + std::max(hl0, hr0);
    const int bal = hl0 - hr0;
    if (bal > 1) return rebalance_to_right_nl(parent, n, l, hr0);
    if (bal < -1) return rebalance_to_left_nl(parent, n, r, hl0);
    if (new_height != hn) {
      n->height.store(new_height, std::memory_order_release);
      return parent;
    }
    return nullptr;
  }

  /// Caller holds parent's and n's locks; n is left-heavy.
  node* rebalance_to_right_nl(node* parent, node* n, node* nl, int hr0) {
    std::lock_guard<spinlock> gl(nl->lock);
    const int hl = nl->height.load(std::memory_order_relaxed);
    if (hl - hr0 <= 1) return n;  // balance repaired itself meanwhile
    node* nlr = nl->right.load(std::memory_order_relaxed);
    const int hll0 = height_of(nl->left.load(std::memory_order_relaxed));
    const int hlr0 = height_of(nlr);
    if (hll0 >= hlr0) {
      return rotate_right_nl(parent, n, nl, hr0, hll0, nlr, hlr0);
    }
    {
      std::lock_guard<spinlock> glr(nlr->lock);
      const int hlr = nlr->height.load(std::memory_order_relaxed);
      if (hll0 >= hlr) {
        return rotate_right_nl(parent, n, nl, hr0, hll0, nlr, hlr);
      }
      const int hlrl =
          height_of(nlr->left.load(std::memory_order_relaxed));
      const int b = hll0 - hlrl;
      if (b >= -1 && b <= 1 &&
          !((hll0 == 0 || hlrl == 0) &&
            !nl->present.load(std::memory_order_relaxed))) {
        return rotate_right_over_left_nl(parent, n, nl, hr0, hll0, nlr,
                                         hlrl);
      }
    }
    // nl needs a left rotation first; recurse with the locks we hold.
    return rebalance_to_left_nl(n, nl, nlr, hll0);
  }

  /// Mirror image of rebalance_to_right_nl.
  node* rebalance_to_left_nl(node* parent, node* n, node* nr, int hl0) {
    std::lock_guard<spinlock> gr(nr->lock);
    const int hr = nr->height.load(std::memory_order_relaxed);
    if (hl0 - hr >= -1) return n;
    node* nrl = nr->left.load(std::memory_order_relaxed);
    const int hrl0 = height_of(nrl);
    const int hrr0 = height_of(nr->right.load(std::memory_order_relaxed));
    if (hrr0 >= hrl0) {
      return rotate_left_nl(parent, n, hl0, nr, nrl, hrl0, hrr0);
    }
    {
      std::lock_guard<spinlock> grl(nrl->lock);
      const int hrl = nrl->height.load(std::memory_order_relaxed);
      if (hrr0 >= hrl) {
        return rotate_left_nl(parent, n, hl0, nr, nrl, hrl, hrr0);
      }
      const int hrlr =
          height_of(nrl->right.load(std::memory_order_relaxed));
      const int b = hrr0 - hrlr;
      if (b >= -1 && b <= 1 &&
          !((hrr0 == 0 || hrlr == 0) &&
            !nr->present.load(std::memory_order_relaxed))) {
        return rotate_left_over_right_nl(parent, n, hl0, nr, nrl, hrlr);
      }
    }
    return rebalance_to_right_nl(n, nr, nrl, hrr0);
  }

  /// Caller holds parent's and n's locks; n is a routing node with at
  /// most one child. Returns false when n cannot be unlinked (gained a
  /// second child or became present).
  bool attempt_unlink_nl(node* parent, node* n) {
    node* l = n->left.load(std::memory_order_relaxed);
    node* r = n->right.load(std::memory_order_relaxed);
    if (l != nullptr && r != nullptr) return false;
    if (n->present.load(std::memory_order_relaxed)) return false;
    node* splice = (l != nullptr) ? l : r;
    if (parent->left.load(std::memory_order_relaxed) == n) {
      parent->left.store(splice, std::memory_order_release);
    } else if (parent->right.load(std::memory_order_relaxed) == n) {
      parent->right.store(splice, std::memory_order_release);
    } else {
      return false;  // n is no longer parent's child
    }
    n->version.store(
        n->version.load(std::memory_order_relaxed) | unlinked_bit,
        std::memory_order_release);
    if (splice != nullptr) {
      splice->parent.store(parent, std::memory_order_release);
    }
    if constexpr (Reclaimer::reclaims_eagerly) {
      reclaimer_.retire(n, &node_deleter, &pool_);
    }
    return true;
  }

  // --- rotations ------------------------------------------------------------
  // All rotation functions are called with the locks of every named node
  // already held (parent, n, nl/nr, and for doubles nlr/nrl).

  node* rotate_right_nl(node* parent, node* n, node* nl, int hr, int hll,
                        node* nlr, int hlr) {
    const std::uint64_t n_ovl = n->version.load(std::memory_order_relaxed);
    node* pl = parent->left.load(std::memory_order_relaxed);
    n->version.store(n_ovl | shrinking_bit, std::memory_order_release);

    n->left.store(nlr, std::memory_order_release);
    nl->right.store(n, std::memory_order_release);
    if (pl == n) {
      parent->left.store(nl, std::memory_order_release);
    } else {
      parent->right.store(nl, std::memory_order_release);
    }
    nl->parent.store(parent, std::memory_order_release);
    n->parent.store(nl, std::memory_order_release);
    if (nlr != nullptr) nlr->parent.store(n, std::memory_order_release);

    const int h_n = 1 + std::max(hlr, hr);
    n->height.store(h_n, std::memory_order_release);
    nl->height.store(1 + std::max(hll, h_n), std::memory_order_release);

    n->version.store(n_ovl + version_incr, std::memory_order_release);

    // Decide which node is still damaged (original rotateRight_nl tail).
    const int bal_n = hlr - hr;
    if (bal_n < -1 || bal_n > 1) return n;
    if ((nlr == nullptr || hr == 0) &&
        !n->present.load(std::memory_order_relaxed)) {
      return n;  // n became an unlinkable routing node
    }
    const int bal_l = hll - h_n;
    if (bal_l < -1 || bal_l > 1) return nl;
    if (hll == 0 && !nl->present.load(std::memory_order_relaxed)) return nl;
    return fix_height_nl(parent);
  }

  node* rotate_left_nl(node* parent, node* n, int hl, node* nr, node* nrl,
                       int hrl, int hrr) {
    const std::uint64_t n_ovl = n->version.load(std::memory_order_relaxed);
    node* pl = parent->left.load(std::memory_order_relaxed);
    n->version.store(n_ovl | shrinking_bit, std::memory_order_release);

    n->right.store(nrl, std::memory_order_release);
    nr->left.store(n, std::memory_order_release);
    if (pl == n) {
      parent->left.store(nr, std::memory_order_release);
    } else {
      parent->right.store(nr, std::memory_order_release);
    }
    nr->parent.store(parent, std::memory_order_release);
    n->parent.store(nr, std::memory_order_release);
    if (nrl != nullptr) nrl->parent.store(n, std::memory_order_release);

    const int h_n = 1 + std::max(hl, hrl);
    n->height.store(h_n, std::memory_order_release);
    nr->height.store(1 + std::max(h_n, hrr), std::memory_order_release);

    n->version.store(n_ovl + version_incr, std::memory_order_release);

    const int bal_n = hrl - hl;
    if (bal_n < -1 || bal_n > 1) return n;
    if ((nrl == nullptr || hl == 0) &&
        !n->present.load(std::memory_order_relaxed)) {
      return n;
    }
    const int bal_r = hrr - h_n;
    if (bal_r < -1 || bal_r > 1) return nr;
    if (hrr == 0 && !nr->present.load(std::memory_order_relaxed)) return nr;
    return fix_height_nl(parent);
  }

  node* rotate_right_over_left_nl(node* parent, node* n, node* nl, int hr,
                                  int hll, node* nlr, int hlrl) {
    const std::uint64_t n_ovl = n->version.load(std::memory_order_relaxed);
    const std::uint64_t l_ovl = nl->version.load(std::memory_order_relaxed);
    node* pl = parent->left.load(std::memory_order_relaxed);
    node* nlrl = nlr->left.load(std::memory_order_relaxed);
    node* nlrr = nlr->right.load(std::memory_order_relaxed);
    const int hlrr = height_of(nlrr);

    n->version.store(n_ovl | shrinking_bit, std::memory_order_release);
    nl->version.store(l_ovl | shrinking_bit, std::memory_order_release);

    n->left.store(nlrr, std::memory_order_release);
    nl->right.store(nlrl, std::memory_order_release);
    nlr->left.store(nl, std::memory_order_release);
    nlr->right.store(n, std::memory_order_release);
    if (pl == n) {
      parent->left.store(nlr, std::memory_order_release);
    } else {
      parent->right.store(nlr, std::memory_order_release);
    }
    nlr->parent.store(parent, std::memory_order_release);
    nl->parent.store(nlr, std::memory_order_release);
    n->parent.store(nlr, std::memory_order_release);
    if (nlrr != nullptr) nlrr->parent.store(n, std::memory_order_release);
    if (nlrl != nullptr) nlrl->parent.store(nl, std::memory_order_release);

    const int h_n = 1 + std::max(hlrr, hr);
    n->height.store(h_n, std::memory_order_release);
    const int h_l = 1 + std::max(hll, hlrl);
    nl->height.store(h_l, std::memory_order_release);
    nlr->height.store(1 + std::max(h_l, h_n), std::memory_order_release);

    n->version.store(n_ovl + version_incr, std::memory_order_release);
    nl->version.store(l_ovl + version_incr, std::memory_order_release);

    const int bal_n = hlrr - hr;
    if (bal_n < -1 || bal_n > 1) return n;
    if ((nlrr == nullptr || hr == 0) &&
        !n->present.load(std::memory_order_relaxed)) {
      return n;
    }
    const int bal_lr = h_l - h_n;
    if (bal_lr < -1 || bal_lr > 1) return nlr;
    return fix_height_nl(parent);
  }

  node* rotate_left_over_right_nl(node* parent, node* n, int hl, node* nr,
                                  node* nrl, int hrlr) {
    const std::uint64_t n_ovl = n->version.load(std::memory_order_relaxed);
    const std::uint64_t r_ovl = nr->version.load(std::memory_order_relaxed);
    node* pl = parent->left.load(std::memory_order_relaxed);
    node* nrll = nrl->left.load(std::memory_order_relaxed);
    node* nrlr = nrl->right.load(std::memory_order_relaxed);
    const int hrll = height_of(nrll);
    const int hrr = height_of(nr->right.load(std::memory_order_relaxed));

    n->version.store(n_ovl | shrinking_bit, std::memory_order_release);
    nr->version.store(r_ovl | shrinking_bit, std::memory_order_release);

    n->right.store(nrll, std::memory_order_release);
    nr->left.store(nrlr, std::memory_order_release);
    nrl->right.store(nr, std::memory_order_release);
    nrl->left.store(n, std::memory_order_release);
    if (pl == n) {
      parent->left.store(nrl, std::memory_order_release);
    } else {
      parent->right.store(nrl, std::memory_order_release);
    }
    nrl->parent.store(parent, std::memory_order_release);
    nr->parent.store(nrl, std::memory_order_release);
    n->parent.store(nrl, std::memory_order_release);
    if (nrll != nullptr) nrll->parent.store(n, std::memory_order_release);
    if (nrlr != nullptr) nrlr->parent.store(nr, std::memory_order_release);

    const int h_n = 1 + std::max(hl, hrll);
    n->height.store(h_n, std::memory_order_release);
    const int h_r = 1 + std::max(hrlr, hrr);
    nr->height.store(h_r, std::memory_order_release);
    nrl->height.store(1 + std::max(h_n, h_r), std::memory_order_release);

    n->version.store(n_ovl + version_incr, std::memory_order_release);
    nr->version.store(r_ovl + version_incr, std::memory_order_release);

    const int bal_n = hrll - hl;
    if (bal_n < -1 || bal_n > 1) return n;
    if ((nrll == nullptr || hl == 0) &&
        !n->present.load(std::memory_order_relaxed)) {
      return n;
    }
    const int bal_rl = h_r - h_n;
    if (bal_rl < -1 || bal_rl > 1) return nrl;
    return fix_height_nl(parent);
  }

  // --- misc ------------------------------------------------------------------

  void wait_until_not_changing(node* n) const {
    backoff delay;
    while (n->version.load(std::memory_order_acquire) & shrinking_bit) {
      delay();
    }
  }

  bool eq(const Key& a, const Key& b) const {
    return !less_(a, b) && !less_(b, a);
  }

  node* make_node(const Key& key, bool present) const {
    Stats::on_alloc();
    node* n = new (pool_.allocate(sizeof(node))) node(key);
    n->present.store(present, std::memory_order_relaxed);
    return n;
  }

  static void node_deleter(void* obj, void* ctx) noexcept {
    static_cast<node*>(obj)->~node();
    static_cast<node_pool*>(ctx)->deallocate(obj);
  }

  void destroy_reachable(node* root) {
    std::vector<node*> stack{root};
    while (!stack.empty()) {
      node* n = stack.back();
      stack.pop_back();
      if (node* l = n->left.load(std::memory_order_relaxed)) {
        stack.push_back(l);
      }
      if (node* r = n->right.load(std::memory_order_relaxed)) {
        stack.push_back(r);
      }
      n->~node();
      pool_.deallocate(n);
    }
  }

  [[no_unique_address]] Compare less_{};
  mutable node_pool pool_;
  mutable Reclaimer reclaimer_{};
  node* root_holder_ = nullptr;
};

}  // namespace lfbst
