// lfbst: DVY-BST — the lock-based internal BST with *logical ordering*
// of Drachsler, Vechev & Yahav ("Practical Concurrent Binary Search
// Trees via Logical Ordering", PPoPP 2014), the contemporaneous
// related-work design the NM paper describes in §1: every node keeps
// pred/succ pointers ordered by key in addition to its tree edges, and
// a search that misses in the tree consults the logical chain, because
// the key may have "moved" (structurally) during the traversal.
//
// Synchronization discipline of this port (equivalent to the original's
// intent, stated here because the code depends on it):
//
//   * Each node has two locks. `succ_lock` protects the node's `succ`
//     pointer and the `pred` pointer of its successor; `tree_lock`
//     protects the node's child pointers, its `unlinked` flag, and the
//     `parent` pointers of its children.
//   * List membership and tree membership change together: a remove
//     acquires the succ locks (in list order: predecessor first), marks
//     the node (the linearization point), and performs both the list
//     unlink and the physical tree unlink before releasing. Hence a key
//     is in the tree iff it is in the list, which gives the insert-window
//     invariant (either pred.right or succ.left is free).
//   * Multi-node tree-lock sets are acquired in address order; succ
//     locks strictly precede tree locks. Both rules together make the
//     locking deadlock-free.
//
// Reads (contains, the traversal phase of updates) take no locks at
// all: they walk the tree unsynchronized and then settle on the logical
// chain — the design's whole point. Memory safety for those unsynchronized
// readers comes from the usual Reclaimer policies.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <functional>
#include <mutex>
#include <new>
#include <string>
#include <type_traits>
#include <vector>

#include "alloc/node_pool.hpp"
#include "common/assert.hpp"
#include "common/spinlock.hpp"
#include "core/sentinel_key.hpp"
#include "core/stats.hpp"
#include "reclaim/epoch.hpp"
#include "reclaim/leaky.hpp"

namespace lfbst {

template <typename Key, typename Compare = std::less<Key>,
          typename Reclaimer = reclaim::leaky, typename Stats = stats::none>
class dvy_tree {
  static_assert(Reclaimer::reclaims_eagerly ||
                    std::is_trivially_destructible_v<Key>,
                "leaky reclamation requires trivially destructible keys");
  static_assert(!Reclaimer::requires_validated_traversal,
                "dvy_tree's traversal does not validate per-node; use the "
                "leaky or epoch reclaimer");

 public:
  using key_type = Key;
  using key_compare = Compare;
  using stats_policy = Stats;
  using reclaimer_type = Reclaimer;

  static constexpr const char* algorithm_name = "DVY-BST";

  dvy_tree() : pool_(sizeof(node)) {
    head_ = make_node(skey::neg_inf());
    tail_ = make_node(skey::inf2());
    head_->succ.store(tail_, std::memory_order_relaxed);
    tail_->pred.store(head_, std::memory_order_relaxed);
    // Tree shape: head is the root; tail is its right child. All client
    // keys end up in tail's left subtree... no: keys < +inf go left of
    // tail, but tree search from head goes right first. Keep it simple:
    // the client tree hangs off head.right, with tail as the initial
    // right child.
    head_->right.store(tail_, std::memory_order_relaxed);
    tail_->parent.store(head_, std::memory_order_relaxed);
  }

  dvy_tree(const dvy_tree&) = delete;
  dvy_tree& operator=(const dvy_tree&) = delete;

  ~dvy_tree() {
    destroy_reachable(head_);
    reclaimer_.drain_all_unsafe();
  }

  [[nodiscard]] bool contains(const Key& key) const {
    [[maybe_unused]] auto guard = reclaimer_.pin();
    node* n = settle(key);
    return less_.equal(key, n->key) && !n->marked.load(std::memory_order_acquire);
  }

  bool insert(const Key& key) {
    [[maybe_unused]] auto guard = reclaimer_.pin();
    for (;;) {
      node* n = settle(key);
      // Candidate predecessor of the insertion window (settle returned
      // the first node at-or-after the key).
      node* pred = adjust_pred(n->pred.load(std::memory_order_acquire), key);
      std::unique_lock<spinlock> pl(pred->succ_lock);
      node* succ = pred->succ.load(std::memory_order_relaxed);
      // Validate the window under the lock.
      if (pred->marked.load(std::memory_order_relaxed) ||
          !window_holds(pred, succ, key)) {
        continue;  // lock released by unique_lock destructor
      }
      if (less_.equal(key, succ->key)) return false;  // already present

      node* fresh = make_node(skey(key));
      fresh->pred.store(pred, std::memory_order_relaxed);
      fresh->succ.store(succ, std::memory_order_relaxed);

      // Tree attachment: with list == tree membership, exactly one of
      // pred.right / succ.left is free inside a locked window.
      node* parent;
      bool as_left_child;
      if (pred->right.load(std::memory_order_acquire) == nullptr) {
        parent = pred;
        as_left_child = false;
      } else {
        parent = succ;
        as_left_child = true;
        LFBST_ASSERT(succ->left.load(std::memory_order_acquire) == nullptr,
                     "insert window invariant violated");
      }
      {
        std::lock_guard<spinlock> tl(parent->tree_lock);
        fresh->parent.store(parent, std::memory_order_relaxed);
        if (as_left_child) {
          parent->left.store(fresh, std::memory_order_release);
        } else {
          parent->right.store(fresh, std::memory_order_release);
        }
      }
      // Publish in the list (readers settle via these pointers).
      succ->pred.store(fresh, std::memory_order_release);
      pred->succ.store(fresh, std::memory_order_release);
      return true;
    }
  }

  bool erase(const Key& key) {
    [[maybe_unused]] auto guard = reclaimer_.pin();
    for (;;) {
      node* n = settle(key);
      if (!less_.equal(key, n->key)) return false;  // no such key
      node* pred = adjust_pred(n->pred.load(std::memory_order_acquire), key);
      std::unique_lock<spinlock> pl(pred->succ_lock);
      if (pred->marked.load(std::memory_order_relaxed) ||
          pred->succ.load(std::memory_order_relaxed) != n) {
        continue;
      }
      std::unique_lock<spinlock> nl(n->succ_lock);
      if (n->marked.load(std::memory_order_relaxed)) {
        return false;  // another remove linearized first
      }

      // Linearization point of the delete.
      n->marked.store(true, std::memory_order_release);

      // Physically remove from the tree while still holding both succ
      // locks (this is what keeps list and tree membership identical).
      remove_from_tree(n);

      // List unlink (readers may still traverse n; its pointers stay).
      node* succ = n->succ.load(std::memory_order_relaxed);
      succ->pred.store(pred, std::memory_order_release);
      pred->succ.store(succ, std::memory_order_release);

      nl.unlock();
      pl.unlock();
      if constexpr (Reclaimer::reclaims_eagerly) {
        reclaimer_.retire(n, &node_deleter, &pool_);
      }
      return true;
    }
  }

  // --- quiescent observers ---------------------------------------------

  [[nodiscard]] std::size_t size_slow() const {
    std::size_t n = 0;
    for_each_slow([&n](const Key&) { ++n; });
    return n;
  }

  /// In-order walk — simply the logical chain.
  template <typename F>
  void for_each_slow(F&& fn) const {
    for (node* n = head_->succ.load(std::memory_order_relaxed); n != tail_;
         n = n->succ.load(std::memory_order_relaxed)) {
      fn(n->key.key);
    }
  }

  [[nodiscard]] std::string validate() const {
    std::string err;
    // (1) The logical chain is strictly sorted and pred mirrors succ.
    std::size_t list_count = 0;
    for (node* n = head_; n != tail_;
         n = n->succ.load(std::memory_order_relaxed)) {
      node* s = n->succ.load(std::memory_order_relaxed);
      if (s == nullptr) return err + "broken succ chain; ";
      if (!less_(n->key, s->key)) err += "list keys not increasing; ";
      if (s->pred.load(std::memory_order_relaxed) != n) {
        err += "pred does not mirror succ; ";
      }
      if (n != head_) ++list_count;
    }
    // (2) The tree is a BST over exactly the list's members.
    std::size_t tree_count = 0;
    struct frame {
      const node* n;
      bool has_low = false, has_high = false;
      Key low{}, high{};
    };
    std::vector<frame> stack;
    if (node* root = head_->right.load(std::memory_order_relaxed)) {
      stack.push_back(frame{root});
    }
    while (!stack.empty()) {
      const frame f = stack.back();
      stack.pop_back();
      const node* n = f.n;
      if (n != tail_) {
        ++tree_count;
        if (n->marked.load(std::memory_order_relaxed)) {
          err += "marked node still in tree at quiescence; ";
        }
        if (n->unlinked.load(std::memory_order_relaxed)) {
          err += "unlinked node reachable; ";
        }
        if (f.has_low && !less_.cmp(f.low, n->key.key)) {
          err += "tree key <= low bound; ";
        }
        if (f.has_high && !less_.cmp(n->key.key, f.high)) {
          err += "tree key >= high bound; ";
        }
      }
      const node* l = n->left.load(std::memory_order_relaxed);
      const node* r = n->right.load(std::memory_order_relaxed);
      if (l != nullptr) {
        if (l->parent.load(std::memory_order_relaxed) != n) {
          err += "parent pointer mismatch; ";
        }
        frame child{l, f.has_low, true, f.low, n->key.key};
        if (n == tail_) child.has_high = f.has_high, child.high = f.high;
        stack.push_back(child);
      }
      if (r != nullptr) {
        if (r->parent.load(std::memory_order_relaxed) != n) {
          err += "parent pointer mismatch; ";
        }
        frame child{r, true, f.has_high, n->key.key, f.high};
        if (n == tail_) {
          err += "tail grew a right child; ";
        } else {
          stack.push_back(child);
        }
      }
    }
    if (tree_count != list_count) {
      err += "tree and list member counts differ (" +
             std::to_string(tree_count) + " vs " +
             std::to_string(list_count) + "); ";
    }
    return err;
  }

  [[nodiscard]] std::size_t reclaimer_pending() const {
    return reclaimer_.pending();
  }

 private:
  using skey = sentinel_key<Key>;

  struct node {
    explicit node(skey k) : key(std::move(k)) {}

    skey key;
    std::atomic<bool> marked{false};    // logical deletion
    std::atomic<bool> unlinked{false};  // physically out of the tree
    std::atomic<node*> parent{nullptr};
    std::atomic<node*> left{nullptr};
    std::atomic<node*> right{nullptr};
    std::atomic<node*> pred{nullptr};
    std::atomic<node*> succ{nullptr};
    spinlock tree_lock;
    spinlock succ_lock;
  };

  // --- search -----------------------------------------------------------

  /// Unsynchronized tree descent followed by the logical-chain settle:
  /// returns the first node (by the chain) whose key is >= `key`
  /// (possibly tail). This is the paper's "the key may have moved"
  /// mechanism: the tree gets us close, the list tells the truth.
  node* settle(const Key& key) const {
    node* n = head_;
    // Tree phase (no locks, no validation).
    for (;;) {
      node* next = nullptr;
      if (n == head_ || less_(n->key, key)) {
        next = n->right.load(std::memory_order_acquire);
      } else if (less_(key, n->key)) {
        next = n->left.load(std::memory_order_acquire);
      } else {
        break;  // exact key position
      }
      if (next == nullptr) break;
      n = next;
    }
    // List phase: walk to the unique window.
    while (n != head_ && less_(key, n->key)) {
      n = n->pred.load(std::memory_order_acquire);
    }
    while (n == head_ || less_(n->key, key)) {
      n = n->succ.load(std::memory_order_acquire);
    }
    return n;  // first node with key >= `key` (by chain order)
  }

  /// `settle` returns the node at-or-after `key`; updates need the
  /// predecessor: walk left until strictly below the key (head stops the
  /// walk, so the result is always valid).
  node* adjust_pred(node* pred, const Key& key) const {
    // Walk left until pred.key < key (crossing freshly inserted or
    // marked nodes).
    while (pred != head_ && !less_(pred->key, key)) {
      pred = pred->pred.load(std::memory_order_acquire);
    }
    return pred;
  }

  bool window_holds(node* pred, node* succ, const Key& key) const {
    if (succ == nullptr) return false;
    const bool pred_ok = pred == head_ || less_(pred->key, key);
    const bool succ_ok = succ == tail_ || !less_(succ->key, key);
    return pred_ok && succ_ok;
  }

  // --- physical tree removal --------------------------------------------
  // Caller holds the node's (and its list-predecessor's) succ locks and
  // has marked the node, so its window is frozen: no inserts can slip
  // under it and its logical successor cannot be removed.

  void remove_from_tree(node* n) {
    backoff delay;
    for (;;) {
      node* parent = n->parent.load(std::memory_order_acquire);
      node* left = n->left.load(std::memory_order_acquire);
      node* right = n->right.load(std::memory_order_acquire);

      if (left == nullptr || right == nullptr) {
        // Splice: locks = {parent, n, child?} in address order.
        node* child = left != nullptr ? left : right;
        std::vector<spinlock*> locks{&parent->tree_lock, &n->tree_lock};
        if (child != nullptr) locks.push_back(&child->tree_lock);
        if (!lock_all(locks)) {
          delay();
          continue;
        }
        const bool valid =
            n->parent.load(std::memory_order_relaxed) == parent &&
            !parent->unlinked.load(std::memory_order_relaxed) &&
            n->left.load(std::memory_order_relaxed) == left &&
            n->right.load(std::memory_order_relaxed) == right;
        if (!valid) {
          unlock_all(locks);
          delay();
          continue;
        }
        replace_child(parent, n, child);
        if (child != nullptr) {
          child->parent.store(parent, std::memory_order_release);
        }
        n->unlinked.store(true, std::memory_order_release);
        unlock_all(locks);
        return;
      }

      // Two children: relocate the logical successor (which, by the BST
      // property plus list==tree membership, is the leftmost node of
      // n's right subtree and has no left child; our succ locks keep it
      // alive and childless on the left).
      node* s = n->succ.load(std::memory_order_acquire);
      node* s_parent = s->parent.load(std::memory_order_acquire);
      node* s_right = s->right.load(std::memory_order_acquire);
      std::vector<spinlock*> locks{&parent->tree_lock, &n->tree_lock,
                                   &s->tree_lock};
      if (s_parent != n) locks.push_back(&s_parent->tree_lock);
      if (s_right != nullptr) locks.push_back(&s_right->tree_lock);
      if (left != nullptr) locks.push_back(&left->tree_lock);
      if (right != nullptr && right != s) locks.push_back(&right->tree_lock);
      if (!lock_all(locks)) {
        delay();
        continue;
      }
      const bool valid =
          n->parent.load(std::memory_order_relaxed) == parent &&
          !parent->unlinked.load(std::memory_order_relaxed) &&
          n->left.load(std::memory_order_relaxed) == left &&
          n->right.load(std::memory_order_relaxed) == right &&
          s->parent.load(std::memory_order_relaxed) == s_parent &&
          s->right.load(std::memory_order_relaxed) == s_right &&
          s->left.load(std::memory_order_relaxed) == nullptr &&
          !s->unlinked.load(std::memory_order_relaxed);
      if (!valid) {
        unlock_all(locks);
        delay();
        continue;
      }

      // Detach s from its old position...
      if (s_parent == n) {
        // s is n's right child: s keeps its right subtree.
      } else {
        replace_child(s_parent, s, s_right);
        if (s_right != nullptr) {
          s_right->parent.store(s_parent, std::memory_order_release);
        }
        s->right.store(right, std::memory_order_release);
        right->parent.store(s, std::memory_order_release);
      }
      // ... and put it where n was.
      s->left.store(left, std::memory_order_release);
      left->parent.store(s, std::memory_order_release);
      replace_child(parent, n, s);
      s->parent.store(parent, std::memory_order_release);
      n->unlinked.store(true, std::memory_order_release);
      unlock_all(locks);
      return;
    }
  }

  /// Address-ordered try-lock of a set; all-or-nothing.
  static bool lock_all(std::vector<spinlock*>& locks) {
    std::sort(locks.begin(), locks.end());
    locks.erase(std::unique(locks.begin(), locks.end()), locks.end());
    for (std::size_t i = 0; i < locks.size(); ++i) {
      if (!locks[i]->try_lock()) {
        for (std::size_t j = 0; j < i; ++j) locks[j]->unlock();
        return false;
      }
    }
    return true;
  }
  static void unlock_all(std::vector<spinlock*>& locks) {
    for (spinlock* l : locks) l->unlock();
  }

  void replace_child(node* parent, node* old_child, node* new_child) {
    if (parent->left.load(std::memory_order_relaxed) == old_child) {
      parent->left.store(new_child, std::memory_order_release);
    } else {
      LFBST_ASSERT(parent->right.load(std::memory_order_relaxed) ==
                       old_child,
                   "replace_child: not a child of parent");
      parent->right.store(new_child, std::memory_order_release);
    }
  }

  // --- lifecycle ----------------------------------------------------------

  node* make_node(skey k) const {
    Stats::on_alloc();
    return new (pool_.allocate(sizeof(node))) node(std::move(k));
  }

  static void node_deleter(void* obj, void* ctx) noexcept {
    static_cast<node*>(obj)->~node();
    static_cast<node_pool*>(ctx)->deallocate(obj);
  }

  void destroy_reachable(node* root) {
    std::vector<node*> stack{root};
    while (!stack.empty()) {
      node* n = stack.back();
      stack.pop_back();
      if (node* l = n->left.load(std::memory_order_relaxed)) {
        stack.push_back(l);
      }
      if (node* r = n->right.load(std::memory_order_relaxed)) {
        stack.push_back(r);
      }
      n->~node();
      pool_.deallocate(n);
    }
  }

  [[no_unique_address]] sentinel_less<Key, Compare> less_{};
  mutable node_pool pool_;
  mutable Reclaimer reclaimer_{};
  node* head_ = nullptr;  // key -∞: list head and tree root
  node* tail_ = nullptr;  // key +∞: list tail, head's initial right child
};

}  // namespace lfbst
