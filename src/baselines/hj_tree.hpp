// lfbst: HJ-BST baseline — the lock-free *internal* BST of Howley &
// Jones (SPAA 2012), the paper's strongest competitor on read-dominated
// large-key-range workloads (§4).
//
// Internal representation: every node stores a client key; there are no
// routing-only nodes (the single unkeyed root sentinel anchors the tree
// from below — searches always start by going right from it, so its key
// is never compared). Searches therefore traverse shorter paths than in
// the external NM/EFRB trees, which is exactly the trade-off the paper's
// evaluation discusses.
//
// Coordination is via per-node operation records, pointed to by an `op`
// word with two stolen bits: NONE(00) / CHILDCAS(01) / RELOCATE(10) /
// MARK(11).
//
//   add:    allocate the node + a ChildCASOp (2 objects — Table 1);
//           flag the parent's op word, CAS the child edge in, unflag.
//           3 CAS uncontended.
//   remove, node with < 2 children: MARK the node's op word, then splice
//           it out under the parent's CHILDCAS protocol. 4 CAS.
//   remove, node with 2 children: find the successor (leftmost node of
//           the right subtree), install a RelocateOp on it, CAS the
//           RelocateOp onto the victim, CAS the victim's *key* from the
//           removed key to the successor key, then MARK and splice the
//           successor. Up to 9 CAS — the "up to 9" of Table 1. Because
//           keys move between nodes, an unsuccessful search must
//           re-validate the op word of the last node where it turned
//           right before reporting NOT-FOUND.
//
// The mutable key field forces Key to be lock-free atomically CASable
// (the relocation step CASes the victim's key); this is an inherent
// property of the algorithm, not of this port.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <new>
#include <string>
#include <type_traits>
#include <vector>

#include "alloc/node_pool.hpp"
#include "common/assert.hpp"
#include "common/tagged_word.hpp"
#include "core/stats.hpp"
#include "reclaim/epoch.hpp"
#include "reclaim/leaky.hpp"

namespace lfbst {

template <typename Key, typename Compare = std::less<Key>,
          typename Reclaimer = reclaim::leaky, typename Stats = stats::none>
class hj_tree {
  static_assert(std::is_trivially_copyable_v<Key> &&
                    std::atomic<Key>::is_always_lock_free,
                "HJ relocation CASes node keys; Key must be an atomic "
                "lock-free trivially copyable type");
  static_assert(Reclaimer::reclaims_eagerly ||
                    std::is_trivially_destructible_v<Key>,
                "leaky reclamation requires trivially destructible keys");
  static_assert(!Reclaimer::requires_validated_traversal,
                "this tree's traversal does not validate per-node; use the "
                "leaky or epoch reclaimer (hazard pointers need the NM "
                "tree's protected seek)");

 public:
  using key_type = Key;
  using key_compare = Compare;
  using stats_policy = Stats;
  using reclaimer_type = Reclaimer;

  static constexpr const char* algorithm_name = "HJ-BST";

  hj_tree() : node_pool_(sizeof(node)), op_pool_(sizeof(operation)) {
    root_ = make_node(Key{});  // key never compared: searches go right
  }

  hj_tree(const hj_tree&) = delete;
  hj_tree& operator=(const hj_tree&) = delete;

  ~hj_tree() {
    destroy_reachable(root_);
    reclaimer_.drain_all_unsafe();
  }

  [[nodiscard]] bool contains(const Key& key) const {
    stats_.on_op_begin(stats::op_kind::search);
    bool found;
    {
      [[maybe_unused]] auto guard = reclaimer_.pin();
      find_ctx c;
      found = find(key, c, root_) == find_result::found;
    }
    stats_.on_op_end(stats::op_kind::search, found);
    return found;
  }

  bool insert(const Key& key) {
    stats_.on_op_begin(stats::op_kind::insert);
    const bool inserted = insert_impl(key);
    stats_.on_op_end(stats::op_kind::insert, inserted);
    return inserted;
  }

  bool erase(const Key& key) {
    stats_.on_op_begin(stats::op_kind::erase);
    const bool erased = erase_impl(key);
    stats_.on_op_end(stats::op_kind::erase, erased);
    return erased;
  }

 private:
  bool insert_impl(const Key& key) {
    [[maybe_unused]] auto guard = reclaimer_.pin();
    for (;;) {
      find_ctx c;
      const find_result result = find(key, c, root_);
      if (result == find_result::found) return false;
      // Two allocations: the node and the ChildCASOp (Table 1).
      node* new_node = make_node(key);
      const bool is_left = (result == find_result::not_found_l);
      node* old_child = is_left ? c.curr->left.load(std::memory_order_acquire)
                                : c.curr->right.load(std::memory_order_acquire);
      operation* cas_op = make_op();
      cas_op->child_cas = {is_left, old_child, new_node};

      op_t expected = c.curr_op;
      stats_.on_cas();
      if (c.curr->op.compare_exchange(
              expected, op_t(cas_op, /*childcas=*/true, /*relocate=*/false))) {
        help_child_cas(cas_op, c.curr);
        if constexpr (Reclaimer::reclaims_eagerly) {
          // Completed records stay value-referenced by the op word but
          // are never dereferenced once the state is NONE; the grace
          // period covers stale helpers.
          reclaimer_.retire(cas_op, &op_deleter, &op_pool_);
        }
        return true;
      }
      // Never published: recycle immediately.
      stats_.on_cas_fail();
      destroy_node(new_node);
      destroy_op(cas_op);
      stats_.on_seek_restart();
    }
  }

  bool erase_impl(const Key& key) {
    [[maybe_unused]] auto guard = reclaimer_.pin();
    for (;;) {
      find_ctx c;
      if (find(key, c, root_) != find_result::found) return false;

      if (c.curr->right.load(std::memory_order_acquire) == nullptr ||
          c.curr->left.load(std::memory_order_acquire) == nullptr) {
        // Node has at most one child: MARK it (the linearization point),
        // then splice it out.
        op_t expected = c.curr_op;
        stats_.on_cas();
        if (c.curr->op.compare_exchange(
                expected, c.curr_op.with_marks(true, true))) {  // MARK
          help_marked(c.pred, c.pred_op, c.curr);
          return true;
        }
        stats_.on_cas_fail();
      } else {
        // Node has two children: relocate the successor's key into it.
        find_ctx sc;
        const find_result r2 = find(key, sc, c.curr);
        if (r2 == find_result::abort ||
            c.curr->op.load().raw() != c.curr_op.raw()) {
          stats_.on_seek_restart();
          continue;
        }
        // sc.curr is the successor: leftmost node of c.curr's right
        // subtree (the search for `key` from c.curr goes right once,
        // then left at every node, ending NOT_FOUND_L there).
        if (r2 != find_result::not_found_l) {
          stats_.on_seek_restart();
          continue;  // right child vanished meanwhile; retry
        }
        operation* reloc_op = make_op();
        reloc_op->relocate.state.store(relocate_state::ongoing,
                                       std::memory_order_relaxed);
        reloc_op->relocate.dest = c.curr;
        reloc_op->relocate.dest_op = c.curr_op;
        reloc_op->relocate.remove_key = key;
        reloc_op->relocate.replace_key =
            sc.curr->key.load(std::memory_order_acquire);

        op_t expected = sc.curr_op;
        stats_.on_cas();
        if (sc.curr->op.compare_exchange(
                expected,
                op_t(reloc_op, /*childcas=*/false, /*relocate=*/true))) {
          const bool done =
              help_relocate(reloc_op, sc.pred, sc.pred_op, sc.curr);
          if constexpr (Reclaimer::reclaims_eagerly) {
            reclaimer_.retire(reloc_op, &op_deleter, &op_pool_);
          }
          if (done) return true;
        } else {
          stats_.on_cas_fail();
          destroy_op(reloc_op);  // never published
        }
      }
      stats_.on_seek_restart();
    }
  }

 public:
  // --- quiescent observers ---------------------------------------------

  [[nodiscard]] std::size_t size_slow() const {
    std::size_t n = 0;
    for_each_slow([&n](const Key&) { ++n; });
    return n;
  }

  /// In-order walk over *live* keys: marked nodes are logically deleted
  /// tombstones awaiting a helping splice and are skipped.
  template <typename F>
  void for_each_slow(F&& fn) const {
    std::vector<const node*> spine;
    const node* n = root_->right.load(std::memory_order_relaxed);
    while (n != nullptr || !spine.empty()) {
      while (n != nullptr) {
        spine.push_back(n);
        n = n->left.load(std::memory_order_relaxed);
      }
      const node* top = spine.back();
      spine.pop_back();
      if (!is_marked(top->op.load(std::memory_order_relaxed))) {
        fn(top->key.load(std::memory_order_relaxed));
      }
      n = top->right.load(std::memory_order_relaxed);
    }
  }

  [[nodiscard]] std::string validate() const {
    std::string err;
    if (root_->left.load(std::memory_order_relaxed) != nullptr) {
      err += "root sentinel grew a left child; ";
    }
    struct frame {
      const node* n;
      bool has_low = false, has_high = false;
      Key low{}, high{};  // exclusive bounds, by value (keys are cheap)
    };
    const node* top = root_->right.load(std::memory_order_relaxed);
    if (top == nullptr) return err;
    std::vector<frame> stack{frame{top}};
    while (!stack.empty()) {
      const frame f = stack.back();
      stack.pop_back();
      const Key k = f.n->key.load(std::memory_order_relaxed);
      if (f.has_low && !less_(f.low, k)) err += "key <= low bound; ";
      if (f.has_high && !less_(k, f.high)) err += "key >= high bound; ";
      const node* l = f.n->left.load(std::memory_order_relaxed);
      const node* r = f.n->right.load(std::memory_order_relaxed);
      if (l != nullptr) {
        frame child{l, f.has_low, true, f.low, k};
        stack.push_back(child);
      }
      if (r != nullptr) {
        frame child{r, true, f.has_high, k, f.high};
        stack.push_back(child);
      }
    }
    return err;
  }

  [[nodiscard]] std::size_t reclaimer_pending() const {
    return reclaimer_.pending();
  }

  /// The Stats policy instance this tree reports into (see nm_tree).
  [[nodiscard]] Stats& stats() const noexcept { return stats_; }

 private:
  struct operation;
  using op_t = tagged_ptr<operation>;

  struct node {
    std::atomic<Key> key;
    tagged_word<operation> op;
    std::atomic<node*> left{nullptr};
    std::atomic<node*> right{nullptr};
  };

  struct child_cas_fields {
    bool is_left;
    node* expected;
    node* update;
  };

  struct relocate_state {
    static constexpr int ongoing = 0;
    static constexpr int successful = 1;
    static constexpr int failed = 2;
  };

  struct relocate_fields {
    std::atomic<int> state{relocate_state::ongoing};
    node* dest;
    op_t dest_op;
    Key remove_key;
    Key replace_key;
  };

  /// One pooled record type for both operation kinds. A union would save
  /// a few bytes but cannot legally host the RelocateOp's std::atomic
  /// state without placement-new gymnastics; records are pooled and
  /// short-lived, so the extra bytes are irrelevant.
  struct operation {
    child_cas_fields child_cas{};
    relocate_fields relocate{};
  };

  enum class find_result { found, not_found_l, not_found_r, abort };

  struct find_ctx {
    node* pred = nullptr;
    op_t pred_op{};
    node* curr = nullptr;
    op_t curr_op{};
  };

  static bool is_marked(op_t o) noexcept { return o.flagged() && o.tagged(); }
  static int op_state(op_t o) noexcept {
    return (o.flagged() ? 1 : 0) | (o.tagged() ? 2 : 0);  // matches bits
  }
  static constexpr int state_none = 0, state_childcas = 1,
                       state_relocate = 2, state_mark = 3;

  // --- find (Howley & Jones `find`) --------------------------------------

  find_result find(const Key& key, find_ctx& c, node* aux_root) const {
    [[maybe_unused]] std::uint64_t depth = 0;
  retry:
    if constexpr (Stats::enabled) depth = 0;
    find_result result = find_result::not_found_r;
    c.curr = aux_root;
    c.curr_op = c.curr->op.load();
    if (op_state(c.curr_op) != state_none) {
      if (aux_root == root_) {
        // The root can only carry a CHILDCAS (it is never marked or
        // relocated): complete it and retry.
        help_child_cas(c.curr_op.address(), c.curr);
        goto retry;
      }
      return find_result::abort;  // successor search under a dirty root
    }
    {
      node* next = c.curr->right.load(std::memory_order_acquire);
      node* last_right = c.curr;
      op_t last_right_op = c.curr_op;
      while (next != nullptr) {
        if constexpr (Stats::enabled) ++depth;
        c.pred = c.curr;
        c.pred_op = c.curr_op;
        c.curr = next;
        c.curr_op = c.curr->op.load();
        if (op_state(c.curr_op) != state_none) {
          help(c.pred, c.pred_op, c.curr, c.curr_op);
          goto retry;
        }
        const Key curr_key = c.curr->key.load(std::memory_order_acquire);
        if (less_(key, curr_key)) {
          result = find_result::not_found_l;
          next = c.curr->left.load(std::memory_order_acquire);
        } else if (less_(curr_key, key)) {
          result = find_result::not_found_r;
          next = c.curr->right.load(std::memory_order_acquire);
          last_right = c.curr;
          last_right_op = c.curr_op;
        } else {
          if constexpr (Stats::enabled) stats_.on_seek(depth);
          return find_result::found;
        }
      }
      // A NOT-FOUND result is valid only if the last right-turn node has
      // not been touched since: a concurrent relocation could otherwise
      // have moved `key` past our traversal.
      if (last_right_op.raw() != last_right->op.load().raw()) goto retry;
    }
    if constexpr (Stats::enabled) stats_.on_seek(depth);
    return result;
  }

  // --- helping ----------------------------------------------------------

  void help(node* pred, op_t pred_op, node* curr, op_t curr_op) const {
    // Operation-record helping is node-level, not edge-marked: no
    // flagged/tagged distinction to attribute.
    stats_.on_help(stats::help_kind::unattributed);
    switch (op_state(curr_op)) {
      case state_childcas:
        help_child_cas(curr_op.address(), curr);
        break;
      case state_relocate:
        help_relocate(curr_op.address(), pred, pred_op, curr);
        break;
      case state_mark:
        help_marked(pred, pred_op, curr);
        break;
      default:
        break;
    }
  }

  void help_child_cas(operation* op, node* dest) const {
    std::atomic<node*>& addr =
        op->child_cas.is_left ? dest->left : dest->right;
    node* expected = op->child_cas.expected;
    stats_.on_cas();
    const bool swung = addr.compare_exchange_strong(
        expected, op->child_cas.update, std::memory_order_acq_rel);
    if (!swung) stats_.on_cas_fail();
    op_t op_expected(op, /*childcas=*/true, /*relocate=*/false);
    stats_.on_cas();
    if (!dest->op.compare_exchange(op_expected, op_t(op, false, false))) {
      stats_.on_cas_fail();
    }
    if constexpr (Reclaimer::reclaims_eagerly) {
      // The victim of a splice is retired by whichever thread's child
      // CAS physically detached it — the only globally unique event.
      // (A record's *publisher* is not a safe retirer: a marked node's
      // parent can change while stale helpers still hold old
      // (pred, predOp) pairs, letting a published record's child CAS
      // fail harmlessly after another record already spliced the node —
      // retiring there double-frees, as ThreadSanitizer demonstrated.)
      // The retire sits *after* the unflag attempt: the one successful
      // unflag happens no later than our attempt returns, so any thread
      // that can still re-execute this record's child CAS read the
      // CHILDCAS word — and therefore pinned — before this retire, and
      // the grace period shields it from the freed node's address being
      // reused (ABA on the child slot). Insert records never qualify:
      // their `expected` is the null slot the new node went into.
      if (swung && op->child_cas.expected != nullptr) {
        reclaimer_.retire(op->child_cas.expected, &node_deleter,
                          &node_pool_);
      }
    }
  }

  bool help_relocate(operation* op, node* pred, op_t pred_op,
                     node* curr) const {
    int seen = op->relocate.state.load(std::memory_order_acquire);
    if (seen == relocate_state::ongoing) {
      // Install the relocation on the destination (the node whose key is
      // being removed).
      op_t dest_expected = op->relocate.dest_op;
      stats_.on_cas();
      const bool installed = op->relocate.dest->op.compare_exchange(
          dest_expected, op_t(op, /*childcas=*/false, /*relocate=*/true));
      if (!installed) stats_.on_cas_fail();
      if (installed ||
          dest_expected == op_t(op, /*childcas=*/false, /*relocate=*/true)) {
        int expected_state = relocate_state::ongoing;
        stats_.on_cas();
        op->relocate.state.compare_exchange_strong(
            expected_state, relocate_state::successful,
            std::memory_order_acq_rel);
        seen = relocate_state::successful;
      } else {
        // The destination changed under us: the relocation fails unless
        // someone else already marked it successful.
        int expected_state = relocate_state::ongoing;
        stats_.on_cas();
        op->relocate.state.compare_exchange_strong(
            expected_state, relocate_state::failed,
            std::memory_order_acq_rel);
        seen = op->relocate.state.load(std::memory_order_acquire);
      }
    }
    if (seen == relocate_state::successful) {
      // Overwrite the destination's key with the successor's, then
      // release the destination.
      Key expected_key = op->relocate.remove_key;
      stats_.on_cas();
      op->relocate.dest->key.compare_exchange_strong(
          expected_key, op->relocate.replace_key, std::memory_order_acq_rel);
      op_t dest_expected(op, false, true);
      stats_.on_cas();
      op->relocate.dest->op.compare_exchange(dest_expected,
                                             op_t(op, false, false));
    }
    const bool result = (seen == relocate_state::successful);
    if (op->relocate.dest == curr) return result;
    // Release (or mark for removal) the successor node that carried the
    // RelocateOp.
    op_t curr_expected(op, false, true);
    stats_.on_cas();
    curr->op.compare_exchange(
        curr_expected,
        result ? op_t(op, true, true)     // MARK: splice the successor out
               : op_t(op, false, false)); // failed: back to NONE
    if (result) {
      op_t effective_pred_op = pred_op;
      if (op->relocate.dest == pred) {
        // The destination is the successor's parent; after the release
        // above its op word is (op, NONE).
        effective_pred_op = op_t(op, false, false);
      }
      help_marked(pred, effective_pred_op, curr);
    }
    return result;
  }

  void help_marked(node* pred, op_t pred_op, node* curr) const {
    // Splice the marked single-child (or childless) node out from under
    // its parent via the parent's CHILDCAS protocol.
    node* new_ref;
    node* left = curr->left.load(std::memory_order_acquire);
    if (left == nullptr) {
      node* right = curr->right.load(std::memory_order_acquire);
      new_ref = right;  // may be nullptr (leaf)
    } else {
      new_ref = left;
    }
    operation* cas_op = make_op();
    cas_op->child_cas = {curr == pred->left.load(std::memory_order_acquire),
                         curr, new_ref};
    op_t expected = pred_op;
    stats_.on_cas();
    if (pred->op.compare_exchange(
            expected, op_t(cas_op, /*childcas=*/true, /*relocate=*/false))) {
      // The spliced node itself is retired inside help_child_cas by the
      // thread whose child CAS detaches it (see the comment there); the
      // publisher only retires its own record.
      help_child_cas(cas_op, pred);
      if constexpr (Reclaimer::reclaims_eagerly) {
        reclaimer_.retire(cas_op, &op_deleter, &op_pool_);
      }
    } else {
      stats_.on_cas_fail();
      destroy_op(cas_op);  // never published
    }
  }

  // --- lifecycle ----------------------------------------------------------

  node* make_node(const Key& key) const {
    stats_.on_alloc();
    node* n = new (node_pool_.allocate(sizeof(node))) node{};
    n->key.store(key, std::memory_order_relaxed);
    return n;
  }

  operation* make_op() const {
    stats_.on_alloc();
    return new (op_pool_.allocate(sizeof(operation))) operation();
  }

  void destroy_node(node* n) const {
    n->~node();
    node_pool_.deallocate(n);
  }
  void destroy_op(operation* op) const {
    op->~operation();
    op_pool_.deallocate(op);
  }

  static void node_deleter(void* obj, void* ctx) noexcept {
    static_cast<node*>(obj)->~node();
    static_cast<node_pool*>(ctx)->deallocate(obj);
  }
  static void op_deleter(void* obj, void* ctx) noexcept {
    static_cast<operation*>(obj)->~operation();
    static_cast<node_pool*>(ctx)->deallocate(obj);
  }

  void destroy_reachable(node* root) {
    std::vector<node*> stack{root};
    while (!stack.empty()) {
      node* n = stack.back();
      stack.pop_back();
      if (node* l = n->left.load(std::memory_order_relaxed)) {
        stack.push_back(l);
      }
      if (node* r = n->right.load(std::memory_order_relaxed)) {
        stack.push_back(r);
      }
      destroy_node(n);
    }
  }

  [[no_unique_address]] Compare less_{};
  [[no_unique_address]] mutable Stats stats_{};
  mutable node_pool node_pool_;
  mutable node_pool op_pool_;
  mutable Reclaimer reclaimer_{};
  node* root_ = nullptr;
};

}  // namespace lfbst
