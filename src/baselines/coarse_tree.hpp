// lfbst: coarse-grained reference baseline — a plain sequential internal
// BST behind a single lock.
//
// Not part of the paper's evaluation; it exists because every concurrent
// data-structure repo needs a trivially-auditable implementation: the
// cross-implementation contract tests use it as a sanity anchor, and the
// benchmarks include it as the "what a single lock costs" floor. It is
// deliberately unbalanced (like the NM/EFRB/HJ trees) so path lengths
// are comparable.
#pragma once

#include <cstddef>
#include <functional>
#include <mutex>
#include <new>
#include <string>
#include <vector>

#include "alloc/node_pool.hpp"
#include "common/spinlock.hpp"
#include "core/stats.hpp"
#include "reclaim/leaky.hpp"

namespace lfbst {

template <typename Key, typename Compare = std::less<Key>,
          typename Reclaimer = reclaim::leaky, typename Stats = stats::none>
class coarse_tree {
 public:
  using key_type = Key;
  using key_compare = Compare;
  using stats_policy = Stats;
  using reclaimer_type = Reclaimer;

  static constexpr const char* algorithm_name = "Coarse-BST";

  coarse_tree() : pool_(sizeof(node)) {}
  coarse_tree(const coarse_tree&) = delete;
  coarse_tree& operator=(const coarse_tree&) = delete;

  ~coarse_tree() {
    std::vector<node*> stack;
    if (root_ != nullptr) stack.push_back(root_);
    while (!stack.empty()) {
      node* n = stack.back();
      stack.pop_back();
      if (n->left != nullptr) stack.push_back(n->left);
      if (n->right != nullptr) stack.push_back(n->right);
      n->~node();
      pool_.deallocate(n);
    }
  }

  [[nodiscard]] bool contains(const Key& key) const {
    std::lock_guard<spinlock> g(lock_);
    const node* n = root_;
    while (n != nullptr) {
      if (less_(key, n->key)) {
        n = n->left;
      } else if (less_(n->key, key)) {
        n = n->right;
      } else {
        return true;
      }
    }
    return false;
  }

  bool insert(const Key& key) {
    std::lock_guard<spinlock> g(lock_);
    node** slot = &root_;
    while (*slot != nullptr) {
      node* n = *slot;
      if (less_(key, n->key)) {
        slot = &n->left;
      } else if (less_(n->key, key)) {
        slot = &n->right;
      } else {
        return false;
      }
    }
    Stats::on_alloc();
    *slot = new (pool_.allocate(sizeof(node))) node{key, nullptr, nullptr};
    ++size_;
    return true;
  }

  bool erase(const Key& key) {
    std::lock_guard<spinlock> g(lock_);
    node** slot = &root_;
    while (*slot != nullptr && !eq(key, (*slot)->key)) {
      slot = less_(key, (*slot)->key) ? &(*slot)->left : &(*slot)->right;
    }
    node* victim = *slot;
    if (victim == nullptr) return false;
    if (victim->left != nullptr && victim->right != nullptr) {
      // Two children: steal the in-order successor's key, delete it.
      node** succ_slot = &victim->right;
      while ((*succ_slot)->left != nullptr) succ_slot = &(*succ_slot)->left;
      node* succ = *succ_slot;
      victim->key = succ->key;
      *succ_slot = succ->right;
      victim = succ;
    } else {
      *slot = (victim->left != nullptr) ? victim->left : victim->right;
    }
    victim->~node();
    pool_.deallocate(victim);
    --size_;
    return true;
  }

  // --- quiescent observers (lock-protected, so also safe live) ---------

  [[nodiscard]] std::size_t size_slow() const {
    std::lock_guard<spinlock> g(lock_);
    return size_;
  }

  template <typename F>
  void for_each_slow(F&& fn) const {
    std::lock_guard<spinlock> g(lock_);
    std::vector<const node*> spine;
    const node* n = root_;
    while (n != nullptr || !spine.empty()) {
      while (n != nullptr) {
        spine.push_back(n);
        n = n->left;
      }
      const node* top = spine.back();
      spine.pop_back();
      fn(top->key);
      n = top->right;
    }
  }

  [[nodiscard]] std::string validate() const {
    std::lock_guard<spinlock> g(lock_);
    std::string err;
    struct frame {
      const node* n;
      const Key* low;
      const Key* high;
    };
    if (root_ == nullptr) return err;
    std::vector<frame> stack{{root_, nullptr, nullptr}};
    std::vector<Key> bounds;
    bounds.reserve(size_ + 1);
    std::size_t count = 0;
    while (!stack.empty()) {
      auto [n, low, high] = stack.back();
      stack.pop_back();
      ++count;
      if (low != nullptr && !less_(*low, n->key)) err += "key <= low; ";
      if (high != nullptr && !less_(n->key, *high)) err += "key >= high; ";
      bounds.push_back(n->key);
      const Key* kp = &bounds.back();
      if (n->left != nullptr) stack.push_back({n->left, low, kp});
      if (n->right != nullptr) stack.push_back({n->right, kp, high});
    }
    if (count != size_) err += "size counter out of sync; ";
    return err;
  }

  [[nodiscard]] std::size_t reclaimer_pending() const { return 0; }

 private:
  struct node {
    Key key;
    node* left;
    node* right;
  };

  bool eq(const Key& a, const Key& b) const {
    return !less_(a, b) && !less_(b, a);
  }

  [[no_unique_address]] Compare less_{};
  mutable spinlock lock_;
  mutable node_pool pool_;
  node* root_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace lfbst
