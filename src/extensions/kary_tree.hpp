// lfbst: deprecated forwarding header.
//
// kary_tree was promoted from an extension to a first-class tree and
// now lives in src/multiway/ (docs/MULTIWAY.md). This shim keeps old
// include paths compiling for one release; switch to
// "multiway/kary_tree.hpp".
#pragma once

#if defined(__GNUC__) || defined(__clang__)
#pragma message( \
    "extensions/kary_tree.hpp is deprecated; include multiway/kary_tree.hpp")
#endif

#include "multiway/kary_tree.hpp"
