// lfbst: lock-free external k-ary search tree — the paper's §6 future
// work ("we plan to use the ideas in this work to develop more efficient
// lock-free algorithms for k-ary search trees"), in the lineage of
// Brown & Helga's non-blocking k-ST (OPODIS 2011) that the paper cites
// as [4].
//
// Shape: external k-ary tree. Leaves hold up to K-1 client keys in a
// sorted inline array; internal nodes hold exactly K-1 routing keys and
// K children. Fat leaves amortize one cache line over several keys, so
// searches touch ~log_K(n) nodes instead of log_2(n) — the point of the
// k-ary generalization.
//
// Operations (EFRB-style Info-record coordination, matching Brown &
// Helga's use of the Ellen et al. protocol):
//   search : traverse; linear-scan the leaf. No atomics.
//   insert : leaf has spare capacity → REPLACE: flag the parent's update
//            word with an Info record, CAS the child edge from the old
//            leaf to a new leaf containing the key, unflag (3 CAS,
//            2 allocations). Leaf full → SPROUT: the K keys (K-1 old +
//            1 new) become an internal node with K one-key leaf
//            children (3 CAS, K+2 allocations).
//   delete : leaf keeps ≥1 key, or its parent is the root, or siblings
//            are not all leaves → REPLACE with a smaller (possibly
//            empty) leaf. Otherwise → COALESCE (the pruning step):
//            DFLAG the grandparent, MARK the parent, swing the
//            grandparent's edge from the parent to one new leaf holding
//            the union of all the parent's children's keys minus the
//            deleted one (4 CAS, 2 allocations). Coalescing bounds the
//            garbage that the NM paper's related-work section criticizes
//            in remove-less relaxed trees: an internal node whose leaf
//            children jointly fit in one leaf is collapsed as soon as a
//            delete touches it.
//
// Deviations from Brown & Helga, documented per DESIGN.md: (a) we
// coalesce eagerly whenever the parent's children are all leaves whose
// surviving keys fit in a single leaf (they prune only when exactly one
// non-empty child remains); (b) helping uses the same two-record scheme
// as our EFRB port rather than their four-state version records. Both
// preserve lock-freedom and linearizability; neither changes the
// operation count asymptotics.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <new>
#include <string>
#include <type_traits>
#include <vector>

#include "alloc/node_pool.hpp"
#include "common/assert.hpp"
#include "common/tagged_word.hpp"
#include "core/sentinel_key.hpp"
#include "core/stats.hpp"
#include "reclaim/epoch.hpp"
#include "reclaim/leaky.hpp"

namespace lfbst {

template <typename Key, unsigned K = 4, typename Compare = std::less<Key>,
          typename Reclaimer = reclaim::leaky, typename Stats = stats::none>
class kary_tree {
  static_assert(K >= 2, "a k-ary tree needs at least binary fanout");
  static_assert(Reclaimer::reclaims_eagerly ||
                    std::is_trivially_destructible_v<Key>,
                "leaky reclamation requires trivially destructible keys");
  static_assert(!Reclaimer::requires_validated_traversal,
                "kary_tree's traversal does not validate per-node; use the "
                "leaky or epoch reclaimer");

 public:
  using key_type = Key;
  using stats_policy = Stats;
  using reclaimer_type = Reclaimer;

  static constexpr const char* algorithm_name = "KST";
  static constexpr unsigned fanout = K;
  static constexpr unsigned leaf_capacity = K - 1;

  kary_tree() : node_pool_(sizeof(node)), info_pool_(sizeof(info_record)) {
    // Root: an internal sentinel routing every client key to child 0
    // (all routing keys are ∞₁); children 1..K-1 are permanently empty
    // leaves. A client leaf therefore always has a parent, and every
    // coalescible parent (an internal node below the root) has a
    // grandparent.
    root_ = make_internal_sentinel();
  }

  kary_tree(const kary_tree&) = delete;
  kary_tree& operator=(const kary_tree&) = delete;

  ~kary_tree() {
    destroy_reachable(root_);
    reclaimer_.drain_all_unsafe();
  }

  [[nodiscard]] bool contains(const Key& key) const {
    [[maybe_unused]] auto guard = reclaimer_.pin();
    search_result s = search(key);
    return s.leaf->leaf_contains(key, less_);
  }

  bool insert(const Key& key) {
    [[maybe_unused]] auto guard = reclaimer_.pin();
    for (;;) {
      search_result s = search(key);
      if (s.leaf->leaf_contains(key, less_)) return false;
      if (update_state(s.pupdate) != state::clean) {
        help(s.pupdate);
        Stats::on_seek_restart();
        continue;
      }
      node* replacement;
      unsigned extra_allocs = 0;
      if (s.leaf->key_count < leaf_capacity) {
        // REPLACE: new leaf = old keys + key.
        replacement = make_leaf_with(s.leaf, &key, nullptr);
      } else {
        // SPROUT: K keys become an internal node over K unit leaves.
        replacement = sprout(s.leaf, key);
        extra_allocs = K;
      }
      (void)extra_allocs;
      info_record* op = make_info();
      op->replace = {s.parent, s.leaf, replacement, s.child_index};

      update_t expected = s.pupdate;
      Stats::on_cas();
      if (s.parent->update.compare_exchange(
              expected, update_t(op, /*iflag=*/true, /*dflag=*/false))) {
        help_replace(op);
        if constexpr (Reclaimer::reclaims_eagerly) {
          reclaimer_.retire(s.leaf, &node_deleter, &node_pool_);
          retire_info_later(op);
        }
        return true;
      }
      destroy_replacement(replacement);
      destroy_info(op);
      help(expected);
      Stats::on_seek_restart();
    }
  }

  bool erase(const Key& key) {
    [[maybe_unused]] auto guard = reclaimer_.pin();
    for (;;) {
      search_result s = search(key);
      if (!s.leaf->leaf_contains(key, less_)) return false;

      // Decide between REPLACE and COALESCE. Coalescing needs a
      // grandparent and all of the parent's children to be leaves whose
      // surviving keys fit in one leaf.
      bool coalesce = false;
      std::array<node*, K> siblings{};
      if (s.grandparent != nullptr) {
        coalesce = true;
        unsigned total = 0;
        for (unsigned i = 0; i < K; ++i) {
          siblings[i] = s.parent->children[i].load().address();
          if (siblings[i] == nullptr || !siblings[i]->is_leaf()) {
            coalesce = false;
            break;
          }
          total += siblings[i]->key_count;
        }
        // The union is sized assuming `key` is removed from it, so the
        // leaf the search found must still be among the re-read
        // children; a concurrent replace can have swapped it (making
        // `key` absent and the union one too large). The stale-leaf
        // replace path below then fails its flag CAS and retries.
        if (coalesce && siblings[s.child_index] != s.leaf) coalesce = false;
        if (coalesce && total - 1 > leaf_capacity) coalesce = false;
      }

      if (!coalesce) {
        if (update_state(s.pupdate) != state::clean) {
          help(s.pupdate);
          Stats::on_seek_restart();
          continue;
        }
        node* replacement = make_leaf_with(s.leaf, nullptr, &key);
        info_record* op = make_info();
        op->replace = {s.parent, s.leaf, replacement, s.child_index};
        update_t expected = s.pupdate;
        Stats::on_cas();
        if (s.parent->update.compare_exchange(
                expected, update_t(op, /*iflag=*/true, /*dflag=*/false))) {
          help_replace(op);
          const bool emptied = (replacement->key_count == 0);
          if constexpr (Reclaimer::reclaims_eagerly) {
            reclaimer_.retire(s.leaf, &node_deleter, &node_pool_);
            retire_info_later(op);
          }
          if (emptied) collapse_upward(key);
          return true;
        }
        destroy_node(replacement);
        destroy_info(op);
        help(expected);
        Stats::on_seek_restart();
        continue;
      }

      // COALESCE path (EFRB delete shape: DFLAG gp, MARK p, swing gp).
      if (update_state(s.gpupdate) != state::clean) {
        help(s.gpupdate);
        Stats::on_seek_restart();
        continue;
      }
      if (update_state(s.pupdate) != state::clean) {
        help(s.pupdate);
        Stats::on_seek_restart();
        continue;
      }
      node* union_leaf = make_union_leaf(siblings, &key);
      info_record* op = make_info();
      op->coalesce = {s.grandparent, s.parent, union_leaf, s.pupdate,
                      s.parent_index};
      update_t expected = s.gpupdate;
      Stats::on_cas();
      if (s.grandparent->update.compare_exchange(
              expected, update_t(op, /*iflag=*/false, /*dflag=*/true))) {
        if (help_coalesce(op)) {
          if constexpr (Reclaimer::reclaims_eagerly) {
            // The winner retires the parent and all its leaf children.
            reclaimer_.retire(s.parent, &node_deleter, &node_pool_);
            for (node* sib : siblings) {
              reclaimer_.retire(sib, &node_deleter, &node_pool_);
            }
            retire_info_later(op);
          }
          collapse_upward(key);  // cascade: gp may now be collapsible
          return true;
        }
        if constexpr (Reclaimer::reclaims_eagerly) retire_info_later(op);
        destroy_node(union_leaf);
      } else {
        destroy_node(union_leaf);
        destroy_info(op);
        help(expected);
      }
      Stats::on_seek_restart();
    }
  }

  // --- quiescent observers ---------------------------------------------

  [[nodiscard]] std::size_t size_slow() const {
    std::size_t n = 0;
    for_each_slow([&n](const Key&) { ++n; });
    return n;
  }

  /// In-order walk over client keys.
  template <typename F>
  void for_each_slow(F&& fn) const {
    walk(root_, fn);
  }

  [[nodiscard]] std::string validate() const {
    std::string err;
    if (root_->is_leaf()) err += "root must be the internal sentinel; ";
    validate_node(root_, nullptr, nullptr, err);
    return err;
  }

  [[nodiscard]] std::size_t height_slow() const {
    std::size_t best = 0;
    std::vector<std::pair<const node*, std::size_t>> stack{{root_, 1}};
    while (!stack.empty()) {
      auto [n, d] = stack.back();
      stack.pop_back();
      best = std::max(best, d);
      if (!n->is_leaf()) {
        for (unsigned i = 0; i < K; ++i) {
          if (const node* c = n->children[i].load().address()) {
            stack.push_back({c, d + 1});
          }
        }
      }
    }
    return best;
  }

  [[nodiscard]] std::size_t reclaimer_pending() const {
    return reclaimer_.pending();
  }

 private:
  using skey = sentinel_key<Key>;

  enum class state { clean, iflag, dflag, mark };

  struct node;
  struct info_record;
  using update_t = tagged_ptr<info_record>;

  /// One node type for both kinds. Leaves: key_count client keys in
  /// keys[0..key_count), children all null, internal_marker unset.
  /// Internal nodes: key_count == K-1 routing keys (possibly sentinel
  /// ranks), K non-null children, internal flag set.
  struct node {
    std::array<skey, K - 1> keys{};
    std::uint8_t key_count = 0;
    bool internal = false;
    tagged_word<info_record> update;  // meaningful on internal nodes
    std::array<tagged_word<node>, K> children;

    [[nodiscard]] bool is_leaf() const noexcept { return !internal; }

    template <typename Less>
    [[nodiscard]] bool leaf_contains(const Key& key,
                                     const Less& less) const {
      for (unsigned i = 0; i < key_count; ++i) {
        if (less.equal(key, keys[i])) return true;
      }
      return false;
    }
  };

  struct replace_fields {
    node* parent;
    node* old_child;
    node* new_child;
    unsigned child_index;
  };
  struct coalesce_fields {
    node* grandparent;
    node* parent;
    node* union_leaf;
    update_t pupdate;
    unsigned parent_index;  // index of parent in grandparent's children
  };

  struct info_record {
    union {
      replace_fields replace;
      coalesce_fields coalesce;
    };
    info_record() : replace{} {}
  };

  struct search_result {
    node* grandparent = nullptr;
    node* parent = nullptr;
    node* leaf = nullptr;
    update_t gpupdate{};
    update_t pupdate{};
    unsigned parent_index = 0;  // parent's slot in grandparent
    unsigned child_index = 0;   // leaf's slot in parent
  };

  static state update_state(update_t u) noexcept {
    const bool f = u.flagged(), t = u.tagged();
    if (f && t) return state::mark;
    if (f) return state::iflag;
    if (t) return state::dflag;
    return state::clean;
  }

  /// Child slot for `key` at internal node `n`: the first routing key
  /// strictly greater than `key` decides.
  unsigned child_index_for(const node* n, const Key& key) const {
    unsigned i = 0;
    while (i < K - 1 && !less_(key, n->keys[i])) ++i;
    return i;
  }

  // --- search ------------------------------------------------------------

  search_result search(const Key& key) const {
    search_result s;
    node* current = root_;
    unsigned index = 0;
    while (current->internal) {
      s.grandparent = s.parent;
      s.gpupdate = s.pupdate;
      s.parent_index = s.child_index;
      s.parent = current;
      s.pupdate = current->update.load();
      index = child_index_for(current, key);
      s.child_index = index;
      current = current->children[index].load().address();
    }
    s.leaf = current;
    return s;
  }

  // --- helping ------------------------------------------------------------

  void help(update_t u) const {
    Stats::on_help();
    switch (update_state(u)) {
      case state::iflag:
        help_replace(u.address());
        break;
      case state::mark:
        help_marked(u.address());
        break;
      case state::dflag:
        help_coalesce(u.address());
        break;
      case state::clean:
        break;
    }
  }

  void help_replace(info_record* op) const {
    // Swing the parent's recorded child slot, then unflag.
    tagged_ptr<node> expected = tagged_ptr<node>::clean(op->replace.old_child);
    Stats::on_cas();
    op->replace.parent->children[op->replace.child_index].compare_exchange(
        expected, tagged_ptr<node>::clean(op->replace.new_child));
    update_t uexp(op, /*iflag=*/true, /*dflag=*/false);
    Stats::on_cas();
    op->replace.parent->update.compare_exchange(uexp,
                                                update_t(op, false, false));
  }

  /// Returns true if the coalesce committed (parent marked), false if it
  /// aborted because the parent could not be marked.
  bool help_coalesce(info_record* op) const {
    update_t expected = op->coalesce.pupdate;
    Stats::on_cas();
    const bool marked = op->coalesce.parent->update.compare_exchange(
        expected, update_t(op, /*iflag=*/true, /*dflag=*/true));
    if (marked || expected == update_t(op, true, true)) {
      help_marked(op);
      return true;
    }
    help(expected);
    update_t gexp(op, /*iflag=*/false, /*dflag=*/true);
    Stats::on_cas();
    op->coalesce.grandparent->update.compare_exchange(
        gexp, update_t(op, false, false));
    return false;
  }

  void help_marked(info_record* op) const {
    tagged_ptr<node> expected =
        tagged_ptr<node>::clean(op->coalesce.parent);
    Stats::on_cas();
    op->coalesce.grandparent->children[op->coalesce.parent_index]
        .compare_exchange(expected,
                          tagged_ptr<node>::clean(op->coalesce.union_leaf));
    update_t gexp(op, /*iflag=*/false, /*dflag=*/true);
    Stats::on_cas();
    op->coalesce.grandparent->update.compare_exchange(
        gexp, update_t(op, false, false));
  }

  // --- node construction ---------------------------------------------------

  node* alloc_node() const {
    Stats::on_alloc();
    return new (node_pool_.allocate(sizeof(node))) node{};
  }

  /// New leaf = `base`'s keys, plus `added` (if non-null), minus
  /// `removed` (if non-null). Keeps the array sorted.
  node* make_leaf_with(const node* base, const Key* added,
                       const Key* removed) const {
    node* n = alloc_node();
    unsigned count = 0;
    auto push = [&](const skey& k) { n->keys[count++] = k; };
    bool added_done = (added == nullptr);
    for (unsigned i = 0; i < base->key_count; ++i) {
      const skey& k = base->keys[i];
      if (removed != nullptr && less_.equal(*removed, k)) continue;
      if (!added_done && less_(*added, k)) {
        push(skey(*added));
        added_done = true;
      }
      push(k);
    }
    if (!added_done) push(skey(*added));
    n->key_count = static_cast<std::uint8_t>(count);
    LFBST_ASSERT(count <= leaf_capacity, "leaf overflow in make_leaf_with");
    return n;
  }

  /// SPROUT: distribute the full leaf's K-1 keys plus `key` over K
  /// fresh one-key leaves under a new internal node whose routing keys
  /// are the upper K-1 of the K sorted keys.
  node* sprout(const node* full_leaf, const Key& key) const {
    std::array<skey, K> all{};
    unsigned count = 0;
    bool placed = false;
    for (unsigned i = 0; i < full_leaf->key_count; ++i) {
      const skey& k = full_leaf->keys[i];
      if (!placed && less_(key, k)) {
        all[count++] = skey(key);
        placed = true;
      }
      all[count++] = k;
    }
    if (!placed) all[count++] = skey(key);
    LFBST_ASSERT(count == K, "sprout expects exactly K keys");

    node* internal = alloc_node();
    internal->internal = true;
    internal->key_count = K - 1;
    for (unsigned i = 0; i < K - 1; ++i) internal->keys[i] = all[i + 1];
    for (unsigned i = 0; i < K; ++i) {
      node* leaf = alloc_node();
      leaf->keys[0] = all[i];
      leaf->key_count = 1;
      internal->children[i].store_relaxed(tagged_ptr<node>::clean(leaf));
    }
    return internal;
  }

  /// Union of all keys in the (frozen) sibling leaves, minus `removed`
  /// when non-null (null = pure maintenance collapse).
  node* make_union_leaf(const std::array<node*, K>& siblings,
                        const Key* removed) const {
    node* n = alloc_node();
    unsigned count = 0;
    // Children are ordered by the routing keys, so concatenation in
    // slot order is already sorted.
    for (node* sib : siblings) {
      for (unsigned i = 0; i < sib->key_count; ++i) {
        if (removed != nullptr && less_.equal(*removed, sib->keys[i])) {
          continue;
        }
        n->keys[count++] = sib->keys[i];
      }
    }
    n->key_count = static_cast<std::uint8_t>(count);
    LFBST_ASSERT(count <= leaf_capacity, "union leaf overflow");
    return n;
  }

  /// Best-effort maintenance: while the parent on `key`'s access path is
  /// an internal node whose children are all leaves jointly holding at
  /// most one leaf's worth of keys, collapse it into a single leaf. Runs
  /// after erases that emptied a leaf so fully drained subtrees cascade
  /// back to (sentinel root + one leaf) instead of leaving chains of
  /// empty internal nodes. One failed CAS stops the pass — it is pure
  /// maintenance, another operation's progress covers ours.
  void collapse_upward(const Key& key) {
    for (;;) {
      search_result s = search(key);
      if (s.grandparent == nullptr) return;
      std::array<node*, K> siblings{};
      unsigned total = 0;
      for (unsigned i = 0; i < K; ++i) {
        siblings[i] = s.parent->children[i].load().address();
        if (siblings[i] == nullptr || !siblings[i]->is_leaf()) return;
        total += siblings[i]->key_count;
      }
      if (total > leaf_capacity) return;
      if (update_state(s.gpupdate) != state::clean ||
          update_state(s.pupdate) != state::clean) {
        return;
      }
      node* union_leaf = make_union_leaf(siblings, nullptr);
      info_record* op = make_info();
      op->coalesce = {s.grandparent, s.parent, union_leaf, s.pupdate,
                      s.parent_index};
      update_t expected = s.gpupdate;
      Stats::on_cas();
      if (!s.grandparent->update.compare_exchange(
              expected, update_t(op, /*iflag=*/false, /*dflag=*/true))) {
        destroy_node(union_leaf);
        destroy_info(op);
        return;
      }
      if (!help_coalesce(op)) {
        if constexpr (Reclaimer::reclaims_eagerly) retire_info_later(op);
        destroy_node(union_leaf);
        return;
      }
      if constexpr (Reclaimer::reclaims_eagerly) {
        reclaimer_.retire(s.parent, &node_deleter, &node_pool_);
        for (node* sib : siblings) {
          reclaimer_.retire(sib, &node_deleter, &node_pool_);
        }
        retire_info_later(op);
      }
      // Collapsed one level; the new union leaf's parent may now be
      // collapsible too.
    }
  }

  node* make_internal_sentinel() {
    node* n = alloc_node();
    n->internal = true;
    n->key_count = K - 1;
    for (unsigned i = 0; i < K - 1; ++i) n->keys[i] = skey::inf1();
    for (unsigned i = 0; i < K; ++i) {
      node* leaf = alloc_node();  // empty leaf
      n->children[i].store_relaxed(tagged_ptr<node>::clean(leaf));
    }
    return n;
  }

  info_record* make_info() const {
    Stats::on_alloc();
    return new (info_pool_.allocate(sizeof(info_record))) info_record();
  }

  void destroy_node(node* n) const {
    n->~node();
    node_pool_.deallocate(n);
  }
  /// Destroys an unpublished replacement (a leaf, or a sprouted internal
  /// node together with its fresh children).
  void destroy_replacement(node* n) const {
    if (n->internal) {
      for (unsigned i = 0; i < K; ++i) {
        destroy_node(n->children[i].load().address());
      }
    }
    destroy_node(n);
  }
  void destroy_info(info_record* op) const {
    op->~info_record();
    info_pool_.deallocate(op);
  }
  static void node_deleter(void* obj, void* ctx) noexcept {
    static_cast<node*>(obj)->~node();
    static_cast<node_pool*>(ctx)->deallocate(obj);
  }
  static void info_deleter(void* obj, void* ctx) noexcept {
    static_cast<info_record*>(obj)->~info_record();
    static_cast<node_pool*>(ctx)->deallocate(obj);
  }
  void retire_info_later(info_record* op) const {
    reclaimer_.retire(op, &info_deleter, &info_pool_);
  }

  // --- quiescent helpers -----------------------------------------------------

  template <typename F>
  void walk(const node* n, F& fn) const {
    if (n->is_leaf()) {
      for (unsigned i = 0; i < n->key_count; ++i) {
        if (!n->keys[i].is_sentinel()) fn(n->keys[i].key);
      }
      return;
    }
    for (unsigned i = 0; i < K; ++i) {
      walk(n->children[i].load(std::memory_order_relaxed).address(), fn);
    }
  }

  void validate_node(const node* n, const skey* low, const skey* high,
                     std::string& err) const {
    if (n->is_leaf()) {
      for (unsigned i = 0; i < n->key_count; ++i) {
        if (i + 1 < n->key_count && !less_(n->keys[i], n->keys[i + 1])) {
          err += "leaf keys not strictly sorted; ";
        }
        if (low != nullptr && less_(n->keys[i], *low)) {
          err += "leaf key below bound; ";
        }
        if (high != nullptr && !less_(n->keys[i], *high)) {
          err += "leaf key not below bound; ";
        }
      }
      return;
    }
    if (n->key_count != K - 1) err += "internal node without K-1 routes; ";
    if (update_state(n->update.load(std::memory_order_relaxed)) !=
        state::clean) {
      err += "reachable non-CLEAN update word at quiescence; ";
    }
    for (unsigned i = 0; i + 1 < K - 1; ++i) {
      if (less_(n->keys[i + 1], n->keys[i])) {
        err += "routing keys out of order; ";
      }
    }
    for (unsigned i = 0; i < K; ++i) {
      const node* child =
          n->children[i].load(std::memory_order_relaxed).address();
      if (child == nullptr) {
        err += "internal node with missing child; ";
        continue;
      }
      const skey* lo = (i == 0) ? low : &n->keys[i - 1];
      const skey* hi = (i == K - 1) ? high : &n->keys[i];
      validate_node(child, lo, hi, err);
    }
  }

  void destroy_reachable(node* root) {
    std::vector<node*> stack{root};
    while (!stack.empty()) {
      node* n = stack.back();
      stack.pop_back();
      if (n->internal) {
        for (unsigned i = 0; i < K; ++i) {
          if (node* c =
                  n->children[i].load(std::memory_order_relaxed).address()) {
            stack.push_back(c);
          }
        }
      }
      destroy_node(n);
    }
  }

  [[no_unique_address]] sentinel_less<Key, Compare> less_{};
  mutable node_pool node_pool_;
  mutable node_pool info_pool_;
  mutable Reclaimer reclaimer_{};
  node* root_ = nullptr;
};

}  // namespace lfbst
