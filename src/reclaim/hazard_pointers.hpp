// lfbst: hazard-pointer reclamation domain (Michael, TPDS 2004).
//
// The paper cites hazard pointers as the route to a reclaiming variant
// of the algorithm (§3.2: "A lock-free algorithm to reclaim memory ...
// can be derived using the well-known notion of hazard pointers [26]").
// This header provides the substrate as a standalone, fully tested
// domain. The NM tree ships with the `leaky` (paper regime) and `epoch`
// policies; protecting NM seeks with hazard pointers additionally
// requires validated re-reads at each traversal step — the recipe is
// documented at the bottom of this file, and the domain itself is
// exercised by the hazard-pointer unit tests and the Treiber-stack
// validation harness in tests/reclaim/.
//
// Semantics: a thread publishes the address it is about to dereference
// in one of its K hazard slots, re-reads the source to confirm the
// pointer is still live-reachable, and only then dereferences. retire()
// defers the free until no thread's slot holds the address.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/assert.hpp"
#include "common/cacheline.hpp"
#include "common/thread_id.hpp"
#include "obs/trace.hpp"
#include "reclaim/leaky.hpp"

namespace lfbst::reclaim {

/// `SlotsPerThread`: how many distinct objects one operation must keep
/// protected at once. A tree seek that needs (ancestor, successor,
/// parent, leaf) simultaneously uses 4; the Treiber stack uses 1.
template <unsigned SlotsPerThread>
class hazard_domain {
 public:
  static constexpr bool reclaims_eagerly = true;
  static constexpr unsigned slots_per_thread = SlotsPerThread;

  hazard_domain() = default;
  hazard_domain(const hazard_domain&) = delete;
  hazard_domain& operator=(const hazard_domain&) = delete;

  ~hazard_domain() { drain_all_unsafe(); }

  /// Publishes `candidate` in slot `slot`, then re-loads `source` until
  /// the published value matches the current value — the standard
  /// validated-protect loop. Returns the protected pointer (possibly a
  /// newer value than `candidate`). The caller may dereference the
  /// result until the slot is overwritten or cleared.
  template <typename T>
  T* protect(unsigned slot, const std::atomic<T*>& source) noexcept {
    LFBST_ASSERT(slot < SlotsPerThread, "hazard slot out of range");
    std::atomic<void*>& hp = slot_ref(slot);
    T* candidate = source.load(std::memory_order_acquire);
    for (;;) {
      hp.store(candidate, std::memory_order_seq_cst);
      T* fresh = source.load(std::memory_order_seq_cst);
      if (fresh == candidate) return candidate;
      candidate = fresh;
    }
  }

  /// Publishes an already-validated pointer (caller performs its own
  /// source re-check, as tree seeks do).
  void announce(unsigned slot, void* pointer) noexcept {
    LFBST_ASSERT(slot < SlotsPerThread, "hazard slot out of range");
    slot_ref(slot).store(pointer, std::memory_order_seq_cst);
  }

  void clear(unsigned slot) noexcept {
    slot_ref(slot).store(nullptr, std::memory_order_release);
  }

  void clear_all() noexcept {
    for (unsigned s = 0; s < SlotsPerThread; ++s) clear(s);
  }

  /// Defers the free of `object` until no hazard slot holds it.
  void retire(void* object, deleter_fn deleter, void* context) {
    auto& local = retired_[this_thread_index()].value;
    local.push_back({object, deleter, context});
    if (local.size() >= scan_threshold()) scan(local);
  }

  /// Frees everything pending regardless of hazard slots; caller
  /// guarantees quiescence.
  void drain_all_unsafe() {
    for (auto& padded_list : retired_) {
      for (const retired_record& r : padded_list.value) {
        r.deleter(r.object, r.context);
      }
      padded_list.value.clear();
    }
  }

  [[nodiscard]] std::size_t pending() const noexcept {
    std::size_t n = 0;
    for (const auto& l : retired_) n += l.value.size();
    return n;
  }

  /// Total hazard scans executed by this domain (src/obs/ telemetry).
  [[nodiscard]] std::uint64_t scan_count() const noexcept {
    return scan_count_.load(std::memory_order_relaxed);
  }

 private:
  struct retired_record {
    void* object;
    deleter_fn deleter;
    void* context;
  };

  std::atomic<void*>& slot_ref(unsigned slot) noexcept {
    return slots_[this_thread_index() * SlotsPerThread + slot].value;
  }

  /// Michael's rule of thumb: scan when the local list exceeds ~2x the
  /// total slot count, so amortized scan cost per retire is O(1).
  static constexpr std::size_t scan_threshold() noexcept {
    return 2 * static_cast<std::size_t>(max_threads) * SlotsPerThread + 16;
  }

  void scan(std::vector<retired_record>& local) {
    scan_count_.fetch_add(1, std::memory_order_relaxed);
    std::vector<void*> protected_now;
    protected_now.reserve(64);
    for (const auto& s : slots_) {
      void* p = s.value.load(std::memory_order_seq_cst);
      if (p != nullptr) protected_now.push_back(p);
    }
    std::sort(protected_now.begin(), protected_now.end());

    std::vector<retired_record> still_pending;
    still_pending.reserve(local.size());
    for (const retired_record& r : local) {
      const bool hazardous = std::binary_search(protected_now.begin(),
                                                protected_now.end(), r.object);
      if (hazardous) {
        still_pending.push_back(r);
      } else {
        r.deleter(r.object, r.context);
      }
    }
    // Scans are already O(slots + retired); the trace branch is noise.
    obs::emit_global(
        obs::event_type::hazard_scan,
        static_cast<std::uint32_t>(local.size() - still_pending.size()));
    local.swap(still_pending);
  }

  alignas(cacheline_size) std::atomic<std::uint64_t> scan_count_{0};
  padded<std::atomic<void*>> slots_[max_threads * SlotsPerThread];
  padded<std::vector<retired_record>> retired_[max_threads];
};

// Recipe for a hazard-pointer-protected NM-BST seek (not enabled by
// default; see DESIGN.md §6.5):
//   1. Reserve 4 slots: ancestor, successor, parent, leaf.
//   2. At each traversal step, announce the child pointer about to be
//      followed in the slot it will occupy, then re-read the child field
//      of the (still protected) parent; if the address part changed,
//      restart the seek — the edge moved under us.
//   3. cleanup() retires the excised chain exactly as under EBR; the
//      scan in retire() holds back any node still announced by a seek.
// The re-read in step 2 is the validated-protect loop of protect(),
// unrolled across the traversal.

}  // namespace lfbst::reclaim
