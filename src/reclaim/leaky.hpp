// lfbst: the paper-faithful "no reclamation" policy.
//
// Paper §3.2: "For ease of exposition, we assume that the memory
// allocated to nodes that are no longer part of the tree is not
// reclaimed" — and §4 measures every implementation with reclamation
// disabled ("For a fair comparison, no memory reclamation is performed
// in any of the implementations"). This policy reproduces that regime:
// retire() is a no-op, so unlinked nodes simply remain in their
// node_pool slabs until the owning tree is destroyed and the pool
// releases the slabs wholesale.
//
// Consequences, spelled out:
//   * The ABA problem cannot occur because addresses are never reused
//     while the tree lives (paper §3.2's justification).
//   * Node destructors of *unreachable* nodes never run; trees
//     static_assert that the key type is trivially destructible when
//     instantiated with this policy.
//   * ASAN/valgrind remain clean: the memory is still owned by the pool
//     and freed at destruction — "leaky" describes the reuse policy, not
//     an actual leak.
#pragma once

#include <cstddef>

namespace lfbst::reclaim {

/// Deleter signature shared by all reclaimers: (object, context). The
/// context is typically the node_pool the object came from.
using deleter_fn = void (*)(void*, void*) noexcept;

class leaky {
 public:
  /// Every reclaimer must declare whether retired nodes' deleters ever
  /// run before drain; trees use this to gate the trivially-destructible
  /// static_assert.
  static constexpr bool reclaims_eagerly = false;
  /// This policy keeps retired nodes alive through a global mechanism,
  /// so tree traversals need no per-node cooperation.
  static constexpr bool requires_validated_traversal = false;

  /// RAII pin for the duration of one tree operation. No state needed:
  /// with no reclamation there is no grace period to track.
  struct guard {
    guard() = default;
    guard(const guard&) = delete;
    guard& operator=(const guard&) = delete;
  };

  [[nodiscard]] guard pin() noexcept { return {}; }

  /// Intentionally drops the node on the floor of its pool.
  void retire(void* /*object*/, deleter_fn /*deleter*/,
              void* /*context*/) noexcept {}

  /// Nothing deferred, nothing to drain.
  void drain_all_unsafe() noexcept {}

  /// Number of retired-but-unreclaimed objects (always 0: we never even
  /// record them).
  [[nodiscard]] std::size_t pending() const noexcept { return 0; }
};

}  // namespace lfbst::reclaim
