// lfbst: hazard-pointer reclaimer policy for the NM-BST.
//
// The paper (§3.2) points to Michael's hazard pointers as the way to add
// memory reclamation to the algorithm. Unlike epochs, hazard pointers
// protect *individual nodes*, so the tree's seek phase must cooperate:
// every node is announced in a hazard slot and re-validated against the
// edge it was read from before it is dereferenced (the recipe at the
// bottom of reclaim/hazard_pointers.hpp, implemented by
// nm_tree::seek_protected).
//
// Slot layout (8 per thread): the four seek-record nodes — ancestor,
// successor, parent, leaf — each own a slot so they stay protected for
// the whole operation (cleanup dereferences all four), one scratch slot
// guards the node currently being stepped onto, and one slot pins the
// leaf a delete flagged for the duration of its cleanup phase. Ordered
// scans (nm_tree::range_scan) add two slots for the successor-query
// anchor snapshot and reuse the flagged-leaf slot — a thread runs one
// operation at a time and only erase uses hp_flagged — for the scan's
// deepest-left-turn node.
//
// Trade-off vs epoch: bounded garbage (at most slots x threads retired
// nodes are ever held back) at the price of one seq_cst store + one
// validating re-read per traversal step. bench_ablation --study=reclaim
// quantifies it.
//
// `requires_validated_traversal = true` makes non-cooperating trees
// (EFRB/HJ/BCCO, whose traversals do not validate) reject this policy at
// compile time.
#pragma once

#include <cstddef>

#include "reclaim/hazard_pointers.hpp"
#include "reclaim/leaky.hpp"

namespace lfbst::reclaim {

class hazard {
 public:
  static constexpr bool reclaims_eagerly = true;
  static constexpr bool requires_validated_traversal = true;

  /// Seek-record slot assignments, shared between this policy and
  /// nm_tree::seek_protected.
  static constexpr unsigned hp_ancestor = 0;
  static constexpr unsigned hp_successor = 1;
  static constexpr unsigned hp_parent = 2;
  static constexpr unsigned hp_leaf = 3;
  static constexpr unsigned hp_scratch = 4;
  /// Held by erase() across its cleanup-mode re-seeks: the flagged leaf
  /// must stay protected so the `sr.leaf != leaf` identity test cannot
  /// be fooled by address reuse (ABA on a freed-and-recycled node).
  static constexpr unsigned hp_flagged = 5;
  /// Ordered-scan slots (nm_tree::scan_protected). The deepest left turn
  /// of the current successor descent reuses hp_flagged: scans never run
  /// inside an erase, so the slot is guaranteed free. Its anchor edge
  /// snapshot (the last untagged edge above the turn, used to resume
  /// validation after the turn is reached) needs two slots of its own so
  /// the pair stays protected across the phase-2 min-leaf descent.
  static constexpr unsigned hp_scan_turn = hp_flagged;
  static constexpr unsigned hp_scan_turn_anchor = 6;
  static constexpr unsigned hp_scan_turn_successor = 7;
  static constexpr unsigned slot_count = 8;

  using domain_type = hazard_domain<slot_count>;

  hazard() = default;
  hazard(const hazard&) = delete;
  hazard& operator=(const hazard&) = delete;

  /// RAII pin: clears the calling thread's slots when the operation
  /// finishes, releasing every node it was holding back.
  class guard {
   public:
    explicit guard(hazard& h) noexcept : h_(&h) {}
    ~guard() { h_->domain_.clear_all(); }
    guard(const guard&) = delete;
    guard& operator=(const guard&) = delete;

   private:
    hazard* h_;
  };

  [[nodiscard]] guard pin() noexcept { return guard(*this); }

  void retire(void* object, deleter_fn deleter, void* context) {
    domain_.retire(object, deleter, context);
  }

  void drain_all_unsafe() { domain_.drain_all_unsafe(); }

  [[nodiscard]] std::size_t pending() const noexcept {
    return domain_.pending();
  }

  [[nodiscard]] domain_type& domain() noexcept { return domain_; }

 private:
  domain_type domain_;
};

}  // namespace lfbst::reclaim
