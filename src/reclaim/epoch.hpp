// lfbst: epoch-based reclamation (EBR), the production alternative to
// the paper's leaky regime.
//
// Scheme (classic 3-epoch EBR, Fraser 2004): a global epoch counter
// advances only when every *pinned* thread has announced the current
// epoch. An object retired in epoch e may be freed once the global epoch
// reaches e+2 — by then every operation that could have held a reference
// (pinned in epoch ≤ e) has finished, because an operation pins once and
// never re-announces mid-operation.
//
// Why EBR composes cleanly with the NM-BST specifically: after the
// ancestor-level CAS of cleanup() succeeds, every edge inside the
// excised chain is frozen (flagged or tagged — paper §3.2, "once an edge
// has been marked, it cannot be changed"), so the winning thread can
// walk the chain to enumerate and retire its nodes without any
// synchronization. Concurrent seeks may still be traversing those nodes;
// the grace period is exactly what makes the deferred free safe.
//
// Costs relative to leaky (quantified in bench_ablation --study=reclaim):
// one announcement store + fence per operation, plus the retire-list
// bookkeeping on deletes.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/assert.hpp"
#include "common/cacheline.hpp"
#include "common/thread_id.hpp"
#include "obs/trace.hpp"
#include "reclaim/leaky.hpp"

namespace lfbst::reclaim {

class epoch {
 public:
  static constexpr bool reclaims_eagerly = true;
  /// This policy keeps retired nodes alive through a global mechanism,
  /// so tree traversals need no per-node cooperation.
  static constexpr bool requires_validated_traversal = false;

  epoch() = default;
  epoch(const epoch&) = delete;
  epoch& operator=(const epoch&) = delete;

  ~epoch() { drain_all_unsafe(); }

  class guard {
   public:
    explicit guard(epoch& domain) noexcept
        : domain_(&domain), slot_(this_thread_index()) {
      thread_state& ts = domain_->threads_[slot_].value;
      if (ts.nesting++ == 0) {
        // Announce the current global epoch, then set active. seq_cst on
        // the announcement store pairs with the seq_cst scan in
        // try_advance so a pinned thread is never overlooked.
        const std::uint64_t e =
            domain_->global_epoch_.load(std::memory_order_relaxed);
        ts.local_epoch.store(e, std::memory_order_relaxed);
        ts.active.store(true, std::memory_order_seq_cst);
        // Re-read: if the epoch moved between our read and our announce,
        // re-announce so we never pin a stale epoch forever.
        const std::uint64_t e2 =
            domain_->global_epoch_.load(std::memory_order_seq_cst);
        if (e2 != e) ts.local_epoch.store(e2, std::memory_order_seq_cst);
      }
    }

    ~guard() {
      thread_state& ts = domain_->threads_[slot_].value;
      LFBST_ASSERT(ts.nesting > 0, "unbalanced epoch guard");
      if (--ts.nesting == 0) {
        ts.active.store(false, std::memory_order_release);
      }
    }

    guard(const guard&) = delete;
    guard& operator=(const guard&) = delete;

   private:
    epoch* domain_;
    unsigned slot_;
  };

  [[nodiscard]] guard pin() noexcept { return guard(*this); }

  /// Defers (object, deleter, context) until two epoch advances have
  /// passed. Must be called while pinned (the retiring operation holds a
  /// guard). Periodically attempts to advance the global epoch and flush.
  void retire(void* object, deleter_fn deleter, void* context) {
    thread_state& ts = threads_[this_thread_index()].value;
    // An unpinned retire is a use-after-free factory: without a guard the
    // retiring thread does not hold the epoch back, so the object can be
    // flushed while a reader that observed it (pinned in an older epoch)
    // still dereferences it. Enforce the documented contract.
    LFBST_ASSERT(ts.nesting > 0,
                 "epoch::retire called while not pinned (no guard held)");
    const std::uint64_t e = global_epoch_.load(std::memory_order_acquire);
    ts.limbo[e % 3].push_back({object, deleter, context});
    // Single-writer counters (only the owning thread stores), but
    // pending()/pending_high_water() read them cross-thread: relaxed
    // atomics keep those monitoring reads data-race-free without
    // ordering cost on the retire path.
    const std::size_t pend =
        ts.pending_count.load(std::memory_order_relaxed) + 1;
    ts.pending_count.store(pend, std::memory_order_relaxed);
    if (pend > ts.pending_hwm.load(std::memory_order_relaxed)) {
      ts.pending_hwm.store(pend, std::memory_order_relaxed);
    }
    if (++ts.retires_since_scan >= scan_interval) {
      ts.retires_since_scan = 0;
      try_advance_and_flush(ts);
    }
  }

  /// Frees everything still pending, regardless of epochs. Caller must
  /// guarantee quiescence (no concurrent operations) — used by tree
  /// destructors and by tests between phases. Resets *all* per-thread
  /// bookkeeping, not just the limbo lists: a multi-phase test (or a
  /// recycled thread_id slot after thread churn) must start the next
  /// phase with a fresh high-water mark and a fresh scan cadence, not
  /// inherit the prior phase's retires_since_scan countdown.
  void drain_all_unsafe() {
    for (auto& padded_ts : threads_) {
      thread_state& ts = padded_ts.value;
      for (auto& bucket : ts.limbo) {
        for (const retired& r : bucket) r.deleter(r.object, r.context);
        bucket.clear();
      }
      ts.pending_count.store(0, std::memory_order_relaxed);
      ts.pending_hwm.store(0, std::memory_order_relaxed);
      ts.retires_since_scan = 0;
    }
  }

  /// Retired-but-not-yet-freed object count (approximate under
  /// concurrency; exact at quiescence).
  [[nodiscard]] std::size_t pending() const noexcept {
    std::size_t n = 0;
    for (const auto& ts : threads_) {
      n += ts.value.pending_count.load(std::memory_order_relaxed);
    }
    return n;
  }

  [[nodiscard]] std::uint64_t current_epoch() const noexcept {
    return global_epoch_.load(std::memory_order_relaxed);
  }

  // --- observability (src/obs/) ---------------------------------------

  /// Number of times *this domain's* advance CAS won (the global epoch
  /// moved because of one of our try_advance_and_flush calls).
  [[nodiscard]] std::uint64_t advance_count() const noexcept {
    return advance_count_.load(std::memory_order_relaxed);
  }

  /// High-water mark of the deferred (retired-but-unfreed) queue, summed
  /// over threads. A per-thread maximum, so the sum is an upper bound of
  /// the true instantaneous maximum; exact for single-threaded phases.
  [[nodiscard]] std::size_t pending_high_water() const noexcept {
    std::size_t n = 0;
    for (const auto& ts : threads_) {
      n += ts.value.pending_hwm.load(std::memory_order_relaxed);
    }
    return n;
  }

 private:
  struct retired {
    void* object;
    deleter_fn deleter;
    void* context;
  };

  struct thread_state {
    std::atomic<bool> active{false};
    std::atomic<std::uint64_t> local_epoch{0};
    unsigned nesting = 0;
    unsigned retires_since_scan = 0;
    // Written only by the owning thread, but polled cross-thread by
    // pending()/pending_high_water() (monitoring, tests, bench_memory):
    // relaxed atomics make the polls data-race-free. The values remain
    // approximate under concurrency, exact at quiescence.
    std::atomic<std::size_t> pending_count{0};
    std::atomic<std::size_t> pending_hwm{0};  // high-water of pending_count
    // One limbo bucket per epoch residue class. Bucket e%3 holds objects
    // retired in epoch e; it is safe to flush when global >= e+2, at
    // which point the bucket is about to be reused for epoch e+3.
    std::vector<retired> limbo[3];
  };

  /// How many retires between advance attempts. Small enough that limbo
  /// lists stay short in delete-heavy workloads, large enough that the
  /// all-threads scan amortizes.
  static constexpr unsigned scan_interval = 64;

  void try_advance_and_flush(thread_state& me) {
    const std::uint64_t e = global_epoch_.load(std::memory_order_seq_cst);
    for (const auto& padded_ts : threads_) {
      const thread_state& ts = padded_ts.value;
      if (ts.active.load(std::memory_order_seq_cst) &&
          ts.local_epoch.load(std::memory_order_seq_cst) != e) {
        return;  // someone is still in an older epoch; cannot advance
      }
    }
    std::uint64_t expected = e;
    if (global_epoch_.compare_exchange_strong(expected, e + 1,
                                              std::memory_order_seq_cst)) {
      advance_count_.fetch_add(1, std::memory_order_relaxed);
      // Epoch advances are rare (>= scan_interval retires apart), so an
      // always-on branch here costs nothing measurable.
      obs::emit_global(obs::event_type::epoch_advance,
                       static_cast<std::uint32_t>(e + 1));
    }
    // Whether we won or another thread advanced for us, re-read the
    // global epoch g and flush our bucket (g+1)%3. That bucket holds
    // only objects this thread retired at epochs ≡ g+1 (mod 3) that are
    // ≤ g, i.e. epochs ≤ g-2 — exactly the two-advance grace period.
    // (Flushing bucket g%3 would be wrong: it may hold objects retired
    // in the current epoch g, which pinned readers can still reference.)
    const std::uint64_t g = global_epoch_.load(std::memory_order_seq_cst);
    flush_bucket(me, (g + 1) % 3);
  }

  void flush_bucket(thread_state& ts, std::size_t idx) {
    auto& bucket = ts.limbo[idx];
    ts.pending_count.store(
        ts.pending_count.load(std::memory_order_relaxed) - bucket.size(),
        std::memory_order_relaxed);
    for (const retired& r : bucket) r.deleter(r.object, r.context);
    bucket.clear();
  }

  alignas(cacheline_size) std::atomic<std::uint64_t> global_epoch_{3};
  alignas(cacheline_size) std::atomic<std::uint64_t> advance_count_{0};
  padded<thread_state> threads_[max_threads];
};

}  // namespace lfbst::reclaim
