// lfbst: lock-free external k-ary search tree — the paper's §6 future
// work ("we plan to use the ideas in this work to develop more efficient
// lock-free algorithms for k-ary search trees"), in the lineage of
// Brown & Helga's non-blocking k-ST (OPODIS 2011) that the paper cites
// as [4]. Promoted from src/extensions/ to a first-class contender:
// docs/MULTIWAY.md documents the node layout, the in-node search
// kernels, and the policy-parity matrix against the NM tree.
//
// Shape: external k-ary tree. Leaves hold up to K-1 client keys in a
// sorted inline array; internal nodes hold exactly K-1 routing keys and
// K children. Fat leaves amortize one cache line over several keys, so
// searches touch ~log_K(n) nodes instead of log_2(n) — the point of the
// k-ary generalization, and the cache-miss argument ELB-Trees and
// Spiegel & Reynolds' multiway search tree (PAPERS.md) both make.
//
// Cache-conscious layout: nodes are alignas(64) with the key array,
// key count and kind flags packed into the leading cache line (for the
// tuned default fanouts the whole routing scan reads exactly one line)
// and the update word plus child pointers on the following line(s).
// Keys are a *raw* `Key[K-1]` array — no sentinel wrapper — so the
// in-node search lowers to the branch-free/SIMD reductions in
// multiway/node_search.hpp. The root's "all routing keys are +infinity"
// sentinel role moved into a `routes_infinite` flag: the root routes
// every client key to child 0 and its key array is never read.
//
// Operations (EFRB-style Info-record coordination, matching Brown &
// Helga's use of the Ellen et al. protocol):
//   search : traverse; branch-free scan of the leaf. No atomics.
//   insert : leaf has spare capacity → REPLACE: flag the parent's update
//            word with an Info record, CAS the child edge from the old
//            leaf to a new leaf containing the key, unflag (3 CAS,
//            2 allocations). Leaf full → SPROUT: the K keys (K-1 old +
//            1 new) become an internal node with K one-key leaf
//            children (3 CAS, K+2 allocations).
//   delete : leaf keeps ≥1 key, or its parent is the root, or siblings
//            are not all leaves → REPLACE with a smaller (possibly
//            empty) leaf. Otherwise → COALESCE (the pruning step):
//            DFLAG the grandparent, MARK the parent, swing the
//            grandparent's edge from the parent to one new leaf holding
//            the union of all the parent's children's keys minus the
//            deleted one (4 CAS, 2 allocations). Coalescing bounds the
//            garbage that the NM paper's related-work section criticizes
//            in remove-less relaxed trees: an internal node whose leaf
//            children jointly fit in one leaf is collapsed as soon as a
//            delete touches it.
//
// Policy axes (full parity with core/natarajan_tree.hpp):
//   Reclaimer — leaky, epoch, or hazard. Hazard pointers need the seek
//     to validate per node; unlike the NM tree, k-ary edges are *never*
//     marked (all coordination lives in the update words), so the
//     edge-recheck recipe alone cannot prove a just-announced child is
//     unretired: a COALESCE freezes the parent's child edges in place
//     and retires the children only after swinging the *grandparent's*
//     edge. The per-level fix: after announcing the child and
//     re-reading the edge, re-read the parent's update word seq_cst and
//     reject on MARK. The MARK precedes the excision swing and is
//     terminal, so "unmarked after the announce" proves the children
//     were not yet retired when announced. COALESCE only ever retires
//     one internal node plus its direct leaf children, so this check
//     exactly covers the exposure window.
//   Stats — stats::none / stats::counting / obs::recording, via a
//     per-instance policy object (heatmap on_op_key, seek depth, scan
//     and restart attribution).
//   Atomics — atomics::native or dsched::sched_atomics; every
//     update-word and child-edge access is a tagged_word primitive, so
//     the deterministic scheduler can explore the IFLAG/DFLAG/MARK
//     protocol (tests/dsched/kary_scenarios_test.cpp).
//   Restart — restart::from_anchor resumes a failed modify from the
//     deepest still-unmarked node of the previous descent (internal
//     nodes leave the tree only via COALESCE, which marks them first
//     and marks are terminal; routing keys are immutable, so an
//     unmarked anchor still routes the key); restart::from_root is the
//     ablation baseline.
//
// Deviations from Brown & Helga, documented per DESIGN.md: (a) we
// coalesce eagerly whenever the parent's children are all leaves whose
// surviving keys fit in a single leaf (they prune only when exactly one
// non-empty child remains); (b) helping uses the same two-record scheme
// as our EFRB port rather than their four-state version records. Both
// preserve lock-freedom and linearizability; neither changes the
// operation count asymptotics.
#pragma once

#include <algorithm>
#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <new>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "alloc/node_pool.hpp"
#include "common/assert.hpp"
#include "common/atomics_policy.hpp"
#include "common/backoff.hpp"
#include "common/prefetch.hpp"
#include "common/tagged_word.hpp"
#include "core/restart_policy.hpp"
#include "core/stats.hpp"
#include "multiway/node_search.hpp"
#include "reclaim/epoch.hpp"
#include "reclaim/leaky.hpp"

namespace lfbst {

template <typename Key, unsigned K = multiway::default_fanout<Key>,
          typename Compare = std::less<Key>,
          typename Reclaimer = reclaim::leaky, typename Stats = stats::none,
          typename Atomics = atomics::native,
          typename Restart = restart::from_anchor>
class kary_tree {
  static_assert(K >= 2, "a k-ary tree needs at least binary fanout");
  static_assert(Reclaimer::reclaims_eagerly ||
                    std::is_trivially_destructible_v<Key>,
                "leaky reclamation requires trivially destructible keys");

 public:
  using key_type = Key;
  using key_compare = Compare;
  using stats_policy = Stats;
  using reclaimer_type = Reclaimer;
  using restart_policy = Restart;
  using atomics_policy = Atomics;

  static constexpr const char* algorithm_name = "KST";
  static constexpr unsigned fanout = K;
  static constexpr unsigned leaf_capacity = K - 1;
  /// Hazard pointers require the validated traversal below; epoch and
  /// leaky take the plain descent.
  static constexpr bool validated = Reclaimer::requires_validated_traversal;
  /// Contended-path niceties (bounded backoff, descent prefetch) are
  /// disabled under an interposing atomics policy so dsched explores
  /// the bare protocol.
  static constexpr bool use_backoff = std::is_same_v<Atomics, atomics::native>;

  kary_tree()
      : node_pool_(sizeof(node), node_slab_bytes(), alignof(node)),
        info_pool_(sizeof(info_record)) {
    // Root: an internal sentinel routing every client key to child 0
    // (routes_infinite: all routing keys are conceptually +∞, the key
    // array itself is never read); children 1..K-1 are permanently
    // empty leaves. A client leaf therefore always has a parent, and
    // every coalescible parent (an internal node below the root) has a
    // grandparent. The root is never replaced, marked, or retired.
    root_ = make_internal_sentinel();
  }

  kary_tree(const kary_tree&) = delete;
  kary_tree& operator=(const kary_tree&) = delete;

  // Teardown ordering (audited against the PR 5 epoch-teardown UAF):
  // destroy the reachable tree first, then drain the retired backlog
  // while the pools are still alive — node/info deleters dereference
  // the pools, so the drain must precede member destruction (members
  // are destroyed in reverse declaration order: root pointer, then
  // reclaimer, then pools). The two sets are disjoint: every retire
  // happens only after the CAS that unlinked the object from the
  // reachable tree, so nothing is freed twice. Caller contract (same
  // as every tree here): all guards are destroyed and no concurrent
  // operation is in flight when the destructor runs —
  // tests/multiway/kary_hazard_test.cpp pins this with canary nodes
  // left pending at destruction under epoch and hazard.
  ~kary_tree() {
    destroy_reachable(root_);
    reclaimer_.drain_all_unsafe();
  }

  [[nodiscard]] bool contains(const Key& key) const {
    stats_.on_op_begin(stats::op_kind::search);
    note_key(stats::op_kind::search, key);
    bool found;
    {
      [[maybe_unused]] auto guard = reclaimer_.pin();
      search_result s;
      seek(key, s);
      found = leaf_contains(s.leaf, key);
    }
    stats_.on_op_end(stats::op_kind::search, found);
    return found;
  }

  bool insert(const Key& key) {
    stats_.on_op_begin(stats::op_kind::insert);
    note_key(stats::op_kind::insert, key);
    const bool inserted = insert_impl(key);
    stats_.on_op_end(stats::op_kind::insert, inserted);
    return inserted;
  }

  bool erase(const Key& key) {
    stats_.on_op_begin(stats::op_kind::erase);
    note_key(stats::op_kind::erase, key);
    const bool erased = erase_impl(key);
    stats_.on_op_end(stats::op_kind::erase, erased);
    return erased;
  }

  // ----------------------------------------------------------------
  // Concurrent ordered scans, under the same conservative-interval
  // contract as nm_tree (DESIGN.md): sorted, duplicate-free; every key
  // present for the scan's whole duration appears, every key absent
  // throughout does not; a concurrently inserted or erased key may or
  // may not appear. Routing keys are immutable and each client key
  // lives in exactly one leaf of one routing slot at any moment, so a
  // single atomic edge read per slot yields a sorted, dedup-free walk.
  // ----------------------------------------------------------------

  /// Keys in the half-open interval [lo, hi), ascending. Empty when
  /// lo >= hi.
  [[nodiscard]] std::vector<Key> range_scan(const Key& lo,
                                            const Key& hi) const {
    std::vector<Key> out;
    if (!less_(lo, hi)) return out;
    scan_impl(&lo, &hi, /*closed=*/false,
              [&out](const Key& k) { out.push_back(k); });
    return out;
  }

  /// Keys in the closed interval [lo, hi], ascending — reaches the key
  /// domain's maximum value, which no half-open interval can name.
  [[nodiscard]] std::vector<Key> range_scan_closed(const Key& lo,
                                                   const Key& hi) const {
    std::vector<Key> out;
    if (less_(hi, lo)) return out;
    scan_impl(&lo, &hi, /*closed=*/true,
              [&out](const Key& k) { out.push_back(k); });
    return out;
  }

  /// Bounded form: the up-to-max_items *smallest* keys of [lo, hi),
  /// ascending. A full page does not by itself imply more keys remain;
  /// pagers resume above the last key (sharded_set::range_scan_limit).
  [[nodiscard]] std::vector<Key> range_scan(const Key& lo, const Key& hi,
                                            std::size_t max_items) const {
    std::vector<Key> out;
    if (max_items == 0 || !less_(lo, hi)) return out;
    scan_impl_until(&lo, &hi, /*closed=*/false, [&](const Key& k) {
      out.push_back(k);
      return out.size() < max_items;
    });
    return out;
  }

  /// Concurrent whole-tree ordered visit: fn(key) for every key in
  /// ascending order, under the same contract as range_scan.
  template <typename F>
  void for_each(F&& fn) const {
    scan_impl(nullptr, nullptr, /*closed=*/false, std::forward<F>(fn));
  }

  /// Bounded visit over [lo, hi), ascending.
  template <typename F>
  void for_each(const Key& lo, const Key& hi, F&& fn) const {
    if (!less_(lo, hi)) return;
    scan_impl(&lo, &hi, /*closed=*/false, std::forward<F>(fn));
  }

  // ----------------------------------------------------------------
  // Quiescent observers — valid only while no concurrent operations
  // run. Tests and examples use these; they are not part of the
  // concurrent API.
  // ----------------------------------------------------------------

  [[nodiscard]] std::size_t size_slow() const {
    std::size_t n = 0;
    for_each_slow([&n](const Key&) { ++n; });
    return n;
  }

  [[nodiscard]] bool empty_slow() const { return size_slow() == 0; }

  /// In-order walk over client keys.
  template <typename F>
  void for_each_slow(F&& fn) const {
    walk(root_, fn);
  }

  [[nodiscard]] std::string validate() const {
    std::string err;
    if (root_->is_leaf()) err += "root must be the internal sentinel; ";
    if (!root_->routes_infinite) err += "root must route to child 0; ";
    validate_node(root_, nullptr, nullptr, /*is_root=*/true, err);
    return err;
  }

  [[nodiscard]] std::size_t height_slow() const {
    std::size_t best = 0;
    std::vector<std::pair<const node*, std::size_t>> stack{{root_, 1}};
    while (!stack.empty()) {
      auto [n, d] = stack.back();
      stack.pop_back();
      best = std::max(best, d);
      if (!n->is_leaf()) {
        for (unsigned i = 0; i < K; ++i) {
          if (const node* c = n->children[i].load().address()) {
            stack.push_back({c, d + 1});
          }
        }
      }
    }
    return best;
  }

  [[nodiscard]] std::size_t footprint_bytes() const {
    return node_pool_.footprint_bytes() + info_pool_.footprint_bytes();
  }

  [[nodiscard]] std::size_t reclaimer_pending() const {
    return reclaimer_.pending();
  }

  [[nodiscard]] Stats& stats() const noexcept { return stats_; }

 private:
  enum class state { clean, iflag, dflag, mark };

  struct node;
  struct info_record;
  using update_word = tagged_word<info_record, Atomics>;
  using child_word = tagged_word<node, Atomics>;
  using update_t = tagged_ptr<info_record>;
  using child_ptr = tagged_ptr<node>;

  /// One node type for both kinds, cache-line aligned. Leaves:
  /// key_count client keys in keys[0..key_count), children all null.
  /// Internal nodes: key_count == K-1 routing keys, K non-null
  /// children, internal flag set. The leading line carries the key
  /// array plus the count/kind bytes (one line covers the whole
  /// routing scan for the tuned fanouts); the update word and child
  /// edges follow on the next line(s).
  struct alignas(64) node {
    std::array<Key, K - 1> keys{};
    std::uint8_t key_count = 0;
    bool internal = false;
    /// Root only: every routing key is conceptually +∞, so all client
    /// keys route to child 0 and `keys` is never read (it holds
    /// value-initialized garbage — never use it for pruning or
    /// validation when this flag is set).
    bool routes_infinite = false;
    update_word update;  // meaningful on internal nodes
    std::array<child_word, K> children;

    [[nodiscard]] bool is_leaf() const noexcept { return !internal; }
  };

  struct replace_fields {
    node* parent;
    node* old_child;
    node* new_child;
    unsigned child_index;
  };
  struct coalesce_fields {
    node* grandparent;
    node* parent;
    node* union_leaf;
    update_t pupdate;
    unsigned parent_index;  // index of parent in grandparent's children
  };

  struct info_record {
    union {
      replace_fields replace;
      coalesce_fields coalesce;
    };
    info_record() : replace{} {}
  };

  struct search_result {
    node* grandparent = nullptr;
    node* parent = nullptr;
    node* leaf = nullptr;
    update_t gpupdate{};
    update_t pupdate{};
    unsigned parent_index = 0;  // parent's slot in grandparent
    unsigned child_index = 0;   // leaf's slot in parent
    // Root-relative count of internal nodes strictly above the node
    // try_resume would anchor on (grandparent when recorded, else
    // parent). A resumed descent seeds its depth counter from this so
    // seek_depth histograms report the full path traversed from the
    // root, not just the tail below the anchor. Maintained only when
    // Stats::enabled.
    std::uint64_t anchor_depth = 0;
  };

  static state update_state(update_t u) noexcept {
    const bool f = u.flagged(), t = u.tagged();
    if (f && t) return state::mark;
    if (f) return state::iflag;
    if (t) return state::dflag;
    return state::clean;
  }

  [[nodiscard]] bool key_eq(const Key& a, const Key& b) const {
    return !less_(a, b) && !less_(b, a);
  }

  /// Child slot for `key` at internal node `n`: the first routing key
  /// strictly greater than `key` decides (branch-free / SIMD kernel).
  [[nodiscard]] unsigned child_index_for(const node* n,
                                         const Key& key) const {
    if (n->routes_infinite) return 0;
    return multiway::route_index(n->keys.data(), n->key_count, key, less_);
  }

  [[nodiscard]] bool leaf_contains(const node* n, const Key& key) const {
    return multiway::contains_key(n->keys.data(), n->key_count, key, less_);
  }

  // --- seek ---------------------------------------------------------------

  void seek(const Key& key, search_result& s) const {
    if constexpr (validated) {
      // The root is immortal, so restarting from it is always safe.
      while (!seek_protected_from(root_, key, s)) {
      }
    } else {
      search_from(root_, key, s);
    }
  }

  /// Retry seek after a failed CAS. Under restart::from_anchor, resume
  /// from the deepest still-unmarked node of the previous descent
  /// (grandparent when one was recorded, else the parent): internal
  /// nodes leave the tree only via COALESCE, which MARKs them first and
  /// marks are terminal, so an unmarked anchor is still reachable; its
  /// routing keys are immutable, so it still routes `key`. A resumed
  /// descent that finds the leaf directly under the anchor reports no
  /// grandparent, which just disables COALESCE for that attempt.
  void seek_retry(const Key& key, search_result& s) const {
    if constexpr (Restart::resume_from_anchor) {
      if (try_resume(key, s)) {
        stats_.on_seek_resume_local();
        return;
      }
      stats_.on_seek_anchor_fallback();
    }
    seek(key, s);
  }

  bool try_resume(const Key& key, search_result& s) const {
    node* anchor = s.grandparent != nullptr ? s.grandparent : s.parent;
    if (anchor == nullptr) return false;
    // Under hazard the anchor is still announced in its descent slot
    // (the guard has not been destroyed between attempts); under
    // epoch/leaky the pin keeps it dereferenceable. seq_cst so the
    // mark test orders after whatever CAS failure sent us here.
    if (update_state(anchor->update.load(std::memory_order_seq_cst)) ==
        state::mark) {
      return false;
    }
    // Seed the resumed descent's depth counter with the anchor's
    // root-relative depth (captured before seek resets `s`) so on_seek
    // reports the full path length, not the post-anchor tail.
    const std::uint64_t base_depth = s.anchor_depth;
    if constexpr (validated) {
      return seek_protected_from(anchor, key, s, base_depth);
    } else {
      search_from(anchor, key, s, base_depth);
      return true;
    }
  }

  /// Plain descent (epoch/leaky): the pin keeps every node
  /// dereferenceable; stale results are caught by the CAS protocol.
  void search_from(node* start, const Key& key, search_result& s,
                   std::uint64_t base_depth = 0) const {
    s = search_result{};
    [[maybe_unused]] std::uint64_t depth = base_depth;
    node* current = start;
    while (current->internal) {
      if constexpr (Stats::enabled) ++depth;
      s.grandparent = s.parent;
      s.gpupdate = s.pupdate;
      s.parent_index = s.child_index;
      s.parent = current;
      s.pupdate = current->update.load();
      const unsigned index = child_index_for(current, key);
      s.child_index = index;
      node* next = current->children[index].load().address();
      if constexpr (use_backoff) {
        // Dependent-load chain: overlap the next node's miss with this
        // level's bookkeeping. Two lines: keys, then update+children.
        prefetch_ro(next);
        prefetch_ro(reinterpret_cast<const char*>(next) + 64);
      }
      current = next;
    }
    s.leaf = current;
    if constexpr (Stats::enabled) {
      stats_.on_seek(depth);
      // Depth above the node try_resume would anchor on: the parent was
      // counted at `depth`, the grandparent one step earlier.
      s.anchor_depth = s.grandparent != nullptr ? depth - 2
                       : s.parent != nullptr    ? depth - 1
                                                : base_depth;
    }
  }

  /// One validated-descent attempt (hazard). Returns false when a
  /// validation fails; the caller restarts from a safe node.
  /// Precondition: `start` is safe to dereference — the immortal root,
  /// or an anchor still announced in a descent slot.
  ///
  /// Slot rotation keeps every live pointer of the evolving
  /// (grandparent, parent, current) window covered: hp_ancestor ←
  /// grandparent, hp_parent ← parent, hp_leaf ← current, hp_scratch ←
  /// the candidate child being validated.
  bool seek_protected_from(node* start, const Key& key, search_result& s,
                           std::uint64_t base_depth = 0) const {
    auto& dom = reclaimer_.domain();
    s = search_result{};
    [[maybe_unused]] std::uint64_t depth = base_depth;
    node* current = start;
    dom.announce(Reclaimer::hp_leaf, current);
    while (current->internal) {
      if constexpr (Stats::enabled) ++depth;
      s.grandparent = s.parent;
      s.gpupdate = s.pupdate;
      s.parent_index = s.child_index;
      s.parent = current;
      // Rotate before hp_leaf is reused: the outgoing parent (already
      // in hp_parent) moves to hp_ancestor, current (already in
      // hp_leaf) moves to hp_parent — each pointer is continuously
      // covered by at least one slot.
      if (s.grandparent != nullptr) {
        dom.announce(Reclaimer::hp_ancestor, s.grandparent);
      }
      dom.announce(Reclaimer::hp_parent, s.parent);
      s.pupdate = current->update.load();
      const unsigned index = child_index_for(current, key);
      s.child_index = index;
      const child_word* source = &current->children[index];
      // Discovery load: acquire suffices — the candidate is not
      // dereferenced until the announce below is validated.
      child_ptr discovered = source->load(std::memory_order_acquire);
      node* next = discovered.address();  // internal child: never null
      if constexpr (use_backoff) prefetch_ro(next);
      dom.announce(Reclaimer::hp_scratch, next);
      // Validating re-read: seq_cst so it cannot be reordered before
      // the seq_cst announce store — the store-load pair guarantees a
      // concurrent retirer's scan sees the announcement.
      const child_ptr recheck = source->load(std::memory_order_seq_cst);
      if (recheck.address() != next) return false;  // edge moved
      // k-ary edges are never marked, so the edge recheck alone cannot
      // prove `next` is unretired: a COALESCE freezes the parent's
      // edges in place and retires the children only after swinging
      // the grandparent's edge. The MARK on the parent precedes that
      // swing and is terminal — "unmarked after the announce" proves
      // the children were not yet retired when `next` was announced.
      if (update_state(current->update.load(std::memory_order_seq_cst)) ==
          state::mark) {
        return false;
      }
      dom.announce(Reclaimer::hp_leaf, next);
      current = next;
    }
    s.leaf = current;
    if constexpr (Stats::enabled) {
      stats_.on_seek(depth);
      s.anchor_depth = s.grandparent != nullptr ? depth - 2
                       : s.parent != nullptr    ? depth - 1
                                                : base_depth;
    }
    return true;
  }

  // --- helping ------------------------------------------------------------

  /// Help the operation recorded in `u`, read from `owner`'s update
  /// word. Precondition: `owner` is protected (a descent slot, or the
  /// helper slots taken below).
  ///
  /// Hazard-mode info protection: announce the record in hp_flagged,
  /// then re-read the owner's word — sound for IFLAG/DFLAG because the
  /// unflag CAS rewrites the word before the winner retires the
  /// record. A MARK freezes the word forever, so that re-read proves
  /// nothing; marked words are helped only through help_mark_with_gp
  /// (validated via the grandparent's edge) and skipped here — the
  /// mark's owner operation is guaranteed to complete it.
  void help(node* owner, update_t u) const {
    const state st = update_state(u);
    if (st == state::clean) return;
    stats_.on_help();
    if constexpr (validated) {
      if (st == state::mark) return;
      auto& dom = reclaimer_.domain();
      dom.announce(Reclaimer::hp_flagged, u.address());
      const update_t recheck = owner->update.load(std::memory_order_seq_cst);
      if (recheck != u) return;  // op finished; record may be retired
      if (st == state::iflag) {
        help_replace(u.address());
      } else {
        help_coalesce(u.address(), /*parent_protected=*/false);
      }
    } else {
      switch (st) {
        case state::iflag:
          help_replace(u.address());
          break;
        case state::dflag:
          help_coalesce(u.address(), /*parent_protected=*/false);
          break;
        case state::mark:
          help_marked(u.address());
          break;
        case state::clean:
          break;
      }
    }
    (void)owner;
  }

  /// Help a busy update word found during a descent, with the seek
  /// record's protected context. The extra context lets hazard mode
  /// help a MARK too: a marked parent always has a recorded
  /// grandparent (the root is never a coalesce target).
  void help_situated(const search_result& s, update_t u) const {
    if constexpr (validated) {
      if (update_state(u) == state::mark) {
        if (s.grandparent != nullptr) {
          stats_.on_help();
          help_mark_with_gp(s.grandparent, s.parent_index, s.parent, u);
        }
        return;
      }
    }
    help(s.parent, u);
  }

  /// Hazard-mode helper for a MARKed parent: the frozen word cannot
  /// validate the record, but the grandparent's edge can — the winner
  /// swings gp->children[parent_index] off `parent` before retiring
  /// the record, so announcing the record and then observing the edge
  /// still addressing `parent` proves the record was live at announce
  /// time. Preconditions: `gp` and `parent` protected by descent
  /// slots; internal nodes are never re-parented, so the op's own
  /// grandparent field names the same `gp`.
  void help_mark_with_gp(node* gp, unsigned parent_index, node* parent,
                         update_t u) const {
    auto& dom = reclaimer_.domain();
    info_record* op = u.address();
    dom.announce(Reclaimer::hp_flagged, op);
    const child_ptr edge =
        gp->children[parent_index].load(std::memory_order_seq_cst);
    if (edge.address() != parent) return;  // already swung; op may be gone
    help_marked(op);
  }

  void help_replace(info_record* op) const {
    // Swing the parent's recorded child slot, then unflag.
    child_ptr expected = child_ptr::clean(op->replace.old_child);
    stats_.on_cas();
    op->replace.parent->children[op->replace.child_index].compare_exchange(
        expected, child_ptr::clean(op->replace.new_child));
    update_t uexp(op, /*iflag=*/true, /*dflag=*/false);
    stats_.on_cas();
    op->replace.parent->update.compare_exchange(uexp,
                                                update_t(op, false, false));
  }

  /// Returns true if the coalesce committed (parent marked), false if
  /// it aborted because the parent could not be marked. The initiator
  /// passes parent_protected=true (the parent sits in a descent slot);
  /// hazard-mode helpers protect it here via the coalesce-parent slot,
  /// validated against the grandparent's still-DFLAGged word (the
  /// winner unflags before retiring the parent, so "still DFLAGged
  /// after the announce" proves the parent was not yet retired).
  bool help_coalesce(info_record* op, bool parent_protected) const {
    node* parent = op->coalesce.parent;
    if constexpr (validated) {
      if (!parent_protected) {
        auto& dom = reclaimer_.domain();
        // Slot reuse: ops never run inside scans, so the scan anchor
        // slot is free here.
        dom.announce(Reclaimer::hp_scan_turn_anchor, parent);
        const update_t gcheck =
            op->coalesce.grandparent->update.load(std::memory_order_seq_cst);
        if (gcheck != update_t(op, /*iflag=*/false, /*dflag=*/true)) {
          return false;  // finished or aborted; nothing left to help
        }
      }
    }
    update_t expected = op->coalesce.pupdate;
    stats_.on_cas();
    const bool marked = parent->update.compare_exchange(
        expected, update_t(op, /*iflag=*/true, /*dflag=*/true));
    if (marked || expected == update_t(op, true, true)) {
      help_marked(op);
      return true;
    }
    // The parent is busy with another operation. Help it, then abort
    // our coalesce by unflagging the grandparent. Under hazard the
    // inner help is restricted to IFLAG obstructions (the only slot
    // left is the scan successor slot, and one level suffices for
    // lock-freedom: a DFLAG/MARK obstruction's own operation makes
    // progress without us).
    if constexpr (validated) {
      help_iflag_obstruction(parent, expected);
    } else {
      help(parent, expected);
    }
    update_t gexp(op, /*iflag=*/false, /*dflag=*/true);
    stats_.on_cas();
    op->coalesce.grandparent->update.compare_exchange(
        gexp, update_t(op, false, false));
    return false;
  }

  /// Hazard-mode bounded inner help: only IFLAG obstructions, with the
  /// record validated by re-reading the (protected) owner's word.
  void help_iflag_obstruction(node* owner, update_t u) const {
    if (update_state(u) != state::iflag) return;
    auto& dom = reclaimer_.domain();
    dom.announce(Reclaimer::hp_scan_turn_successor, u.address());
    const update_t recheck = owner->update.load(std::memory_order_seq_cst);
    if (recheck != u) return;
    stats_.on_help();
    help_replace(u.address());
  }

  void help_marked(info_record* op) const {
    child_ptr expected = child_ptr::clean(op->coalesce.parent);
    stats_.on_cas();
    op->coalesce.grandparent->children[op->coalesce.parent_index]
        .compare_exchange(expected,
                          child_ptr::clean(op->coalesce.union_leaf));
    update_t gexp(op, /*iflag=*/false, /*dflag=*/true);
    stats_.on_cas();
    op->coalesce.grandparent->update.compare_exchange(
        gexp, update_t(op, false, false));
  }

  // --- modify operations ---------------------------------------------------

  bool insert_impl(const Key& key) {
    [[maybe_unused]] auto guard = reclaimer_.pin();
    [[maybe_unused]] backoff delay;
    search_result s;
    seek(key, s);
    for (;;) {
      if (leaf_contains(s.leaf, key)) return false;
      if (update_state(s.pupdate) != state::clean) {
        help_situated(s, s.pupdate);
        stats_.on_seek_restart(stats::restart_kind::cleanup_mode);
        if constexpr (use_backoff) delay();
        seek_retry(key, s);
        continue;
      }
      node* replacement = (s.leaf->key_count < leaf_capacity)
                              ? make_leaf_with(s.leaf, &key, nullptr)
                              : sprout(s.leaf, key);
      info_record* op = make_info();
      op->replace = {s.parent, s.leaf, replacement, s.child_index};

      update_t expected = s.pupdate;
      stats_.on_cas();
      if (s.parent->update.compare_exchange(
              expected, update_t(op, /*iflag=*/true, /*dflag=*/false))) {
        help_replace(op);
        if constexpr (Reclaimer::reclaims_eagerly) {
          reclaimer_.retire(s.leaf, &node_deleter, &node_pool_);
          retire_info_later(op);
        }
        return true;
      }
      destroy_replacement(replacement);
      destroy_info(op);
      help(s.parent, expected);
      stats_.on_seek_restart(stats::restart_kind::injection_fail);
      if constexpr (use_backoff) delay();
      seek_retry(key, s);
    }
  }

  bool erase_impl(const Key& key) {
    [[maybe_unused]] auto guard = reclaimer_.pin();
    [[maybe_unused]] backoff delay;
    search_result s;
    seek(key, s);
    for (;;) {
      if (!leaf_contains(s.leaf, key)) return false;
      if (update_state(s.pupdate) != state::clean) {
        help_situated(s, s.pupdate);
        stats_.on_seek_restart(stats::restart_kind::cleanup_mode);
        if constexpr (use_backoff) delay();
        seek_retry(key, s);
        continue;
      }

      // Decide between REPLACE and COALESCE. Coalescing needs a
      // grandparent with a clean update word and all of the parent's
      // children to be leaves whose surviving keys fit in one leaf. A
      // busy grandparent does not block the erase: fall back to
      // REPLACE and let collapse_upward prune later — under hazard
      // there is no protected great-grandparent to help a gp-mark
      // with, and under every policy the fallback is simpler than
      // helping and retrying.
      std::array<node*, K> siblings{};
      std::array<Key, K> union_keys{};
      unsigned union_count = 0;
      const bool coalesce =
          s.grandparent != nullptr &&
          update_state(s.gpupdate) == state::clean &&
          gather_children(s, &key, siblings, union_keys, union_count);

      if (!coalesce) {
        node* replacement = make_leaf_with(s.leaf, nullptr, &key);
        info_record* op = make_info();
        op->replace = {s.parent, s.leaf, replacement, s.child_index};
        update_t expected = s.pupdate;
        stats_.on_cas();
        if (s.parent->update.compare_exchange(
                expected, update_t(op, /*iflag=*/true, /*dflag=*/false))) {
          help_replace(op);
          const bool emptied = (replacement->key_count == 0);
          if constexpr (Reclaimer::reclaims_eagerly) {
            reclaimer_.retire(s.leaf, &node_deleter, &node_pool_);
            retire_info_later(op);
          }
          if (emptied) collapse_upward(key);
          return true;
        }
        destroy_node(replacement);
        destroy_info(op);
        help(s.parent, expected);
        stats_.on_seek_restart(stats::restart_kind::injection_fail);
        if constexpr (use_backoff) delay();
        seek_retry(key, s);
        continue;
      }

      // COALESCE path (EFRB delete shape: DFLAG gp, MARK p, swing gp).
      node* union_leaf = make_leaf_from(union_keys, union_count);
      info_record* op = make_info();
      op->coalesce = {s.grandparent, s.parent, union_leaf, s.pupdate,
                      s.parent_index};
      update_t expected = s.gpupdate;
      stats_.on_cas();
      if (s.grandparent->update.compare_exchange(
              expected, update_t(op, /*iflag=*/false, /*dflag=*/true))) {
        if (help_coalesce(op, /*parent_protected=*/true)) {
          if constexpr (Reclaimer::reclaims_eagerly) {
            // The winner retires the parent and all its leaf children.
            reclaimer_.retire(s.parent, &node_deleter, &node_pool_);
            for (node* sib : siblings) {
              reclaimer_.retire(sib, &node_deleter, &node_pool_);
            }
            retire_info_later(op);
          }
          collapse_upward(key);  // cascade: gp may now be collapsible
          return true;
        }
        if constexpr (Reclaimer::reclaims_eagerly) retire_info_later(op);
        destroy_node(union_leaf);
      } else {
        destroy_node(union_leaf);
        destroy_info(op);
        help(s.grandparent, expected);
      }
      stats_.on_seek_restart(stats::restart_kind::injection_fail);
      if constexpr (use_backoff) delay();
      seek_retry(key, s);
    }
  }

  /// Read the parent's K children and collect their keys (minus
  /// `removed` when non-null) into `buf`, bounded by leaf_capacity.
  /// Returns false when the parent is not coalescible: a non-leaf or
  /// null child, too many surviving keys, a failed hazard validation,
  /// or (when `removed` is set) the searched leaf no longer being
  /// child s.child_index — a concurrent replace swapped it, making the
  /// union size wrong; the caller's REPLACE/retry covers that case.
  ///
  /// Hazard mode protects each sibling for the duration of its copy:
  /// announce in the scan successor slot (free — ops never run inside
  /// scans), re-read the edge, and reject if the parent went MARKed
  /// (the only transition that retires children). The sibling pointers
  /// returned in `siblings` are used afterward only for the identity
  /// test and as retire arguments, never dereferenced again; logical
  /// staleness of the whole read is caught by the MARK CAS, whose
  /// expected value is the full pupdate word from the descent.
  bool gather_children(const search_result& s, const Key* removed,
                       std::array<node*, K>& siblings,
                       std::array<Key, K>& buf, unsigned& count) const {
    count = 0;
    [[maybe_unused]] unsigned total = 0;
    for (unsigned i = 0; i < K; ++i) {
      const child_word* source = &s.parent->children[i];
      const child_ptr edge = source->load(std::memory_order_acquire);
      node* sib = edge.address();
      if (sib == nullptr) return false;
      if constexpr (validated) {
        auto& dom = reclaimer_.domain();
        dom.announce(Reclaimer::hp_scan_turn_successor, sib);
        const child_ptr recheck = source->load(std::memory_order_seq_cst);
        if (recheck.address() != sib) return false;
        if (update_state(s.parent->update.load(std::memory_order_seq_cst)) ==
            state::mark) {
          return false;
        }
      }
      if (sib->internal) return false;
      for (unsigned j = 0; j < sib->key_count; ++j) {
        const Key& k = sib->keys[j];
        if (removed != nullptr && key_eq(*removed, k)) continue;
        if (count >= leaf_capacity) return false;  // union would overflow
        buf[count++] = k;
      }
      siblings[i] = sib;
    }
    if (removed != nullptr && siblings[s.child_index] != s.leaf) return false;
    return true;
  }

  /// Best-effort maintenance: while the parent on `key`'s access path
  /// is an internal node whose children are all leaves jointly holding
  /// at most one leaf's worth of keys, collapse it into a single leaf.
  /// Runs after erases that emptied a leaf so fully drained subtrees
  /// cascade back to (sentinel root + one leaf) instead of leaving
  /// chains of empty internal nodes. One failed CAS stops the pass —
  /// it is pure maintenance, another operation's progress covers ours.
  void collapse_upward(const Key& key) {
    for (;;) {
      search_result s;
      seek(key, s);
      if (s.grandparent == nullptr) return;
      if (update_state(s.gpupdate) != state::clean ||
          update_state(s.pupdate) != state::clean) {
        return;
      }
      std::array<node*, K> siblings{};
      std::array<Key, K> union_keys{};
      unsigned union_count = 0;
      if (!gather_children(s, nullptr, siblings, union_keys, union_count)) {
        return;
      }
      node* union_leaf = make_leaf_from(union_keys, union_count);
      info_record* op = make_info();
      op->coalesce = {s.grandparent, s.parent, union_leaf, s.pupdate,
                      s.parent_index};
      update_t expected = s.gpupdate;
      stats_.on_cas();
      if (!s.grandparent->update.compare_exchange(
              expected, update_t(op, /*iflag=*/false, /*dflag=*/true))) {
        destroy_node(union_leaf);
        destroy_info(op);
        return;
      }
      if (!help_coalesce(op, /*parent_protected=*/true)) {
        if constexpr (Reclaimer::reclaims_eagerly) retire_info_later(op);
        destroy_node(union_leaf);
        return;
      }
      stats_.on_cleanup();
      if constexpr (Reclaimer::reclaims_eagerly) {
        reclaimer_.retire(s.parent, &node_deleter, &node_pool_);
        for (node* sib : siblings) {
          reclaimer_.retire(sib, &node_deleter, &node_pool_);
        }
        retire_info_later(op);
      }
      // Collapsed one level; the new union leaf's parent may now be
      // collapsible too.
    }
  }

  // --- ordered scans -------------------------------------------------------

  [[nodiscard]] bool in_range(const Key& k, const Key* lo, const Key* hi,
                              bool closed) const {
    if (lo != nullptr && less_(k, *lo)) return false;
    if (hi != nullptr) {
      if (closed ? less_(*hi, k) : !less_(k, *hi)) return false;
    }
    return true;
  }

  template <typename F>
  void scan_impl(const Key* lo, const Key* hi, bool closed, F&& fn) const {
    scan_impl_until(lo, hi, closed, [&fn](const Key& k) {
      fn(k);
      return true;
    });
  }

  /// `fn` returns false to stop early. Pins once for the whole scan.
  template <typename F>
  void scan_impl_until(const Key* lo, const Key* hi, bool closed,
                       F&& fn) const {
    std::uint64_t visited = 0;
    {
      [[maybe_unused]] auto guard = reclaimer_.pin();
      if constexpr (validated) {
        scan_protected(lo, hi, closed, visited, fn);
      } else {
        scan_pinned(lo, hi, closed, visited, fn);
      }
    }
    stats_.on_scan_op(visited);
  }

  /// Pinned scan (epoch/leaky): explicit-stack DFS over the current
  /// edges with routing-key pruning. Child i of an internal node
  /// covers [keys[i-1], keys[i]); children pushed high-to-low so pops
  /// run ascending. Each edge is read once — a concurrent REPLACE,
  /// SPROUT, or COALESCE swings whole subtrees, so whichever side of
  /// the swing the single read observes yields a sorted, dedup-free
  /// interval-contract result.
  template <typename F>
  void scan_pinned(const Key* lo, const Key* hi, bool closed,
                   std::uint64_t& visited, F& fn) const {
    std::vector<const node*> stack{root_};
    while (!stack.empty()) {
      const node* n = stack.back();
      stack.pop_back();
      if (n->is_leaf()) {
        for (unsigned i = 0; i < n->key_count; ++i) {
          const Key& k = n->keys[i];
          if (!in_range(k, lo, hi, closed)) continue;
          ++visited;
          if (!fn(k)) return;
        }
        continue;
      }
      for (unsigned i = K; i-- > 0;) {
        const node* c = n->children[i].load().address();
        if (c == nullptr) continue;
        if (!n->routes_infinite) {
          if (i > 0 && hi != nullptr) {
            const Key& lbound = n->keys[i - 1];  // child keys >= lbound
            if (closed ? less_(*hi, lbound) : !less_(lbound, *hi)) continue;
          }
          if (i + 1 < K && lo != nullptr && !less_(*lo, n->keys[i])) {
            continue;  // child keys < keys[i] <= lo
          }
        }
        stack.push_back(c);
      }
    }
  }

  /// Hazard scan: cursor-driven rounds. Each round runs one validated
  /// two-slot descent routed by the cursor (scan-turn slot holds the
  /// current node, scratch the candidate child — the root is
  /// immortal), tracking `bound` = the tightest routing key greater
  /// than the cursor seen on the way down (the chosen child's upper
  /// interval end; deeper nodes only tighten it). The reached leaf's
  /// in-range keys at or above the cursor are emitted, then the cursor
  /// advances to `bound` — strictly increasing, since the routing key
  /// at the chosen slot exceeds the cursor by definition — until the
  /// descent runs off the right spine (no bound) or past `hi`. A
  /// validation failure retries the round at the same cursor.
  template <typename F>
  void scan_protected(const Key* lo, const Key* hi, bool closed,
                      std::uint64_t& visited, F& fn) const {
    auto& dom = reclaimer_.domain();
    [[maybe_unused]] backoff delay;
    bool have_cursor = (lo != nullptr);
    Key cursor{};
    if (lo != nullptr) cursor = *lo;
    for (;;) {
      node* current = root_;
      dom.announce(Reclaimer::hp_scan_turn, current);
      bool have_bound = false;
      Key bound{};
      bool ok = true;
      while (current->internal) {
        unsigned index = 0;
        if (!current->routes_infinite) {
          index = have_cursor ? multiway::route_index(current->keys.data(),
                                                      current->key_count,
                                                      cursor, less_)
                              : 0;
          // route_index counts keys <= cursor, so keys[index] (when it
          // exists) is the first routing key strictly above the cursor.
          if (index < current->key_count) {
            bound = current->keys[index];
            have_bound = true;
          }
        }
        const child_word* source = &current->children[index];
        const child_ptr edge = source->load(std::memory_order_acquire);
        node* next = edge.address();
        dom.announce(Reclaimer::hp_scratch, next);
        const child_ptr recheck = source->load(std::memory_order_seq_cst);
        if (recheck.address() != next) {
          ok = false;
          break;
        }
        // Same MARK rule as the seek: the edge recheck alone cannot
        // prove `next` unretired (see seek_protected_from).
        if (update_state(current->update.load(std::memory_order_seq_cst)) ==
            state::mark) {
          ok = false;
          break;
        }
        dom.announce(Reclaimer::hp_scan_turn, next);
        current = next;
      }
      if (!ok) {
        stats_.on_scan_restart();
        if constexpr (use_backoff) delay();
        continue;
      }
      for (unsigned i = 0; i < current->key_count; ++i) {
        const Key& k = current->keys[i];
        if (have_cursor && less_(k, cursor)) continue;
        if (!in_range(k, lo, hi, closed)) continue;
        ++visited;
        if (!fn(k)) return;
      }
      if (!have_bound) return;  // right spine reached: nothing above
      if (hi != nullptr && (closed ? less_(*hi, bound) : !less_(bound, *hi))) {
        return;  // next round would start at or past hi
      }
      cursor = bound;
      have_cursor = true;
      if constexpr (use_backoff) delay.reset();
    }
  }

  // --- node construction ---------------------------------------------------

  static constexpr std::size_t node_slab_bytes() noexcept {
    // Slabs sized to the fat node: at least 256 nodes per refill so
    // wide fanouts do not thrash the global slab lock.
    constexpr std::size_t want = sizeof(node) * 256;
    return want > (std::size_t{1} << 16) ? want : (std::size_t{1} << 16);
  }

  node* alloc_node() const {
    stats_.on_alloc();
    return new (node_pool_.allocate(sizeof(node))) node{};
  }

  /// New leaf = `base`'s keys, plus `added` (if non-null), minus
  /// `removed` (if non-null). Keeps the array sorted.
  node* make_leaf_with(const node* base, const Key* added,
                       const Key* removed) const {
    node* n = alloc_node();
    unsigned count = 0;
    bool added_done = (added == nullptr);
    for (unsigned i = 0; i < base->key_count; ++i) {
      const Key& k = base->keys[i];
      if (removed != nullptr && key_eq(*removed, k)) continue;
      if (!added_done && less_(*added, k)) {
        n->keys[count++] = *added;
        added_done = true;
      }
      n->keys[count++] = k;
    }
    if (!added_done) n->keys[count++] = *added;
    n->key_count = static_cast<std::uint8_t>(count);
    LFBST_ASSERT(count <= leaf_capacity, "leaf overflow in make_leaf_with");
    return n;
  }

  /// SPROUT: distribute the full leaf's K-1 keys plus `key` over K
  /// fresh one-key leaves under a new internal node whose routing keys
  /// are the upper K-1 of the K sorted keys.
  node* sprout(const node* full_leaf, const Key& key) const {
    std::array<Key, K> all{};
    unsigned count = 0;
    bool placed = false;
    for (unsigned i = 0; i < full_leaf->key_count; ++i) {
      const Key& k = full_leaf->keys[i];
      if (!placed && less_(key, k)) {
        all[count++] = key;
        placed = true;
      }
      all[count++] = k;
    }
    if (!placed) all[count++] = key;
    LFBST_ASSERT(count == K, "sprout expects exactly K keys");

    node* internal = alloc_node();
    internal->internal = true;
    internal->key_count = K - 1;
    for (unsigned i = 0; i < K - 1; ++i) internal->keys[i] = all[i + 1];
    for (unsigned i = 0; i < K; ++i) {
      node* leaf = alloc_node();
      leaf->keys[0] = all[i];
      leaf->key_count = 1;
      internal->children[i].store_relaxed(child_ptr::clean(leaf));
    }
    return internal;
  }

  /// Leaf from a gathered, already-sorted key buffer (children are
  /// ordered by the routing keys, so slot-order concatenation sorts).
  node* make_leaf_from(const std::array<Key, K>& buf, unsigned count) const {
    node* n = alloc_node();
    for (unsigned i = 0; i < count; ++i) n->keys[i] = buf[i];
    n->key_count = static_cast<std::uint8_t>(count);
    LFBST_ASSERT(count <= leaf_capacity, "union leaf overflow");
    return n;
  }

  node* make_internal_sentinel() {
    node* n = alloc_node();
    n->internal = true;
    n->routes_infinite = true;
    n->key_count = K - 1;
    for (unsigned i = 0; i < K; ++i) {
      node* leaf = alloc_node();  // empty leaf
      n->children[i].store_relaxed(child_ptr::clean(leaf));
    }
    return n;
  }

  info_record* make_info() const {
    stats_.on_alloc();
    return new (info_pool_.allocate(sizeof(info_record))) info_record();
  }

  void destroy_node(node* n) const {
    n->~node();
    node_pool_.deallocate(n);
  }
  /// Destroys an unpublished replacement (a leaf, or a sprouted
  /// internal node together with its fresh children).
  void destroy_replacement(node* n) const {
    if (n->internal) {
      for (unsigned i = 0; i < K; ++i) {
        destroy_node(n->children[i].load().address());
      }
    }
    destroy_node(n);
  }
  void destroy_info(info_record* op) const {
    op->~info_record();
    info_pool_.deallocate(op);
  }
  static void node_deleter(void* obj, void* ctx) noexcept {
    static_cast<node*>(obj)->~node();
    static_cast<node_pool*>(ctx)->deallocate(obj);
  }
  static void info_deleter(void* obj, void* ctx) noexcept {
    static_cast<info_record*>(obj)->~info_record();
    static_cast<node_pool*>(ctx)->deallocate(obj);
  }
  void retire_info_later(info_record* op) const {
    reclaimer_.retire(op, &info_deleter, &info_pool_);
  }

  // --- quiescent helpers ---------------------------------------------------

  template <typename F>
  void walk(const node* n, F& fn) const {
    if (n->is_leaf()) {
      for (unsigned i = 0; i < n->key_count; ++i) fn(n->keys[i]);
      return;
    }
    for (unsigned i = 0; i < K; ++i) {
      walk(n->children[i].load(std::memory_order_relaxed).address(), fn);
    }
  }

  void validate_node(const node* n, const Key* low, const Key* high,
                     bool is_root, std::string& err) const {
    if (!is_root && n->routes_infinite) {
      err += "routes_infinite below the root; ";
    }
    if (n->is_leaf()) {
      for (unsigned i = 0; i < n->key_count; ++i) {
        if (i + 1 < n->key_count && !less_(n->keys[i], n->keys[i + 1])) {
          err += "leaf keys not strictly sorted; ";
        }
        if (low != nullptr && less_(n->keys[i], *low)) {
          err += "leaf key below bound; ";
        }
        if (high != nullptr && !less_(n->keys[i], *high)) {
          err += "leaf key not below bound; ";
        }
      }
      return;
    }
    if (n->key_count != K - 1) err += "internal node without K-1 routes; ";
    if (update_state(n->update.load(std::memory_order_relaxed)) !=
        state::clean) {
      err += "reachable non-CLEAN update word at quiescence; ";
    }
    if (!n->routes_infinite) {
      for (unsigned i = 0; i + 1 < K - 1; ++i) {
        if (less_(n->keys[i + 1], n->keys[i])) {
          err += "routing keys out of order; ";
        }
      }
    }
    for (unsigned i = 0; i < K; ++i) {
      const node* child =
          n->children[i].load(std::memory_order_relaxed).address();
      if (child == nullptr) {
        err += "internal node with missing child; ";
        continue;
      }
      // The root's key array is garbage: its children get no bounds
      // (children 1..K-1 are permanently empty leaves anyway).
      const Key* lo =
          (i == 0 || n->routes_infinite) ? low : &n->keys[i - 1];
      const Key* hi =
          (i == K - 1 || n->routes_infinite) ? high : &n->keys[i];
      validate_node(child, lo, hi, /*is_root=*/false, err);
    }
  }

  void destroy_reachable(node* root) {
    std::vector<node*> stack{root};
    while (!stack.empty()) {
      node* n = stack.back();
      stack.pop_back();
      if (n->internal) {
        for (unsigned i = 0; i < K; ++i) {
          if (node* c =
                  n->children[i].load(std::memory_order_relaxed).address()) {
            stack.push_back(c);
          }
        }
      }
      destroy_node(n);
    }
  }

  /// Key-hotness hook for the obs heatmap; vanishes unless the stats
  /// policy implements on_op_key and the key converts to an integer.
  void note_key(stats::op_kind kind, const Key& key) const noexcept {
    if constexpr (requires(std::int64_t k) { stats_.on_op_key(kind, k); } &&
                  std::is_convertible_v<Key, std::int64_t>) {
      stats_.on_op_key(kind, static_cast<std::int64_t>(key));
    }
  }

  [[no_unique_address]] Compare less_{};
  [[no_unique_address]] mutable Stats stats_{};
  mutable node_pool node_pool_;
  mutable node_pool info_pool_;
  mutable Reclaimer reclaimer_{};
  node* root_ = nullptr;
};

}  // namespace lfbst
