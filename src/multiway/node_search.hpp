// lfbst: in-node search kernels for the multiway (k-ary) tree.
//
// A k-ary node keeps its keys in a flat, contiguous, immutable array
// (multiway/kary_tree.hpp), which makes the two per-node questions —
// "which child does `key` route to?" and "does this leaf hold `key`?" —
// pure data-parallel reductions over at most K-1 lanes:
//
//   route_index  = |{ i : keys[i] <= key }|   (routing keys are sorted)
//   contains_key = ∃ i : keys[i] == key       (order-independent)
//
// Both are computed branch-free: the scalar fallback accumulates
// comparison results with no data-dependent branches (one setcc+add per
// lane, so the branch predictor never sees the key distribution), and
// for signed 32/64-bit integral keys under std::less the same reduction
// runs as SSE2/AVX2 compare-and-movemask over 4/8 lanes at a time.
// The vector paths are compile-time gated (#if on the target ISA plus
// an `if constexpr` on the key/comparator types), so non-integral keys,
// custom comparators, and non-x86 targets all take the portable scalar
// reduction with zero runtime dispatch.
//
// Nodes are immutable after publication, so these are plain loads: no
// atomics, no schedule points — correct under dsched's interposed
// atomics policy as well (the policy only needs to see shared-memory
// steps, and immutable key arrays are not shared-memory steps).
#pragma once

#include <cstdint>
#include <functional>
#include <type_traits>

#if defined(__AVX2__) || defined(__SSE2__)
#include <immintrin.h>
#endif

namespace lfbst::multiway {

/// True when the (Key, Compare) pair runs on the vector kernels below:
/// signed 32/64-bit integral keys ordered by std::less. Everything else
/// uses the branch-free scalar reduction.
template <typename Key, typename Compare>
inline constexpr bool vectorized_search =
#if defined(__AVX2__)
    std::is_same_v<Compare, std::less<Key>> && std::is_integral_v<Key> &&
    std::is_signed_v<Key> && (sizeof(Key) == 8 || sizeof(Key) == 4);
#elif defined(__SSE2__)
    std::is_same_v<Compare, std::less<Key>> && std::is_integral_v<Key> &&
    std::is_signed_v<Key> && sizeof(Key) == 4;
#else
    false;
#endif

namespace detail {

// All four kernels are defined in every configuration (scalar
// branch-free bodies when the ISA is absent) so the qualified calls in
// route_index/contains_key always resolve; the vectorized_search gate
// above decides which ever run.

#if defined(__AVX2__)

/// |{ j < n : keys[j] <= key }| over 4 signed 64-bit lanes per step.
inline unsigned count_le_i64(const std::int64_t* keys, unsigned n,
                             std::int64_t key) noexcept {
  std::uint64_t le = 0;
  const __m256i needle = _mm256_set1_epi64x(key);
  unsigned j = 0;
  for (; j + 4 <= n; j += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + j));
    const unsigned gt = static_cast<unsigned>(
        _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpgt_epi64(v, needle))));
    le |= static_cast<std::uint64_t>(~gt & 0xFu) << j;
  }
  for (; j < n; ++j) {
    le |= static_cast<std::uint64_t>(keys[j] <= key) << j;
  }
  return static_cast<unsigned>(__builtin_popcountll(le));
}

inline bool any_eq_i64(const std::int64_t* keys, unsigned n,
                       std::int64_t key) noexcept {
  std::uint64_t eq = 0;
  const __m256i needle = _mm256_set1_epi64x(key);
  unsigned j = 0;
  for (; j + 4 <= n; j += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + j));
    eq |= static_cast<std::uint64_t>(_mm256_movemask_pd(
              _mm256_castsi256_pd(_mm256_cmpeq_epi64(v, needle))))
          << j;
  }
  for (; j < n; ++j) {
    eq |= static_cast<std::uint64_t>(keys[j] == key) << j;
  }
  return eq != 0;
}

/// |{ j < n : keys[j] <= key }| over 8 signed 32-bit lanes per step.
inline unsigned count_le_i32(const std::int32_t* keys, unsigned n,
                             std::int32_t key) noexcept {
  std::uint64_t le = 0;
  const __m256i needle = _mm256_set1_epi32(key);
  unsigned j = 0;
  for (; j + 8 <= n; j += 8) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + j));
    const unsigned gt = static_cast<unsigned>(
        _mm256_movemask_ps(_mm256_castsi256_ps(_mm256_cmpgt_epi32(v, needle))));
    le |= static_cast<std::uint64_t>(~gt & 0xFFu) << j;
  }
  for (; j < n; ++j) {
    le |= static_cast<std::uint64_t>(keys[j] <= key) << j;
  }
  return static_cast<unsigned>(__builtin_popcountll(le));
}

inline bool any_eq_i32(const std::int32_t* keys, unsigned n,
                       std::int32_t key) noexcept {
  std::uint64_t eq = 0;
  const __m256i needle = _mm256_set1_epi32(key);
  unsigned j = 0;
  for (; j + 8 <= n; j += 8) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + j));
    eq |= static_cast<std::uint64_t>(_mm256_movemask_ps(
              _mm256_castsi256_ps(_mm256_cmpeq_epi32(v, needle))))
          << j;
  }
  for (; j < n; ++j) {
    eq |= static_cast<std::uint64_t>(keys[j] == key) << j;
  }
  return eq != 0;
}

#else

inline unsigned count_le_i64(const std::int64_t* keys, unsigned n,
                             std::int64_t key) noexcept {
  std::uint64_t le = 0;
  for (unsigned j = 0; j < n; ++j) {
    le += static_cast<std::uint64_t>(keys[j] <= key);
  }
  return static_cast<unsigned>(le);
}

inline bool any_eq_i64(const std::int64_t* keys, unsigned n,
                       std::int64_t key) noexcept {
  bool eq = false;
  for (unsigned j = 0; j < n; ++j) eq |= (keys[j] == key);
  return eq;
}

#endif

#if !defined(__AVX2__) && defined(__SSE2__)

inline unsigned count_le_i32(const std::int32_t* keys, unsigned n,
                             std::int32_t key) noexcept {
  std::uint64_t le = 0;
  const __m128i needle = _mm_set1_epi32(key);
  unsigned j = 0;
  for (; j + 4 <= n; j += 4) {
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(keys + j));
    const unsigned gt = static_cast<unsigned>(
        _mm_movemask_ps(_mm_castsi128_ps(_mm_cmpgt_epi32(v, needle))));
    le |= static_cast<std::uint64_t>(~gt & 0xFu) << j;
  }
  for (; j < n; ++j) {
    le |= static_cast<std::uint64_t>(keys[j] <= key) << j;
  }
  return static_cast<unsigned>(__builtin_popcountll(le));
}

inline bool any_eq_i32(const std::int32_t* keys, unsigned n,
                       std::int32_t key) noexcept {
  std::uint64_t eq = 0;
  const __m128i needle = _mm_set1_epi32(key);
  unsigned j = 0;
  for (; j + 4 <= n; j += 4) {
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(keys + j));
    eq |= static_cast<std::uint64_t>(_mm_movemask_ps(
              _mm_castsi128_ps(_mm_cmpeq_epi32(v, needle))))
          << j;
  }
  for (; j < n; ++j) {
    eq |= static_cast<std::uint64_t>(keys[j] == key) << j;
  }
  return eq != 0;
}

#elif !defined(__AVX2__)

inline unsigned count_le_i32(const std::int32_t* keys, unsigned n,
                             std::int32_t key) noexcept {
  std::uint64_t le = 0;
  for (unsigned j = 0; j < n; ++j) {
    le += static_cast<std::uint64_t>(keys[j] <= key);
  }
  return static_cast<unsigned>(le);
}

inline bool any_eq_i32(const std::int32_t* keys, unsigned n,
                       std::int32_t key) noexcept {
  bool eq = false;
  for (unsigned j = 0; j < n; ++j) eq |= (keys[j] == key);
  return eq;
}

#endif

}  // namespace detail

/// Routing slot for `key` over `n` sorted routing keys: the number of
/// routing keys <= key, i.e. the index of the first routing key
/// strictly greater than `key` (n when none is).
template <typename Key, typename Compare>
[[nodiscard]] inline unsigned route_index(const Key* keys, unsigned n,
                                          const Key& key,
                                          const Compare& less) noexcept {
  if constexpr (vectorized_search<Key, Compare>) {
    if constexpr (sizeof(Key) == 8) {
      return detail::count_le_i64(reinterpret_cast<const std::int64_t*>(keys),
                                  n, static_cast<std::int64_t>(key));
    } else {
      return detail::count_le_i32(reinterpret_cast<const std::int32_t*>(keys),
                                  n, static_cast<std::int32_t>(key));
    }
  } else {
    unsigned idx = 0;
    for (unsigned j = 0; j < n; ++j) {
      idx += static_cast<unsigned>(!less(key, keys[j]));
    }
    return idx;
  }
}

/// Membership over `n` (not necessarily sorted) keys under the
/// comparator's induced equivalence.
template <typename Key, typename Compare>
[[nodiscard]] inline bool contains_key(const Key* keys, unsigned n,
                                       const Key& key,
                                       const Compare& less) noexcept {
  if constexpr (vectorized_search<Key, Compare>) {
    if constexpr (sizeof(Key) == 8) {
      return detail::any_eq_i64(reinterpret_cast<const std::int64_t*>(keys),
                                n, static_cast<std::int64_t>(key));
    } else {
      return detail::any_eq_i32(reinterpret_cast<const std::int32_t*>(keys),
                                n, static_cast<std::int32_t>(key));
    }
  } else {
    bool found = false;
    for (unsigned j = 0; j < n; ++j) {
      found |= !less(key, keys[j]) && !less(keys[j], key);
    }
    return found;
  }
}

/// Tuned default fanout per key width: size K-1 keys to one cache line
/// so the routing scan of a descent step is a single line, with the
/// child-pointer array on the following line(s). 8-byte keys → K=8
/// (56 B of keys), 4-byte and smaller → K=16 (60 B), fatter keys → K=4.
template <typename Key>
inline constexpr unsigned default_fanout =
    sizeof(Key) <= 4 ? 16u : (sizeof(Key) <= 8 ? 8u : 4u);

}  // namespace lfbst::multiway
