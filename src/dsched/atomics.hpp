// lfbst dsched: the instrumented atomics policy.
//
// Trees instantiated with this policy hand control to the deterministic
// scheduler before every shared-memory step (every tagged_word
// load/CAS/BTS):
//
//   using sched_tree = lfbst::nm_tree<long, std::less<long>,
//                                     lfbst::reclaim::leaky,
//                                     lfbst::stats::none,
//                                     lfbst::tag_policy::bts, void,
//                                     lfbst::dsched::sched_atomics>;
//
// Outside a scheduled execution (scenario setup, teardown, assertions)
// schedule_point() is a no-op, so the same tree object can be populated
// sequentially and inspected after the exploration without ceremony.
#pragma once

#include "dsched/scheduler.hpp"

namespace lfbst::dsched {

struct sched_atomics {
  static constexpr const char* name = "dsched";
  static void shared_step() noexcept { schedule_point(); }
};

}  // namespace lfbst::dsched
