// lfbst dsched: a cooperative deterministic scheduler for schedule
// exploration of the lock-free trees.
//
// Problem: the NM-BST's correctness hangs on narrow interleavings — a
// helper finishing a stalled delete's cleanup, two deletes racing for
// the same injection edge, an insert CAS landing between a delete's flag
// CAS and its tag BTS (PAPER.md §3.3–3.4). Wall-clock stress tests only
// stumble into these windows probabilistically; dsched makes them a
// deterministic, replayable function of a seed or a choice sequence.
//
// Model: N *logical* threads execute under the control of one
// coordinator, with at most one logical thread running at any instant
// (they are backed by real OS threads gated on a condition variable, so
// the model is sanitizer-friendly — TSan sees properly synchronized
// handoffs, and there is no fiber/stack trickery). Every shared-memory
// primitive of a tree built with the dsched::sched_atomics policy calls
// schedule_point(), which parks the calling logical thread and returns
// control to the coordinator. The coordinator asks a *strategy* which
// runnable thread performs the next shared-memory step. The sequence of
// choices is the *trace*; scheduling is the only source of
// nondeterminism in a scenario, so trace ⇒ execution, exactly.
//
// Granularity: one step = the code between two schedule points — i.e.
// exactly one shared-memory access (one tagged_word load/CAS/BTS) plus
// the thread-local computation around it. This is the same atomicity the
// hardware provides, so every interleaving dsched can produce is a real
// interleaving and vice versa (modulo weak-memory reorderings, which the
// NM proof does not rely on — see docs/DSCHED.md).
//
// Progress: because the trees are lock-free, a thread never blocks
// between schedule points; any strategy choice sequence terminates. A
// step budget guards against runaway scenarios that keep hitting
// schedule points: when it blows, every logical thread is unparked to
// free-run to completion (schedule_point becomes a no-op), the threads
// are joined, and run() throws. Scripts must terminate once scheduling
// pressure is removed — every finite sequence of lock-free tree
// operations does.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/assert.hpp"

namespace lfbst::dsched {

/// One scheduling decision: which logical thread ran, and which were
/// runnable when it was chosen (the branch set — what DFS backtracks
/// over).
struct choice {
  unsigned chosen;
  std::uint32_t runnable;  // bitmask over logical thread ids
};

/// The full decision sequence of one execution. Feeding the same trace
/// back through a replay strategy reproduces the execution exactly.
using trace = std::vector<choice>;

/// Renders a trace as the compact string printed on failure, e.g.
/// "0:3 1:3 1:2 0:1" (chosen:runnable per step). Replay parses this.
inline std::string format_trace(const trace& t) {
  std::string out;
  for (const choice& c : t) {
    if (!out.empty()) out += ' ';
    out += std::to_string(c.chosen) + ':' + std::to_string(c.runnable);
  }
  return out;
}

class scheduler;

namespace detail {
/// The scheduler controlling the calling OS thread, if any. Null on
/// unmanaged threads (the coordinator, plain test code), where
/// schedule_point() is a no-op — so scenario setup/teardown can call
/// tree operations freely.
inline thread_local scheduler* tl_scheduler = nullptr;
inline thread_local unsigned tl_tid = 0;
}  // namespace detail

/// Parks the calling logical thread until the strategy schedules it
/// again. Called by dsched::sched_atomics before every shared-memory
/// step; a no-op outside a managed logical thread.
void schedule_point() noexcept;

/// Runs N logical threads to completion under a strategy. One instance
/// per execution; not reusable.
class scheduler {
 public:
  using thread_fn = std::function<void()>;
  /// Strategy signature: (step index, runnable mask) -> chosen tid. The
  /// returned tid must have its bit set in the mask.
  using strategy_fn = std::function<unsigned(std::size_t, std::uint32_t)>;

  static constexpr unsigned max_logical_threads = 32;

  /// Runs `fns` to completion, consulting `pick` at every schedule
  /// point. Returns the trace. Throws std::runtime_error if the step
  /// budget is exhausted (a scenario that never terminates — e.g. a
  /// lock-based tree — or a runaway strategy).
  static trace run(std::vector<thread_fn> fns, const strategy_fn& pick,
                   std::size_t max_steps = 1u << 20) {
    scheduler s(std::move(fns));
    return s.execute(pick, max_steps);
  }

  /// Global step counter of the active execution: the number of
  /// scheduling decisions made so far. Monotone; used as the timestamp
  /// axis for linearizability histories (harness.hpp). Returns 0 when no
  /// execution is active on this thread's scheduler.
  [[nodiscard]] std::uint64_t step_count() const noexcept {
    return steps_.load(std::memory_order_relaxed);
  }

  /// The scheduler managing the calling thread (logical threads only).
  static scheduler* current() noexcept { return detail::tl_scheduler; }

 private:
  friend void schedule_point() noexcept;

  enum class lstate : std::uint8_t { at_point, running, finished };

  explicit scheduler(std::vector<thread_fn> fns) : fns_(std::move(fns)) {
    LFBST_ASSERT(!fns_.empty() && fns_.size() <= max_logical_threads,
                 "1..32 logical threads");
    states_.assign(fns_.size(), lstate::at_point);
  }

  trace execute(const strategy_fn& pick, std::size_t max_steps) {
    const unsigned n = static_cast<unsigned>(fns_.size());
    std::vector<std::thread> os_threads;
    os_threads.reserve(n);
    for (unsigned tid = 0; tid < n; ++tid) {
      os_threads.emplace_back([this, tid] { thread_main(tid); });
    }

    trace out;
    bool budget_blown = false;
    {
      std::unique_lock<std::mutex> lock(mu_);
      for (std::size_t step = 0;; ++step) {
        const std::uint32_t runnable = runnable_mask_locked();
        if (runnable == 0) break;  // all finished
        if (step >= max_steps) {
          budget_blown = true;
          break;
        }
        const unsigned tid = pick(step, runnable);
        LFBST_ASSERT(tid < n && (runnable & (1u << tid)) != 0,
                     "strategy chose a non-runnable thread");
        out.push_back({tid, runnable});
        steps_.fetch_add(1, std::memory_order_relaxed);
        // Hand the token to `tid`; it runs until its next schedule
        // point (or completion) and hands the token back.
        active_ = static_cast<int>(tid);
        cv_.notify_all();
        cv_.wait(lock, [this] { return active_ == -1; });
      }
      if (budget_blown) {
        // Unblock every parked thread so the OS threads can be joined:
        // fail them with the abort flag, which schedule_point turns
        // into free-running (no further parking).
        aborting_ = true;
        cv_.notify_all();
      }
    }
    for (std::thread& t : os_threads) t.join();
    if (budget_blown) {
      throw std::runtime_error(
          "dsched: step budget exhausted — scenario does not terminate "
          "under cooperative scheduling (blocking synchronization?)");
    }
    return out;
  }

  void thread_main(unsigned tid) {
    detail::tl_scheduler = this;
    detail::tl_tid = tid;
    {
      // Initial park: a logical thread takes no step until first chosen.
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] {
        return aborting_ || active_ == static_cast<int>(tid);
      });
      states_[tid] = lstate::running;
    }
    fns_[tid]();
    {
      std::unique_lock<std::mutex> lock(mu_);
      states_[tid] = lstate::finished;
      active_ = -1;
      cv_.notify_all();
    }
    detail::tl_scheduler = nullptr;
  }

  void yield_at_point() {
    const unsigned tid = detail::tl_tid;
    std::unique_lock<std::mutex> lock(mu_);
    if (aborting_) return;  // budget blown: run free so join() can finish
    states_[tid] = lstate::at_point;
    active_ = -1;
    cv_.notify_all();
    cv_.wait(lock, [&] {
      return aborting_ || active_ == static_cast<int>(tid);
    });
    states_[tid] = lstate::running;
  }

  [[nodiscard]] std::uint32_t runnable_mask_locked() const {
    std::uint32_t mask = 0;
    for (std::size_t i = 0; i < states_.size(); ++i) {
      if (states_[i] != lstate::finished) mask |= 1u << i;
    }
    return mask;
  }

  std::vector<thread_fn> fns_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<lstate> states_;
  int active_ = -1;  // tid holding the run token, -1 = coordinator
  bool aborting_ = false;
  std::atomic<std::uint64_t> steps_{0};
};

inline void schedule_point() noexcept {
  if (scheduler* s = detail::tl_scheduler) s->yield_at_point();
}

}  // namespace lfbst::dsched
