// lfbst dsched: scheduling strategies.
//
// A strategy answers one question, repeatedly: "threads in `runnable`
// are each parked at their next shared-memory step — which one goes?"
// Three families, each replayable:
//
//   * random_walk  — uniform choice from a seeded pcg32. The cheapest
//     way to scatter executions across the interleaving space; replay =
//     same seed.
//   * pct          — the priority-based PCT sampler (Burckhardt et al.,
//     ASPLOS 2010): random distinct priorities per thread, run the
//     highest-priority runnable thread, and demote the running thread at
//     d-1 randomly pre-chosen step indices. For a bug of preemption
//     depth d, one run hits it with probability ≥ 1/(n·k^(d-1)) — far
//     better than uniform random for the flag-CAS/BTS windows, which
//     are depth-2 bugs. Replay = same seed.
//   * replay       — forces a recorded trace (or any prefix of one),
//     then falls back to lowest-runnable. This is what reruns a failure
//     printed by the harness.
//
// Exhaustive enumeration lives in dfs_explorer: a stateful backtracker
// that treats each execution's trace as a path in the schedule tree and
// visits paths in depth-first order. Bounded by an execution budget;
// with a small scenario (≤3 threads, ≤6 ops) and a generous budget it
// visits the entire space and sets exhausted().
#pragma once

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "common/assert.hpp"
#include "common/rng.hpp"
#include "dsched/scheduler.hpp"

namespace lfbst::dsched {

namespace detail {
inline unsigned lowest_bit(std::uint32_t mask) noexcept {
  LFBST_ASSERT(mask != 0, "empty runnable mask");
  return static_cast<unsigned>(__builtin_ctz(mask));
}
inline unsigned popcount(std::uint32_t mask) noexcept {
  return static_cast<unsigned>(__builtin_popcount(mask));
}
/// k-th (0-based) set bit of mask.
inline unsigned nth_bit(std::uint32_t mask, unsigned k) noexcept {
  for (;;) {
    const unsigned b = lowest_bit(mask);
    if (k == 0) return b;
    mask &= mask - 1;
    --k;
  }
}
}  // namespace detail

/// Seeded uniform random walk over the schedule tree.
class random_walk {
 public:
  explicit random_walk(std::uint64_t seed) : rng_(seed) {}

  unsigned operator()(std::size_t /*step*/, std::uint32_t runnable) {
    const unsigned n = detail::popcount(runnable);
    return detail::nth_bit(runnable, rng_.bounded(n));
  }

 private:
  pcg32 rng_;
};

/// PCT: randomized priorities with d-1 priority-change points spread
/// over an (estimated) k-step execution. `depth` is the targeted bug
/// depth d; `expected_steps` the estimate of k (overestimating only
/// dilutes the change points, it never breaks anything).
class pct {
 public:
  pct(std::uint64_t seed, unsigned nthreads, unsigned depth,
      std::uint64_t expected_steps)
      : rng_(seed) {
    LFBST_ASSERT(nthreads >= 1 && depth >= 1, "bad pct parameters");
    // Initial priorities: a random permutation of d, d+1, ..., d+n-1
    // (all above every change-point priority 1..d-1).
    priorities_.resize(nthreads);
    for (unsigned i = 0; i < nthreads; ++i) priorities_[i] = depth + i;
    for (unsigned i = nthreads; i > 1; --i) {
      std::swap(priorities_[i - 1], priorities_[rng_.bounded(i)]);
    }
    // d-1 change points, each a step index paired with the priority
    // (d-1, d-2, ..., 1) it assigns to the thread running at that step.
    for (unsigned c = 0; c + 1 < depth; ++c) {
      change_steps_.push_back(rng_.bounded(
          static_cast<std::uint32_t>(expected_steps > 0 ? expected_steps
                                                        : 1)));
      change_prios_.push_back(depth - 1 - c);
    }
  }

  unsigned operator()(std::size_t step, std::uint32_t runnable) {
    // Highest-priority runnable thread.
    unsigned best = detail::lowest_bit(runnable);
    for (std::uint32_t m = runnable & (runnable - 1); m != 0; m &= m - 1) {
      const unsigned tid = detail::lowest_bit(m);
      if (priorities_[tid] > priorities_[best]) best = tid;
    }
    // Demote it if this step index is a change point.
    for (std::size_t c = 0; c < change_steps_.size(); ++c) {
      if (change_steps_[c] == step) priorities_[best] = change_prios_[c];
    }
    return best;
  }

 private:
  pcg32 rng_;
  std::vector<unsigned> priorities_;
  std::vector<std::uint32_t> change_steps_;
  std::vector<unsigned> change_prios_;
};

/// Forces a recorded trace; past its end, runs the lowest runnable
/// thread (any fixed completion rule works — the divergence, if the
/// trace came from a different binary, shows up as an assertion).
class replay {
 public:
  explicit replay(trace t) : trace_(std::move(t)) {}

  /// Parses the format printed by format_trace ("0:3 1:3 1:1 ...").
  static replay from_string(const std::string& s) {
    trace t;
    std::istringstream in(s);
    std::string tok;
    while (in >> tok) {
      const auto colon = tok.find(':');
      LFBST_ASSERT(colon != std::string::npos, "malformed trace token");
      t.push_back({static_cast<unsigned>(std::stoul(tok.substr(0, colon))),
                   static_cast<std::uint32_t>(
                       std::stoul(tok.substr(colon + 1)))});
    }
    return replay(std::move(t));
  }

  unsigned operator()(std::size_t step, std::uint32_t runnable) {
    if (step < trace_.size()) {
      const choice& c = trace_[step];
      LFBST_ASSERT((runnable & (1u << c.chosen)) != 0,
                   "replayed trace diverged: chosen thread not runnable");
      return c.chosen;
    }
    return detail::lowest_bit(runnable);
  }

 private:
  trace trace_;
};

/// Bounded exhaustive DFS over the schedule tree. Usage:
///
///   dfs_explorer dfs(budget);
///   while (dfs.more()) {
///     trace t = scheduler::run(make_threads(), dfs.strategy());
///     dfs.commit(t);
///     ... check the terminal state ...
///   }
///   // dfs.executions() interleavings explored; dfs.exhausted() tells
///   // whether that was the whole space.
///
/// Every committed execution is a distinct interleaving: consecutive
/// traces differ at the deepest branch point by construction.
class dfs_explorer {
 public:
  explicit dfs_explorer(std::size_t max_executions)
      : budget_(max_executions) {}

  /// True while another (necessarily new) interleaving remains within
  /// budget.
  [[nodiscard]] bool more() const {
    return !exhausted_ && executions_ < budget_;
  }

  /// Strategy for the next execution: replays the forced prefix, then
  /// extends with the first-runnable rule.
  scheduler::strategy_fn strategy() const {
    return [this](std::size_t step, std::uint32_t runnable) -> unsigned {
      if (step < forced_.size()) {
        LFBST_ASSERT((runnable & (1u << forced_[step])) != 0,
                     "dfs: forced choice not runnable — scenario is "
                     "nondeterministic beyond scheduling");
        return forced_[step];
      }
      return detail::lowest_bit(runnable);
    };
  }

  /// Records the execution's trace and computes the next forced prefix:
  /// backtrack to the deepest step with an untried sibling choice.
  void commit(const trace& t) {
    ++executions_;
    std::vector<choice> path(t);
    while (!path.empty()) {
      const choice c = path.back();
      // Untried alternatives: runnable tids numerically above chosen.
      const std::uint32_t higher =
          c.runnable & ~((std::uint32_t{2} << c.chosen) - 1);
      if (higher != 0) {
        path.pop_back();
        forced_.clear();
        for (const choice& p : path) forced_.push_back(p.chosen);
        forced_.push_back(detail::lowest_bit(higher));
        return;
      }
      path.pop_back();
    }
    exhausted_ = true;  // every branch point fully explored
  }

  [[nodiscard]] std::size_t executions() const { return executions_; }
  [[nodiscard]] bool exhausted() const { return exhausted_; }

 private:
  std::size_t budget_;
  std::size_t executions_ = 0;
  bool exhausted_ = false;
  std::vector<unsigned> forced_;
};

}  // namespace lfbst::dsched
