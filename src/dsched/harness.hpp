// lfbst dsched: scenario harness — run tree operations under the
// deterministic scheduler and decide linearizability of every terminal
// state.
//
// A scenario is: a sequential setup phase, N per-thread operation
// scripts, and a key universe. The harness runs the scripts under a
// strategy (strategies.hpp), records every operation as an interval on a
// logical clock, then:
//
//   * appends one contains(k) "observation op" per universe key holding
//     the tree's terminal membership, timestamped after everything — so
//     the terminal state must be explained by the same linearization
//     that explains the concurrent history;
//   * runs the repo's Wing–Gong checker (lincheck/lincheck.hpp) over
//     the combined history;
//   * runs the tree's structural validator.
//
// Timestamps: a logical clock incremented at every invoke/response
// event. Logical threads execute one at a time with mutex-ordered
// handoffs, so clock order equals real-time order exactly — including
// program order within a thread — and the checker's real-time constraint
// is tight, not merely conservative.
//
// Every failure carries the execution's trace; replaying it
// (strategies.hpp replay, or the printed `--trace` string) reproduces
// the interleaving bit for bit, because scheduling is the scenario's
// only source of nondeterminism.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "dsched/scheduler.hpp"
#include "dsched/strategies.hpp"
#include "lincheck/lincheck.hpp"

namespace lfbst::dsched {

/// Multiplier for exploration budgets, read once per call from the
/// LFBST_DSCHED_BUDGET_SCALE environment variable (default 1, minimum
/// 1). PR CI runs at scale 1; the nightly workflow raises it so the
/// same scenarios sweep far more interleavings without a code change.
[[nodiscard]] inline std::size_t budget_scale() {
  const char* raw = std::getenv("LFBST_DSCHED_BUDGET_SCALE");
  if (raw == nullptr) return 1;
  const long v = std::strtol(raw, nullptr, 10);
  return v < 1 ? std::size_t{1} : static_cast<std::size_t>(v);
}

/// Convenience: `n` executions scaled by budget_scale().
[[nodiscard]] inline std::size_t scaled_budget(std::size_t n) {
  return n * budget_scale();
}

/// Records one logical thread's operations against the shared history.
/// Scripts call these instead of the tree directly; results are passed
/// through, so scripts can branch on them.
template <typename Tree>
class recorder {
 public:
  recorder(Tree& tree, lincheck::history& sink, std::uint64_t& clock)
      : tree_(tree), sink_(sink), clock_(clock) {}

  bool insert(int key) { return record(lincheck::op_kind::insert, key); }
  bool erase(int key) { return record(lincheck::op_kind::erase, key); }
  bool contains(int key) { return record(lincheck::op_kind::contains, key); }

  // Batched operations (trees that have them, e.g. shard::sharded_set).
  // A batch is not atomic: each element is its own linearizable op, so
  // each is recorded as one history entry. All elements share the
  // batch's invoke timestamp and get distinct responses after the call
  // returns — intervals that cover each element's true execution window
  // (conservatively), keeping the check sound.

  std::vector<bool> insert_batch(const std::vector<int>& keys)
    requires requires(Tree t, std::vector<int> k) { t.insert_batch(k); }
  {
    return record_batch(lincheck::op_kind::insert, keys,
                        [&](const std::vector<int>& k) {
                          return tree_.insert_batch(k);
                        });
  }

  std::vector<bool> erase_batch(const std::vector<int>& keys)
    requires requires(Tree t, std::vector<int> k) { t.erase_batch(k); }
  {
    return record_batch(lincheck::op_kind::erase, keys,
                        [&](const std::vector<int>& k) {
                          return tree_.erase_batch(k);
                        });
  }

  std::vector<bool> contains_batch(const std::vector<int>& keys)
    requires requires(Tree t, std::vector<int> k) { t.contains_batch(k); }
  {
    return record_batch(lincheck::op_kind::contains, keys,
                        [&](const std::vector<int>& k) {
                          return tree_.contains_batch(k);
                        });
  }

  // Concurrent ordered scan over [lo, hi), encoded like a batch: a scan
  // is not atomic, so each key of the interval becomes one contains(k,
  // k ∈ result) observation sharing the scan's [invoke, response]
  // window. Omitted keys become contains→false entries — a wrongly
  // missing key (one present for the whole window) fails the check.
  // Sortedness and uniqueness are the scan's own unconditional
  // guarantees, so they are asserted here, on every explored schedule.
  std::vector<int> range_scan(int lo, int hi)
    requires requires(Tree t, int k) { t.range_scan(k, k); }
  {
    LFBST_ASSERT(lo >= 0 && hi <= 64, "dsched scenario keys live in [0,64)");
    const std::uint64_t invoke = ++clock_;
    using tree_key = typename Tree::key_type;
    const std::vector<tree_key> raw = tree_.range_scan(
        static_cast<tree_key>(lo), static_cast<tree_key>(hi));
    const std::uint64_t response = ++clock_;
    std::vector<int> result;
    result.reserve(raw.size());
    for (const tree_key& k : raw) result.push_back(static_cast<int>(k));
    for (std::size_t i = 0; i < result.size(); ++i) {
      LFBST_ASSERT(result[i] >= lo && result[i] < hi,
                   "range_scan returned a key outside [lo, hi)");
      LFBST_ASSERT(i == 0 || result[i - 1] < result[i],
                   "range_scan result not sorted/unique");
    }
    std::size_t next = 0;
    for (int k = lo; k < hi; ++k) {
      while (next < result.size() && result[next] < k) ++next;
      const bool present = next < result.size() && result[next] == k;
      sink_.push_back(
          {lincheck::op_kind::contains, k, present, invoke, response});
    }
    return result;
  }

  /// The instance under test — for scripts that drive non-history
  /// control-plane calls (e.g. sharded_set::migrate_splitter) racing
  /// the recorded operations. Control-plane calls still hit schedule
  /// points through the tree's atomics policy; they just don't append
  /// history entries, because they must not change membership at all.
  [[nodiscard]] Tree& tree() noexcept { return tree_; }

 private:
  bool record(lincheck::op_kind kind, int key) {
    LFBST_ASSERT(key >= 0 && key < 64, "dsched scenario keys live in [0,64)");
    const std::uint64_t invoke = ++clock_;
    bool result = false;
    switch (kind) {
      case lincheck::op_kind::insert:
        result = tree_.insert(key);
        break;
      case lincheck::op_kind::erase:
        result = tree_.erase(key);
        break;
      case lincheck::op_kind::contains:
        result = tree_.contains(key);
        break;
    }
    sink_.push_back({kind, key, result, invoke, ++clock_});
    return result;
  }

  template <typename BatchFn>
  std::vector<bool> record_batch(lincheck::op_kind kind,
                                 const std::vector<int>& keys,
                                 BatchFn&& run) {
    for (const int key : keys) {
      LFBST_ASSERT(key >= 0 && key < 64,
                   "dsched scenario keys live in [0,64)");
    }
    const std::uint64_t invoke = ++clock_;
    std::vector<bool> results = run(keys);
    for (std::size_t i = 0; i < keys.size(); ++i) {
      sink_.push_back({kind, keys[i], results[i], invoke, ++clock_});
    }
    return results;
  }

  Tree& tree_;
  lincheck::history& sink_;
  std::uint64_t& clock_;
};

/// One schedule-exploration scenario over a tree type built with
/// dsched::sched_atomics.
template <typename Tree>
struct scenario {
  using script = std::function<void(recorder<Tree>&)>;

  /// Sequential pre-population; runs outside the scheduler.
  std::function<void(Tree&)> setup;
  /// One operation script per logical thread.
  std::vector<script> threads;
  /// Keys whose terminal membership is folded into the linearizability
  /// check. Must cover every key the scripts touch.
  std::vector<int> universe;
  /// Optional post-execution observer, invoked after the terminal
  /// checks while the tree is still alive. Lets tests inspect
  /// per-instance state (e.g. obs::recording counters) that dies with
  /// the tree when run_scenario returns.
  std::function<void(Tree&)> on_terminal;
};

/// Outcome of one scheduled execution.
struct execution_report {
  trace schedule;
  bool linearizable = false;
  std::string validate_error;
  std::size_t steps = 0;

  [[nodiscard]] bool ok() const {
    return linearizable && validate_error.empty();
  }
  [[nodiscard]] std::string describe() const {
    std::string out;
    if (!linearizable) out += "terminal state not linearizable; ";
    if (!validate_error.empty()) {
      out += "structural validation failed: " + validate_error;
    }
    out += " replay trace: " + format_trace(schedule);
    return out;
  }
};

/// Runs `sc` once under `pick` and checks the terminal state.
template <typename Tree>
execution_report run_scenario(const scenario<Tree>& sc,
                              const scheduler::strategy_fn& pick) {
  Tree tree;
  if (sc.setup) sc.setup(tree);

  // Initial abstract state: membership after setup (sequential, exact).
  std::uint64_t initial_state = 0;
  for (const int k : sc.universe) {
    LFBST_ASSERT(k >= 0 && k < 64, "universe keys live in [0,64)");
    if (tree.contains(k)) initial_state |= std::uint64_t{1} << k;
  }

  lincheck::history h;
  std::uint64_t clock = 0;
  std::vector<scheduler::thread_fn> fns;
  std::vector<recorder<Tree>> recs;
  recs.reserve(sc.threads.size());  // stable addresses for the closures
  for (const auto& script : sc.threads) {
    recs.emplace_back(tree, h, clock);
    recorder<Tree>& rec = recs.back();
    fns.emplace_back([&script, &rec] { script(rec); });
  }

  execution_report report;
  report.schedule = scheduler::run(std::move(fns), pick);
  report.steps = report.schedule.size();

  // Terminal observations: after the scheduler joins every logical
  // thread, membership is quiescent; fold it into the history as
  // late-timestamped contains ops.
  for (const int k : sc.universe) {
    const std::uint64_t t = ++clock;
    h.push_back({lincheck::op_kind::contains, k, tree.contains(k), t, t});
  }

  report.validate_error = tree.validate();
  report.linearizable = lincheck::checker::is_linearizable(h, initial_state);
  if (sc.on_terminal) sc.on_terminal(tree);
  return report;
}

/// Aggregate of an exploration run. `first_failure` holds a replayable
/// description (trace, and seed where applicable) of the first failing
/// execution, empty when all executions were sound.
struct exploration_summary {
  std::size_t executions = 0;
  std::size_t failures = 0;
  bool exhausted = false;  // DFS only: the whole space was visited
  std::string first_failure;

  [[nodiscard]] bool all_ok() const { return failures == 0; }
};

/// Bounded exhaustive DFS over every interleaving of `sc`, up to
/// `max_executions`. Each execution is a distinct interleaving.
template <typename Tree>
exploration_summary explore_dfs(const scenario<Tree>& sc,
                                std::size_t max_executions) {
  dfs_explorer dfs(max_executions);
  exploration_summary sum;
  while (dfs.more()) {
    execution_report r = run_scenario(sc, dfs.strategy());
    dfs.commit(r.schedule);
    if (!r.ok()) {
      ++sum.failures;
      if (sum.first_failure.empty()) {
        sum.first_failure = "dfs execution #" +
                            std::to_string(dfs.executions()) + ": " +
                            r.describe();
      }
    }
  }
  sum.executions = dfs.executions();
  sum.exhausted = dfs.exhausted();
  return sum;
}

/// Runs `count` seeded random-walk executions (seeds base_seed,
/// base_seed+1, ...). A failure names the seed that reproduces it.
template <typename Tree>
exploration_summary explore_random(const scenario<Tree>& sc,
                                   std::uint64_t base_seed,
                                   std::size_t count) {
  exploration_summary sum;
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint64_t seed = base_seed + i;
    random_walk walk(seed);
    execution_report r = run_scenario(
        sc, [&walk](std::size_t s, std::uint32_t m) { return walk(s, m); });
    ++sum.executions;
    if (!r.ok()) {
      ++sum.failures;
      if (sum.first_failure.empty()) {
        sum.first_failure =
            "random walk seed " + std::to_string(seed) + ": " + r.describe();
      }
    }
  }
  return sum;
}

/// Runs `count` PCT executions with bug depth `depth` (seeds base_seed,
/// base_seed+1, ...). `expected_steps` tunes where the priority-change
/// points land; the first execution's observed length is a good value.
template <typename Tree>
exploration_summary explore_pct(const scenario<Tree>& sc,
                                std::uint64_t base_seed, std::size_t count,
                                unsigned depth,
                                std::uint64_t expected_steps = 0) {
  exploration_summary sum;
  const unsigned nthreads = static_cast<unsigned>(sc.threads.size());
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint64_t seed = base_seed + i;
    if (expected_steps == 0) expected_steps = 64;  // refined after run 1
    pct prio(seed, nthreads, depth, expected_steps);
    execution_report r = run_scenario(
        sc, [&prio](std::size_t s, std::uint32_t m) { return prio(s, m); });
    expected_steps = r.steps;
    ++sum.executions;
    if (!r.ok()) {
      ++sum.failures;
      if (sum.first_failure.empty()) {
        sum.first_failure =
            "pct seed " + std::to_string(seed) + " depth " +
            std::to_string(depth) + ": " + r.describe();
      }
    }
  }
  return sum;
}

}  // namespace lfbst::dsched
