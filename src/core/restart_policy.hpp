// lfbst: seek-restart policies for the NM-BST retry path.
//
// The conference version of Natarajan & Mittal restarts every failed
// modify operation with a fresh seek from the root ℝ. The full version
// observes that the seek record already carries the last untagged
// (ancestor → successor) edge of the previous attempt, and that this
// edge is a safe *anchor*: if it re-reads as clean and still addressing
// the successor, the ancestor has provably not been excised (a removed
// internal node always has both child edges marked before it becomes
// unreachable), so the retry may resume its descent from the successor
// instead of paying the full root-to-leaf path again. Under contention
// the retry path is where the operation spends its time, so shortening
// it is the paper's main contended-throughput lever (see also
// Chatterjee et al. and Aksenov et al. in PAPERS.md, which reach the
// same conclusion for their trees).
//
// The tree takes one of these policies as its `Restart` template
// parameter:
//
//   * restart::from_anchor (default) — validate the recorded anchor
//     edge on retry and resume locally; fall back to a root seek when
//     validation fails (edge marked, or swung away from the successor).
//   * restart::from_root — the conference paper's behavior: every retry
//     re-seeks from ℝ. Kept as the ablation / dsched reference and for
//     the Table 1 atomic-count pins.
//
// Both policies execute identical atomics on the uncontended path (the
// policy is only consulted after a failed CAS), so Table 1 counts are
// policy-independent. bench_micro_ops --json (study "restart_policy")
// and bench_contention_window quantify the contended difference;
// docs/PERF.md discusses it.
#pragma once

namespace lfbst::restart {

/// Conference-paper behavior: every retry seeks from the root.
struct from_root {
  static constexpr const char* name = "from_root";
  static constexpr bool resume_from_anchor = false;
};

/// Full-version behavior: retries re-validate the recorded
/// (ancestor → successor) edge and resume the descent there, falling
/// back to a root seek only when the anchor no longer holds.
struct from_anchor {
  static constexpr const char* name = "from_anchor";
  static constexpr bool resume_from_anchor = true;
};

}  // namespace lfbst::restart
