// lfbst: nm_map — the NM-BST as a concurrent ordered map.
//
// Same algorithm, same policies, but leaves carry a mapped value and the
// API gains get(), insert(key, value) and insert_or_assign(). Assignment
// is the paper's §6 "replace" direction realized with the edge-marking
// machinery already in place: one CAS swings the parent's edge from the
// old (key, old value) leaf to a fresh (key, new value) leaf; a delete
// that flagged the edge first simply wins the CAS race and the assign
// retries as an insert.
//
//   lfbst::nm_map<long, std::string,
//                 std::less<long>, lfbst::reclaim::epoch> prices;
//   prices.insert_or_assign(7, "1.99");
//   prices.get(7);     // -> std::optional<std::string>{"1.99"}
//   prices.erase(7);   // -> true
//
// Notes:
//   * Values are immutable per leaf: readers copy them out without any
//     synchronization beyond the seek. Choose cheap-to-copy value types
//     or wrap in std::shared_ptr.
//   * The leaky reclaimer (paper regime) requires trivially destructible
//     values; use reclaim::epoch for owning types (enforced at compile
//     time).
#pragma once

#include <functional>

#include "core/natarajan_tree.hpp"

namespace lfbst {

template <typename Key, typename T, typename Compare = std::less<Key>,
          typename Reclaimer = reclaim::leaky, typename Stats = stats::none,
          typename Tagging = tag_policy::bts>
using nm_map = nm_tree<Key, Compare, Reclaimer, Stats, Tagging, T>;

}  // namespace lfbst
