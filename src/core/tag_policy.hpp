// lfbst: tagging-instruction policies for the NM-BST.
//
// The paper's delete uses a bit-test-and-set (BTS) instruction to tag
// the sibling edge (§3.2.4, Alg. 4 line 106) and notes the algorithm
// "can be easily modified to use only CAS atomic instructions" (§1, §6).
// Both variants are provided; bench_ablation --study=tagging measures
// the difference. The policies are stateless dispatch shims over
// tagged_word's two tagging primitives.
#pragma once

namespace lfbst::tag_policy {

/// fetch_or-based tagging — the paper's BTS instruction. One atomic RMW
/// that cannot fail.
struct bts {
  static constexpr const char* name = "bts";
  template <typename Word>
  static auto tag(Word& word) noexcept {
    return word.bts_tag();
  }
};

/// CAS-loop emulation of BTS — the paper's CAS-only variant. May retry
/// under contention on the same word; observable behaviour is identical.
struct cas_only {
  static constexpr const char* name = "cas_only";
  template <typename Word>
  static auto tag(Word& word) noexcept {
    return word.bts_tag_cas_only();
  }
};

}  // namespace lfbst::tag_policy
