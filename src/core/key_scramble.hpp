// lfbst: adversarial-shape mitigation — an invertible key-scrambling
// boundary layer (docs/RESILIENCE.md).
//
// The paper's external BST makes no balance guarantee: a sequential,
// bit-reversed-counter or attacker-chosen key stream degenerates it to
// an O(n) spine, turning every seek into a linear walk — a latent
// performance bug and a real DoS vector once lfbst_serve fronts the
// tree on a socket. Rather than rebalance (the Chatterjee et al. /
// Concurrency-Optimal BST route), this header destroys the adversary's
// control over the *shape*: keys are passed through an invertible
// xorshift-multiply bijection before they reach the ordered structure,
// so whatever order the client picks, the tree sees an
// avalanche-mixed permutation of it and takes its expected
// random-insertion shape (~2·log2 n average seek depth). The bijection
// is exactly invertible, so read-out surfaces (scans, for_each,
// validate) un-mix and the client never observes a scrambled key.
//
// Three composable pieces:
//
//   * scramble_key / unscramble_key — the bijection itself, on any
//     integral key width. Forward = the splitmix64/murmur3-style
//     finalizer (xorshift-right, odd-constant multiply, twice over),
//     truncated to the key's width. Every step is a bijection on
//     Z/2^w: x ^= x >> s is invertible because the top s bits pass
//     through untouched and each lower stratum can be peeled off from
//     the stratum above it; x *= m with m odd is invertible because
//     odd numbers are units mod 2^w (the inverse is computed below by
//     Newton iteration, all constexpr). A composition of bijections
//     is a bijection; unscramble applies the inverse steps in reverse
//     order. An optional seed is XOR-folded in first — XOR with a
//     constant is itself an involution — so deployments can make the
//     permutation unpredictable to clients.
//
//   * scramble_less — a Compare policy for the trees' existing
//     comparator axis: orders keys by their scrambled images. The tree
//     then *stores* real keys but *shapes* itself by scrambled order.
//     Ordered traversals (range_scan, for_each) follow scrambled
//     order, so this form suits shape hardening of a tree used as an
//     unordered set. NOTE: a tree ordered this way must NOT be placed
//     under shard::sharded_set — the range router routes in numeric
//     order and would mis-shard (sharded_set static_asserts against
//     it; see router_order_compatible).
//
//   * scrambled_set<Set> — the boundary adapter (the form the server
//     and benches use): scrambles on the way in, unscrambles on the
//     way out, and forwards the wrapped set's observability/sharding
//     surface unchanged. Composes *above* sharding —
//     scrambled_set<sharded_set<T>> — so the router partitions the
//     scrambled space and shards stay uniformly loaded even under a
//     sequential client stream. Ordered-scan caveat: key order is not
//     preserved by the bijection, so range_scan through the adapter
//     is lowered to a full filtered enumeration (O(n), not
//     O(|result|)) — documented in docs/RESILIENCE.md; callers that
//     need cheap ordered scans should keep an unscrambled set.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

namespace lfbst {

namespace scramble_detail {

/// Multiplicative inverse of an odd constant modulo 2^w by Newton
/// iteration: each step doubles the number of correct low bits, and
/// 5 steps reach 80 ≥ 64 bits from the 5-bit-correct start (x ≡ m⁻¹
/// mod 2^5 holds for x = m when m is odd... more precisely m·m ≡ 1
/// mod 2^3, so the start is 3-bit correct and 5 doublings give 96).
template <typename U>
constexpr U odd_inverse(U m) {
  // Arithmetic in uintmax_t: an inverse mod 2^64 truncates to an
  // inverse mod 2^w, and sub-int widths would otherwise promote to
  // *signed* int whose overflow is UB (a compile error in constexpr).
  const std::uintmax_t mm = m;
  std::uintmax_t x = mm;  // correct mod 2^3 for odd m
  for (int i = 0; i < 6; ++i) {
    x *= std::uintmax_t{2} - mm * x;
  }
  return static_cast<U>(x);
}

/// Inverse of x ^= x >> s on a w-bit word: the top s bits of the image
/// equal the preimage's, and each refinement step recovers s more.
template <typename U>
constexpr U invert_xorshift_right(U y, int s) {
  constexpr int width = std::numeric_limits<U>::digits;
  U x = y;
  for (int recovered = s; recovered < width; recovered += s) {
    x = static_cast<U>(y ^ (x >> s));
  }
  return x;
}

/// Width-truncated finalizer constants. The 64-bit values are
/// splitmix64's; truncation keeps them odd (both end in a set bit), so
/// the multiplies stay invertible at every width. Shifts scale with
/// the width and stay in [1, w-1], which keeps the xorshifts
/// invertible too.
template <typename U>
struct mix_constants {
  static constexpr int width = std::numeric_limits<U>::digits;
  static constexpr U m1 = static_cast<U>(0xBF58476D1CE4E5B9ULL);
  static constexpr U m2 = static_cast<U>(0x94D049BB133111EBULL);
  static constexpr U m1_inv = odd_inverse(m1);
  static constexpr U m2_inv = odd_inverse(m2);
  static constexpr int s1 = width > 2 ? (width * 30) / 64 : 1;
  static constexpr int s2 = width > 2 ? (width * 27) / 64 : 1;
  static constexpr int s3 = width > 2 ? (width * 31) / 64 : 1;
  static_assert(s1 >= 1 && s1 < width);
  static_assert((m1 & 1) == 1 && (m2 & 1) == 1);
  static_assert(static_cast<U>(std::uintmax_t{m1} * m1_inv) == U{1});
  static_assert(static_cast<U>(std::uintmax_t{m2} * m2_inv) == U{1});
};

}  // namespace scramble_detail

/// The forward bijection: key -> avalanche-mixed key, same width.
/// Constexpr so tests can exercise it at compile time.
template <typename Key>
  requires std::is_integral_v<Key>
constexpr Key scramble_key(Key key, std::uint64_t seed = 0) noexcept {
  using U = std::make_unsigned_t<Key>;
  using C = scramble_detail::mix_constants<U>;
  // Multiplies widen to uintmax_t: sub-int widths promote to signed
  // int, whose overflow would be UB (truncation restores mod 2^w).
  U x = static_cast<U>(static_cast<U>(key) ^ static_cast<U>(seed));
  x = static_cast<U>(x ^ (x >> C::s1));
  x = static_cast<U>(std::uintmax_t{x} * C::m1);
  x = static_cast<U>(x ^ (x >> C::s2));
  x = static_cast<U>(std::uintmax_t{x} * C::m2);
  x = static_cast<U>(x ^ (x >> C::s3));
  return static_cast<Key>(x);
}

/// The exact inverse: unscramble_key(scramble_key(k, s), s) == k for
/// every key and seed (tests/core/key_scramble_test.cpp pins it).
template <typename Key>
  requires std::is_integral_v<Key>
constexpr Key unscramble_key(Key key, std::uint64_t seed = 0) noexcept {
  using U = std::make_unsigned_t<Key>;
  using C = scramble_detail::mix_constants<U>;
  U x = static_cast<U>(key);
  x = scramble_detail::invert_xorshift_right(x, C::s3);
  x = static_cast<U>(std::uintmax_t{x} * C::m2_inv);
  x = scramble_detail::invert_xorshift_right(x, C::s2);
  x = static_cast<U>(std::uintmax_t{x} * C::m1_inv);
  x = scramble_detail::invert_xorshift_right(x, C::s1);
  x = static_cast<U>(x ^ static_cast<U>(seed));
  return static_cast<Key>(x);
}

/// Compare policy for the trees' comparator axis: strict weak order by
/// scrambled image. nm_tree<long, scramble_less<long>> stores real
/// keys but takes the shape of a random-insertion tree under any
/// client stream. Must not be sharded under a range router (see file
/// comment); scans yield scrambled order.
template <typename Key, typename Inner = std::less<Key>>
struct scramble_less {
  std::uint64_t seed = 0;
  Inner inner{};
  [[nodiscard]] constexpr bool operator()(const Key& a,
                                          const Key& b) const {
    return inner(scramble_key(a, seed), scramble_key(b, seed));
  }
};

/// Boundary adapter: an ordered set (nm_tree, kary_tree, a baseline,
/// or shard::sharded_set over any of them) whose *stored* keys are the
/// scrambled images of the client's keys. Point ops are one extra
/// multiply-xorshift round each way (<2 ns); the full metrics /
/// sharding / migration surface of the wrapped set is forwarded
/// unchanged so telemetry samplers, rebalancers and the server front
/// it transparently. Splitters, heatmaps and routers underneath the
/// adapter live in scrambled space by construction.
template <typename Set>
class scrambled_set {
 public:
  using key_type = typename Set::key_type;
  static_assert(std::is_integral_v<key_type>,
                "key scrambling is a fixed-width integer bijection");
  using inner_type = Set;

  static constexpr const char* algorithm_name = "Scrambled";

  scrambled_set() = default;
  explicit scrambled_set(std::uint64_t seed) : seed_(seed) {}
  /// Forwards trailing arguments to the wrapped set's constructor,
  /// e.g. scrambled_set<sharded_set<T>>(seed, Router(8)). The wrapped
  /// set must cover the full key domain: scrambled keys land anywhere.
  template <typename... Args>
  explicit scrambled_set(std::uint64_t seed, Args&&... args)
      : seed_(seed), inner_(std::forward<Args>(args)...) {}

  scrambled_set(const scrambled_set&) = delete;
  scrambled_set& operator=(const scrambled_set&) = delete;

  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }
  [[nodiscard]] Set& inner() noexcept { return inner_; }
  [[nodiscard]] const Set& inner() const noexcept { return inner_; }

  // --- point operations (hot path: one mix in, nothing out) ----------

  [[nodiscard]] bool contains(const key_type& key) const {
    return inner_.contains(s(key));
  }
  bool insert(const key_type& key) { return inner_.insert(s(key)); }
  bool erase(const key_type& key) { return inner_.erase(s(key)); }

  // --- batched operations (the server's coalesced path) --------------

  [[nodiscard]] std::vector<bool> contains_batch(
      const std::vector<key_type>& keys) const
    requires requires(const Set& t, const std::vector<key_type>& k) {
      t.contains_batch(k);
    }
  {
    return inner_.contains_batch(s_all(keys));
  }
  std::vector<bool> insert_batch(const std::vector<key_type>& keys)
    requires requires(Set& t, const std::vector<key_type>& k) {
      t.insert_batch(k);
    }
  {
    return inner_.insert_batch(s_all(keys));
  }
  std::vector<bool> erase_batch(const std::vector<key_type>& keys)
    requires requires(Set& t, const std::vector<key_type>& k) {
      t.erase_batch(k);
    }
  {
    return inner_.erase_batch(s_all(keys));
  }

  // --- scans: lowered, not forwarded ---------------------------------
  //
  // The bijection does not preserve key order, so an ordered scan of
  // [lo, hi) cannot be answered by a subrange walk underneath. It is
  // lowered to a *full* enumeration of the scrambled set (same
  // conservative-interval concurrency contract as the wrapped scan),
  // un-mixed, filtered and sorted: O(n + r·log r) per call instead of
  // O(r). Correct, concurrent-safe, and deliberately expensive —
  // docs/RESILIENCE.md spells out the contract; keep an unscrambled
  // set if cheap ordered scans matter more than shape resilience.

  [[nodiscard]] std::vector<key_type> range_scan(const key_type& lo,
                                                 const key_type& hi) const {
    std::vector<key_type> out;
    if (!(lo < hi)) return out;
    collect_filtered(lo, hi, /*closed=*/false, out);
    std::sort(out.begin(), out.end());
    return out;
  }

  [[nodiscard]] std::vector<key_type> range_scan_closed(
      const key_type& lo, const key_type& hi) const {
    std::vector<key_type> out;
    if (hi < lo) return out;
    collect_filtered(lo, hi, /*closed=*/true, out);
    std::sort(out.begin(), out.end());
    return out;
  }

  /// Mirrors shard::sharded_set::scan_page: when truncated, resume_key
  /// is the smallest key the page did not cover.
  struct scan_page {
    std::vector<key_type> keys;
    bool truncated = false;
    key_type resume_key{};
  };

  [[nodiscard]] scan_page range_scan_limit(const key_type& lo,
                                           const key_type& hi,
                                           std::size_t max_items) const {
    scan_page page;
    if (!(lo < hi)) return page;
    if (max_items == 0) {  // zero budget: pure continuation marker
      page.truncated = true;
      page.resume_key = lo;
      return page;
    }
    collect_filtered(lo, hi, /*closed=*/false, page.keys);
    std::sort(page.keys.begin(), page.keys.end());
    if (page.keys.size() > max_items) {
      page.keys.resize(max_items);
    }
    if (page.keys.size() == max_items && !page.keys.empty()) {
      const key_type last_key = page.keys.back();
      if (last_key < static_cast<key_type>(hi - 1)) {
        page.truncated = true;
        page.resume_key = static_cast<key_type>(last_key + 1);
      }
    }
    return page;
  }

  /// Visits every key (un-mixed) under the wrapped set's concurrent
  /// enumeration contract. Order is the *scrambled* order — i.e.
  /// unspecified from the client's point of view.
  template <typename F>
  void for_each(F&& fn) const
    requires requires(const Set& t) { t.for_each([](const key_type&) {}); }
  {
    inner_.for_each([&](const key_type& k) { fn(u(k)); });
  }

  // --- quiescent helpers ----------------------------------------------

  [[nodiscard]] std::size_t size_slow() const { return inner_.size_slow(); }
  [[nodiscard]] bool empty_slow() const { return inner_.empty_slow(); }

  template <typename F>
  void for_each_slow(F&& fn) const {
    inner_.for_each_slow([&](const key_type& k) { fn(u(k)); });
  }

  [[nodiscard]] std::string validate() const { return inner_.validate(); }

  [[nodiscard]] auto height_slow() const
    requires requires(const Set& t) { t.height_slow(); }
  {
    return inner_.height_slow();
  }

  // --- forwarded observability / sharding surface ---------------------
  //
  // Each member exists exactly when the wrapped set provides it, so
  // obs::sampler, shard::rebalancer and basic_server instantiate
  // against the adapter the same way they would against the set
  // itself. Splitter keys and heatmap buckets are in scrambled space.

  [[nodiscard]] auto& stats() const
    requires requires(const Set& t) { t.stats(); }
  {
    return inner_.stats();
  }

  [[nodiscard]] auto merged_counters() const
    requires requires(const Set& t) { t.merged_counters(); }
  {
    return inner_.merged_counters();
  }

  [[nodiscard]] auto shard_counters(std::size_t i) const
    requires requires(const Set& t) { t.shard_counters(0); }
  {
    return inner_.shard_counters(i);
  }

  template <typename F>
  void for_each_shard_stats(F&& fn) const
    requires requires(const Set& t) {
      t.for_each_shard_stats([](auto&) {});
    }
  {
    inner_.for_each_shard_stats(std::forward<F>(fn));
  }

  template <typename OpKind>
  [[nodiscard]] auto merged_latency_histogram(OpKind op) const
    requires requires(const Set& t, OpKind o) {
      t.merged_latency_histogram(o);
    }
  {
    return inner_.merged_latency_histogram(op);
  }

  [[nodiscard]] auto merged_seek_depth_histogram() const
    requires requires(const Set& t) { t.merged_seek_depth_histogram(); }
  {
    return inner_.merged_seek_depth_histogram();
  }

  template <typename Snap>
  void add_layer_counters(Snap& snap) const
    requires requires(const Set& t, Snap& s) { t.add_layer_counters(s); }
  {
    inner_.add_layer_counters(snap);
  }

  [[nodiscard]] std::size_t shard_count() const
    requires requires(const Set& t) { t.shard_count(); }
  {
    return inner_.shard_count();
  }

  [[nodiscard]] auto& shard(std::size_t i)
    requires requires(Set& t) { t.shard(0); }
  {
    return inner_.shard(i);
  }

  [[nodiscard]] int shard_numa_node(std::size_t i) const
    requires requires(const Set& t) { t.shard_numa_node(0); }
  {
    return inner_.shard_numa_node(i);
  }

  [[nodiscard]] auto& router() const
    requires requires(const Set& t) { t.router(); }
  {
    return inner_.router();
  }

  void arm_rebalancing() noexcept
    requires requires(Set& t) { t.arm_rebalancing(); }
  {
    inner_.arm_rebalancing();
  }

  [[nodiscard]] bool rebalancing_armed() const noexcept
    requires requires(const Set& t) { t.rebalancing_armed(); }
  {
    return inner_.rebalancing_armed();
  }

  /// Splitter coordinates are scrambled-space values: callers derive
  /// them from this set's own router/heatmap, never from client keys.
  std::size_t migrate_splitter(std::size_t boundary, key_type new_splitter)
    requires requires(Set& t, key_type k) { t.migrate_splitter(0, k); }
  {
    return inner_.migrate_splitter(boundary, new_splitter);
  }

  [[nodiscard]] std::uint64_t migration_count() const noexcept
    requires requires(const Set& t) { t.migration_count(); }
  {
    return inner_.migration_count();
  }

  [[nodiscard]] std::uint64_t keys_migrated() const noexcept
    requires requires(const Set& t) { t.keys_migrated(); }
  {
    return inner_.keys_migrated();
  }

  [[nodiscard]] std::uint64_t dual_route_window_ns() const noexcept
    requires requires(const Set& t) { t.dual_route_window_ns(); }
  {
    return inner_.dual_route_window_ns();
  }

 private:
  [[nodiscard]] key_type s(const key_type& k) const noexcept {
    return scramble_key(k, seed_);
  }
  [[nodiscard]] key_type u(const key_type& k) const noexcept {
    return unscramble_key(k, seed_);
  }
  [[nodiscard]] std::vector<key_type> s_all(
      const std::vector<key_type>& keys) const {
    std::vector<key_type> out;
    out.reserve(keys.size());
    for (const key_type& k : keys) out.push_back(s(k));
    return out;
  }

  /// Whole-domain enumeration via the wrapped set's concurrent closed
  /// scan, un-mixed and filtered to [lo, hi) / [lo, hi].
  void collect_filtered(const key_type& lo, const key_type& hi, bool closed,
                        std::vector<key_type>& out) const {
    const key_type dom_lo = std::numeric_limits<key_type>::min();
    const key_type dom_hi = std::numeric_limits<key_type>::max();
    for (const key_type& sk : inner_.range_scan_closed(dom_lo, dom_hi)) {
      const key_type k = u(sk);
      if (k < lo) continue;
      if (closed ? !(hi < k) : k < hi) out.push_back(k);
    }
  }

  std::uint64_t seed_ = 0;
  Set inner_;
};

}  // namespace lfbst
