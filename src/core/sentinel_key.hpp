// lfbst: sentinel-extended keys for external search trees.
//
// The NM-BST keeps three sentinel keys ∞₀ < ∞₁ < ∞₂ that are greater
// than every client key and never removed (paper §3.2.1, Figure 3); the
// EFRB baseline needs two (∞₁ < ∞₂). Reserving special values of the
// client key type would constrain Key to integers with spare range, so
// instead every node stores a `sentinel_key<Key>`: the client key plus a
// rank byte. Rank 0 is a client key; ranks 1–3 are ∞₀, ∞₁, ∞₂. The
// comparator orders by rank first (all sentinels above all client keys,
// ordered among themselves by rank) and falls back to the client
// comparator inside rank 0 — one predictable branch on the hot path.
#pragma once

#include <cstdint>
#include <utility>

namespace lfbst {

template <typename Key>
struct sentinel_key {
  Key key{};          // meaningful only when rank == 0
  std::int8_t rank = 0;

  sentinel_key() = default;
  explicit sentinel_key(Key k) : key(std::move(k)), rank(0) {}

  static sentinel_key inf0() { return make_sentinel(1); }
  static sentinel_key inf1() { return make_sentinel(2); }
  static sentinel_key inf2() { return make_sentinel(3); }
  /// Below every client key (used by internal-tree baselines whose root
  /// sentinel anchors the structure from below).
  static sentinel_key neg_inf() { return make_sentinel(-1); }

  [[nodiscard]] bool is_sentinel() const noexcept { return rank != 0; }

 private:
  static sentinel_key make_sentinel(std::int8_t r) {
    sentinel_key s;
    s.rank = r;
    return s;
  }
};

/// Strict weak order over sentinel-extended keys, parameterized by the
/// client comparator. Stateless when Compare is stateless.
template <typename Key, typename Compare>
struct sentinel_less {
  [[no_unique_address]] Compare cmp{};

  bool operator()(const sentinel_key<Key>& a,
                  const sentinel_key<Key>& b) const {
    if (a.rank != b.rank) return a.rank < b.rank;
    if (a.rank != 0) return false;  // equal sentinels
    return cmp(a.key, b.key);
  }

  /// Client key vs stored key — the common traversal comparison; avoids
  /// materializing a sentinel_key per step.
  bool operator()(const Key& a, const sentinel_key<Key>& b) const {
    if (b.rank != 0) return b.rank > 0;  // below +∞ ranks, above -∞
    return cmp(a, b.key);
  }

  /// Stored key vs client key (the mirror of the above).
  bool operator()(const sentinel_key<Key>& a, const Key& b) const {
    if (a.rank != 0) return a.rank < 0;  // -∞ below all; +∞ below none
    return cmp(a.key, b);
  }

  /// Equality in terms of the strict order (used for hit tests).
  bool equal(const Key& a, const sentinel_key<Key>& b) const {
    return b.rank == 0 && !cmp(a, b.key) && !cmp(b.key, a);
  }
};

}  // namespace lfbst
