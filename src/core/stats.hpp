// lfbst: operation-cost instrumentation policies.
//
// Table 1 of the paper compares the lock-free algorithms by two static
// costs: objects allocated per modify operation and atomic instructions
// (CAS/BTS) executed per modify operation, in the absence of contention.
// Every tree in this repo is templated on a Stats policy so the same
// source reproduces that table:
//
//   * stats::none     — all hooks are empty inline functions; the
//                       optimizer erases them. Default for benchmarks.
//   * stats::counting — thread-local tallies of allocations, CAS, BTS,
//                       seek restarts and help calls. Used by
//                       bench_table1 and by the unit tests that pin the
//                       exact uncontended instruction counts.
//
// The counting policy's counters are thread-local and *global to the
// policy*, not per tree instance: bench_table1 and the tests run one
// instrumented tree at a time, which keeps the hooks to a single
// thread-local increment.
#pragma once

#include <cstdint>

namespace lfbst::stats {

struct op_record {
  std::uint64_t objects_allocated = 0;
  std::uint64_t cas_executed = 0;   // successful or failed, both count
  std::uint64_t bts_executed = 0;
  std::uint64_t seek_restarts = 0;  // re-seeks after a failed CAS
  std::uint64_t helps = 0;          // cleanup invocations on behalf of others

  [[nodiscard]] std::uint64_t atomics() const noexcept {
    return cas_executed + bts_executed;
  }

  op_record& operator-=(const op_record& o) noexcept {
    objects_allocated -= o.objects_allocated;
    cas_executed -= o.cas_executed;
    bts_executed -= o.bts_executed;
    seek_restarts -= o.seek_restarts;
    helps -= o.helps;
    return *this;
  }
};

/// Zero-cost policy: every hook is an empty constexpr-inlinable no-op.
struct none {
  static constexpr bool enabled = false;
  static void on_alloc(std::uint64_t = 1) noexcept {}
  static void on_cas() noexcept {}
  static void on_bts() noexcept {}
  static void on_seek_restart() noexcept {}
  static void on_help() noexcept {}
};

/// Thread-local counting policy.
struct counting {
  static constexpr bool enabled = true;

  static op_record& local() noexcept {
    thread_local op_record rec;
    return rec;
  }

  static void on_alloc(std::uint64_t n = 1) noexcept {
    local().objects_allocated += n;
  }
  static void on_cas() noexcept { ++local().cas_executed; }
  static void on_bts() noexcept { ++local().bts_executed; }
  static void on_seek_restart() noexcept { ++local().seek_restarts; }
  static void on_help() noexcept { ++local().helps; }

  static void reset() noexcept { local() = op_record{}; }

  /// Snapshot-and-subtract helper: capture before an operation, call
  /// delta() after, get the operation's own costs.
  static op_record snapshot() noexcept { return local(); }
  static op_record delta(const op_record& before) noexcept {
    op_record d = local();
    d -= before;
    return d;
  }
};

}  // namespace lfbst::stats
