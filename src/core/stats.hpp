// lfbst: operation-cost instrumentation policies.
//
// Table 1 of the paper compares the lock-free algorithms by two static
// costs: objects allocated per modify operation and atomic instructions
// (CAS/BTS) executed per modify operation, in the absence of contention.
// Every tree in this repo is templated on a Stats policy so the same
// source reproduces that table:
//
//   * stats::none     — all hooks are empty inline functions; the
//                       optimizer erases them. Default for benchmarks.
//   * stats::counting — thread-local tallies of allocations, CAS, BTS,
//                       seek restarts and help calls. Used by
//                       bench_table1 and by the unit tests that pin the
//                       exact uncontended instruction counts.
//   * obs::recording  — (src/obs/metrics.hpp) per-tree-instance striped
//                       counters plus latency/seek-depth histograms and
//                       optional event tracing. Unlike counting, two
//                       recording trees can be instrumented at once.
//
// The counting policy's counters are thread-local and *global to the
// policy*, not per tree instance: bench_table1 and the tests run one
// instrumented tree at a time, which keeps the hooks to a single
// thread-local increment. Per-instance attribution is exactly what
// obs::recording adds.
//
// Hooks are invoked through a (possibly empty) policy *instance* held by
// the tree (`stats_.on_cas()`), so policies may carry per-instance
// state; none and counting keep static hooks, which instance syntax
// calls just as well. The `enabled` flag gates work that only exists to
// feed the hooks (seek-depth counting, excision sizing) behind
// `if constexpr`, preserving the zero-overhead default.
#pragma once

#include <cstdint>

namespace lfbst::stats {

/// Operation classes for the op_begin/op_end hooks and the harness
/// observer. Values are stable: they appear in trace events and JSON.
enum class op_kind : std::uint16_t { search = 0, insert = 1, erase = 2 };

[[nodiscard]] inline const char* op_kind_name(op_kind k) noexcept {
  switch (k) {
    case op_kind::search: return "search";
    case op_kind::insert: return "insert";
    case op_kind::erase: return "erase";
  }
  return "op";
}

/// What kind of marked edge a helping operation ran cleanup for. In the
/// NM tree a failed injection CAS observes either a *flagged* edge (a
/// delete owns the leaf we wanted to modify) or a *tagged* edge (a
/// delete owns the sibling; our parent is leaving the tree) — the paper
/// attributes different contention behavior to the two cases.
enum class help_kind : std::uint16_t {
  flagged_edge = 0,
  tagged_edge = 1,
  unattributed = 2,  // baselines whose helping is not edge-marked
};

/// Why a modify operation had to re-seek. The NM tree attributes every
/// restart; baselines keep using the unattributed on_seek_restart()
/// overload, which only bumps the lumped total.
enum class restart_kind : std::uint16_t {
  injection_fail = 0,  // an injection CAS (insert, or erase's flag) lost
  cleanup_mode = 1,    // erase's cleanup phase must retry its removal
};

struct op_record {
  std::uint64_t objects_allocated = 0;
  std::uint64_t cas_executed = 0;   // successful or failed, both count
  std::uint64_t cas_failed = 0;     // the subset that lost a race
  std::uint64_t bts_executed = 0;
  std::uint64_t seek_restarts = 0;  // re-seeks after a failed CAS
  // Attribution of seek_restarts by cause (NM only; for the baselines'
  // unattributed restarts the split stays zero):
  std::uint64_t restarts_injection_fail = 0;  // a lost injection CAS
  std::uint64_t restarts_cleanup_mode = 0;    // erase cleanup retrying
  // Attribution of how the retry seek ran (restart::from_anchor only;
  // zero under restart::from_root, whose retries are root seeks by
  // policy rather than by fallback):
  std::uint64_t seek_resumes_local = 0;     // anchor held: resumed there
  std::uint64_t seek_anchor_fallbacks = 0;  // anchor lost: root fallback
  std::uint64_t helps = 0;          // cleanup invocations on behalf of others
  std::uint64_t helps_flagged = 0;  // ... for a flagged edge (leaf leaving)
  std::uint64_t helps_tagged = 0;   // ... for a tagged edge (parent leaving)
  // Ordered-scan attribution (range_scan / for_each). Scans are not a
  // new op_kind — op_kind values are stable in traces and JSON — so they
  // get their own columns instead.
  std::uint64_t scans = 0;              // completed range_scan/for_each calls
  std::uint64_t scan_keys_visited = 0;  // keys emitted across all scans
  std::uint64_t scan_restarts = 0;      // validation-failure re-descents

  [[nodiscard]] std::uint64_t atomics() const noexcept {
    return cas_executed + bts_executed;
  }

  op_record& operator-=(const op_record& o) noexcept {
    objects_allocated -= o.objects_allocated;
    cas_executed -= o.cas_executed;
    cas_failed -= o.cas_failed;
    bts_executed -= o.bts_executed;
    seek_restarts -= o.seek_restarts;
    restarts_injection_fail -= o.restarts_injection_fail;
    restarts_cleanup_mode -= o.restarts_cleanup_mode;
    seek_resumes_local -= o.seek_resumes_local;
    seek_anchor_fallbacks -= o.seek_anchor_fallbacks;
    helps -= o.helps;
    helps_flagged -= o.helps_flagged;
    helps_tagged -= o.helps_tagged;
    scans -= o.scans;
    scan_keys_visited -= o.scan_keys_visited;
    scan_restarts -= o.scan_restarts;
    return *this;
  }
};

/// Zero-cost policy: every hook is an empty constexpr-inlinable no-op.
struct none {
  static constexpr bool enabled = false;
  static void on_alloc(std::uint64_t = 1) noexcept {}
  static void on_cas() noexcept {}
  static void on_cas_fail() noexcept {}
  static void on_bts() noexcept {}
  static void on_seek_restart() noexcept {}
  static void on_seek_restart(restart_kind) noexcept {}
  static void on_seek_resume_local() noexcept {}
  static void on_seek_anchor_fallback() noexcept {}
  static void on_help() noexcept {}
  static void on_help(help_kind) noexcept {}
  static void on_cleanup() noexcept {}
  static void on_excision(std::uint64_t) noexcept {}
  static void on_op_begin(op_kind) noexcept {}
  static void on_op_end(op_kind, bool) noexcept {}
  static void on_op_key(op_kind, std::int64_t) noexcept {}
  static void on_seek(std::uint64_t) noexcept {}
  static void on_scan_op(std::uint64_t) noexcept {}
  static void on_scan_restart() noexcept {}
};

/// Thread-local counting policy.
struct counting {
  static constexpr bool enabled = true;

  static op_record& local() noexcept {
    thread_local op_record rec;
    return rec;
  }

  static void on_alloc(std::uint64_t n = 1) noexcept {
    local().objects_allocated += n;
  }
  static void on_cas() noexcept { ++local().cas_executed; }
  static void on_cas_fail() noexcept { ++local().cas_failed; }
  static void on_bts() noexcept { ++local().bts_executed; }
  static void on_seek_restart() noexcept { ++local().seek_restarts; }
  static void on_seek_restart(restart_kind kind) noexcept {
    op_record& r = local();
    ++r.seek_restarts;
    if (kind == restart_kind::injection_fail) ++r.restarts_injection_fail;
    if (kind == restart_kind::cleanup_mode) ++r.restarts_cleanup_mode;
  }
  static void on_seek_resume_local() noexcept {
    ++local().seek_resumes_local;
  }
  static void on_seek_anchor_fallback() noexcept {
    ++local().seek_anchor_fallbacks;
  }
  static void on_help() noexcept { ++local().helps; }
  static void on_help(help_kind kind) noexcept {
    op_record& r = local();
    ++r.helps;
    if (kind == help_kind::flagged_edge) ++r.helps_flagged;
    if (kind == help_kind::tagged_edge) ++r.helps_tagged;
  }
  // Structural hooks the Table-1 accounting does not need: no-ops so the
  // pinned uncontended counts stay exactly the paper's.
  static void on_cleanup() noexcept {}
  static void on_excision(std::uint64_t) noexcept {}
  static void on_op_begin(op_kind) noexcept {}
  static void on_op_end(op_kind, bool) noexcept {}
  static void on_op_key(op_kind, std::int64_t) noexcept {}
  static void on_seek(std::uint64_t) noexcept {}
  static void on_scan_op(std::uint64_t keys_visited) noexcept {
    op_record& r = local();
    ++r.scans;
    r.scan_keys_visited += keys_visited;
  }
  static void on_scan_restart() noexcept { ++local().scan_restarts; }

  static void reset() noexcept { local() = op_record{}; }

  /// Snapshot-and-subtract helper: capture before an operation, call
  /// delta() after, get the operation's own costs.
  static op_record snapshot() noexcept { return local(); }
  static op_record delta(const op_record& before) noexcept {
    op_record d = local();
    d -= before;
    return d;
  }
};

}  // namespace lfbst::stats
