// lfbst: the paper's contribution — a lock-free external binary search
// tree coordinated by edge marking (Natarajan & Mittal, PPoPP 2014).
//
// Shape: an *external* (leaf-oriented) BST. Client keys live only in
// leaves; internal nodes hold routing keys and always have exactly two
// children. Three sentinel keys ∞₀ < ∞₁ < ∞₂ (greater than all client
// keys) anchor the structure so every access path has a parent and a
// grandparent (paper Fig. 3): the root ℝ (key ∞₂) with right child
// leaf(∞₂), ℝ's left child 𝕊 (key ∞₁) with right child leaf(∞₁), and
// 𝕊's left child leaf(∞₀). All client activity happens in 𝕊's left
// subtree; ℝ and 𝕊 and the three sentinel leaves are never removed and
// their edges toward other sentinels are never marked.
//
// Coordination: a delete owns *edges*, not nodes. Each child word
// carries two stolen bits (common/tagged_word.hpp):
//   flag — head (a leaf) and tail both leave the tree,
//   tag  — only the tail leaves the tree.
// Marked words are frozen: their address part never changes again.
//
// Operations (paper §3.1–§3.2, Algorithms 1–4):
//   search: one seek, no atomics.
//   insert: seek; one CAS swings parent's child from the leaf to a new
//           internal node with {new leaf, old leaf} as children. On CAS
//           failure against a marked edge, help the conflicting delete
//           by running cleanup(), then re-seek.
//   delete: *injection* — CAS the flag bit onto the parent→leaf edge
//           (one CAS; after it succeeds the operation cannot be
//           aborted); *cleanup* — tag the sibling edge (BTS) and CAS the
//           ancestor's child from the successor to the flagged leaf's
//           sibling, copying the sibling edge's flag bit. Cleanup
//           re-seeks and retries until the leaf is out of the tree; one
//           ancestor CAS may excise a whole chain of logically deleted
//           nodes at once (multi-leaf removal, Fig. 2).
//
// Progress: lock-free (§3.3). Safety: linearizable; linearization points
// are the successful injection/removal CASes and, for searches, the end
// of the seek phase (hit) or points derived from overlapping deletes
// (miss) — see the paper's proof sketch, reproduced in tests by the
// lincheck suite.
//
// Template policies:
//   Key       — client key type. Must be copyable and, under the leaky
//               reclaimer, trivially destructible.
//   Compare   — strict weak order over Key.
//   Reclaimer — reclaim::leaky (paper regime, default) or reclaim::epoch.
//   Stats     — stats::none (default), stats::counting (Table 1) or
//               obs::recording (per-instance counters, latency/seek
//               histograms, event tracing — src/obs/).
//   Tagging   — tag_policy::bts (default) or tag_policy::cas_only.
//   Payload   — void (default: a set) or a mapped value type (a map —
//               see core/nm_map.hpp). With a payload, leaves carry the
//               value and three extra operations appear: get(),
//               insert(key, value), and insert_or_assign(), the last
//               implementing the paper's §6 "replace" direction as a
//               single CAS that swings the parent edge from the old
//               leaf to a fresh (key, new value) leaf.
//   Atomics   — atomics::native (default: raw std::atomic, zero
//               overhead) or dsched::sched_atomics, which interposes a
//               schedule point before every shared-memory step so the
//               deterministic scheduler (src/dsched/) can explore
//               interleavings of the flag/tag/CAS protocol.
//   Restart   — restart::from_anchor (default: retries re-validate the
//               recorded (ancestor → successor) edge and resume the
//               descent there — the full paper's local restart) or
//               restart::from_root (the conference paper's root-seek
//               retries; ablation/dsched reference). See
//               core/restart_policy.hpp and docs/PERF.md.
//
// Retry-path contention management (docs/PERF.md): with the native
// atomics policy, failed injection/cleanup CASes are followed by a
// bounded exponential backoff (common/backoff.hpp) before the re-seek,
// and descents issue a software prefetch for each just-loaded child
// (common/prefetch.hpp). Both are disabled under dsched::sched_atomics
// — the scheduler owns all timing there, and spinning between schedule
// points would only slow exploration without adding interleavings.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <new>
#include <optional>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "alloc/node_pool.hpp"
#include "common/assert.hpp"
#include "common/backoff.hpp"
#include "common/prefetch.hpp"
#include "common/tagged_word.hpp"
#include "core/restart_policy.hpp"
#include "core/sentinel_key.hpp"
#include "core/stats.hpp"
#include "core/tag_policy.hpp"
#include "reclaim/epoch.hpp"
#include "reclaim/leaky.hpp"

namespace lfbst {

struct nm_tree_test_access;  // white-box hooks for the test suite

template <typename Key, typename Compare = std::less<Key>,
          typename Reclaimer = reclaim::leaky, typename Stats = stats::none,
          typename Tagging = tag_policy::bts, typename Payload = void,
          typename Atomics = atomics::native,
          typename Restart = restart::from_anchor>
class nm_tree {
  static constexpr bool is_map = !std::is_void_v<Payload>;
  // Contention management engages only under real concurrency: with
  // dsched's interposed atomics the scheduler serializes every shared
  // step, so spinning between them is pure waste.
  static constexpr bool use_backoff = std::is_same_v<Atomics, atomics::native>;
  struct empty_payload {};
  /// What a leaf actually stores: nothing for a set, the value for a map.
  using payload_t = std::conditional_t<is_map, Payload, empty_payload>;

  static_assert(Reclaimer::reclaims_eagerly ||
                    (std::is_trivially_destructible_v<Key> &&
                     std::is_trivially_destructible_v<payload_t>),
                "the leaky reclaimer never runs destructors of unreachable "
                "nodes (paper regime); use reclaim::epoch for keys or "
                "values that own resources");

 public:
  using key_type = Key;
  using mapped_type = Payload;  // void for sets
  using key_compare = Compare;
  using stats_policy = Stats;
  using reclaimer_type = Reclaimer;
  using restart_policy = Restart;
  using atomics_policy = Atomics;

  static constexpr const char* algorithm_name = "NM-BST";

  nm_tree() : pool_(sizeof(node)) {
    // Build the empty tree of Figure 3.
    node* leaf_inf0 = make_leaf(skey::inf0());
    node* leaf_inf1 = make_leaf(skey::inf1());
    node* leaf_inf2 = make_leaf(skey::inf2());
    s_ = make_internal(skey::inf1(), leaf_inf0, leaf_inf1);
    r_ = make_internal(skey::inf2(), s_, leaf_inf2);
  }

  nm_tree(const nm_tree&) = delete;
  nm_tree& operator=(const nm_tree&) = delete;

  ~nm_tree() {
    destroy_reachable(r_);
    reclaimer_.drain_all_unsafe();
    // pool_ releases all slabs on destruction.
  }

  /// True iff `key` is in the set. Wait-free given a quiescent tree;
  /// lock-free in general. Executes zero atomic RMWs (paper §3.2.2).
  [[nodiscard]] bool contains(const Key& key) const {
    stats_.on_op_begin(stats::op_kind::search);
    note_key(stats::op_kind::search, key);
    bool found;
    {
      [[maybe_unused]] auto guard = reclaimer_.pin();
      seek_record sr;
      seek(key, sr);
      found = less_.equal(key, sr.leaf->key);
    }
    stats_.on_op_end(stats::op_kind::search, found);
    return found;
  }

  /// Adds `key`; returns true iff the set changed (paper §3.2.3,
  /// Alg. 2). Uncontended cost: one CAS, two allocations (Table 1).
  /// For maps, the mapped value is default-constructed.
  bool insert(const Key& key) {
    stats_.on_op_begin(stats::op_kind::insert);
    note_key(stats::op_kind::insert, key);
    const bool inserted =
        insert_impl(key, payload_t{}, /*assign_if_present=*/false);
    stats_.on_op_end(stats::op_kind::insert, inserted);
    return inserted;
  }

  // ------------------------------------------------------------------
  // Map operations — available only when a Payload type is given
  // (core/nm_map.hpp). Leaves are immutable once published, so a value
  // read never races a value write; assignment replaces the whole leaf
  // with one CAS.
  // ------------------------------------------------------------------

  /// Adds (key, value); returns true iff the key was absent. An existing
  /// key keeps its old value (like std::map::insert).
  bool insert(const Key& key, const payload_t& value)
    requires is_map
  {
    stats_.on_op_begin(stats::op_kind::insert);
    note_key(stats::op_kind::insert, key);
    const bool inserted =
        insert_impl(key, value, /*assign_if_present=*/false);
    stats_.on_op_end(stats::op_kind::insert, inserted);
    return inserted;
  }

  /// Adds (key, value) or replaces the value of an existing key; returns
  /// true iff the key was inserted (like std::map::insert_or_assign).
  /// The replace path is one CAS swinging the parent edge to a fresh
  /// leaf — the §6 "replace" operation, coordinated with concurrent
  /// deletes by the same marked-edge protocol as inserts.
  bool insert_or_assign(const Key& key, const payload_t& value)
    requires is_map
  {
    stats_.on_op_begin(stats::op_kind::insert);
    note_key(stats::op_kind::insert, key);
    const bool inserted = insert_impl(key, value, /*assign_if_present=*/true);
    stats_.on_op_end(stats::op_kind::insert, inserted);
    return inserted;
  }

  /// The value mapped to `key`, or nullopt. Linearizes at the end of the
  /// seek phase (hit) exactly like contains().
  [[nodiscard]] std::optional<payload_t> get(const Key& key) const
    requires is_map
  {
    stats_.on_op_begin(stats::op_kind::search);
    note_key(stats::op_kind::search, key);
    std::optional<payload_t> result;
    {
      [[maybe_unused]] auto guard = reclaimer_.pin();
      seek_record sr;
      seek(key, sr);
      if (less_.equal(key, sr.leaf->key)) {
        result = sr.leaf->payload;  // leaves are immutable: safe to copy out
      }
    }
    stats_.on_op_end(stats::op_kind::search, result.has_value());
    return result;
  }

  /// Quiescent in-order walk over (key, value) pairs.
  template <typename F>
  void for_each_item_slow(F&& fn) const
    requires is_map
  {
    walk_leaves(r_, [&](const node* leaf) {
      if (!leaf->key.is_sentinel()) fn(leaf->key.key, leaf->payload);
    });
  }

  /// Removes `key`; returns true iff the set changed (paper §3.2.4,
  /// Alg. 3). Uncontended cost: three atomics (flag CAS, sibling BTS,
  /// ancestor CAS), zero allocations (Table 1).
  bool erase(const Key& key) {
    stats_.on_op_begin(stats::op_kind::erase);
    note_key(stats::op_kind::erase, key);
    const bool erased = erase_impl(key);
    stats_.on_op_end(stats::op_kind::erase, erased);
    return erased;
  }

  // ----------------------------------------------------------------
  // Concurrent ordered scans. Unlike the *_slow observers below these
  // are safe while writers run: the traversal is reclaimer-protected
  // (pinned under epoch/leaky; hazard-validated under reclaim::hazard)
  // and follows frozen marked edges, which by the paper's invariant
  // ("once an edge has been marked, it cannot be changed") still lead
  // to every node that was reachable when the edge froze — so a scan
  // never observes a torn excision.
  //
  // Guarantee (the conservative-interval contract; DESIGN.md): the
  // result is sorted and duplicate-free; every key present for the
  // scan's whole duration appears; every key absent throughout does
  // not. A key inserted or erased concurrently may or may not appear —
  // each emitted (or skipped) key behaves like an individual
  // contains() linearized somewhere inside the scan's interval, not
  // like one atomic snapshot.
  // ----------------------------------------------------------------

  /// Keys in the half-open interval [lo, hi), ascending. Empty when
  /// lo >= hi.
  [[nodiscard]] std::vector<Key> range_scan(const Key& lo,
                                            const Key& hi) const {
    std::vector<Key> out;
    if (!less_.cmp(lo, hi)) return out;
    scan_impl(&lo, &hi, /*closed=*/false,
              [&out](const Key& k) { out.push_back(k); });
    return out;
  }

  /// Keys in the closed interval [lo, hi], ascending — reaches the key
  /// domain's maximum value, which no half-open interval can name.
  [[nodiscard]] std::vector<Key> range_scan_closed(const Key& lo,
                                                   const Key& hi) const {
    std::vector<Key> out;
    if (less_.cmp(hi, lo)) return out;
    scan_impl(&lo, &hi, /*closed=*/true,
              [&out](const Key& k) { out.push_back(k); });
    return out;
  }

  /// Bounded form: the up-to-max_items *smallest* keys of [lo, hi),
  /// ascending, under the same conservative-interval contract. The scan
  /// stops walking as soon as the budget fills — a page over a huge
  /// subrange costs O(page), not O(range) (modulo the pruned descent to
  /// lo). Exactly max_items results does not by itself imply more keys
  /// remain; callers that page treat a full page as "maybe more" and
  /// resume above the last key (shard::sharded_set::range_scan_limit).
  [[nodiscard]] std::vector<Key> range_scan(const Key& lo, const Key& hi,
                                            std::size_t max_items) const {
    std::vector<Key> out;
    if (max_items == 0 || !less_.cmp(lo, hi)) return out;
    scan_impl_until(&lo, &hi, /*closed=*/false, [&](const Key& k) {
      out.push_back(k);
      return out.size() < max_items;
    });
    return out;
  }

  /// Concurrent whole-tree ordered visit: fn(key) for every key in
  /// ascending order, under the same contract as range_scan.
  template <typename F>
  void for_each(F&& fn) const {
    scan_impl(nullptr, nullptr, /*closed=*/false, std::forward<F>(fn));
  }

  // ----------------------------------------------------------------
  // Quiescent observers — valid only while no concurrent operations
  // run. Tests and examples use these; they are not part of the
  // concurrent API.
  // ----------------------------------------------------------------

  /// Number of client keys. O(n) walk.
  [[nodiscard]] std::size_t size_slow() const {
    std::size_t n = 0;
    for_each_slow([&n](const Key&) { ++n; });
    return n;
  }

  [[nodiscard]] bool empty_slow() const { return size_slow() == 0; }

  /// In-order traversal over client keys.
  template <typename F>
  void for_each_slow(F&& fn) const {
    walk_leaves(r_, [&](const node* leaf) {
      if (!leaf->key.is_sentinel()) fn(leaf->key.key);
    });
  }

  /// Structural invariant check (quiescent): external shape, key order,
  /// sentinel anchoring, and — since every completed delete physically
  /// removes its marks from the reachable tree — no reachable marked
  /// edges. Returns an empty string when healthy, else a diagnostic.
  [[nodiscard]] std::string validate() const {
    std::string err;
    // Sentinel anchoring (Fig. 3).
    if (r_->key.rank != 3) err += "root key is not inf2; ";
    if (s_ != r_->left.load().address()) err += "S is not R.left; ";
    const node* r_right = r_->right.load().address();
    if (r_right == nullptr || r_right->key.rank != 3) {
      err += "R.right is not leaf(inf2); ";
    }
    const node* s_right = s_->right.load().address();
    if (s_right == nullptr || s_right->key.rank != 2) {
      err += "S.right is not leaf(inf1); ";
    }
    validate_subtree(r_, /*low=*/nullptr, /*high=*/nullptr, err);
    return err;
  }

  /// Depth of the deepest leaf (diagnostics).
  [[nodiscard]] std::size_t height_slow() const { return height_of(r_); }

  /// Bytes currently held by the node pool (includes unreclaimed nodes —
  /// under the leaky policy this is the paper's memory regime).
  [[nodiscard]] std::size_t footprint_bytes() const {
    return pool_.footprint_bytes();
  }

  /// Retired-but-unreclaimed node count of the reclaimer (0 for leaky).
  [[nodiscard]] std::size_t reclaimer_pending() const {
    return reclaimer_.pending();
  }

  /// The Stats policy instance this tree reports into. Stateless for
  /// none/counting; obs::recording exposes per-instance counters,
  /// latency/seek-depth histograms and trace attachment through here.
  [[nodiscard]] Stats& stats() const noexcept { return stats_; }

 private:
  friend struct nm_tree_test_access;

  using skey = sentinel_key<Key>;

  struct node {
    skey key;
    // Empty for sets ([[no_unique_address]] erases the member); the
    // mapped value for maps, set at construction and immutable while the
    // leaf is published.
    [[no_unique_address]] payload_t payload;
    tagged_word<node, Atomics> left;
    tagged_word<node, Atomics> right;
  };
  using ptr_t = tagged_ptr<node>;
  using word_t = tagged_word<node, Atomics>;

  static_assert(alignof(node) >= 4,
                "node must be 4-byte aligned to steal two pointer bits");

  /// The seek record of Alg. 1: the last two nodes of the access path
  /// plus the tail (ancestor) and head (successor) of the last untagged
  /// edge before the parent (Fig. 2).
  struct seek_record {
    node* ancestor = nullptr;
    node* successor = nullptr;
    node* parent = nullptr;
    node* leaf = nullptr;
    // Root-relative depth of the (ancestor → successor) edge: the value
    // the descent's depth counter held when `successor` was recorded.
    // A from_anchor resume seeds its counter from this so seek_depth
    // histograms report the depth actually traversed from the root,
    // not just the tail walked below the anchor. Maintained only when
    // Stats::enabled (it feeds nothing else).
    std::uint64_t anchor_depth = 0;
  };

  // --- the operation bodies ----------------------------------------------

  /// Alg. 3. The public erase() wraps this with the op begin/end hooks.
  bool erase_impl(const Key& key) {
    [[maybe_unused]] auto guard = reclaimer_.pin();
    seek_record sr;
    bool injected = false;  // INJECTION vs CLEANUP mode
    node* leaf = nullptr;   // the leaf we flagged, once injected
    [[maybe_unused]] backoff delay;
    seek(key, sr);
    for (;;) {
      if (!injected) {
        // --- injection mode ---
        leaf = sr.leaf;
        if (!less_.equal(key, leaf->key)) return false;  // key absent
        node* parent = sr.parent;
        word_t& child_field = child_field_for(parent, key);
        ptr_t expected = ptr_t::clean(leaf);
        stats_.on_cas();
        if (child_field.compare_exchange(
                expected, expected.with_marks(/*flagged=*/true,
                                              /*tagged=*/false))) {
          // Flag planted (Alg. 3 line 73): from here the delete is
          // guaranteed to complete; switch to cleanup mode.
          injected = true;
          if constexpr (Reclaimer::requires_validated_traversal) {
            // Keep the flagged leaf protected across the cleanup-mode
            // re-seeks: the `sr.leaf != leaf` identity test below must
            // not be spoofed by a freed-and-recycled address.
            reclaimer_.domain().announce(Reclaimer::hp_flagged, leaf);
          }
          if (cleanup(key, sr)) return true;
          // Our own first cleanup lost its ancestor CAS: a cleanup-mode
          // retry, exactly like the ones below.
          stats_.on_seek_restart(stats::restart_kind::cleanup_mode);
        } else {
          stats_.on_cas_fail();
          // Injection failed; help the owning delete if the edge still
          // addresses our leaf and is marked (Alg. 3 lines 79-81).
          if (expected.address() == leaf && expected.marked()) {
            stats_.on_help(help_kind_of(expected));
            cleanup(key, sr);
          }
          stats_.on_seek_restart(stats::restart_kind::injection_fail);
        }
      } else {
        // --- cleanup mode (Alg. 3 lines 82-87) ---
        if (sr.leaf != leaf) return true;  // someone removed it for us
        if (cleanup(key, sr)) return true;
        stats_.on_seek_restart(stats::restart_kind::cleanup_mode);
      }
      // Every path here lost a CAS race: yield briefly (the winner
      // finishes faster, our next attempt is likelier to succeed), then
      // re-seek under the Restart policy.
      if constexpr (use_backoff) delay();
      seek_retry(key, sr);
    }
  }

  /// A marked edge we failed a CAS against tells us which kind of delete
  /// we are about to help: flagged — the leaf itself leaves; tagged — the
  /// parent leaves (its sibling edge carries the tag).
  static stats::help_kind help_kind_of(ptr_t observed) noexcept {
    return observed.flagged() ? stats::help_kind::flagged_edge
                              : stats::help_kind::tagged_edge;
  }

  // --- the shared insert/assign machinery --------------------------------

  /// Alg. 2 extended with the map replace path. Returns true iff the key
  /// was newly inserted; with assign_if_present, an existing key's leaf
  /// is replaced by a fresh (key, value) leaf via one CAS and false is
  /// returned.
  bool insert_impl(const Key& key, payload_t value, bool assign_if_present) {
    [[maybe_unused]] auto guard = reclaimer_.pin();
    seek_record sr;
    node* new_leaf = nullptr;      // scratch nodes, reused across retries;
    node* new_internal = nullptr;  // never published until a CAS wins
    [[maybe_unused]] backoff delay;
    seek(key, sr);
    for (;;) {
      node* parent = sr.parent;
      node* leaf = sr.leaf;
      if (less_.equal(key, leaf->key)) {
        if (!assign_if_present) {
          // Key already present. Return any speculatively allocated
          // nodes (never published, so the pool reuses them directly).
          if (new_leaf != nullptr) destroy_node(new_leaf);
          if (new_internal != nullptr) destroy_node(new_internal);
          return false;
        }
        // Replace path: swing the parent's edge from the old leaf to a
        // fresh leaf carrying the new value. A delete that flagged the
        // edge first wins (our CAS fails and we help); if we win, the
        // old leaf is unreachable and we are its only retirer.
        if (new_leaf == nullptr) new_leaf = make_leaf(skey(key), value);
        word_t& child_field = child_field_for(parent, key);
        ptr_t expected = ptr_t::clean(leaf);
        stats_.on_cas();
        if (child_field.compare_exchange(expected, ptr_t::clean(new_leaf))) {
          if constexpr (Reclaimer::reclaims_eagerly) {
            reclaimer_.retire(leaf, &node_deleter, &pool_);
          }
          if (new_internal != nullptr) destroy_node(new_internal);
          return false;  // assigned, not inserted
        }
        stats_.on_cas_fail();
        if (expected.address() == leaf && expected.marked()) {
          stats_.on_help(help_kind_of(expected));
          cleanup(key, sr);
        }
        stats_.on_seek_restart(stats::restart_kind::injection_fail);
        if constexpr (use_backoff) delay();
        seek_retry(key, sr);
        continue;
      }

      word_t& child_field = child_field_for(parent, key);
      if (new_leaf == nullptr) {
        new_leaf = make_leaf(skey(key), value);
      }
      if (new_internal == nullptr) {
        new_internal = make_internal(skey{}, nullptr, nullptr);
      }
      // (Re)wire the unpublished internal node for this attempt:
      // key field = max(key, leaf->key); the new leaf sits on the side
      // its key belongs, the existing leaf on the other (paper §3.2.3).
      if (less_(key, leaf->key)) {
        new_internal->key = leaf->key;
        new_internal->left.store_relaxed(ptr_t::clean(new_leaf));
        new_internal->right.store_relaxed(ptr_t::clean(leaf));
      } else {
        new_internal->key = skey(key);
        new_internal->left.store_relaxed(ptr_t::clean(leaf));
        new_internal->right.store_relaxed(ptr_t::clean(new_leaf));
      }

      ptr_t expected = ptr_t::clean(leaf);
      stats_.on_cas();
      if (child_field.compare_exchange(expected, ptr_t::clean(new_internal))) {
        return true;  // Alg. 2 line 53 — linearization point
      }
      stats_.on_cas_fail();
      // CAS failed; `expected` now holds the observed word (the re-read
      // of Alg. 2 line 55). Help iff the edge still addresses our leaf
      // and is marked — i.e. a delete owns our injection point.
      if (expected.address() == leaf && expected.marked()) {
        stats_.on_help(help_kind_of(expected));
        cleanup(key, sr);
      }
      stats_.on_seek_restart(stats::restart_kind::injection_fail);
      if constexpr (use_backoff) delay();
      seek_retry(key, sr);
    }
  }

  // --- node lifecycle -------------------------------------------------

  node* make_leaf(skey k, payload_t payload = payload_t{}) {
    stats_.on_alloc();
    void* mem = pool_.allocate(sizeof(node));
    node* n = new (mem) node{std::move(k), std::move(payload), {}, {}};
    return n;
  }

  node* make_internal(skey k, node* left, node* right) {
    stats_.on_alloc();
    void* mem = pool_.allocate(sizeof(node));
    node* n = new (mem) node{std::move(k), payload_t{}, {}, {}};
    n->left.store_relaxed(ptr_t::clean(left));
    n->right.store_relaxed(ptr_t::clean(right));
    return n;
  }

  /// Immediate destruction — only for nodes that were never published.
  void destroy_node(node* n) {
    n->~node();
    pool_.deallocate(n);
  }

  static void node_deleter(void* obj, void* ctx) noexcept {
    auto* n = static_cast<node*>(obj);
    n->~node();
    static_cast<node_pool*>(ctx)->deallocate(obj);
  }

  // --- traversal ------------------------------------------------------

  /// Child field of `parent` on the side `key` belongs (left iff
  /// key < parent.key — ties go right, matching the paper's BST
  /// property (b): right subtree holds keys >= node key).
  word_t& child_field_for(node* parent, const Key& key) const {
    return less_(key, parent->key) ? parent->left : parent->right;
  }

  /// Dispatches to the plain Alg. 1 seek, or — when the reclaimer needs
  /// per-node protection (reclaim::hazard) — to the validated seek that
  /// publishes hazard pointers as it descends.
  void seek(const Key& key, seek_record& sr) const {
    if constexpr (Reclaimer::requires_validated_traversal) {
      seek_protected(key, sr);
    } else {
      seek_plain(key, sr);
    }
  }

  /// Retry-path re-seek (docs/PERF.md). Under restart::from_anchor the
  /// recorded (ancestor → successor) edge is re-validated and, when it
  /// holds, the descent resumes from the successor instead of paying
  /// the full root-to-leaf path again; a failed validation falls back
  /// to a root seek. Under restart::from_root this is exactly seek().
  void seek_retry(const Key& key, seek_record& sr) const {
    if constexpr (Restart::resume_from_anchor) {
      if (try_seek_from_anchor(key, sr)) {
        stats_.on_seek_resume_local();
        return;
      }
      stats_.on_seek_anchor_fallback();
    }
    seek(key, sr);
  }

  /// Anchor validation + local resume (the full paper's local restart).
  /// Correctness hinges on two frozen-structure facts: (1) an internal
  /// node always has both child edges marked before the CAS that
  /// detaches it, and marked words never change again — so re-reading
  /// the anchor edge as *clean and still addressing the successor*
  /// proves the ancestor had not been excised at the moment of that
  /// load; (2) a reachable node's key-space interval only ever widens
  /// (cleanup replaces subtree(successor) by a subtree of it), so the
  /// key that once routed through the ancestor still does. A descent
  /// resumed from the validated edge is therefore indistinguishable
  /// from a root seek that arrived at that edge at the same instant.
  /// The successor recorded by any seek is an internal node (it was
  /// stepped *through*), so resuming the descent below it is
  /// well-formed. Returns false when the anchor no longer holds.
  bool try_seek_from_anchor(const Key& key, seek_record& sr) const {
    node* anchor = sr.ancestor;
    node* successor = sr.successor;
    const ptr_t edge = child_field_for(anchor, key).load();
    if (edge.marked() || edge.address() != successor) return false;
    // Seed the resumed descent's depth counter with the edge's recorded
    // root-relative depth (captured before seek_*_from resets sr), so
    // on_seek reports the full path length, not the post-anchor tail.
    const std::uint64_t base_depth = sr.anchor_depth;
    if constexpr (Reclaimer::requires_validated_traversal) {
      // anchor and successor are still announced in hp_ancestor /
      // hp_successor from the seek that recorded them (cleanup never
      // reassigns those slots), so the edge load above was safe and
      // the validated descent may resume under the same protection.
      return seek_protected_from(anchor, successor, key, sr, base_depth);
    } else {
      seek_plain_from(anchor, successor, key, sr, base_depth);
      return true;
    }
  }

  /// Hazard-pointer seek: same traversal as Alg. 1, but every node is
  /// announced in a hazard slot and validated against the edge it was
  /// read from *before* it is dereferenced. Validation failure (the edge
  /// moved between the read and the announcement) restarts the seek.
  /// Slot shuffling is safe without re-validation because each announce
  /// copies a value that is still protected by its previous slot.
  ///
  /// Validation rules (the subtle part — ThreadSanitizer found the
  /// original version wanting):
  ///  * A *clean* edge is self-validating: a retired internal node
  ///    always has both child edges marked, so a node whose incoming
  ///    edge re-reads as clean-and-addressing-it has not been retired.
  ///  * A *marked* edge is frozen and proves nothing: it keeps pointing
  ///    into its region even after the region is excised and retired.
  ///    Excision happens exactly by swinging the last clean edge above
  ///    the region — the (ancestor → successor) edge this seek is
  ///    already tracking — so after announcing a node reached over a
  ///    marked edge we re-validate that anchor edge; if it no longer
  ///    addresses the successor cleanly, the region may already be
  ///    retired and the seek restarts.
  void seek_protected(const Key& key, seek_record& sr) const {
    while (!seek_protected_from(r_, s_, key, sr)) {
      // sentinels are never retired: restarting from them is always safe
    }
  }

  /// One validated-descent attempt starting from the (anchor → successor)
  /// edge. The root seek passes (ℝ, 𝕊) and loops; the anchored retry
  /// passes the recorded anchor and treats `false` (a validation failure
  /// mid-descent) as "fall back to a root seek". Precondition: both
  /// nodes are safe to dereference — sentinels for the root call, or
  /// still announced in hp_ancestor/hp_successor for the anchored call.
  bool seek_protected_from(node* anchor, node* successor, const Key& key,
                           seek_record& sr,
                           std::uint64_t base_depth = 0) const {
    auto& dom = reclaimer_.domain();
    sr.ancestor = anchor;
    sr.successor = successor;
    sr.parent = successor;
    if constexpr (Stats::enabled) sr.anchor_depth = base_depth;
    dom.announce(Reclaimer::hp_ancestor, anchor);
    dom.announce(Reclaimer::hp_successor, successor);
    dom.announce(Reclaimer::hp_parent, successor);

    const word_t* source = &child_field_for(successor, key);
    // Discovery load: acquire suffices — the candidate is not
    // dereferenced until the announce below is validated by the seq_cst
    // recheck, and it is that recheck (not this load) that must order
    // after the announcement store.
    ptr_t parent_field = source->load(std::memory_order_acquire);
    node* candidate = parent_field.address();  // internal child: never null
    dom.announce(Reclaimer::hp_leaf, candidate);
    // Validating re-read: seq_cst so it cannot be reordered before the
    // seq_cst announce store above — the store-load pair guarantees any
    // concurrent retirer's scan sees the announcement.
    ptr_t recheck = source->load(std::memory_order_seq_cst);
    if (recheck.address() != candidate) return false;  // edge moved
    parent_field = recheck;
    sr.leaf = candidate;

    const word_t* current_source =
        less_(key, sr.leaf->key) ? &sr.leaf->left : &sr.leaf->right;
    // Discovery load (validated by the in-loop recheck): acquire.
    ptr_t current_field = current_source->load(std::memory_order_acquire);
    node* current = current_field.address();
    [[maybe_unused]] std::uint64_t depth = base_depth;
    while (current != nullptr) {
      if constexpr (Stats::enabled) ++depth;
      // Overlap the next node's cache miss with this iteration's
      // announce/validate bookkeeping — the descent is a dependent-load
      // chain the hardware prefetcher cannot run ahead of. Safe even if
      // the recheck below rejects `current`: prefetch is only a hint.
      prefetch_ro(current);
      // Validated protect of `current`: announce in the scratch slot,
      // re-read the edge from its (protected) owner.
      dom.announce(Reclaimer::hp_scratch, current);
      // Validating re-read: seq_cst, same store-load pairing with the
      // announce as above.
      recheck = current_source->load(std::memory_order_seq_cst);
      if (recheck.address() != current) return false;
      current_field = recheck;
      if (!parent_field.tagged()) {
        sr.ancestor = sr.parent;  // protected by hp_parent
        sr.successor = sr.leaf;   // protected by hp_leaf
        // `depth` has already counted the step below sr.leaf, which is
        // exactly where a resume from this edge restarts its walk.
        if constexpr (Stats::enabled) sr.anchor_depth = depth;
        dom.announce(Reclaimer::hp_ancestor, sr.ancestor);
        dom.announce(Reclaimer::hp_successor, sr.successor);
      }
      if (current_field.marked()) {
        // `current` was reached over a frozen edge, which may point
        // into an already-excised region. Re-validate the anchor: the
        // last clean edge must still address the successor cleanly,
        // proving the region was not yet detached when `current` was
        // announced above (and any later retire's scan will see the
        // announcement). seq_cst: this load is itself the validator
        // ordering after the hp_scratch announcement.
        const ptr_t anchor_edge =
            child_field_for(sr.ancestor, key).load(
                std::memory_order_seq_cst);
        if (anchor_edge.marked() || anchor_edge.address() != sr.successor) {
          return false;
        }
      }
      sr.parent = sr.leaf;  // protected by hp_leaf
      dom.announce(Reclaimer::hp_parent, sr.parent);
      sr.leaf = current;  // protected by hp_scratch
      dom.announce(Reclaimer::hp_leaf, current);
      parent_field = current_field;
      current_source =
          less_(key, current->key) ? &current->left : &current->right;
      // Discovery load (validated on the next iteration): acquire.
      current_field = current_source->load(std::memory_order_acquire);
      current = current_field.address();
    }
    if constexpr (Stats::enabled) stats_.on_seek(depth);
    return true;
  }

  /// Alg. 1 — the seek phase. Traverses from ℝ to a leaf, maintaining
  /// (ancestor, successor) = the last untagged edge seen before the
  /// parent. All loads are acquire loads via tagged_word::load.
  void seek_plain(const Key& key, seek_record& sr) const {
    seek_plain_from(r_, s_, key, sr);
  }

  /// Alg. 1 generalized to start from any (anchor → successor) edge on
  /// the access path — the root seek passes (ℝ, 𝕊); the anchored retry
  /// passes a just-validated recorded edge. `successor` must be an
  /// internal node (every recorded successor is: it was stepped
  /// through), so its child toward `key` is non-null.
  void seek_plain_from(node* anchor, node* successor, const Key& key,
                       seek_record& sr, std::uint64_t base_depth = 0) const {
    sr.ancestor = anchor;     // line 15
    sr.successor = successor; // line 16
    sr.parent = successor;    // line 17
    if constexpr (Stats::enabled) sr.anchor_depth = base_depth;
    // line 19 (value of the edge successor→leaf)
    ptr_t parent_field = child_field_for(successor, key).load();
    sr.leaf = parent_field.address();  // line 18
    ptr_t current_field = child_field_for(sr.leaf, key).load();  // line 20
    node* current = current_field.address();                     // line 21
    [[maybe_unused]] std::uint64_t depth = base_depth;
    while (current != nullptr) {  // line 22 — leaf reached when null
      if constexpr (Stats::enabled) ++depth;
      // Overlap the next node's cache miss with this iteration's
      // bookkeeping: the descent is a dependent-load chain the hardware
      // prefetcher cannot run ahead of.
      prefetch_ro(current);
      if (!parent_field.tagged()) {  // line 23
        sr.ancestor = sr.parent;     // line 24
        sr.successor = sr.leaf;      // line 25
        // Depth of the new anchor edge: a resume restarts exactly at
        // the step this iteration just counted.
        if constexpr (Stats::enabled) sr.anchor_depth = depth;
      }
      sr.parent = sr.leaf;  // line 26
      sr.leaf = current;    // line 27
      parent_field = current_field;  // line 28
      current_field = less_(key, current->key) ? current->left.load()
                                               : current->right.load();
      current = current_field.address();  // line 32
    }
    if constexpr (Stats::enabled) stats_.on_seek(depth);
  }

  // --- cleanup (Alg. 4) -------------------------------------------------

  /// Physically removes the flagged leaf nearest `key` together with its
  /// parent (and any frozen chain between successor and parent — the
  /// multi-leaf removal of Fig. 2). Invoked by the owning delete and by
  /// helpers (failed insert/delete injections). Returns true iff this
  /// call's ancestor CAS performed the removal.
  bool cleanup(const Key& key, const seek_record& sr) {
    stats_.on_cleanup();
    node* ancestor = sr.ancestor;  // line 90
    node* successor = sr.successor;
    node* parent = sr.parent;

    // Address of the ancestor's child field to swing (lines 94-96).
    word_t& successor_field = child_field_for(ancestor, key);

    // Child and sibling fields of the parent (lines 97-102).
    word_t* child_field;
    word_t* sibling_field;
    if (less_(key, parent->key)) {
      child_field = &parent->left;
      sibling_field = &parent->right;
    } else {
      child_field = &parent->right;
      sibling_field = &parent->left;
    }

    if (!child_field->load().flagged()) {  // lines 103-105
      // The leaf on our side is not the one being deleted, so the
      // delete owns the *sibling* leaf; the edge to tag is the one we
      // arrived on.
      sibling_field = child_field;
    }

    // Tag the sibling edge (line 106). Unconditional; freezes the edge
    // so parent can never again be an injection point.
    stats_.on_bts();
    Tagging::tag(*sibling_field);

    // Re-read flag and address (line 107); both are now frozen (a tagged
    // edge can no longer be flagged, and marked edges never change
    // address), so this read is stable.
    ptr_t sibling = sibling_field->load();

    // Swing the ancestor's child from the successor to the sibling,
    // copying the sibling's flag bit onto the new edge (line 108): if a
    // concurrent delete already flagged the sibling leaf, the flag must
    // survive the move so that delete can still complete.
    ptr_t expected = ptr_t::clean(successor);
    ptr_t desired(sibling.address(), sibling.flagged(), /*tagged=*/false);
    stats_.on_cas();
    const bool removed = successor_field.compare_exchange(expected, desired);

    if (removed) {
      if constexpr (Stats::enabled) {
        // Excision size: >2 means the single ancestor CAS removed a
        // frozen chain of logically deleted nodes (Fig. 2's multi-leaf
        // removal). The walk only happens for instrumented builds.
        stats_.on_excision(count_excised(successor, desired.address()));
      }
      if constexpr (Reclaimer::reclaims_eagerly) {
        // We excised the region subtree(successor) ∖ subtree(sibling
        // address). Every edge inside it is frozen, so walking it
        // unsynchronized is safe; only this thread (the CAS winner)
        // retires it, so nothing is retired twice.
        retire_excised(successor, desired.address());
      }
    } else {
      stats_.on_cas_fail();
    }
    return removed;
  }

  /// Node count of the detached region rooted at `n`, excluding the
  /// re-attached subtree at `keep`. Same frozen-region walk as
  /// retire_excised; only runs when a Stats policy wants on_excision.
  std::uint64_t count_excised(const node* n, const node* keep) const {
    if (n == keep) return 0;
    const node* l = n->left.load(std::memory_order_acquire).address();
    const node* r = n->right.load(std::memory_order_acquire).address();
    std::uint64_t total = 1;
    if (l != nullptr) {
      total += count_excised(l, keep);
      total += count_excised(r, keep);
    }
    return total;
  }

  /// Retires every node of the detached region rooted at `n`, except the
  /// subtree rooted at `keep` (which was re-attached by the CAS). The
  /// region is a frozen chain: internal nodes with both edges marked,
  /// each carrying one flagged leaf, terminated by `keep`'s old parent.
  void retire_excised(node* n, node* keep) {
    if (n == keep) return;
    node* l = n->left.load(std::memory_order_acquire).address();
    node* r = n->right.load(std::memory_order_acquire).address();
    if (l != nullptr) {  // internal node: recurse into the frozen region
      retire_excised(l, keep);
      retire_excised(r, keep);
    }
    reclaimer_.retire(n, &node_deleter, &pool_);
  }

  // --- concurrent ordered scans ----------------------------------------
  //
  // Correctness sketch (full story in DESIGN.md):
  //
  //   Sorted / duplicate-free — routing keys are immutable and cleanup
  //   only ever replaces subtree(successor) by one of its own subtrees,
  //   so any node ever reachable through a node's left edge has a key
  //   below that node's key (and symmetrically right/≥). Both scan
  //   shapes emit leaves in left-to-right traversal order, which under
  //   that invariant is strictly increasing key order.
  //
  //   Completeness (a key present throughout the scan appears) — a leaf
  //   whose incoming edge is never flagged is never excised: cleanup
  //   only detaches regions whose internal nodes have both edges marked
  //   and whose leaving leaves are flagged, and an unflagged leaf hit by
  //   an excision is *reattached* by the ancestor CAS, on the side its
  //   key routes to. Following frozen marked edges therefore always
  //   leads the scan to the still-reachable part holding such a leaf.
  //
  //   Soundness (a key absent throughout does not appear) — a leaf is
  //   only emitted if its incoming edge was loaded unflagged; a key
  //   that was absent for the whole scan has no such leaf: its old leaf
  //   was flagged before the scan began (erase linearizes at the flag
  //   CAS), and flags survive reattachment (the ancestor CAS copies the
  //   sibling edge's flag bit).

  /// Does a (non-sentinel) leaf key fall inside the requested interval?
  bool scan_in_range(const skey& k, const Key* lo, const Key* hi,
                     bool closed) const {
    if (lo != nullptr && less_(k, *lo)) return false;
    if (hi == nullptr) return true;
    return closed ? !less_(*hi, k) : less_(k, *hi);
  }

  /// Unbounded entry: adapts the void visitor to the resumable core.
  template <typename F>
  void scan_impl(const Key* lo, const Key* hi, bool closed, F&& fn) const {
    scan_impl_until(lo, hi, closed, [&fn](const Key& k) {
      fn(k);
      return true;
    });
  }

  /// Shared entry: pin once for the whole scan, dispatch on the
  /// reclaimer's traversal contract, attribute keys visited. The
  /// visitor returns false to stop the scan early (bounded pages); keys
  /// already emitted stay emitted.
  template <typename F>
  void scan_impl_until(const Key* lo, const Key* hi, bool closed,
                       F&& fn) const {
    std::uint64_t visited = 0;
    {
      [[maybe_unused]] auto guard = reclaimer_.pin();
      if constexpr (Reclaimer::requires_validated_traversal) {
        scan_protected(lo, hi, closed, fn, visited);
      } else {
        scan_pinned(lo, hi, closed, fn, visited);
      }
    }
    stats_.on_scan_op(visited);
  }

  /// Epoch/leaky scan: one pinned in-order walk over the *current*
  /// edges, marked ones included. The pin keeps every node the walk can
  /// reach alive (epoch: grace period spans the pin; leaky: nothing is
  /// ever freed), and frozen edges keep addressing their targets, so no
  /// validation is needed — the walk simply never sees a torn excision.
  /// The stack holds edge values (not bare nodes) because a leaf's
  /// incoming flag bit decides whether the key is logically present.
  template <typename F>
  void scan_pinned(const Key* lo, const Key* hi, bool closed, F&& fn,
                   std::uint64_t& visited) const {
    std::vector<ptr_t> stack;
    stack.push_back(ptr_t::clean(r_));
    while (!stack.empty()) {
      const ptr_t edge = stack.back();
      stack.pop_back();
      node* n = edge.address();
      const ptr_t left = n->left.load();
      if (left.address() == nullptr) {
        // Leaf. A flagged incoming edge means a delete linearized
        // against this key (possibly before the scan began): it is
        // logically absent and must not appear.
        if (!edge.flagged() && !n->key.is_sentinel() &&
            scan_in_range(n->key, lo, hi, closed)) {
          ++visited;
          if (!fn(n->key.key)) return;  // visitor filled its budget
        }
        continue;
      }
      // Internal: prune on the immutable routing key; push right below
      // left so the left subtree drains first (leaf-only in-order).
      if (hi == nullptr ||
          (closed ? !less_(*hi, n->key) : less_(n->key, *hi))) {
        stack.push_back(n->right.load());
      }
      if (lo == nullptr || less_(*lo, n->key)) {
        stack.push_back(left);
      }
    }
  }

  /// Where a cursor-routed hazard descent last stepped left, plus the
  /// anchor snapshot that makes restarting *from* that node sound.
  struct scan_turn {
    node* turn = nullptr;       // deepest node the descent stepped left from
    node* anchor = nullptr;     // tail of the last untagged edge above it
    node* successor = nullptr;  // head of that edge
    const word_t* anchor_edge = nullptr;  // the edge word itself
  };

  /// Hazard scan: hazard pointers protect six-odd nodes, not a whole
  /// epoch, so a single long walk is impossible — instead the scan is a
  /// chain of successor queries. Each round routes a validated descent
  /// toward the cursor (the last emitted key); the landed leaf either
  /// answers the query directly (it is the leftmost leaf at/past the
  /// cursor) or the answer is the minimum leaf of the right subtree of
  /// the descent's deepest left turn, reached by a second validated
  /// descent started at the turn under its snapshotted anchor that
  /// steps right once and then always left. Any validation failure
  /// restarts the *current query* from
  /// the root with the cursor preserved — emitted progress is never
  /// redone, which is the scan's bounded-local-restart property (the
  /// same shape as restart::from_anchor's root fallback).
  template <typename F>
  void scan_protected(const Key* lo, const Key* hi, bool closed, F&& fn,
                      std::uint64_t& visited) const {
    std::optional<Key> cursor;
    if (lo != nullptr) cursor = *lo;
    bool strict = false;  // first query admits key == cursor (lo inclusive)
    [[maybe_unused]] backoff delay;
    for (;;) {
      // Leftmost leaf with key >= cursor routes exactly like a point
      // seek for `cursor`: left iff cursor < node key. (Strictness does
      // not change the routing, only the acceptance test below.)
      const auto toward_cursor = [&](const node* n) {
        return !cursor.has_value() || less_(*cursor, n->key);
      };
      scan_turn turn;
      ptr_t landed =
          scan_descend(r_, s_, &r_->left, s_, toward_cursor, &turn);
      if (landed.address() == nullptr) {
        stats_.on_scan_restart();
        if constexpr (use_backoff) delay();
        continue;
      }
      node* leaf = landed.address();
      const bool satisfied = !cursor.has_value() ||
                             (strict ? less_(*cursor, leaf->key)
                                     : !less_(leaf->key, *cursor));
      if (!satisfied) {
        // The landed leaf is the rightmost leaf below the cursor; the
        // successor is the minimum leaf under the deepest left turn's
        // *right* child (every left subtree skipped below the turn holds
        // only keys <= cursor), so this descent steps right once at the
        // turn and then always left. A turn always exists: every client
        // cursor routes left at the sentinels.
        LFBST_ASSERT(turn.turn != nullptr,
                     "cursor-routed descent took no left turn");
        bool at_turn = true;
        const auto succ_route = [&at_turn](const node*) {
          const bool left = !at_turn;
          at_turn = false;
          return left;
        };
        landed = scan_descend(turn.anchor, turn.successor, turn.anchor_edge,
                              turn.turn, succ_route, nullptr);
        if (landed.address() == nullptr) {
          stats_.on_scan_restart();
          if constexpr (use_backoff) delay();
          continue;
        }
        leaf = landed.address();
      }
      if (leaf->key.is_sentinel()) break;  // past the last client key
      if (hi != nullptr &&
          (closed ? less_(*hi, leaf->key) : !less_(leaf->key, *hi))) {
        break;  // past the requested interval
      }
      cursor = leaf->key.key;  // progress survives future restarts
      strict = true;
      if (!landed.flagged()) {  // flagged = logically deleted: skip
        ++visited;
        if (!fn(leaf->key.key)) break;  // visitor filled its budget
      }
    }
  }

  /// One validated scan descent: from the edge (anchor → successor) —
  /// the last untagged edge known to be above `from` — step through
  /// `from` and keep descending in the direction `route` picks until a
  /// leaf is reached. Follows the exact discipline of
  /// seek_protected_from (announce, seq_cst re-read; clean edges
  /// self-validate; a marked edge additionally re-validates the tracked
  /// anchor edge), generalized in two ways: the direction is a functor
  /// (cursor routing for the successor query, right-then-always-left
  /// for the min-leaf descent) and the anchor edge travels as a word
  /// pointer
  /// because the min-leaf descent is not key-routed. Returns the landed
  /// edge value (address = the leaf, protected in hp_leaf; the flag bit
  /// tells the caller whether the leaf is logically deleted) or a null
  /// edge on validation failure. With `turn_out`, records the deepest
  /// node stepped left from plus its anchor snapshot, protected in the
  /// dedicated scan slots, so a follow-up descent may start there.
  /// Preconditions: `anchor`, `successor` and `from` are safe to
  /// dereference (sentinels, or still announced by the descent that
  /// recorded them); `from` is internal.
  template <typename Route>
  ptr_t scan_descend(node* anchor, node* successor,
                     const word_t* anchor_edge, node* from, Route&& route,
                     scan_turn* turn_out) const {
    auto& dom = reclaimer_.domain();
    dom.announce(Reclaimer::hp_ancestor, anchor);
    dom.announce(Reclaimer::hp_successor, successor);
    dom.announce(Reclaimer::hp_parent, from);
    node* a_tail = anchor;
    node* a_head = successor;
    const word_t* a_edge = anchor_edge;
    node* parent = from;

    bool step_left = route(parent);
    const word_t* parent_source = step_left ? &parent->left : &parent->right;
    ptr_t parent_field = parent_source->load(std::memory_order_acquire);
    node* candidate = parent_field.address();  // `from` is internal: non-null
    dom.announce(Reclaimer::hp_leaf, candidate);
    ptr_t recheck = parent_source->load(std::memory_order_seq_cst);
    if (recheck.address() != candidate) return ptr_t();
    parent_field = recheck;
    if (parent_field.marked()) {
      // The entry edge is frozen, so the re-read above proves nothing
      // about retirement (docs/RECLAMATION.md, Lesson 1): re-validate
      // the anchor edge after the announce. (The root call passes the
      // never-marked ℝ → 𝕊 edge and trivially passes; the check is for
      // descents resumed at a recorded turn.)
      const ptr_t check = a_edge->load(std::memory_order_seq_cst);
      if (check.marked() || check.address() != a_head) return ptr_t();
    }
    if (step_left && turn_out != nullptr) {
      turn_out->turn = parent;
      turn_out->anchor = a_tail;
      turn_out->successor = a_head;
      turn_out->anchor_edge = a_edge;
      dom.announce(Reclaimer::hp_scan_turn, parent);
      dom.announce(Reclaimer::hp_scan_turn_anchor, a_tail);
      dom.announce(Reclaimer::hp_scan_turn_successor, a_head);
    }
    node* leaf = candidate;

    step_left = route(leaf);
    const word_t* current_source = step_left ? &leaf->left : &leaf->right;
    ptr_t current_field = current_source->load(std::memory_order_acquire);
    node* current = current_field.address();
    while (current != nullptr) {
      prefetch_ro(current);
      dom.announce(Reclaimer::hp_scratch, current);
      recheck = current_source->load(std::memory_order_seq_cst);
      if (recheck.address() != current) return ptr_t();
      current_field = recheck;
      if (!parent_field.tagged()) {
        a_tail = parent;
        a_head = leaf;
        a_edge = parent_source;
        dom.announce(Reclaimer::hp_ancestor, a_tail);
        dom.announce(Reclaimer::hp_successor, a_head);
      }
      if (current_field.marked()) {
        const ptr_t check = a_edge->load(std::memory_order_seq_cst);
        if (check.marked() || check.address() != a_head) return ptr_t();
      }
      if (step_left && turn_out != nullptr) {
        // Stepping left from `leaf`: it becomes the deepest turn, and
        // the anchor pair just maintained above is exactly the last
        // untagged edge at or above it. All three are currently
        // announced in descent slots, so the copy-announces are safe.
        turn_out->turn = leaf;
        turn_out->anchor = a_tail;
        turn_out->successor = a_head;
        turn_out->anchor_edge = a_edge;
        dom.announce(Reclaimer::hp_scan_turn, leaf);
        dom.announce(Reclaimer::hp_scan_turn_anchor, a_tail);
        dom.announce(Reclaimer::hp_scan_turn_successor, a_head);
      }
      parent = leaf;
      dom.announce(Reclaimer::hp_parent, parent);
      leaf = current;
      dom.announce(Reclaimer::hp_leaf, leaf);
      parent_field = current_field;
      parent_source = current_source;
      step_left = route(leaf);
      current_source = step_left ? &leaf->left : &leaf->right;
      current_field = current_source->load(std::memory_order_acquire);
      current = current_field.address();
    }
    return parent_field;  // the incoming edge of the landed leaf
  }

  // --- quiescent helpers ----------------------------------------------

  /// In-order leaf visit with an explicit stack: sequentially inserted
  /// keys degenerate an (unbalanced) BST to O(n) depth, which would
  /// overflow the call stack if these walks recursed.
  template <typename F>
  void walk_leaves(const node* root, F&& fn) const {
    std::vector<const node*> stack;
    const node* n = root;
    while (n != nullptr || !stack.empty()) {
      while (n != nullptr) {
        stack.push_back(n);
        n = n->left.load(std::memory_order_relaxed).address();
      }
      const node* top = stack.back();
      stack.pop_back();
      if (top->left.load(std::memory_order_relaxed).address() == nullptr) {
        fn(top);
      }
      n = top->right.load(std::memory_order_relaxed).address();
    }
  }

  void destroy_reachable(node* root) {
    if (root == nullptr) return;
    std::vector<node*> stack{root};
    while (!stack.empty()) {
      node* n = stack.back();
      stack.pop_back();
      if (node* l = n->left.load(std::memory_order_relaxed).address()) {
        stack.push_back(l);
      }
      if (node* r = n->right.load(std::memory_order_relaxed).address()) {
        stack.push_back(r);
      }
      destroy_node(n);
    }
  }

  std::size_t height_of(const node* root) const {
    std::size_t best = 0;
    std::vector<std::pair<const node*, std::size_t>> stack{{root, 1}};
    while (!stack.empty()) {
      auto [n, depth] = stack.back();
      stack.pop_back();
      if (n == nullptr) continue;
      best = std::max(best, depth);
      stack.push_back({n->left.load(std::memory_order_relaxed).address(),
                       depth + 1});
      stack.push_back({n->right.load(std::memory_order_relaxed).address(),
                       depth + 1});
    }
    return best;
  }

  void validate_subtree(const node* root, const skey* root_low,
                        const skey* root_high, std::string& err) const {
    struct frame {
      const node* n;
      const skey* low;
      const skey* high;
    };
    std::vector<frame> stack{{root, root_low, root_high}};
    while (!stack.empty()) {
      auto [n, low, high] = stack.back();
      stack.pop_back();
      ptr_t lw = n->left.load(std::memory_order_relaxed);
      ptr_t rw = n->right.load(std::memory_order_relaxed);
      if (lw.marked() || rw.marked()) {
        err += "reachable marked edge at quiescence; ";
      }
      const node* l = lw.address();
      const node* r = rw.address();
      if ((l == nullptr) != (r == nullptr)) {
        err += "internal node with exactly one child (external shape "
               "violated); ";
        continue;
      }
      // Order bounds (paper §2 properties (a)/(b)): left subtree keys
      // strictly below the node key, right subtree keys at or above.
      if (low != nullptr && sless(n->key, *low)) {
        err += "key below low bound; ";
      }
      if (high != nullptr && !sless(n->key, *high)) {
        err += "key not below high bound; ";
      }
      if (l != nullptr) {
        stack.push_back({l, low, &n->key});
        stack.push_back({r, &n->key, high});
      }
    }
  }

  bool sless(const skey& a, const skey& b) const { return less_(a, b); }

  // Feeds the sampled key-hotness hook (obs::key_heatmap via
  // obs::recording::on_op_key) when the Stats policy has one and the
  // key maps onto the heatmap's int64 domain; compiles to nothing for
  // stats::none/counting and non-numeric keys.
  void note_key(stats::op_kind kind, const Key& key) const noexcept {
    if constexpr (requires(std::int64_t k) { stats_.on_op_key(kind, k); } &&
                  std::is_convertible_v<Key, std::int64_t>) {
      stats_.on_op_key(kind, static_cast<std::int64_t>(key));
    }
  }

  // --- members ----------------------------------------------------------

  [[no_unique_address]] sentinel_less<Key, Compare> less_{};
  // Hooks fire through the instance (stats_.on_cas()) so policies may
  // carry per-instance state; for the stateless none/counting policies
  // the member is empty and the calls resolve to the static no-ops.
  [[no_unique_address]] mutable Stats stats_{};
  node_pool pool_;
  mutable Reclaimer reclaimer_{};
  node* r_ = nullptr;  // ℝ: root sentinel, key ∞₂ — never removed
  node* s_ = nullptr;  // 𝕊: ℝ's left child, key ∞₁ — never removed
};

}  // namespace lfbst
