// lfbst: the ConcurrentSet concept shared by every tree in this repo.
//
// Tests, benchmarks and examples are written once against this concept
// and instantiated per implementation, which is what makes the
// cross-algorithm comparison of the paper's §4 reproducible from one
// code path.
#pragma once

#include <concepts>
#include <cstddef>
#include <string>

namespace lfbst {

/// The concurrent API every tree provides. `contains`, `insert` and
/// `erase` are linearizable and safe to call from any number of threads
/// concurrently; the *_slow observers require quiescence (except on the
/// coarse tree, where the lock makes them always safe).
template <typename T>
concept ConcurrentSet = requires(T set, const T cset,
                                 const typename T::key_type key) {
  typename T::key_type;
  { cset.contains(key) } -> std::same_as<bool>;
  { set.insert(key) } -> std::same_as<bool>;
  { set.erase(key) } -> std::same_as<bool>;
  { cset.size_slow() } -> std::same_as<std::size_t>;
  { cset.validate() } -> std::same_as<std::string>;
  { T::algorithm_name } -> std::convertible_to<const char*>;
};

}  // namespace lfbst
