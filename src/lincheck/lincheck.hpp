// lfbst: a linearizability checker for set histories (Wing & Gong style
// exhaustive search with memoization).
//
// The paper's correctness claim is linearizability (§3.3); unit tests
// cannot observe linearization points directly, but they can record
// small concurrent histories and verify that *some* legal sequential
// order explains them. That is what this checker decides.
//
// Model: each operation is an interval [invoke, response] on a global
// timestamp axis plus (kind, key, observed result). A history is
// linearizable iff there is a total order of the operations that (a)
// respects real-time order (op A before op B whenever A.response <
// B.invoke) and (b) replays correctly against the sequential set
// semantics.
//
// Complexity: exponential in history length in the worst case, tamed by
// memoizing (done-set, set-state) pairs. Designed for histories of up to
// ~24 operations over key universes of up to 64 keys — ample for unit
// tests, and each test runs hundreds of random small histories.
#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "common/assert.hpp"

namespace lfbst::lincheck {

enum class op_kind : std::uint8_t { insert, erase, contains };

struct operation {
  op_kind kind;
  int key;      // must lie in [0, 64) for the bitmask state
  bool result;  // observed return value
  std::uint64_t invoke;
  std::uint64_t response;
};

using history = std::vector<operation>;

/// Decides linearizability of `h` against sequential set semantics.
class checker {
 public:
  /// Maximum history length the bitmask representation supports.
  static constexpr std::size_t max_ops = 64;

  [[nodiscard]] static bool is_linearizable(const history& h,
                                            std::uint64_t initial_state = 0) {
    LFBST_ASSERT(h.size() <= max_ops, "history too long for checker");
    for (const operation& op : h) {
      LFBST_ASSERT(op.key >= 0 && op.key < 64,
                   "checker keys must be in [0, 64)");
      LFBST_ASSERT(op.invoke <= op.response, "inverted interval");
    }
    checker c(h);
    return c.search(initial_state, /*done=*/0);
  }

 private:
  explicit checker(const history& h) : ops_(h) {}

  /// `state`: bit k set ⇔ key k in the set. `done`: bit i set ⇔ op i
  /// already linearized.
  bool search(std::uint64_t state, std::uint64_t done) {
    if (done == (ops_.size() == 64
                     ? ~std::uint64_t{0}
                     : ((std::uint64_t{1} << ops_.size()) - 1))) {
      return true;
    }
    if (failed_.contains(pack_t{state, done})) return false;

    // Earliest response among undone ops: any op whose invoke is later
    // can not be linearized next (something must precede it).
    std::uint64_t min_response = ~std::uint64_t{0};
    for (std::size_t i = 0; i < ops_.size(); ++i) {
      if (!(done & (std::uint64_t{1} << i))) {
        min_response = std::min(min_response, ops_[i].response);
      }
    }

    for (std::size_t i = 0; i < ops_.size(); ++i) {
      const std::uint64_t bit = std::uint64_t{1} << i;
      if (done & bit) continue;
      if (ops_[i].invoke > min_response) continue;  // real-time violation
      std::uint64_t next_state = state;
      if (!apply(ops_[i], next_state)) continue;  // result contradicts spec
      if (search(next_state, done | bit)) return true;
    }
    failed_.insert(pack_t{state, done});
    return false;
  }

  /// Replays `op` on `state`; returns false when the recorded result is
  /// impossible at this point.
  static bool apply(const operation& op, std::uint64_t& state) {
    const std::uint64_t bit = std::uint64_t{1} << op.key;
    const bool present = state & bit;
    switch (op.kind) {
      case op_kind::insert:
        if (op.result == present) return false;  // true iff was absent
        state |= bit;
        return true;
      case op_kind::erase:
        if (op.result != present) return false;  // true iff was present
        state &= ~bit;
        return true;
      case op_kind::contains:
        return op.result == present;
    }
    return false;
  }

  struct pack_t {
    std::uint64_t state;
    std::uint64_t done;
    bool operator==(const pack_t&) const = default;
  };
  struct pack_hash {
    std::size_t operator()(const pack_t& p) const noexcept {
      std::uint64_t x = p.state * 0x9E3779B97F4A7C15ULL;
      x ^= p.done + 0x9E3779B97F4A7C15ULL + (x << 6) + (x >> 2);
      return static_cast<std::size_t>(x);
    }
  };

  const history& ops_;
  std::unordered_set<pack_t, pack_hash> failed_;
};

}  // namespace lfbst::lincheck
