// lfbst: concurrent history recorder feeding the linearizability
// checker. Threads call the recording wrappers instead of the tree
// directly; invoke/response timestamps come from one global atomic
// counter, so A.response < B.invoke faithfully captures "A completed
// before B began".
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "lincheck/lincheck.hpp"

namespace lfbst::lincheck {

class recorder {
 public:
  /// Executes `set.insert/erase/contains(key)` bracketed by timestamps
  /// and appends the completed operation to the history.
  template <typename Set>
  bool insert(Set& set, int key) {
    return record(op_kind::insert, key, [&] { return set.insert(key); });
  }
  template <typename Set>
  bool erase(Set& set, int key) {
    return record(op_kind::erase, key, [&] { return set.erase(key); });
  }
  template <typename Set>
  bool contains(Set& set, int key) {
    return record(op_kind::contains, key,
                  [&] { return set.contains(key); });
  }

  /// The completed history; call only after all recording threads have
  /// joined.
  [[nodiscard]] history take() {
    std::lock_guard<std::mutex> g(mutex_);
    return std::move(ops_);
  }

 private:
  template <typename F>
  bool record(op_kind kind, int key, F&& run) {
    const std::uint64_t invoke = clock_.fetch_add(1, std::memory_order_acq_rel);
    const bool result = run();
    const std::uint64_t response =
        clock_.fetch_add(1, std::memory_order_acq_rel);
    std::lock_guard<std::mutex> g(mutex_);
    ops_.push_back(operation{kind, key, result, invoke, response});
    return result;
  }

  std::atomic<std::uint64_t> clock_{0};
  std::mutex mutex_;
  history ops_;
};

}  // namespace lfbst::lincheck
