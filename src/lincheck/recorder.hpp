// lfbst: concurrent history recorder feeding the linearizability
// checker. Threads call the recording wrappers instead of the tree
// directly; invoke/response timestamps come from one global atomic
// counter, so A.response < B.invoke faithfully captures "A completed
// before B began".
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

#include "lincheck/lincheck.hpp"

namespace lfbst::lincheck {

class recorder {
 public:
  /// Executes `set.insert/erase/contains(key)` bracketed by timestamps
  /// and appends the completed operation to the history.
  template <typename Set>
  bool insert(Set& set, int key) {
    return record(op_kind::insert, key, [&] { return set.insert(key); });
  }
  template <typename Set>
  bool erase(Set& set, int key) {
    return record(op_kind::erase, key, [&] { return set.erase(key); });
  }
  template <typename Set>
  bool contains(Set& set, int key) {
    return record(op_kind::contains, key,
                  [&] { return set.contains(key); });
  }

  /// Batched operations (sets that have them, e.g. shard::sharded_set).
  /// A batch is not atomic — each element is its own linearizable op —
  /// so each element becomes one history entry. All elements share the
  /// batch's invoke timestamp and one response timestamp taken after
  /// the call returns: intervals that cover every element's true
  /// execution window, keeping the check sound (conservative).
  template <typename Set>
  std::vector<bool> insert_batch(Set& set, const std::vector<int>& keys) {
    return record_batch(op_kind::insert, keys,
                        [&] { return set.insert_batch(keys); });
  }
  template <typename Set>
  std::vector<bool> erase_batch(Set& set, const std::vector<int>& keys) {
    return record_batch(op_kind::erase, keys,
                        [&] { return set.erase_batch(keys); });
  }
  template <typename Set>
  std::vector<bool> contains_batch(Set& set, const std::vector<int>& keys) {
    return record_batch(op_kind::contains, keys,
                        [&] { return set.contains_batch(keys); });
  }

  /// Concurrent ordered scan, encoded with the same conservative
  /// intervals as a batch: a scan is not atomic — each key it reports
  /// (or omits) behaves like an individual contains() linearized inside
  /// the scan — so the history gets one contains(k, k ∈ result) entry
  /// for every key of [lo, hi), all sharing the scan's [invoke,
  /// response] window. Keys the scan skipped become contains→false
  /// entries, which is what makes a *wrongly missing* key fail the
  /// check. Keep ranges small: each scan appends hi − lo entries to the
  /// history the checker must order.
  template <typename Set>
  std::vector<int> range_scan(Set& set, int lo, int hi) {
    using set_key = typename Set::key_type;
    const std::uint64_t invoke =
        clock_.fetch_add(1, std::memory_order_acq_rel);
    const std::vector<set_key> raw = set.range_scan(
        static_cast<set_key>(lo), static_cast<set_key>(hi));
    const std::uint64_t response =
        clock_.fetch_add(1, std::memory_order_acq_rel);
    std::vector<int> result;
    result.reserve(raw.size());
    for (const set_key& k : raw) result.push_back(static_cast<int>(k));
    std::lock_guard<std::mutex> g(mutex_);
    std::size_t next = 0;  // result is sorted: one linear merge suffices
    for (int k = lo; k < hi; ++k) {
      while (next < result.size() && result[next] < k) ++next;
      const bool present = next < result.size() && result[next] == k;
      ops_.push_back(operation{op_kind::contains, k, present, invoke,
                               response});
    }
    return result;
  }

  /// The completed history; call only after all recording threads have
  /// joined.
  [[nodiscard]] history take() {
    std::lock_guard<std::mutex> g(mutex_);
    return std::move(ops_);
  }

 private:
  template <typename F>
  bool record(op_kind kind, int key, F&& run) {
    const std::uint64_t invoke = clock_.fetch_add(1, std::memory_order_acq_rel);
    const bool result = run();
    const std::uint64_t response =
        clock_.fetch_add(1, std::memory_order_acq_rel);
    std::lock_guard<std::mutex> g(mutex_);
    ops_.push_back(operation{kind, key, result, invoke, response});
    return result;
  }

  template <typename F>
  std::vector<bool> record_batch(op_kind kind, const std::vector<int>& keys,
                                 F&& run) {
    const std::uint64_t invoke =
        clock_.fetch_add(1, std::memory_order_acq_rel);
    std::vector<bool> results = run();
    const std::uint64_t response =
        clock_.fetch_add(1, std::memory_order_acq_rel);
    std::lock_guard<std::mutex> g(mutex_);
    for (std::size_t i = 0; i < keys.size(); ++i) {
      ops_.push_back(operation{kind, keys[i], results[i], invoke, response});
    }
    return results;
  }

  std::atomic<std::uint64_t> clock_{0};
  std::mutex mutex_;
  history ops_;
};

}  // namespace lfbst::lincheck
