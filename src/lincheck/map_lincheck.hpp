// lfbst: linearizability checker for *map* histories — extends the set
// checker to nm_map's operation alphabet (get / insert / insert_or_assign
// / erase with values), so the single-CAS replace path gets the same
// exhaustive verification the set operations get.
//
// State is a small key→value map rather than a bitmask, so memoization
// hashes a canonical serialization. Same Wing–Gong search, same
// real-time constraint, histories up to ~20 operations.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <vector>

#include "common/assert.hpp"

namespace lfbst::lincheck {

enum class map_op_kind : std::uint8_t {
  get,            // result: found + value
  insert,         // keeps existing value; result: inserted?
  insert_assign,  // overwrites; result: inserted (vs assigned)?
  erase,          // result: removed?
};

struct map_operation {
  map_op_kind kind;
  int key;
  std::int64_t value;      // argument for insert/assign; ignored otherwise
  bool result;             // primary boolean result
  bool found;              // get only
  std::int64_t observed;   // get only: the value read (when found)
  std::uint64_t invoke;
  std::uint64_t response;
};

using map_history = std::vector<map_operation>;

class map_checker {
 public:
  static constexpr std::size_t max_ops = 64;

  [[nodiscard]] static bool is_linearizable(const map_history& h) {
    LFBST_ASSERT(h.size() <= max_ops, "history too long for map checker");
    map_checker c(h);
    std::map<int, std::int64_t> state;
    return c.search(state, 0);
  }

 private:
  explicit map_checker(const map_history& h) : ops_(h) {}

  bool search(std::map<int, std::int64_t>& state, std::uint64_t done) {
    if (done == ((ops_.size() == 64) ? ~std::uint64_t{0}
                                     : ((std::uint64_t{1} << ops_.size()) -
                                        1))) {
      return true;
    }
    const std::vector<std::int64_t> sig = signature(state, done);
    if (failed_.contains(sig)) return false;

    std::uint64_t min_response = ~std::uint64_t{0};
    for (std::size_t i = 0; i < ops_.size(); ++i) {
      if (!(done & (std::uint64_t{1} << i))) {
        min_response = std::min(min_response, ops_[i].response);
      }
    }
    for (std::size_t i = 0; i < ops_.size(); ++i) {
      const std::uint64_t bit = std::uint64_t{1} << i;
      if (done & bit) continue;
      if (ops_[i].invoke > min_response) continue;
      const map_operation& op = ops_[i];
      // Apply with undo (cheaper than copying the map per branch).
      std::optional<std::int64_t> saved;
      const auto it = state.find(op.key);
      if (it != state.end()) saved = it->second;
      if (!apply(op, state)) continue;
      if (search(state, done | bit)) return true;
      // Undo.
      if (saved.has_value()) {
        state[op.key] = *saved;
      } else {
        state.erase(op.key);
      }
    }
    failed_.insert(sig);
    return false;
  }

  static bool apply(const map_operation& op,
                    std::map<int, std::int64_t>& state) {
    const auto it = state.find(op.key);
    const bool present = it != state.end();
    switch (op.kind) {
      case map_op_kind::get:
        if (op.found != present) return false;
        if (present && op.observed != it->second) return false;
        return true;
      case map_op_kind::insert:
        if (op.result == present) return false;
        if (!present) state.emplace(op.key, op.value);
        return true;
      case map_op_kind::insert_assign:
        if (op.result != !present) return false;  // result = inserted?
        state[op.key] = op.value;
        return true;
      case map_op_kind::erase:
        if (op.result != present) return false;
        if (present) state.erase(it);
        return true;
    }
    return false;
  }

  /// Exact memo key (a hash could collide and wrongly prune a viable
  /// branch, turning the checker flaky); histories are small enough that
  /// exact keys are cheap.
  static std::vector<std::int64_t> signature(
      const std::map<int, std::int64_t>& state, std::uint64_t done) {
    std::vector<std::int64_t> sig;
    sig.reserve(1 + 2 * state.size());
    sig.push_back(static_cast<std::int64_t>(done));
    for (const auto& [k, v] : state) {
      sig.push_back(k);
      sig.push_back(v);
    }
    return sig;
  }

  const map_history& ops_;
  std::set<std::vector<std::int64_t>> failed_;
};

/// Recorder for map histories, mirroring lincheck::recorder.
class map_recorder {
 public:
  template <typename Map>
  bool insert(Map& m, int key, std::int64_t value) {
    const std::uint64_t t0 = tick();
    const bool r = m.insert(static_cast<typename Map::key_type>(key), value);
    record({map_op_kind::insert, key, value, r, false, 0, t0, tick()});
    return r;
  }
  template <typename Map>
  bool insert_or_assign(Map& m, int key, std::int64_t value) {
    const std::uint64_t t0 = tick();
    const bool r =
        m.insert_or_assign(static_cast<typename Map::key_type>(key), value);
    record({map_op_kind::insert_assign, key, value, r, false, 0, t0, tick()});
    return r;
  }
  template <typename Map>
  bool erase(Map& m, int key) {
    const std::uint64_t t0 = tick();
    const bool r = m.erase(static_cast<typename Map::key_type>(key));
    record({map_op_kind::erase, key, 0, r, false, 0, t0, tick()});
    return r;
  }
  template <typename Map>
  void get(Map& m, int key) {
    const std::uint64_t t0 = tick();
    const auto v = m.get(static_cast<typename Map::key_type>(key));
    record({map_op_kind::get, key, 0, v.has_value(), v.has_value(),
            v.has_value() ? *v : 0, t0, tick()});
  }

  [[nodiscard]] map_history take() {
    std::lock_guard<std::mutex> g(mutex_);
    return std::move(ops_);
  }

 private:
  std::uint64_t tick() {
    return clock_.fetch_add(1, std::memory_order_acq_rel);
  }
  void record(map_operation op) {
    std::lock_guard<std::mutex> g(mutex_);
    ops_.push_back(op);
  }

  std::atomic<std::uint64_t> clock_{0};
  std::mutex mutex_;
  map_history ops_;
};

}  // namespace lfbst::lincheck
