// lfbst: dense thread identifiers.
//
// Epoch-based reclamation and hazard pointers both need a small dense
// integer per participating thread so per-thread slots can live in flat
// arrays. std::this_thread::get_id() is opaque; this registry hands out
// indices 0..max_threads-1, recycling an index when its thread exits so
// long-running processes that churn threads (tests spawn thousands) do
// not exhaust the table.
#pragma once

#include <atomic>
#include <cstdint>

#include "common/assert.hpp"
#include "common/cacheline.hpp"

namespace lfbst {

/// Compile-time ceiling on simultaneously *live* registered threads.
/// Slots are recycled on thread exit, so total threads over a process
/// lifetime is unbounded.
inline constexpr unsigned max_threads = 256;

namespace detail {

class thread_slot_table {
 public:
  static thread_slot_table& instance() noexcept {
    static thread_slot_table table;
    return table;
  }

  unsigned acquire() noexcept {
    for (unsigned i = 0; i < max_threads; ++i) {
      bool expected = false;
      if (in_use_[i].value.compare_exchange_strong(
              expected, true, std::memory_order_acq_rel)) {
        return i;
      }
    }
    LFBST_ASSERT(false, "more than lfbst::max_threads live threads");
    return 0;  // unreachable
  }

  void release(unsigned idx) noexcept {
    in_use_[idx].value.store(false, std::memory_order_release);
  }

 private:
  thread_slot_table() = default;
  padded<std::atomic<bool>> in_use_[max_threads];
};

struct thread_slot_holder {
  unsigned idx;
  thread_slot_holder() noexcept
      : idx(thread_slot_table::instance().acquire()) {}
  ~thread_slot_holder() { thread_slot_table::instance().release(idx); }
};

}  // namespace detail

/// Dense id of the calling thread, assigned on first use, recycled at
/// thread exit. Stable for the thread's lifetime.
inline unsigned this_thread_index() noexcept {
  thread_local detail::thread_slot_holder holder;
  return holder.idx;
}

}  // namespace lfbst
