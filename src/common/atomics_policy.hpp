// lfbst: atomics policies — the interposition seam for deterministic
// schedule exploration.
//
// Every shared-memory step of the trees goes through tagged_word (loads,
// CASes, BTSes of child/update words). tagged_word is parameterized over
// an *atomics policy* whose single hook, shared_step(), runs immediately
// before each such step:
//
//   * atomics::native (default) — shared_step() is an empty inline
//     function; the optimizer erases it and the generated code is
//     byte-identical to calling std::atomic directly. Production and
//     benchmark builds use this and pay nothing.
//   * dsched::sched_atomics (src/dsched/atomics.hpp) — shared_step()
//     calls dsched::schedule_point(), handing control to the cooperative
//     scheduler so a test can choose which logical thread performs the
//     next shared-memory step. This is how tests/dsched/ drives the
//     paper's narrow interleavings deterministically.
//
// A policy is any type with `static void shared_step() noexcept` and a
// `name` constant; nothing else is required.
#pragma once

namespace lfbst::atomics {

/// The zero-cost default: shared-memory steps run unobserved, exactly as
/// std::atomic executes them.
struct native {
  static constexpr const char* name = "native";
  static void shared_step() noexcept {}
};

}  // namespace lfbst::atomics
