// lfbst: test-and-test-and-set spinlock.
//
// Used by the lock-based baselines (BCCO per-node locks, the coarse
// reference tree). TTAS with backoff: the inner read loop spins on a
// locally cached line and only attempts the RMW when the lock looks
// free, so contended acquisition does not saturate the interconnect.
// Meets Lockable, so std::lock_guard / std::scoped_lock work.
#pragma once

#include <atomic>

#include "common/backoff.hpp"

namespace lfbst {

class spinlock {
 public:
  spinlock() noexcept = default;
  spinlock(const spinlock&) = delete;
  spinlock& operator=(const spinlock&) = delete;

  void lock() noexcept {
    backoff delay;
    for (;;) {
      if (!locked_.exchange(true, std::memory_order_acquire)) return;
      // Spin on a plain load until the lock looks free; only then retry
      // the exchange. Avoids ping-ponging the line in exclusive state.
      while (locked_.load(std::memory_order_relaxed)) delay();
    }
  }

  bool try_lock() noexcept {
    return !locked_.load(std::memory_order_relaxed) &&
           !locked_.exchange(true, std::memory_order_acquire);
  }

  void unlock() noexcept { locked_.store(false, std::memory_order_release); }

  /// Observational query for assertions only (inherently racy).
  [[nodiscard]] bool is_locked_hint() const noexcept {
    return locked_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> locked_{false};
};

}  // namespace lfbst
