// lfbst: assertion macros.
//
// LFBST_ASSERT is active in all build types by default — lock-free
// invariant violations must fail loudly in RelWithDebInfo benchmark
// runs, not silently corrupt a later measurement. Define
// LFBST_DISABLE_ASSERTS to compile them out for peak-throughput runs.
#pragma once

#include <cstdio>
#include <cstdlib>

#if defined(LFBST_DISABLE_ASSERTS)
#define LFBST_ASSERT(cond, msg) ((void)0)
#else
#define LFBST_ASSERT(cond, msg)                                          \
  do {                                                                   \
    if (!(cond)) [[unlikely]] {                                          \
      std::fprintf(stderr, "lfbst assertion failed: %s\n  at %s:%d\n  %s\n", \
                   #cond, __FILE__, __LINE__, msg);                      \
      std::abort();                                                      \
    }                                                                    \
  } while (0)
#endif

// Invariants that are cheap enough to keep even in hot paths get
// LFBST_ASSERT; expensive structural checks live in validate.hpp and are
// invoked explicitly by tests.
