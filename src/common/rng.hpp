// lfbst: deterministic, cheap pseudo-random number generation.
//
// Benchmark loops must not bottleneck on the RNG or share RNG state
// between threads, and test failures must be replayable from a seed.
// We use two small generators:
//
//   * splitmix64 — stateless stream-splitter used for seeding.
//   * pcg32      — the workhorse per-thread generator (PCG-XSH-RR,
//                  O'Neill 2014): 64-bit state, 32-bit output, passes
//                  statistical test batteries, ~2 ns per draw.
#pragma once

#include <cstdint>
#include <limits>

namespace lfbst {

/// One step of splitmix64 (Vigna). Used to derive well-mixed per-thread
/// seeds from (base_seed, thread_index) without correlations between
/// adjacent streams.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// Minimal PCG32 engine. Satisfies UniformRandomBitGenerator so it can
/// also feed <random> distributions in tests.
class pcg32 {
 public:
  using result_type = std::uint32_t;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  constexpr pcg32() noexcept : pcg32(0x853C49E6748FEA9BULL) {}

  constexpr explicit pcg32(std::uint64_t seed,
                           std::uint64_t stream = 0xDA3E39CB94B95BDBULL) noexcept
      : state_(0), inc_((stream << 1u) | 1u) {
    next();
    state_ += seed;
    next();
  }

  /// Derives a generator for thread `tid` from a base seed such that
  /// different tids produce decorrelated streams.
  static pcg32 for_thread(std::uint64_t base_seed, unsigned tid) noexcept {
    std::uint64_t s = base_seed + 0x632BE59BD9B4E019ULL * (tid + 1);
    const std::uint64_t seed = splitmix64(s);
    const std::uint64_t stream = splitmix64(s);
    return pcg32(seed, stream);
  }

  constexpr result_type operator()() noexcept { return next(); }

  /// Uniform integer in [0, bound) without modulo bias for the bounds
  /// used here (Lemire's multiply-shift reduction; the tiny residual
  /// bias for non-power-of-two bounds is < 2^-32 and irrelevant for
  /// workload generation).
  constexpr std::uint32_t bounded(std::uint32_t bound) noexcept {
    return static_cast<std::uint32_t>(
        (static_cast<std::uint64_t>(next()) * bound) >> 32);
  }

  /// Uniform 64-bit draw (two 32-bit outputs).
  constexpr std::uint64_t next64() noexcept {
    return (static_cast<std::uint64_t>(next()) << 32) | next();
  }

  /// Uniform double in [0, 1): 53 random mantissa bits scaled by 2^-53.
  constexpr double uniform01() noexcept {
    return static_cast<double>(next64() >> 11) * 0x1.0p-53;
  }

 private:
  constexpr result_type next() noexcept {
    const std::uint64_t old = state_;
    state_ = old * 6364136223846793005ULL + inc_;
    const auto xorshifted =
        static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
    const auto rot = static_cast<std::uint32_t>(old >> 59u);
    return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
  }

  std::uint64_t state_;
  std::uint64_t inc_;
};

}  // namespace lfbst
