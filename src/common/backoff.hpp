// lfbst: bounded exponential backoff for CAS retry loops.
//
// Lock-free retry loops that fail a CAS under contention benefit from
// briefly yielding the core: the winning thread finishes faster and the
// loser's next attempt is more likely to succeed. On an oversubscribed
// machine (threads > cores) yielding is essential — spinning starves the
// thread that holds the next step of the algorithm.
#pragma once

#include <cstdint>
#include <thread>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace lfbst {

/// Single CPU relax hint (PAUSE on x86, YIELD on ARM, no-op otherwise).
inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  _mm_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

/// Truncated exponential backoff. Starts with a handful of PAUSEs,
/// doubles per failure, and escalates to std::this_thread::yield() once
/// the spin budget exceeds `yield_threshold` iterations — the right
/// behaviour when the machine is oversubscribed.
class backoff {
 public:
  explicit backoff(std::uint32_t initial_spins = 4,
                   std::uint32_t yield_threshold = 1024) noexcept
      : spins_(initial_spins), yield_threshold_(yield_threshold) {}

  /// Called after each failed attempt.
  void operator()() noexcept {
    if (spins_ >= yield_threshold_) {
      std::this_thread::yield();
      return;
    }
    for (std::uint32_t i = 0; i < spins_; ++i) cpu_relax();
    spins_ *= 2;
  }

  void reset(std::uint32_t initial_spins = 4) noexcept {
    spins_ = initial_spins;
  }

 private:
  std::uint32_t spins_;
  std::uint32_t yield_threshold_;
};

}  // namespace lfbst
