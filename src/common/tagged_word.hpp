// lfbst: tagged pointer words — the central substrate of the NM-BST.
//
// The Natarajan–Mittal algorithm coordinates conflicting operations by
// stealing two low-order bits from every child pointer stored in a tree
// node (paper §3.2):
//
//   bit 0: flag  — the edge's head node (a leaf) is being deleted; both
//                  the edge's tail and head will leave the tree.
//   bit 1: tag   — only the edge's tail node will leave the tree.
//
// Once either bit is set, the address part of that word never changes
// again ("once an edge has been marked, it cannot be changed"). That
// freeze is what lets a helper walk marked regions without validation.
//
// This header provides:
//   * tagged_ptr<Node>  — an immutable value: (address, flag, tag).
//   * tagged_word<Node> — an atomic cell holding a tagged_ptr, with the
//     three primitives the algorithm needs: load, CAS, and BTS
//     (bit-test-and-set on the tag bit, realized as fetch_or — the exact
//     lowering x86-64 uses for LOCK BTS — plus a CAS-only fallback for
//     the paper's "can be easily modified to use only CAS" variant).
//
// tagged_word takes an atomics policy (common/atomics_policy.hpp) as a
// second parameter: the default atomics::native compiles every primitive
// straight to std::atomic, while dsched::sched_atomics inserts a
// schedule point before each shared-memory step so the deterministic
// scheduler (src/dsched/) can explore interleavings.
#pragma once

#include <atomic>
#include <cstdint>
#include <type_traits>

#include "common/assert.hpp"
#include "common/atomics_policy.hpp"

namespace lfbst {

/// An immutable (pointer, flag, tag) triple packed into one machine word.
///
/// `Node` must be at least 4-byte aligned so the low two bits of any
/// valid node address are zero. Every heap allocation of a struct
/// containing a pointer or a word-sized integer satisfies this on all
/// supported targets; we still assert it at compile time where the node
/// type is complete.
template <typename Node>
class tagged_ptr {
 public:
  static constexpr std::uintptr_t flag_bit = 0x1;
  static constexpr std::uintptr_t tag_bit = 0x2;
  static constexpr std::uintptr_t mark_mask = flag_bit | tag_bit;
  static constexpr std::uintptr_t addr_mask = ~mark_mask;

  constexpr tagged_ptr() noexcept : bits_(0) {}

  /// Packs an address with explicit mark bits.
  tagged_ptr(Node* address, bool flagged, bool tagged) noexcept
      : bits_(reinterpret_cast<std::uintptr_t>(address) |
              (flagged ? flag_bit : 0) | (tagged ? tag_bit : 0)) {
    LFBST_ASSERT((reinterpret_cast<std::uintptr_t>(address) & mark_mask) == 0,
                 "node address must be 4-byte aligned to steal 2 bits");
  }

  /// Convenience: a clean (unmarked) pointer.
  static tagged_ptr clean(Node* address) noexcept {
    return tagged_ptr(address, /*flagged=*/false, /*tagged=*/false);
  }

  static constexpr tagged_ptr from_raw(std::uintptr_t raw) noexcept {
    tagged_ptr p;
    p.bits_ = raw;
    return p;
  }

  [[nodiscard]] Node* address() const noexcept {
    return reinterpret_cast<Node*>(bits_ & addr_mask);
  }
  [[nodiscard]] bool flagged() const noexcept { return bits_ & flag_bit; }
  [[nodiscard]] bool tagged() const noexcept { return bits_ & tag_bit; }
  /// True if either mark bit is set (the edge is owned by a delete).
  [[nodiscard]] bool marked() const noexcept { return bits_ & mark_mask; }
  [[nodiscard]] std::uintptr_t raw() const noexcept { return bits_; }

  /// The same address with different mark bits (used when copying the
  /// flag of a frozen sibling edge onto the replacement edge, Alg. 4
  /// line 108).
  [[nodiscard]] tagged_ptr with_marks(bool flagged, bool tagged) const noexcept {
    tagged_ptr p;
    p.bits_ = (bits_ & addr_mask) | (flagged ? flag_bit : 0) |
              (tagged ? tag_bit : 0);
    return p;
  }

  friend bool operator==(tagged_ptr a, tagged_ptr b) noexcept {
    return a.bits_ == b.bits_;
  }
  friend bool operator!=(tagged_ptr a, tagged_ptr b) noexcept {
    return a.bits_ != b.bits_;
  }

 private:
  std::uintptr_t bits_;
};

/// An atomic cell holding a tagged_ptr — one child field of a tree node.
///
/// Memory-ordering discipline (documented once here, relied on
/// everywhere): loads that begin a traversal use `acquire` so the node
/// contents published by the releasing CAS that linked the node are
/// visible; all RMWs (CAS, BTS) use `acq_rel` semantics or stronger. The
/// NM algorithm's correctness argument never relies on total store
/// order across *different* words, so seq_cst is unnecessary.
///
/// `Atomics` (common/atomics_policy.hpp) interposes on every
/// shared-memory primitive: Atomics::shared_step() runs before each
/// load/CAS/BTS. The native policy's hook is empty and vanishes.
template <typename Node, typename Atomics = atomics::native>
class tagged_word {
 public:
  using value_type = tagged_ptr<Node>;
  using atomics_policy = Atomics;

  tagged_word() noexcept : word_(0) {}
  explicit tagged_word(value_type v) noexcept : word_(v.raw()) {}

  tagged_word(const tagged_word&) = delete;
  tagged_word& operator=(const tagged_word&) = delete;

  [[nodiscard]] value_type load(
      std::memory_order order = std::memory_order_acquire) const noexcept {
    Atomics::shared_step();
    return value_type::from_raw(word_.load(order));
  }

  /// Unsynchronized store; only valid before the node is published
  /// (node construction) or during quiescent maintenance (destructor,
  /// validators).
  void store_relaxed(value_type v) noexcept {
    word_.store(v.raw(), std::memory_order_relaxed);
  }

  /// Single-word CAS, strong variant. Returns true on success. On
  /// failure `expected` is updated with the observed value, matching
  /// std::atomic so callers can inspect why they failed (Alg. 2 line 55
  /// re-reads the child word after a failed CAS — the updated expected
  /// value serves as that read).
  bool compare_exchange(value_type& expected, value_type desired) noexcept {
    Atomics::shared_step();
    std::uintptr_t raw = expected.raw();
    const bool ok = word_.compare_exchange_strong(
        raw, desired.raw(), std::memory_order_acq_rel,
        std::memory_order_acquire);
    if (!ok) expected = value_type::from_raw(raw);
    return ok;
  }

  /// Bit-test-and-set on the tag bit (paper's BTS instruction, §2).
  /// Unconditional: succeeds regardless of the word's current value, and
  /// the address part is untouched. Returns the value observed *before*
  /// the set, whose flag bit callers copy to the replacement edge.
  value_type bts_tag() noexcept {
    Atomics::shared_step();
    return value_type::from_raw(
        word_.fetch_or(value_type::tag_bit, std::memory_order_acq_rel));
  }

  /// The paper's CAS-only tagging variant (§1, §6): emulate BTS with a
  /// CAS retry loop. Equivalent observable behaviour, strictly more
  /// instructions under contention — bench_ablation --study=tagging
  /// quantifies the difference.
  value_type bts_tag_cas_only() noexcept {
    Atomics::shared_step();
    std::uintptr_t observed = word_.load(std::memory_order_acquire);
    while ((observed & value_type::tag_bit) == 0) {
      Atomics::shared_step();
      if (word_.compare_exchange_weak(observed, observed | value_type::tag_bit,
                                      std::memory_order_acq_rel,
                                      std::memory_order_acquire)) {
        break;
      }
    }
    return value_type::from_raw(observed);
  }

  /// Address of the underlying atomic, for tests that poke at raw state.
  std::atomic<std::uintptr_t>& raw_atomic() noexcept { return word_; }

 private:
  std::atomic<std::uintptr_t> word_;
};

static_assert(sizeof(tagged_word<int>) == sizeof(std::uintptr_t),
              "tagged_word must stay a single machine word");

}  // namespace lfbst
