// lfbst: cache-line geometry helpers.
//
// Concurrent counters, locks and per-thread slots are padded to a cache
// line so that logically independent state never shares a line (false
// sharing turns O(1) thread-local work into cross-core traffic).
#pragma once

#include <cstddef>
#include <new>

namespace lfbst {

// A fixed 64 rather than std::hardware_destructive_interference_size:
// the standard constant varies with -mtune (GCC even warns about using
// it across an ABI), while 64 bytes is correct for every x86-64 part and
// the common AArch64 ones; on the rare 128-byte-line machine the only
// cost is adjacent-line prefetcher noise, not correctness.
inline constexpr std::size_t cacheline_size = 64;

/// Wraps a value in its own cache line. Use for elements of per-thread
/// arrays that are written by different threads.
template <typename T>
struct alignas(cacheline_size) padded {
  T value{};

  padded() = default;
  explicit padded(const T& v) : value(v) {}

  T& operator*() noexcept { return value; }
  const T& operator*() const noexcept { return value; }
  T* operator->() noexcept { return &value; }
  const T* operator->() const noexcept { return &value; }
};

}  // namespace lfbst
