// lfbst: software prefetch hint for pointer-chasing descents.
//
// A BST seek is a dependent-load chain: each step's address comes from
// the previous step's load, so the hardware prefetcher cannot run
// ahead. Issuing an explicit prefetch for a just-loaded child address
// overlaps its cache/TLB miss with the remaining work of the current
// iteration (key compare, tag test, seek-record bookkeeping). The win
// is bounded by that overlap — a few cycles per level on a hot cache,
// more when the tree spills out of LLC — and it can never hurt
// correctness: prefetch is purely a hint with no memory-ordering
// effects, so it is safe to issue for any address, including nodes that
// a concurrent delete is about to excise.
#pragma once

namespace lfbst {

/// Read-only prefetch of the cache line holding `addr`, into all cache
/// levels. No-op where the builtin is unavailable; safe on any address.
inline void prefetch_ro(const void* addr) noexcept {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(addr, /*rw=*/0, /*locality=*/3);
#else
  (void)addr;
#endif
}

}  // namespace lfbst
