// lfbst: sense-reversing spin barrier for benchmark start/stop lines.
//
// std::barrier exists, but a benchmark start line needs every thread to
// leave the barrier as close to simultaneously as possible; the futex
// wake cascade of std::barrier smears wake-ups over tens of
// microseconds. A sense-reversing spin barrier releases all waiters with
// a single store. We fall back to yielding while spinning so the barrier
// also behaves on oversubscribed machines.
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>

#include "common/backoff.hpp"
#include "common/cacheline.hpp"

namespace lfbst {

class spin_barrier {
 public:
  explicit spin_barrier(std::uint32_t parties) noexcept
      : parties_(parties), remaining_(parties), sense_(false) {}

  spin_barrier(const spin_barrier&) = delete;
  spin_barrier& operator=(const spin_barrier&) = delete;

  /// Blocks until `parties` threads have arrived. Reusable: each
  /// generation flips the global sense.
  void arrive_and_wait() noexcept {
    const bool my_sense = !sense_.load(std::memory_order_relaxed);
    if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Last arriver resets the count and releases everyone.
      remaining_.store(parties_, std::memory_order_relaxed);
      sense_.store(my_sense, std::memory_order_release);
      return;
    }
    backoff delay;
    while (sense_.load(std::memory_order_acquire) != my_sense) delay();
  }

 private:
  const std::uint32_t parties_;
  alignas(cacheline_size) std::atomic<std::uint32_t> remaining_;
  alignas(cacheline_size) std::atomic<bool> sense_;
};

}  // namespace lfbst
