// lfbst: live telemetry — windowed metric snapshots off a running set.
//
// PR 2's obs layer answers "what happened?" at quiescence; this file
// answers "what is happening?" while writers run. Three pieces:
//
//   * telemetry_window — one sampling interval's worth of deltas:
//     merged counter deltas (rates, not lifetime totals), per-shard
//     point-op deltas (the load-share/imbalance signal ROADMAP item
//     3's rebalancer consumes), and p50/p99 latency and seek-depth
//     computed from histogram deltas over the window.
//
//   * telemetry_ring — a fixed ring of the most recent windows, each
//     slot a per-slot seqlock over plain atomic words: one writer (the
//     sampler) publishes, any number of readers (exposition endpoint,
//     stat-opcode handler, tests) read lock-free and TSan-clean; a
//     reader that loses the race to a wrapping writer simply fails
//     that slot and takes a newer window.
//
//   * sampler<Set> — a background thread that ticks every interval_ms:
//     snapshots each shard's counters (racy-monotone, see
//     obs/metrics.hpp), merges the live latency/seek histograms,
//     subtracts the previous tick's cumulative state, and publishes
//     the resulting window. It also owns the flight recorder: a
//     trace_log kept continuously armed whose last N milliseconds are
//     dumped to a Perfetto/Chrome-trace file when request_flight_dump()
//     fires (SIGUSR1 in lfbst_serve, or the stat opcode's dump flag —
//     the request is one atomic store, safe from a signal handler).
//
// Set must look like shard::sharded_set over obs::recording trees:
// shard_count(), shard_counters(i), merged_latency_histogram(kind),
// merged_seek_depth_histogram(). See docs/TELEMETRY.md for the window
// semantics and the Prometheus name table rendered by
// prometheus_text().
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <utility>

#include "core/stats.hpp"
#include "obs/heatmap.hpp"
#include "obs/histogram.hpp"
#include "obs/metrics.hpp"
#include "obs/prometheus.hpp"
#include "obs/trace.hpp"

namespace lfbst::obs {

/// Per-shard gauges cover this many shards; a set with more still gets
/// correct totals, but shards past the cap fold out of the share
/// breakdown (documented in docs/TELEMETRY.md).
inline constexpr std::size_t telemetry_max_shards = 64;

struct telemetry_window {
  std::uint64_t seq = 0;    // 0-based window index (ring position)
  std::uint64_t t0_ns = 0;  // window bounds, steady_clock
  std::uint64_t t1_ns = 0;
  std::uint64_t shard_count = 0;  // min(set shards, telemetry_max_shards)
  metrics_snapshot delta;         // merged counter deltas over the window
  std::array<std::uint64_t, telemetry_max_shards> shard_ops{};
  std::uint64_t lat_p50_ns = 0;  // from latency-histogram deltas
  std::uint64_t lat_p99_ns = 0;
  std::uint64_t seek_p50 = 0;  // from seek-depth-histogram deltas
  std::uint64_t seek_p99 = 0;

  [[nodiscard]] double seconds() const noexcept {
    return static_cast<double>(t1_ns - t0_ns) / 1e9;
  }
  [[nodiscard]] std::uint64_t point_ops() const noexcept {
    return delta.point_ops();
  }
  [[nodiscard]] double ops_per_sec() const noexcept {
    const double s = seconds();
    return s <= 0.0 ? 0.0 : static_cast<double>(point_ops()) / s;
  }
  /// Shard i's fraction of the window's point ops; shares sum to ~1
  /// (sampling skew only) whenever the window saw traffic.
  [[nodiscard]] double shard_share(std::size_t i) const noexcept {
    std::uint64_t total = 0;
    for (std::size_t s = 0; s < shard_count; ++s) total += shard_ops[s];
    return total == 0 ? 0.0
                      : static_cast<double>(shard_ops[i]) /
                            static_cast<double>(total);
  }
  /// The imbalance gauge: 1/shard_count is perfectly balanced, 1.0 is
  /// one shard taking everything.
  [[nodiscard]] double max_shard_share() const noexcept {
    double m = 0.0;
    for (std::size_t s = 0; s < shard_count; ++s) {
      const double sh = shard_share(s);
      if (sh > m) m = sh;
    }
    return m;
  }
};

/// Lock-free single-writer ring of the last `capacity` windows. Each
/// slot is a seqlock whose protected data is a fixed array of relaxed
/// atomic words, so torn reads are impossible by construction and a
/// concurrent wrap is detected by the sequence re-check.
class telemetry_ring {
 public:
  static constexpr std::size_t capacity = 64;

  /// Publishes `w` into slot w.seq % capacity. Single writer.
  void publish(const telemetry_window& w) noexcept {
    slot& s = slots_[w.seq % capacity];
    const std::uint64_t stable = 2 * (w.seq + 1);
    s.seq.store(stable - 1, std::memory_order_relaxed);  // odd: in progress
    std::atomic_thread_fence(std::memory_order_release);
    std::size_t i = 0;
    auto put = [&](std::uint64_t v) {
      s.words[i++].store(v, std::memory_order_relaxed);
    };
    put(w.t0_ns);
    put(w.t1_ns);
    put(w.shard_count);
    put(w.lat_p50_ns);
    put(w.lat_p99_ns);
    put(w.seek_p50);
    put(w.seek_p99);
    for (std::uint64_t v : w.delta.values) put(v);
    for (std::uint64_t v : w.shard_ops) put(v);
    s.seq.store(stable, std::memory_order_release);
    published_.store(w.seq + 1, std::memory_order_release);
  }

  /// Number of windows ever published; window seqs [published-capacity,
  /// published) are (racily) readable.
  [[nodiscard]] std::uint64_t published() const noexcept {
    return published_.load(std::memory_order_acquire);
  }

  /// Reads window `seq` into `out`. False if it was never published,
  /// has been overwritten, or was overwritten mid-read.
  [[nodiscard]] bool read(std::uint64_t seq,
                          telemetry_window& out) const noexcept {
    const slot& s = slots_[seq % capacity];
    const std::uint64_t want = 2 * (seq + 1);
    const std::uint64_t s1 = s.seq.load(std::memory_order_acquire);
    if (s1 != want) return false;
    std::size_t i = 0;
    auto get = [&] { return s.words[i++].load(std::memory_order_relaxed); };
    out.seq = seq;
    out.t0_ns = get();
    out.t1_ns = get();
    out.shard_count = get();
    out.lat_p50_ns = get();
    out.lat_p99_ns = get();
    out.seek_p50 = get();
    out.seek_p99 = get();
    for (std::uint64_t& v : out.delta.values) v = get();
    for (std::uint64_t& v : out.shard_ops) v = get();
    std::atomic_thread_fence(std::memory_order_acquire);
    return s.seq.load(std::memory_order_relaxed) == s1;
  }

  /// Most recent window, retrying across a concurrent wrap. False only
  /// before the first publish.
  [[nodiscard]] bool latest(telemetry_window& out) const noexcept {
    for (int attempt = 0; attempt < 8; ++attempt) {
      const std::uint64_t n = published();
      if (n == 0) return false;
      if (read(n - 1, out)) return true;
    }
    return false;
  }

 private:
  static constexpr std::size_t word_count =
      7 + counter_count + telemetry_max_shards;

  struct slot {
    std::atomic<std::uint64_t> seq{0};  // even = stable, odd = writing
    std::array<std::atomic<std::uint64_t>, word_count> words{};
  };

  std::array<slot, capacity> slots_{};
  std::atomic<std::uint64_t> published_{0};
};

struct telemetry_options {
  std::uint64_t interval_ms = 100;  // sampling period
  /// Flight-recorder dump target and how far back a dump reaches.
  std::string flight_path = "lfbst_flight.json";
  std::uint64_t flight_window_ms = 2000;
};

template <typename Set>
class sampler {
 public:
  explicit sampler(Set& set, telemetry_options opts = {})
      : set_(&set), opts_(std::move(opts)) {
    prime();
  }

  sampler(const sampler&) = delete;
  sampler& operator=(const sampler&) = delete;

  ~sampler() { stop(); }

  /// Spawns the background tick thread. The manual sample_now() must
  /// not be called while the thread runs (single-writer sampler state).
  void start() {
    if (thread_.joinable()) return;
    stop_.store(false, std::memory_order_release);
    thread_ = std::thread([this] { run(); });
  }

  /// Stops and joins; publishes one final window so nothing recorded
  /// between the last tick and stop() is lost.
  void stop() {
    if (!thread_.joinable()) return;
    stop_.store(true, std::memory_order_release);
    thread_.join();
  }

  /// One synchronous tick — deterministic windows for tests and
  /// non-threaded embeddings. Also services a pending flight dump.
  void sample_now() {
    tick();
    maybe_dump_flight();
  }

  [[nodiscard]] const telemetry_ring& ring() const noexcept { return ring_; }
  [[nodiscard]] bool latest(telemetry_window& out) const noexcept {
    return ring_.latest(out);
  }
  [[nodiscard]] std::uint64_t windows_published() const noexcept {
    return ring_.published();
  }

  // --- flight recorder ------------------------------------------------

  /// Arms `log` as the flight-recorder source (nullptr disarms). The
  /// log must outlive the attachment; the caller keeps it attached to
  /// the recording stats instances so it fills continuously.
  void attach_flight_recorder(trace_log* log) noexcept {
    flight_log_.store(log, std::memory_order_release);
  }

  /// Requests a dump of the last flight_window_ms of trace events to
  /// flight_path. One relaxed atomic store: safe from a signal handler
  /// (lfbst_serve wires SIGUSR1 here) and from the stat-opcode path.
  /// The dump itself runs on the sampler thread (or the next
  /// sample_now()).
  void request_flight_dump() noexcept {
    dump_requested_.store(true, std::memory_order_relaxed);
  }

  /// Completed dumps (each overwrites flight_path).
  [[nodiscard]] std::uint64_t flight_dumps() const noexcept {
    return flight_dumps_.load(std::memory_order_acquire);
  }
  [[nodiscard]] const std::string& flight_path() const noexcept {
    return opts_.flight_path;
  }

  // --- exposition -------------------------------------------------------

  /// Estimated real ops per heatmap hit for `hm` attached via the
  /// recording policy; exposed so the exposition can undo sampling.
  void attach_heatmap(const key_heatmap* hm) noexcept {
    heatmap_.store(hm, std::memory_order_release);
  }

  /// Renders the full telemetry family set (docs/TELEMETRY.md name
  /// table) into `w`. Thread-safe: reads fresh racy-monotone counter
  /// snapshots, the seqlocked latest window, and atomic heatmap cells —
  /// callable from the exposition endpoint while the sampler ticks.
  void render_prometheus(prometheus_writer& w) const {
    metrics_snapshot total;
    std::array<std::uint64_t, telemetry_max_shards> shard_total{};
    const std::size_t shards = gauged_shards();
    for (std::size_t i = 0; i < set_->shard_count(); ++i) {
      const metrics_snapshot snap = set_->shard_counters(i);
      if (i < telemetry_max_shards) shard_total[i] = snap.point_ops();
      total.merge(snap);
    }
    if constexpr (requires { set_->add_layer_counters(total); }) {
      set_->add_layer_counters(total);  // migrations etc. (shard layer)
    }

    for (std::size_t c = 0; c < counter_count; ++c) {
      const std::string name =
          std::string("lfbst_") +
          counter_name(static_cast<counter>(c)) + "_total";
      w.family(name, "Lifetime tree-op counter (obs::counter).",
               "counter");
      w.sample(name, "", total.values[c]);
    }

    w.family("lfbst_shard_ops_total",
             "Lifetime point ops (search+insert+erase) per shard.",
             "counter");
    for (std::size_t i = 0; i < shards; ++i) {
      w.sample("lfbst_shard_ops_total", shard_label(i), shard_total[i]);
    }

    w.family("lfbst_windows_published_total",
             "Telemetry windows published by the sampler.", "counter");
    w.sample("lfbst_windows_published_total", "", ring_.published());

    telemetry_window win;
    const bool have = ring_.latest(win);
    w.family("lfbst_window_seconds",
             "Wall length of the latest telemetry window.", "gauge");
    w.sample("lfbst_window_seconds", "", have ? win.seconds() : 0.0);
    w.family("lfbst_window_ops",
             "Point ops completed inside the latest window.", "gauge");
    w.sample("lfbst_window_ops", "", have ? win.point_ops() : 0);
    w.family("lfbst_window_ops_per_sec",
             "Point-op rate over the latest window.", "gauge");
    w.sample("lfbst_window_ops_per_sec", "",
             have ? win.ops_per_sec() : 0.0);

    w.family("lfbst_shard_window_ops",
             "Point ops per shard inside the latest window.", "gauge");
    w.family("lfbst_shard_share",
             "Shard's fraction of the latest window's point ops "
             "(imbalance sensor; sums to ~1 under load).",
             "gauge");
    for (std::size_t i = 0; i < shards; ++i) {
      w.sample("lfbst_shard_window_ops", shard_label(i),
               have ? win.shard_ops[i] : 0);
      w.sample("lfbst_shard_share", shard_label(i),
               have ? win.shard_share(i) : 0.0);
    }
    w.family("lfbst_shard_share_max",
             "Largest shard share in the latest window (1/shards = "
             "balanced).",
             "gauge");
    w.sample("lfbst_shard_share_max", "",
             have ? win.max_shard_share() : 0.0);

    w.family("lfbst_latency_window_ns",
             "Op latency quantiles over the latest window.", "gauge");
    w.sample("lfbst_latency_window_ns", "quantile=\"0.5\"",
             have ? win.lat_p50_ns : 0);
    w.sample("lfbst_latency_window_ns", "quantile=\"0.99\"",
             have ? win.lat_p99_ns : 0);
    w.family("lfbst_seek_depth_window",
             "Seek-depth quantiles over the latest window.", "gauge");
    w.sample("lfbst_seek_depth_window", "quantile=\"0.5\"",
             have ? win.seek_p50 : 0);
    w.sample("lfbst_seek_depth_window", "quantile=\"0.99\"",
             have ? win.seek_p99 : 0);

    if (const key_heatmap* hm =
            heatmap_.load(std::memory_order_acquire)) {
      w.family("lfbst_heatmap_samples_total",
               "Sampled per-op key-hotness hits.", "counter");
      w.sample("lfbst_heatmap_samples_total", "", hm->samples());
      w.family("lfbst_heatmap_ops_total",
               "Estimated ops per key-range bucket "
               "(samples x sampling factor).",
               "counter");
      const std::uint64_t factor = hm->ops_per_sample();
      for (std::size_t b = 0; b < key_heatmap::bucket_count; ++b) {
        char labels[64];
        std::snprintf(labels, sizeof(labels), "bucket=\"%zu\",lo=\"%lld\"",
                      b, static_cast<long long>(hm->bucket_lo(b)));
        w.sample("lfbst_heatmap_ops_total", labels,
                 hm->bucket(b) * factor);
      }
    }

    w.family("lfbst_flight_dumps_total",
             "Completed flight-recorder dumps.", "counter");
    w.sample("lfbst_flight_dumps_total", "", flight_dumps());
  }

  [[nodiscard]] std::string prometheus_text() const {
    prometheus_writer w;
    render_prometheus(w);
    return w.text();
  }

 private:
  [[nodiscard]] std::size_t gauged_shards() const noexcept {
    const std::size_t n = set_->shard_count();
    return n < telemetry_max_shards ? n : telemetry_max_shards;
  }

  static std::string shard_label(std::size_t i) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "shard=\"%zu\"", i);
    return buf;
  }

  /// Captures the cumulative baseline so the first window is "since
  /// sampler construction", not "since process start".
  void prime() {
    prev_t_ns_ = trace_log::now_ns();
    prev_total_ = metrics_snapshot{};
    const std::size_t shards = gauged_shards();
    for (std::size_t i = 0; i < set_->shard_count(); ++i) {
      const metrics_snapshot snap = set_->shard_counters(i);
      if (i < telemetry_max_shards) prev_shard_ops_[i] = snap.point_ops();
      prev_total_.merge(snap);
    }
    if constexpr (requires { set_->add_layer_counters(prev_total_); }) {
      set_->add_layer_counters(prev_total_);
    }
    prev_lat_ = merged_latency();
    prev_seek_ = set_->merged_seek_depth_histogram();
    (void)shards;
  }

  [[nodiscard]] histogram merged_latency() const {
    histogram h = set_->merged_latency_histogram(stats::op_kind::search);
    h.merge(set_->merged_latency_histogram(stats::op_kind::insert));
    h.merge(set_->merged_latency_histogram(stats::op_kind::erase));
    return h;
  }

  void tick() {
    const std::uint64_t t1 = trace_log::now_ns();
    metrics_snapshot total;
    std::array<std::uint64_t, telemetry_max_shards> shard_now{};
    for (std::size_t i = 0; i < set_->shard_count(); ++i) {
      const metrics_snapshot snap = set_->shard_counters(i);
      if (i < telemetry_max_shards) shard_now[i] = snap.point_ops();
      total.merge(snap);
    }
    if constexpr (requires { set_->add_layer_counters(total); }) {
      set_->add_layer_counters(total);  // window deltas include layer ops
    }
    const histogram lat = merged_latency();
    const histogram seek = set_->merged_seek_depth_histogram();
    const histogram lat_d = lat.delta_since(prev_lat_);
    const histogram seek_d = seek.delta_since(prev_seek_);

    telemetry_window w;
    w.seq = ring_.published();
    w.t0_ns = prev_t_ns_;
    w.t1_ns = t1;
    w.shard_count = gauged_shards();
    w.delta = total.delta_since(prev_total_);
    for (std::size_t i = 0; i < w.shard_count; ++i) {
      w.shard_ops[i] = shard_now[i] > prev_shard_ops_[i]
                           ? shard_now[i] - prev_shard_ops_[i]
                           : 0;
    }
    w.lat_p50_ns = lat_d.value_at_percentile(50);
    w.lat_p99_ns = lat_d.value_at_percentile(99);
    w.seek_p50 = seek_d.value_at_percentile(50);
    w.seek_p99 = seek_d.value_at_percentile(99);
    ring_.publish(w);

    prev_t_ns_ = t1;
    prev_total_ = total;
    prev_shard_ops_ = shard_now;
    prev_lat_ = lat;
    prev_seek_ = seek;
  }

  void maybe_dump_flight() {
    if (!dump_requested_.exchange(false, std::memory_order_relaxed)) return;
    trace_log* log = flight_log_.load(std::memory_order_acquire);
    if (log == nullptr) return;
    const std::uint64_t window_ns = opts_.flight_window_ms * 1000000ull;
    const std::uint64_t now = trace_log::now_ns();
    const std::uint64_t cutoff = now > window_ns ? now - window_ns : 0;
    const std::string json = log->chrome_trace_json(cutoff);
    if (std::FILE* f = std::fopen(opts_.flight_path.c_str(), "w")) {
      std::fwrite(json.data(), 1, json.size(), f);
      std::fclose(f);
      flight_dumps_.fetch_add(1, std::memory_order_release);
    }
  }

  void run() {
    using namespace std::chrono_literals;
    const std::uint64_t interval_ns = opts_.interval_ms * 1000000ull;
    std::uint64_t last = trace_log::now_ns();
    while (!stop_.load(std::memory_order_acquire)) {
      // Short dozes instead of one interval-long sleep: a flight-dump
      // request (signal or stat flag) is serviced within ~2 ms instead
      // of up to a full interval later, and stop() stays prompt.
      std::this_thread::sleep_for(2ms);
      if (dump_requested_.load(std::memory_order_relaxed)) {
        maybe_dump_flight();
      }
      const std::uint64_t now = trace_log::now_ns();
      if (now - last >= interval_ns) {
        tick();
        last = now;
      }
    }
    tick();  // final window: nothing between last tick and stop() is lost
    maybe_dump_flight();
  }

  Set* set_;
  telemetry_options opts_;
  telemetry_ring ring_;

  // Sampler-thread-only cumulative state (or the sample_now caller's).
  std::uint64_t prev_t_ns_ = 0;
  metrics_snapshot prev_total_;
  std::array<std::uint64_t, telemetry_max_shards> prev_shard_ops_{};
  histogram prev_lat_;
  histogram prev_seek_;

  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> dump_requested_{false};
  std::atomic<trace_log*> flight_log_{nullptr};
  std::atomic<const key_heatmap*> heatmap_{nullptr};
  std::atomic<std::uint64_t> flight_dumps_{0};
};

}  // namespace lfbst::obs
