// lfbst: key-range hotness heatmap.
//
// A fixed grid of atomic hit counters over a configurable key interval,
// fed by the obs::recording stats policy's per-op key hook
// (on_op_key). The hook is sampled — each thread counts ops and only
// records every 2^sample_shift'th one — so the hot path cost is one
// thread-local increment and a branch, and one relaxed fetch_add per
// sampled op. The resulting bucket counts estimate where in the key
// space traffic concentrates: the live-telemetry layer
// (obs/telemetry.hpp, docs/TELEMETRY.md) exposes them per scrape so a
// skewed or append-mostly key stream is visible while it happens, and
// ROADMAP item 3's splitter migration has a sensor to act on.
//
// Thread-safety: record() is safe from any thread (relaxed fetch_add —
// unlike the single-writer counter stripes, a shared bucket grid is
// cheap because only sampled ops reach it); snapshot()/samples() are
// safe any time and racy-monotone.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>

namespace lfbst::obs {

class key_heatmap {
 public:
  static constexpr std::size_t bucket_count = 64;

  /// Counts hits over [lo, hi) split into bucket_count equal ranges;
  /// keys outside the interval clamp to the edge buckets. Every
  /// 2^sample_shift'th op per thread is recorded (shift 0 = every op).
  explicit key_heatmap(std::int64_t lo = 0,
                       std::int64_t hi = std::int64_t{1} << 20,
                       unsigned sample_shift = 6) noexcept
      : lo_(lo), sample_mask_((1u << sample_shift) - 1) {
    const std::uint64_t span = static_cast<std::uint64_t>(hi) -
                               static_cast<std::uint64_t>(lo);
    width_ = span / bucket_count + 1;
  }

  key_heatmap(const key_heatmap&) = delete;
  key_heatmap& operator=(const key_heatmap&) = delete;

  /// The per-op hook body: count, subsample, bucket. Callable from any
  /// thread concurrently.
  void record(std::int64_t key) noexcept {
    thread_local std::uint32_t op_counter = 0;
    if ((op_counter++ & sample_mask_) != 0) return;
    buckets_[bucket_of(key)].fetch_add(1, std::memory_order_relaxed);
    samples_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Unsampled variant for callers that already decided to record.
  void record_always(std::int64_t key) noexcept {
    buckets_[bucket_of(key)].fetch_add(1, std::memory_order_relaxed);
    samples_.fetch_add(1, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t samples() const noexcept {
    return samples_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t bucket(std::size_t i) const noexcept {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  [[nodiscard]] std::array<std::uint64_t, bucket_count> snapshot()
      const noexcept {
    std::array<std::uint64_t, bucket_count> out{};
    for (std::size_t i = 0; i < bucket_count; ++i) out[i] = bucket(i);
    return out;
  }

  /// Inclusive lower bound of bucket i's key range (for labels/exports).
  [[nodiscard]] std::int64_t bucket_lo(std::size_t i) const noexcept {
    return static_cast<std::int64_t>(static_cast<std::uint64_t>(lo_) +
                                     width_ * i);
  }

  /// One sampled hit represents ~2^sample_shift real ops.
  [[nodiscard]] std::uint64_t ops_per_sample() const noexcept {
    return static_cast<std::uint64_t>(sample_mask_) + 1;
  }

  void reset() noexcept {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    samples_.store(0, std::memory_order_relaxed);
  }

 private:
  [[nodiscard]] std::size_t bucket_of(std::int64_t key) const noexcept {
    // Wrap-safe unsigned distance from lo; keys below lo wrap to huge
    // values and clamp to the top bucket together with keys above hi.
    const std::uint64_t off = static_cast<std::uint64_t>(key) -
                              static_cast<std::uint64_t>(lo_);
    const std::uint64_t idx = off / width_;
    return idx < bucket_count ? static_cast<std::size_t>(idx)
                              : bucket_count - 1;
  }

  std::int64_t lo_;
  std::uint64_t width_;
  std::uint32_t sample_mask_;
  std::array<std::atomic<std::uint64_t>, bucket_count> buckets_{};
  std::atomic<std::uint64_t> samples_{0};
};

}  // namespace lfbst::obs
