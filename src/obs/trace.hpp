// lfbst: lock-free binary event tracing.
//
// Every participating thread owns a fixed-size ring of 16-byte binary
// events; emitting is two relaxed atomic stores plus one release bump,
// so tracing a contended run perturbs it as little as possible. Rings
// overwrite their oldest events on overflow (the drop count stays
// queryable), and are drained into Chrome `trace_event` JSON that loads
// directly in Perfetto (ui.perfetto.dev) or chrome://tracing.
//
// Drains no longer require quiescence: every slot is stored as two
// atomic words, and the reader re-checks the ring head after reading a
// slot — an entry the writer has lapped during the read is discarded
// instead of being reported torn. The one remaining soft spot is the
// overwrite frontier (the single oldest retained slot, only while the
// writer is actively wrapping through it), where a drain may pair one
// event's timestamp with its successor's payload; both words are
// individually atomic so this is benign for a flight-recorder dump and
// impossible at quiescence. This is what lets obs/telemetry.hpp keep a
// ring continuously armed and dump the last N milliseconds on demand.
//
// Two producers feed a trace_log:
//   * the obs::recording stats policy (obs/metrics.hpp), attached to a
//     tree instance, emits the protocol events — op begin/end, CAS
//     failures, BTS, seek restarts, helps, cleanup and multi-leaf
//     excision;
//   * the process-global sink (set_global_trace_sink) catches the rare
//     substrate events that have no tree instance in scope — epoch
//     advances, hazard scans, node-pool slab refills. The sink is a
//     single relaxed atomic pointer; when unset (the default), emitting
//     a global event is one branch on paths that are already slow.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>

#include "common/cacheline.hpp"
#include "common/thread_id.hpp"

namespace lfbst::obs {

enum class event_type : std::uint16_t {
  op_begin = 1,   // aux = op kind (0 search / 1 insert / 2 erase)
  op_end,         // aux = op kind, arg = 1 if the op returned true
  cas_fail,       // a compare-exchange lost a race
  bts,            // sibling-edge tag (Alg. 4 line 106)
  seek_restart,   // re-seek after a failed CAS
  help,           // cleanup on behalf of another operation; aux = kind
  cleanup,        // cleanup() invocation (owner or helper)
  excision,       // ancestor CAS removed a region; arg = nodes excised
  epoch_advance,  // global epoch moved; arg = new epoch (low 32 bits)
  hazard_scan,    // hazard-pointer scan; arg = objects freed
  pool_refill,    // node pool grabbed a new slab; arg = blocks per slab
};

[[nodiscard]] inline const char* event_name(event_type t) noexcept {
  switch (t) {
    case event_type::op_begin: return "op";
    case event_type::op_end: return "op";
    case event_type::cas_fail: return "cas_fail";
    case event_type::bts: return "bts";
    case event_type::seek_restart: return "seek_restart";
    case event_type::help: return "help";
    case event_type::cleanup: return "cleanup";
    case event_type::excision: return "excision";
    case event_type::epoch_advance: return "epoch_advance";
    case event_type::hazard_scan: return "hazard_scan";
    case event_type::pool_refill: return "pool_refill";
  }
  return "unknown";
}

struct trace_event {
  std::uint64_t ts_ns;  // steady_clock, process-relative
  std::uint32_t arg;    // event-specific payload
  std::uint16_t type;   // event_type
  std::uint16_t aux;    // secondary payload (op kind, help kind)
};
static_assert(sizeof(trace_event) == 16, "events must stay 16 bytes");

/// Per-thread rings of binary trace events. emit() is safe from any
/// registered thread concurrently; draining (for_each_event,
/// chrome_trace_json) is safe concurrently with writers — lapped
/// entries are skipped, not torn (see header comment). recorded()/
/// dropped() are safe any time; clear() requires quiescence.
class trace_log {
 public:
  /// `capacity_per_thread` is rounded up to a power of two.
  explicit trace_log(std::size_t capacity_per_thread = 1u << 14)
      : rings_(new padded<ring>[max_threads]) {
    std::size_t cap = 1;
    while (cap < capacity_per_thread) cap <<= 1;
    capacity_ = cap;
  }

  trace_log(const trace_log&) = delete;
  trace_log& operator=(const trace_log&) = delete;

  [[nodiscard]] std::size_t capacity_per_thread() const noexcept {
    return capacity_;
  }

  void emit(event_type type, std::uint32_t arg = 0,
            std::uint16_t aux = 0) noexcept {
    ring& r = rings_[this_thread_index()].value;
    slot* buf = r.buf.load(std::memory_order_relaxed);
    if (buf == nullptr) {
      // First event from this thread: allocate its ring. Only the owner
      // thread ever stores the pointer; concurrent drains read it with
      // acquire so the slot array is visible before any head bump.
      buf = new slot[capacity_];
      r.buf.store(buf, std::memory_order_release);
    }
    const std::uint64_t head = r.head.load(std::memory_order_relaxed);
    slot& s = buf[head & (capacity_ - 1)];
    s.ts.store(now_ns(), std::memory_order_relaxed);
    s.packed.store(pack(type, arg, aux), std::memory_order_relaxed);
    r.head.store(head + 1, std::memory_order_release);
  }

  /// Total events ever emitted (including overwritten ones).
  [[nodiscard]] std::uint64_t recorded() const noexcept {
    std::uint64_t n = 0;
    for (unsigned t = 0; t < max_threads; ++t) {
      n += rings_[t].value.head.load(std::memory_order_relaxed);
    }
    return n;
  }

  /// Events lost to ring overwrite (oldest-dropped policy).
  [[nodiscard]] std::uint64_t dropped() const noexcept {
    std::uint64_t n = 0;
    for (unsigned t = 0; t < max_threads; ++t) {
      const std::uint64_t head =
          rings_[t].value.head.load(std::memory_order_relaxed);
      if (head > capacity_) n += head - capacity_;
    }
    return n;
  }

  /// Visits every retained event as (thread_slot, trace_event), oldest
  /// first per thread. Safe concurrently with writers: entries the
  /// owner thread overwrote while we were reading them are detected by
  /// re-checking the head and skipped.
  template <typename F>
  void for_each_event(F&& fn) const {
    for (unsigned t = 0; t < max_threads; ++t) {
      const ring& r = rings_[t].value;
      std::uint64_t head = r.head.load(std::memory_order_acquire);
      const slot* buf = r.buf.load(std::memory_order_acquire);
      if (head == 0 || buf == nullptr) continue;
      const std::uint64_t first = head > capacity_ ? head - capacity_ : 0;
      for (std::uint64_t i = first; i < head; ++i) {
        const slot& s = buf[i & (capacity_ - 1)];
        trace_event ev;
        ev.ts_ns = s.ts.load(std::memory_order_relaxed);
        const std::uint64_t packed = s.packed.load(std::memory_order_relaxed);
        std::atomic_thread_fence(std::memory_order_acquire);
        const std::uint64_t now_head =
            r.head.load(std::memory_order_relaxed);
        if (now_head - i > capacity_) continue;  // lapped while reading
        ev.type = static_cast<std::uint16_t>(packed >> 16 & 0xffffu);
        ev.aux = static_cast<std::uint16_t>(packed & 0xffffu);
        ev.arg = static_cast<std::uint32_t>(packed >> 32);
        fn(t, ev);
      }
    }
  }

  void clear() noexcept {
    for (unsigned t = 0; t < max_threads; ++t) {
      rings_[t].value.head.store(0, std::memory_order_relaxed);
    }
  }

  /// Drains every ring into Chrome trace_event JSON (the format Perfetto
  /// and chrome://tracing load). op_begin/op_end become duration ("B"/
  /// "E") events; everything else becomes an instant ("i") event with
  /// its arg attached. Events older than `min_ts_ns` are filtered out —
  /// the flight recorder's "last N milliseconds" cut. Safe concurrently
  /// with writers (see for_each_event).
  [[nodiscard]] std::string chrome_trace_json(
      std::uint64_t min_ts_ns = 0) const {
    std::string out;
    out.reserve(4096);
    out += "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
    bool first_event = true;
    for_each_event([&](unsigned tid, const trace_event& ev) {
      if (ev.ts_ns < min_ts_ns) return;
      if (!first_event) out += ',';
      first_event = false;
      const auto type = static_cast<event_type>(ev.type);
      char buf[192];
      const double ts_us = static_cast<double>(ev.ts_ns) / 1000.0;
      if (type == event_type::op_begin || type == event_type::op_end) {
        std::snprintf(buf, sizeof(buf),
                      "{\"name\":\"%s\",\"ph\":\"%s\",\"ts\":%.3f,"
                      "\"pid\":1,\"tid\":%u}",
                      op_kind_name(ev.aux),
                      type == event_type::op_begin ? "B" : "E", ts_us, tid);
      } else {
        std::snprintf(buf, sizeof(buf),
                      "{\"name\":\"%s\",\"ph\":\"i\",\"s\":\"t\","
                      "\"ts\":%.3f,\"pid\":1,\"tid\":%u,"
                      "\"args\":{\"arg\":%u}}",
                      event_name(type), ts_us, tid, ev.arg);
      }
      out += buf;
    });
    out += "]}";
    return out;
  }

  [[nodiscard]] static std::uint64_t now_ns() noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

 private:
  // Each event is two atomic words so concurrent drains never read a
  // torn value: ts, and arg<<32 | type<<16 | aux.
  struct slot {
    std::atomic<std::uint64_t> ts{0};
    std::atomic<std::uint64_t> packed{0};
  };

  struct ring {
    std::atomic<slot*> buf{nullptr};
    std::atomic<std::uint64_t> head{0};

    ~ring() { delete[] buf.load(std::memory_order_relaxed); }
  };

  static std::uint64_t pack(event_type type, std::uint32_t arg,
                            std::uint16_t aux) noexcept {
    return static_cast<std::uint64_t>(arg) << 32 |
           static_cast<std::uint64_t>(static_cast<std::uint16_t>(type))
               << 16 |
           static_cast<std::uint64_t>(aux);
  }

  static const char* op_kind_name(std::uint16_t kind) noexcept {
    switch (kind) {
      case 0: return "search";
      case 1: return "insert";
      case 2: return "erase";
    }
    return "op";
  }

  std::unique_ptr<padded<ring>[]> rings_;
  std::size_t capacity_ = 0;
};

// --- process-global sink for substrate events ---------------------------

inline std::atomic<trace_log*>& global_trace_sink() noexcept {
  static std::atomic<trace_log*> sink{nullptr};
  return sink;
}

inline void set_global_trace_sink(trace_log* log) noexcept {
  global_trace_sink().store(log, std::memory_order_release);
}

/// One relaxed load + branch when no sink is installed; used by the
/// reclamation substrates and the node pool on their slow paths.
inline void emit_global(event_type type, std::uint32_t arg = 0,
                        std::uint16_t aux = 0) noexcept {
  if (trace_log* log = global_trace_sink().load(std::memory_order_acquire)) {
    log->emit(type, arg, aux);
  }
}

}  // namespace lfbst::obs
