// lfbst: Prometheus / OpenMetrics text exposition writer.
//
// A tiny append-only builder for the text format scrapers and `curl`
// read: `# HELP` / `# TYPE` headers per metric family followed by
// `name{labels} value` samples. Used by the telemetry layer
// (obs/telemetry.hpp) and the server's exposition endpoint
// (server/stat_endpoint.hpp); the full name table lives in
// docs/TELEMETRY.md and is pinned by tools/check_prometheus.py in CI.
//
// Only the slice of the format we emit is supported: counter and gauge
// families, pre-rendered label strings, uint64 samples written exactly
// and double samples via %.17g (round-trippable).
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>

namespace lfbst::obs {

class prometheus_writer {
 public:
  /// Starts a metric family: emits the HELP/TYPE header. `type` is
  /// "counter" or "gauge". Call once per family, before its samples.
  void family(const std::string& name, const std::string& help,
              const char* type) {
    out_ += "# HELP ";
    out_ += name;
    out_ += ' ';
    out_ += help;
    out_ += "\n# TYPE ";
    out_ += name;
    out_ += ' ';
    out_ += type;
    out_ += '\n';
  }

  /// One sample. `labels` is either empty or a pre-rendered
  /// `key="value",...` list (no braces).
  void sample(const std::string& name, const std::string& labels,
              std::uint64_t value) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(value));
    sample_raw(name, labels, buf);
  }

  void sample(const std::string& name, const std::string& labels,
              double value) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    sample_raw(name, labels, buf);
  }

  [[nodiscard]] const std::string& text() const noexcept { return out_; }

 private:
  void sample_raw(const std::string& name, const std::string& labels,
                  const char* value) {
    out_ += name;
    if (!labels.empty()) {
      out_ += '{';
      out_ += labels;
      out_ += '}';
    }
    out_ += ' ';
    out_ += value;
    out_ += '\n';
  }

  std::string out_;
};

}  // namespace lfbst::obs
