// lfbst: mergeable log-linear (HDR-style) histogram.
//
// The observability layer records per-operation latencies and
// seek-path lengths into per-thread histogram instances that are merged
// at read time, so the record path is a single array increment with no
// synchronization. The bucket layout is the classic HDR scheme: values
// below 2*subbucket_count are recorded exactly (one bucket per value);
// above that, each power-of-two range is split into `subbucket_count`
// linear sub-buckets, bounding the relative quantization error by
// 1/subbucket_count (3.125% with the default 32 sub-buckets).
//
// Thread-safety: single writer, racy-monotone readers. Every cell is a
// relaxed atomic with exactly one writing thread (the owner records;
// merge()/copy targets are reader-owned temporaries), so a concurrent
// reader — the live telemetry sampler in obs/telemetry.hpp — is
// TSan-clean and observes some valid monotone partial state: each
// bucket it reads holds a count that was true at some point during the
// read. Cross-field totals (count vs sum vs buckets) may be mutually
// skewed by in-flight records; quantiles computed from such a snapshot
// are still meaningful because value_at_percentile walks the buckets it
// actually read. Exact totals require quiescence, as before.
//
// merge() is bucket-wise addition, hence associative and commutative;
// delta_since() is its inverse for window rates — both pinned by
// tests/obs/histogram_test.cpp.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>

namespace lfbst::obs {

class histogram {
 public:
  /// 2^5 = 32 linear sub-buckets per power-of-two range.
  static constexpr unsigned subbucket_bits = 5;
  static constexpr std::uint64_t subbucket_count = 1ull << subbucket_bits;
  /// Largest distinguishable value (~1.1e12 — 18 minutes in ns); larger
  /// samples clamp to this instead of being dropped.
  static constexpr std::uint64_t max_trackable = (1ull << 40) - 1;
  static constexpr std::size_t bucket_count_ =
      2 * subbucket_count +
      (40 - (subbucket_bits + 1)) * subbucket_count;  // 64 + 34*32 = 1152

  histogram() = default;

  // Copyable so per-thread instances can be merged into temporaries and
  // the sampler can keep previous-window snapshots. The copy reads the
  // source relaxed cell-by-cell (racy-monotone, see header comment).
  histogram(const histogram& other) noexcept { assign_from(other); }
  histogram& operator=(const histogram& other) noexcept {
    if (this != &other) assign_from(other);
    return *this;
  }

  void record(std::uint64_t value, std::uint64_t count = 1) noexcept {
    if (value > max_trackable) value = max_trackable;
    bump(buckets_[bucket_index(value)], count);
    const std::uint64_t prior = ld(count_);
    st(count_, prior + count);
    st(sum_, ld(sum_) + value * count);
    if (prior == 0 || value < ld(min_)) st(min_, value);
    if (value > ld(max_)) st(max_, value);
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return ld(count_); }
  [[nodiscard]] std::uint64_t sum() const noexcept { return ld(sum_); }
  [[nodiscard]] std::uint64_t min() const noexcept {
    return ld(count_) == 0 ? 0 : ld(min_);
  }
  [[nodiscard]] std::uint64_t max() const noexcept { return ld(max_); }
  [[nodiscard]] double mean() const noexcept {
    const std::uint64_t n = ld(count_);
    return n == 0 ? 0.0
                  : static_cast<double>(ld(sum_)) / static_cast<double>(n);
  }

  /// Smallest recorded-value upper bound v such that at least
  /// `percentile`% of all recorded samples are <= v. Exact for values
  /// below 2*subbucket_count; within 1/subbucket_count relative error
  /// above. percentile is in [0, 100]; 0 returns min(), 100 max().
  [[nodiscard]] std::uint64_t value_at_percentile(
      double percentile) const noexcept {
    const std::uint64_t total = ld(count_);
    if (total == 0) return 0;
    if (percentile <= 0.0) return min();
    double target_d = (percentile / 100.0) * static_cast<double>(total);
    auto target = static_cast<std::uint64_t>(target_d);
    if (static_cast<double>(target) < target_d) ++target;
    if (target == 0) target = 1;
    if (target > total) target = total;
    std::uint64_t cumulative = 0;
    const std::uint64_t cap = ld(max_);
    for (std::size_t i = 0; i < bucket_count_; ++i) {
      cumulative += ld(buckets_[i]);
      if (cumulative >= target) {
        const std::uint64_t v = highest_equivalent(i);
        return v > cap ? cap : v;
      }
    }
    return cap;
  }

  /// Bucket-wise addition. Associative and commutative; merging an empty
  /// histogram is the identity.
  void merge(const histogram& other) noexcept {
    for (std::size_t i = 0; i < bucket_count_; ++i) {
      bump(buckets_[i], ld(other.buckets_[i]));
    }
    const std::uint64_t other_count = ld(other.count_);
    if (other_count > 0) {
      if (ld(count_) == 0 || ld(other.min_) < ld(min_)) {
        st(min_, ld(other.min_));
      }
      if (ld(other.max_) > ld(max_)) st(max_, ld(other.max_));
    }
    st(count_, ld(count_) + other_count);
    st(sum_, ld(sum_) + ld(other.sum_));
  }

  /// Window algebra: the histogram of samples recorded in *this but not
  /// yet in `earlier`, where `earlier` is a previous snapshot of the
  /// same (possibly merged) recording stream. Bucket-wise saturating
  /// subtraction; count is recomputed from the delta buckets so it is
  /// always internally consistent even against a racy live snapshot.
  /// min/max of the delta are bucket-quantized bounds (the exact sample
  /// values are no longer known), so quantiles from a delta match a
  /// histogram rebuilt from the window's samples at bucket resolution —
  /// see DeltaQuantiles* in tests/obs/histogram_test.cpp.
  [[nodiscard]] histogram delta_since(const histogram& earlier) const {
    histogram d;
    std::uint64_t n = 0;
    std::uint64_t lo = 0;
    std::uint64_t hi = 0;
    bool any = false;
    for (std::size_t i = 0; i < bucket_count_; ++i) {
      const std::uint64_t now = ld(buckets_[i]);
      const std::uint64_t was = ld(earlier.buckets_[i]);
      const std::uint64_t diff = now > was ? now - was : 0;
      if (diff == 0) continue;
      st(d.buckets_[i], diff);
      n += diff;
      if (!any) {
        lo = lowest_of(i);
        any = true;
      }
      hi = highest_equivalent(i);
    }
    st(d.count_, n);
    const std::uint64_t s1 = ld(sum_);
    const std::uint64_t s0 = ld(earlier.sum_);
    st(d.sum_, s1 > s0 ? s1 - s0 : 0);
    if (any) {
      st(d.min_, lo);
      st(d.max_, hi > max_trackable ? max_trackable : hi);
    }
    return d;
  }

  void reset() noexcept {
    for (std::size_t i = 0; i < bucket_count_; ++i) st(buckets_[i], 0);
    st(count_, 0);
    st(sum_, 0);
    st(min_, 0);
    st(max_, 0);
  }

  /// Lowest/highest value mapping to the same bucket as `value` — the
  /// quantization interval (exposed for the exactness tests).
  [[nodiscard]] static std::uint64_t lowest_equivalent(
      std::uint64_t value) noexcept {
    return lowest_of(bucket_index(value > max_trackable ? max_trackable
                                                        : value));
  }
  [[nodiscard]] static std::uint64_t highest_equivalent_value(
      std::uint64_t value) noexcept {
    return highest_equivalent(
        bucket_index(value > max_trackable ? max_trackable : value));
  }

  [[nodiscard]] std::uint64_t bucket_value(std::size_t idx) const noexcept {
    return ld(buckets_[idx]);
  }

 private:
  using cell = std::atomic<std::uint64_t>;

  static std::uint64_t ld(const cell& c) noexcept {
    return c.load(std::memory_order_relaxed);
  }
  static void st(cell& c, std::uint64_t v) noexcept {
    c.store(v, std::memory_order_relaxed);
  }
  static void bump(cell& c, std::uint64_t n) noexcept {
    // Load/store, not fetch_add: each cell has one writer, so the RMW
    // (and its cross-core traffic) would buy nothing on the hot path.
    c.store(c.load(std::memory_order_relaxed) + n,
            std::memory_order_relaxed);
  }

  void assign_from(const histogram& other) noexcept {
    for (std::size_t i = 0; i < bucket_count_; ++i) {
      st(buckets_[i], ld(other.buckets_[i]));
    }
    st(count_, ld(other.count_));
    st(sum_, ld(other.sum_));
    st(min_, ld(other.min_));
    st(max_, ld(other.max_));
  }

  static std::size_t bucket_index(std::uint64_t v) noexcept {
    if (v < 2 * subbucket_count) return static_cast<std::size_t>(v);
    // msb position >= subbucket_bits + 1 here.
    const unsigned top = 63u - static_cast<unsigned>(std::countl_zero(v));
    const unsigned shift = top - subbucket_bits;
    const auto sub = static_cast<std::size_t>(v >> shift);  // [sb, 2sb)
    return 2 * subbucket_count + (shift - 1) * subbucket_count +
           (sub - subbucket_count);
  }

  static std::uint64_t lowest_of(std::size_t idx) noexcept {
    if (idx < 2 * subbucket_count) return idx;
    const std::size_t rel = idx - 2 * subbucket_count;
    const unsigned shift = static_cast<unsigned>(rel / subbucket_count) + 1;
    const std::uint64_t sub = rel % subbucket_count + subbucket_count;
    return sub << shift;
  }

  static std::uint64_t highest_equivalent(std::size_t idx) noexcept {
    if (idx < 2 * subbucket_count) return idx;
    const std::size_t rel = idx - 2 * subbucket_count;
    const unsigned shift = static_cast<unsigned>(rel / subbucket_count) + 1;
    const std::uint64_t sub = rel % subbucket_count + subbucket_count;
    return ((sub + 1) << shift) - 1;
  }

  std::array<cell, bucket_count_> buckets_{};
  cell count_{0};
  cell sum_{0};
  cell min_{0};
  cell max_{0};
};

}  // namespace lfbst::obs
