// lfbst: mergeable log-linear (HDR-style) histogram.
//
// The observability layer records per-operation latencies and
// seek-path lengths into per-thread histogram instances that are merged
// at read time, so the record path is a single array increment with no
// synchronization. The bucket layout is the classic HDR scheme: values
// below 2*subbucket_count are recorded exactly (one bucket per value);
// above that, each power-of-two range is split into `subbucket_count`
// linear sub-buckets, bounding the relative quantization error by
// 1/subbucket_count (3.125% with the default 32 sub-buckets).
//
// Thread-safety: none. One histogram per thread, merged at quiescence —
// merge() is bucket-wise addition, hence associative and commutative
// (pinned by tests/obs/histogram_test.cpp).
#pragma once

#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>

namespace lfbst::obs {

class histogram {
 public:
  /// 2^5 = 32 linear sub-buckets per power-of-two range.
  static constexpr unsigned subbucket_bits = 5;
  static constexpr std::uint64_t subbucket_count = 1ull << subbucket_bits;
  /// Largest distinguishable value (~1.1e12 — 18 minutes in ns); larger
  /// samples clamp to this instead of being dropped.
  static constexpr std::uint64_t max_trackable = (1ull << 40) - 1;
  static constexpr std::size_t bucket_count_ =
      2 * subbucket_count +
      (40 - (subbucket_bits + 1)) * subbucket_count;  // 64 + 34*32 = 1152

  void record(std::uint64_t value, std::uint64_t count = 1) noexcept {
    if (value > max_trackable) value = max_trackable;
    buckets_[bucket_index(value)] += count;
    count_ += count;
    sum_ += value * count;
    if (count_ == count || value < min_) min_ = value;
    if (value > max_) max_ = value;
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] std::uint64_t sum() const noexcept { return sum_; }
  [[nodiscard]] std::uint64_t min() const noexcept {
    return count_ == 0 ? 0 : min_;
  }
  [[nodiscard]] std::uint64_t max() const noexcept { return max_; }
  [[nodiscard]] double mean() const noexcept {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) /
                             static_cast<double>(count_);
  }

  /// Smallest recorded-value upper bound v such that at least
  /// `percentile`% of all recorded samples are <= v. Exact for values
  /// below 2*subbucket_count; within 1/subbucket_count relative error
  /// above. percentile is in [0, 100]; 0 returns min(), 100 max().
  [[nodiscard]] std::uint64_t value_at_percentile(
      double percentile) const noexcept {
    if (count_ == 0) return 0;
    if (percentile <= 0.0) return min();
    double target_d = (percentile / 100.0) * static_cast<double>(count_);
    auto target = static_cast<std::uint64_t>(target_d);
    if (static_cast<double>(target) < target_d) ++target;
    if (target == 0) target = 1;
    if (target > count_) target = count_;
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < bucket_count_; ++i) {
      cumulative += buckets_[i];
      if (cumulative >= target) {
        const std::uint64_t v = highest_equivalent(i);
        return v > max_ ? max_ : v;
      }
    }
    return max_;
  }

  /// Bucket-wise addition. Associative and commutative; merging an empty
  /// histogram is the identity.
  void merge(const histogram& other) noexcept {
    for (std::size_t i = 0; i < bucket_count_; ++i) {
      buckets_[i] += other.buckets_[i];
    }
    if (other.count_ > 0) {
      if (count_ == 0 || other.min_ < min_) min_ = other.min_;
      if (other.max_ > max_) max_ = other.max_;
    }
    count_ += other.count_;
    sum_ += other.sum_;
  }

  void reset() noexcept { *this = histogram{}; }

  /// Lowest/highest value mapping to the same bucket as `value` — the
  /// quantization interval (exposed for the exactness tests).
  [[nodiscard]] static std::uint64_t lowest_equivalent(
      std::uint64_t value) noexcept {
    return lowest_of(bucket_index(value > max_trackable ? max_trackable
                                                        : value));
  }
  [[nodiscard]] static std::uint64_t highest_equivalent_value(
      std::uint64_t value) noexcept {
    return highest_equivalent(
        bucket_index(value > max_trackable ? max_trackable : value));
  }

  [[nodiscard]] std::uint64_t bucket_value(std::size_t idx) const noexcept {
    return buckets_[idx];
  }

 private:
  static std::size_t bucket_index(std::uint64_t v) noexcept {
    if (v < 2 * subbucket_count) return static_cast<std::size_t>(v);
    // msb position >= subbucket_bits + 1 here.
    const unsigned top = 63u - static_cast<unsigned>(std::countl_zero(v));
    const unsigned shift = top - subbucket_bits;
    const auto sub = static_cast<std::size_t>(v >> shift);  // [sb, 2sb)
    return 2 * subbucket_count + (shift - 1) * subbucket_count +
           (sub - subbucket_count);
  }

  static std::uint64_t lowest_of(std::size_t idx) noexcept {
    if (idx < 2 * subbucket_count) return idx;
    const std::size_t rel = idx - 2 * subbucket_count;
    const unsigned shift = static_cast<unsigned>(rel / subbucket_count) + 1;
    const std::uint64_t sub = rel % subbucket_count + subbucket_count;
    return sub << shift;
  }

  static std::uint64_t highest_equivalent(std::size_t idx) noexcept {
    if (idx < 2 * subbucket_count) return idx;
    const std::size_t rel = idx - 2 * subbucket_count;
    const unsigned shift = static_cast<unsigned>(rel / subbucket_count) + 1;
    const std::uint64_t sub = rel % subbucket_count + subbucket_count;
    return ((sub + 1) << shift) - 1;
  }

  std::array<std::uint64_t, bucket_count_> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
};

}  // namespace lfbst::obs
