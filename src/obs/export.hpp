// lfbst: JSON snapshot export for the observability layer.
//
// A deliberately small hand-rolled JSON DOM (json::value) with dump()
// and parse(): enough to serialize metrics snapshots, histograms and
// bench results, and to round-trip them in tests — not a general JSON
// library. Strings are escaped; numbers are either int64 (exact) or
// double; parse() accepts exactly what dump() produces plus ordinary
// whitespace.
//
// The bench export schema ("lfbst-bench-v1") is the contract between
// every bench's --json flag, tools/check_bench_json.py and
// tools/plot_figure4.py:
//
//   {
//     "schema": "lfbst-bench-v1",
//     "bench": "<bench name>",
//     "config": { ... flat scalars: flags, build info ... },
//     "results": [ { ... one flat row per measurement ... }, ... ]
//   }
#pragma once

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/stats.hpp"
#include "obs/histogram.hpp"
#include "obs/metrics.hpp"

namespace lfbst::obs::json {

/// Minimal JSON DOM. Object keys keep insertion order (stable output).
class value {
 public:
  enum class kind { null, boolean, integer, number, string, array, object };

  value() : kind_(kind::null) {}
  value(std::nullptr_t) : kind_(kind::null) {}
  value(bool b) : kind_(kind::boolean), bool_(b) {}
  value(std::int64_t i) : kind_(kind::integer), int_(i) {}
  value(std::uint64_t u)
      : kind_(kind::integer), int_(static_cast<std::int64_t>(u)) {}
  value(int i) : kind_(kind::integer), int_(i) {}
  value(unsigned u) : kind_(kind::integer), int_(u) {}
  value(double d) : kind_(kind::number), num_(d) {}
  value(const char* s) : kind_(kind::string), str_(s) {}
  value(std::string s) : kind_(kind::string), str_(std::move(s)) {}

  static value array() {
    value v;
    v.kind_ = kind::array;
    return v;
  }
  static value object() {
    value v;
    v.kind_ = kind::object;
    return v;
  }

  [[nodiscard]] kind type() const noexcept { return kind_; }
  [[nodiscard]] bool is_null() const noexcept { return kind_ == kind::null; }
  [[nodiscard]] bool is_object() const noexcept {
    return kind_ == kind::object;
  }
  [[nodiscard]] bool is_array() const noexcept { return kind_ == kind::array; }

  [[nodiscard]] bool as_bool() const { return bool_; }
  [[nodiscard]] std::int64_t as_int() const {
    return kind_ == kind::number ? static_cast<std::int64_t>(num_) : int_;
  }
  [[nodiscard]] std::uint64_t as_uint() const {
    return static_cast<std::uint64_t>(as_int());
  }
  [[nodiscard]] double as_double() const {
    return kind_ == kind::integer ? static_cast<double>(int_) : num_;
  }
  [[nodiscard]] const std::string& as_string() const { return str_; }

  // --- array ----------------------------------------------------------
  void push_back(value v) {
    kind_ = kind::array;
    items_.push_back(std::move(v));
  }
  [[nodiscard]] std::size_t size() const noexcept { return items_.size(); }
  [[nodiscard]] const value& operator[](std::size_t i) const {
    return items_[i];
  }
  [[nodiscard]] const std::vector<value>& items() const noexcept {
    return items_;
  }

  // --- object ---------------------------------------------------------
  value& set(const std::string& key, value v) {
    kind_ = kind::object;
    for (auto& [k, existing] : members_) {
      if (k == key) {
        existing = std::move(v);
        return *this;
      }
    }
    members_.emplace_back(key, std::move(v));
    return *this;
  }
  [[nodiscard]] bool contains(const std::string& key) const noexcept {
    for (const auto& [k, v] : members_) {
      if (k == key) return true;
    }
    return false;
  }
  [[nodiscard]] const value& at(const std::string& key) const {
    for (const auto& [k, v] : members_) {
      if (k == key) return v;
    }
    throw std::out_of_range("json: missing key: " + key);
  }
  [[nodiscard]] const std::vector<std::pair<std::string, value>>& members()
      const noexcept {
    return members_;
  }

  // --- serialization --------------------------------------------------
  [[nodiscard]] std::string dump(int indent = 0) const {
    std::string out;
    dump_to(out, indent, 0);
    return out;
  }

  /// Parses a complete JSON document; throws std::runtime_error on any
  /// syntax error or trailing garbage.
  [[nodiscard]] static value parse(const std::string& text) {
    std::size_t pos = 0;
    value v = parse_value(text, pos);
    skip_ws(text, pos);
    if (pos != text.size()) {
      throw std::runtime_error("json: trailing characters at offset " +
                               std::to_string(pos));
    }
    return v;
  }

 private:
  void dump_to(std::string& out, int indent, int depth) const {
    const std::string pad =
        indent > 0 ? std::string(static_cast<std::size_t>(indent) *
                                     (static_cast<std::size_t>(depth) + 1),
                                 ' ')
                   : std::string();
    const std::string close_pad =
        indent > 0 ? std::string(
                         static_cast<std::size_t>(indent) *
                             static_cast<std::size_t>(depth),
                         ' ')
                   : std::string();
    const char* nl = indent > 0 ? "\n" : "";
    switch (kind_) {
      case kind::null: out += "null"; break;
      case kind::boolean: out += bool_ ? "true" : "false"; break;
      case kind::integer: out += std::to_string(int_); break;
      case kind::number: {
        if (std::isfinite(num_)) {
          char buf[32];
          std::snprintf(buf, sizeof(buf), "%.17g", num_);
          out += buf;
        } else {
          out += "null";  // JSON has no inf/nan
        }
        break;
      }
      case kind::string: append_escaped(out, str_); break;
      case kind::array: {
        if (items_.empty()) {
          out += "[]";
          break;
        }
        out += '[';
        out += nl;
        for (std::size_t i = 0; i < items_.size(); ++i) {
          out += pad;
          items_[i].dump_to(out, indent, depth + 1);
          if (i + 1 < items_.size()) out += ',';
          out += nl;
        }
        out += close_pad;
        out += ']';
        break;
      }
      case kind::object: {
        if (members_.empty()) {
          out += "{}";
          break;
        }
        out += '{';
        out += nl;
        for (std::size_t i = 0; i < members_.size(); ++i) {
          out += pad;
          append_escaped(out, members_[i].first);
          out += indent > 0 ? ": " : ":";
          members_[i].second.dump_to(out, indent, depth + 1);
          if (i + 1 < members_.size()) out += ',';
          out += nl;
        }
        out += close_pad;
        out += '}';
        break;
      }
    }
  }

  static void append_escaped(std::string& out, const std::string& s) {
    out += '"';
    for (char c : s) {
      switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x",
                          static_cast<unsigned>(c));
            out += buf;
          } else {
            out += c;
          }
      }
    }
    out += '"';
  }

  static void skip_ws(const std::string& s, std::size_t& pos) {
    while (pos < s.size() && (s[pos] == ' ' || s[pos] == '\t' ||
                              s[pos] == '\n' || s[pos] == '\r')) {
      ++pos;
    }
  }

  [[noreturn]] static void fail(const char* what, std::size_t pos) {
    throw std::runtime_error(std::string("json: ") + what + " at offset " +
                             std::to_string(pos));
  }

  static value parse_value(const std::string& s, std::size_t& pos) {
    skip_ws(s, pos);
    if (pos >= s.size()) fail("unexpected end of input", pos);
    switch (s[pos]) {
      case '{': return parse_object(s, pos);
      case '[': return parse_array(s, pos);
      case '"': return value(parse_string(s, pos));
      case 't':
        expect(s, pos, "true");
        return value(true);
      case 'f':
        expect(s, pos, "false");
        return value(false);
      case 'n':
        expect(s, pos, "null");
        return value(nullptr);
      default: return parse_number(s, pos);
    }
  }

  static void expect(const std::string& s, std::size_t& pos,
                     const char* word) {
    for (const char* p = word; *p != '\0'; ++p, ++pos) {
      if (pos >= s.size() || s[pos] != *p) fail("invalid literal", pos);
    }
  }

  static value parse_object(const std::string& s, std::size_t& pos) {
    value obj = value::object();
    ++pos;  // '{'
    skip_ws(s, pos);
    if (pos < s.size() && s[pos] == '}') {
      ++pos;
      return obj;
    }
    while (true) {
      skip_ws(s, pos);
      if (pos >= s.size() || s[pos] != '"') fail("expected object key", pos);
      std::string key = parse_string(s, pos);
      skip_ws(s, pos);
      if (pos >= s.size() || s[pos] != ':') fail("expected ':'", pos);
      ++pos;
      obj.set(key, parse_value(s, pos));
      skip_ws(s, pos);
      if (pos >= s.size()) fail("unterminated object", pos);
      if (s[pos] == ',') {
        ++pos;
        continue;
      }
      if (s[pos] == '}') {
        ++pos;
        return obj;
      }
      fail("expected ',' or '}'", pos);
    }
  }

  static value parse_array(const std::string& s, std::size_t& pos) {
    value arr = value::array();
    ++pos;  // '['
    skip_ws(s, pos);
    if (pos < s.size() && s[pos] == ']') {
      ++pos;
      return arr;
    }
    while (true) {
      arr.push_back(parse_value(s, pos));
      skip_ws(s, pos);
      if (pos >= s.size()) fail("unterminated array", pos);
      if (s[pos] == ',') {
        ++pos;
        continue;
      }
      if (s[pos] == ']') {
        ++pos;
        return arr;
      }
      fail("expected ',' or ']'", pos);
    }
  }

  static std::string parse_string(const std::string& s, std::size_t& pos) {
    ++pos;  // '"'
    std::string out;
    while (pos < s.size() && s[pos] != '"') {
      char c = s[pos];
      if (c == '\\') {
        ++pos;
        if (pos >= s.size()) fail("unterminated escape", pos);
        switch (s[pos]) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            if (pos + 4 >= s.size()) fail("truncated \\u escape", pos);
            unsigned code = 0;
            for (int i = 1; i <= 4; ++i) {
              char h = s[pos + static_cast<std::size_t>(i)];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f')
                code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F')
                code |= static_cast<unsigned>(h - 'A' + 10);
              else fail("invalid \\u escape", pos);
            }
            pos += 4;
            // Only BMP code points below 0x80 are emitted by dump();
            // encode anything else as UTF-8 for completeness.
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default: fail("invalid escape", pos);
        }
        ++pos;
      } else {
        out += c;
        ++pos;
      }
    }
    if (pos >= s.size()) fail("unterminated string", pos);
    ++pos;  // closing '"'
    return out;
  }

  static value parse_number(const std::string& s, std::size_t& pos) {
    const std::size_t start = pos;
    if (pos < s.size() && s[pos] == '-') ++pos;
    bool is_float = false;
    while (pos < s.size()) {
      char c = s[pos];
      if (c >= '0' && c <= '9') {
        ++pos;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        is_float = true;
        ++pos;
      } else {
        break;
      }
    }
    if (pos == start) fail("invalid number", pos);
    const std::string tok = s.substr(start, pos - start);
    try {
      if (is_float) return value(std::stod(tok));
      return value(static_cast<std::int64_t>(std::stoll(tok)));
    } catch (const std::exception&) {
      fail("unparsable number", start);
    }
  }

  kind kind_ = kind::null;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double num_ = 0.0;
  std::string str_;
  std::vector<value> items_;
  std::vector<std::pair<std::string, value>> members_;
};

}  // namespace lfbst::obs::json

namespace lfbst::obs {

/// Histogram → JSON: summary stats and the standard percentile ladder.
[[nodiscard]] inline json::value histogram_to_json(const histogram& h) {
  json::value v = json::value::object();
  v.set("count", h.count());
  v.set("sum", h.sum());
  v.set("min", h.min());
  v.set("max", h.max());
  v.set("mean", h.mean());
  v.set("p50", h.value_at_percentile(50));
  v.set("p90", h.value_at_percentile(90));
  v.set("p99", h.value_at_percentile(99));
  v.set("p999", h.value_at_percentile(99.9));
  return v;
}

/// Metrics snapshot → JSON object of counter-name → value.
[[nodiscard]] inline json::value metrics_to_json(const metrics_snapshot& s) {
  json::value v = json::value::object();
  for (std::size_t i = 0; i < counter_count; ++i) {
    v.set(counter_name(static_cast<counter>(i)), s.values[i]);
  }
  return v;
}

[[nodiscard]] inline json::value metrics_to_json(const metrics& m) {
  return metrics_to_json(m.snapshot());
}

/// Full snapshot of a recording policy: counters + per-op latency
/// histograms + seek-depth distribution. Quiescence required.
[[nodiscard]] inline json::value snapshot_to_json(const recording& rec) {
  json::value v = json::value::object();
  v.set("counters", metrics_to_json(rec.counters()));
  json::value lat = json::value::object();
  for (auto kind : {stats::op_kind::search, stats::op_kind::insert,
                    stats::op_kind::erase}) {
    lat.set(stats::op_kind_name(kind),
            histogram_to_json(rec.latency_histogram(kind)));
  }
  v.set("latency_ns", std::move(lat));
  v.set("seek_depth", histogram_to_json(rec.seek_depth_histogram()));
  return v;
}

/// The bench --json contract. Benches fill config with their flags and
/// append one flat row per measurement; write_file() emits the document
/// checked by tools/check_bench_json.py and read by plot_figure4.py.
struct bench_report {
  static constexpr const char* schema_version = "lfbst-bench-v1";

  explicit bench_report(std::string bench_name)
      : bench(std::move(bench_name)) {}

  std::string bench;
  json::value config = json::value::object();
  json::value results = json::value::array();

  void add_result(json::value row) { results.push_back(std::move(row)); }

  [[nodiscard]] json::value to_json() const {
    json::value doc = json::value::object();
    doc.set("schema", schema_version);
    doc.set("bench", bench);
    doc.set("config", config);
    doc.set("results", results);
    return doc;
  }

  /// Returns false (and prints to stderr) if the file cannot be written.
  bool write_file(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "error: cannot write JSON to %s\n", path.c_str());
      return false;
    }
    const std::string text = to_json().dump(2);
    std::fwrite(text.data(), 1, text.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    return true;
  }
};

/// Converts a harness::text_table (header + string rows) into flat JSON
/// rows, coercing numeric-looking cells to numbers so downstream tools
/// get real types. Benches that already build a table for text output
/// reuse it for --json.
[[nodiscard]] inline json::value rows_from_table(
    const std::vector<std::string>& header,
    const std::vector<std::vector<std::string>>& rows) {
  auto coerce = [](const std::string& cell) -> json::value {
    if (cell.empty()) return json::value(cell);
    char* end = nullptr;
    const long long i = std::strtoll(cell.c_str(), &end, 10);
    if (end != nullptr && *end == '\0') {
      return json::value(static_cast<std::int64_t>(i));
    }
    const double d = std::strtod(cell.c_str(), &end);
    if (end != nullptr && *end == '\0') return json::value(d);
    return json::value(cell);
  };
  json::value out = json::value::array();
  for (const auto& row : rows) {
    json::value obj = json::value::object();
    for (std::size_t c = 0; c < header.size() && c < row.size(); ++c) {
      obj.set(header[c], coerce(row[c]));
    }
    out.push_back(std::move(obj));
  }
  return out;
}

}  // namespace lfbst::obs
