// lfbst: per-tree-instance metrics — the observability layer's answer
// to the "one instrumented tree at a time" limitation of
// stats::counting (core/stats.hpp).
//
// Three pieces:
//
//   * metrics          — a registry of cache-line-padded per-thread
//                        counter stripes. Increments on the hot path are
//                        relaxed atomic load/store pairs (each stripe
//                        has exactly one writer: its thread); reads
//                        aggregate all stripes. Any number of instances
//                        can be live at once, so every tree gets its own
//                        attribution.
//   * recording        — a Stats policy (the trees' Stats template
//                        parameter) that owns a metrics registry plus
//                        per-thread latency and seek-depth histograms,
//                        and optionally mirrors events into a trace_log.
//                        Drop-in alternative to stats::counting with
//                        per-instance state.
//   * latency_observer — a harness::run_workload observer that records
//                        per-op wall latencies into striped histograms
//                        (one per op kind), for benches that want
//                        percentile output without instrumenting the
//                        tree itself.
//
// Aggregation (snapshot(), merged histograms) is designed for
// quiescent or monotonically racy reads: counters and histogram cells
// are atomics, so a concurrent snapshot is TSan-clean and observes
// some valid partial sums. Exact totals still require quiescence; the
// live telemetry sampler (obs/telemetry.hpp) deliberately consumes the
// racy-monotone form.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>

#include "common/cacheline.hpp"
#include "common/thread_id.hpp"
#include "core/stats.hpp"  // op_kind / help_kind vocabulary (no further deps)
#include "obs/heatmap.hpp"
#include "obs/histogram.hpp"
#include "obs/trace.hpp"

namespace lfbst::obs {

/// The counter set. Stable names (counter_name) appear in JSON exports.
enum class counter : unsigned {
  ops_search,
  ops_insert,
  ops_erase,
  ops_succeeded,   // ops whose boolean result was true
  allocs,          // nodes/records allocated
  cas,             // CAS attempts (success or failure)
  cas_failed,      // CAS attempts that lost a race
  bts,             // sibling-edge tags
  seek_restarts,   // re-seeks after a failed CAS
  restarts_injection_fail,  // ... caused by a lost injection CAS
  restarts_cleanup_mode,    // ... caused by erase's cleanup retrying
  seek_resumes_local,       // retry seeks resumed from the anchor edge
  seek_anchor_fallbacks,    // retry seeks that fell back to the root
                            // because anchor validation failed
  helps,           // cleanups run on behalf of other operations
  helps_flagged,   // ... attributed to a flagged edge
  helps_tagged,    // ... attributed to a tagged edge
  cleanups,        // cleanup() invocations (owner or helper)
  excisions,       // successful ancestor-CAS removals
  excised_nodes,   // total nodes removed by those excisions (>2 per
                   // excision is the paper's Fig. 2 multi-leaf removal)
  ops_scan,            // completed range_scan/for_each calls
  scan_keys_visited,   // keys emitted across all scans
  scan_restarts,       // scan validation failures forcing a re-descent
  migrations,          // completed shard subrange migrations
  keys_migrated,       // keys moved between shards by migrations
  dual_route_window_ns,  // total wall time keys spent dual-routed
  kCount
};

inline constexpr std::size_t counter_count =
    static_cast<std::size_t>(counter::kCount);

[[nodiscard]] inline const char* counter_name(counter c) noexcept {
  switch (c) {
    case counter::ops_search: return "ops_search";
    case counter::ops_insert: return "ops_insert";
    case counter::ops_erase: return "ops_erase";
    case counter::ops_succeeded: return "ops_succeeded";
    case counter::allocs: return "allocs";
    case counter::cas: return "cas";
    case counter::cas_failed: return "cas_failed";
    case counter::bts: return "bts";
    case counter::seek_restarts: return "seek_restarts";
    case counter::restarts_injection_fail: return "restarts_injection_fail";
    case counter::restarts_cleanup_mode: return "restarts_cleanup_mode";
    case counter::seek_resumes_local: return "seek_resumes_local";
    case counter::seek_anchor_fallbacks: return "seek_anchor_fallbacks";
    case counter::helps: return "helps";
    case counter::helps_flagged: return "helps_flagged";
    case counter::helps_tagged: return "helps_tagged";
    case counter::cleanups: return "cleanups";
    case counter::excisions: return "excisions";
    case counter::excised_nodes: return "excised_nodes";
    case counter::ops_scan: return "ops_scan";
    case counter::scan_keys_visited: return "scan_keys_visited";
    case counter::scan_restarts: return "scan_restarts";
    case counter::migrations: return "migrations";
    case counter::keys_migrated: return "keys_migrated";
    case counter::dual_route_window_ns: return "dual_route_window_ns";
    case counter::kCount: break;
  }
  return "unknown";
}

struct metrics_snapshot {
  std::array<std::uint64_t, counter_count> values{};

  [[nodiscard]] std::uint64_t operator[](counter c) const noexcept {
    return values[static_cast<std::size_t>(c)];
  }

  /// Counter-wise addition — the same associative/commutative merge
  /// algebra as histogram::merge(). Lets callers that own several
  /// instrumented instances (one registry per tree; see
  /// shard/sharded_set.hpp) fold their snapshots into one attribution.
  metrics_snapshot& merge(const metrics_snapshot& other) noexcept {
    for (std::size_t c = 0; c < counter_count; ++c) {
      values[c] += other.values[c];
    }
    return *this;
  }

  /// Counter-wise saturating subtraction — the window-delta inverse of
  /// merge(), used by the telemetry sampler to turn two cumulative
  /// snapshots into a per-window rate. Saturating because a live
  /// snapshot pair may be mutually skewed by in-flight increments.
  [[nodiscard]] metrics_snapshot delta_since(
      const metrics_snapshot& earlier) const noexcept {
    metrics_snapshot d;
    for (std::size_t c = 0; c < counter_count; ++c) {
      d.values[c] =
          values[c] > earlier.values[c] ? values[c] - earlier.values[c] : 0;
    }
    return d;
  }

  /// Point ops (search + insert + erase) — the denominator for
  /// per-shard load shares.
  [[nodiscard]] std::uint64_t point_ops() const noexcept {
    return (*this)[counter::ops_search] + (*this)[counter::ops_insert] +
           (*this)[counter::ops_erase];
  }
};

/// Per-instance striped counter registry. add() must be called from a
/// registered thread (this_thread_index()); each stripe is written only
/// by its owning thread, so increments are relaxed load/store pairs —
/// no RMW, no cross-core traffic on the hot path.
class metrics {
 public:
  metrics() : stripes_(new stripe[max_threads]) {}

  metrics(const metrics&) = delete;
  metrics& operator=(const metrics&) = delete;

  void add(counter c, std::uint64_t n = 1) noexcept {
    std::atomic<std::uint64_t>& cell =
        stripes_[this_thread_index()].values[static_cast<std::size_t>(c)];
    cell.store(cell.load(std::memory_order_relaxed) + n,
               std::memory_order_relaxed);
  }

  [[nodiscard]] metrics_snapshot snapshot() const noexcept {
    metrics_snapshot s;
    for (unsigned t = 0; t < max_threads; ++t) {
      for (std::size_t c = 0; c < counter_count; ++c) {
        s.values[c] +=
            stripes_[t].values[c].load(std::memory_order_relaxed);
      }
    }
    return s;
  }

  [[nodiscard]] std::uint64_t total(counter c) const noexcept {
    std::uint64_t n = 0;
    for (unsigned t = 0; t < max_threads; ++t) {
      n += stripes_[t]
               .values[static_cast<std::size_t>(c)]
               .load(std::memory_order_relaxed);
    }
    return n;
  }

  void reset() noexcept {
    for (unsigned t = 0; t < max_threads; ++t) {
      for (std::size_t c = 0; c < counter_count; ++c) {
        stripes_[t].values[c].store(0, std::memory_order_relaxed);
      }
    }
  }

 private:
  struct alignas(cacheline_size) stripe {
    std::array<std::atomic<std::uint64_t>, counter_count> values{};
  };

  std::unique_ptr<stripe[]> stripes_;
};

/// Stats policy with per-instance state: striped counters, per-thread
/// latency histograms (one per op kind) and seek-depth histograms, and
/// an optional trace_log mirror. Use as the trees' Stats parameter:
///
///   nm_tree<long, std::less<long>, reclaim::leaky, obs::recording> t;
///   t.insert(42);
///   auto snap = t.stats().counters().snapshot();
///   auto p99 = t.stats().latency_histogram(stats::op_kind::insert)
///                  .value_at_percentile(99);
///
/// Hook methods are const (called through the tree's mutable stats
/// member from const operations like contains()).
class recording {
 public:
  static constexpr bool enabled = true;

  recording()
      : metrics_(new metrics()),
        threads_(new padded<thread_state>[max_threads]) {}

  recording(const recording&) = delete;
  recording& operator=(const recording&) = delete;

  // --- the Stats hook surface (see core/stats.hpp) --------------------

  void on_alloc(std::uint64_t n = 1) const noexcept {
    metrics_->add(counter::allocs, n);
  }
  void on_cas() const noexcept { metrics_->add(counter::cas); }
  void on_cas_fail() const noexcept {
    metrics_->add(counter::cas_failed);
    trace(event_type::cas_fail);
  }
  void on_bts() const noexcept {
    metrics_->add(counter::bts);
    trace(event_type::bts);
  }
  void on_seek_restart() const noexcept {
    metrics_->add(counter::seek_restarts);
    trace(event_type::seek_restart);
  }
  void on_seek_restart(stats::restart_kind kind) const noexcept {
    metrics_->add(counter::seek_restarts);
    metrics_->add(kind == stats::restart_kind::injection_fail
                      ? counter::restarts_injection_fail
                      : counter::restarts_cleanup_mode);
    trace(event_type::seek_restart, 0, static_cast<std::uint16_t>(kind));
  }
  void on_seek_resume_local() const noexcept {
    metrics_->add(counter::seek_resumes_local);
  }
  void on_seek_anchor_fallback() const noexcept {
    metrics_->add(counter::seek_anchor_fallbacks);
  }
  void on_help() const noexcept {
    on_help(stats::help_kind::unattributed);
  }
  void on_help(stats::help_kind kind) const noexcept {
    metrics_->add(counter::helps);
    if (kind == stats::help_kind::flagged_edge) {
      metrics_->add(counter::helps_flagged);
    } else if (kind == stats::help_kind::tagged_edge) {
      metrics_->add(counter::helps_tagged);
    }
    trace(event_type::help, 0, static_cast<std::uint16_t>(kind));
  }
  void on_cleanup() const noexcept {
    metrics_->add(counter::cleanups);
    trace(event_type::cleanup);
  }
  void on_excision(std::uint64_t nodes) const noexcept {
    metrics_->add(counter::excisions);
    metrics_->add(counter::excised_nodes, nodes);
    trace(event_type::excision, static_cast<std::uint32_t>(nodes));
  }

  void on_op_begin(stats::op_kind kind) const noexcept {
    switch (kind) {
      case stats::op_kind::search: metrics_->add(counter::ops_search); break;
      case stats::op_kind::insert: metrics_->add(counter::ops_insert); break;
      case stats::op_kind::erase: metrics_->add(counter::ops_erase); break;
    }
    local().op_start_ns = now_ns();
    trace(event_type::op_begin, 0, static_cast<std::uint16_t>(kind));
  }

  void on_op_end(stats::op_kind kind, bool result) const noexcept {
    thread_state& ts = local();
    const std::uint64_t elapsed = now_ns() - ts.op_start_ns;
    ts.latency[static_cast<std::size_t>(kind)].record(elapsed);
    if (result) metrics_->add(counter::ops_succeeded);
    trace(event_type::op_end, result ? 1 : 0,
          static_cast<std::uint16_t>(kind));
  }

  void on_seek(std::uint64_t depth) const noexcept {
    local().seek_depth.record(depth);
  }

  /// Per-op key hook feeding the hotness heatmap. The tree calls this
  /// (gated by `if constexpr (requires ...)` and an integral key) right
  /// after on_op_begin; with no heatmap attached it is one relaxed load
  /// and a branch.
  void on_op_key(stats::op_kind /*kind*/, std::int64_t key) const noexcept {
    if (key_heatmap* hm = heatmap_.load(std::memory_order_relaxed)) {
      hm->record(key);
    }
  }

  void on_scan_op(std::uint64_t keys_visited) const noexcept {
    metrics_->add(counter::ops_scan);
    metrics_->add(counter::scan_keys_visited, keys_visited);
  }
  void on_scan_restart() const noexcept {
    metrics_->add(counter::scan_restarts);
  }

  // --- instance access ------------------------------------------------

  [[nodiscard]] metrics& counters() const noexcept { return *metrics_; }

  /// Merged over all threads. Safe concurrently with writers
  /// (racy-monotone, see obs/histogram.hpp); exact at quiescence.
  [[nodiscard]] histogram latency_histogram(stats::op_kind kind) const {
    histogram merged;
    for (unsigned t = 0; t < max_threads; ++t) {
      merged.merge(
          threads_[t].value.latency[static_cast<std::size_t>(kind)]);
    }
    return merged;
  }

  /// Merged seek-path-length distribution. Same read contract as
  /// latency_histogram.
  [[nodiscard]] histogram seek_depth_histogram() const {
    histogram merged;
    for (unsigned t = 0; t < max_threads; ++t) {
      merged.merge(threads_[t].value.seek_depth);
    }
    return merged;
  }

  /// Mirror every event into `log` (nullptr detaches). The log must
  /// outlive the attachment.
  void attach_trace(trace_log* log) noexcept {
    trace_.store(log, std::memory_order_release);
  }
  [[nodiscard]] trace_log* attached_trace() const noexcept {
    return trace_.load(std::memory_order_acquire);
  }

  /// Route sampled per-op keys into `hm` (nullptr detaches). The
  /// heatmap must outlive the attachment.
  void attach_heatmap(key_heatmap* hm) noexcept {
    heatmap_.store(hm, std::memory_order_release);
  }
  [[nodiscard]] key_heatmap* attached_heatmap() const noexcept {
    return heatmap_.load(std::memory_order_acquire);
  }

 private:
  struct thread_state {
    std::uint64_t op_start_ns = 0;
    std::array<histogram, 3> latency;  // indexed by op_kind
    histogram seek_depth;
  };

  thread_state& local() const noexcept {
    return threads_[this_thread_index()].value;
  }

  void trace(event_type type, std::uint32_t arg = 0,
             std::uint16_t aux = 0) const noexcept {
    if (trace_log* log = trace_.load(std::memory_order_relaxed)) {
      log->emit(type, arg, aux);
    }
  }

  static std::uint64_t now_ns() noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

  std::unique_ptr<metrics> metrics_;
  std::unique_ptr<padded<thread_state>[]> threads_;
  std::atomic<trace_log*> trace_{nullptr};
  std::atomic<key_heatmap*> heatmap_{nullptr};
};

/// run_workload observer recording each operation's wall latency into
/// per-thread, per-op-kind histograms (see harness/runner.hpp).
class latency_observer {
 public:
  static constexpr bool observes_ops = true;

  latency_observer() : threads_(new padded<thread_state>[max_threads]) {}

  latency_observer(const latency_observer&) = delete;
  latency_observer& operator=(const latency_observer&) = delete;

  void on_op(unsigned /*worker*/, stats::op_kind kind, bool /*result*/,
             std::uint64_t latency_ns) noexcept {
    threads_[this_thread_index()]
        .value.latency[static_cast<std::size_t>(kind)]
        .record(latency_ns);
  }

  /// Merged over all threads. Quiescence required.
  [[nodiscard]] histogram merged(stats::op_kind kind) const {
    histogram h;
    for (unsigned t = 0; t < max_threads; ++t) {
      h.merge(threads_[t].value.latency[static_cast<std::size_t>(kind)]);
    }
    return h;
  }

  /// All op kinds combined.
  [[nodiscard]] histogram merged_all() const {
    histogram h;
    for (unsigned t = 0; t < max_threads; ++t) {
      for (const histogram& per_kind : threads_[t].value.latency) {
        h.merge(per_kind);
      }
    }
    return h;
  }

 private:
  struct thread_state {
    std::array<histogram, 3> latency;
  };

  std::unique_ptr<padded<thread_state>[]> threads_;
};

}  // namespace lfbst::obs
