// lfbst — Fast Concurrent Lock-Free Binary Search Trees.
//
// Umbrella header: pulls in the paper's NM-BST (lfbst::nm_tree), the
// three baselines from the paper's evaluation (efrb_tree, hj_tree,
// bcco_tree), the coarse reference tree, and the policy types needed to
// configure them. Include individual headers instead if you only need
// one tree.
//
//   #include <lfbst/lfbst.hpp>
//   lfbst::nm_tree<long> set;
//   set.insert(42);
//   set.contains(42);
//   set.erase(42);
#pragma once

#include "common/backoff.hpp"
#include "common/barrier.hpp"
#include "common/rng.hpp"
#include "common/spinlock.hpp"
#include "common/tagged_word.hpp"

#include "alloc/node_pool.hpp"

#include "obs/export.hpp"
#include "obs/histogram.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

#include "reclaim/epoch.hpp"
#include "reclaim/hazard_pointers.hpp"
#include "reclaim/hazard_reclaimer.hpp"
#include "reclaim/leaky.hpp"

#include "core/concurrent_set.hpp"
#include "core/key_scramble.hpp"
#include "core/natarajan_tree.hpp"
#include "core/nm_map.hpp"
#include "core/restart_policy.hpp"
#include "core/sentinel_key.hpp"
#include "core/stats.hpp"
#include "core/tag_policy.hpp"

#include "multiway/kary_tree.hpp"

#include "shard/router.hpp"
#include "shard/sharded_set.hpp"

#include "baselines/bcco_tree.hpp"
#include "baselines/coarse_tree.hpp"
#include "baselines/dvy_tree.hpp"
#include "baselines/efrb_tree.hpp"
#include "baselines/hj_tree.hpp"

namespace lfbst {

static_assert(ConcurrentSet<nm_tree<long>>);
static_assert(ConcurrentSet<efrb_tree<long>>);
static_assert(ConcurrentSet<hj_tree<long>>);
static_assert(ConcurrentSet<bcco_tree<long>>);
static_assert(ConcurrentSet<coarse_tree<long>>);
static_assert(ConcurrentSet<dvy_tree<long>>);
static_assert(ConcurrentSet<kary_tree<long, 4>>);
static_assert(ConcurrentSet<kary_tree<long>>);  // tuned default fanout
static_assert(ConcurrentSet<
              kary_tree<long, 8, std::less<long>, reclaim::hazard>>);
static_assert(ConcurrentSet<
              kary_tree<long, 8, std::less<long>, reclaim::epoch, stats::none,
                        atomics::native, restart::from_root>>);
static_assert(ConcurrentSet<shard::sharded_set<kary_tree<long, 8>>>);
static_assert(ConcurrentSet<nm_tree<long, std::less<long>, reclaim::hazard>>);
static_assert(ConcurrentSet<
              nm_tree<long, std::less<long>, reclaim::leaky, stats::none,
                      tag_policy::bts, void, atomics::native,
                      restart::from_root>>);
static_assert(ConcurrentSet<
              nm_tree<long, std::less<long>, reclaim::hazard, stats::none,
                      tag_policy::bts, void, atomics::native,
                      restart::from_anchor>>);
static_assert(ConcurrentSet<shard::sharded_set<nm_tree<long>>>);
static_assert(ConcurrentSet<shard::sharded_set<efrb_tree<long>>>);
static_assert(ConcurrentSet<shard::sharded_set<hj_tree<long>>>);
// The adversarial-shape mitigation layer (docs/RESILIENCE.md): the
// scramble adapter over a tree, and over the sharded front-end.
static_assert(ConcurrentSet<scrambled_set<nm_tree<long>>>);
static_assert(ConcurrentSet<scrambled_set<shard::sharded_set<nm_tree<long>>>>);

}  // namespace lfbst
