// lfbst server: a TCP front-end that serves a concurrent set over the
// length-prefixed wire protocol of src/server/protocol.hpp — the layer
// that turns the NM-BST reproduction into a network service and forces
// honest answers about batching, admission and tail latency.
//
// Architecture (Linux epoll, level-agnostic one-shot-free design):
//
//   * `event_threads` event loops, each with its own epoll instance and
//     its own set of connections (no connection is ever touched by two
//     loops, so per-connection state needs no locks). Loop 0 owns the
//     listening socket and hands accepted connections out round-robin
//     via per-loop eventfd-signalled inboxes.
//   * Per connection: a read buffer fed by non-blocking reads, a
//     decoded-request inbox (the *bounded per-connection queue*, cap
//     `max_inflight`), and a write buffer flushed opportunistically and
//     then by EPOLLOUT.
//   * Request coalescing: the inbox is drained in maximal runs of
//     same-opcode point requests (get/get/get...), and each run is
//     executed through the set's contains_batch / insert_batch /
//     erase_batch — one counting sort in shard::sharded_set amortizes
//     across the whole pipelined run. Responses are emitted in input
//     order (the protocol has request ids, but order is guaranteed per
//     connection anyway).
//   * Backpressure: when a connection's unflushed write bytes exceed
//     `write_buffer_cap`, the loop stops draining its inbox and stops
//     reading from its socket (EPOLLIN disarmed) until EPOLLOUT flushes
//     it below `write_buffer_resume` — a slow reader throttles only
//     itself; TCP pushes the backpressure to the client.
//   * Graceful drain (begin_drain(), async-signal-safe; see
//     drain_on_sigterm): stop accepting, answer every request received
//     before the drain, NACK (status shutting_down) frames that were
//     still in the kernel socket buffer, flush, close. A drain deadline
//     force-closes stragglers so join() always returns.
//
// Scan requests use shard::sharded_set::range_scan_limit — the
// bounded-result form — so one scan of a huge subrange returns one
// clamped page plus a continuation key instead of head-of-line-blocking
// the connection behind a multi-megabyte response.
//
// Observability: per-request service latency (decode → response
// encoded) flows through an obs::latency_observer (get and range_scan
// record as op_kind::search; a batch frame records one sample under its
// sub-op), and the server keeps its own wire-level counters
// (server_stats). The tree-level attribution lives in the set itself
// (e.g. sharded_set::merged_counters() when the inner tree records).
#pragma once

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <signal.h>  // NOLINT: sigaction needs the POSIX header
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/stats.hpp"
#include "obs/metrics.hpp"
#include "obs/prometheus.hpp"
#include "server/protocol.hpp"

namespace lfbst::server {

struct server_config {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  // 0 = kernel-assigned ephemeral port
  unsigned event_threads = 1;
  /// Backpressure: pause reading/executing above cap, resume below.
  std::size_t write_buffer_cap = 4u << 20;
  std::size_t write_buffer_resume = 1u << 20;
  /// Bounded per-connection queue of decoded-but-unexecuted requests.
  std::size_t max_inflight = 1024;
  /// Page size used when a scan request leaves max_items = 0.
  std::uint32_t default_scan_items = 4096;
  /// Grace period for flushing during drain before force-closing.
  std::uint64_t drain_deadline_ms = 5000;
  int listen_backlog = 128;
};

/// Wire-level counters. Monotonic, relaxed; read them after join() (or
/// accept racy monotonic reads, as with obs::metrics).
struct server_stats {
  std::atomic<std::uint64_t> connections_accepted{0};
  std::atomic<std::uint64_t> connections_closed{0};
  std::atomic<std::uint64_t> frames_in{0};
  std::atomic<std::uint64_t> responses_out{0};
  std::atomic<std::uint64_t> bytes_in{0};
  std::atomic<std::uint64_t> bytes_out{0};
  std::atomic<std::uint64_t> protocol_errors{0};
  std::atomic<std::uint64_t> rejected_shutting_down{0};
  std::atomic<std::uint64_t> coalesced_groups{0};
  std::atomic<std::uint64_t> coalesced_ops{0};
  std::atomic<std::uint64_t> backpressure_pauses{0};
  std::atomic<std::uint64_t> stat_requests{0};
};

/// Renders the wire-level counters as Prometheus families
/// (lfbst_server_* name table in docs/TELEMETRY.md); composed with the
/// telemetry sampler's families by the exposition endpoint.
inline void render_prometheus(obs::prometheus_writer& w,
                              const server_stats& s) {
  const auto emit = [&w](const char* name, const char* help,
                         const std::atomic<std::uint64_t>& v) {
    w.family(name, help, "counter");
    w.sample(name, "", v.load(std::memory_order_relaxed));
  };
  emit("lfbst_server_connections_accepted_total", "Accepted connections.",
       s.connections_accepted);
  emit("lfbst_server_connections_closed_total", "Closed connections.",
       s.connections_closed);
  emit("lfbst_server_frames_in_total", "Request frames decoded.",
       s.frames_in);
  emit("lfbst_server_responses_out_total", "Response frames encoded.",
       s.responses_out);
  emit("lfbst_server_bytes_in_total", "Bytes read from sockets.",
       s.bytes_in);
  emit("lfbst_server_bytes_out_total", "Bytes written to sockets.",
       s.bytes_out);
  emit("lfbst_server_protocol_errors_total",
       "Connections dropped on bad frames.", s.protocol_errors);
  emit("lfbst_server_rejected_shutting_down_total",
       "Requests NACKed during drain.", s.rejected_shutting_down);
  emit("lfbst_server_coalesced_groups_total",
       "Pipelined runs coalesced into batch calls.", s.coalesced_groups);
  emit("lfbst_server_coalesced_ops_total", "Ops inside coalesced runs.",
       s.coalesced_ops);
  emit("lfbst_server_backpressure_pauses_total",
       "Reads paused on write-buffer cap.", s.backpressure_pauses);
  emit("lfbst_server_stat_requests_total", "stat-opcode requests served.",
       s.stat_requests);
}

/// TCP server over any set exposing the sharded_set surface:
/// contains/insert/erase (+ the *_batch forms) and range_scan_limit.
/// The server borrows the set — callers keep ownership so they can
/// read merged metrics or keep using it after the server stops.
template <typename Set>
class basic_server {
 public:
  using set_type = Set;

  explicit basic_server(Set& set, server_config cfg = {})
      : set_(&set), cfg_(std::move(cfg)) {
    if (cfg_.event_threads == 0) cfg_.event_threads = 1;
    if (cfg_.write_buffer_resume > cfg_.write_buffer_cap) {
      cfg_.write_buffer_resume = cfg_.write_buffer_cap;
    }
    if (cfg_.max_inflight == 0) cfg_.max_inflight = 1;
  }

  basic_server(const basic_server&) = delete;
  basic_server& operator=(const basic_server&) = delete;

  ~basic_server() {
    stop();
    join();
  }

  /// Binds, listens, spawns the event threads. False on socket errors
  /// (port in use, exhausted fds); the server is then inert.
  [[nodiscard]] bool start() {
    if (started_) return false;
    listen_fd_ = make_listener();
    if (listen_fd_ < 0) return false;
    loops_.reserve(cfg_.event_threads);
    for (unsigned i = 0; i < cfg_.event_threads; ++i) {
      auto lp = std::make_unique<loop>();
      lp->epfd = epoll_create1(EPOLL_CLOEXEC);
      lp->wake_fd = eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
      if (lp->epfd < 0 || lp->wake_fd < 0) {
        if (lp->epfd >= 0) ::close(lp->epfd);
        if (lp->wake_fd >= 0) ::close(lp->wake_fd);
        teardown_sockets();
        return false;
      }
      add_interest(lp->epfd, lp->wake_fd, EPOLLIN);
      loops_.push_back(std::move(lp));
    }
    add_interest(loops_[0]->epfd, listen_fd_, EPOLLIN);
    started_ = true;
    for (unsigned i = 0; i < cfg_.event_threads; ++i) {
      loops_[i]->thr = std::thread([this, i] { run(i); });
    }
    return true;
  }

  /// The bound port (useful with cfg.port = 0).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Begins a graceful drain: stop accepting, answer everything
  /// received so far, NACK late frames, flush, close, exit the loops.
  /// Async-signal-safe (an atomic store plus eventfd writes) so a
  /// SIGTERM handler may call it directly.
  void begin_drain() noexcept {
    drain_.store(true, std::memory_order_release);
    wake_all();
  }

  /// Hard stop: close every connection immediately, flushed or not.
  void stop() noexcept {
    stop_.store(true, std::memory_order_release);
    wake_all();
  }

  /// Joins the event threads (returns immediately if never started).
  /// After join() all sockets are closed and stats are final.
  void join() {
    for (auto& lp : loops_) {
      if (lp->thr.joinable()) lp->thr.join();
    }
    teardown_sockets();
  }

  [[nodiscard]] const server_stats& stats() const noexcept { return stats_; }

  /// Per-request service latency (decode to response-encoded), striped
  /// per event thread. Quiescence (join) required for merged reads.
  [[nodiscard]] obs::latency_observer& latency() noexcept {
    return latency_;
  }

  [[nodiscard]] const server_config& config() const noexcept { return cfg_; }

  /// Fills a stat response's snapshot from the live telemetry (flags
  /// are the request's stat_flag_* bits). Install before start(); with
  /// no handler the stat opcode still answers, with a zeroed snapshot
  /// (version and now_ns only), so the opcode's availability does not
  /// depend on telemetry wiring.
  using stat_handler = std::function<void(std::uint32_t, stat_result&)>;
  void set_stat_handler(stat_handler h) { stat_handler_ = std::move(h); }

 private:
  struct pending_request {
    request req;
    std::uint64_t t0_ns = 0;
  };

  struct connection {
    int fd = -1;
    std::vector<std::uint8_t> rbuf;
    std::size_t rpos = 0;  // consumed prefix of rbuf
    std::deque<pending_request> inbox;
    std::vector<std::uint8_t> wbuf;
    std::size_t wpos = 0;  // flushed prefix of wbuf
    std::uint32_t armed = 0;  // epoll interest currently registered
    bool paused = false;      // reading suspended by backpressure
    bool eof = false;         // peer half-closed; answer then close
    bool closing = false;     // flush wbuf, then close
    bool drained = false;     // this connection saw the drain sweep
  };

  struct loop {
    int epfd = -1;
    int wake_fd = -1;
    std::thread thr;
    std::unordered_map<int, std::unique_ptr<connection>> conns;
    std::mutex inbox_mu;
    std::vector<int> inbox;  // fds handed over by the acceptor
  };

  // --- socket plumbing -----------------------------------------------

  [[nodiscard]] int make_listener() {
    const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    if (fd < 0) return -1;
    const int one = 1;
    (void)setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(cfg_.port);
    if (inet_pton(AF_INET, cfg_.host.c_str(), &addr.sin_addr) != 1) {
      ::close(fd);
      return -1;
    }
    if (bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0 ||
        listen(fd, cfg_.listen_backlog) != 0) {
      ::close(fd);
      return -1;
    }
    sockaddr_in bound{};
    socklen_t blen = sizeof(bound);
    if (getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &blen) == 0) {
      port_ = ntohs(bound.sin_port);
    }
    return fd;
  }

  void teardown_sockets() {
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    for (auto& lp : loops_) {
      for (auto& [fd, conn] : lp->conns) {
        (void)conn;
        ::close(fd);
        stats_.connections_closed.fetch_add(1, std::memory_order_relaxed);
      }
      lp->conns.clear();
      if (lp->epfd >= 0) {
        ::close(lp->epfd);
        lp->epfd = -1;
      }
      if (lp->wake_fd >= 0) {
        ::close(lp->wake_fd);
        lp->wake_fd = -1;
      }
    }
  }

  static void add_interest(int epfd, int fd, std::uint32_t events) {
    epoll_event ev{};
    ev.events = events;
    ev.data.fd = fd;
    (void)epoll_ctl(epfd, EPOLL_CTL_ADD, fd, &ev);
  }

  void wake_all() noexcept {
    const std::uint64_t one = 1;
    for (auto& lp : loops_) {
      if (lp->wake_fd >= 0) {
        [[maybe_unused]] ssize_t n = ::write(lp->wake_fd, &one, sizeof(one));
      }
    }
  }

  static std::uint64_t now_ns() noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

  // --- the event loop -------------------------------------------------

  void run(unsigned index) {
    loop& lp = *loops_[index];
    std::vector<epoll_event> events(128);
    std::uint64_t drain_started_ns = 0;
    bool draining_seen = false;
    for (;;) {
      const bool stopping = stop_.load(std::memory_order_acquire);
      const bool draining = drain_.load(std::memory_order_acquire);
      if (stopping) {
        close_all(lp);
        return;
      }
      if (draining) {
        if (!draining_seen) {
          draining_seen = true;
          drain_started_ns = now_ns();
          begin_drain_on_loop(lp, index);
        } else if (now_ns() - drain_started_ns >
                   cfg_.drain_deadline_ms * 1'000'000ull) {
          close_all(lp);  // deadline: abandon unflushed bytes
          return;
        }
        if (lp.conns.empty()) return;
      }
      const int timeout_ms = draining ? 20 : 200;
      const int n = epoll_wait(lp.epfd, events.data(),
                               static_cast<int>(events.size()), timeout_ms);
      if (n < 0) {
        if (errno == EINTR) continue;
        close_all(lp);
        return;
      }
      for (int i = 0; i < n; ++i) {
        const int fd = events[i].data.fd;
        const std::uint32_t ev = events[i].events;
        if (fd == lp.wake_fd) {
          drain_wakeups(lp);
          continue;
        }
        if (fd == listen_fd_) {
          if (!draining) accept_ready(lp);
          continue;
        }
        auto it = lp.conns.find(fd);
        if (it == lp.conns.end()) continue;
        connection& conn = *it->second;
        bool alive = true;
        if ((ev & (EPOLLERR | EPOLLHUP)) != 0 && (ev & EPOLLIN) == 0) {
          alive = false;
        }
        if (alive && (ev & EPOLLOUT) != 0) alive = on_writable(conn);
        if (alive && (ev & EPOLLIN) != 0) alive = on_readable(conn);
        if (alive && (ev & (EPOLLERR | EPOLLHUP)) != 0) alive = false;
        if (alive && conn.closing && write_bytes(conn) == 0 &&
            conn.inbox.empty()) {
          alive = false;
        }
        if (!alive) {
          close_connection(lp, fd);
        } else {
          update_interest(lp, conn);
        }
      }
    }
  }

  void drain_wakeups(loop& lp) {
    std::uint64_t junk = 0;
    while (::read(lp.wake_fd, &junk, sizeof(junk)) > 0) {
    }
    std::vector<int> handed;
    {
      std::lock_guard<std::mutex> guard(lp.inbox_mu);
      handed.swap(lp.inbox);
    }
    for (int fd : handed) adopt_connection(lp, fd);
  }

  void accept_ready(loop& lp0) {
    for (;;) {
      const int fd =
          accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (fd < 0) return;  // EAGAIN and friends: nothing more to accept
      const int one = 1;
      (void)setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      stats_.connections_accepted.fetch_add(1, std::memory_order_relaxed);
      const unsigned target = next_loop_++ % cfg_.event_threads;
      if (target == 0) {
        adopt_connection(lp0, fd);
      } else {
        loop& lp = *loops_[target];
        {
          std::lock_guard<std::mutex> guard(lp.inbox_mu);
          lp.inbox.push_back(fd);
        }
        const std::uint64_t one64 = 1;
        [[maybe_unused]] ssize_t n =
            ::write(lp.wake_fd, &one64, sizeof(one64));
      }
    }
  }

  void adopt_connection(loop& lp, int fd) {
    auto conn = std::make_unique<connection>();
    conn->fd = fd;
    conn->armed = EPOLLIN;
    add_interest(lp.epfd, fd, EPOLLIN);
    connection& ref = *conn;
    lp.conns.emplace(fd, std::move(conn));
    // A connection handed over after the drain began still gets the
    // drain protocol instead of lingering until the deadline.
    if (drain_.load(std::memory_order_acquire)) {
      if (!drain_sweep(ref)) {
        close_connection(lp, fd);
      } else {
        update_interest(lp, ref);
      }
    }
  }

  void close_connection(loop& lp, int fd) {
    auto it = lp.conns.find(fd);
    if (it == lp.conns.end()) return;
    (void)epoll_ctl(lp.epfd, EPOLL_CTL_DEL, fd, nullptr);
    ::close(fd);
    lp.conns.erase(it);
    stats_.connections_closed.fetch_add(1, std::memory_order_relaxed);
  }

  void close_all(loop& lp) {
    while (!lp.conns.empty()) {
      close_connection(lp, lp.conns.begin()->first);
    }
  }

  /// Drain entry per loop: close the listener once (loop 0), then give
  /// every connection the drain sweep: answer what was received, NACK
  /// what was still in flight, flush-and-close.
  void begin_drain_on_loop(loop& lp, unsigned index) {
    if (index == 0 && listen_fd_ >= 0) {
      (void)epoll_ctl(lp.epfd, EPOLL_CTL_DEL, listen_fd_, nullptr);
    }
    std::vector<int> dead;
    for (auto& [fd, conn_ptr] : lp.conns) {
      connection& conn = *conn_ptr;
      if (!drain_sweep(conn)) {
        dead.push_back(fd);
      } else {
        update_interest(lp, conn);
      }
    }
    for (int fd : dead) close_connection(lp, fd);
  }

  /// One connection's graceful-drain protocol. Returns false when the
  /// connection is finished and should be closed now.
  [[nodiscard]] bool drain_sweep(connection& conn) {
    conn.drained = true;
    // 1. Frames already in user space were admitted: decode the read
    //    buffer without the inflight bound and answer every one, in
    //    input order, before any NACK can overtake them.
    const bool stream_ok = decode_into_inbox(conn, /*bounded=*/false);
    execute_inbox(conn, /*respect_cap=*/false);
    if (!stream_ok) conn.inbox.clear();
    // 2. One final sweep of the kernel socket buffer: those frames
    //    raced the drain and are NACKed so the client knows to retry
    //    elsewhere rather than time out on silence.
    if (!conn.closing) (void)read_available(conn);
    for (;;) {
      request req;
      std::size_t consumed = 0;
      const decode_status st = try_decode_request(
          conn.rbuf.data() + conn.rpos, conn.rbuf.size() - conn.rpos, req,
          consumed);
      if (st != decode_status::ok) break;
      conn.rpos += consumed;
      response resp;
      resp.op = req.op;
      resp.id = req.id;
      resp.status = status_code::shutting_down;
      encode_response(conn.wbuf, resp);
      stats_.rejected_shutting_down.fetch_add(1, std::memory_order_relaxed);
      stats_.responses_out.fetch_add(1, std::memory_order_relaxed);
    }
    // 3. Flush; keep the connection only while bytes remain queued.
    conn.closing = true;
    if (!flush_writes(conn)) return false;
    return write_bytes(conn) > 0;
  }

  // --- per-connection read/decode/execute/write ----------------------

  [[nodiscard]] std::size_t write_bytes(const connection& conn) const {
    return conn.wbuf.size() - conn.wpos;
  }

  /// Non-blocking read into rbuf until EAGAIN, EOF, or a full buffer's
  /// worth. Returns false on a fatal socket error.
  [[nodiscard]] bool read_available(connection& conn) {
    std::uint8_t chunk[64 * 1024];
    for (;;) {
      const ssize_t n = ::read(conn.fd, chunk, sizeof(chunk));
      if (n > 0) {
        conn.rbuf.insert(conn.rbuf.end(), chunk, chunk + n);
        stats_.bytes_in.fetch_add(static_cast<std::uint64_t>(n),
                                  std::memory_order_relaxed);
        // One frame + one max frame of lookahead bounds the buffer.
        if (conn.rbuf.size() - conn.rpos > 2 * (max_frame_bytes + 4)) {
          return true;
        }
        continue;
      }
      if (n == 0) {
        conn.eof = true;
        return true;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
      if (errno == EINTR) continue;
      return false;  // ECONNRESET and friends
    }
  }

  /// Moves complete frames from rbuf into the inbox. Returns false on a
  /// protocol error (a malformed NACK is queued and the connection is
  /// marked closing).
  [[nodiscard]] bool decode_into_inbox(connection& conn, bool bounded) {
    while (!bounded || conn.inbox.size() < cfg_.max_inflight) {
      request req;
      std::size_t consumed = 0;
      const decode_status st = try_decode_request(
          conn.rbuf.data() + conn.rpos, conn.rbuf.size() - conn.rpos, req,
          consumed);
      if (st == decode_status::need_more) break;
      if (st == decode_status::bad_frame) {
        stats_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
        // Answer everything admitted before the bad frame first so the
        // NACK cannot overtake an in-order response, then salvage the
        // (opcode, id) prefix when present so the client can correlate
        // the NACK; after that the stream is unusable.
        execute_inbox(conn, /*respect_cap=*/false);
        response resp;
        resp.status = status_code::malformed;
        if (conn.rbuf.size() - conn.rpos >= 13) {
          const std::uint8_t* p = conn.rbuf.data() + conn.rpos;
          if (valid_opcode(p[4])) resp.op = static_cast<opcode>(p[4]);
          wire::reader idr(p + 5, 8);
          resp.id = idr.take_u64();
        }
        encode_response(conn.wbuf, resp);
        stats_.responses_out.fetch_add(1, std::memory_order_relaxed);
        conn.closing = true;
        conn.rpos = conn.rbuf.size();
        compact_rbuf(conn);
        return false;
      }
      conn.rpos += consumed;
      stats_.frames_in.fetch_add(1, std::memory_order_relaxed);
      conn.inbox.push_back(pending_request{std::move(req), now_ns()});
    }
    compact_rbuf(conn);
    return true;
  }

  void compact_rbuf(connection& conn) {
    if (conn.rpos == conn.rbuf.size()) {
      conn.rbuf.clear();
      conn.rpos = 0;
    } else if (conn.rpos >= 64 * 1024) {
      conn.rbuf.erase(conn.rbuf.begin(),
                      conn.rbuf.begin() +
                          static_cast<std::ptrdiff_t>(conn.rpos));
      conn.rpos = 0;
    }
  }

  /// Drains the inbox into the write buffer, coalescing maximal runs of
  /// same-opcode point requests through the batch API. Stops early when
  /// the write buffer crosses the backpressure cap (unless the
  /// connection is past caring, i.e. draining or at EOF).
  void execute_inbox(connection& conn, bool respect_cap) {
    while (!conn.inbox.empty()) {
      if (respect_cap && write_bytes(conn) > cfg_.write_buffer_cap) {
        // Suspending execution with admitted requests still queued is
        // the observable backpressure event (the EPOLLIN disarm in
        // update_interest only shows up when the kernel also backs up).
        stats_.backpressure_pauses.fetch_add(1, std::memory_order_relaxed);
        break;
      }
      const opcode front_op = conn.inbox.front().req.op;
      if (front_op == opcode::get || front_op == opcode::insert ||
          front_op == opcode::erase) {
        std::size_t run = 1;
        while (run < conn.inbox.size() &&
               conn.inbox[run].req.op == front_op) {
          ++run;
        }
        execute_point_run(conn, front_op, run);
      } else {
        execute_one(conn, conn.inbox.front());
        conn.inbox.pop_front();
      }
    }
  }

  static stats::op_kind kind_of(opcode op) noexcept {
    switch (op) {
      case opcode::insert: return stats::op_kind::insert;
      case opcode::erase: return stats::op_kind::erase;
      default: return stats::op_kind::search;  // get, scan, ping, batch-get
    }
  }

  void finish_response(connection& conn, const response& resp,
                       stats::op_kind kind, std::uint64_t t0_ns,
                       bool result) {
    encode_response(conn.wbuf, resp);
    stats_.responses_out.fetch_add(1, std::memory_order_relaxed);
    latency_.on_op(0, kind, result, now_ns() - t0_ns);
  }

  /// A pipelined run of `run` identical point ops leaves as one batch
  /// call — the coalescing that lets sharded_set's counting sort
  /// amortize over the connection's whole in-flight window.
  void execute_point_run(connection& conn, opcode op, std::size_t run) {
    if (run == 1) {
      const pending_request& p = conn.inbox.front();
      response resp;
      resp.op = op;
      resp.id = p.req.id;
      switch (op) {
        case opcode::get: resp.result = set_->contains(p.req.key); break;
        case opcode::insert: resp.result = set_->insert(p.req.key); break;
        case opcode::erase: resp.result = set_->erase(p.req.key); break;
        default: break;
      }
      finish_response(conn, resp, kind_of(op), p.t0_ns, resp.result);
      conn.inbox.pop_front();
      return;
    }
    std::vector<std::int64_t> keys(run);
    for (std::size_t i = 0; i < run; ++i) {
      keys[i] = conn.inbox[i].req.key;
    }
    std::vector<bool> results;
    switch (op) {
      case opcode::get: results = set_->contains_batch(keys); break;
      case opcode::insert: results = set_->insert_batch(keys); break;
      case opcode::erase: results = set_->erase_batch(keys); break;
      default: break;
    }
    stats_.coalesced_groups.fetch_add(1, std::memory_order_relaxed);
    stats_.coalesced_ops.fetch_add(run, std::memory_order_relaxed);
    for (std::size_t i = 0; i < run; ++i) {
      const pending_request& p = conn.inbox.front();
      response resp;
      resp.op = op;
      resp.id = p.req.id;
      resp.result = results[i];
      finish_response(conn, resp, kind_of(op), p.t0_ns, resp.result);
      conn.inbox.pop_front();
    }
  }

  void execute_one(connection& conn, const pending_request& p) {
    response resp;
    resp.op = p.req.op;
    resp.id = p.req.id;
    stats::op_kind kind = stats::op_kind::search;
    bool result = true;
    switch (p.req.op) {
      case opcode::batch: {
        kind = kind_of(p.req.batch_op);
        std::vector<bool> results;
        switch (p.req.batch_op) {
          case opcode::get: results = set_->contains_batch(p.req.keys); break;
          case opcode::insert: results = set_->insert_batch(p.req.keys); break;
          case opcode::erase: results = set_->erase_batch(p.req.keys); break;
          default: break;
        }
        resp.results.reserve(results.size());
        for (const bool r : results) {
          resp.results.push_back(r ? 1 : 0);
        }
        stats_.coalesced_groups.fetch_add(1, std::memory_order_relaxed);
        stats_.coalesced_ops.fetch_add(results.size(),
                                       std::memory_order_relaxed);
        break;
      }
      case opcode::range_scan: {
        const std::uint32_t page =
            p.req.max_items == 0
                ? cfg_.default_scan_items
                : std::min(p.req.max_items, max_scan_items);
        auto scanned = set_->range_scan_limit(p.req.lo, p.req.hi, page);
        resp.truncated = scanned.truncated;
        resp.resume_key = scanned.resume_key;
        resp.keys = std::move(scanned.keys);
        break;
      }
      case opcode::ping: break;
      case opcode::stat:
        stats_.stat_requests.fetch_add(1, std::memory_order_relaxed);
        resp.stat.now_ns = now_ns();
        if (stat_handler_) stat_handler_(p.req.stat_flags, resp.stat);
        break;
      default: break;
    }
    finish_response(conn, resp, kind, p.t0_ns, result);
  }

  /// Writes as much of wbuf as the socket accepts. False on fatal
  /// errors (peer reset mid-response).
  [[nodiscard]] bool flush_writes(connection& conn) {
    while (write_bytes(conn) > 0) {
      const ssize_t n =
          ::write(conn.fd, conn.wbuf.data() + conn.wpos, write_bytes(conn));
      if (n > 0) {
        conn.wpos += static_cast<std::size_t>(n);
        stats_.bytes_out.fetch_add(static_cast<std::uint64_t>(n),
                                   std::memory_order_relaxed);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
      if (n < 0 && errno == EINTR) continue;
      return false;  // EPIPE/ECONNRESET: the reader is gone
    }
    conn.wbuf.clear();
    conn.wpos = 0;
    return true;
  }

  /// Executes queued requests for as long as the socket keeps up:
  /// execute until the cap, flush, and if the kernel drained the buffer
  /// below the low-water mark, go again. Exits with either an empty
  /// inbox or bytes pending (so EPOLLOUT is armed and on_writable
  /// continues later) — a connection can never wedge with admitted
  /// requests and no event to finish them.
  [[nodiscard]] bool pump_inbox(connection& conn) {
    for (;;) {
      execute_inbox(conn, /*respect_cap=*/!(conn.eof || conn.drained));
      if (!flush_writes(conn)) return false;
      if (conn.inbox.empty() ||
          write_bytes(conn) > cfg_.write_buffer_resume) {
        return true;
      }
    }
  }

  [[nodiscard]] bool on_readable(connection& conn) {
    if (conn.closing || conn.drained) return true;  // no longer reading
    if (!read_available(conn)) return false;
    if (!decode_into_inbox(conn, /*bounded=*/true)) {
      // Protocol error: the NACK is queued; fall through to flush it.
    }
    if (!pump_inbox(conn)) return false;
    if (conn.eof) {
      conn.closing = true;
      if (write_bytes(conn) == 0 && conn.inbox.empty()) return false;
    }
    return true;
  }

  [[nodiscard]] bool on_writable(connection& conn) {
    if (!flush_writes(conn)) return false;
    // Flushed below the low-water mark: resume executing queued work
    // (and, via update_interest, resume reading).
    if (write_bytes(conn) <= cfg_.write_buffer_resume &&
        !conn.inbox.empty()) {
      if (!pump_inbox(conn)) return false;
    }
    if (conn.closing && write_bytes(conn) == 0 && conn.inbox.empty()) {
      return false;
    }
    return true;
  }

  void update_interest(loop& lp, connection& conn) {
    std::uint32_t want = 0;
    const bool backpressured = write_bytes(conn) > cfg_.write_buffer_cap ||
                               conn.inbox.size() >= cfg_.max_inflight;
    if (!conn.closing && !conn.eof && !conn.drained && !backpressured) {
      want |= EPOLLIN;
    }
    if (write_bytes(conn) > 0) want |= EPOLLOUT;
    if (backpressured && !conn.paused) {
      conn.paused = true;
      stats_.backpressure_pauses.fetch_add(1, std::memory_order_relaxed);
    } else if (!backpressured) {
      conn.paused = false;
    }
    if (want == conn.armed) return;
    epoll_event ev{};
    ev.events = want;
    ev.data.fd = conn.fd;
    (void)epoll_ctl(lp.epfd, EPOLL_CTL_MOD, conn.fd, &ev);
    conn.armed = want;
  }

  Set* set_;
  server_config cfg_;
  server_stats stats_;
  obs::latency_observer latency_;
  std::vector<std::unique_ptr<loop>> loops_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  bool started_ = false;
  stat_handler stat_handler_;  // set before start(); event threads read
  std::atomic<unsigned> next_loop_{0};
  std::atomic<bool> stop_{false};
  std::atomic<bool> drain_{false};
};

namespace detail {

inline std::atomic<void*> sigterm_target{nullptr};
inline std::atomic<void (*)(void*)> sigterm_fn{nullptr};

inline void sigterm_trampoline(int) {
  void (*fn)(void*) = sigterm_fn.load(std::memory_order_acquire);
  void* target = sigterm_target.load(std::memory_order_acquire);
  if (fn != nullptr && target != nullptr) fn(target);
}

}  // namespace detail

/// Installs a SIGTERM handler that gracefully drains `s` (begin_drain
/// is async-signal-safe). One server at a time; the caller keeps `s`
/// alive until the process exits or the handler is replaced.
template <typename Set>
inline void drain_on_sigterm(basic_server<Set>& s) {
  detail::sigterm_target.store(&s, std::memory_order_release);
  detail::sigterm_fn.store(
      [](void* p) { static_cast<basic_server<Set>*>(p)->begin_drain(); },
      std::memory_order_release);
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = detail::sigterm_trampoline;
  (void)sigaction(SIGTERM, &sa, nullptr);
}

}  // namespace lfbst::server
