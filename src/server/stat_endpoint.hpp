// lfbst server: the Prometheus exposition endpoint — a minimal
// HTTP/1.0 listener on its own port (separate from the binary
// protocol) answering GET /metrics with the text a scraper or `curl`
// expects. The render callback is composed by the embedder
// (lfbst_serve: telemetry sampler families + server wire counters) and
// must be thread-safe against the running server — the telemetry
// layer's renderers are (obs/telemetry.hpp).
//
// Deliberately not a web server: one poll-driven thread, sequential
// connections, 1 KiB request cap, Connection: close. A scrape every
// few seconds is the design load; the binary protocol keeps owning the
// data plane. http_get() is the matching client used by the tests and
// bench_server's scrape-driven live columns.
#pragma once

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <thread>
#include <utility>

namespace lfbst::server {

class metrics_endpoint {
 public:
  using render_fn = std::function<std::string()>;

  explicit metrics_endpoint(render_fn render)
      : render_(std::move(render)) {}

  metrics_endpoint(const metrics_endpoint&) = delete;
  metrics_endpoint& operator=(const metrics_endpoint&) = delete;

  ~metrics_endpoint() { stop(); }

  /// Binds host:port (port 0 = ephemeral; see port()) and spawns the
  /// serving thread. False on socket errors; the endpoint is then
  /// inert.
  [[nodiscard]] bool start(const std::string& host, std::uint16_t port) {
    if (thread_.joinable()) return false;
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (listen_fd_ < 0) return false;
    int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
        ::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(listen_fd_, 16) != 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      return false;
    }
    socklen_t len = sizeof(addr);
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                      &len) == 0) {
      port_ = ntohs(addr.sin_port);
    }
    stop_.store(false, std::memory_order_release);
    thread_ = std::thread([this] { run(); });
    return true;
  }

  /// The bound port (useful with port 0).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  void stop() {
    if (!thread_.joinable()) return;
    stop_.store(true, std::memory_order_release);
    thread_.join();
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
  }

  [[nodiscard]] std::uint64_t scrapes() const noexcept {
    return scrapes_.load(std::memory_order_acquire);
  }

 private:
  void run() {
    while (!stop_.load(std::memory_order_acquire)) {
      pollfd pfd{listen_fd_, POLLIN, 0};
      const int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
      if (ready <= 0) continue;
      const int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd < 0) continue;
      serve_one(fd);
      ::close(fd);
    }
  }

  void serve_one(int fd) {
    // Read until the blank line ending the request head; tiny cap, and
    // a short poll deadline so one stuck client cannot wedge scrapes.
    char req[1024];
    std::size_t got = 0;
    while (got < sizeof(req) - 1) {
      pollfd pfd{fd, POLLIN, 0};
      if (::poll(&pfd, 1, /*timeout_ms=*/2000) <= 0) return;
      const ssize_t n = ::recv(fd, req + got, sizeof(req) - 1 - got, 0);
      if (n <= 0) return;
      got += static_cast<std::size_t>(n);
      req[got] = '\0';
      if (std::strstr(req, "\r\n\r\n") != nullptr ||
          std::strstr(req, "\n\n") != nullptr) {
        break;
      }
    }
    const bool is_get = std::strncmp(req, "GET ", 4) == 0;
    const char* path = req + 4;
    const bool is_metrics =
        is_get && (std::strncmp(path, "/metrics", 8) == 0 ||
                   std::strncmp(path, "/ ", 2) == 0);
    std::string body;
    const char* status = "200 OK";
    const char* content_type = "text/plain; version=0.0.4";
    if (is_metrics) {
      body = render_();
      scrapes_.fetch_add(1, std::memory_order_release);
    } else {
      status = is_get ? "404 Not Found" : "405 Method Not Allowed";
      body = "not here; scrape /metrics\n";
    }
    char head[256];
    const int head_len = std::snprintf(
        head, sizeof(head),
        "HTTP/1.0 %s\r\nContent-Type: %s\r\n"
        "Content-Length: %zu\r\nConnection: close\r\n\r\n",
        status, content_type, body.size());
    send_all(fd, head, static_cast<std::size_t>(head_len));
    send_all(fd, body.data(), body.size());
  }

  static void send_all(int fd, const char* data, std::size_t len) {
    std::size_t sent = 0;
    while (sent < len) {
      const ssize_t n =
          ::send(fd, data + sent, len - sent, MSG_NOSIGNAL);
      if (n <= 0) return;
      sent += static_cast<std::size_t>(n);
    }
  }

  render_fn render_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> scrapes_{0};
};

/// Blocking scrape client for tests and bench_server's live columns:
/// GET `path`, return true and the response body on HTTP 200.
inline bool http_get(const std::string& host, std::uint16_t port,
                     const std::string& path, std::string& body_out,
                     int timeout_ms = 5000) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return false;
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
          0) {
    ::close(fd);
    return false;
  }
  std::string req = "GET " + path + " HTTP/1.0\r\nHost: " + host +
                    "\r\nConnection: close\r\n\r\n";
  std::size_t sent = 0;
  while (sent < req.size()) {
    const ssize_t n =
        ::send(fd, req.data() + sent, req.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      ::close(fd);
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  std::string raw;
  char buf[4096];
  for (;;) {
    pollfd pfd{fd, POLLIN, 0};
    if (::poll(&pfd, 1, timeout_ms) <= 0) break;
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    raw.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  if (raw.compare(0, 9, "HTTP/1.0 ") != 0 &&
      raw.compare(0, 9, "HTTP/1.1 ") != 0) {
    return false;
  }
  if (raw.compare(9, 3, "200") != 0) return false;
  const std::size_t split = raw.find("\r\n\r\n");
  if (split == std::string::npos) return false;
  body_out = raw.substr(split + 4);
  return true;
}

}  // namespace lfbst::server
