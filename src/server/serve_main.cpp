// lfbst_serve: the server binary. An int64 membership set, sharded over
// NM-BSTs with epoch reclamation and recording stats, behind the TCP
// wire protocol — plus the live-telemetry plane (docs/TELEMETRY.md):
// a background sampler publishing windowed metric deltas, a key-range
// hotness heatmap, a Prometheus exposition endpoint, the stat opcode,
// and a continuously armed flight recorder whose last --flight-ms of
// trace events dump to a Perfetto file on SIGUSR1 (or a stat request
// with the dump flag).
//
// SIGTERM (and SIGINT) trigger a graceful drain: everything already
// received is answered, late frames are NACKed with status
// shutting_down, buffers are flushed, then the process exits and
// prints its wire-level counters (and, with --json, an lfbst-bench-v1
// document of server-side latency percentiles).
//
//   lfbst_serve --port=7171 --threads=2 --shards=8 --metrics-port=9187
//   curl -s http://127.0.0.1:9187/metrics | head
//   kill -USR1 $(pidof lfbst_serve)   # dump lfbst_flight.json
//
// Flags: --host (default 127.0.0.1), --port (default 7171; 0 picks an
// ephemeral port, printed on stdout), --threads event loops, --shards
// power-of-two shard count, --scan-page default range-scan page size,
// --drain-ms drain deadline, --json[=path] latency report on exit.
// Telemetry flags: --metrics-port (-1 = exposition disabled, 0 =
// ephemeral, printed), --telemetry-ms sampling interval, --flight-file
// dump path, --flight-ms dump window, --heatmap-lo/--heatmap-hi the
// heatmap's key interval.
// Rebalancing flags (docs/SHARDING.md): --rebalance arms the adaptive
// rebalancer (heatmap-guided online subrange migrations),
// --rebalance-ms its decision interval, --rebalance-threshold the
// imbalance trigger ratio, --numa=1 NUMA-interleaved shard placement.
// Shape-resilience flag (docs/RESILIENCE.md): --scramble=SEED wraps the
// sharded set in lfbst::scrambled_set, bijectively mixing every key at
// the protocol boundary so adversarial insertion orders (sequential
// scans, outside-in zigzags) cannot degenerate the shard trees into
// spines. Under --scramble the heatmap, splitters and range scans all
// live in scrambled key space; range_scan is lowered to a filtered
// full-domain walk (see the scan-contract caveat in the doc).
#include <signal.h>  // NOLINT: sigaction needs the POSIX header

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <limits>
#include <optional>
#include <string>

#include "core/key_scramble.hpp"
#include "core/natarajan_tree.hpp"
#include "harness/flags.hpp"
#include "obs/export.hpp"
#include "obs/heatmap.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "server/server.hpp"
#include "server/stat_endpoint.hpp"
#include "shard/numa.hpp"
#include "shard/rebalancer.hpp"
#include "shard/sharded_set.hpp"

namespace {

using tree_type = lfbst::nm_tree<std::int64_t, std::less<std::int64_t>,
                                 lfbst::reclaim::epoch, lfbst::obs::recording>;
using sharded_type = lfbst::shard::sharded_set<tree_type>;
// The scramble adapter sits ABOVE the router (never below it): the
// router partitions the scrambled key space, so attack streams load
// every shard uniformly and the static_assert in sharded_set holds.
using scrambled_type = lfbst::scrambled_set<sharded_type>;

// SIGUSR1 → flight dump. request_flight_dump is one relaxed atomic
// store, so the handler may call it directly (same pattern as
// drain_on_sigterm's trampoline). The sampler's concrete type depends
// on the --scramble mode, so the handler goes through an erased
// pointer + dispatch fn (written before the handler is installed).
std::atomic<void*> g_sampler{nullptr};
void (*g_sampler_dump)(void*) = nullptr;

void sigusr1_handler(int) {
  if (void* s = g_sampler.load(std::memory_order_acquire)) {
    g_sampler_dump(s);
  }
}

/// Everything after set construction, generic over the set layering
/// (raw sharded vs scrambled-over-sharded): telemetry plane, stat
/// opcode, rebalancer, serve loop, drain, and the exit report.
template <typename SetT>
int run_server(const lfbst::bench::flags& flags,
               lfbst::server::server_config cfg, SetT& set, bool scrambled) {
  using sampler_type = lfbst::obs::sampler<SetT>;

  // Telemetry plane: one shared heatmap + flight-recorder trace ring
  // attached to every shard's recording stats, a background sampler
  // ticking every --telemetry-ms, and (optionally) the exposition
  // endpoint. All of it reads racy-monotone state, so it rides along
  // without touching the data plane's hot path.
  lfbst::obs::key_heatmap heatmap(
      flags.get_int("heatmap-lo", 0),
      flags.get_int("heatmap-hi", std::int64_t{1} << 20));
  lfbst::obs::trace_log flight_log(
      static_cast<std::size_t>(flags.get_int("flight-capacity", 1 << 14)));
  set.for_each_shard_stats([&](lfbst::obs::recording& stats) {
    stats.attach_heatmap(&heatmap);
    stats.attach_trace(&flight_log);
  });
  lfbst::obs::set_global_trace_sink(&flight_log);

  lfbst::obs::telemetry_options topts;
  topts.interval_ms =
      static_cast<std::uint64_t>(flags.get_int("telemetry-ms", 100));
  topts.flight_path = flags.get("flight-file", "lfbst_flight.json");
  topts.flight_window_ms =
      static_cast<std::uint64_t>(flags.get_int("flight-ms", 2000));
  sampler_type sampler(set, topts);
  sampler.attach_flight_recorder(&flight_log);
  sampler.attach_heatmap(&heatmap);

  lfbst::server::basic_server<SetT> server(set, cfg);
  server.set_stat_handler([&](std::uint32_t request_flags,
                              lfbst::server::stat_result& out) {
    if ((request_flags & lfbst::server::stat_flag_flight_dump) != 0) {
      sampler.request_flight_dump();
      out.flight_dumped = true;
    }
    lfbst::obs::telemetry_window win;
    if (sampler.latest(win)) {
      out.window_ns = win.t1_ns - win.t0_ns;
      out.window_ops = win.point_ops();
      out.lat_p50_ns = win.lat_p50_ns;
      out.lat_p99_ns = win.lat_p99_ns;
      out.seek_p50 = win.seek_p50;
      out.seek_p99 = win.seek_p99;
      out.shard_window_ops.assign(win.shard_ops.begin(),
                                  win.shard_ops.begin() + win.shard_count);
    }
    out.windows_published = sampler.windows_published();
    lfbst::obs::metrics_snapshot total;
    out.shard_ops.reserve(set.shard_count());
    for (std::size_t i = 0; i < set.shard_count(); ++i) {
      const lfbst::obs::metrics_snapshot snap = set.shard_counters(i);
      out.shard_ops.push_back(snap.point_ops());
      total.merge(snap);
    }
    out.shard_window_ops.resize(out.shard_ops.size(), 0);
    set.add_layer_counters(total);  // migrations & co. ride the wire too
    out.counters.assign(total.values.begin(), total.values.end());
  });
  // The adaptive rebalancer (constructed before the event threads
  // exist: arming the migration-aware op paths must happen-before any
  // operation). It feeds on the same heatmap the telemetry plane
  // samples, so hot-key mass picks the split points.
  std::optional<lfbst::shard::rebalancer<SetT>> rebalancer;
  if (flags.get_int("rebalance", 0) != 0) {
    lfbst::shard::rebalancer_options ropts;
    ropts.interval_ms =
        static_cast<std::uint64_t>(flags.get_int("rebalance-ms", 100));
    ropts.trigger_ratio = static_cast<double>(flags.get_int(
                              "rebalance-threshold-pct", 150)) /
                          100.0;
    ropts.heatmap = &heatmap;
    rebalancer.emplace(set, ropts);
  }
  if (!server.start()) {
    std::fprintf(stderr, "lfbst_serve: cannot listen on %s:%u\n",
                 cfg.host.c_str(), static_cast<unsigned>(cfg.port));
    return 1;
  }
  std::printf("lfbst_serve: listening on %s:%u (%u event threads)\n",
              cfg.host.c_str(), static_cast<unsigned>(server.port()),
              cfg.event_threads);

  sampler.start();
  if (rebalancer) {
    rebalancer->start();
    std::printf("lfbst_serve: adaptive rebalancer on (interval %lld ms)\n",
                static_cast<long long>(flags.get_int("rebalance-ms", 100)));
  }
  g_sampler_dump = [](void* p) {
    static_cast<sampler_type*>(p)->request_flight_dump();
  };
  g_sampler.store(&sampler, std::memory_order_release);
  {
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = sigusr1_handler;
    (void)sigaction(SIGUSR1, &sa, nullptr);
  }

  lfbst::server::metrics_endpoint exposition([&] {
    lfbst::obs::prometheus_writer w;
    sampler.render_prometheus(w);
    lfbst::server::render_prometheus(w, server.stats());
    return w.text();
  });
  const std::int64_t metrics_port = flags.get_int("metrics-port", -1);
  if (metrics_port >= 0) {
    if (!exposition.start(cfg.host,
                          static_cast<std::uint16_t>(metrics_port))) {
      std::fprintf(stderr, "lfbst_serve: cannot expose metrics on %s:%lld\n",
                   cfg.host.c_str(), static_cast<long long>(metrics_port));
      server.stop();
      server.join();
      return 1;
    }
    std::printf("lfbst_serve: metrics on http://%s:%u/metrics\n",
                cfg.host.c_str(), static_cast<unsigned>(exposition.port()));
  }
  std::fflush(stdout);

  // SIGTERM drains the server directly from the handler (begin_drain is
  // async-signal-safe); SIGINT takes the same path for interactive use.
  // The event threads do all the work, so the main thread just blocks
  // in join() — it returns once the drain (or a hard stop) finishes.
  lfbst::server::drain_on_sigterm(server);
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = lfbst::server::detail::sigterm_trampoline;
  (void)sigaction(SIGINT, &sa, nullptr);
  server.join();

  exposition.stop();
  if (rebalancer) rebalancer->stop();
  g_sampler.store(nullptr, std::memory_order_release);
  sampler.stop();
  lfbst::obs::set_global_trace_sink(nullptr);

  const auto& st = server.stats();
  std::fprintf(
      stderr,
      "lfbst_serve: conns=%llu/%llu frames=%llu responses=%llu "
      "bytes=%llu/%llu proto_errors=%llu nack_drain=%llu "
      "coalesced=%llu/%llu backpressure=%llu stat=%llu "
      "windows=%llu flight_dumps=%llu migrations=%llu/%llu\n",
      static_cast<unsigned long long>(st.connections_accepted.load()),
      static_cast<unsigned long long>(st.connections_closed.load()),
      static_cast<unsigned long long>(st.frames_in.load()),
      static_cast<unsigned long long>(st.responses_out.load()),
      static_cast<unsigned long long>(st.bytes_in.load()),
      static_cast<unsigned long long>(st.bytes_out.load()),
      static_cast<unsigned long long>(st.protocol_errors.load()),
      static_cast<unsigned long long>(st.rejected_shutting_down.load()),
      static_cast<unsigned long long>(st.coalesced_groups.load()),
      static_cast<unsigned long long>(st.coalesced_ops.load()),
      static_cast<unsigned long long>(st.backpressure_pauses.load()),
      static_cast<unsigned long long>(st.stat_requests.load()),
      static_cast<unsigned long long>(sampler.windows_published()),
      static_cast<unsigned long long>(sampler.flight_dumps()),
      static_cast<unsigned long long>(set.migration_count()),
      static_cast<unsigned long long>(set.keys_migrated()));

  if (flags.has("json")) {
    lfbst::obs::bench_report report("lfbst_serve");
    report.config.set("host", cfg.host);
    report.config.set("port", static_cast<std::int64_t>(server.port()));
    report.config.set("threads",
                      static_cast<std::int64_t>(cfg.event_threads));
    const auto h = server.latency().merged_all();
    // The shape telemetry the nightly attack-stream soak gates on
    // (tools/check_perf_regression.py --serve-report): seek-depth
    // percentiles over the whole run plus the final key count, so the
    // gate can compare p99 against 2*log2(keys).
    const auto seek = set.merged_seek_depth_histogram();
    lfbst::obs::json::value row = lfbst::obs::json::value::object();
    row.set("study", "server_lifetime");
    row.set("scramble", static_cast<std::int64_t>(scrambled ? 1 : 0));
    row.set("shards", static_cast<std::int64_t>(set.shard_count()));
    row.set("keys", static_cast<std::int64_t>(set.size_slow()));
    row.set("ops", static_cast<std::int64_t>(h.count()));
    row.set("p50_ns", static_cast<std::int64_t>(h.value_at_percentile(50)));
    row.set("p99_ns", static_cast<std::int64_t>(h.value_at_percentile(99)));
    row.set("p999_ns",
            static_cast<std::int64_t>(h.value_at_percentile(99.9)));
    row.set("seeks", static_cast<std::int64_t>(seek.count()));
    row.set("seek_p50",
            static_cast<std::int64_t>(seek.value_at_percentile(50)));
    row.set("seek_p99",
            static_cast<std::int64_t>(seek.value_at_percentile(99)));
    row.set("seek_max", static_cast<std::int64_t>(seek.max()));
    report.add_result(std::move(row));
    const std::string path = flags.get("json", "serve_report.json");
    if (!report.write_file(path.empty() ? "serve_report.json" : path)) {
      return 1;
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const lfbst::bench::flags flags(argc, argv);
  lfbst::server::server_config cfg;
  cfg.host = flags.get("host", "127.0.0.1");
  cfg.port = static_cast<std::uint16_t>(flags.get_int("port", 7171));
  cfg.event_threads = static_cast<unsigned>(flags.get_int("threads", 2));
  cfg.default_scan_items =
      static_cast<std::uint32_t>(flags.get_int("scan-page", 4096));
  cfg.drain_deadline_ms =
      static_cast<std::uint64_t>(flags.get_int("drain-ms", 5000));

  lfbst::shard::numa::policy placement;
  if (flags.get_int("numa", 0) != 0) {
    placement.mode = lfbst::shard::numa::placement::interleave;
  }
  sharded_type::router_type router(
      static_cast<std::size_t>(flags.get_int("shards", 8)),
      std::numeric_limits<std::int64_t>::min(),
      std::numeric_limits<std::int64_t>::max());

  if (flags.has("scramble")) {
    const auto seed =
        static_cast<std::uint64_t>(flags.get_int("scramble", 1));
    std::printf("lfbst_serve: key scrambling on (seed %llu)\n",
                static_cast<unsigned long long>(seed));
    scrambled_type set(seed, router, placement);
    return run_server(flags, cfg, set, /*scrambled=*/true);
  }
  sharded_type set(router, placement);
  return run_server(flags, cfg, set, /*scrambled=*/false);
}
