// lfbst_serve: the server binary. An int64 membership set, sharded over
// NM-BSTs with epoch reclamation and recording stats, behind the TCP
// wire protocol. SIGTERM (and SIGINT) trigger a graceful drain:
// everything already received is answered, late frames are NACKed with
// status shutting_down, buffers are flushed, then the process exits and
// prints its wire-level counters (and, with --json, an lfbst-bench-v1
// document of server-side latency percentiles).
//
//   lfbst_serve --port=7171 --threads=2 --shards=8
//
// Flags: --host (default 127.0.0.1), --port (default 7171; 0 picks an
// ephemeral port, printed on stdout), --threads event loops, --shards
// power-of-two shard count, --scan-page default range-scan page size,
// --drain-ms drain deadline, --json[=path] latency report on exit.
#include <signal.h>  // NOLINT: sigaction needs the POSIX header

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <limits>
#include <string>

#include "core/natarajan_tree.hpp"
#include "harness/flags.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "server/server.hpp"
#include "shard/sharded_set.hpp"

namespace {

using tree_type = lfbst::nm_tree<std::int64_t, std::less<std::int64_t>,
                                 lfbst::reclaim::epoch, lfbst::obs::recording>;
using set_type = lfbst::shard::sharded_set<tree_type>;

}  // namespace

int main(int argc, char** argv) {
  lfbst::bench::flags flags(argc, argv);
  lfbst::server::server_config cfg;
  cfg.host = flags.get("host", "127.0.0.1");
  cfg.port = static_cast<std::uint16_t>(flags.get_int("port", 7171));
  cfg.event_threads = static_cast<unsigned>(flags.get_int("threads", 2));
  cfg.default_scan_items =
      static_cast<std::uint32_t>(flags.get_int("scan-page", 4096));
  cfg.drain_deadline_ms =
      static_cast<std::uint64_t>(flags.get_int("drain-ms", 5000));

  set_type set(static_cast<std::size_t>(flags.get_int("shards", 8)),
               std::numeric_limits<std::int64_t>::min(),
               std::numeric_limits<std::int64_t>::max());
  lfbst::server::basic_server<set_type> server(set, cfg);
  if (!server.start()) {
    std::fprintf(stderr, "lfbst_serve: cannot listen on %s:%u\n",
                 cfg.host.c_str(), static_cast<unsigned>(cfg.port));
    return 1;
  }
  std::printf("lfbst_serve: listening on %s:%u (%u event threads)\n",
              cfg.host.c_str(), static_cast<unsigned>(server.port()),
              cfg.event_threads);
  std::fflush(stdout);

  // SIGTERM drains the server directly from the handler (begin_drain is
  // async-signal-safe); SIGINT takes the same path for interactive use.
  // The event threads do all the work, so the main thread just blocks
  // in join() — it returns once the drain (or a hard stop) finishes.
  lfbst::server::drain_on_sigterm(server);
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = lfbst::server::detail::sigterm_trampoline;
  (void)sigaction(SIGINT, &sa, nullptr);
  server.join();

  const auto& st = server.stats();
  std::fprintf(
      stderr,
      "lfbst_serve: conns=%llu/%llu frames=%llu responses=%llu "
      "bytes=%llu/%llu proto_errors=%llu nack_drain=%llu "
      "coalesced=%llu/%llu backpressure=%llu\n",
      static_cast<unsigned long long>(st.connections_accepted.load()),
      static_cast<unsigned long long>(st.connections_closed.load()),
      static_cast<unsigned long long>(st.frames_in.load()),
      static_cast<unsigned long long>(st.responses_out.load()),
      static_cast<unsigned long long>(st.bytes_in.load()),
      static_cast<unsigned long long>(st.bytes_out.load()),
      static_cast<unsigned long long>(st.protocol_errors.load()),
      static_cast<unsigned long long>(st.rejected_shutting_down.load()),
      static_cast<unsigned long long>(st.coalesced_groups.load()),
      static_cast<unsigned long long>(st.coalesced_ops.load()),
      static_cast<unsigned long long>(st.backpressure_pauses.load()));

  if (flags.has("json")) {
    lfbst::obs::bench_report report("lfbst_serve");
    report.config.set("host", cfg.host);
    report.config.set("port", static_cast<std::int64_t>(server.port()));
    report.config.set("threads",
                      static_cast<std::int64_t>(cfg.event_threads));
    const auto h = server.latency().merged_all();
    lfbst::obs::json::value row = lfbst::obs::json::value::object();
    row.set("study", "server_lifetime");
    row.set("ops", static_cast<std::int64_t>(h.count()));
    row.set("p50_ns", static_cast<std::int64_t>(h.value_at_percentile(50)));
    row.set("p99_ns", static_cast<std::int64_t>(h.value_at_percentile(99)));
    row.set("p999_ns",
            static_cast<std::int64_t>(h.value_at_percentile(99.9)));
    report.add_result(std::move(row));
    const std::string path = flags.get("json", "serve_report.json");
    if (!report.write_file(path.empty() ? "serve_report.json" : path)) {
      return 1;
    }
  }
  return 0;
}
