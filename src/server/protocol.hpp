// lfbst server: the wire protocol — length-prefixed binary frames over
// a byte stream (TCP), the contract between src/server/server.hpp, the
// client library (src/server/client.hpp), bench/bench_server.cpp and
// the codec fuzzer (tests/server/codec_test.cpp).
//
// Frame layout (all integers little-endian):
//
//   u32 body_len          1 <= body_len <= max_frame_bytes
//   u8  opcode            get/insert/erase/batch/range_scan/ping/stat
//   u64 request_id        echoed verbatim in the response
//   ...opcode payload...
//
// Request payloads:
//
//   get/insert/erase      i64 key
//   batch                 u8 sub_op (get|insert|erase), u32 count
//                         (<= max_batch_keys), i64 key[count]
//   range_scan            i64 lo, i64 hi, u32 max_items  — half-open
//                         [lo, hi); max_items 0 = server's default page
//   ping                  (empty)
//   stat                  u32 flags (stat_flag_* bits; unknown bits are
//                         rejected so they stay available for future
//                         versions)
//
// Response payloads (u8 status after the echoed opcode + id; payload
// present only when status == ok):
//
//   get/insert/erase      u8 result
//   batch                 u32 count, u8 result[count]   (input order)
//   range_scan            u8 truncated, i64 resume_key, u32 count,
//                         i64 key[count] — sorted; when truncated, the
//                         remainder is reachable by re-issuing the scan
//                         with lo = resume_key (the bounded-result form
//                         of shard::sharded_set::range_scan_limit, so a
//                         huge subrange cannot head-of-line-block the
//                         connection)
//   ping                  (empty)
//   stat                  u8 version (== stat_version; anything else is
//                         bad_frame — a reader must not misparse a
//                         future layout), u64 now_ns, u64 window_ns,
//                         u64 windows_published, u64 window_ops,
//                         u64 lat_p50_ns, u64 lat_p99_ns, u64 seek_p50,
//                         u64 seek_p99, u8 flight_dumped,
//                         u32 n_counters (<= max_stat_counters),
//                         u64 counter[n_counters],
//                         u32 n_shards (<= max_stat_shards),
//                         u64 shard_ops[n_shards],
//                         u64 shard_window_ops[n_shards]
//                         — the live-telemetry snapshot; field semantics
//                         in docs/TELEMETRY.md and docs/SERVER.md
//
// Decoding discipline: the decoder is incremental (feed it any prefix
// of the stream; it answers need_more until a whole frame is present),
// strictly bounded (never reads past the bytes it was given, rejects
// body lengths over max_frame_bytes before buffering), and strict (a
// body whose payload does not exactly match its opcode's layout —
// trailing bytes included — is bad_frame). bad_frame means the stream
// itself can no longer be trusted (framing is lost); the server replies
// status=malformed when it could still recover the request id, then
// closes the connection.
#pragma once

#include <cstdint>
#include <vector>

namespace lfbst::server {

enum class opcode : std::uint8_t {
  get = 1,
  insert = 2,
  erase = 3,
  batch = 4,
  range_scan = 5,
  ping = 6,
  stat = 7,
};

enum class status_code : std::uint8_t {
  ok = 0,
  malformed = 1,      // frame decoded structurally but was rejected
  too_large = 2,      // batch/scan bounds above the server's limits
  shutting_down = 3,  // request arrived after drain began
};

/// Hard ceiling on one frame's body. Large enough for a full-size batch
/// or scan page plus headers; small enough that one connection cannot
/// balloon the server's read buffer.
inline constexpr std::size_t max_frame_bytes = 1u << 20;  // 1 MiB

/// Largest batch a single frame may carry.
inline constexpr std::uint32_t max_batch_keys = 1u << 16;

/// Largest scan page a response will carry; servers clamp a request's
/// max_items to this.
inline constexpr std::uint32_t max_scan_items = 1u << 16;

/// stat snapshot layout version this codec speaks. Bumped on any layout
/// change; decoders reject other versions outright (strictness over
/// forward compatibility — a stale client must fail loudly, not
/// misparse).
inline constexpr std::uint8_t stat_version = 1;

/// stat request flag bits. Undefined bits are bad_frame.
inline constexpr std::uint32_t stat_flag_flight_dump = 1u << 0;
inline constexpr std::uint32_t stat_flags_known = stat_flag_flight_dump;

/// Ceilings for the stat response's variable sections: enough for the
/// obs counter set and any sane shard count to grow, small enough that
/// a hostile frame cannot force large allocations.
inline constexpr std::uint32_t max_stat_counters = 256;
inline constexpr std::uint32_t max_stat_shards = 4096;

[[nodiscard]] inline bool valid_opcode(std::uint8_t b) noexcept {
  return b >= static_cast<std::uint8_t>(opcode::get) &&
         b <= static_cast<std::uint8_t>(opcode::stat);
}

[[nodiscard]] inline const char* opcode_name(opcode op) noexcept {
  switch (op) {
    case opcode::get: return "get";
    case opcode::insert: return "insert";
    case opcode::erase: return "erase";
    case opcode::batch: return "batch";
    case opcode::range_scan: return "range_scan";
    case opcode::ping: return "ping";
    case opcode::stat: return "stat";
  }
  return "unknown";
}

/// One decoded request. Which members are meaningful depends on `op`:
/// key for the point ops; batch_op + keys for batch; lo/hi/max_items
/// for range_scan.
struct request {
  opcode op = opcode::ping;
  std::uint64_t id = 0;
  std::int64_t key = 0;
  opcode batch_op = opcode::get;
  std::vector<std::int64_t> keys;
  std::int64_t lo = 0;
  std::int64_t hi = 0;
  std::uint32_t max_items = 0;
  std::uint32_t stat_flags = 0;  // stat: stat_flag_* bits
};

/// The stat opcode's payload: a versioned snapshot of the server's
/// live telemetry (obs/telemetry.hpp windows + lifetime counters).
/// counters[] is indexed by obs::counter order; shard_ops /
/// shard_window_ops are parallel arrays over the server's shards
/// (lifetime point ops, and point ops in the latest telemetry window).
struct stat_result {
  std::uint64_t now_ns = 0;             // server steady_clock at encode
  std::uint64_t window_ns = 0;          // latest window's wall length
  std::uint64_t windows_published = 0;  // sampler windows so far
  std::uint64_t window_ops = 0;         // point ops in the latest window
  std::uint64_t lat_p50_ns = 0;         // window latency quantiles
  std::uint64_t lat_p99_ns = 0;
  std::uint64_t seek_p50 = 0;  // window seek-depth quantiles
  std::uint64_t seek_p99 = 0;
  bool flight_dumped = false;  // a requested flight dump was queued
  std::vector<std::uint64_t> counters;
  std::vector<std::uint64_t> shard_ops;
  std::vector<std::uint64_t> shard_window_ops;  // same length as shard_ops

  friend bool operator==(const stat_result&, const stat_result&) = default;
};

/// One decoded response; payload members mirror the request shape.
struct response {
  opcode op = opcode::ping;
  std::uint64_t id = 0;
  status_code status = status_code::ok;
  bool result = false;
  std::vector<std::uint8_t> results;  // batch: 0/1 per input key
  bool truncated = false;
  std::int64_t resume_key = 0;
  std::vector<std::int64_t> keys;  // scan page, sorted
  stat_result stat;                // stat: the telemetry snapshot
};

enum class decode_status : std::uint8_t {
  ok,         // one frame decoded; `consumed` bytes were used
  need_more,  // the buffer holds only a prefix of the next frame
  bad_frame,  // framing or payload is invalid; the stream is dead
};

// --- little-endian primitives ---------------------------------------

namespace wire {

inline void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) {
  out.push_back(v);
}

inline void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

inline void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v));
  put_u32(out, static_cast<std::uint32_t>(v >> 32));
}

inline void put_i64(std::vector<std::uint8_t>& out, std::int64_t v) {
  put_u64(out, static_cast<std::uint64_t>(v));
}

/// Bounds-checked sequential reader over a byte span. Every take_*
/// checks remaining() first; ok_ latches false on the first overrun so
/// callers can batch reads and test once.
class reader {
 public:
  reader(const std::uint8_t* data, std::size_t len)
      : data_(data), len_(len) {}

  [[nodiscard]] std::size_t remaining() const noexcept { return len_ - pos_; }
  [[nodiscard]] bool ok() const noexcept { return ok_; }
  [[nodiscard]] bool exhausted() const noexcept {
    return ok_ && pos_ == len_;
  }

  std::uint8_t take_u8() noexcept {
    if (remaining() < 1) return fail_zero();
    return data_[pos_++];
  }

  std::uint32_t take_u32() noexcept {
    if (remaining() < 4) return static_cast<std::uint32_t>(fail_zero());
    std::uint32_t v = 0;
    v |= static_cast<std::uint32_t>(data_[pos_ + 0]);
    v |= static_cast<std::uint32_t>(data_[pos_ + 1]) << 8;
    v |= static_cast<std::uint32_t>(data_[pos_ + 2]) << 16;
    v |= static_cast<std::uint32_t>(data_[pos_ + 3]) << 24;
    pos_ += 4;
    return v;
  }

  std::uint64_t take_u64() noexcept {
    const std::uint64_t lo = take_u32();
    const std::uint64_t hi = take_u32();
    return lo | (hi << 32);
  }

  std::int64_t take_i64() noexcept {
    return static_cast<std::int64_t>(take_u64());
  }

 private:
  std::uint8_t fail_zero() noexcept {
    ok_ = false;
    pos_ = len_;  // poison: every further take fails too
    return 0;
  }

  const std::uint8_t* data_;
  std::size_t len_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace wire

// --- encoding --------------------------------------------------------

namespace detail {

/// Reserves the 4-byte length prefix, returns its offset.
inline std::size_t begin_frame(std::vector<std::uint8_t>& out) {
  const std::size_t at = out.size();
  wire::put_u32(out, 0);
  return at;
}

/// Patches the length prefix with the body size written since
/// begin_frame.
inline void end_frame(std::vector<std::uint8_t>& out, std::size_t at) {
  const std::uint32_t body =
      static_cast<std::uint32_t>(out.size() - at - 4);
  out[at + 0] = static_cast<std::uint8_t>(body);
  out[at + 1] = static_cast<std::uint8_t>(body >> 8);
  out[at + 2] = static_cast<std::uint8_t>(body >> 16);
  out[at + 3] = static_cast<std::uint8_t>(body >> 24);
}

}  // namespace detail

/// Appends one encoded request frame to `out`.
inline void encode_request(std::vector<std::uint8_t>& out,
                           const request& req) {
  const std::size_t frame = detail::begin_frame(out);
  wire::put_u8(out, static_cast<std::uint8_t>(req.op));
  wire::put_u64(out, req.id);
  switch (req.op) {
    case opcode::get:
    case opcode::insert:
    case opcode::erase: wire::put_i64(out, req.key); break;
    case opcode::batch:
      wire::put_u8(out, static_cast<std::uint8_t>(req.batch_op));
      wire::put_u32(out, static_cast<std::uint32_t>(req.keys.size()));
      for (std::int64_t k : req.keys) wire::put_i64(out, k);
      break;
    case opcode::range_scan:
      wire::put_i64(out, req.lo);
      wire::put_i64(out, req.hi);
      wire::put_u32(out, req.max_items);
      break;
    case opcode::ping: break;
    case opcode::stat: wire::put_u32(out, req.stat_flags); break;
  }
  detail::end_frame(out, frame);
}

/// Appends one encoded response frame to `out`.
inline void encode_response(std::vector<std::uint8_t>& out,
                            const response& resp) {
  const std::size_t frame = detail::begin_frame(out);
  wire::put_u8(out, static_cast<std::uint8_t>(resp.op));
  wire::put_u64(out, resp.id);
  wire::put_u8(out, static_cast<std::uint8_t>(resp.status));
  if (resp.status == status_code::ok) {
    switch (resp.op) {
      case opcode::get:
      case opcode::insert:
      case opcode::erase: wire::put_u8(out, resp.result ? 1 : 0); break;
      case opcode::batch:
        wire::put_u32(out, static_cast<std::uint32_t>(resp.results.size()));
        for (std::uint8_t r : resp.results) wire::put_u8(out, r);
        break;
      case opcode::range_scan:
        wire::put_u8(out, resp.truncated ? 1 : 0);
        wire::put_i64(out, resp.resume_key);
        wire::put_u32(out, static_cast<std::uint32_t>(resp.keys.size()));
        for (std::int64_t k : resp.keys) wire::put_i64(out, k);
        break;
      case opcode::ping: break;
      case opcode::stat: {
        const stat_result& s = resp.stat;
        wire::put_u8(out, stat_version);
        wire::put_u64(out, s.now_ns);
        wire::put_u64(out, s.window_ns);
        wire::put_u64(out, s.windows_published);
        wire::put_u64(out, s.window_ops);
        wire::put_u64(out, s.lat_p50_ns);
        wire::put_u64(out, s.lat_p99_ns);
        wire::put_u64(out, s.seek_p50);
        wire::put_u64(out, s.seek_p99);
        wire::put_u8(out, s.flight_dumped ? 1 : 0);
        wire::put_u32(out, static_cast<std::uint32_t>(s.counters.size()));
        for (std::uint64_t v : s.counters) wire::put_u64(out, v);
        wire::put_u32(out, static_cast<std::uint32_t>(s.shard_ops.size()));
        for (std::uint64_t v : s.shard_ops) wire::put_u64(out, v);
        for (std::uint64_t v : s.shard_window_ops) wire::put_u64(out, v);
        break;
      }
    }
  }
  detail::end_frame(out, frame);
}

// --- decoding --------------------------------------------------------

namespace detail {

/// Shared framing: validates the length prefix against the bytes
/// available and max_frame_bytes. On ok, *body/*body_len describe the
/// frame body and *consumed the whole frame.
inline decode_status frame_bounds(const std::uint8_t* data, std::size_t len,
                                  const std::uint8_t** body,
                                  std::size_t* body_len,
                                  std::size_t* consumed) {
  if (len < 4) return decode_status::need_more;
  const std::uint32_t n = static_cast<std::uint32_t>(data[0]) |
                          static_cast<std::uint32_t>(data[1]) << 8 |
                          static_cast<std::uint32_t>(data[2]) << 16 |
                          static_cast<std::uint32_t>(data[3]) << 24;
  if (n == 0 || n > max_frame_bytes) return decode_status::bad_frame;
  if (len - 4 < n) return decode_status::need_more;
  *body = data + 4;
  *body_len = n;
  *consumed = 4 + static_cast<std::size_t>(n);
  return decode_status::ok;
}

}  // namespace detail

/// Decodes one request frame from data[0..len). ok: `out` is filled and
/// `consumed` says how many bytes the frame used; need_more: keep the
/// bytes and retry with more; bad_frame: close the stream.
inline decode_status try_decode_request(const std::uint8_t* data,
                                        std::size_t len, request& out,
                                        std::size_t& consumed) {
  const std::uint8_t* body = nullptr;
  std::size_t body_len = 0;
  const decode_status framed =
      detail::frame_bounds(data, len, &body, &body_len, &consumed);
  if (framed != decode_status::ok) return framed;

  wire::reader r(body, body_len);
  const std::uint8_t op_byte = r.take_u8();
  const std::uint64_t id = r.take_u64();
  if (!r.ok() || !valid_opcode(op_byte)) return decode_status::bad_frame;
  out = request{};
  out.op = static_cast<opcode>(op_byte);
  out.id = id;
  switch (out.op) {
    case opcode::get:
    case opcode::insert:
    case opcode::erase: out.key = r.take_i64(); break;
    case opcode::batch: {
      const std::uint8_t sub = r.take_u8();
      const std::uint32_t count = r.take_u32();
      if (!r.ok() || sub < static_cast<std::uint8_t>(opcode::get) ||
          sub > static_cast<std::uint8_t>(opcode::erase)) {
        return decode_status::bad_frame;
      }
      if (count > max_batch_keys || r.remaining() != count * 8u) {
        return decode_status::bad_frame;
      }
      out.batch_op = static_cast<opcode>(sub);
      out.keys.resize(count);
      for (std::uint32_t i = 0; i < count; ++i) out.keys[i] = r.take_i64();
      break;
    }
    case opcode::range_scan:
      out.lo = r.take_i64();
      out.hi = r.take_i64();
      out.max_items = r.take_u32();
      break;
    case opcode::ping: break;
    case opcode::stat:
      out.stat_flags = r.take_u32();
      // Unknown flag bits are rejected, not ignored: they stay free for
      // future layout versions without silently changing behavior.
      if (r.ok() && (out.stat_flags & ~stat_flags_known) != 0) {
        return decode_status::bad_frame;
      }
      break;
  }
  if (!r.exhausted()) return decode_status::bad_frame;  // short or trailing
  return decode_status::ok;
}

/// Decodes one response frame; same contract as try_decode_request.
inline decode_status try_decode_response(const std::uint8_t* data,
                                         std::size_t len, response& out,
                                         std::size_t& consumed) {
  const std::uint8_t* body = nullptr;
  std::size_t body_len = 0;
  const decode_status framed =
      detail::frame_bounds(data, len, &body, &body_len, &consumed);
  if (framed != decode_status::ok) return framed;

  wire::reader r(body, body_len);
  const std::uint8_t op_byte = r.take_u8();
  const std::uint64_t id = r.take_u64();
  const std::uint8_t st = r.take_u8();
  if (!r.ok() || !valid_opcode(op_byte) ||
      st > static_cast<std::uint8_t>(status_code::shutting_down)) {
    return decode_status::bad_frame;
  }
  out = response{};
  out.op = static_cast<opcode>(op_byte);
  out.id = id;
  out.status = static_cast<status_code>(st);
  if (out.status == status_code::ok) {
    switch (out.op) {
      case opcode::get:
      case opcode::insert:
      case opcode::erase: {
        // Booleans are canonical on the wire: only 0 and 1 decode, so
        // decode ∘ encode is the identity on accepted frames.
        const std::uint8_t b = r.take_u8();
        if (b > 1) return decode_status::bad_frame;
        out.result = b != 0;
        break;
      }
      case opcode::batch: {
        const std::uint32_t count = r.take_u32();
        if (!r.ok() || count > max_batch_keys ||
            r.remaining() != count) {
          return decode_status::bad_frame;
        }
        out.results.resize(count);
        for (std::uint32_t i = 0; i < count; ++i) {
          const std::uint8_t b = r.take_u8();
          if (b > 1) return decode_status::bad_frame;
          out.results[i] = b;
        }
        break;
      }
      case opcode::range_scan: {
        const std::uint8_t trunc = r.take_u8();
        if (trunc > 1) return decode_status::bad_frame;
        out.truncated = trunc != 0;
        out.resume_key = r.take_i64();
        const std::uint32_t count = r.take_u32();
        if (!r.ok() || count > max_scan_items ||
            r.remaining() != count * 8u) {
          return decode_status::bad_frame;
        }
        out.keys.resize(count);
        for (std::uint32_t i = 0; i < count; ++i) out.keys[i] = r.take_i64();
        break;
      }
      case opcode::ping: break;
      case opcode::stat: {
        stat_result& s = out.stat;
        const std::uint8_t version = r.take_u8();
        if (!r.ok() || version != stat_version) {
          return decode_status::bad_frame;
        }
        s.now_ns = r.take_u64();
        s.window_ns = r.take_u64();
        s.windows_published = r.take_u64();
        s.window_ops = r.take_u64();
        s.lat_p50_ns = r.take_u64();
        s.lat_p99_ns = r.take_u64();
        s.seek_p50 = r.take_u64();
        s.seek_p99 = r.take_u64();
        const std::uint8_t dumped = r.take_u8();
        if (!r.ok() || dumped > 1) return decode_status::bad_frame;
        s.flight_dumped = dumped != 0;
        const std::uint32_t n_counters = r.take_u32();
        if (!r.ok() || n_counters > max_stat_counters ||
            r.remaining() < n_counters * 8u) {
          return decode_status::bad_frame;
        }
        s.counters.resize(n_counters);
        for (std::uint32_t i = 0; i < n_counters; ++i) {
          s.counters[i] = r.take_u64();
        }
        const std::uint32_t n_shards = r.take_u32();
        if (!r.ok() || n_shards > max_stat_shards ||
            r.remaining() != n_shards * 16u) {
          return decode_status::bad_frame;
        }
        s.shard_ops.resize(n_shards);
        for (std::uint32_t i = 0; i < n_shards; ++i) {
          s.shard_ops[i] = r.take_u64();
        }
        s.shard_window_ops.resize(n_shards);
        for (std::uint32_t i = 0; i < n_shards; ++i) {
          s.shard_window_ops[i] = r.take_u64();
        }
        break;
      }
    }
  }
  if (!r.exhausted()) return decode_status::bad_frame;
  return decode_status::ok;
}

}  // namespace lfbst::server
