// lfbst server: a small blocking client for the wire protocol.
//
// This is the test and bench counterpart of basic_server: it owns one
// TCP connection, encodes requests with protocol.hpp, and decodes
// responses out of an internal buffer. Two usage styles:
//
//   * convenience calls (get/insert/erase/batch/range_scan/ping): one
//     request, wait for its response — simple oracle-test plumbing;
//   * pipelining: send_request() any number of frames, then
//     recv_response() them back; the server guarantees input-order
//     responses per connection, which the integration test asserts.
//
// All receives honor a deadline (default 10 s) so a wedged server fails
// a test instead of hanging it. The client is deliberately not
// thread-safe: one connection per thread, like a real client shard.
#pragma once

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "server/protocol.hpp"

namespace lfbst::server {

class client {
 public:
  client() = default;

  client(const client&) = delete;
  client& operator=(const client&) = delete;

  client(client&& other) noexcept { swap(other); }

  client& operator=(client&& other) noexcept {
    if (this != &other) {
      close();
      swap(other);
    }
    return *this;
  }

  ~client() { close(); }

  [[nodiscard]] bool connect(const std::string& host, std::uint16_t port) {
    close();
    fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd_ < 0) return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
      close();
      return false;
    }
    if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      close();
      return false;
    }
    const int one = 1;
    (void)setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return true;
  }

  [[nodiscard]] bool connected() const noexcept { return fd_ >= 0; }
  [[nodiscard]] int fd() const noexcept { return fd_; }

  void close() noexcept {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
    rbuf_.clear();
    rpos_ = 0;
  }

  /// Half-close the sending side: the server answers what it received
  /// and then closes — the clean "send all, read all, EOF" shutdown.
  void shutdown_send() noexcept {
    if (fd_ >= 0) (void)::shutdown(fd_, SHUT_WR);
  }

  void set_recv_timeout_ms(int ms) noexcept { recv_timeout_ms_ = ms; }

  /// Encodes and writes one request frame (blocking until the kernel
  /// accepts it). False on a broken connection.
  [[nodiscard]] bool send_request(const request& req) {
    scratch_.clear();
    encode_request(scratch_, req);
    return send_raw(scratch_.data(), scratch_.size());
  }

  /// Writes pre-encoded bytes — the fault tests use this to send
  /// truncated and garbage frames a well-formed encoder never would.
  [[nodiscard]] bool send_raw(const void* data, std::size_t len) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    while (len > 0) {
      const ssize_t n = ::send(fd_, p, len, MSG_NOSIGNAL);
      if (n > 0) {
        p += n;
        len -= static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    return true;
  }

  /// Blocks (up to the recv timeout) for the next response frame.
  /// False on timeout, EOF, or a malformed frame from the server.
  [[nodiscard]] bool recv_response(response& out) {
    for (;;) {
      std::size_t consumed = 0;
      const decode_status st = try_decode_response(
          rbuf_.data() + rpos_, rbuf_.size() - rpos_, out, consumed);
      if (st == decode_status::ok) {
        rpos_ += consumed;
        if (rpos_ == rbuf_.size()) {
          rbuf_.clear();
          rpos_ = 0;
        }
        return true;
      }
      if (st == decode_status::bad_frame) return false;
      if (!fill()) return false;
    }
  }

  // --- one-shot convenience ops --------------------------------------

  /// status_code::ok and a boolean result, or nullopt-like failure via
  /// the out-params; tests that care about NACK statuses use the
  /// request/response API directly.
  [[nodiscard]] bool get(std::int64_t key, bool& found) {
    return point_op(opcode::get, key, found);
  }

  [[nodiscard]] bool insert(std::int64_t key, bool& inserted) {
    return point_op(opcode::insert, key, inserted);
  }

  [[nodiscard]] bool erase(std::int64_t key, bool& erased) {
    return point_op(opcode::erase, key, erased);
  }

  [[nodiscard]] bool ping() {
    request req;
    req.op = opcode::ping;
    req.id = next_id_++;
    response resp;
    return roundtrip(req, resp) && resp.status == status_code::ok;
  }

  /// One ping round trip, timed: wall microseconds from send to decoded
  /// response. The empty-payload ping makes this the purest wire+server
  /// RTT the protocol can measure — bench_server reports it per cell,
  /// and the min over a small burst approximates the uncontended floor.
  [[nodiscard]] bool ping_rtt(std::uint64_t& rtt_us) {
    const auto t0 = std::chrono::steady_clock::now();
    if (!ping()) return false;
    const auto t1 = std::chrono::steady_clock::now();
    rtt_us = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0)
            .count());
    return true;
  }

  /// Minimum ping RTT over `probes` round trips (0 behaves as 1) — the
  /// steady-state floor, insulated from scheduler noise.
  [[nodiscard]] bool ping_rtt_min(unsigned probes, std::uint64_t& rtt_us) {
    std::uint64_t best = ~0ull;
    if (probes == 0) probes = 1;
    for (unsigned i = 0; i < probes; ++i) {
      std::uint64_t one = 0;
      if (!ping_rtt(one)) return false;
      if (one < best) best = one;
    }
    rtt_us = best;
    return true;
  }

  /// Requests the server's live-telemetry snapshot; set
  /// `request_flight_dump` to also trigger a flight-recorder dump
  /// server-side (stat_flag_flight_dump).
  [[nodiscard]] bool stat(stat_result& out,
                          bool request_flight_dump = false) {
    request req;
    req.op = opcode::stat;
    req.id = next_id_++;
    req.stat_flags = request_flight_dump ? stat_flag_flight_dump : 0;
    response resp;
    if (!roundtrip(req, resp) || resp.status != status_code::ok) {
      return false;
    }
    out = std::move(resp.stat);
    return true;
  }

  /// One batch frame; results[i] corresponds to keys[i] (input order).
  [[nodiscard]] bool batch(opcode sub_op,
                           const std::vector<std::int64_t>& keys,
                           std::vector<bool>& results) {
    request req;
    req.op = opcode::batch;
    req.id = next_id_++;
    req.batch_op = sub_op;
    req.keys = keys;
    response resp;
    if (!roundtrip(req, resp) || resp.status != status_code::ok ||
        resp.results.size() != keys.size()) {
      return false;
    }
    results.assign(resp.results.size(), false);
    for (std::size_t i = 0; i < resp.results.size(); ++i) {
      results[i] = resp.results[i] != 0;
    }
    return true;
  }

  struct scan_result {
    std::vector<std::int64_t> keys;
    bool truncated = false;
    std::int64_t resume_key = 0;
  };

  /// One page of [lo, hi); max_items = 0 asks for the server default.
  [[nodiscard]] bool range_scan(std::int64_t lo, std::int64_t hi,
                                std::uint32_t max_items, scan_result& out) {
    request req;
    req.op = opcode::range_scan;
    req.id = next_id_++;
    req.lo = lo;
    req.hi = hi;
    req.max_items = max_items;
    response resp;
    if (!roundtrip(req, resp) || resp.status != status_code::ok) {
      return false;
    }
    out.keys = std::move(resp.keys);
    out.truncated = resp.truncated;
    out.resume_key = resp.resume_key;
    return true;
  }

  /// Follows continuation keys until the whole [lo, hi) range has been
  /// paged out — how a client is meant to consume a big scan.
  [[nodiscard]] bool range_scan_all(std::int64_t lo, std::int64_t hi,
                                    std::uint32_t page,
                                    std::vector<std::int64_t>& out) {
    out.clear();
    std::int64_t cursor = lo;
    for (;;) {
      scan_result part;
      if (!range_scan(cursor, hi, page, part)) return false;
      out.insert(out.end(), part.keys.begin(), part.keys.end());
      if (!part.truncated) return true;
      cursor = part.resume_key;
    }
  }

  [[nodiscard]] std::uint64_t next_id() noexcept { return next_id_++; }

 private:
  void swap(client& other) noexcept {
    std::swap(fd_, other.fd_);
    std::swap(rbuf_, other.rbuf_);
    std::swap(rpos_, other.rpos_);
    std::swap(next_id_, other.next_id_);
    std::swap(recv_timeout_ms_, other.recv_timeout_ms_);
  }

  [[nodiscard]] bool point_op(opcode op, std::int64_t key, bool& result) {
    request req;
    req.op = op;
    req.id = next_id_++;
    req.key = key;
    response resp;
    if (!roundtrip(req, resp) || resp.status != status_code::ok) {
      return false;
    }
    result = resp.result;
    return true;
  }

  [[nodiscard]] bool roundtrip(const request& req, response& resp) {
    return send_request(req) && recv_response(resp) && resp.id == req.id;
  }

  /// Waits for readability (deadline!) and appends whatever arrived.
  [[nodiscard]] bool fill() {
    pollfd pfd{};
    pfd.fd = fd_;
    pfd.events = POLLIN;
    for (;;) {
      const int pr = ::poll(&pfd, 1, recv_timeout_ms_);
      if (pr < 0 && errno == EINTR) continue;
      if (pr <= 0) return false;  // timeout or poll failure
      break;
    }
    std::uint8_t chunk[64 * 1024];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n <= 0) return false;  // EOF or error
    rbuf_.insert(rbuf_.end(), chunk, chunk + n);
    return true;
  }

  int fd_ = -1;
  std::vector<std::uint8_t> rbuf_;
  std::size_t rpos_ = 0;
  std::vector<std::uint8_t> scratch_;
  std::uint64_t next_id_ = 1;
  int recv_timeout_ms_ = 10'000;
};

}  // namespace lfbst::server
