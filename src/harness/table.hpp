// lfbst: fixed-width table and CSV emitters for the reproduction
// harnesses. The Figure-4 binaries print one paper-style series per
// (key range, workload) cell: thread count on the x-axis, one column of
// throughput per algorithm, plus the NM-vs-best-rival ratio the paper
// quotes in its prose.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace lfbst::harness {

/// Minimal aligned-column printer. Collect rows as strings; widths are
/// computed from content on flush.
class text_table {
 public:
  explicit text_table(std::vector<std::string> header)
      : header_(std::move(header)) {}

  void add_row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  void print(std::FILE* out = stdout) const {
    std::vector<std::size_t> width(header_.size(), 0);
    auto widen = [&](const std::vector<std::string>& row) {
      for (std::size_t i = 0; i < row.size() && i < width.size(); ++i) {
        width[i] = std::max(width[i], row[i].size());
      }
    };
    widen(header_);
    for (const auto& r : rows_) widen(r);

    auto print_row = [&](const std::vector<std::string>& row) {
      for (std::size_t i = 0; i < width.size(); ++i) {
        const std::string& cell = i < row.size() ? row[i] : empty_;
        std::fprintf(out, "%-*s%s", static_cast<int>(width[i]), cell.c_str(),
                     i + 1 < width.size() ? "  " : "\n");
      }
    };
    print_row(header_);
    for (std::size_t i = 0; i < width.size(); ++i) {
      std::fprintf(out, "%s%s", std::string(width[i], '-').c_str(),
                   i + 1 < width.size() ? "  " : "\n");
    }
    for (const auto& r : rows_) print_row(r);
  }

  void print_csv(std::FILE* out) const {
    auto emit = [&](const std::vector<std::string>& row) {
      for (std::size_t i = 0; i < row.size(); ++i) {
        std::fprintf(out, "%s%s", row[i].c_str(),
                     i + 1 < row.size() ? "," : "\n");
      }
    };
    emit(header_);
    for (const auto& r : rows_) emit(r);
  }

  /// Accessors for structured exporters (obs::rows_from_table turns the
  /// collected cells into JSON result rows).
  [[nodiscard]] const std::vector<std::string>& header() const noexcept {
    return header_;
  }
  [[nodiscard]] const std::vector<std::vector<std::string>>& rows()
      const noexcept {
    return rows_;
  }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
  inline static const std::string empty_;
};

/// printf-style std::string helper.
template <typename... Args>
std::string format(const char* fmt, Args... args) {
  char buf[256];
  std::snprintf(buf, sizeof(buf), fmt, args...);
  return buf;
}

}  // namespace lfbst::harness
