// lfbst: workload specification for the paper's evaluation (§4).
//
// The paper's experimental grid is three-dimensional:
//   * key-space size   — 1K, 10K, 100K, 1M ("Maximum Tree Size");
//   * operation mix    — write-dominated 0/50/50, mixed 70/20/10,
//                        read-dominated 90/9/1 (search/insert/delete);
//   * thread count     — 1..256 ("Maximum Degree of Contention").
// Trees are pre-populated to half the key range before timing starts and
// keys are drawn uniformly from the range, following Bronson et al. and
// Howley & Jones, whose setup the paper copies.
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <string>

namespace lfbst::harness {

/// Operation mix in percent; must sum to 100.
struct op_mix {
  const char* name;
  unsigned search_pct;
  unsigned insert_pct;
  unsigned erase_pct;
};

/// The paper's three workload columns (Figure 4).
inline constexpr op_mix write_dominated{"write-dominated", 0, 50, 50};
inline constexpr op_mix mixed{"mixed", 70, 20, 10};
inline constexpr op_mix read_dominated{"read-dominated", 90, 9, 1};

inline constexpr std::array<op_mix, 3> paper_mixes{
    write_dominated, mixed, read_dominated};

/// The sharding evaluation's mix (bench_sharded): balanced update
/// pressure with half the ops reads — uniform across shards, heavy
/// enough on writes that root contention dominates the unsharded tree.
inline constexpr op_mix uniform_50_25_25{"uniform-50/25/25", 50, 25, 25};

/// The paper's four key-space rows (Figure 4).
inline constexpr std::array<std::uint64_t, 4> paper_key_ranges{
    1'000, 10'000, 100'000, 1'000'000};

struct workload_config {
  std::uint64_t key_range = 10'000;
  op_mix mix = mixed;
  unsigned threads = 4;
  std::chrono::milliseconds duration{300};
  std::uint64_t seed = 0x5EED;
  /// Pre-populate the tree to key_range/2 before measuring (paper §4).
  bool prepopulate = true;

  [[nodiscard]] std::string label() const {
    return std::string(mix.name) + " / " + std::to_string(key_range) +
           " keys / " + std::to_string(threads) + " thr";
  }
};

/// Parse a mix by name ("write-dominated" | "mixed" | "read-dominated" |
/// "uniform-50/25/25"); returns mixed on unknown input.
inline op_mix mix_by_name(const std::string& name) {
  for (const op_mix& m : paper_mixes) {
    if (name == m.name) return m;
  }
  if (name == uniform_50_25_25.name) return uniform_50_25_25;
  return mixed;
}

}  // namespace lfbst::harness
