// lfbst harness: adversarial key streams — the insertion orders that
// degenerate an unbalanced external BST (docs/RESILIENCE.md).
//
// Each stream is a deterministic function index -> key over a key
// count n, so benches and tests can replay identical streams across
// algorithms and across the scramble-on/off arms of a study:
//
//   * sequential      — 0, 1, 2, ...: the classic monotone stream;
//                       every insert descends the right spine, so the
//                       tree IS the spine (depth ~ n).
//   * bit_reversed    — bitrev_w(i) over w = bits(n): the van der
//                       Corput order. Each key bisects the largest
//                       remaining gap, so this stream builds a
//                       near-perfectly *balanced* BST — it is the
//                       hash-table attack, not the BST attack, and the
//                       studies keep it as a negative control: its raw
//                       (unscrambled) depths must already be ~log2 n,
//                       which cross-checks the seek-depth measurement
//                       itself.
//   * adaptive_attack — the outside-in zigzag 0, n-1, 1, n-2, ...:
//                       every key lands between the two most recently
//                       inserted extremes, extending one root-to-leaf
//                       path by one node per insert (depth ~ n) while
//                       staying non-monotone — it defeats the obvious
//                       "detect a sorted run" mitigation, standing in
//                       for an attacker who adapts the stream to
//                       whatever shape heuristic is deployed.
//
// All three are permutations of [0, n) (bit_reversed of [0, 2^w), of
// which the first n values are emitted), so set sizes and hit rates
// match the uniform baseline exactly.
#pragma once

#include <cstdint>
#include <limits>
#include <string>

namespace lfbst::harness {

enum class key_stream_kind {
  uniform,          // pseudorandom baseline (caller supplies the rng)
  sequential,       // monotone counter
  bit_reversed,     // van der Corput (balanced negative control)
  adaptive_attack,  // outside-in zigzag (non-monotone spine builder)
};

[[nodiscard]] inline const char* key_stream_name(key_stream_kind k) {
  switch (k) {
    case key_stream_kind::uniform: return "uniform";
    case key_stream_kind::sequential: return "sequential";
    case key_stream_kind::bit_reversed: return "bit_reversed";
    case key_stream_kind::adaptive_attack: return "adaptive_attack";
  }
  return "?";
}

/// Parses the --streams flag vocabulary; returns true on success.
[[nodiscard]] inline bool parse_key_stream(const std::string& name,
                                           key_stream_kind& out) {
  if (name == "uniform") out = key_stream_kind::uniform;
  else if (name == "sequential") out = key_stream_kind::sequential;
  else if (name == "bit_reversed") out = key_stream_kind::bit_reversed;
  else if (name == "adaptive_attack") out = key_stream_kind::adaptive_attack;
  else return false;
  return true;
}

/// Smallest width covering n key values (so bit_reversed emits keys in
/// [0, 2^w) with 2^w < 2n — the same order of magnitude as the other
/// streams' [0, n) domain).
[[nodiscard]] constexpr unsigned key_stream_bits(std::uint64_t n) {
  unsigned w = 1;
  while (w < 63 && (std::uint64_t{1} << w) < n) ++w;
  return w;
}

[[nodiscard]] constexpr std::uint64_t bit_reverse(std::uint64_t v,
                                                  unsigned bits) {
  std::uint64_t r = 0;
  for (unsigned i = 0; i < bits; ++i) {
    r = (r << 1) | (v & 1);
    v >>= 1;
  }
  return r;
}

/// The i-th key of stream `kind` over key count n, for i in [0, n).
/// uniform is excluded on purpose — its keys come from the caller's
/// seeded rng so the uniform arm matches the bench's existing rows.
[[nodiscard]] constexpr std::uint64_t key_stream_at(key_stream_kind kind,
                                                    std::uint64_t i,
                                                    std::uint64_t n) {
  switch (kind) {
    case key_stream_kind::sequential:
      return i;
    case key_stream_kind::bit_reversed:
      return bit_reverse(i, key_stream_bits(n));
    case key_stream_kind::adaptive_attack:
      // 0, n-1, 1, n-2, ...: even indices walk up from the bottom,
      // odd indices walk down from the top; they meet in the middle.
      return (i & 1) ? n - 1 - (i >> 1) : i >> 1;
    case key_stream_kind::uniform:
      break;
  }
  return i;
}

/// Exclusive upper bound of the keys stream `kind` emits for count n
/// (benches size routers and miss-probe ranges from it).
[[nodiscard]] constexpr std::uint64_t key_stream_domain(key_stream_kind kind,
                                                        std::uint64_t n) {
  if (kind == key_stream_kind::bit_reversed) {
    return std::uint64_t{1} << key_stream_bits(n);
  }
  return n;
}

}  // namespace lfbst::harness
