// lfbst: timed throughput runner — the measurement loop behind every
// Figure-4 data point.
//
// Protocol per data point (mirrors the paper's setup):
//   1. Pre-populate the tree to key_range/2 with uniformly random keys.
//   2. Launch T threads; each has a private PCG stream derived from
//      (seed, thread index) so runs are reproducible and streams are
//      decorrelated.
//   3. All threads meet at a spin barrier; the main thread starts the
//      clock, sleeps for the configured duration, then raises a stop
//      flag.
//   4. Each thread loops: draw r in [0,100), pick
//      search/insert/erase by the mix percentages, draw a uniform key,
//      execute, bump thread-local counters.
//   5. Throughput = total operations / elapsed wall time.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/barrier.hpp"
#include "common/cacheline.hpp"
#include "common/rng.hpp"
#include "core/concurrent_set.hpp"
#include "core/stats.hpp"
#include "harness/workload.hpp"

namespace lfbst::harness {

/// Default observer: observes nothing, adds nothing to the measurement
/// loop (the per-op timing reads are compiled out entirely). Drop-in
/// alternatives: obs::latency_observer (src/obs/metrics.hpp) or any type
/// with `static constexpr bool observes_ops` and a matching on_op.
struct null_observer {
  static constexpr bool observes_ops = false;
  void on_op(unsigned /*worker*/, stats::op_kind /*kind*/, bool /*result*/,
             std::uint64_t /*latency_ns*/) noexcept {}
};

struct run_result {
  std::uint64_t total_ops = 0;
  std::uint64_t searches = 0;
  std::uint64_t inserts = 0;
  std::uint64_t erases = 0;
  std::uint64_t successful_inserts = 0;
  std::uint64_t successful_erases = 0;
  double elapsed_seconds = 0.0;
  std::size_t final_size = 0;

  [[nodiscard]] double ops_per_second() const {
    return elapsed_seconds > 0 ? static_cast<double>(total_ops) /
                                     elapsed_seconds
                               : 0.0;
  }
  [[nodiscard]] double mops_per_second() const {
    return ops_per_second() / 1e6;
  }
};

/// Fill `set` to roughly half the key range with uniform random keys
/// (the paper pre-populates "rather than starting with an empty tree").
/// Deterministic for a given seed.
template <ConcurrentSet Set>
void prepopulate_half(Set& set, std::uint64_t key_range,
                      std::uint64_t seed) {
  pcg32 rng(seed ^ 0x9E3779B97F4A7C15ULL);  // distinct stream from workers
  const std::uint64_t target = key_range / 2;
  std::uint64_t inserted = 0;
  while (inserted < target) {
    const auto key = static_cast<typename Set::key_type>(
        rng.next64() % key_range);
    if (set.insert(key)) ++inserted;
  }
}

/// Run one timed data point. The set must already be constructed;
/// pre-population happens here when the config asks for it. The observer
/// (see null_observer) receives every operation's kind, result and wall
/// latency when its observes_ops flag is set; with the default observer
/// the timing reads vanish at compile time, keeping the measurement loop
/// identical to the pre-observer harness.
template <ConcurrentSet Set, typename Observer = null_observer>
run_result run_workload(Set& set, const workload_config& cfg,
                        Observer* observer = nullptr) {
  if (cfg.prepopulate) prepopulate_half(set, cfg.key_range, cfg.seed);

  struct thread_counters {
    std::uint64_t ops = 0;
    std::uint64_t searches = 0, inserts = 0, erases = 0;
    std::uint64_t ok_inserts = 0, ok_erases = 0;
  };
  std::vector<padded<thread_counters>> counters(cfg.threads);

  spin_barrier start_line(cfg.threads + 1);
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  threads.reserve(cfg.threads);

  for (unsigned tid = 0; tid < cfg.threads; ++tid) {
    threads.emplace_back([&, tid] {
      pcg32 rng = pcg32::for_thread(cfg.seed, tid);
      thread_counters local;
      start_line.arrive_and_wait();
      while (!stop.load(std::memory_order_relaxed)) {
        const std::uint32_t roll = rng.bounded(100);
        const auto key = static_cast<typename Set::key_type>(
            rng.next64() % cfg.key_range);
        stats::op_kind kind;
        bool ok;
        std::uint64_t t_begin = 0;
        if constexpr (Observer::observes_ops) {
          t_begin = static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now().time_since_epoch())
                  .count());
        }
        if (roll < cfg.mix.search_pct) {
          kind = stats::op_kind::search;
          ok = set.contains(key);
          ++local.searches;
        } else if (roll < cfg.mix.search_pct + cfg.mix.insert_pct) {
          kind = stats::op_kind::insert;
          ok = set.insert(key);
          local.ok_inserts += ok ? 1 : 0;
          ++local.inserts;
        } else {
          kind = stats::op_kind::erase;
          ok = set.erase(key);
          local.ok_erases += ok ? 1 : 0;
          ++local.erases;
        }
        if constexpr (Observer::observes_ops) {
          const auto t_end = static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now().time_since_epoch())
                  .count());
          observer->on_op(tid, kind, ok, t_end - t_begin);
        }
        (void)kind;
        (void)ok;
        ++local.ops;
      }
      counters[tid].value = local;
    });
  }

  start_line.arrive_and_wait();
  const auto t0 = std::chrono::steady_clock::now();
  std::this_thread::sleep_for(cfg.duration);
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : threads) t.join();
  const auto t1 = std::chrono::steady_clock::now();

  run_result r;
  r.elapsed_seconds = std::chrono::duration<double>(t1 - t0).count();
  for (const auto& c : counters) {
    r.total_ops += c.value.ops;
    r.searches += c.value.searches;
    r.inserts += c.value.inserts;
    r.erases += c.value.erases;
    r.successful_inserts += c.value.ok_inserts;
    r.successful_erases += c.value.ok_erases;
  }
  r.final_size = set.size_slow();
  return r;
}

}  // namespace lfbst::harness
