// lfbst: tiny shared flag parser for the reproduction binaries and
// example applications. No dependency
// beyond the standard library; flags are --name=value or --name value.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

namespace lfbst::bench {

class flags {
 public:
  flags(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) args_.emplace_back(argv[i]);
  }

  [[nodiscard]] bool has(const std::string& name) const {
    for (std::size_t i = 0; i < args_.size(); ++i) {
      if (args_[i] == "--" + name) return true;
      if (args_[i].rfind("--" + name + "=", 0) == 0) return true;
    }
    return false;
  }

  [[nodiscard]] std::string get(const std::string& name,
                                const std::string& fallback) const {
    const std::string eq = "--" + name + "=";
    const std::string bare = "--" + name;
    for (std::size_t i = 0; i < args_.size(); ++i) {
      if (args_[i].rfind(eq, 0) == 0) return args_[i].substr(eq.size());
      if (args_[i] == bare && i + 1 < args_.size()) return args_[i + 1];
    }
    return fallback;
  }

  [[nodiscard]] std::int64_t get_int(const std::string& name,
                                     std::int64_t fallback) const {
    const std::string v = get(name, "");
    return v.empty() ? fallback : std::strtoll(v.c_str(), nullptr, 10);
  }

  /// Comma-separated integer list flag, e.g. --threads=1,2,4,8.
  [[nodiscard]] std::vector<std::int64_t> get_int_list(
      const std::string& name, std::vector<std::int64_t> fallback) const {
    const std::string v = get(name, "");
    if (v.empty()) return fallback;
    std::vector<std::int64_t> out;
    std::size_t pos = 0;
    while (pos < v.size()) {
      const std::size_t comma = v.find(',', pos);
      const std::string tok = v.substr(pos, comma - pos);
      out.push_back(std::strtoll(tok.c_str(), nullptr, 10));
      if (comma == std::string::npos) break;
      pos = comma + 1;
    }
    return out;
  }

 private:
  std::vector<std::string> args_;
};

}  // namespace lfbst::bench
