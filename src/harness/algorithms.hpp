// lfbst: the algorithm roster — one place that knows every tree in the
// comparison, so benches and tests sweep all of them from a single
// template loop.
#pragma once

#include <utility>

#include "baselines/bcco_tree.hpp"
#include "baselines/coarse_tree.hpp"
#include "baselines/dvy_tree.hpp"
#include "baselines/efrb_tree.hpp"
#include "baselines/hj_tree.hpp"
#include "core/natarajan_tree.hpp"
#include "multiway/kary_tree.hpp"
#include "shard/sharded_set.hpp"

namespace lfbst::harness {

/// Invokes `fn.template operator()<Tree>()` for each of the paper's four
/// algorithms (NM, EFRB, HJ, BCCO), in the order the paper lists them.
template <typename Key, typename F>
void for_each_paper_algorithm(F&& fn) {
  fn.template operator()<nm_tree<Key>>();
  fn.template operator()<efrb_tree<Key>>();
  fn.template operator()<hj_tree<Key>>();
  fn.template operator()<bcco_tree<Key>>();
}

/// The paper's roster plus the related-work DVY tree (described in the
/// paper's §1 but not in its evaluation), the cache-conscious multiway
/// tree (docs/MULTIWAY.md, tuned default fanout for the key width), and
/// the coarse-lock sanity floor.
template <typename Key, typename F>
void for_each_algorithm(F&& fn) {
  for_each_paper_algorithm<Key>(std::forward<F>(fn));
  fn.template operator()<dvy_tree<Key>>();
  fn.template operator()<kary_tree<Key>>();
  fn.template operator()<coarse_tree<Key>>();
}

/// The sharded compositions (src/shard/): the three lock-free trees of
/// the paper's evaluation behind the range-partitioned front-end.
/// sharded_set has no default shard geometry for benchmarking, so `fn`
/// receives the type and constructs instances itself (typically
/// `Set set(shards, 0, key_range);`).
template <typename Key, typename F>
void for_each_sharded_algorithm(F&& fn) {
  fn.template operator()<shard::sharded_set<nm_tree<Key>>>();
  fn.template operator()<shard::sharded_set<efrb_tree<Key>>>();
  fn.template operator()<shard::sharded_set<hj_tree<Key>>>();
  fn.template operator()<shard::sharded_set<kary_tree<Key>>>();
}

}  // namespace lfbst::harness
