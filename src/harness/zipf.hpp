// lfbst: Zipfian key generator — the standard skewed-access model
// (YCSB-style). The paper's evaluation draws keys uniformly; skew is the
// natural extension study because it concentrates operations on a few
// hot keys, i.e. it manufactures exactly the high-contention regime the
// paper's §4 identifies as NM's strength ("tree size is small or
// workload is write-dominated") without shrinking the tree.
//
// Implementation: classic Zipf with parameter theta over [0, n), using
// the Gray et al. (SIGMOD '94) constant-time approximation. zeta(n) is
// precomputed at construction (O(n)); draws are O(1).
#pragma once

#include <cmath>
#include <cstdint>

#include "common/assert.hpp"
#include "common/rng.hpp"

namespace lfbst::harness {

class zipf_generator {
 public:
  /// `n` — key-space size; `theta` ∈ [0, 1) — skew (0 = uniform-ish,
  /// 0.99 = heavy YCSB-style skew).
  zipf_generator(std::uint64_t n, double theta)
      : n_(n), theta_(theta), zetan_(zeta(n, theta)) {
    LFBST_ASSERT(n > 0, "empty key space");
    LFBST_ASSERT(theta >= 0.0 && theta < 1.0, "theta must be in [0,1)");
    const double zeta2 = zeta(2, theta);
    alpha_ = 1.0 / (1.0 - theta);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
           (1.0 - zeta2 / zetan_);
  }

  /// Draws a rank in [0, n); rank 0 is the hottest key. Callers usually
  /// scramble ranks (e.g. multiply by a large odd constant mod n) so hot
  /// keys are spread over the tree rather than clustered in key order.
  std::uint64_t operator()(pcg32& rng) const {
    const double u = rng.uniform01();
    const double uz = u * zetan_;
    if (uz < 1.0) return 0;
    if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
    const auto rank = static_cast<std::uint64_t>(
        static_cast<double>(n_) *
        std::pow(eta_ * u - eta_ + 1.0, alpha_));
    return rank >= n_ ? n_ - 1 : rank;
  }

  /// Rank → scrambled key in [0, n): spreads hot ranks across the key
  /// space so skew stresses contention, not tree imbalance.
  [[nodiscard]] std::uint64_t scramble(std::uint64_t rank) const {
    return (rank * 0x9E3779B97F4A7C15ULL) % n_;
  }

  [[nodiscard]] double theta() const noexcept { return theta_; }

 private:
  static double zeta(std::uint64_t n, double theta) {
    double sum = 0.0;
    for (std::uint64_t i = 1; i <= n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i), theta);
    }
    return sum;
  }

  std::uint64_t n_;
  double theta_;
  double zetan_;
  double alpha_ = 0.0;
  double eta_ = 0.0;
};

}  // namespace lfbst::harness
