// lfbst: small-sample statistics for repeated benchmark runs.
//
// The paper averages each data point "over multiple runs" (§4); single
// runs on a busy machine can swing ±10%+. aggregate_runs repeats a
// measurement and reports mean, standard deviation, min/max and the
// relative spread, so harnesses can flag noisy points instead of
// printing them with false confidence.
#pragma once

#include <cmath>
#include <cstddef>
#include <vector>

namespace lfbst::harness {

struct run_stats {
  double mean = 0;
  double stddev = 0;  // sample standard deviation (n-1)
  double min = 0;
  double max = 0;
  std::size_t runs = 0;

  /// Coefficient of variation — the "how noisy was this" number.
  [[nodiscard]] double rel_spread() const {
    return mean > 0 ? stddev / mean : 0.0;
  }
};

inline run_stats summarize_runs(const std::vector<double>& samples) {
  run_stats s;
  s.runs = samples.size();
  if (samples.empty()) return s;
  double sum = 0;
  s.min = samples.front();
  s.max = samples.front();
  for (double v : samples) {
    sum += v;
    if (v < s.min) s.min = v;
    if (v > s.max) s.max = v;
  }
  s.mean = sum / static_cast<double>(samples.size());
  if (samples.size() > 1) {
    double sq = 0;
    for (double v : samples) sq += (v - s.mean) * (v - s.mean);
    s.stddev = std::sqrt(sq / static_cast<double>(samples.size() - 1));
  }
  return s;
}

/// Runs `measure()` (returning one throughput sample) `runs` times and
/// aggregates. The first run can be discarded as warm-up with
/// `discard_warmup`.
template <typename F>
run_stats aggregate_runs(F&& measure, std::size_t runs,
                         bool discard_warmup = false) {
  std::vector<double> samples;
  samples.reserve(runs);
  if (discard_warmup) (void)measure();
  for (std::size_t i = 0; i < runs; ++i) samples.push_back(measure());
  return summarize_runs(samples);
}

}  // namespace lfbst::harness
