// lfbst: thread-local slab allocator for fixed-size tree nodes.
//
// Role in the reproduction: the paper links every implementation against
// TCMalloc because glibc malloc serializes multi-threaded allocation and
// would dominate the measurement (paper §4, "Experimental Setup"). This
// pool is our TCMalloc stand-in (DESIGN.md substitution table): each
// thread bump-allocates out of a private slab and recycles freed blocks
// through a private free list, so the allocation fast path is a handful
// of thread-local instructions and never contends.
//
// Properties the trees rely on:
//   * Blocks are at least 8-byte aligned — the NM-BST steals the low two
//     pointer bits, so 4-byte alignment is the hard floor.
//   * Blocks are never returned to the OS while the pool lives; with the
//     `leaky` reclaimer this gives the paper's "no memory reclamation"
//     regime while still freeing everything at tree destruction (ASAN
//     and valgrind stay clean).
//   * deallocate() may be called from any thread (epoch reclamation
//     frees from whichever thread flushes the limbo list).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <new>
#include <vector>

#include "common/assert.hpp"
#include "common/cacheline.hpp"
#include "common/spinlock.hpp"
#include "common/thread_id.hpp"
#include "obs/trace.hpp"

namespace lfbst {

/// Fixed-block-size pool. `block_size` is fixed at construction; all
/// allocate() calls must request at most that size. One pool instance
/// typically serves all node types of one tree (sized to the largest).
class node_pool {
 public:
  /// `block_size` is rounded up to `alignment` bytes (16 by default;
  /// cache-line-aligned node types pass alignof(node)); `slab_bytes` is
  /// how much each thread grabs from the global arena at a time. Slabs
  /// are allocated at `alignment`, and the block size being a multiple
  /// of it keeps every bump-allocated block aligned too.
  explicit node_pool(std::size_t block_size,
                     std::size_t slab_bytes = 1u << 16,
                     std::size_t alignment = 16)
      : block_size_(round_up(block_size, alignment < 16 ? 16 : alignment)),
        alignment_(alignment < 16 ? 16 : alignment),
        blocks_per_slab_(slab_bytes / round_up(block_size,
                                               alignment < 16 ? 16
                                                              : alignment)) {
    LFBST_ASSERT(blocks_per_slab_ > 0, "slab must fit at least one block");
    LFBST_ASSERT((alignment_ & (alignment_ - 1)) == 0,
                 "pool alignment must be a power of two");
  }

  node_pool(const node_pool&) = delete;
  node_pool& operator=(const node_pool&) = delete;

  ~node_pool() {
    for (void* slab : slabs_) {
      ::operator delete(slab, std::align_val_t{alignment_});
    }
  }

  /// Allocates one block. Fast path: pop the calling thread's free list
  /// or bump the thread's slab cursor; slow path: grab a new slab.
  void* allocate(std::size_t size) {
    LFBST_ASSERT(size <= block_size_, "request exceeds pool block size");
    (void)size;
    local_state& local = locals_[this_thread_index()].value;
    if (local.free_list != nullptr) {
      free_node* head = local.free_list;
      local.free_list = head->next;
      return head;
    }
    if (local.remaining == 0) refill(local);
    void* block = local.cursor;
    local.cursor += block_size_;
    --local.remaining;
    return block;
  }

  /// Returns a block to the calling thread's free list. Safe from any
  /// thread; the block simply migrates to the deallocator's list.
  void deallocate(void* block) noexcept {
    if (block == nullptr) return;
    local_state& local = locals_[this_thread_index()].value;
    auto* node = static_cast<free_node*>(block);
    node->next = local.free_list;
    local.free_list = node;
  }

  [[nodiscard]] std::size_t block_size() const noexcept { return block_size_; }

  /// Total bytes currently held in slabs (diagnostics; racy but
  /// monotone, good enough for memory-footprint reporting).
  [[nodiscard]] std::size_t footprint_bytes() const {
    std::lock_guard<spinlock> g(slabs_lock_);
    return slabs_.size() * blocks_per_slab_ * block_size_;
  }

  /// Number of slab grabs (allocation slow paths) — src/obs/ telemetry.
  [[nodiscard]] std::uint64_t refill_count() const noexcept {
    return refill_count_.load(std::memory_order_relaxed);
  }

 private:
  struct free_node {
    free_node* next;
  };

  struct local_state {
    std::byte* cursor = nullptr;
    std::size_t remaining = 0;
    free_node* free_list = nullptr;
  };

  static constexpr std::size_t round_up(std::size_t v,
                                        std::size_t align) noexcept {
    return (v + align - 1) / align * align;
  }

  void refill(local_state& local) {
    auto* slab = static_cast<std::byte*>(
        ::operator new(blocks_per_slab_ * block_size_,
                       std::align_val_t{alignment_}));
    {
      std::lock_guard<spinlock> g(slabs_lock_);
      slabs_.push_back(slab);
    }
    refill_count_.fetch_add(1, std::memory_order_relaxed);
    // Refills happen once per blocks_per_slab_ allocations; the trace
    // branch is invisible next to the operator new above.
    obs::emit_global(obs::event_type::pool_refill,
                     static_cast<std::uint32_t>(blocks_per_slab_));
    local.cursor = slab;
    local.remaining = blocks_per_slab_;
  }

  const std::size_t block_size_;
  const std::size_t alignment_;
  const std::size_t blocks_per_slab_;

  mutable spinlock slabs_lock_;
  std::vector<void*> slabs_;
  std::atomic<std::uint64_t> refill_count_{0};

  padded<local_state> locals_[max_threads];
};

}  // namespace lfbst
