// Differential fuzzer: drives identical randomized operation streams
// through every tree in the repo simultaneously and cross-checks every
// result, with periodic structural validation. Where the unit tests run
// bounded soups, this runs until told to stop — the tool you leave
// running overnight after touching anything lock-free.
//
//   fuzz_diff [--seconds 10] [--seed N] [--keyrange 512] [--phase-ops 20000]
//
// Exit code 0 = no divergence found. Any divergence prints the seed,
// phase and operation index needed to replay it deterministically.
#include <chrono>
#include <cstdio>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "harness/flags.hpp"
#include "lfbst/lfbst.hpp"

namespace {

using namespace lfbst;

/// Type-erased adapter so all trees sit in one vector.
class any_set {
 public:
  template <typename Tree>
  static std::unique_ptr<any_set> make() {
    struct model final : any_set {
      Tree tree;
      bool insert(long k) override { return tree.insert(k); }
      bool erase(long k) override { return tree.erase(k); }
      bool contains(long k) override { return tree.contains(k); }
      std::size_t size_slow() override { return tree.size_slow(); }
      std::string validate() override { return tree.validate(); }
      const char* name() override { return Tree::algorithm_name; }
    };
    return std::make_unique<model>();
  }

  virtual ~any_set() = default;
  virtual bool insert(long k) = 0;
  virtual bool erase(long k) = 0;
  virtual bool contains(long k) = 0;
  virtual std::size_t size_slow() = 0;
  virtual std::string validate() = 0;
  virtual const char* name() = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const bench::flags flags(argc, argv);
  const auto seconds = flags.get_int("seconds", 10);
  const auto base_seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const auto key_range =
      static_cast<std::uint32_t>(flags.get_int("keyrange", 512));
  const auto phase_ops = flags.get_int("phase-ops", 20'000);

  std::vector<std::unique_ptr<any_set>> impls;
  impls.push_back(any_set::make<nm_tree<long>>());
  impls.push_back(
      any_set::make<nm_tree<long, std::less<long>, reclaim::epoch>>());
  impls.push_back(
      any_set::make<nm_tree<long, std::less<long>, reclaim::hazard>>());
  impls.push_back(any_set::make<nm_tree<long, std::less<long>,
                                        reclaim::leaky, stats::none,
                                        tag_policy::cas_only>>());
  impls.push_back(any_set::make<efrb_tree<long>>());
  impls.push_back(any_set::make<hj_tree<long>>());
  impls.push_back(any_set::make<bcco_tree<long>>());
  impls.push_back(any_set::make<dvy_tree<long>>());
  impls.push_back(any_set::make<kary_tree<long, 4>>());
  impls.push_back(any_set::make<kary_tree<long, 16>>());
  impls.push_back(any_set::make<coarse_tree<long>>());

  std::printf("fuzz_diff: %zu implementations, base seed %llu, "
              "key range %u, %lld ops per phase, ~%llds budget\n",
              impls.size(), (unsigned long long)base_seed, key_range,
              (long long)phase_ops, (long long)seconds);

  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(seconds);
  std::set<long> oracle;
  std::uint64_t phase = 0;
  std::uint64_t total_ops = 0;

  while (std::chrono::steady_clock::now() < deadline) {
    pcg32 rng(base_seed + phase);
    for (long i = 0; i < phase_ops; ++i) {
      const long k = rng.bounded(key_range);
      const int kind = static_cast<int>(rng.bounded(3));
      const bool expected = (kind == 0)   ? oracle.insert(k).second
                            : (kind == 1) ? oracle.erase(k) > 0
                                          : oracle.count(k) > 0;
      for (auto& impl : impls) {
        const bool got = (kind == 0)   ? impl->insert(k)
                         : (kind == 1) ? impl->erase(k)
                                       : impl->contains(k);
        if (got != expected) {
          std::fprintf(stderr,
                       "DIVERGENCE: %s op=%d key=%ld got=%d expected=%d "
                       "(replay: --seed %llu, phase %llu, op %ld)\n",
                       impl->name(), kind, k, got, expected,
                       (unsigned long long)base_seed,
                       (unsigned long long)phase, i);
          return 1;
        }
      }
      ++total_ops;
    }
    // Phase boundary: full structural validation + size agreement.
    for (auto& impl : impls) {
      const std::string err = impl->validate();
      if (!err.empty()) {
        std::fprintf(stderr, "INVALID STRUCTURE: %s: %s (phase %llu)\n",
                     impl->name(), err.c_str(),
                     (unsigned long long)phase);
        return 2;
      }
      if (impl->size_slow() != oracle.size()) {
        std::fprintf(stderr, "SIZE DIVERGENCE: %s %zu vs oracle %zu "
                             "(phase %llu)\n",
                     impl->name(), impl->size_slow(), oracle.size(),
                     (unsigned long long)phase);
        return 3;
      }
    }
    ++phase;
    if (phase % 10 == 0) {
      std::printf("  phase %llu: %llu ops x %zu impls, all agree "
                  "(size %zu)\n",
                  (unsigned long long)phase, (unsigned long long)total_ops,
                  impls.size(), oracle.size());
    }
  }

  std::printf("fuzz_diff: PASS — %llu phases, %llu ops per "
              "implementation, zero divergences\n",
              (unsigned long long)phase, (unsigned long long)total_ops);
  return 0;
}
