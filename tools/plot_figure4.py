#!/usr/bin/env python3
"""Plot the Figure 4 reproduction from bench_figure4's JSON output.

Usage:
    build/bench/bench_figure4 --json fig4.json [--full]
    tools/plot_figure4.py fig4.json fig4.png

    # legacy CSV input (bench_figure4 --csv > fig4.csv):
    tools/plot_figure4.py --legacy-csv fig4.csv fig4.png

The JSON input is the "lfbst-bench-v1" document every bench's --json
flag emits (see src/obs/export.hpp and tools/check_bench_json.py); the
loader fails loudly on any schema mismatch rather than plotting partial
data. Produces the paper's grid: one subplot per (key range, workload)
cell, threads on the x axis, throughput (Mops/s) per algorithm.
Requires matplotlib; degrades to an ASCII summary when it is
unavailable.
"""

import csv
import json
import sys
from collections import defaultdict

SCHEMA = "lfbst-bench-v1"
REQUIRED_COLUMNS = ("key_range", "workload", "threads", "algorithm",
                    "mops_per_sec")


class SchemaError(ValueError):
    pass


def _cells_from_rows(rows):
    # cells[(key_range, workload)][algorithm] = [(threads, mops), ...]
    cells = defaultdict(lambda: defaultdict(list))
    for row in rows:
        cell = (int(row["key_range"]), str(row["workload"]))
        cells[cell][str(row["algorithm"])].append(
            (int(row["threads"]), float(row["mops_per_sec"]))
        )
    for cell in cells.values():
        for series in cell.values():
            series.sort()
    return cells


def load_json(path):
    with open(path) as f:
        try:
            doc = json.load(f)
        except json.JSONDecodeError as e:
            raise SchemaError(f"{path}: not valid JSON: {e}") from e
    if not isinstance(doc, dict):
        raise SchemaError(f"{path}: expected a JSON object at top level")
    schema = doc.get("schema")
    if schema != SCHEMA:
        raise SchemaError(
            f"{path}: schema is {schema!r}, expected {SCHEMA!r} — "
            "regenerate with bench_figure4 --json"
        )
    if doc.get("bench") != "figure4":
        raise SchemaError(
            f"{path}: bench is {doc.get('bench')!r}, expected 'figure4' — "
            "this tool plots only bench_figure4 output"
        )
    results = doc.get("results")
    if not isinstance(results, list) or not results:
        raise SchemaError(f"{path}: 'results' must be a non-empty array")
    for i, row in enumerate(results):
        missing = [c for c in REQUIRED_COLUMNS if c not in row]
        if missing:
            raise SchemaError(
                f"{path}: results[{i}] is missing columns {missing}"
            )
    return _cells_from_rows(results)


def load_csv(path):
    with open(path, newline="") as f:
        reader = csv.DictReader(f)
        if reader.fieldnames is None or any(
            c not in reader.fieldnames for c in REQUIRED_COLUMNS
        ):
            raise SchemaError(
                f"{path}: CSV header must contain {REQUIRED_COLUMNS}"
            )
        return _cells_from_rows(reader)


def ascii_summary(cells):
    for (key_range, workload), algos in sorted(cells.items()):
        print(f"--- {key_range} keys, {workload} ---")
        threads = [t for t, _ in next(iter(algos.values()))]
        header = "threads " + "".join(f"{a:>12}" for a in algos)
        print(header)
        for i, t in enumerate(threads):
            line = f"{t:>7} " + "".join(
                f"{algos[a][i][1]:>12.3f}" for a in algos
            )
            print(line)
        print()


def plot(cells, out_path):
    import matplotlib

    matplotlib.use("Agg")
    import matplotlib.pyplot as plt

    key_ranges = sorted({kr for kr, _ in cells})
    workloads = ["write-dominated", "mixed", "read-dominated"]
    workloads = [w for w in workloads if any(w == wl for _, wl in cells)]

    fig, axes = plt.subplots(
        len(key_ranges),
        len(workloads),
        figsize=(4.2 * len(workloads), 3.2 * len(key_ranges)),
        squeeze=False,
    )
    for i, kr in enumerate(key_ranges):
        for j, wl in enumerate(workloads):
            ax = axes[i][j]
            for algo, series in sorted(cells.get((kr, wl), {}).items()):
                xs = [t for t, _ in series]
                ys = [m for _, m in series]
                ax.plot(xs, ys, marker="o", label=algo)
            ax.set_title(f"{kr:,} keys — {wl}", fontsize=9)
            ax.set_xscale("log", base=2)
            ax.set_xlabel("threads")
            ax.set_ylabel("Mops/s")
            ax.grid(True, alpha=0.3)
    axes[0][0].legend(fontsize=8)
    fig.suptitle(
        "Figure 4 reproduction — throughput of concurrent BSTs", fontsize=11
    )
    fig.tight_layout(rect=(0, 0, 1, 0.97))
    fig.savefig(out_path, dpi=150)
    print(f"wrote {out_path}")


def main():
    args = sys.argv[1:]
    legacy_csv = "--legacy-csv" in args
    if legacy_csv:
        args.remove("--legacy-csv")
    if not args:
        print(__doc__)
        return 2
    try:
        cells = load_csv(args[0]) if legacy_csv else load_json(args[0])
    except SchemaError as e:
        print(f"error: {e}", file=sys.stderr)
        return 1
    if not cells:
        print("no data rows found", file=sys.stderr)
        return 1
    if len(args) >= 2:
        try:
            plot(cells, args[1])
            return 0
        except ImportError:
            print("matplotlib unavailable; ASCII summary instead:\n")
    ascii_summary(cells)
    return 0


if __name__ == "__main__":
    sys.exit(main())
