#!/usr/bin/env python3
"""Plot the Figure 4 reproduction from bench_figure4's CSV output.

Usage:
    build/bench/bench_figure4 --csv [--full] > fig4.csv
    tools/plot_figure4.py fig4.csv fig4.png

Produces the paper's grid: one subplot per (key range, workload) cell,
threads on the x axis, throughput (Mops/s) per algorithm. Requires
matplotlib; degrades to an ASCII summary when it is unavailable.
"""

import csv
import sys
from collections import defaultdict


def load(path):
    # rows[(key_range, workload)][algorithm] = [(threads, mops), ...]
    cells = defaultdict(lambda: defaultdict(list))
    with open(path, newline="") as f:
        for row in csv.DictReader(f):
            cell = (int(row["key_range"]), row["workload"])
            cells[cell][row["algorithm"]].append(
                (int(row["threads"]), float(row["mops_per_sec"]))
            )
    for cell in cells.values():
        for series in cell.values():
            series.sort()
    return cells


def ascii_summary(cells):
    for (key_range, workload), algos in sorted(cells.items()):
        print(f"--- {key_range} keys, {workload} ---")
        threads = [t for t, _ in next(iter(algos.values()))]
        header = "threads " + "".join(f"{a:>12}" for a in algos)
        print(header)
        for i, t in enumerate(threads):
            line = f"{t:>7} " + "".join(
                f"{algos[a][i][1]:>12.3f}" for a in algos
            )
            print(line)
        print()


def plot(cells, out_path):
    import matplotlib

    matplotlib.use("Agg")
    import matplotlib.pyplot as plt

    key_ranges = sorted({kr for kr, _ in cells})
    workloads = ["write-dominated", "mixed", "read-dominated"]
    workloads = [w for w in workloads if any(w == wl for _, wl in cells)]

    fig, axes = plt.subplots(
        len(key_ranges),
        len(workloads),
        figsize=(4.2 * len(workloads), 3.2 * len(key_ranges)),
        squeeze=False,
    )
    for i, kr in enumerate(key_ranges):
        for j, wl in enumerate(workloads):
            ax = axes[i][j]
            for algo, series in sorted(cells.get((kr, wl), {}).items()):
                xs = [t for t, _ in series]
                ys = [m for _, m in series]
                ax.plot(xs, ys, marker="o", label=algo)
            ax.set_title(f"{kr:,} keys — {wl}", fontsize=9)
            ax.set_xscale("log", base=2)
            ax.set_xlabel("threads")
            ax.set_ylabel("Mops/s")
            ax.grid(True, alpha=0.3)
    axes[0][0].legend(fontsize=8)
    fig.suptitle(
        "Figure 4 reproduction — throughput of concurrent BSTs", fontsize=11
    )
    fig.tight_layout(rect=(0, 0, 1, 0.97))
    fig.savefig(out_path, dpi=150)
    print(f"wrote {out_path}")


def main():
    if len(sys.argv) < 2:
        print(__doc__)
        return 2
    cells = load(sys.argv[1])
    if not cells:
        print("no data rows found — did you pass bench_figure4 --csv output?")
        return 1
    if len(sys.argv) >= 3:
        try:
            plot(cells, sys.argv[2])
            return 0
        except ImportError:
            print("matplotlib unavailable; ASCII summary instead:\n")
    ascii_summary(cells)
    return 0


if __name__ == "__main__":
    sys.exit(main())
