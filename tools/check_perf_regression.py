#!/usr/bin/env python3
"""Perf gate: compare a fresh `bench_micro_ops --json` report against the
committed baseline (bench/baseline_micro_ops.json) and fail on drift.

Usage:
    tools/check_perf_regression.py current.json [--baseline PATH]
        [--max-regression 0.25] [--atomics-tolerance 0.05]

Two studies, two different comparisons:

  atomics — per-op allocation/atomic counts from the counting stats
      policy. These are seeded, single-threaded and contention-free, so
      they are (near-)exactly reproducible: any drift beyond the small
      tolerance means the protocol itself changed — the Table 1 claim
      of the paper (NM: 2/0 allocs, 1/3 atomics) no longer holds as
      committed. Fails loudly; regenerate the baseline only for an
      intentional protocol change.

  micro — wall-clock ns/op. Absolute numbers differ across machines, so
      each row is first normalized by the same report's std::set search
      reference at the same size; only the *ratio* is compared, with a
      tolerance band (default 25%) for residual noise. A ratio that
      grew past the band is a real relative slowdown of that algorithm.

A third check is *within-report* (no baseline needed):

  restart_policy — contended churn under restart::from_anchor vs
      restart::from_root (docs/PERF.md). The anchored local restart
      must not lose throughput against the full root restart (band
      --restart-slack, default 30% — the study is short and noisy by
      design), and when the run actually produced seek restarts
      (contention is machine-dependent; a 1-core runner produces
      none), the from_anchor row must show local resumes — proof the
      optimization is live, not silently disabled.

  scan — concurrent ordered scans racing writers. Each row carries the
      bench's own verdict: sorted == 1 (result came back ordered and
      duplicate-free) and stable_complete == 1 (every key that was
      present for the scan's whole duration appeared). Any zero fails;
      writers == 0 rows must also report an integral keys_per_scan.

A fourth check gates the TCP front-end when --server points at a fresh
`bench_server --json` report:

  server — per (mix, connections, pipeline) cell, the p99/p50 tail
      amplification is compared against bench/baseline_server.json with
      band --server-slack (absolute nanoseconds are machine-dependent;
      the ratio is not). The percentile ladder must also be ordered and
      every cell non-empty.

A fifth check gates the adaptive rebalancer when --sharded points at a
fresh `bench_sharded --json` report:

  rebalance — within-report, static vs adaptive rows per workload: the
      armed machinery must not tax the uniform case, the rebalancer
      must fire and flatten max-shard-share on the skewed streams, and
      (on runners with real parallelism) adaptive throughput must hold
      against static. See check_rebalance for the full contract.

A sixth check gates the adversarial-shape mitigation when --skew points
at a fresh `bench_skew --json` report (docs/RESILIENCE.md):

  shape — the study's raw (unscrambled) sequential and adaptive_attack
      rows must exhibit the O(n) spine (depth_max >= n / (shards * 16)):
      the gate first proves the pathology is still measurable, so a
      broken bench cannot vacuously pass. Every scrambled row — and the
      raw bit_reversed negative control — must then stay under the
      balanced bound p99 <= 2*log2(n) + slack. Finally the scramble
      adapter's uniform-workload tax is checked within the micro report:
      the geomean Scrambled/raw ns-per-op ratio must stay under 1.05.
"""

import argparse
import json
import math
import sys

SCHEMA = "lfbst-bench-v1"
REFERENCE_ALGORITHM = "std::set"
REFERENCE_OP = "search"


def load_doc(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != SCHEMA:
        raise ValueError(f"{path}: schema is {doc.get('schema')!r}, "
                         f"want {SCHEMA!r}")
    rows = doc.get("results")
    if not isinstance(rows, list) or not rows:
        raise ValueError(f"{path}: 'results' must be a non-empty array")
    return doc


def load_report(path):
    return load_doc(path)["results"]


def rows_by_study(rows, study):
    return [r for r in rows if r.get("study") == study]


def micro_key(row):
    return (row["algorithm"], row["op"], row["size"])


def normalized_micro(rows):
    """ns/op divided by the in-report std::set search reference at the
    same size: a machine-independent relative cost."""
    reference = {
        row["size"]: float(row["ns_per_op"])
        for row in rows
        if row["algorithm"] == REFERENCE_ALGORITHM
        and row["op"] == REFERENCE_OP
    }
    out = {}
    for row in rows:
        ref = reference.get(row["size"])
        if not ref:
            raise ValueError(
                f"no {REFERENCE_ALGORITHM} {REFERENCE_OP} reference row "
                f"for size {row['size']}")
        out[micro_key(row)] = float(row["ns_per_op"]) / ref
    return out


def check_micro(current, baseline, max_regression):
    failures = []
    cur = normalized_micro(rows_by_study(current, "micro"))
    base = normalized_micro(rows_by_study(baseline, "micro"))
    for key, base_ratio in sorted(base.items()):
        if key not in cur:
            failures.append(f"micro: row {key} missing from current report")
            continue
        cur_ratio = cur[key]
        algo, op, size = key
        if algo == REFERENCE_ALGORITHM and op == REFERENCE_OP:
            continue  # the reference is 1.0 by construction
        limit = base_ratio * (1.0 + max_regression)
        status = "FAIL" if cur_ratio > limit else "ok"
        print(f"  [{status}] micro {algo:>16} {op:<12} size={size:<6} "
              f"rel cost {base_ratio:7.3f} -> {cur_ratio:7.3f} "
              f"(limit {limit:.3f})")
        if cur_ratio > limit:
            failures.append(
                f"micro: {algo}/{op}/size={size} relative cost "
                f"{cur_ratio:.3f} exceeds baseline {base_ratio:.3f} "
                f"by more than {100 * max_regression:.0f}%")
    return failures


ATOMIC_COLUMNS = ("allocs_per_insert", "atomics_per_insert",
                  "allocs_per_erase", "atomics_per_erase")


def check_atomics(current, baseline, tolerance):
    failures = []
    cur = {r["algorithm"]: r for r in rows_by_study(current, "atomics")}
    base = {r["algorithm"]: r for r in rows_by_study(baseline, "atomics")}
    for algo, base_row in sorted(base.items()):
        if algo not in cur:
            failures.append(f"atomics: {algo} missing from current report")
            continue
        for col in ATOMIC_COLUMNS:
            b, c = float(base_row[col]), float(cur[algo][col])
            drift = abs(c - b)
            status = "FAIL" if drift > tolerance else "ok"
            print(f"  [{status}] atomics {algo:>10} {col:<20} "
                  f"{b:7.4f} -> {c:7.4f}")
            if drift > tolerance:
                failures.append(
                    f"atomics: {algo} {col} drifted {b:.4f} -> {c:.4f} "
                    f"(tolerance {tolerance}); Table 1 counts changed — "
                    f"if intentional, regenerate "
                    f"bench/baseline_micro_ops.json")
    return failures


# Restarts below this count mean the run was effectively uncontended
# (e.g. a single-core runner): there is nothing meaningful to attribute,
# so the local-resume liveness check is skipped.
RESTART_LIVENESS_MIN = 50


def check_restart_policy(current, slack):
    failures = []
    rows = {r["policy"]: r for r in rows_by_study(current, "restart_policy")}
    if not rows:
        print("  [skip] restart_policy: study absent from current report")
        return failures
    for policy in ("from_anchor", "from_root"):
        if policy not in rows:
            failures.append(f"restart_policy: row {policy!r} missing")
    if failures:
        return failures
    anchor, root = rows["from_anchor"], rows["from_root"]
    a_mops, r_mops = float(anchor["mops"]), float(root["mops"])
    floor = r_mops * (1.0 - slack)
    status = "FAIL" if a_mops < floor else "ok"
    print(f"  [{status}] restart_policy from_anchor {a_mops:.3f} Mops/s vs "
          f"from_root {r_mops:.3f} (floor {floor:.3f})")
    if a_mops < floor:
        failures.append(
            f"restart_policy: from_anchor throughput {a_mops:.3f} Mops/s "
            f"fell more than {100 * slack:.0f}% below from_root "
            f"{r_mops:.3f} — the anchored restart is a net loss")
    restarts = int(anchor["seek_restarts"])
    resumes = int(anchor["seek_resumes_local"])
    fallbacks = int(anchor["seek_anchor_fallbacks"])
    if restarts >= RESTART_LIVENESS_MIN:
        status = "FAIL" if resumes == 0 else "ok"
        print(f"  [{status}] restart_policy from_anchor attribution: "
              f"{restarts} restarts -> {resumes} local, {fallbacks} fallback")
        if resumes == 0:
            failures.append(
                f"restart_policy: {restarts} restarts under from_anchor but "
                f"zero local resumes — anchor validation never succeeds")
        if resumes + fallbacks != restarts:
            failures.append(
                f"restart_policy: attribution algebra broken: "
                f"{resumes} + {fallbacks} != {restarts}")
    else:
        print(f"  [skip] restart_policy attribution: only {restarts} "
              f"restarts (uncontended run, need {RESTART_LIVENESS_MIN})")
    return failures


def check_scan(current):
    """Within-report (no baseline): every scan-study row is self-checking
    — the bench verifies each scan came back sorted and containing every
    stable key, and records the verdict in the row. A zero in either
    column means a concurrent scan observed a torn or incomplete view.
    Uncontended rows (writers == 0) must additionally visit a stable,
    integral number of keys per scan: nothing was mutating, so any
    fractional average means scans disagreed with each other."""
    failures = []
    rows = rows_by_study(current, "scan")
    if not rows:
        print("  [skip] scan: study absent from current report")
        return failures
    for row in rows:
        algo = row["algorithm"]
        writers = int(row["writers"])
        sorted_ok = int(row["sorted"]) == 1
        complete_ok = int(row["stable_complete"]) == 1
        status = "FAIL" if not (sorted_ok and complete_ok) else "ok"
        print(f"  [{status}] scan {algo:>20} writers={writers} "
              f"sorted={int(row['sorted'])} "
              f"stable_complete={int(row['stable_complete'])} "
              f"({float(row['keys_per_scan']):.1f} keys/scan)")
        if not sorted_ok:
            failures.append(
                f"scan: {algo} (writers={writers}) returned an unsorted "
                f"or duplicated result — ordered-scan contract broken")
        if not complete_ok:
            failures.append(
                f"scan: {algo} (writers={writers}) missed a key that was "
                f"present for the whole scan — not linearizable")
        if writers == 0:
            kps = float(row["keys_per_scan"])
            if kps <= 0 or kps != int(kps):
                failures.append(
                    f"scan: {algo} uncontended run averaged {kps} "
                    f"keys/scan — scans of an idle tree disagreed")
    return failures


# Threads the runner must actually have before the multiway tree's
# shallower descents can translate into wall-clock throughput; below
# this the workers timeslice and the race measures scheduler noise.
KARY_MIN_HW_THREADS = 4


def check_kary(current_doc, slack):
    """Within-report gate on the multiway tree's headline claim: on the
    read-heavy Zipfian study (the regime its cache-line node layout
    targets), the KST row must hold its own against the NM-BST row of
    the same run. Self-skips on runners without real parallelism — the
    report's config carries hardware_threads for exactly this. The
    companion claim (NM rows unregressed) is already enforced by
    check_micro against the committed baseline."""
    failures = []
    rows = {r["algorithm"]: r
            for r in rows_by_study(current_doc["results"], "kary_zipf")}
    if not rows:
        print("  [skip] kary_zipf: study absent from current report")
        return failures
    hw = int(current_doc.get("config", {}).get("hardware_threads") or 0)
    if hw < KARY_MIN_HW_THREADS:
        print(f"  [skip] kary_zipf: runner has {hw} hardware thread(s), "
              f"need {KARY_MIN_HW_THREADS} for a meaningful race")
        return failures
    for algo in ("KST", "NM-BST"):
        if algo not in rows:
            failures.append(f"kary_zipf: row {algo!r} missing")
    if failures:
        return failures
    kst = float(rows["KST"]["mops_per_sec"])
    nm = float(rows["NM-BST"]["mops_per_sec"])
    floor = nm * (1.0 - slack)
    status = "FAIL" if kst < floor else "ok"
    print(f"  [{status}] kary_zipf KST {kst:.3f} Mops/s vs NM-BST "
          f"{nm:.3f} (floor {floor:.3f}, {hw} hw threads)")
    if kst < floor:
        failures.append(
            f"kary_zipf: KST {kst:.3f} Mops/s fell more than "
            f"{100 * slack:.0f}% below NM-BST {nm:.3f} on the read-heavy "
            f"Zipf study — the multiway fast path lost its target regime")
    return failures


def server_key(row):
    return (row["mix"], int(row["connections"]), int(row["pipeline"]))


def check_server(server_path, baseline_path, slack):
    """Gate on the TCP front-end's tail latency (bench_server --json).

    Absolute nanoseconds are machine-dependent, so each row's p99 is
    first normalized by the same report's p50 — the tail *amplification*
    — and that ratio is compared per (mix, connections, pipeline) cell
    against the committed bench/baseline_server.json with a generous
    band (tails are noisy on shared runners). Within-report sanity is
    absolute: the percentile ladder must be ordered and every cell must
    have completed work."""
    failures = []
    if not server_path:
        print("  [skip] server: no --server report supplied")
        return failures
    try:
        current = rows_by_study(load_report(server_path), "server")
        baseline = rows_by_study(load_report(baseline_path), "server")
    except (OSError, ValueError, json.JSONDecodeError) as e:
        return [f"server: {e}"]
    if not current:
        return [f"server: no study=server rows in {server_path}"]
    cur = {server_key(r): r for r in current}
    base = {server_key(r): r for r in baseline}
    for key, row in sorted(cur.items()):
        mix, conns, pipe = key
        ops = int(row["ops"])
        p50, p99, p999 = (int(row["p50_ns"]), int(row["p99_ns"]),
                          int(row["p999_ns"]))
        if ops <= 0 or p50 <= 0 or not p50 <= p99 <= p999:
            failures.append(
                f"server: {mix}/conns={conns}/pipe={pipe} has a broken "
                f"row: ops={ops} p50={p50} p99={p99} p999={p999}")
            continue
        base_row = base.get(key)
        if base_row is None:
            print(f"  [skip] server {mix:>10} conns={conns} pipe={pipe}: "
                  f"no baseline cell")
            continue
        base_ratio = float(base_row["p99_ns"]) / float(base_row["p50_ns"])
        cur_ratio = p99 / p50
        limit = base_ratio * (1.0 + slack)
        status = "FAIL" if cur_ratio > limit else "ok"
        print(f"  [{status}] server {mix:>10} conns={conns} pipe={pipe:<3} "
              f"p99/p50 {base_ratio:6.2f} -> {cur_ratio:6.2f} "
              f"(limit {limit:.2f}, p99 {p99} ns)")
        if cur_ratio > limit:
            failures.append(
                f"server: {mix}/conns={conns}/pipe={pipe} tail "
                f"amplification p99/p50 = {cur_ratio:.2f} exceeds baseline "
                f"{base_ratio:.2f} by more than {100 * slack:.0f}% — the "
                f"front-end's tail regressed")
    return failures


REBALANCE_WORKLOADS = ("uniform", "hotspot90", "zipf")
REBALANCE_SKEWED = ("hotspot90", "zipf")
# Threads the runner must actually have before balanced shards can
# out-run imbalanced ones in wall-clock terms; below this the workers
# timeslice and the comparison measures only scheduler noise.
REBALANCE_MIN_HW_THREADS = 4


def check_rebalance(sharded_path, uniform_slack, skew_slack, margin):
    """Gate on the adaptive rebalancer (bench_sharded --json).

    Within-report, static vs adaptive per workload — no baseline file,
    because every quantity compared is a ratio of two rows measured in
    the same run on the same machine:

      * uniform — the armed migration machinery (op gate, dual-routing
        checks) must cost at most --rebalance-uniform-slack against the
        unarmed static row: rebalancing may never tax the balanced case.
        Like the skewed throughput gates, this needs >= 4 hardware
        threads — on a timesliced core the extra rebalancer thread's
        scheduling alone swings wall-clock both ways by more than any
        honest overhead band.
      * hotspot90 / zipf — the rebalancer must be *live* (migrations and
        keys_migrated both non-zero) and must actually flatten the load:
        the adaptive row's end-of-run max-shard-share must undercut the
        static row's by at least --rebalance-margin.
      * hotspot90 / zipf throughput — adaptive must hold within
        --rebalance-skew-slack of static, but only when the report's
        config says the runner has >= 4 hardware threads; on smaller
        runners the threads timeslice one or two cores, imbalance costs
        nothing, and migration overhead is pure loss by construction.
    """
    failures = []
    if not sharded_path:
        print("  [skip] rebalance: no --sharded report supplied")
        return failures
    try:
        with open(sharded_path) as f:
            doc = json.load(f)
        if doc.get("schema") != SCHEMA:
            raise ValueError(f"schema is {doc.get('schema')!r}")
        rows = rows_by_study(doc.get("results") or [], "rebalance")
    except (OSError, ValueError, json.JSONDecodeError) as e:
        return [f"rebalance: {sharded_path}: {e}"]
    if not rows:
        return [f"rebalance: no study=rebalance rows in {sharded_path}"]
    cells = {(r["workload"], r["mode"]): r for r in rows}
    hw = int(doc.get("config", {}).get("hardware_threads") or 0)
    for workload in REBALANCE_WORKLOADS:
        static = cells.get((workload, "static"))
        adaptive = cells.get((workload, "adaptive"))
        if static is None or adaptive is None:
            failures.append(
                f"rebalance: workload {workload!r} missing a "
                f"static/adaptive row pair")
            continue
        if int(static["migrations"]) != 0:
            failures.append(
                f"rebalance: static {workload} row reports "
                f"{static['migrations']} migrations — the unarmed "
                f"baseline ran with rebalancing on")
        s_mops, a_mops = float(static["mops_per_sec"]), \
            float(adaptive["mops_per_sec"])
        if workload == "uniform":
            if hw < REBALANCE_MIN_HW_THREADS:
                print(f"  [skip] rebalance {workload:>9} throughput: "
                      f"runner has {hw} hardware thread(s), need "
                      f"{REBALANCE_MIN_HW_THREADS} for a meaningful race")
                continue
            floor = s_mops * (1.0 - uniform_slack)
            status = "FAIL" if a_mops < floor else "ok"
            print(f"  [{status}] rebalance {workload:>9} throughput "
                  f"static {s_mops:.3f} -> adaptive {a_mops:.3f} Mops/s "
                  f"(floor {floor:.3f})")
            if a_mops < floor:
                failures.append(
                    f"rebalance: uniform adaptive {a_mops:.3f} Mops/s fell "
                    f"more than {100 * uniform_slack:.0f}% below static "
                    f"{s_mops:.3f} — the armed op gate taxes the balanced "
                    f"case")
            continue
        migrations = int(adaptive["migrations"])
        moved = int(adaptive["keys_migrated"])
        status = "FAIL" if migrations == 0 or moved == 0 else "ok"
        print(f"  [{status}] rebalance {workload:>9} liveness: "
              f"{migrations} migrations, {moved} keys moved")
        if migrations == 0 or moved == 0:
            failures.append(
                f"rebalance: {workload} adaptive run migrated nothing "
                f"({migrations} migrations, {moved} keys) — the "
                f"rebalancer never fired on a skewed stream")
            continue
        s_share = float(static["share_end"])
        a_share = float(adaptive["share_end"])
        limit = s_share * (1.0 - margin)
        status = "FAIL" if a_share > limit else "ok"
        print(f"  [{status}] rebalance {workload:>9} max-shard-share "
              f"static {s_share:.3f} vs adaptive {a_share:.3f} "
              f"(limit {limit:.3f})")
        if a_share > limit:
            failures.append(
                f"rebalance: {workload} adaptive end-of-run share "
                f"{a_share:.3f} does not undercut static {s_share:.3f} by "
                f"{100 * margin:.0f}% — migrations ran but the load never "
                f"flattened")
        if hw >= REBALANCE_MIN_HW_THREADS:
            floor = s_mops * (1.0 - skew_slack)
            status = "FAIL" if a_mops < floor else "ok"
            print(f"  [{status}] rebalance {workload:>9} throughput "
                  f"static {s_mops:.3f} -> adaptive {a_mops:.3f} Mops/s "
                  f"(floor {floor:.3f})")
            if a_mops < floor:
                failures.append(
                    f"rebalance: {workload} adaptive {a_mops:.3f} Mops/s "
                    f"fell more than {100 * skew_slack:.0f}% below static "
                    f"{s_mops:.3f} on {hw} hardware threads")
        else:
            print(f"  [skip] rebalance {workload:>9} throughput: runner "
                  f"has {hw} hardware thread(s), need "
                  f"{REBALANCE_MIN_HW_THREADS} for a meaningful race")
    return failures


SHAPE_SPINE_STREAMS = ("sequential", "adaptive_attack")
# A raw spine row must reach depth_max >= n / (shards * divisor): deep
# enough that only a degenerate (linear-in-n) shape can produce it —
# 16 absorbs the multiway tree's fanout (depth ~ n/7 at K=8) and leaves
# a 2x band on top, while staying ~100x above any log2-shaped tree.
SHAPE_SPINE_DIVISOR = 16
# Allowed uniform-workload cost of the scramble adapter (geomean of the
# Scrambled/raw micro ns-per-op ratios): one xorshift-multiply round per
# op must stay within 5% (ISSUE: "<5% regression on uniform workloads").
SHAPE_UNIFORM_BAND = 0.05
SHAPE_MICRO_PAIRS = (("Scrambled/NM-BST", "NM-BST"),
                     ("Scrambled/Sharded", "Sharded/NM-BST"))


def check_shape(skew_path, current, depth_slack, uniform_slack):
    """Gate on the adversarial-shape mitigation (bench_skew --json +
    the micro report; docs/RESILIENCE.md).

    Three legs, all within-report — depths are shape properties, not
    wall-clock, so no machine baseline is needed:

      * spine self-check — the raw sequential and adaptive_attack rows
        must show depth_max >= n / (shards * 16). If the attack streams
        no longer degenerate the unscrambled trees, the study is not
        measuring what it claims and a pass would be vacuous.
      * bounded depth — every scrambled row (all streams) and the raw
        bit_reversed negative control must keep depth_p99 under
        2*log2(n) + --shape-depth-slack. bit_reversed inserts build a
        balanced tree with no mitigation at all; if that row fails, the
        depth measurement itself is broken, not the fix.
      * uniform tax — geomean of Scrambled/raw ns-per-op over the
        uniform micro rows (same run, same machine) must stay under
        1 + 0.05 + --shape-uniform-slack.
    """
    failures = []
    if not skew_path:
        print("  [skip] shape: no --skew report supplied")
        return failures
    try:
        rows = rows_by_study(load_report(skew_path), "seek_depth")
    except (OSError, ValueError, json.JSONDecodeError) as e:
        return [f"shape: {skew_path}: {e}"]
    if not rows:
        return [f"shape: no study=seek_depth rows in {skew_path}"]

    spine_rows = scrambled_rows = 0
    for row in sorted(rows, key=lambda r: (r["stream"], int(r["scramble"]),
                                           r["algorithm"])):
        stream, algo = row["stream"], row["algorithm"]
        scramble = int(row["scramble"])
        n, shards = int(row["n"]), int(row["shards"])
        p99, dmax = int(row["depth_p99"]), int(row["depth_max"])
        if scramble == 0 and stream in SHAPE_SPINE_STREAMS:
            spine_rows += 1
            floor = n / (shards * SHAPE_SPINE_DIVISOR)
            status = "FAIL" if dmax < floor else "ok"
            print(f"  [{status}] shape spine {stream:>15} {algo:>10} "
                  f"n={n} shards={shards} depth_max={dmax} "
                  f"(floor {floor:.0f})")
            if dmax < floor:
                failures.append(
                    f"shape: raw {stream}/{algo} depth_max {dmax} never "
                    f"reached the spine floor {floor:.0f} (n={n}, "
                    f"shards={shards}) — the attack stream no longer "
                    f"degenerates the tree, so the study's pass would be "
                    f"vacuous; fix the bench before trusting the gate")
            continue
        if scramble == 1 or stream == "bit_reversed":
            if scramble == 1:
                scrambled_rows += 1
            bound = 2.0 * math.log2(n) + depth_slack
            status = "FAIL" if p99 > bound else "ok"
            label = "scrambled" if scramble == 1 else "raw-control"
            print(f"  [{status}] shape bound {stream:>15} {algo:>10} "
                  f"[{label}] n={n} p99={p99} (bound {bound:.0f})")
            if p99 > bound:
                failures.append(
                    f"shape: {label} {stream}/{algo} seek-depth p99 {p99} "
                    f"exceeds 2*log2({n}) + {depth_slack:g} = {bound:.0f} "
                    f"— the adversarial shape survives the mitigation")
    if spine_rows == 0:
        failures.append(
            "shape: no raw sequential/adaptive_attack rows — the study "
            "never demonstrated the pathology it gates")
    if scrambled_rows == 0:
        failures.append(
            "shape: no scramble=1 rows — the mitigation arm is missing")

    micro = {(r["algorithm"], r["op"], r["size"]): float(r["ns_per_op"])
             for r in rows_by_study(current, "micro")}
    limit = 1.0 + SHAPE_UNIFORM_BAND + uniform_slack
    for scrambled_algo, raw_algo in SHAPE_MICRO_PAIRS:
        ratios = []
        for (algo, op, size), ns in sorted(micro.items()):
            if algo != scrambled_algo:
                continue
            raw_ns = micro.get((raw_algo, op, size))
            if raw_ns is None:
                failures.append(
                    f"shape: micro row {raw_algo}/{op}/size={size} missing "
                    f"— cannot price the scramble adapter against it")
                continue
            ratios.append(ns / raw_ns)
        if not ratios:
            failures.append(
                f"shape: no {scrambled_algo} uniform micro rows — the "
                f"adapter's uniform tax was never measured")
            continue
        geomean = math.exp(sum(math.log(r) for r in ratios) / len(ratios))
        status = "FAIL" if geomean > limit else "ok"
        print(f"  [{status}] shape uniform tax {scrambled_algo:>18} vs "
              f"{raw_algo}: geomean ratio {geomean:.3f} over "
              f"{len(ratios)} rows (limit {limit:.3f})")
        if geomean > limit:
            failures.append(
                f"shape: {scrambled_algo} costs {geomean:.3f}x {raw_algo} "
                f"on uniform workloads (limit {limit:.3f}) — the scramble "
                f"adapter taxes the non-adversarial case too much")
    return failures


SERVE_SHAPE_REQUIRED = {"scramble", "shards", "keys", "seeks", "seek_p99",
                        "seek_max"}


def check_serve_shape(paths, depth_slack):
    """Gate on lfbst_serve's own exit report (--serve-report, repeatable
    — the nightly attack-stream soak passes one raw and one scrambled
    run). The server_lifetime row carries whole-run seek-depth
    percentiles and the final key count; the same two-sided contract as
    check_shape applies end-to-end through the wire protocol:

      * a raw (scramble=0) run soaked with an attack stream must show
        the spine (seek_max >= keys / (shards * 16)) — proof the soak
        actually attacked;
      * a scrambled run must stay bounded
        (seek_p99 <= 2*log2(keys) + --shape-depth-slack).
    """
    failures = []
    if not paths:
        print("  [skip] serve-shape: no --serve-report supplied")
        return failures
    for path in paths:
        try:
            rows = rows_by_study(load_report(path), "server_lifetime")
        except (OSError, ValueError, json.JSONDecodeError) as e:
            failures.append(f"serve-shape: {path}: {e}")
            continue
        if not rows:
            failures.append(
                f"serve-shape: no study=server_lifetime row in {path}")
            continue
        for row in rows:
            if not SERVE_SHAPE_REQUIRED <= set(row):
                failures.append(
                    f"serve-shape: {path} row missing column(s) "
                    f"{sorted(SERVE_SHAPE_REQUIRED - set(row))} — "
                    f"lfbst_serve predates the shape telemetry")
                continue
            scramble = int(row["scramble"])
            keys, shards = int(row["keys"]), int(row["shards"])
            seeks = int(row["seeks"])
            p99, smax = int(row["seek_p99"]), int(row["seek_max"])
            if keys < 2 or seeks == 0:
                failures.append(
                    f"serve-shape: {path} run ended with {keys} keys and "
                    f"{seeks} recorded seeks — the soak never loaded the "
                    f"server")
                continue
            if scramble:
                bound = 2.0 * math.log2(keys) + depth_slack
                status = "FAIL" if p99 > bound else "ok"
                print(f"  [{status}] serve-shape scrambled run {path}: "
                      f"keys={keys} seek_p99={p99} (bound {bound:.0f})")
                if p99 > bound:
                    failures.append(
                        f"serve-shape: scrambled serve run {path} has "
                        f"seek-depth p99 {p99} over {keys} keys (bound "
                        f"{bound:.0f}) — the mitigation failed through "
                        f"the wire protocol")
            else:
                floor = keys / (shards * SHAPE_SPINE_DIVISOR)
                status = "FAIL" if smax < floor else "ok"
                print(f"  [{status}] serve-shape raw run {path}: "
                      f"keys={keys} shards={shards} seek_max={smax} "
                      f"(floor {floor:.0f})")
                if smax < floor:
                    failures.append(
                        f"serve-shape: raw serve run {path} never showed "
                        f"the spine (seek_max {smax} < {floor:.0f} over "
                        f"{keys} keys, {shards} shards) — the soak's "
                        f"attack stream is not attacking, so the "
                        f"scrambled run's pass is vacuous")
    return failures


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("current", nargs="?", default=None,
                    help="fresh bench_micro_ops --json output (optional "
                         "when only the standalone gates --server/"
                         "--sharded/--serve-report are wanted, e.g. the "
                         "nightly attack-stream soak)")
    ap.add_argument("--baseline", default="bench/baseline_micro_ops.json")
    ap.add_argument("--max-regression", type=float, default=0.25,
                    help="allowed relative-throughput growth (0.25 = 25%%)")
    ap.add_argument("--atomics-tolerance", type=float, default=0.05,
                    help="allowed absolute drift of per-op atomic counts")
    ap.add_argument("--restart-slack", type=float, default=0.30,
                    help="allowed from_anchor vs from_root throughput "
                         "shortfall in the restart_policy study")
    ap.add_argument("--kary-slack", type=float, default=0.10,
                    help="allowed KST vs NM-BST throughput shortfall in "
                         "the read-heavy kary_zipf study (the claim is a "
                         "win; the band only absorbs shared-runner noise)")
    ap.add_argument("--server", default=None,
                    help="fresh bench_server --json output (optional; "
                         "enables the server tail-latency gate)")
    ap.add_argument("--server-baseline",
                    default="bench/baseline_server.json")
    ap.add_argument("--server-slack", type=float, default=1.50,
                    help="allowed growth of the server p99/p50 tail "
                         "amplification vs its baseline")
    ap.add_argument("--sharded", default=None,
                    help="fresh bench_sharded --json output (optional; "
                         "enables the adaptive-rebalancer gate)")
    ap.add_argument("--rebalance-uniform-slack", type=float, default=0.10,
                    help="allowed adaptive-vs-static throughput shortfall "
                         "on the uniform (no-migration) workload")
    ap.add_argument("--rebalance-skew-slack", type=float, default=0.35,
                    help="allowed adaptive-vs-static throughput shortfall "
                         "on skewed workloads (multi-core runners only)")
    ap.add_argument("--rebalance-margin", type=float, default=0.05,
                    help="required reduction of the end-of-run max-shard-"
                         "share, adaptive vs static, on skewed workloads")
    ap.add_argument("--skew", default=None,
                    help="fresh bench_skew --json output (optional; "
                         "enables the adversarial-shape gate)")
    ap.add_argument("--shape-depth-slack", type=float, default=8.0,
                    help="additive slack on the 2*log2(n) seek-depth p99 "
                         "bound for scrambled/attack-stream rows")
    ap.add_argument("--shape-uniform-slack", type=float, default=0.0,
                    help="extra allowance (on top of the 5%% band) for the "
                         "scramble adapter's uniform-workload geomean tax")
    ap.add_argument("--serve-report", action="append", default=None,
                    help="lfbst_serve --json exit report (repeatable; "
                         "enables the end-to-end serve shape gate — pass "
                         "one raw and one scrambled soak run)")
    args = ap.parse_args()

    failures = []
    current = []
    if args.current:
        try:
            current_doc = load_doc(args.current)
            current = current_doc["results"]
            baseline = load_report(args.baseline)
        except (OSError, ValueError, json.JSONDecodeError) as e:
            print(f"FAIL: {e}", file=sys.stderr)
            return 1
        print(f"perf gate: {args.current} vs {args.baseline}")
        failures += check_atomics(current, baseline, args.atomics_tolerance)
        failures += check_micro(current, baseline, args.max_regression)
        failures += check_restart_policy(current, args.restart_slack)
        failures += check_scan(current)
        failures += check_kary(current_doc, args.kary_slack)
    else:
        print("perf gate: standalone mode (no bench_micro_ops report)")
    failures += check_server(args.server, args.server_baseline,
                             args.server_slack)
    failures += check_rebalance(args.sharded, args.rebalance_uniform_slack,
                                args.rebalance_skew_slack,
                                args.rebalance_margin)
    failures += check_shape(args.skew, current, args.shape_depth_slack,
                            args.shape_uniform_slack)
    failures += check_serve_shape(args.serve_report, args.shape_depth_slack)

    if failures:
        print(f"\nFAIL: {len(failures)} perf-gate violation(s):",
              file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print("\nOK: no Table 1 drift, no relative-throughput regression")
    return 0


if __name__ == "__main__":
    sys.exit(main())
