#!/usr/bin/env python3
"""Validate two consecutive Prometheus scrapes of a loaded lfbst_serve.

Usage:
    tools/check_prometheus.py scrape1.txt scrape2.txt

The CI telemetry smoke curls /metrics twice while bench_server drives
the server, then hands both bodies here. Checks (the live-telemetry
acceptance contract, docs/TELEMETRY.md):

  * both scrapes parse as Prometheus 0.0.4 text: `name{labels} value`
    samples, `# HELP` / `# TYPE` comments, nothing else;
  * every required family is present in both scrapes;
  * every `*_total` sample is a counter: integral-looking, and
    monotone non-decreasing from scrape 1 to scrape 2 per labelset;
  * at least one tree point-op counter strictly increased between the
    scrapes (the server really was under load);
  * every gauge is finite and non-negative;
  * in the second scrape, if the latest window saw traffic
    (lfbst_window_ops > 0) the per-shard shares sum to ~1.

Exit status 0 only if every check passes.
"""

import math
import re
import sys

REQUIRED_FAMILIES = [
    "lfbst_ops_search_total",
    "lfbst_ops_insert_total",
    "lfbst_ops_erase_total",
    "lfbst_shard_ops_total",
    "lfbst_windows_published_total",
    "lfbst_window_ops",
    "lfbst_window_ops_per_sec",
    "lfbst_shard_share",
    "lfbst_shard_share_max",
    "lfbst_latency_window_ns",
    "lfbst_seek_depth_window",
    "lfbst_heatmap_ops_total",
    "lfbst_server_frames_in_total",
    "lfbst_server_responses_out_total",
]

POINT_OP_COUNTERS = [
    "lfbst_ops_search_total",
    "lfbst_ops_insert_total",
    "lfbst_ops_erase_total",
]

SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^}]*\})?\s+"
    r"(?P<value>[0-9eE+.\-]+|NaN|[+-]?Inf)$"
)


def fail(msg):
    print(f"check_prometheus: FAIL: {msg}", file=sys.stderr)
    return False


def parse(path):
    """Returns ({(name, labels): float}, {family: type}) or None."""
    samples = {}
    types = {}
    try:
        with open(path) as f:
            lines = f.read().splitlines()
    except OSError as e:
        fail(f"{path}: cannot read: {e}")
        return None
    for lineno, line in enumerate(lines, 1):
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4:
                fail(f"{path}:{lineno}: malformed TYPE comment")
                return None
            types[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue
        m = SAMPLE_RE.match(line)
        if not m:
            fail(f"{path}:{lineno}: unparseable sample: {line!r}")
            return None
        key = (m.group("name"), m.group("labels") or "")
        if key in samples:
            fail(f"{path}:{lineno}: duplicate sample {key}")
            return None
        samples[key] = float(m.group("value"))
    if not samples:
        fail(f"{path}: no samples at all")
        return None
    return samples, types


def family_values(samples, name):
    return {k: v for k, v in samples.items() if k[0] == name}


def check(path1, path2):
    first = parse(path1)
    second = parse(path2)
    if first is None or second is None:
        return False
    s1, _ = first
    s2, types2 = second
    ok = True

    names1 = {k[0] for k in s1}
    names2 = {k[0] for k in s2}
    for fam in REQUIRED_FAMILIES:
        if fam not in names1 or fam not in names2:
            ok = fail(f"required family {fam} missing from a scrape")

    # Counters: integral and monotone per labelset across the scrapes.
    for key, v2 in s2.items():
        name, labels = key
        if not name.endswith("_total"):
            continue
        if v2 != int(v2) or v2 < 0:
            ok = fail(f"counter {name}{labels} = {v2} is not a count")
        if key in s1 and v2 < s1[key]:
            ok = fail(
                f"counter {name}{labels} went backwards: "
                f"{s1[key]} -> {v2}"
            )
        declared = types2.get(name)
        if declared is not None and declared != "counter":
            ok = fail(f"{name} ends in _total but is TYPE {declared}")

    # Gauges: finite, non-negative.
    for (name, labels), v in s2.items():
        if name.endswith("_total"):
            continue
        if math.isnan(v) or math.isinf(v) or v < 0:
            ok = fail(f"gauge {name}{labels} = {v} is not finite >= 0")

    # The load check: some tree point-op counter strictly increased.
    moved = 0
    for fam in POINT_OP_COUNTERS:
        for key, v2 in family_values(s2, fam).items():
            if v2 > s1.get(key, 0):
                moved += 1
    if moved == 0:
        ok = fail("no point-op counter increased between scrapes; "
                  "was the server actually under load?")

    # Share algebra: under traffic the shard shares must sum to ~1.
    window_ops = s2.get(("lfbst_window_ops", ""), 0.0)
    if window_ops > 0:
        share_sum = sum(family_values(s2, "lfbst_shard_share").values())
        if not 0.98 <= share_sum <= 1.02:
            ok = fail(
                f"shard shares sum to {share_sum:.4f} with "
                f"window_ops={window_ops}; want ~1"
            )

    return ok


def main(argv):
    if len(argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    if not check(argv[1], argv[2]):
        return 1
    print(f"check_prometheus: OK ({argv[1]}, {argv[2]})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
