#!/usr/bin/env python3
"""Validate lfbst bench --json output against the lfbst-bench-v1 schema.

Usage:
    tools/check_bench_json.py report.json [more.json ...]
    tools/check_bench_json.py --chrome-trace trace.json

Checks every document the benches' --json flag emits (see
src/obs/export.hpp for the contract):

  * top level is an object with "schema" == "lfbst-bench-v1",
    a non-empty string "bench", an object "config" of flat scalars,
    and a non-empty array "results";
  * every results row is an object of flat scalars (no nesting), and
    all rows of one document share a consistent key set — grouped by
    the "study" column when present (bench_ablation packs four studies
    with different measurement columns into one report).

With --chrome-trace the file is instead checked as Chrome trace_event
JSON (the bench_figure4 --trace output): an object with a "traceEvents"
array whose entries carry name/ph/ts/pid/tid, with matched B/E pairs
per tid. Exit status is 0 only if every file passes.
"""

import json
import sys

SCHEMA = "lfbst-bench-v1"
SCALARS = (str, int, float, bool, type(None))

# Studies whose rows must carry a known minimal column set, on top of the
# generic per-study key-consistency check. Extra columns are fine (the
# micro_ops scan rows add scan_restarts, the sharded rows add shards).
STUDY_REQUIRED = {
    "scan": {"study", "algorithm", "writers", "scans", "mkeys_per_sec",
             "keys_per_scan", "sorted", "stable_complete"},
    "server": {"study", "mix", "connections", "pipeline", "event_threads",
               "shards", "ops", "mops_per_sec", "p50_ns", "p99_ns",
               "p999_ns"},
    "rebalance": {"study", "mode", "workload", "shards", "threads",
                  "mops_per_sec", "migrations", "keys_migrated",
                  "share_start", "share_end"},
    "numa": {"study", "mode", "nodes", "shards", "threads", "mops_per_sec"},
    "kary_zipf": {"study", "algorithm", "threads", "theta", "mops_per_sec"},
    "seek_depth": {"study", "stream", "algorithm", "scramble", "n", "shards",
                   "mops", "depth_p50", "depth_p99", "depth_max"},
    "server_lifetime": {"study", "scramble", "shards", "keys", "ops",
                        "p50_ns", "p99_ns", "p999_ns", "seeks", "seek_p50",
                        "seek_p99", "seek_max"},
}


def fail(path, msg):
    print(f"{path}: FAIL: {msg}", file=sys.stderr)
    return False


def check_bench(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return fail(path, f"cannot load: {e}")
    if not isinstance(doc, dict):
        return fail(path, "top level must be an object")
    if doc.get("schema") != SCHEMA:
        return fail(path, f"schema is {doc.get('schema')!r}, want {SCHEMA!r}")
    if not isinstance(doc.get("bench"), str) or not doc["bench"]:
        return fail(path, "'bench' must be a non-empty string")
    config = doc.get("config")
    if not isinstance(config, dict):
        return fail(path, "'config' must be an object")
    for k, v in config.items():
        if not isinstance(v, SCALARS):
            return fail(path, f"config[{k!r}] is not a flat scalar")
    results = doc.get("results")
    if not isinstance(results, list) or not results:
        return fail(path, "'results' must be a non-empty array")
    group_keys = {}  # study value -> (first row index, key set)
    for i, row in enumerate(results):
        if not isinstance(row, dict) or not row:
            return fail(path, f"results[{i}] must be a non-empty object")
        for k, v in row.items():
            if not isinstance(v, SCALARS):
                return fail(path, f"results[{i}][{k!r}] is not a flat scalar")
        group = row.get("study")
        required = STUDY_REQUIRED.get(group)
        if required and not required <= set(row):
            return fail(
                path,
                f"results[{i}] (study {group!r}) missing required "
                f"column(s) {sorted(required - set(row))}",
            )
        if group not in group_keys:
            group_keys[group] = (i, set(row))
        elif set(row) != group_keys[group][1]:
            first, keys = group_keys[group]
            return fail(
                path,
                f"results[{i}] keys {sorted(set(row))} differ from "
                f"results[{first}] keys {sorted(keys)}"
                + (f" (study {group!r})" if group is not None else ""),
            )
    print(f"{path}: OK ({doc['bench']}, {len(results)} rows)")
    return True


def check_chrome_trace(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return fail(path, f"cannot load: {e}")
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        return fail(path, "'traceEvents' must be a non-empty array")
    depth = {}  # tid -> open B count
    seen_b = set()  # tids that have produced at least one B
    truncated = 0
    for i, ev in enumerate(events):
        for field in ("name", "ph", "ts", "pid", "tid"):
            if field not in ev:
                return fail(path, f"traceEvents[{i}] missing {field!r}")
        ph = ev["ph"]
        if ph not in ("B", "E", "i", "X", "M"):
            return fail(path, f"traceEvents[{i}] has unknown phase {ph!r}")
        tid = ev["tid"]
        if ph == "B":
            depth[tid] = depth.get(tid, 0) + 1
            seen_b.add(tid)
        elif ph == "E":
            if depth.get(tid, 0) == 0:
                # A ring that overflowed may retain an E whose B was
                # overwritten — but only before the tid's first B.
                if tid in seen_b:
                    return fail(
                        path, f"traceEvents[{i}]: E without matching B "
                        f"on tid {tid}"
                    )
                truncated += 1
            else:
                depth[tid] -= 1
    too_deep = {t: d for t, d in depth.items() if d > 1}
    if too_deep:
        return fail(path, f"unbalanced B/E nesting per tid: {too_deep}")
    print(f"{path}: OK (chrome trace, {len(events)} events, "
          f"{truncated} leading truncated spans)")
    return True


def main():
    args = sys.argv[1:]
    chrome = "--chrome-trace" in args
    if chrome:
        args.remove("--chrome-trace")
    if not args:
        print(__doc__)
        return 2
    check = check_chrome_trace if chrome else check_bench
    ok = all([check(path) for path in args])
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
