// Live membership service — a read-dominated scenario: a session table
// queried by many reader threads (auth checks) while sessions churn in
// the background (logins/logouts). Readers on the NM tree never block
// and never take a lock: they stay correct (and the structure stays
// valid) while the writer restructures the tree under them.
//
// The demo runs the same service once on the NM tree and once on the
// coarse-lock reference and reports both. Read the numbers with care:
// on a single-core host a coarse lock is *never contended* (only one
// thread runs at a time), so its hot inlined critical section can win on
// raw throughput. The lock-free advantage the paper measures (Fig. 4)
// needs real hardware parallelism; what this demo shows on any machine
// is progress isolation — the service keeps answering correctly no
// matter how the writer and the scheduler interleave.
//
//   $ ./live_membership [--readers 3] [--millis 800] [--sessions 50000]
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "harness/flags.hpp"
#include "common/barrier.hpp"
#include "common/rng.hpp"
#include "lfbst/lfbst.hpp"

namespace {

using namespace lfbst;

struct service_report {
  double reader_mops = 0;
  double writer_mops = 0;
  std::size_t final_sessions = 0;
};

template <typename Tree>
service_report run_service(unsigned readers, std::uint64_t millis,
                           std::uint64_t sessions) {
  Tree table;
  // Seed the table with half the session-id space "logged in".
  pcg32 seed_rng(1);
  std::uint64_t active = 0;
  while (active < sessions / 2) {
    if (table.insert(static_cast<long>(seed_rng.next64() % sessions))) {
      ++active;
    }
  }

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> reads{0}, writes{0};
  spin_barrier barrier(readers + 2);
  std::vector<std::thread> threads;

  for (unsigned r = 0; r < readers; ++r) {
    threads.emplace_back([&, r] {
      pcg32 rng = pcg32::for_thread(7, r);
      std::uint64_t n = 0;
      barrier.arrive_and_wait();
      while (!stop.load(std::memory_order_relaxed)) {
        (void)table.contains(static_cast<long>(rng.next64() % sessions));
        ++n;
      }
      reads.fetch_add(n);
    });
  }
  threads.emplace_back([&] {  // login/logout churner
    pcg32 rng = pcg32::for_thread(9, 99);
    std::uint64_t n = 0;
    barrier.arrive_and_wait();
    while (!stop.load(std::memory_order_relaxed)) {
      const long id = static_cast<long>(rng.next64() % sessions);
      if (rng.bounded(2) == 0) {
        table.insert(id);
      } else {
        table.erase(id);
      }
      ++n;
    }
    writes.fetch_add(n);
  });

  barrier.arrive_and_wait();
  const auto t0 = std::chrono::steady_clock::now();
  std::this_thread::sleep_for(std::chrono::milliseconds(millis));
  stop.store(true);
  for (auto& t : threads) t.join();
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  service_report rep;
  rep.reader_mops = static_cast<double>(reads.load()) / secs / 1e6;
  rep.writer_mops = static_cast<double>(writes.load()) / secs / 1e6;
  rep.final_sessions = table.size_slow();
  return rep;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::flags flags(argc, argv);
  const auto readers = static_cast<unsigned>(flags.get_int("readers", 3));
  const auto millis = static_cast<std::uint64_t>(flags.get_int("millis", 500));
  const auto sessions =
      static_cast<std::uint64_t>(flags.get_int("sessions", 50'000));

  std::printf("live_membership: %u reader threads + 1 churner, %llu "
              "session ids, %llu ms per engine\n\n",
              readers, static_cast<unsigned long long>(sessions),
              static_cast<unsigned long long>(millis));

  const service_report nm =
      run_service<nm_tree<long, std::less<long>, reclaim::epoch>>(
          readers, millis, sessions);
  std::printf("NM-BST (lock-free, epoch reclamation):\n"
              "  auth checks : %.3f Mops/s\n  churn       : %.3f Mops/s\n"
              "  sessions    : %zu\n\n",
              nm.reader_mops, nm.writer_mops, nm.final_sessions);

  const service_report coarse =
      run_service<coarse_tree<long>>(readers, millis, sessions);
  std::printf("Coarse-BST (one lock around everything):\n"
              "  auth checks : %.3f Mops/s\n  churn       : %.3f Mops/s\n"
              "  sessions    : %zu\n\n",
              coarse.reader_mops, coarse.writer_mops,
              coarse.final_sessions);

  std::printf("reader throughput ratio (NM / coarse): %.2fx\n",
              nm.reader_mops / coarse.reader_mops);
  std::printf(
      "note: with %u hardware threads a coarse lock is %s; the paper's\n"
      "lock-free wins (Fig. 4) require cores actually running in "
      "parallel.\n",
      std::thread::hardware_concurrency(),
      std::thread::hardware_concurrency() > 1 ? "contended"
                                              : "never contended");
  return 0;
}
