// Live price index on nm_map — a classic replace-heavy workload: feed
// threads continuously overwrite per-instrument prices
// (insert_or_assign = one CAS swinging a leaf), query threads read
// point prices, and an expiry thread delists stale instruments. This is
// the paper's §6 "replace" operation doing real work, plus the k-ary
// tree serving the same feed for comparison.
//
//   $ ./price_index [--instruments 4096] [--millis 600] [--feeds 2]
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "common/barrier.hpp"
#include "common/rng.hpp"
#include "multiway/kary_tree.hpp"
#include "harness/flags.hpp"
#include "lfbst/lfbst.hpp"

namespace {

using namespace lfbst;

// Prices as fixed-point longs (4 implied decimals) so the map payload is
// trivially copyable and cheap.
using price_map = nm_map<long, long, std::less<long>, reclaim::epoch>;

struct feed_stats {
  std::atomic<std::uint64_t> updates{0};
  std::atomic<std::uint64_t> lookups{0};
  std::atomic<std::uint64_t> hits{0};
  std::atomic<std::uint64_t> delistings{0};
  std::atomic<std::uint64_t> stale_reads{0};  // price outside sane band
};

}  // namespace

int main(int argc, char** argv) {
  const bench::flags flags(argc, argv);
  const long instruments = flags.get_int("instruments", 4096);
  const auto millis = flags.get_int("millis", 600);
  const unsigned feeds = static_cast<unsigned>(flags.get_int("feeds", 2));

  price_map book;
  feed_stats st;
  // List every instrument at a base price.
  for (long id = 0; id < instruments; ++id) {
    book.insert(id, 10'000 + id);
  }

  std::atomic<bool> stop{false};
  spin_barrier barrier(feeds + 3);
  std::vector<std::thread> threads;

  // Feed threads: hammer insert_or_assign with fresh prices.
  for (unsigned f = 0; f < feeds; ++f) {
    threads.emplace_back([&, f] {
      pcg32 rng = pcg32::for_thread(2026, f);
      std::uint64_t n = 0;
      barrier.arrive_and_wait();
      while (!stop.load(std::memory_order_relaxed)) {
        const long id = rng.bounded(static_cast<std::uint32_t>(instruments));
        const long px = 10'000 + static_cast<long>(rng.bounded(100'000));
        book.insert_or_assign(id, px);
        ++n;
      }
      st.updates.fetch_add(n);
    });
  }

  // Query thread: point lookups; every observed price must be in the
  // band any writer could have written (torn values would fall outside).
  threads.emplace_back([&] {
    pcg32 rng(77);
    std::uint64_t n = 0, hits = 0, stale = 0;
    barrier.arrive_and_wait();
    while (!stop.load(std::memory_order_relaxed)) {
      const long id = rng.bounded(static_cast<std::uint32_t>(instruments));
      if (const auto px = book.get(id)) {
        ++hits;
        if (*px < 10'000 || *px >= 10'000 + 100'000 + instruments) ++stale;
      }
      ++n;
    }
    st.lookups.fetch_add(n);
    st.hits.fetch_add(hits);
    st.stale_reads.fetch_add(stale);
  });

  // Expiry thread: periodically delist a band of instruments and relist
  // them, exercising erase against the assign storm.
  threads.emplace_back([&] {
    pcg32 rng(99);
    std::uint64_t delisted = 0;
    barrier.arrive_and_wait();
    while (!stop.load(std::memory_order_relaxed)) {
      const long base = rng.bounded(static_cast<std::uint32_t>(instruments));
      for (long i = 0; i < 16; ++i) {
        const long id = (base + i) % instruments;
        if (book.erase(id)) ++delisted;
      }
      for (long i = 0; i < 16; ++i) {
        const long id = (base + i) % instruments;
        book.insert(id, 10'000 + id);
      }
      std::this_thread::yield();
    }
    st.delistings.fetch_add(delisted);
  });

  barrier.arrive_and_wait();
  const auto t0 = std::chrono::steady_clock::now();
  std::this_thread::sleep_for(std::chrono::milliseconds(millis));
  stop.store(true);
  for (auto& t : threads) t.join();
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  std::printf("price_index: %ld instruments, %u feed threads, %.2f s\n",
              instruments, feeds, secs);
  std::printf("  price updates (replace)  : %llu (%.2f M/s)\n",
              (unsigned long long)st.updates.load(),
              static_cast<double>(st.updates.load()) / secs / 1e6);
  std::printf("  lookups (hit rate)       : %llu (%.1f%%)\n",
              (unsigned long long)st.lookups.load(),
              100.0 * static_cast<double>(st.hits.load()) /
                  static_cast<double>(st.lookups.load()));
  std::printf("  delistings               : %llu\n",
              (unsigned long long)st.delistings.load());
  std::printf("  out-of-band (torn) reads : %llu\n",
              (unsigned long long)st.stale_reads.load());
  std::printf("  final book size          : %zu\n", book.size_slow());
  std::printf("  pending retirements      : %zu\n",
              book.reclaimer_pending());

  // Side-by-side: the same instrument set in the k-ary tree (set
  // semantics) to show the fat-leaf extension on point lookups.
  kary_tree<long, 8> directory;
  for (long id = 0; id < instruments; ++id) directory.insert(id);
  pcg32 rng(5);
  const auto q0 = std::chrono::steady_clock::now();
  std::uint64_t found = 0;
  for (int i = 0; i < 1'000'000; ++i) {
    found += directory.contains(
                 rng.bounded(static_cast<std::uint32_t>(instruments)))
                 ? 1
                 : 0;
  }
  const double qsecs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - q0)
          .count();
  std::printf("  kary<8> directory lookups: %.2f M/s (%llu found)\n",
              1.0 / qsecs, (unsigned long long)found);

  const bool ok = st.stale_reads.load() == 0 && book.validate().empty() &&
                  directory.validate().empty();
  std::printf("  self-check               : %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
