// Quickstart: the 60-second tour of the public API.
//
//   $ ./quickstart
//
// Shows: constructing trees, the three concurrent operations, policy
// selection (reclaimer / tagging), and safe quiescent iteration.
#include <cstdio>
#include <thread>
#include <vector>

#include "lfbst/lfbst.hpp"

int main() {
  // The paper's algorithm with default policies: leaky reclamation (the
  // regime every number in the paper is measured under) and BTS tagging.
  lfbst::nm_tree<long> set;

  // The three concurrent operations. All are linearizable and safe to
  // call from any number of threads without external synchronization.
  set.insert(42);                  // -> true (key added)
  set.insert(42);                  // -> false (duplicate)
  const bool hit = set.contains(42);  // -> true
  set.erase(42);                   // -> true (key removed)
  std::printf("contains(42) while present: %s\n", hit ? "yes" : "no");

  // Concurrent use: four threads build disjoint ranges simultaneously.
  std::vector<std::thread> workers;
  for (int tid = 0; tid < 4; ++tid) {
    workers.emplace_back([&set, tid] {
      for (long k = tid * 1000; k < (tid + 1) * 1000; ++k) set.insert(k);
    });
  }
  for (auto& w : workers) w.join();
  std::printf("4 threads inserted %zu keys\n", set.size_slow());

  // Quiescent iteration (no concurrent operations running): in order.
  long first = -1, last = -1, count = 0;
  set.for_each_slow([&](long k) {
    if (count++ == 0) first = k;
    last = k;
  });
  std::printf("keys span [%ld, %ld]\n", first, last);

  // Production memory policy: epoch-based reclamation frees removed
  // nodes after a grace period instead of holding them until the tree
  // is destroyed. Same API.
  lfbst::nm_tree<long, std::less<long>, lfbst::reclaim::epoch> recycling;
  for (long k = 0; k < 10'000; ++k) recycling.insert(k);
  for (long k = 0; k < 10'000; ++k) recycling.erase(k);
  std::printf("epoch tree after churn: %zu keys, %zu retirements pending\n",
              recycling.size_slow(), recycling.reclaimer_pending());

  // The paper's CAS-only variant (no BTS instruction), and the three
  // baselines the paper compares against — all share the same interface.
  lfbst::nm_tree<long, std::less<long>, lfbst::reclaim::leaky,
                 lfbst::stats::none, lfbst::tag_policy::cas_only>
      cas_only;
  lfbst::efrb_tree<long> efrb;
  lfbst::hj_tree<long> hj;
  lfbst::bcco_tree<long> bcco;
  for (auto k : {3L, 1L, 2L}) {
    cas_only.insert(k);
    efrb.insert(k);
    hj.insert(k);
    bcco.insert(k);
  }
  std::printf("all five algorithms agree: %d %d %d %d\n",
              cas_only.contains(2), efrb.contains(2), hj.contains(2),
              bcco.contains(2));

  // Structural self-check (used heavily by the test suite).
  std::printf("validate(): \"%s\" (empty string = healthy)\n",
              set.validate().c_str());
  return 0;
}
