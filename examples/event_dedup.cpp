// Event-stream deduplication — the kind of write-dominated workload the
// paper's introduction motivates. Multiple producer threads ingest a
// stream of event ids with heavy duplication (retries, at-least-once
// delivery); the NM tree is the concurrent "seen" set deciding, exactly
// once per id, which thread processes the event. A trailing eviction
// thread erases ids older than the retention window, so the set churns
// at both ends — insert-heavy AND delete-heavy, the regime where the
// paper's algorithm wins by the widest margin.
//
//   $ ./event_dedup [--producers 4] [--events 200000] [--dup-pct 40]
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "harness/flags.hpp"
#include "common/rng.hpp"
#include "lfbst/lfbst.hpp"

namespace {

using namespace lfbst;

struct shared_state {
  // Epoch reclamation: a long-running service cannot run the paper's
  // leaky regime.
  nm_tree<long, std::less<long>, reclaim::epoch> seen;
  std::atomic<long> next_event_id{0};
  std::atomic<long> processed{0};
  std::atomic<long> duplicates_dropped{0};
  std::atomic<long> evicted{0};
  std::atomic<bool> done{false};
};

}  // namespace

int main(int argc, char** argv) {
  const bench::flags flags(argc, argv);
  const long producers = flags.get_int("producers", 4);
  const long total_events = flags.get_int("events", 200'000);
  const long dup_pct = flags.get_int("dup-pct", 40);
  const long retention = flags.get_int("retention", 10'000);

  shared_state st;
  std::vector<std::thread> threads;

  // Producers: draw fresh ids, but with probability dup-pct re-deliver a
  // recent id (simulating at-least-once transports). insert() returning
  // true IS the exactly-once decision — no lock, no second lookup.
  for (long p = 0; p < producers; ++p) {
    threads.emplace_back([&st, p, total_events, dup_pct, producers] {
      pcg32 rng = pcg32::for_thread(2026, static_cast<unsigned>(p));
      const long quota = total_events / producers;
      for (long i = 0; i < quota; ++i) {
        long id;
        const long newest = st.next_event_id.load(std::memory_order_relaxed);
        if (newest > 0 &&
            rng.bounded(100) < static_cast<std::uint32_t>(dup_pct)) {
          // Re-deliver one of the last ~1000 already-issued ids (always
          // well inside the retention window, so eviction cannot race a
          // redelivery into double-processing).
          const auto window =
              static_cast<std::uint32_t>(newest < 1000 ? newest : 1000);
          id = newest - 1 - static_cast<long>(rng.bounded(window));
        } else {
          id = st.next_event_id.fetch_add(1, std::memory_order_relaxed);
        }
        if (st.seen.insert(id)) {
          st.processed.fetch_add(1, std::memory_order_relaxed);
        } else {
          st.duplicates_dropped.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  // Evictor: erase ids that fell out of the retention window.
  threads.emplace_back([&st, retention] {
    long horizon = 0;
    while (!st.done.load(std::memory_order_acquire)) {
      const long newest = st.next_event_id.load(std::memory_order_relaxed);
      while (horizon < newest - retention) {
        if (st.seen.erase(horizon)) {
          st.evicted.fetch_add(1, std::memory_order_relaxed);
        }
        ++horizon;
      }
      std::this_thread::yield();
    }
  });

  for (long p = 0; p < producers; ++p) threads[p].join();
  st.done.store(true, std::memory_order_release);
  threads.back().join();

  std::printf("event_dedup: %ld producers, %ld deliveries (%ld%% dup "
              "rate)\n",
              producers, total_events, dup_pct);
  std::printf("  processed exactly once : %ld\n", st.processed.load());
  std::printf("  duplicates dropped     : %ld\n",
              st.duplicates_dropped.load());
  std::printf("  evicted from window    : %ld\n", st.evicted.load());
  std::printf("  live set size          : %zu\n", st.seen.size_slow());
  std::printf("  pending retirements    : %zu\n",
              st.seen.reclaimer_pending());

  // Correctness cross-checks usable as a smoke test in CI.
  const long fresh = st.processed.load();
  const long unique_issued = st.next_event_id.load();
  const bool ok =
      fresh == unique_issued &&  // every unique id processed exactly once
      st.seen.validate().empty();
  std::printf("  self-check             : %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
