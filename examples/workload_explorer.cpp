// Workload explorer: run any (algorithm × workload × key range × thread
// count) point from the paper's evaluation grid and print the full
// measurement breakdown — the interactive companion to bench_figure4.
//
//   $ ./workload_explorer --algo nm --workload write-dominated \
//         --keyrange 1000 --threads 4 --millis 1000
//
// Algorithms: nm | nm-cas | nm-epoch | efrb | hj | bcco | coarse
#include <cstdio>
#include <string>

#include "harness/flags.hpp"
#include "harness/runner.hpp"
#include "harness/table.hpp"
#include "harness/workload.hpp"
#include "lfbst/lfbst.hpp"

namespace {

using namespace lfbst;
using namespace lfbst::harness;

template <typename Tree>
int explore(const workload_config& cfg) {
  std::printf("algorithm : %s\n", Tree::algorithm_name);
  std::printf("workload  : %s\n", cfg.label().c_str());
  Tree tree;
  const run_result r = run_workload(tree, cfg);

  text_table tbl({"metric", "value"});
  tbl.add_row({"throughput", format("%.3f Mops/s", r.mops_per_second())});
  tbl.add_row({"total ops", std::to_string(r.total_ops)});
  tbl.add_row({"searches", std::to_string(r.searches)});
  tbl.add_row({"inserts (ok)", format("%llu (%llu)",
                                      (unsigned long long)r.inserts,
                                      (unsigned long long)r.successful_inserts)});
  tbl.add_row({"erases (ok)", format("%llu (%llu)",
                                     (unsigned long long)r.erases,
                                     (unsigned long long)r.successful_erases)});
  tbl.add_row({"elapsed", format("%.3f s", r.elapsed_seconds)});
  tbl.add_row({"final size", std::to_string(r.final_size)});
  tbl.print();

  const std::string health = tree.validate();
  std::printf("structural check: %s\n",
              health.empty() ? "clean" : health.c_str());
  return health.empty() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::flags flags(argc, argv);
  if (flags.has("help")) {
    std::printf(
        "usage: workload_explorer [--algo nm|nm-cas|nm-epoch|efrb|hj|bcco|"
        "coarse]\n                        [--workload write-dominated|mixed|"
        "read-dominated]\n                        [--keyrange N] [--threads N]"
        " [--millis N] [--seed N]\n");
    return 0;
  }
  workload_config cfg;
  cfg.key_range = static_cast<std::uint64_t>(flags.get_int("keyrange", 10'000));
  cfg.mix = mix_by_name(flags.get("workload", "mixed"));
  cfg.threads = static_cast<unsigned>(flags.get_int("threads", 4));
  cfg.duration = std::chrono::milliseconds(flags.get_int("millis", 500));
  cfg.seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));

  const std::string algo = flags.get("algo", "nm");
  if (algo == "nm") return explore<nm_tree<long>>(cfg);
  if (algo == "nm-cas") {
    return explore<nm_tree<long, std::less<long>, reclaim::leaky,
                           stats::none, tag_policy::cas_only>>(cfg);
  }
  if (algo == "nm-epoch") {
    return explore<nm_tree<long, std::less<long>, reclaim::epoch>>(cfg);
  }
  if (algo == "efrb") return explore<efrb_tree<long>>(cfg);
  if (algo == "hj") return explore<hj_tree<long>>(cfg);
  if (algo == "bcco") return explore<bcco_tree<long>>(cfg);
  if (algo == "coarse") return explore<coarse_tree<long>>(cfg);
  std::fprintf(stderr, "unknown --algo '%s' (try --help)\n", algo.c_str());
  return 2;
}
