// Unit tests for the slab node pool: alignment (the NM tree steals two
// pointer bits, so < 4-byte alignment would corrupt edges), reuse,
// cross-thread deallocate, and footprint accounting.
#include "alloc/node_pool.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <set>
#include <thread>
#include <vector>

namespace lfbst {
namespace {

TEST(NodePool, BlocksAreAtLeast16ByteAligned) {
  node_pool pool(24);
  for (int i = 0; i < 1000; ++i) {
    void* p = pool.allocate(24);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 16, 0u);
  }
}

TEST(NodePool, BlockSizeRoundsUp) {
  node_pool pool(17);
  EXPECT_EQ(pool.block_size(), 32u);
}

TEST(NodePool, DistinctBlocksDoNotOverlap) {
  node_pool pool(32);
  std::vector<char*> blocks;
  for (int i = 0; i < 4096; ++i) {
    blocks.push_back(static_cast<char*>(pool.allocate(32)));
    std::memset(blocks.back(), i & 0xFF, 32);
  }
  // Writing a pattern into each block must not disturb any other block.
  for (int i = 0; i < 4096; ++i) {
    for (int b = 0; b < 32; ++b) {
      ASSERT_EQ(static_cast<unsigned char>(blocks[i][b]), i & 0xFF);
    }
  }
}

TEST(NodePool, DeallocatedBlocksAreReused) {
  node_pool pool(64);
  void* a = pool.allocate(64);
  pool.deallocate(a);
  void* b = pool.allocate(64);
  EXPECT_EQ(a, b);  // LIFO free list returns the same block
}

TEST(NodePool, DeallocateNullIsNoop) {
  node_pool pool(64);
  pool.deallocate(nullptr);
  SUCCEED();
}

TEST(NodePool, CrossThreadDeallocateIsSafe) {
  // One thread allocates, another frees, first reallocates: the block
  // migrates to the freeing thread's list and stays usable.
  node_pool pool(48);
  std::vector<void*> blocks;
  for (int i = 0; i < 1000; ++i) blocks.push_back(pool.allocate(48));
  std::thread freer([&] {
    for (void* p : blocks) pool.deallocate(p);
    // This thread can now reuse them.
    for (int i = 0; i < 1000; ++i) {
      void* p = pool.allocate(48);
      std::memset(p, 0xAB, 48);
    }
  });
  freer.join();
  SUCCEED();
}

TEST(NodePool, ConcurrentAllocationProducesDistinctBlocks) {
  node_pool pool(32);
  constexpr int kThreads = 4, kPerThread = 20'000;
  std::vector<std::vector<void*>> per_thread(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&pool, &v = per_thread[t]] {
      v.reserve(kPerThread);
      for (int i = 0; i < kPerThread; ++i) v.push_back(pool.allocate(32));
    });
  }
  for (auto& t : threads) t.join();
  std::set<void*> all;
  for (const auto& v : per_thread) all.insert(v.begin(), v.end());
  EXPECT_EQ(all.size(),
            static_cast<std::size_t>(kThreads) * kPerThread);
}

TEST(NodePool, FootprintGrowsWithAllocations) {
  node_pool pool(64, /*slab_bytes=*/1 << 12);
  const std::size_t before = pool.footprint_bytes();
  for (int i = 0; i < 1000; ++i) pool.allocate(64);
  EXPECT_GT(pool.footprint_bytes(), before);
}

TEST(NodePool, SmallSlabStillWorks) {
  node_pool pool(64, /*slab_bytes=*/64);  // one block per slab
  void* a = pool.allocate(64);
  void* b = pool.allocate(64);
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace lfbst
