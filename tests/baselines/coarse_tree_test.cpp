// Tests for the coarse-lock reference tree, including the classic BST
// two-child deletion (successor stealing) and thread-safety under its
// single lock.
#include "baselines/coarse_tree.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <thread>
#include <vector>

#include "common/rng.hpp"

namespace lfbst {
namespace {

TEST(CoarseTree, EmptyTree) {
  coarse_tree<long> t;
  EXPECT_FALSE(t.contains(1));
  EXPECT_FALSE(t.erase(1));
  EXPECT_EQ(t.size_slow(), 0u);
  EXPECT_EQ(t.validate(), "");
}

TEST(CoarseTree, BasicSemantics) {
  coarse_tree<long> t;
  EXPECT_TRUE(t.insert(10));
  EXPECT_FALSE(t.insert(10));
  EXPECT_TRUE(t.insert(5));
  EXPECT_TRUE(t.insert(15));
  EXPECT_TRUE(t.erase(10));
  EXPECT_FALSE(t.erase(10));
  EXPECT_EQ(t.size_slow(), 2u);
  EXPECT_EQ(t.validate(), "");
}

TEST(CoarseTree, TwoChildDeletionStealsSuccessor) {
  coarse_tree<long> t;
  for (long k : {50L, 25L, 75L, 60L, 90L, 55L, 65L}) t.insert(k);
  EXPECT_TRUE(t.erase(50));
  for (long k : {25L, 75L, 60L, 90L, 55L, 65L}) EXPECT_TRUE(t.contains(k));
  EXPECT_FALSE(t.contains(50));
  std::vector<long> seen;
  t.for_each_slow([&seen](long k) { seen.push_back(k); });
  EXPECT_TRUE(std::is_sorted(seen.begin(), seen.end()));
  EXPECT_EQ(t.validate(), "");
}

TEST(CoarseTree, SuccessorWithRightChild) {
  // Successor (60) itself has a right child (65): the splice must
  // reattach it.
  coarse_tree<long> t;
  for (long k : {50L, 25L, 75L, 60L, 65L}) t.insert(k);
  EXPECT_TRUE(t.erase(50));
  EXPECT_TRUE(t.contains(65));
  EXPECT_TRUE(t.contains(60));
  EXPECT_EQ(t.validate(), "");
}

TEST(CoarseTree, RandomSoupMatchesStdSet) {
  coarse_tree<long> t;
  std::set<long> oracle;
  pcg32 rng(4242);
  for (int i = 0; i < 100'000; ++i) {
    const long k = rng.bounded(512);
    switch (rng.bounded(3)) {
      case 0:
        ASSERT_EQ(t.insert(k), oracle.insert(k).second);
        break;
      case 1:
        ASSERT_EQ(t.erase(k), oracle.erase(k) > 0);
        break;
      default:
        ASSERT_EQ(t.contains(k), oracle.count(k) > 0);
    }
  }
  EXPECT_EQ(t.size_slow(), oracle.size());
  EXPECT_EQ(t.validate(), "");
}

TEST(CoarseTree, ConcurrentMixIsLinearizedByTheLock) {
  coarse_tree<long> t;
  std::vector<std::thread> threads;
  for (int tid = 0; tid < 4; ++tid) {
    threads.emplace_back([&t, tid] {
      pcg32 rng = pcg32::for_thread(9, tid);
      for (int i = 0; i < 20'000; ++i) {
        const long k = rng.bounded(256);
        switch (rng.bounded(3)) {
          case 0:
            t.insert(k);
            break;
          case 1:
            t.erase(k);
            break;
          default:
            (void)t.contains(k);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(t.validate(), "");
}

}  // namespace
}  // namespace lfbst
