// DVY-specific tests: the logical-ordering chain (the design's defining
// feature), tree/list membership equality, the two-child relocation
// path, settle-after-move behaviour, and oracle churn.
#include "baselines/dvy_tree.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "common/barrier.hpp"
#include "common/rng.hpp"
#include "reclaim/epoch.hpp"

namespace lfbst {
namespace {

TEST(DvyTree, EmptyTree) {
  dvy_tree<long> t;
  EXPECT_FALSE(t.contains(1));
  EXPECT_FALSE(t.erase(1));
  EXPECT_EQ(t.size_slow(), 0u);
  EXPECT_EQ(t.validate(), "");
}

TEST(DvyTree, BasicSemantics) {
  dvy_tree<long> t;
  EXPECT_TRUE(t.insert(10));
  EXPECT_FALSE(t.insert(10));
  EXPECT_TRUE(t.insert(5));
  EXPECT_TRUE(t.insert(15));
  EXPECT_TRUE(t.erase(10));
  EXPECT_FALSE(t.erase(10));
  EXPECT_TRUE(t.contains(5));
  EXPECT_TRUE(t.contains(15));
  EXPECT_EQ(t.size_slow(), 2u);
  EXPECT_EQ(t.validate(), "");
}

TEST(DvyTree, LogicalChainIsAlwaysSorted) {
  dvy_tree<long> t;
  pcg32 rng(3);
  for (int i = 0; i < 5000; ++i) {
    const long k = static_cast<long>(rng.next64() % 100'000);
    if (rng.bounded(3) == 0) {
      t.erase(k);
    } else {
      t.insert(k);
    }
  }
  std::vector<long> chain;
  t.for_each_slow([&chain](long k) { chain.push_back(k); });
  EXPECT_TRUE(std::is_sorted(chain.begin(), chain.end()));
  EXPECT_EQ(t.validate(), "");  // includes tree==list member equality
}

TEST(DvyTree, TwoChildDeleteRelocatesSuccessor) {
  dvy_tree<long> t;
  for (long k : {50L, 25L, 75L, 60L, 90L, 55L, 65L}) ASSERT_TRUE(t.insert(k));
  EXPECT_TRUE(t.erase(50));  // 50 has two children; successor 55 moves up
  EXPECT_FALSE(t.contains(50));
  for (long k : {25L, 75L, 60L, 90L, 55L, 65L}) EXPECT_TRUE(t.contains(k));
  EXPECT_EQ(t.validate(), "");
}

TEST(DvyTree, DeleteRootRepeatedly) {
  dvy_tree<long> t;
  for (long k = 0; k < 100; ++k) t.insert((k * 37) % 100);
  for (long k = 0; k < 100; ++k) {
    ASSERT_TRUE(t.erase(k)) << k;
    ASSERT_EQ(t.validate(), "") << "after erasing " << k;
  }
  EXPECT_EQ(t.size_slow(), 0u);
}

TEST(DvyTree, RandomSoupMatchesStdSet) {
  dvy_tree<long> t;
  std::set<long> oracle;
  pcg32 rng(2014);
  for (int i = 0; i < 120'000; ++i) {
    const long k = rng.bounded(800);
    switch (rng.bounded(3)) {
      case 0:
        ASSERT_EQ(t.insert(k), oracle.insert(k).second) << i;
        break;
      case 1:
        ASSERT_EQ(t.erase(k), oracle.erase(k) > 0) << i;
        break;
      default:
        ASSERT_EQ(t.contains(k), oracle.count(k) > 0) << i;
    }
  }
  EXPECT_EQ(t.size_slow(), oracle.size());
  EXPECT_EQ(t.validate(), "");
}

TEST(DvyTree, EpochReclaimerChurn) {
  dvy_tree<long, std::less<long>, reclaim::epoch> t;
  for (int round = 0; round < 50; ++round) {
    for (long k = 0; k < 200; ++k) ASSERT_TRUE(t.insert(k));
    for (long k = 199; k >= 0; --k) ASSERT_TRUE(t.erase(k));
  }
  EXPECT_EQ(t.size_slow(), 0u);
  EXPECT_EQ(t.validate(), "");
}

TEST(DvyTree, ConcurrentConservationHighContention) {
  dvy_tree<long> t;
  constexpr unsigned kThreads = 4;
  std::atomic<long> net{0};
  spin_barrier barrier(kThreads);
  std::vector<std::thread> threads;
  for (unsigned tid = 0; tid < kThreads; ++tid) {
    threads.emplace_back([&, tid] {
      pcg32 rng = pcg32::for_thread(5, tid);
      long local = 0;
      barrier.arrive_and_wait();
      for (int i = 0; i < 40'000; ++i) {
        const long k = rng.bounded(64);
        if (rng.bounded(2) == 0) {
          if (t.insert(k)) ++local;
        } else {
          if (t.erase(k)) --local;
        }
      }
      net.fetch_add(local);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(t.size_slow(), static_cast<std::size_t>(net.load()));
  EXPECT_EQ(t.validate(), "");
}

TEST(DvyTree, ReadersSettleThroughConcurrentRelocations) {
  // The defining scenario: two-child deletes relocate nodes while
  // readers traverse; the logical chain must keep anchor lookups exact.
  dvy_tree<long, std::less<long>, reclaim::epoch> t;
  constexpr long kAnchors = 64;
  for (long a = 1; a <= kAnchors; ++a) ASSERT_TRUE(t.insert(-a));
  // Build a deliberately branchy positive tree so deletes hit the
  // two-child path often.
  for (long k : {512L, 256L, 768L, 128L, 384L, 640L, 896L}) t.insert(k);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> misses{0};
  std::thread churner([&] {
    pcg32 rng(9);
    for (int i = 0; i < 50'000; ++i) {
      const long k = rng.bounded(1024);
      if (rng.bounded(2) == 0) {
        t.insert(k);
      } else {
        t.erase(k);
      }
    }
    stop.store(true);
  });
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&, r] {
      pcg32 rng = pcg32::for_thread(11, r);
      while (!stop.load(std::memory_order_acquire)) {
        if (!t.contains(-(1 + static_cast<long>(rng.bounded(kAnchors))))) {
          misses.fetch_add(1);
        }
      }
    });
  }
  churner.join();
  for (auto& r : readers) r.join();
  EXPECT_EQ(misses.load(), 0u);
  EXPECT_EQ(t.validate(), "");
}

TEST(DvyTree, DuelingDeletesEachKeyOnce) {
  dvy_tree<long> t;
  constexpr long kKeys = 2048;
  for (long k = 0; k < kKeys; ++k) ASSERT_TRUE(t.insert(k));
  std::atomic<long> wins{0};
  spin_barrier barrier(4);
  std::vector<std::thread> threads;
  for (unsigned tid = 0; tid < 4; ++tid) {
    threads.emplace_back([&, tid] {
      long local = 0;
      barrier.arrive_and_wait();
      if (tid % 2 == 0) {
        for (long k = 0; k < kKeys; ++k) local += t.erase(k) ? 1 : 0;
      } else {
        for (long k = kKeys - 1; k >= 0; --k) local += t.erase(k) ? 1 : 0;
      }
      wins.fetch_add(local);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(wins.load(), kKeys);
  EXPECT_EQ(t.size_slow(), 0u);
  EXPECT_EQ(t.validate(), "");
}

}  // namespace
}  // namespace lfbst
