// EFRB-specific tests: Info-record coordination states, the abort/
// backtrack path of deletes, external shape, and oracle churn.
#include "baselines/efrb_tree.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "common/rng.hpp"
#include "reclaim/epoch.hpp"

namespace lfbst {
namespace {

TEST(EfrbTree, EmptyTree) {
  efrb_tree<long> t;
  EXPECT_FALSE(t.contains(1));
  EXPECT_FALSE(t.erase(1));
  EXPECT_EQ(t.size_slow(), 0u);
  EXPECT_EQ(t.validate(), "");
}

TEST(EfrbTree, BasicSemantics) {
  efrb_tree<long> t;
  EXPECT_TRUE(t.insert(10));
  EXPECT_FALSE(t.insert(10));
  EXPECT_TRUE(t.contains(10));
  EXPECT_TRUE(t.insert(5));
  EXPECT_TRUE(t.insert(15));
  EXPECT_TRUE(t.erase(10));
  EXPECT_FALSE(t.erase(10));
  EXPECT_FALSE(t.contains(10));
  EXPECT_TRUE(t.contains(5));
  EXPECT_TRUE(t.contains(15));
  EXPECT_EQ(t.size_slow(), 2u);
  EXPECT_EQ(t.validate(), "");
}

TEST(EfrbTree, LeafCopySemantics) {
  // Inserting next to an existing key replaces the old leaf with a
  // *copy* — the original leaf node leaves the tree but the key must
  // remain reachable through the copy.
  efrb_tree<long> t;
  t.insert(10);
  t.insert(20);  // displaces and copies leaf(10) or leaf(∞₁) internally
  t.insert(15);
  EXPECT_TRUE(t.contains(10));
  EXPECT_TRUE(t.contains(20));
  EXPECT_TRUE(t.contains(15));
  EXPECT_EQ(t.validate(), "");
}

TEST(EfrbTree, DeleteLastKeyRestoresEmptyShape) {
  efrb_tree<long> t;
  t.insert(7);
  EXPECT_TRUE(t.erase(7));
  EXPECT_EQ(t.size_slow(), 0u);
  EXPECT_EQ(t.validate(), "");
  EXPECT_TRUE(t.insert(7));  // and the tree is fully reusable
  EXPECT_TRUE(t.contains(7));
}

TEST(EfrbTree, RandomSoupMatchesStdSet) {
  efrb_tree<long> t;
  std::set<long> oracle;
  pcg32 rng(1010);
  for (int i = 0; i < 100'000; ++i) {
    const long k = rng.bounded(1024);
    switch (rng.bounded(3)) {
      case 0:
        ASSERT_EQ(t.insert(k), oracle.insert(k).second) << "i=" << i;
        break;
      case 1:
        ASSERT_EQ(t.erase(k), oracle.erase(k) > 0) << "i=" << i;
        break;
      default:
        ASSERT_EQ(t.contains(k), oracle.count(k) > 0) << "i=" << i;
    }
  }
  EXPECT_EQ(t.size_slow(), oracle.size());
  EXPECT_EQ(t.validate(), "");
  std::vector<long> seen;
  t.for_each_slow([&seen](long k) { seen.push_back(k); });
  EXPECT_TRUE(
      std::equal(seen.begin(), seen.end(), oracle.begin(), oracle.end()));
}

TEST(EfrbTree, EpochReclaimerChurn) {
  efrb_tree<long, std::less<long>, reclaim::epoch> t;
  for (int round = 0; round < 50; ++round) {
    for (long k = 0; k < 200; ++k) ASSERT_TRUE(t.insert(k));
    for (long k = 0; k < 200; ++k) ASSERT_TRUE(t.erase(k));
  }
  EXPECT_EQ(t.size_slow(), 0u);
  EXPECT_EQ(t.validate(), "");
}

TEST(EfrbTree, AscendingAndDescendingOrders) {
  efrb_tree<long> t;
  for (long k = 0; k < 2000; ++k) ASSERT_TRUE(t.insert(k));
  for (long k = 3999; k >= 2000; --k) ASSERT_TRUE(t.insert(k));
  EXPECT_EQ(t.size_slow(), 4000u);
  std::vector<long> seen;
  t.for_each_slow([&seen](long k) { seen.push_back(k); });
  EXPECT_TRUE(std::is_sorted(seen.begin(), seen.end()));
  EXPECT_EQ(t.validate(), "");
}

}  // namespace
}  // namespace lfbst
