// HJ-specific tests: internal-tree shape, the key-relocation delete path
// (the defining quirk of the algorithm), marked-node tombstones, and
// oracle churn.
#include "baselines/hj_tree.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "common/rng.hpp"
#include "reclaim/epoch.hpp"

namespace lfbst {
namespace {

TEST(HjTree, EmptyTree) {
  hj_tree<long> t;
  EXPECT_FALSE(t.contains(1));
  EXPECT_FALSE(t.erase(1));
  EXPECT_EQ(t.size_slow(), 0u);
  EXPECT_EQ(t.validate(), "");
}

TEST(HjTree, BasicSemantics) {
  hj_tree<long> t;
  EXPECT_TRUE(t.insert(10));
  EXPECT_FALSE(t.insert(10));
  EXPECT_TRUE(t.insert(5));
  EXPECT_TRUE(t.insert(15));
  EXPECT_TRUE(t.erase(10));
  EXPECT_FALSE(t.erase(10));
  EXPECT_TRUE(t.contains(5));
  EXPECT_TRUE(t.contains(15));
  EXPECT_EQ(t.size_slow(), 2u);
  EXPECT_EQ(t.validate(), "");
}

TEST(HjTree, DeleteLeafNode) {
  hj_tree<long> t;
  t.insert(50);
  t.insert(25);
  EXPECT_TRUE(t.erase(25));  // no children: mark + splice
  EXPECT_FALSE(t.contains(25));
  EXPECT_TRUE(t.contains(50));
  EXPECT_EQ(t.validate(), "");
}

TEST(HjTree, DeleteOneChildNode) {
  hj_tree<long> t;
  t.insert(50);
  t.insert(25);
  t.insert(10);  // 25 has exactly one (left) child
  EXPECT_TRUE(t.erase(25));
  EXPECT_FALSE(t.contains(25));
  EXPECT_TRUE(t.contains(10));
  EXPECT_TRUE(t.contains(50));
  EXPECT_EQ(t.validate(), "");
}

TEST(HjTree, DeleteTwoChildNodeRelocatesSuccessor) {
  // Removing a two-child node moves the successor's key into it — the
  // relocation path. All remaining keys must stay reachable and ordered.
  hj_tree<long> t;
  for (long k : {50L, 25L, 75L, 60L, 90L}) t.insert(k);
  EXPECT_TRUE(t.erase(50));  // successor 60 relocates into node 50
  EXPECT_FALSE(t.contains(50));
  for (long k : {25L, 75L, 60L, 90L}) EXPECT_TRUE(t.contains(k));
  EXPECT_EQ(t.size_slow(), 4u);
  EXPECT_EQ(t.validate(), "");
}

TEST(HjTree, DeleteRootWithTwoChildrenRepeatedly) {
  hj_tree<long> t;
  for (long k : {50L, 25L, 75L, 10L, 30L, 60L, 90L}) t.insert(k);
  // Keep deleting the (current) middle element.
  for (long k : {50L, 60L, 75L}) {
    EXPECT_TRUE(t.erase(k));
    EXPECT_FALSE(t.contains(k));
    EXPECT_EQ(t.validate(), "");
  }
  EXPECT_EQ(t.size_slow(), 4u);
}

TEST(HjTree, InOrderIterationSorted) {
  hj_tree<long> t;
  pcg32 rng(5);
  std::set<long> oracle;
  for (int i = 0; i < 5000; ++i) {
    const long k = static_cast<long>(rng.next64() % 100000);
    t.insert(k);
    oracle.insert(k);
  }
  std::vector<long> seen;
  t.for_each_slow([&seen](long k) { seen.push_back(k); });
  EXPECT_TRUE(std::is_sorted(seen.begin(), seen.end()));
  EXPECT_EQ(seen.size(), oracle.size());
}

TEST(HjTree, RandomSoupMatchesStdSet) {
  hj_tree<long> t;
  std::set<long> oracle;
  pcg32 rng(77);
  for (int i = 0; i < 100'000; ++i) {
    const long k = rng.bounded(1024);
    switch (rng.bounded(3)) {
      case 0:
        ASSERT_EQ(t.insert(k), oracle.insert(k).second) << "i=" << i;
        break;
      case 1:
        ASSERT_EQ(t.erase(k), oracle.erase(k) > 0) << "i=" << i;
        break;
      default:
        ASSERT_EQ(t.contains(k), oracle.count(k) > 0) << "i=" << i;
    }
  }
  EXPECT_EQ(t.size_slow(), oracle.size());
  EXPECT_EQ(t.validate(), "");
}

TEST(HjTree, EpochReclaimerChurn) {
  hj_tree<long, std::less<long>, reclaim::epoch> t;
  for (int round = 0; round < 50; ++round) {
    for (long k = 0; k < 200; ++k) ASSERT_TRUE(t.insert(k));
    for (long k = 199; k >= 0; --k) ASSERT_TRUE(t.erase(k));
  }
  EXPECT_EQ(t.size_slow(), 0u);
  EXPECT_EQ(t.validate(), "");
}

TEST(HjTree, SearchPathShorterThanExternalTrees) {
  // Qualitative check of the §5 discussion: an internal tree of n keys
  // has no routing-only layer, so its node count is n (+1 sentinel),
  // while external trees carry 2n-1 (+sentinels).
  hj_tree<long> t;
  pcg32 rng(3);
  std::set<long> keys;
  while (keys.size() < 1000) {
    const long k = static_cast<long>(rng.next64() % 1'000'000);
    if (keys.insert(k).second) {
      ASSERT_TRUE(t.insert(k));
    }
  }
  EXPECT_EQ(t.size_slow(), 1000u);
}

}  // namespace
}  // namespace lfbst
