// BCCO-specific tests: relaxed-AVL balance under adversarial insertion
// orders, partially-external deletion (routing-node demotion and
// revival), version-word behaviour, and oracle churn.
#include "baselines/bcco_tree.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "common/rng.hpp"
#include "reclaim/epoch.hpp"

namespace lfbst {
namespace {

TEST(BccoTree, EmptyTree) {
  bcco_tree<long> t;
  EXPECT_FALSE(t.contains(1));
  EXPECT_FALSE(t.erase(1));
  EXPECT_EQ(t.size_slow(), 0u);
  EXPECT_EQ(t.validate(), "");
}

TEST(BccoTree, BasicSemantics) {
  bcco_tree<long> t;
  EXPECT_TRUE(t.insert(10));
  EXPECT_FALSE(t.insert(10));
  EXPECT_TRUE(t.insert(5));
  EXPECT_TRUE(t.insert(15));
  EXPECT_TRUE(t.erase(10));
  EXPECT_FALSE(t.erase(10));
  EXPECT_TRUE(t.contains(5));
  EXPECT_TRUE(t.contains(15));
  EXPECT_EQ(t.size_slow(), 2u);
  EXPECT_EQ(t.validate(), "");
}

TEST(BccoTree, SequentialInsertStaysBalanced) {
  // The raison d'être of the AVL machinery: ascending insertions, which
  // degenerate the other trees to depth n, must stay at ~1.44·log2 n.
  bcco_tree<long> t;
  constexpr long n = 1 << 16;
  for (long k = 0; k < n; ++k) ASSERT_TRUE(t.insert(k));
  EXPECT_EQ(t.size_slow(), static_cast<std::size_t>(n));
  EXPECT_LE(t.height_slow(), static_cast<std::size_t>(1.45 * 16) + 3);
  EXPECT_EQ(t.validate(), "");
}

TEST(BccoTree, DescendingInsertStaysBalanced) {
  bcco_tree<long> t;
  constexpr long n = 1 << 15;
  for (long k = n; k > 0; --k) ASSERT_TRUE(t.insert(k));
  EXPECT_LE(t.height_slow(), static_cast<std::size_t>(1.45 * 15) + 3);
  EXPECT_EQ(t.validate(), "");
}

TEST(BccoTree, ZigZagInsertTriggersDoubleRotations) {
  bcco_tree<long> t;
  // Alternating far-apart/middle keys forces LR/RL rotations.
  for (long k = 0; k < 4096; ++k) {
    const long key = (k % 2 == 0) ? k : 100000 - k;
    ASSERT_TRUE(t.insert(key));
  }
  EXPECT_LE(t.height_slow(), 24u);
  EXPECT_EQ(t.validate(), "");
}

TEST(BccoTree, TwoChildDeleteLeavesRoutingNode) {
  // Partially-external removal: the key disappears logically but the
  // node may stay as a routing node; a re-insert revives it in place.
  bcco_tree<long> t;
  for (long k : {50L, 25L, 75L}) t.insert(k);
  EXPECT_TRUE(t.erase(50));  // two children: demoted, not unlinked
  EXPECT_FALSE(t.contains(50));
  EXPECT_EQ(t.size_slow(), 2u);
  EXPECT_TRUE(t.insert(50));  // revival path (attemptNodeAdd)
  EXPECT_TRUE(t.contains(50));
  EXPECT_EQ(t.size_slow(), 3u);
  EXPECT_EQ(t.validate(), "");
}

TEST(BccoTree, RoutingNodesAreEventuallyUnlinked) {
  // Demote a routing node, then delete its children: rebalancing must
  // clean the childless routing node (validate flags any leftover).
  bcco_tree<long> t;
  for (long k : {50L, 25L, 75L}) t.insert(k);
  EXPECT_TRUE(t.erase(50));
  EXPECT_TRUE(t.erase(25));
  EXPECT_TRUE(t.erase(75));
  EXPECT_EQ(t.size_slow(), 0u);
  EXPECT_EQ(t.validate(), "");
}

TEST(BccoTree, RandomSoupMatchesStdSet) {
  bcco_tree<long> t;
  std::set<long> oracle;
  pcg32 rng(123);
  for (int i = 0; i < 150'000; ++i) {
    const long k = rng.bounded(1024);
    switch (rng.bounded(3)) {
      case 0:
        ASSERT_EQ(t.insert(k), oracle.insert(k).second) << "i=" << i;
        break;
      case 1:
        ASSERT_EQ(t.erase(k), oracle.erase(k) > 0) << "i=" << i;
        break;
      default:
        ASSERT_EQ(t.contains(k), oracle.count(k) > 0) << "i=" << i;
    }
  }
  EXPECT_EQ(t.size_slow(), oracle.size());
  EXPECT_EQ(t.validate(), "");
  std::vector<long> seen;
  t.for_each_slow([&seen](long k) { seen.push_back(k); });
  EXPECT_TRUE(
      std::equal(seen.begin(), seen.end(), oracle.begin(), oracle.end()));
}

TEST(BccoTree, ChurnKeepsHeightBounded) {
  // Long insert/delete churn over a sliding window: relaxed balancing
  // must keep the height logarithmic in the live set, not in the total
  // insertion count.
  bcco_tree<long> t;
  pcg32 rng(55);
  for (long w = 0; w < 50; ++w) {
    for (long k = w * 1000; k < (w + 1) * 1000; ++k) ASSERT_TRUE(t.insert(k));
    if (w >= 2) {
      for (long k = (w - 2) * 1000; k < (w - 1) * 1000; ++k) {
        ASSERT_TRUE(t.erase(k));
      }
    }
  }
  EXPECT_LE(t.size_slow(), 3000u);
  EXPECT_LE(t.height_slow(), 32u);
  EXPECT_EQ(t.validate(), "");
}

TEST(BccoTree, EpochReclaimerChurn) {
  bcco_tree<long, std::less<long>, reclaim::epoch> t;
  for (int round = 0; round < 30; ++round) {
    for (long k = 0; k < 300; ++k) ASSERT_TRUE(t.insert(k));
    for (long k = 0; k < 300; ++k) ASSERT_TRUE(t.erase(k));
  }
  EXPECT_EQ(t.size_slow(), 0u);
  EXPECT_EQ(t.validate(), "");
}

}  // namespace
}  // namespace lfbst
