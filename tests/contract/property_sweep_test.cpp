// Property-based parameterized sweeps: randomized operation soups over a
// (seed × key-range × mix) grid, validated against std::set after every
// phase. TEST_P keeps each grid point an individually reported,
// individually re-runnable test.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "common/rng.hpp"
#include "lfbst/lfbst.hpp"

namespace lfbst {
namespace {

struct sweep_params {
  std::uint64_t seed;
  long key_range;
  int insert_pct;  // remainder splits evenly search/erase
  int erase_pct;
};

std::string param_name(const ::testing::TestParamInfo<sweep_params>& info) {
  return "seed" + std::to_string(info.param.seed) + "_range" +
         std::to_string(info.param.key_range) + "_ins" +
         std::to_string(info.param.insert_pct) + "_era" +
         std::to_string(info.param.erase_pct);
}

class PropertySweep : public ::testing::TestWithParam<sweep_params> {};

/// Drives `ops` randomized operations against `tree` and the oracle,
/// asserting result agreement per step and structural health at the end.
template <typename Tree>
void run_sweep(Tree& tree, const sweep_params& p, int ops) {
  std::set<long> oracle;
  pcg32 rng(p.seed);
  for (int i = 0; i < ops; ++i) {
    const long k = static_cast<long>(rng.next64() % p.key_range);
    const int roll = static_cast<int>(rng.bounded(100));
    if (roll < p.insert_pct) {
      ASSERT_EQ(tree.insert(k), oracle.insert(k).second)
          << Tree::algorithm_name << " i=" << i << " k=" << k;
    } else if (roll < p.insert_pct + p.erase_pct) {
      ASSERT_EQ(tree.erase(k), oracle.erase(k) > 0)
          << Tree::algorithm_name << " i=" << i << " k=" << k;
    } else {
      ASSERT_EQ(tree.contains(k), oracle.count(k) > 0)
          << Tree::algorithm_name << " i=" << i << " k=" << k;
    }
  }
  ASSERT_EQ(tree.size_slow(), oracle.size()) << Tree::algorithm_name;
  ASSERT_EQ(tree.validate(), "") << Tree::algorithm_name;
  // Ordered-scan agreement over a quiescent tree. Every tree offers the
  // same bounded-scan surface (kary included — no for_each-only
  // carve-outs), so the sweep checks it for all of them.
  if constexpr (requires { tree.range_scan(0L, 1L); }) {
    const long lo = p.key_range / 4;
    const long hi = (3 * p.key_range) / 4 + 1;
    std::vector<long> expected;
    for (const long k : oracle) {
      if (k >= lo && k < hi) expected.push_back(k);
    }
    ASSERT_EQ(tree.range_scan(lo, hi), expected) << Tree::algorithm_name;
    std::vector<long> visited;
    tree.for_each([&visited](const long& k) { visited.push_back(k); });
    ASSERT_EQ(visited, std::vector<long>(oracle.begin(), oracle.end()))
        << Tree::algorithm_name;
  }
}

TEST_P(PropertySweep, NmTreeMatchesOracle) {
  nm_tree<long> t;
  run_sweep(t, GetParam(), 30'000);
}

TEST_P(PropertySweep, NmTreeEpochMatchesOracle) {
  nm_tree<long, std::less<long>, reclaim::epoch> t;
  run_sweep(t, GetParam(), 30'000);
}

TEST_P(PropertySweep, NmTreeCasOnlyMatchesOracle) {
  nm_tree<long, std::less<long>, reclaim::leaky, stats::none,
          tag_policy::cas_only>
      t;
  run_sweep(t, GetParam(), 30'000);
}

TEST_P(PropertySweep, EfrbTreeMatchesOracle) {
  efrb_tree<long> t;
  run_sweep(t, GetParam(), 30'000);
}

TEST_P(PropertySweep, HjTreeMatchesOracle) {
  hj_tree<long> t;
  run_sweep(t, GetParam(), 30'000);
}

TEST_P(PropertySweep, BccoTreeMatchesOracle) {
  bcco_tree<long> t;
  run_sweep(t, GetParam(), 30'000);
}

TEST_P(PropertySweep, CoarseTreeMatchesOracle) {
  coarse_tree<long> t;
  run_sweep(t, GetParam(), 30'000);
}

TEST_P(PropertySweep, DvyTreeMatchesOracle) {
  dvy_tree<long> t;
  run_sweep(t, GetParam(), 30'000);
}

TEST_P(PropertySweep, KaryTreeMatchesOracle) {
  kary_tree<long, 4> t;
  run_sweep(t, GetParam(), 30'000);
}

TEST_P(PropertySweep, KaryTreeWideFanoutMatchesOracle) {
  kary_tree<long, 8> t;
  run_sweep(t, GetParam(), 30'000);
}

TEST_P(PropertySweep, KaryTreeHazardMatchesOracle) {
  kary_tree<long, 8, std::less<long>, reclaim::hazard> t;
  run_sweep(t, GetParam(), 30'000);
}

TEST_P(PropertySweep, KaryTreeFromRootMatchesOracle) {
  kary_tree<long, 16, std::less<long>, reclaim::epoch, stats::none,
            atomics::native, restart::from_root>
      t;
  run_sweep(t, GetParam(), 30'000);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PropertySweep,
    ::testing::Values(
        // High collision, balanced mix — maximum structural churn.
        sweep_params{1, 8, 40, 40},
        sweep_params{2, 64, 40, 40},
        // The paper's three workload mixes at two tree scales.
        sweep_params{3, 1'000, 50, 50},    // write-dominated
        sweep_params{4, 1'000, 20, 10},    // mixed
        sweep_params{5, 1'000, 9, 1},      // read-dominated
        sweep_params{6, 100'000, 50, 50},  //
        sweep_params{7, 100'000, 20, 10},  //
        // Insert-only growth and erase-heavy shrinkage.
        sweep_params{8, 10'000, 90, 5},
        sweep_params{9, 200, 10, 80},
        // Different seeds on the nastiest configuration.
        sweep_params{10, 8, 40, 40}, sweep_params{11, 8, 40, 40},
        sweep_params{12, 8, 40, 40}),
    param_name);

// --- invariants that must hold at every prefix ------------------------------

class PhaseValidation : public ::testing::TestWithParam<sweep_params> {};

TEST_P(PhaseValidation, NmTreeValidAfterEveryPhase) {
  // Run the soup in phases and validate the full structure after each —
  // catches corruption that later operations would mask.
  const auto p = GetParam();
  nm_tree<long> t;
  std::set<long> oracle;
  pcg32 rng(p.seed);
  for (int phase = 0; phase < 10; ++phase) {
    for (int i = 0; i < 2000; ++i) {
      const long k = static_cast<long>(rng.next64() % p.key_range);
      const int roll = static_cast<int>(rng.bounded(100));
      if (roll < p.insert_pct) {
        ASSERT_EQ(t.insert(k), oracle.insert(k).second);
      } else if (roll < p.insert_pct + p.erase_pct) {
        ASSERT_EQ(t.erase(k), oracle.erase(k) > 0);
      } else {
        ASSERT_EQ(t.contains(k), oracle.count(k) > 0);
      }
    }
    ASSERT_EQ(t.validate(), "") << "phase " << phase;
    ASSERT_EQ(t.size_slow(), oracle.size()) << "phase " << phase;
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, PhaseValidation,
                         ::testing::Values(sweep_params{21, 16, 45, 45},
                                           sweep_params{22, 1'000, 30, 30},
                                           sweep_params{23, 50'000, 50, 25}),
                         param_name);

}  // namespace
}  // namespace lfbst
