// The cross-implementation contract suite: every tree in the repo must
// satisfy the same dictionary semantics. Written once as a typed gtest
// suite and instantiated for all five implementations, so a behavioural
// divergence between the paper's algorithm and any baseline shows up as
// a single failing (Algorithm, Test) cell.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "common/rng.hpp"
#include "core/concurrent_set.hpp"
#include "lfbst/lfbst.hpp"

namespace lfbst {
namespace {

template <typename Tree>
class SetContract : public ::testing::Test {
 public:
  Tree tree;
};

using AllTrees =
    ::testing::Types<nm_tree<long>, efrb_tree<long>, hj_tree<long>,
                     bcco_tree<long>, coarse_tree<long>, dvy_tree<long>,
                     dvy_tree<long, std::less<long>, reclaim::epoch>,
                     // policy variants of the core algorithm
                     nm_tree<long, std::less<long>, reclaim::epoch>,
                     nm_tree<long, std::less<long>, reclaim::leaky,
                             stats::none, tag_policy::cas_only>,
                     nm_tree<long, std::less<long>, reclaim::hazard>,
                     // multiway k-ary tree, across its policy axes
                     kary_tree<long, 4>,
                     kary_tree<long, 8, std::less<long>, reclaim::epoch>,
                     kary_tree<long, 8, std::less<long>, reclaim::hazard>,
                     kary_tree<long, 16, std::less<long>, reclaim::hazard,
                               stats::none, atomics::native,
                               restart::from_root>>;

class TreeNames {
 public:
  template <typename T>
  static std::string GetName(int i) {
    // gtest filters treat '-' as the negative-pattern separator, so the
    // algorithm names ("NM-BST") must be sanitized or ctest's generated
    // --gtest_filter would silently match zero tests.
    std::string name(T::algorithm_name);
    for (char& c : name) {
      if (c == '-') c = '_';
    }
    return name + "_" + std::to_string(i);
  }
};

TYPED_TEST_SUITE(SetContract, AllTrees, TreeNames);

TYPED_TEST(SetContract, SatisfiesConcurrentSetConcept) {
  static_assert(ConcurrentSet<TypeParam>);
}

TYPED_TEST(SetContract, StartsEmpty) {
  EXPECT_EQ(this->tree.size_slow(), 0u);
  EXPECT_FALSE(this->tree.contains(0));
  EXPECT_EQ(this->tree.validate(), "");
}

TYPED_TEST(SetContract, InsertContainsEraseRoundTrip) {
  EXPECT_TRUE(this->tree.insert(42));
  EXPECT_TRUE(this->tree.contains(42));
  EXPECT_TRUE(this->tree.erase(42));
  EXPECT_FALSE(this->tree.contains(42));
  EXPECT_EQ(this->tree.size_slow(), 0u);
}

TYPED_TEST(SetContract, InsertIsIdempotentOnMembership) {
  EXPECT_TRUE(this->tree.insert(7));
  EXPECT_FALSE(this->tree.insert(7));
  EXPECT_FALSE(this->tree.insert(7));
  EXPECT_EQ(this->tree.size_slow(), 1u);
}

TYPED_TEST(SetContract, EraseOfAbsentKeyIsFalse) {
  EXPECT_FALSE(this->tree.erase(1));
  this->tree.insert(1);
  EXPECT_FALSE(this->tree.erase(2));
  EXPECT_TRUE(this->tree.contains(1));
}

TYPED_TEST(SetContract, ContainsDoesNotMutate) {
  this->tree.insert(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(this->tree.contains(5));
    EXPECT_FALSE(this->tree.contains(6));
  }
  EXPECT_EQ(this->tree.size_slow(), 1u);
  EXPECT_EQ(this->tree.validate(), "");
}

TYPED_TEST(SetContract, HandlesAdjacentKeys) {
  for (long k = 0; k < 64; ++k) EXPECT_TRUE(this->tree.insert(k));
  for (long k = 0; k < 64; k += 2) EXPECT_TRUE(this->tree.erase(k));
  for (long k = 0; k < 64; ++k) {
    EXPECT_EQ(this->tree.contains(k), k % 2 == 1) << "k=" << k;
  }
  EXPECT_EQ(this->tree.validate(), "");
}

TYPED_TEST(SetContract, AscendingInsertDescendingErase) {
  constexpr long n = 2000;
  for (long k = 0; k < n; ++k) ASSERT_TRUE(this->tree.insert(k));
  EXPECT_EQ(this->tree.size_slow(), static_cast<std::size_t>(n));
  for (long k = n - 1; k >= 0; --k) ASSERT_TRUE(this->tree.erase(k));
  EXPECT_EQ(this->tree.size_slow(), 0u);
  EXPECT_EQ(this->tree.validate(), "");
}

TYPED_TEST(SetContract, ForEachVisitsExactlyTheLiveKeysInOrder) {
  std::set<long> oracle;
  pcg32 rng(99);
  for (int i = 0; i < 5000; ++i) {
    const long k = rng.bounded(4096);
    if (rng.bounded(3) == 0) {
      EXPECT_EQ(this->tree.erase(k), oracle.erase(k) > 0);
    } else {
      EXPECT_EQ(this->tree.insert(k), oracle.insert(k).second);
    }
  }
  std::vector<long> seen;
  this->tree.for_each_slow([&seen](long k) { seen.push_back(k); });
  EXPECT_TRUE(std::is_sorted(seen.begin(), seen.end()));
  EXPECT_TRUE(
      std::equal(seen.begin(), seen.end(), oracle.begin(), oracle.end()));
}

TYPED_TEST(SetContract, OracleSoupSmallKeyRange) {
  // High-collision regime: every operation contends on the same few
  // keys, maximizing structural churn near the root/sentinels.
  std::set<long> oracle;
  pcg32 rng(31);
  for (int i = 0; i < 60'000; ++i) {
    const long k = rng.bounded(16);
    switch (rng.bounded(3)) {
      case 0:
        ASSERT_EQ(this->tree.insert(k), oracle.insert(k).second);
        break;
      case 1:
        ASSERT_EQ(this->tree.erase(k), oracle.erase(k) > 0);
        break;
      default:
        ASSERT_EQ(this->tree.contains(k), oracle.count(k) > 0);
    }
  }
  EXPECT_EQ(this->tree.size_slow(), oracle.size());
  EXPECT_EQ(this->tree.validate(), "");
}

TYPED_TEST(SetContract, OracleSoupWideKeyRange) {
  std::set<long> oracle;
  pcg32 rng(32);
  for (int i = 0; i < 60'000; ++i) {
    const long k = static_cast<long>(rng.next64() % 1'000'000);
    switch (rng.bounded(3)) {
      case 0:
        ASSERT_EQ(this->tree.insert(k), oracle.insert(k).second);
        break;
      case 1:
        ASSERT_EQ(this->tree.erase(k), oracle.erase(k) > 0);
        break;
      default:
        ASSERT_EQ(this->tree.contains(k), oracle.count(k) > 0);
    }
  }
  EXPECT_EQ(this->tree.size_slow(), oracle.size());
  EXPECT_EQ(this->tree.validate(), "");
}

TYPED_TEST(SetContract, RepeatedFillAndDrain) {
  for (int round = 0; round < 10; ++round) {
    for (long k = 0; k < 500; ++k) ASSERT_TRUE(this->tree.insert(k));
    EXPECT_EQ(this->tree.size_slow(), 500u);
    for (long k = 0; k < 500; ++k) ASSERT_TRUE(this->tree.erase(k));
    EXPECT_EQ(this->tree.size_slow(), 0u);
  }
  EXPECT_EQ(this->tree.validate(), "");
}

}  // namespace
}  // namespace lfbst
