// Unit tests for the hazard-pointer domain, including a Treiber-stack
// integration harness: the canonical structure hazard pointers were
// designed for, so it exercises protect/retire/scan end to end.
#include "reclaim/hazard_pointers.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

namespace lfbst {
namespace {

struct canary {
  static constexpr std::uint64_t alive = 0xA11CE5AFEULL;
  std::uint64_t state = alive;
  canary* next = nullptr;
  long value = 0;
};

void heap_canary_deleter(void* obj, void* counter) noexcept {
  auto* c = static_cast<canary*>(obj);
  c->state = 0;
  static_cast<std::atomic<int>*>(counter)->fetch_add(1);
  delete c;
}

TEST(HazardPointers, ProtectReturnsCurrentValue) {
  reclaim::hazard_domain<2> domain;
  std::atomic<canary*> source{new canary};
  canary* protected_ptr = domain.protect(0, source);
  EXPECT_EQ(protected_ptr, source.load());
  domain.clear_all();
  delete source.load();
}

TEST(HazardPointers, ProtectFollowsConcurrentChange) {
  // If the source changes mid-protect, the loop must return the newer
  // value, never a stale unprotected one. Single-threaded simulation:
  // swap the source between protects.
  reclaim::hazard_domain<1> domain;
  canary a, b;
  std::atomic<canary*> source{&a};
  EXPECT_EQ(domain.protect(0, source), &a);
  source.store(&b);
  EXPECT_EQ(domain.protect(0, source), &b);
  domain.clear_all();
}

TEST(HazardPointers, RetireDefersWhileProtected) {
  reclaim::hazard_domain<1> domain;
  std::atomic<int> freed{0};
  auto* c = new canary;
  std::atomic<canary*> source{c};
  canary* p = domain.protect(0, source);
  ASSERT_EQ(p, c);
  // Retire from another thread and force scans by retiring junk.
  std::thread retirer([&] {
    domain.retire(c, &heap_canary_deleter, &freed);
    for (int i = 0; i < 5000; ++i) {
      domain.retire(new canary, &heap_canary_deleter, &freed);
    }
  });
  retirer.join();
  EXPECT_EQ(c->state, canary::alive);  // still protected ⇒ not freed
  domain.clear(0);
  domain.drain_all_unsafe();
  EXPECT_EQ(freed.load(), 5001);
}

TEST(HazardPointers, SlotsAreIndependent) {
  reclaim::hazard_domain<4> domain;
  canary a, b;
  domain.announce(0, &a);
  domain.announce(2, &b);
  domain.clear(0);
  // Slot 2 must still protect b after slot 0 cleared: retire junk and
  // check b survives a scan.
  std::atomic<int> freed{0};
  domain.retire(&b, +[](void* o, void* ctr) noexcept {
    static_cast<canary*>(o)->state = 0;
    static_cast<std::atomic<int>*>(ctr)->fetch_add(1);
  }, &freed);
  for (int i = 0; i < 3000; ++i) {
    domain.retire(new canary, &heap_canary_deleter, &freed);
  }
  EXPECT_EQ(b.state, canary::alive);
  domain.clear_all();
  domain.drain_all_unsafe();
}

// --- Treiber stack harness ------------------------------------------------

class treiber_stack {
 public:
  ~treiber_stack() {
    domain_.drain_all_unsafe();
    canary* n = head_.load();
    while (n != nullptr) {
      canary* next = n->next;
      delete n;
      n = next;
    }
  }

  void push(long v) {
    auto* n = new canary;
    n->value = v;
    n->next = head_.load(std::memory_order_relaxed);
    while (!head_.compare_exchange_weak(n->next, n,
                                        std::memory_order_acq_rel)) {
    }
  }

  bool pop(long& out) {
    for (;;) {
      canary* top = domain_.protect(0, head_);
      if (top == nullptr) {
        domain_.clear(0);
        return false;
      }
      EXPECT_EQ(top->state, canary::alive) << "use after free in pop";
      canary* next = top->next;
      canary* expected = top;
      if (head_.compare_exchange_strong(expected, next,
                                        std::memory_order_acq_rel)) {
        out = top->value;
        domain_.clear(0);
        domain_.retire(top, +[](void* o, void*) noexcept {
          auto* c = static_cast<canary*>(o);
          c->state = 0;
          delete c;
        }, nullptr);
        return true;
      }
    }
  }

 private:
  std::atomic<canary*> head_{nullptr};
  reclaim::hazard_domain<1> domain_;
};

TEST(HazardPointers, TreiberStackSequential) {
  treiber_stack s;
  for (long i = 0; i < 100; ++i) s.push(i);
  long v = -1;
  for (long i = 99; i >= 0; --i) {
    ASSERT_TRUE(s.pop(v));
    EXPECT_EQ(v, i);
  }
  EXPECT_FALSE(s.pop(v));
}

TEST(HazardPointers, TreiberStackConcurrentConservation) {
  // N pushers each push a disjoint range; M poppers drain. The multiset
  // popped must equal the multiset pushed — and no pop may ever observe
  // a freed node (checked inside pop).
  treiber_stack s;
  constexpr int kPushers = 2, kPoppers = 2, kPerPusher = 20'000;
  std::atomic<long> pop_sum{0};
  std::atomic<int> popped{0};
  std::atomic<bool> done_pushing{false};

  std::vector<std::thread> threads;
  for (int p = 0; p < kPushers; ++p) {
    threads.emplace_back([&, p] {
      for (long i = 0; i < kPerPusher; ++i) s.push(p * kPerPusher + i);
    });
  }
  for (int p = 0; p < kPoppers; ++p) {
    threads.emplace_back([&] {
      long v;
      for (;;) {
        if (s.pop(v)) {
          pop_sum.fetch_add(v);
          popped.fetch_add(1);
        } else if (done_pushing.load()) {
          if (!s.pop(v)) break;
          pop_sum.fetch_add(v);
          popped.fetch_add(1);
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  for (int p = 0; p < kPushers; ++p) threads[p].join();
  done_pushing.store(true);
  for (int p = kPushers; p < kPushers + kPoppers; ++p) threads[p].join();

  const long total = static_cast<long>(kPushers) * kPerPusher;
  EXPECT_EQ(popped.load(), total);
  EXPECT_EQ(pop_sum.load(), total * (total - 1) / 2);
}

}  // namespace
}  // namespace lfbst
