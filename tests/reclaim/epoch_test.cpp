// Unit tests for epoch-based reclamation: the two-advance grace period,
// pinning semantics, nesting, drain, and a multi-threaded
// no-use-after-free hammer with canary values.
#include "reclaim/epoch.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

namespace lfbst {
namespace {

struct canary {
  static constexpr std::uint64_t alive = 0xA11CE5AFEULL;
  static constexpr std::uint64_t dead = 0xDEADDEADULL;
  std::uint64_t state = alive;
};

void canary_deleter(void* obj, void* counter) noexcept {
  auto* c = static_cast<canary*>(obj);
  c->state = canary::dead;
  static_cast<std::atomic<int>*>(counter)->fetch_add(1);
}

TEST(Epoch, RetireDoesNotFreeImmediately) {
  reclaim::epoch domain;
  std::atomic<int> freed{0};
  canary c;
  {
    auto g = domain.pin();
    domain.retire(&c, &canary_deleter, &freed);
    EXPECT_EQ(freed.load(), 0);
    EXPECT_EQ(c.state, canary::alive);
  }
  EXPECT_EQ(domain.pending(), 1u);
}

TEST(Epoch, DrainFreesEverything) {
  reclaim::epoch domain;
  std::atomic<int> freed{0};
  std::vector<canary> cs(100);
  {
    auto g = domain.pin();
    for (auto& c : cs) domain.retire(&c, &canary_deleter, &freed);
  }
  domain.drain_all_unsafe();
  EXPECT_EQ(freed.load(), 100);
  EXPECT_EQ(domain.pending(), 0u);
  for (const auto& c : cs) EXPECT_EQ(c.state, canary::dead);
}

TEST(Epoch, EpochAdvancesWhenUnpinned) {
  reclaim::epoch domain;
  std::atomic<int> freed{0};
  const std::uint64_t e0 = domain.current_epoch();
  // Retire enough objects to trigger several advance attempts; with no
  // pinned threads the epoch must move and old buckets must flush.
  std::vector<canary> cs(1000);
  for (auto& c : cs) {
    auto g = domain.pin();
    domain.retire(&c, &canary_deleter, &freed);
  }
  EXPECT_GT(domain.current_epoch(), e0);
  EXPECT_GT(freed.load(), 0);
  // Flush the tail before `cs` dies: the canaries retired after the
  // last advance are still pending, and ~epoch's drain would otherwise
  // run the deleter into the destroyed vector's storage (a real
  // use-after-free, caught by ASan).
  domain.drain_all_unsafe();
  EXPECT_EQ(freed.load(), 1000);
}

TEST(Epoch, PinnedReaderBlocksAdvance) {
  reclaim::epoch domain;
  std::atomic<int> freed{0};
  std::atomic<bool> reader_pinned{false}, release_reader{false};
  std::thread reader([&] {
    auto g = domain.pin();
    reader_pinned.store(true);
    while (!release_reader.load()) std::this_thread::yield();
  });
  while (!reader_pinned.load()) std::this_thread::yield();

  const std::uint64_t e0 = domain.current_epoch();
  std::vector<canary> cs(1000);
  for (auto& c : cs) {
    auto g = domain.pin();
    domain.retire(&c, &canary_deleter, &freed);
  }
  // The reader is parked in epoch e0: the global epoch may advance at
  // most once past it but can never complete two advances, so nothing
  // retired after its pin may be freed... precisely: objects retired in
  // epochs >= e0 cannot be freed while the reader stays pinned.
  EXPECT_LE(domain.current_epoch(), e0 + 1);
  release_reader.store(true);
  reader.join();
  domain.drain_all_unsafe();
  EXPECT_EQ(freed.load(), 1000);
}

TEST(Epoch, NestedPinsAreBalanced) {
  reclaim::epoch domain;
  auto g1 = domain.pin();
  {
    auto g2 = domain.pin();
    auto g3 = domain.pin();
  }
  SUCCEED();  // inner guards must not clear the outer pin (asserts fire
              // on imbalance)
}

TEST(Epoch, StressNoUseAfterFree) {
  // Writers continuously retire canaries they just unpublished from a
  // shared slot; readers pin, load the slot, and verify the canary is
  // alive. Any grace-period bug turns the canary dead under a reader.
  reclaim::epoch domain;
  std::atomic<int> freed{0};
  std::atomic<canary*> slot{new canary};
  std::atomic<bool> stop{false};

  std::thread writer([&] {
    for (int i = 0; i < 20'000; ++i) {
      auto g = domain.pin();
      auto* fresh = new canary;
      canary* old = slot.exchange(fresh, std::memory_order_acq_rel);
      domain.retire(
          old,
          +[](void* obj, void* ctr) noexcept {
            auto* c = static_cast<canary*>(obj);
            c->state = canary::dead;
            static_cast<std::atomic<int>*>(ctr)->fetch_add(1);
            delete c;
          },
          &freed);
    }
    stop.store(true);
  });

  std::vector<std::thread> readers;
  std::atomic<std::uint64_t> dead_reads{0};
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        auto g = domain.pin();
        canary* c = slot.load(std::memory_order_acquire);
        if (c->state != canary::alive) dead_reads.fetch_add(1);
      }
    });
  }
  writer.join();
  for (auto& t : readers) t.join();
  EXPECT_EQ(dead_reads.load(), 0u);
  domain.drain_all_unsafe();
  delete slot.load();
  EXPECT_EQ(freed.load(), 20'000);
}

TEST(Epoch, PendingCountsAccurately) {
  reclaim::epoch domain;
  std::atomic<int> freed{0};
  std::vector<canary> cs(10);
  {
    auto g = domain.pin();
    for (auto& c : cs) domain.retire(&c, &canary_deleter, &freed);
  }
  EXPECT_EQ(domain.pending(), 10u);
  domain.drain_all_unsafe();
  EXPECT_EQ(domain.pending(), 0u);
}

#if !defined(LFBST_DISABLE_ASSERTS)
// Retiring while not pinned is a contract violation, not a quiet leak:
// an unpinned retire can land in a bucket that flushes while the caller
// still holds the pointer. The retire asserts on guard nesting.
TEST(EpochDeathTest, RetireWhileUnpinnedAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  reclaim::epoch domain;
  std::atomic<int> freed{0};
  canary c;
  EXPECT_DEATH(domain.retire(&c, &canary_deleter, &freed),
               "epoch::retire called while not pinned");
}
#endif

TEST(Epoch, DrainResetsHighWaterAndScanCadence) {
  reclaim::epoch domain;
  std::atomic<int> freed{0};
  std::vector<canary> cs(100);
  for (auto& c : cs) {
    auto g = domain.pin();
    domain.retire(&c, &canary_deleter, &freed);
  }
  EXPECT_GT(domain.pending_high_water(), 0u);

  // 100 retires leave the advance countdown mid-cycle (100 mod 64). The
  // drain must zero the counters AND restart the countdown: a fresh
  // phase that inherits a stale countdown advances the epoch early,
  // which is how multi-phase tests lose their determinism.
  domain.drain_all_unsafe();
  EXPECT_EQ(domain.pending(), 0u);
  EXPECT_EQ(domain.pending_high_water(), 0u);

  const std::uint64_t e0 = domain.current_epoch();
  std::vector<canary> fresh(63);  // one short of scan_interval
  for (auto& c : fresh) {
    auto g = domain.pin();
    domain.retire(&c, &canary_deleter, &freed);
  }
  // No advance attempt may have run yet; a stale countdown would have
  // triggered one mid-loop.
  EXPECT_EQ(domain.current_epoch(), e0);
  domain.drain_all_unsafe();
}

TEST(Epoch, ThreadChurnPhasesNeitherLeakNorDoubleFree) {
  // Thread slots are recycled across phases: each phase spawns fresh
  // threads that retire heap canaries, joins them, then drains. Every
  // canary must be freed exactly once — the deleter counts, and the
  // `delete` makes ASan/valgrind catch a double free outright.
  reclaim::epoch domain;
  std::atomic<int> freed{0};
  constexpr int kPhases = 4;
  constexpr int kThreads = 4;
  constexpr int kRetiresPerThread = 500;
  for (int phase = 0; phase < kPhases; ++phase) {
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t) {
      workers.emplace_back([&domain, &freed] {
        for (int i = 0; i < kRetiresPerThread; ++i) {
          auto g = domain.pin();
          domain.retire(
              new canary,
              +[](void* obj, void* ctr) noexcept {
                auto* c = static_cast<canary*>(obj);
                c->state = canary::dead;
                static_cast<std::atomic<int>*>(ctr)->fetch_add(1);
                delete c;
              },
              &freed);
        }
      });
    }
    for (auto& w : workers) w.join();
    domain.drain_all_unsafe();
    EXPECT_EQ(freed.load(), (phase + 1) * kThreads * kRetiresPerThread);
    EXPECT_EQ(domain.pending(), 0u);
    EXPECT_EQ(domain.pending_high_water(), 0u);
  }
}

TEST(Leaky, InterfaceIsInert) {
  reclaim::leaky r;
  [[maybe_unused]] auto g = r.pin();
  canary c;
  std::atomic<int> freed{0};
  r.retire(&c, &canary_deleter, &freed);
  r.drain_all_unsafe();
  EXPECT_EQ(freed.load(), 0);  // leaky never runs deleters
  EXPECT_EQ(c.state, canary::alive);
  EXPECT_EQ(r.pending(), 0u);
}

}  // namespace
}  // namespace lfbst
