// Tests for the linearizability checker itself (known-good and
// known-bad hand histories), then recorded histories from every tree:
// hundreds of small random concurrent executions, each verified against
// the sequential set specification.
#include "lincheck/lincheck.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/barrier.hpp"
#include "common/rng.hpp"
#include "lfbst/lfbst.hpp"
#include "lincheck/recorder.hpp"

namespace lfbst {
namespace {

using lincheck::checker;
using lincheck::history;
using lincheck::op_kind;
using lincheck::operation;

// --- checker unit tests on hand-built histories -----------------------------

TEST(LincheckChecker, EmptyHistoryIsLinearizable) {
  EXPECT_TRUE(checker::is_linearizable({}));
}

TEST(LincheckChecker, SequentialLegalHistory) {
  history h{
      {op_kind::insert, 1, true, 0, 1},
      {op_kind::contains, 1, true, 2, 3},
      {op_kind::erase, 1, true, 4, 5},
      {op_kind::contains, 1, false, 6, 7},
  };
  EXPECT_TRUE(checker::is_linearizable(h));
}

TEST(LincheckChecker, SequentialIllegalHistory) {
  // contains(1)=true before any insert completed or overlapped: illegal.
  history h{
      {op_kind::contains, 1, true, 0, 1},
      {op_kind::insert, 1, true, 2, 3},
  };
  EXPECT_FALSE(checker::is_linearizable(h));
}

TEST(LincheckChecker, OverlapAllowsEitherOrder) {
  // insert(1) and contains(1) overlap: result true and false are both
  // linearizable.
  for (bool seen : {true, false}) {
    history h{
        {op_kind::insert, 1, true, 0, 10},
        {op_kind::contains, 1, seen, 1, 9},
    };
    EXPECT_TRUE(checker::is_linearizable(h)) << seen;
  }
}

TEST(LincheckChecker, RealTimeOrderIsEnforced) {
  // insert(1) completed strictly before contains(1) began: the read must
  // see it.
  history h{
      {op_kind::insert, 1, true, 0, 1},
      {op_kind::contains, 1, false, 2, 3},
  };
  EXPECT_FALSE(checker::is_linearizable(h));
}

TEST(LincheckChecker, DoubleInsertBothTrueIsIllegal) {
  history h{
      {op_kind::insert, 5, true, 0, 10},
      {op_kind::insert, 5, true, 1, 9},
  };
  EXPECT_FALSE(checker::is_linearizable(h));
}

TEST(LincheckChecker, DoubleInsertOneFalseIsLegal) {
  history h{
      {op_kind::insert, 5, true, 0, 10},
      {op_kind::insert, 5, false, 1, 9},
  };
  EXPECT_TRUE(checker::is_linearizable(h));
}

TEST(LincheckChecker, DuelingErasesOnlyOneWins) {
  history good{
      {op_kind::insert, 3, true, 0, 1},
      {op_kind::erase, 3, true, 2, 10},
      {op_kind::erase, 3, false, 3, 9},
  };
  EXPECT_TRUE(checker::is_linearizable(good));
  history bad{
      {op_kind::insert, 3, true, 0, 1},
      {op_kind::erase, 3, true, 2, 10},
      {op_kind::erase, 3, true, 3, 9},
  };
  EXPECT_FALSE(checker::is_linearizable(bad));
}

TEST(LincheckChecker, InitialStateRespected) {
  history h{{op_kind::contains, 2, true, 0, 1}};
  EXPECT_FALSE(checker::is_linearizable(h));
  EXPECT_TRUE(checker::is_linearizable(h, /*initial_state=*/1u << 2));
}

TEST(LincheckChecker, InterleavedChainNeedsReordering) {
  // Legal only if ops linearize in a non-invocation order within their
  // overlap windows — exercises the search, not just the fast path.
  history h{
      {op_kind::insert, 1, true, 0, 20},    // A
      {op_kind::erase, 1, true, 1, 19},     // B (needs A first)
      {op_kind::contains, 1, false, 2, 18}, // C (after B or before A)
      {op_kind::insert, 1, true, 3, 17},    // D (after B)
      {op_kind::contains, 1, true, 4, 16},  // E (between A/B or after D)
  };
  EXPECT_TRUE(checker::is_linearizable(h));
}

TEST(LincheckChecker, LostUpdateIsCaught) {
  // Two sequential inserts of different keys, then reads that disagree
  // with both orders.
  history h{
      {op_kind::insert, 1, true, 0, 1},
      {op_kind::insert, 2, true, 2, 3},
      {op_kind::contains, 1, false, 4, 5},  // must be true: nothing erased
  };
  EXPECT_FALSE(checker::is_linearizable(h));
}

// --- recorded histories from the real trees ---------------------------------

template <typename Tree>
void run_recorded_histories(int rounds) {
  pcg32 seed_rng(987);
  for (int round = 0; round < rounds; ++round) {
    Tree tree;
    lincheck::recorder rec;
    constexpr unsigned kThreads = 3;
    constexpr int kOpsPerThread = 6;  // 18 ops: fast to check exhaustively
    spin_barrier barrier(kThreads);
    std::vector<std::thread> threads;
    const std::uint64_t base_seed = seed_rng.next64();
    for (unsigned tid = 0; tid < kThreads; ++tid) {
      threads.emplace_back([&, tid] {
        pcg32 rng = pcg32::for_thread(base_seed, tid);
        barrier.arrive_and_wait();
        for (int i = 0; i < kOpsPerThread; ++i) {
          const int key = static_cast<int>(rng.bounded(4));  // hot keys
          switch (rng.bounded(3)) {
            case 0:
              rec.insert(tree, key);
              break;
            case 1:
              rec.erase(tree, key);
              break;
            default:
              rec.contains(tree, key);
          }
        }
      });
    }
    for (auto& t : threads) t.join();
    const history h = rec.take();
    ASSERT_TRUE(checker::is_linearizable(h))
        << Tree::algorithm_name << " produced a non-linearizable history "
        << "in round " << round << " (seed " << base_seed << ")";
  }
}

TEST(LincheckTrees, NmTreeHistoriesAreLinearizable) {
  run_recorded_histories<nm_tree<long>>(300);
}

TEST(LincheckTrees, NmTreeEpochHistoriesAreLinearizable) {
  run_recorded_histories<nm_tree<long, std::less<long>, reclaim::epoch>>(
      200);
}

TEST(LincheckTrees, EfrbTreeHistoriesAreLinearizable) {
  run_recorded_histories<efrb_tree<long>>(200);
}

TEST(LincheckTrees, HjTreeHistoriesAreLinearizable) {
  run_recorded_histories<hj_tree<long>>(200);
}

TEST(LincheckTrees, BccoTreeHistoriesAreLinearizable) {
  run_recorded_histories<bcco_tree<long>>(200);
}

TEST(LincheckTrees, CoarseTreeHistoriesAreLinearizable) {
  run_recorded_histories<coarse_tree<long>>(100);
}

TEST(LincheckTrees, KaryTreeHistoriesAreLinearizable) {
  // K = 2 leaves hold one key, so the hot-key soup drives SPROUT and
  // COALESCE on nearly every structural operation.
  run_recorded_histories<kary_tree<long, 2>>(200);
}

TEST(LincheckTrees, KaryTreeWideHistoriesAreLinearizable) {
  run_recorded_histories<kary_tree<long, 8>>(200);
}

TEST(LincheckTrees, KaryTreeHazardHistoriesAreLinearizable) {
  run_recorded_histories<
      kary_tree<long, 8, std::less<long>, reclaim::hazard>>(200);
}

}  // namespace
}  // namespace lfbst
