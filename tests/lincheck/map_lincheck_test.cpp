// Tests for the map-history linearizability checker, plus recorded
// nm_map histories: the single-CAS insert_or_assign replace path gets
// the same exhaustive verification the set operations get.
#include "lincheck/map_lincheck.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/barrier.hpp"
#include "common/rng.hpp"
#include "core/nm_map.hpp"
#include "reclaim/epoch.hpp"

namespace lfbst {
namespace {

using lincheck::map_checker;
using lincheck::map_history;
using lincheck::map_op_kind;
using lincheck::map_operation;

map_operation op(map_op_kind k, int key, std::int64_t value, bool result,
                 std::uint64_t invoke, std::uint64_t response,
                 bool found = false, std::int64_t observed = 0) {
  return map_operation{k, key, value, result, found, observed, invoke,
                       response};
}

TEST(MapChecker, EmptyHistory) {
  EXPECT_TRUE(map_checker::is_linearizable({}));
}

TEST(MapChecker, SequentialLegal) {
  map_history h{
      op(map_op_kind::insert, 1, 100, true, 0, 1),
      op(map_op_kind::get, 1, 0, true, 2, 3, true, 100),
      op(map_op_kind::insert_assign, 1, 200, false, 4, 5),
      op(map_op_kind::get, 1, 0, true, 6, 7, true, 200),
      op(map_op_kind::erase, 1, 0, true, 8, 9),
      op(map_op_kind::get, 1, 0, false, 10, 11, false, 0),
  };
  EXPECT_TRUE(map_checker::is_linearizable(h));
}

TEST(MapChecker, StaleValueReadIsCaught) {
  // get observes 100 strictly after the assign to 200 completed.
  map_history h{
      op(map_op_kind::insert, 1, 100, true, 0, 1),
      op(map_op_kind::insert_assign, 1, 200, false, 2, 3),
      op(map_op_kind::get, 1, 0, true, 4, 5, true, 100),
  };
  EXPECT_FALSE(map_checker::is_linearizable(h));
}

TEST(MapChecker, OverlappingAssignAllowsEitherValue) {
  for (std::int64_t seen : {100L, 200L}) {
    map_history h{
        op(map_op_kind::insert, 1, 100, true, 0, 1),
        op(map_op_kind::insert_assign, 1, 200, false, 2, 10),
        op(map_op_kind::get, 1, 0, true, 3, 9, true, seen),
    };
    EXPECT_TRUE(map_checker::is_linearizable(h)) << seen;
  }
}

TEST(MapChecker, InsertDoesNotOverwrite) {
  map_history h{
      op(map_op_kind::insert, 1, 100, true, 0, 1),
      op(map_op_kind::insert, 1, 200, false, 2, 3),  // keeps 100
      op(map_op_kind::get, 1, 0, true, 4, 5, true, 200),  // impossible
  };
  EXPECT_FALSE(map_checker::is_linearizable(h));
}

TEST(MapChecker, InsertAssignResultDistinguishesInsertFromAssign) {
  // Two sequential insert_or_assign calls: first must report inserted,
  // second must report assigned.
  map_history good{
      op(map_op_kind::insert_assign, 5, 1, true, 0, 1),
      op(map_op_kind::insert_assign, 5, 2, false, 2, 3),
  };
  EXPECT_TRUE(map_checker::is_linearizable(good));
  map_history bad{
      op(map_op_kind::insert_assign, 5, 1, true, 0, 1),
      op(map_op_kind::insert_assign, 5, 2, true, 2, 3),
  };
  EXPECT_FALSE(map_checker::is_linearizable(bad));
}

TEST(MapChecker, ValueFromNowhereIsCaught) {
  map_history h{
      op(map_op_kind::insert, 1, 100, true, 0, 1),
      op(map_op_kind::get, 1, 0, true, 2, 3, true, 777),  // never written
  };
  EXPECT_FALSE(map_checker::is_linearizable(h));
}

TEST(MapChecker, EraseThenGetOverlapping) {
  for (bool found : {true, false}) {
    map_history h{
        op(map_op_kind::insert, 2, 42, true, 0, 1),
        op(map_op_kind::erase, 2, 0, true, 2, 10),
        op(map_op_kind::get, 2, 0, found, 3, 9, found, found ? 42 : 0),
    };
    EXPECT_TRUE(map_checker::is_linearizable(h)) << found;
  }
}

// --- recorded histories from the real map ----------------------------------

template <typename MapType>
void run_recorded_map_histories(int rounds) {
  pcg32 seed_rng(555);
  for (int round = 0; round < rounds; ++round) {
    MapType map;
    lincheck::map_recorder rec;
    constexpr unsigned kThreads = 3;
    constexpr int kOpsPerThread = 6;
    spin_barrier barrier(kThreads);
    std::vector<std::thread> threads;
    const std::uint64_t base_seed = seed_rng.next64();
    for (unsigned tid = 0; tid < kThreads; ++tid) {
      threads.emplace_back([&, tid] {
        pcg32 rng = pcg32::for_thread(base_seed, tid);
        barrier.arrive_and_wait();
        for (int i = 0; i < kOpsPerThread; ++i) {
          const int key = static_cast<int>(rng.bounded(3));  // hot keys
          const auto value =
              static_cast<std::int64_t>(1 + rng.bounded(100));
          switch (rng.bounded(4)) {
            case 0:
              rec.insert(map, key, value);
              break;
            case 1:
              rec.insert_or_assign(map, key, value);
              break;
            case 2:
              rec.erase(map, key);
              break;
            default:
              rec.get(map, key);
          }
        }
      });
    }
    for (auto& t : threads) t.join();
    const map_history h = rec.take();
    ASSERT_TRUE(map_checker::is_linearizable(h))
        << "non-linearizable map history in round " << round << " (seed "
        << base_seed << ")";
  }
}

TEST(MapLincheck, NmMapHistoriesAreLinearizable) {
  run_recorded_map_histories<nm_map<long, std::int64_t>>(250);
}

TEST(MapLincheck, NmMapEpochHistoriesAreLinearizable) {
  run_recorded_map_histories<
      nm_map<long, std::int64_t, std::less<long>, reclaim::epoch>>(150);
}

}  // namespace
}  // namespace lfbst
