// Unit tests for the PCG32/splitmix64 generators: determinism (test
// replayability depends on it), stream independence, bound behaviour and
// rough uniformity — enough to trust the workload generator.
#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <set>
#include <vector>

namespace lfbst {
namespace {

TEST(Splitmix64, IsDeterministic) {
  std::uint64_t s1 = 42, s2 = 42;
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(splitmix64(s1), splitmix64(s2));
  }
}

TEST(Splitmix64, AdvancesState) {
  std::uint64_t s = 42;
  const std::uint64_t a = splitmix64(s);
  const std::uint64_t b = splitmix64(s);
  EXPECT_NE(a, b);
}

TEST(Pcg32, SameSeedSameSequence) {
  pcg32 a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Pcg32, DifferentSeedsDifferentSequences) {
  pcg32 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 1000; ++i) same += (a() == b());
  EXPECT_LT(same, 5);
}

TEST(Pcg32, DifferentStreamsDiverge) {
  pcg32 a(1, 10), b(1, 11);
  int same = 0;
  for (int i = 0; i < 1000; ++i) same += (a() == b());
  EXPECT_LT(same, 5);
}

TEST(Pcg32, ForThreadDecorrelatesAdjacentTids) {
  pcg32 a = pcg32::for_thread(7, 0);
  pcg32 b = pcg32::for_thread(7, 1);
  int same = 0;
  for (int i = 0; i < 1000; ++i) same += (a() == b());
  EXPECT_LT(same, 5);
}

TEST(Pcg32, BoundedStaysInBounds) {
  pcg32 rng(99);
  for (std::uint32_t bound : {1u, 2u, 3u, 10u, 1000u, 1u << 31}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.bounded(bound), bound);
    }
  }
}

TEST(Pcg32, BoundedOneAlwaysZero) {
  pcg32 rng(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.bounded(1), 0u);
}

TEST(Pcg32, BoundedRoughlyUniform) {
  // Chi-squared-ish sanity: 10 buckets, 100k draws; every bucket within
  // 20% of expectation. Catastrophic bias would blow through this.
  pcg32 rng(2024);
  std::array<int, 10> buckets{};
  const int draws = 100'000;
  for (int i = 0; i < draws; ++i) ++buckets[rng.bounded(10)];
  for (int b : buckets) {
    EXPECT_GT(b, draws / 10 * 0.8);
    EXPECT_LT(b, draws / 10 * 1.2);
  }
}

TEST(Pcg32, Next64UsesFullWidth) {
  pcg32 rng(77);
  bool high_bits_seen = false;
  for (int i = 0; i < 100; ++i) {
    if (rng.next64() >> 32 != 0) high_bits_seen = true;
  }
  EXPECT_TRUE(high_bits_seen);
}

TEST(Pcg32, Uniform01InRange) {
  pcg32 rng(31337);
  for (int i = 0; i < 10'000; ++i) {
    const double d = rng.uniform01();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Pcg32, Uniform01MeanNearHalf) {
  pcg32 rng(8);
  double sum = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) sum += rng.uniform01();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Pcg32, NoShortCycles) {
  // The first million outputs of one stream should not repeat a 4-tuple
  // starting point; cheap detector for degenerate seeding.
  pcg32 rng(0);  // worst-case seed
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_TRUE(seen.insert(rng.next64()).second) << "cycle at " << i;
  }
}

}  // namespace
}  // namespace lfbst
