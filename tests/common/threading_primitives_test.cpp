// Unit tests for the small concurrency utilities: spinlock mutual
// exclusion, spin-barrier rendezvous and reuse, dense thread ids, and
// backoff's termination behaviour.
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "common/backoff.hpp"
#include "common/barrier.hpp"
#include "common/spinlock.hpp"
#include "common/thread_id.hpp"

namespace lfbst {
namespace {

TEST(Spinlock, ProvidesMutualExclusion) {
  spinlock lock;
  long counter = 0;  // deliberately non-atomic: the lock must protect it
  std::vector<std::thread> threads;
  constexpr int kThreads = 4, kIters = 50'000;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        std::lock_guard<spinlock> g(lock);
        ++counter;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter, static_cast<long>(kThreads) * kIters);
}

TEST(Spinlock, TryLockFailsWhenHeld) {
  spinlock lock;
  lock.lock();
  EXPECT_FALSE(lock.try_lock());
  lock.unlock();
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

TEST(Spinlock, WorksWithScopedLock) {
  spinlock a, b;
  std::scoped_lock g(a, b);
  EXPECT_TRUE(a.is_locked_hint());
  EXPECT_TRUE(b.is_locked_hint());
}

TEST(SpinBarrier, ReleasesAllParties) {
  constexpr unsigned kParties = 4;
  spin_barrier barrier(kParties);
  std::atomic<int> before{0}, after{0};
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kParties; ++t) {
    threads.emplace_back([&] {
      before.fetch_add(1);
      barrier.arrive_and_wait();
      after.fetch_add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(before.load(), static_cast<int>(kParties));
  EXPECT_EQ(after.load(), static_cast<int>(kParties));
}

TEST(SpinBarrier, IsReusableAcrossGenerations) {
  constexpr unsigned kParties = 3;
  constexpr int kGenerations = 100;
  spin_barrier barrier(kParties);
  std::atomic<int> phase_sum{0};
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kParties; ++t) {
    threads.emplace_back([&] {
      for (int g = 0; g < kGenerations; ++g) {
        barrier.arrive_and_wait();
        phase_sum.fetch_add(1);
        barrier.arrive_and_wait();
        // Between the two barriers every thread of the generation has
        // incremented; the count must be a multiple of kParties.
        EXPECT_EQ(phase_sum.load() % kParties, 0u);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(phase_sum.load(), static_cast<int>(kParties) * kGenerations);
}

TEST(ThreadId, StableWithinThread) {
  const unsigned a = this_thread_index();
  const unsigned b = this_thread_index();
  EXPECT_EQ(a, b);
}

TEST(ThreadId, DistinctAcrossLiveThreads) {
  std::mutex m;
  std::set<unsigned> ids;
  std::atomic<int> armed{0};
  std::atomic<bool> release{false};
  std::vector<std::thread> threads;
  constexpr int kThreads = 8;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      const unsigned id = this_thread_index();
      {
        std::lock_guard<std::mutex> g(m);
        ids.insert(id);
      }
      armed.fetch_add(1);
      while (!release.load()) std::this_thread::yield();
    });
  }
  while (armed.load() < kThreads) std::this_thread::yield();
  release.store(true);
  for (auto& t : threads) t.join();
  EXPECT_EQ(ids.size(), static_cast<std::size_t>(kThreads));
  for (unsigned id : ids) EXPECT_LT(id, max_threads);
}

TEST(ThreadId, SlotsAreRecycled) {
  // Sequential short-lived threads must not exhaust the table.
  for (int i = 0; i < 2 * static_cast<int>(max_threads); ++i) {
    std::thread([] { (void)this_thread_index(); }).join();
  }
  SUCCEED();
}

TEST(Backoff, TerminatesAndEscalates) {
  backoff b(1, 8);
  for (int i = 0; i < 100; ++i) b();  // must not hang even past threshold
  b.reset();
  SUCCEED();
}

}  // namespace
}  // namespace lfbst
