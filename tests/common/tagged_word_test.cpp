// Unit tests for the tagged-pointer substrate: packing, mark semantics,
// CAS behaviour, and both tagging primitives (BTS and CAS-only) — the
// bedrock the NM algorithm's freeze property stands on.
#include "common/tagged_word.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

namespace lfbst {
namespace {

struct dummy_node {
  int payload;
};

using ptr_t = tagged_ptr<dummy_node>;
using word_t = tagged_word<dummy_node>;

TEST(TaggedPtr, DefaultIsNullAndClean) {
  ptr_t p;
  EXPECT_EQ(p.address(), nullptr);
  EXPECT_FALSE(p.flagged());
  EXPECT_FALSE(p.tagged());
  EXPECT_FALSE(p.marked());
}

TEST(TaggedPtr, PacksAddressAndMarksIndependently) {
  dummy_node n{7};
  for (bool flag : {false, true}) {
    for (bool tag : {false, true}) {
      ptr_t p(&n, flag, tag);
      EXPECT_EQ(p.address(), &n);
      EXPECT_EQ(p.flagged(), flag);
      EXPECT_EQ(p.tagged(), tag);
      EXPECT_EQ(p.marked(), flag || tag);
    }
  }
}

TEST(TaggedPtr, CleanFactoryClearsMarks) {
  dummy_node n{0};
  ptr_t p = ptr_t::clean(&n);
  EXPECT_EQ(p.address(), &n);
  EXPECT_FALSE(p.marked());
}

TEST(TaggedPtr, WithMarksPreservesAddress) {
  dummy_node n{0};
  ptr_t p = ptr_t::clean(&n);
  ptr_t q = p.with_marks(true, false);
  EXPECT_EQ(q.address(), &n);
  EXPECT_TRUE(q.flagged());
  EXPECT_FALSE(q.tagged());
  ptr_t r = q.with_marks(false, true);
  EXPECT_EQ(r.address(), &n);
  EXPECT_FALSE(r.flagged());
  EXPECT_TRUE(r.tagged());
}

TEST(TaggedPtr, EqualityIsBitwise) {
  dummy_node n{0};
  EXPECT_EQ(ptr_t::clean(&n), ptr_t::clean(&n));
  EXPECT_NE(ptr_t::clean(&n), ptr_t(&n, true, false));
  EXPECT_NE(ptr_t(&n, true, false), ptr_t(&n, false, true));
}

TEST(TaggedPtr, RawRoundTrips) {
  dummy_node n{0};
  ptr_t p(&n, true, true);
  EXPECT_EQ(ptr_t::from_raw(p.raw()), p);
}

TEST(TaggedWord, LoadSeesStore) {
  dummy_node n{0};
  word_t w;
  w.store_relaxed(ptr_t::clean(&n));
  EXPECT_EQ(w.load().address(), &n);
}

TEST(TaggedWord, CasSucceedsOnExactMatch) {
  dummy_node a{0}, b{0};
  word_t w(ptr_t::clean(&a));
  ptr_t expected = ptr_t::clean(&a);
  EXPECT_TRUE(w.compare_exchange(expected, ptr_t::clean(&b)));
  EXPECT_EQ(w.load().address(), &b);
}

TEST(TaggedWord, CasFailsOnMarkMismatchAndReportsObserved) {
  // An insert expecting a clean edge must fail when a delete has flagged
  // it — the exact conflict Alg. 2 line 51/55 handles.
  dummy_node a{0}, b{0};
  word_t w(ptr_t(&a, /*flagged=*/true, /*tagged=*/false));
  ptr_t expected = ptr_t::clean(&a);
  EXPECT_FALSE(w.compare_exchange(expected, ptr_t::clean(&b)));
  EXPECT_EQ(expected.address(), &a);  // observed value reported back
  EXPECT_TRUE(expected.flagged());
  EXPECT_EQ(w.load().address(), &a);  // word unchanged
}

TEST(TaggedWord, BtsSetsTagAndReturnsPriorValue) {
  dummy_node a{0};
  word_t w(ptr_t(&a, /*flagged=*/true, /*tagged=*/false));
  ptr_t before = w.bts_tag();
  EXPECT_TRUE(before.flagged());
  EXPECT_FALSE(before.tagged());  // prior value had no tag
  ptr_t after = w.load();
  EXPECT_TRUE(after.flagged());  // flag preserved (Alg. 4 line 107 relies
  EXPECT_TRUE(after.tagged());   // on copying it to the new edge)
  EXPECT_EQ(after.address(), &a);
}

TEST(TaggedWord, BtsIsIdempotent) {
  dummy_node a{0};
  word_t w(ptr_t::clean(&a));
  w.bts_tag();
  ptr_t before_second = w.bts_tag();
  EXPECT_TRUE(before_second.tagged());
  EXPECT_TRUE(w.load().tagged());
}

TEST(TaggedWord, CasOnlyTaggingMatchesBtsSemantics) {
  dummy_node a{0};
  word_t w1(ptr_t(&a, true, false));
  word_t w2(ptr_t(&a, true, false));
  ptr_t r1 = w1.bts_tag();
  ptr_t r2 = w2.bts_tag_cas_only();
  EXPECT_EQ(r1, r2);
  EXPECT_EQ(w1.load(), w2.load());
}

TEST(TaggedWord, CasCannotOverwriteMarkedWord) {
  // Once marked, the word is frozen against the clean-expected CAS used
  // by inserts and by cleanup's ancestor swing.
  dummy_node a{0}, b{0};
  word_t w(ptr_t::clean(&a));
  w.bts_tag();
  ptr_t expected = ptr_t::clean(&a);
  EXPECT_FALSE(w.compare_exchange(expected, ptr_t::clean(&b)));
  EXPECT_EQ(w.load().address(), &a);
}

TEST(TaggedWord, ConcurrentBtsNeverLosesFlag) {
  // Hammer one word with concurrent taggers while the flag is set;
  // the flag must survive (tagging may not clobber other bits).
  dummy_node a{0};
  word_t w(ptr_t(&a, /*flagged=*/true, /*tagged=*/false));
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&w] {
      for (int i = 0; i < 10'000; ++i) w.bts_tag();
    });
  }
  for (auto& t : threads) t.join();
  ptr_t final = w.load();
  EXPECT_TRUE(final.flagged());
  EXPECT_TRUE(final.tagged());
  EXPECT_EQ(final.address(), &a);
}

TEST(TaggedWord, ConcurrentCasExactlyOneWinner) {
  // N threads race to swing the same clean edge; exactly one CAS
  // succeeds — the property that makes the injection point unique.
  dummy_node a{0};
  std::vector<dummy_node> candidates(8);
  word_t w(ptr_t::clean(&a));
  std::atomic<int> winners{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      ptr_t expected = ptr_t::clean(&a);
      if (w.compare_exchange(expected, ptr_t::clean(&candidates[t]))) {
        winners.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(winners.load(), 1);
}

TEST(TaggedWord, SizeIsOneWord) {
  EXPECT_EQ(sizeof(word_t), sizeof(std::uintptr_t));
}

}  // namespace
}  // namespace lfbst
