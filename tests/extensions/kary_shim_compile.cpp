// Compile-only coverage for the extensions/kary_tree.hpp deprecation
// shim: the old include path must still build a working tree, and the
// build log must carry the #pragma message pointing at the new home
// (the ctest registration greps the build output for it — see
// tests/CMakeLists.txt). No gtest: existing behaviour lives in the
// multiway suites; this target only pins the shim.
#include "extensions/kary_tree.hpp"

namespace {

// Instantiate through the shim so a header that stopped forwarding the
// real tree fails here, not in a downstream user.
[[maybe_unused]] bool shim_still_forwards_the_tree() {
  lfbst::kary_tree<long, 8> t;
  if (!t.insert(1)) return false;
  return t.contains(1) && !t.contains(2);
}

}  // namespace

int main() { return shim_still_forwards_the_tree() ? 0 : 1; }
