// Pins the static per-operation costs of the k-ary extension, in the
// spirit of the paper's Table 1. Uncontended:
//
//   insert (replace)  : 2 allocations (leaf + record), 3 CAS
//   insert (sprout)   : K+2 allocations, 3 CAS
//   delete (replace)  : 2 allocations, 3 CAS
//   delete (coalesce) : 2 allocations (union leaf + record), 4 CAS
//   search            : 0 atomics, 0 allocations
#include <gtest/gtest.h>

#include "core/stats.hpp"
#include "multiway/kary_tree.hpp"

namespace lfbst {
namespace {

using counting = stats::counting;
constexpr unsigned K = 4;
using counted_kst =
    kary_tree<long, K, std::less<long>, reclaim::leaky, counting>;

template <typename F>
stats::op_record measure(F&& op) {
  const auto before = counting::snapshot();
  op();
  return counting::delta(before);
}

TEST(KaryCounts, SearchExecutesNoAtomics) {
  counted_kst t;
  t.insert(10);
  const auto d = measure([&] {
    ASSERT_TRUE(t.contains(10));
    ASSERT_FALSE(t.contains(11));
  });
  EXPECT_EQ(d.atomics(), 0u);
  EXPECT_EQ(d.objects_allocated, 0u);
}

TEST(KaryCounts, ReplaceInsertIsThreeCasTwoAllocations) {
  counted_kst t;
  t.insert(10);  // leaf has room for K-1 = 3 keys
  const auto d = measure([&] { ASSERT_TRUE(t.insert(20)); });
  EXPECT_EQ(d.objects_allocated, 2u);  // replacement leaf + record
  EXPECT_EQ(d.cas_executed, 3u);       // flag + child swing + unflag
  EXPECT_EQ(d.bts_executed, 0u);
}

TEST(KaryCounts, SproutInsertAllocatesKPlusTwo) {
  counted_kst t;
  for (long k = 0; k < K - 1; ++k) ASSERT_TRUE(t.insert(k));  // leaf full
  const auto d = measure([&] { ASSERT_TRUE(t.insert(100)); });
  // Internal node + K unit leaves + record.
  EXPECT_EQ(d.objects_allocated, K + 2u);
  EXPECT_EQ(d.cas_executed, 3u);
}

TEST(KaryCounts, ReplaceDeleteIsThreeCasTwoAllocations) {
  counted_kst t;
  t.insert(10);
  t.insert(20);
  const auto d = measure([&] { ASSERT_TRUE(t.erase(10)); });
  EXPECT_EQ(d.objects_allocated, 2u);  // smaller leaf + record
  EXPECT_EQ(d.cas_executed, 3u);
}

TEST(KaryCounts, CoalesceDeleteIsFourCas) {
  counted_kst t;
  // Sprout once so a grandparent exists, then drain until the next
  // delete must coalesce: K keys → sprouted internal with K unit
  // leaves; deleting one leaves K-1 keys ≤ capacity ⇒ coalesce.
  for (long k = 0; k < K; ++k) ASSERT_TRUE(t.insert(k));
  const auto d = measure([&] { ASSERT_TRUE(t.erase(0)); });
  // DFLAG(gp) + MARK(p) + gp child swing + unflag(gp); the cascading
  // collapse probe ends at the root sentinel without publishing.
  EXPECT_EQ(d.cas_executed, 4u);
  EXPECT_EQ(d.objects_allocated, 2u);  // union leaf + record
  EXPECT_FALSE(t.contains(0));
  for (long k = 1; k < K; ++k) EXPECT_TRUE(t.contains(k));
}

TEST(KaryCounts, FailedOpsCostNothingDurable) {
  counted_kst t;
  t.insert(5);
  const auto di = measure([&] { ASSERT_FALSE(t.insert(5)); });
  EXPECT_EQ(di.atomics(), 0u);
  EXPECT_EQ(di.objects_allocated, 0u);
  const auto dd = measure([&] { ASSERT_FALSE(t.erase(6)); });
  EXPECT_EQ(dd.atomics(), 0u);
  EXPECT_EQ(dd.objects_allocated, 0u);
}

TEST(KaryCounts, CostsIndependentOfTreeSize) {
  counted_kst t;
  for (long k = 0; k < 10'000; k += 2) t.insert(k);
  const auto di = measure([&] { ASSERT_TRUE(t.insert(10'001)); });
  EXPECT_EQ(di.cas_executed, 3u);
  const auto ds = measure([&] { ASSERT_TRUE(t.contains(10'001)); });
  EXPECT_EQ(ds.atomics(), 0u);
}

}  // namespace
}  // namespace lfbst
