// Tests for the k-ary search tree extension (paper §6 future work):
// fat-leaf mechanics (replace / sprout / coalesce), fanout sweeps via
// parameterized templates, oracle soups, concurrency and reclamation.
#include "multiway/kary_tree.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <set>
#include <thread>
#include <vector>

#include "common/barrier.hpp"
#include "common/rng.hpp"
#include "reclaim/epoch.hpp"

namespace lfbst {
namespace {

template <typename Tree>
class KaryTree : public ::testing::Test {
 public:
  Tree tree;
};

using Fanouts = ::testing::Types<
    kary_tree<long, 2>, kary_tree<long, 3>, kary_tree<long, 4>,
    kary_tree<long, 8>, kary_tree<long, 16>,
    kary_tree<long, 4, std::less<long>, reclaim::epoch>>;

class FanoutNames {
 public:
  template <typename T>
  static std::string GetName(int i) {
    return "K" + std::to_string(T::fanout) + "_" + std::to_string(i);
  }
};

TYPED_TEST_SUITE(KaryTree, Fanouts, FanoutNames);

TYPED_TEST(KaryTree, EmptyTree) {
  EXPECT_FALSE(this->tree.contains(1));
  EXPECT_FALSE(this->tree.erase(1));
  EXPECT_EQ(this->tree.size_slow(), 0u);
  EXPECT_EQ(this->tree.validate(), "");
}

TYPED_TEST(KaryTree, FillOneLeafThenSprout) {
  // Exactly leaf_capacity keys fit in the first leaf; one more sprouts.
  const unsigned cap = TypeParam::leaf_capacity;
  for (unsigned i = 0; i < cap; ++i) {
    ASSERT_TRUE(this->tree.insert(static_cast<long>(i)));
  }
  EXPECT_EQ(this->tree.size_slow(), cap);
  ASSERT_TRUE(this->tree.insert(static_cast<long>(cap)));  // sprout
  EXPECT_EQ(this->tree.size_slow(), cap + 1);
  for (unsigned i = 0; i <= cap; ++i) {
    EXPECT_TRUE(this->tree.contains(static_cast<long>(i))) << i;
  }
  EXPECT_EQ(this->tree.validate(), "");
}

TYPED_TEST(KaryTree, DrainTriggersCoalesce) {
  // Fill past a sprout, then drain completely: coalescing must collapse
  // the sprouted structure and the tree must end healthy and empty.
  const long n = static_cast<long>(TypeParam::fanout) * 4;
  for (long k = 0; k < n; ++k) ASSERT_TRUE(this->tree.insert(k));
  for (long k = 0; k < n; ++k) ASSERT_TRUE(this->tree.erase(k));
  EXPECT_EQ(this->tree.size_slow(), 0u);
  EXPECT_EQ(this->tree.validate(), "");
  // And the tree is fully reusable afterwards.
  for (long k = 0; k < n; ++k) ASSERT_TRUE(this->tree.insert(k));
  EXPECT_EQ(this->tree.size_slow(), static_cast<std::size_t>(n));
}

TYPED_TEST(KaryTree, DuplicatesRejected) {
  EXPECT_TRUE(this->tree.insert(5));
  EXPECT_FALSE(this->tree.insert(5));
  EXPECT_TRUE(this->tree.erase(5));
  EXPECT_FALSE(this->tree.erase(5));
}

TYPED_TEST(KaryTree, InOrderIteration) {
  pcg32 rng(7);
  std::set<long> oracle;
  for (int i = 0; i < 3000; ++i) {
    const long k = static_cast<long>(rng.next64() % 100'000);
    this->tree.insert(k);
    oracle.insert(k);
  }
  std::vector<long> seen;
  this->tree.for_each_slow([&seen](long k) { seen.push_back(k); });
  EXPECT_TRUE(std::is_sorted(seen.begin(), seen.end()));
  EXPECT_TRUE(
      std::equal(seen.begin(), seen.end(), oracle.begin(), oracle.end()));
}

TYPED_TEST(KaryTree, OracleSoup) {
  std::set<long> oracle;
  pcg32 rng(2014);
  for (int i = 0; i < 80'000; ++i) {
    const long k = rng.bounded(600);
    switch (rng.bounded(3)) {
      case 0:
        ASSERT_EQ(this->tree.insert(k), oracle.insert(k).second) << i;
        break;
      case 1:
        ASSERT_EQ(this->tree.erase(k), oracle.erase(k) > 0) << i;
        break;
      default:
        ASSERT_EQ(this->tree.contains(k), oracle.count(k) > 0) << i;
    }
  }
  EXPECT_EQ(this->tree.size_slow(), oracle.size());
  EXPECT_EQ(this->tree.validate(), "");
}

TYPED_TEST(KaryTree, HeightShrinksWithFanout) {
  std::set<long> keys;
  pcg32 rng(3);
  while (keys.size() < 4096) {
    const long k = static_cast<long>(rng.next64() % 1'000'000);
    if (keys.insert(k).second) {
      ASSERT_TRUE(this->tree.insert(k));
    }
  }
  // Random k-ary trees stay within a few multiples of log_K(n)+1.
  const double logk =
      std::log(4096.0) / std::log(static_cast<double>(TypeParam::fanout));
  EXPECT_LE(this->tree.height_slow(), static_cast<std::size_t>(4 * logk + 8));
}

TYPED_TEST(KaryTree, ConcurrentConservation) {
  auto& set = this->tree;
  constexpr unsigned kThreads = 4;
  std::atomic<long> net{0};
  spin_barrier barrier(kThreads);
  std::vector<std::thread> threads;
  for (unsigned tid = 0; tid < kThreads; ++tid) {
    threads.emplace_back([&, tid] {
      pcg32 rng = pcg32::for_thread(99, tid);
      long local = 0;
      barrier.arrive_and_wait();
      for (int i = 0; i < 30'000; ++i) {
        const long k = rng.bounded(200);
        if (rng.bounded(2) == 0) {
          if (set.insert(k)) ++local;
        } else {
          if (set.erase(k)) --local;
        }
      }
      net.fetch_add(local);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(set.size_slow(), static_cast<std::size_t>(net.load()));
  EXPECT_EQ(set.validate(), "");
}

TYPED_TEST(KaryTree, ConcurrentReadersSeeAnchors) {
  auto& set = this->tree;
  for (long a = 1; a <= 64; ++a) ASSERT_TRUE(set.insert(-a));
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> violations{0};
  std::thread churner([&] {
    pcg32 rng(5);
    for (int i = 0; i < 60'000; ++i) {
      const long k = rng.bounded(64);
      if (rng.bounded(2) == 0) {
        set.insert(k);
      } else {
        set.erase(k);
      }
    }
    stop.store(true);
  });
  std::thread reader([&] {
    pcg32 rng(6);
    while (!stop.load(std::memory_order_acquire)) {
      const long a = 1 + rng.bounded(64);
      if (!set.contains(-a)) violations.fetch_add(1);
    }
  });
  churner.join();
  reader.join();
  EXPECT_EQ(violations.load(), 0u);
  EXPECT_EQ(set.validate(), "");
}

// --- non-typed specifics ----------------------------------------------------

TEST(KaryTreeSpecific, K2DegeneratesToBinaryExternalShape) {
  // With K=2, leaves hold one key: structurally the EFRB/NM shape.
  kary_tree<long, 2> t;
  for (long k : {5L, 3L, 8L}) ASSERT_TRUE(t.insert(k));
  EXPECT_EQ(t.size_slow(), 3u);
  EXPECT_EQ(t.validate(), "");
}

TEST(KaryTreeSpecific, CoalesceBoundsGarbage) {
  // After a full drain the tree must not retain sprouted internal
  // levels: re-measure height of a refilled-and-half-drained tree.
  kary_tree<long, 4> t;
  for (long k = 0; k < 1024; ++k) ASSERT_TRUE(t.insert(k));
  const std::size_t h_full = t.height_slow();
  for (long k = 0; k < 1024; ++k) ASSERT_TRUE(t.erase(k));
  EXPECT_EQ(t.size_slow(), 0u);
  // A drained tree collapses to (nearly) the sentinel + one leaf level.
  EXPECT_LE(t.height_slow(), 3u);
  EXPECT_LT(t.height_slow(), h_full);
}

TEST(KaryTreeSpecific, SentinelChildrenUntouched) {
  kary_tree<long, 4> t;
  for (long k = -100; k < 100; ++k) t.insert(k);
  for (long k = -100; k < 100; ++k) t.erase(k);
  EXPECT_EQ(t.validate(), "");
}

TEST(KaryTreeSpecific, EpochReclaimsSproutedStructures) {
  kary_tree<long, 8, std::less<long>, reclaim::epoch> t;
  for (int round = 0; round < 100; ++round) {
    for (long k = 0; k < 128; ++k) ASSERT_TRUE(t.insert(k));
    for (long k = 0; k < 128; ++k) ASSERT_TRUE(t.erase(k));
  }
  EXPECT_LT(t.reclaimer_pending(), 5'000u);
  EXPECT_EQ(t.validate(), "");
}

}  // namespace
}  // namespace lfbst
