// Concurrent ordered scans over the multiway k-ary tree: the same
// conservative-interval contract as nm_tree (tests/core/nm_scan_test),
// checked across reclaimers, restart policies, and fanouts — plus the
// kary-only bounded forms (range_scan with max_items, for_each(lo, hi)).
// Scan parity is what lets kary ride the shared contract and sharding
// layers with no carve-outs.
#include "multiway/kary_tree.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <limits>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "obs/metrics.hpp"
#include "reclaim/epoch.hpp"
#include "reclaim/hazard_reclaimer.hpp"

namespace lfbst {
namespace {

using leaky_tree = kary_tree<long, 8>;
using epoch_tree = kary_tree<long, 8, std::less<long>, reclaim::epoch>;
using hazard_tree = kary_tree<long, 8, std::less<long>, reclaim::hazard>;
using hazard_wide_tree = kary_tree<long, 16, std::less<long>, reclaim::hazard>;
using hazard_root_tree =
    kary_tree<long, 8, std::less<long>, reclaim::hazard, stats::none,
              atomics::native, restart::from_root>;
using binary_tree = kary_tree<long, 2>;  // degenerate fanout: 1-key leaves

std::vector<long> sorted_keys(const std::set<long>& reference, long lo,
                              long hi, bool closed) {
  std::vector<long> out;
  for (const long k : reference) {
    if (k < lo) continue;
    if (closed ? k > hi : k >= hi) continue;
    out.push_back(k);
  }
  return out;
}

template <typename Tree>
void expect_scan_matches_reference() {
  Tree t;
  std::set<long> reference;
  pcg32 gen(12345);
  for (int round = 0; round < 4; ++round) {
    for (int i = 0; i < 400; ++i) {
      const long k = static_cast<long>(gen.bounded(1024));
      if ((gen() & 1u) != 0) {
        t.insert(k);
        reference.insert(k);
      } else {
        t.erase(k);
        reference.erase(k);
      }
    }
    const std::vector<long> half = t.range_scan(100, 900);
    EXPECT_EQ(half, sorted_keys(reference, 100, 900, false));
    const std::vector<long> closed = t.range_scan_closed(0, 1023);
    EXPECT_EQ(closed, sorted_keys(reference, 0, 1023, true));
    std::vector<long> all;
    t.for_each([&all](const long& k) { all.push_back(k); });
    EXPECT_EQ(all, std::vector<long>(reference.begin(), reference.end()));
    std::vector<long> bounded;
    t.for_each(100, 900, [&bounded](const long& k) { bounded.push_back(k); });
    EXPECT_EQ(bounded, half);
  }
  EXPECT_EQ(t.validate(), "");
}

TEST(KaryScan, EmptyTreeScansAreEmpty) {
  leaky_tree a;
  epoch_tree b;
  hazard_tree c;
  EXPECT_TRUE(a.range_scan(0, 100).empty());
  EXPECT_TRUE(b.range_scan_closed(0, 100).empty());
  EXPECT_TRUE(c.range_scan(0, 100).empty());
  std::size_t visits = 0;
  c.for_each([&visits](const long&) { ++visits; });
  EXPECT_EQ(visits, 0u);
}

TEST(KaryScan, HalfOpenBoundsSemantics) {
  hazard_tree t;
  for (long k = 0; k <= 10; ++k) t.insert(k);
  EXPECT_EQ(t.range_scan(3, 7), (std::vector<long>{3, 4, 5, 6}));
  EXPECT_TRUE(t.range_scan(5, 5).empty());   // empty interval
  EXPECT_TRUE(t.range_scan(7, 3).empty());   // inverted interval
  EXPECT_EQ(t.range_scan(-5, 2), (std::vector<long>{0, 1}));
  EXPECT_EQ(t.range_scan(9, 100), (std::vector<long>{9, 10}));
}

TEST(KaryScan, ClosedBoundsSemantics) {
  epoch_tree t;
  for (long k = 0; k <= 10; ++k) t.insert(k);
  EXPECT_EQ(t.range_scan_closed(3, 7), (std::vector<long>{3, 4, 5, 6, 7}));
  EXPECT_EQ(t.range_scan_closed(5, 5), (std::vector<long>{5}));  // singleton
  EXPECT_TRUE(t.range_scan_closed(7, 3).empty());  // inverted interval
}

TEST(KaryScan, BoundedScanReturnsSmallestInRange) {
  hazard_tree t;
  for (long k = 0; k < 100; ++k) t.insert(k);
  EXPECT_EQ(t.range_scan(10, 90, 5), (std::vector<long>{10, 11, 12, 13, 14}));
  EXPECT_EQ(t.range_scan(10, 13, 100), (std::vector<long>{10, 11, 12}));
  EXPECT_TRUE(t.range_scan(10, 90, 0).empty());
  // Paging: resume above the last returned key walks the whole range.
  std::vector<long> paged;
  long cursor = 0;
  for (;;) {
    const std::vector<long> page = t.range_scan(cursor, 100, 7);
    if (page.empty()) break;
    paged.insert(paged.end(), page.begin(), page.end());
    cursor = page.back() + 1;
  }
  std::vector<long> expected(100);
  for (long k = 0; k < 100; ++k) expected[static_cast<std::size_t>(k)] = k;
  EXPECT_EQ(paged, expected);
}

// The half-open form cannot name an interval that includes the largest
// representable key; the closed form exists exactly for that.
TEST(KaryScan, ClosedFormReachesDomainMax) {
  constexpr long kMax = std::numeric_limits<long>::max();
  hazard_tree t;
  t.insert(kMax);
  t.insert(kMax - 1);
  t.insert(0);
  EXPECT_EQ(t.range_scan_closed(kMax - 1, kMax),
            (std::vector<long>{kMax - 1, kMax}));
  EXPECT_EQ(t.range_scan_closed(0, kMax),
            (std::vector<long>{0, kMax - 1, kMax}));
  // The half-open form over the same bounds excludes kMax, as documented.
  EXPECT_EQ(t.range_scan(0, kMax), (std::vector<long>{0, kMax - 1}));
}

TEST(KaryScan, MatchesReferenceUnderChurnLeaky) {
  expect_scan_matches_reference<leaky_tree>();
}
TEST(KaryScan, MatchesReferenceUnderChurnEpoch) {
  expect_scan_matches_reference<epoch_tree>();
}
TEST(KaryScan, MatchesReferenceUnderChurnHazard) {
  expect_scan_matches_reference<hazard_tree>();
}
TEST(KaryScan, MatchesReferenceUnderChurnHazardWideFanout) {
  expect_scan_matches_reference<hazard_wide_tree>();
}
TEST(KaryScan, MatchesReferenceUnderChurnHazardFromRoot) {
  expect_scan_matches_reference<hazard_root_tree>();
}
TEST(KaryScan, MatchesReferenceUnderChurnBinaryFanout) {
  expect_scan_matches_reference<binary_tree>();
}

TEST(KaryScan, CountingStatsAttributeScans) {
  kary_tree<long, 8, std::less<long>, reclaim::epoch, stats::counting> t;
  for (long k = 0; k < 50; ++k) t.insert(k);
  const stats::op_record before = stats::counting::local();
  EXPECT_EQ(t.range_scan(10, 20).size(), 10u);
  std::size_t visits = 0;
  t.for_each([&visits](const long&) { ++visits; });
  EXPECT_EQ(visits, 50u);
  const stats::op_record& after = stats::counting::local();
  EXPECT_EQ(after.scans - before.scans, 2u);
  EXPECT_EQ(after.scan_keys_visited - before.scan_keys_visited, 60u);
}

TEST(KaryScan, RecordingMetricsAttributeScans) {
  kary_tree<long, 8, std::less<long>, reclaim::hazard, obs::recording> t;
  for (long k = 0; k < 30; ++k) t.insert(k);
  EXPECT_EQ(t.range_scan_closed(0, 29).size(), 30u);
  const obs::metrics_snapshot s = t.stats().counters().snapshot();
  EXPECT_EQ(s[obs::counter::ops_scan], 1u);
  EXPECT_EQ(s[obs::counter::scan_keys_visited], 30u);
  // No contention in a sequential test: restarts must be zero.
  EXPECT_EQ(s[obs::counter::scan_restarts], 0u);
}

// The scan's concurrent contract, verified directly: partition the key
// space into STABLE keys (inserted before the scans start, never
// touched again), CHURN keys (writers insert and erase them the whole
// time) and NEVER keys (never inserted). Any scan that overlaps the
// churn must still return a sorted sequence containing every in-range
// STABLE key and no NEVER key.
template <typename Tree>
void run_partition_scan_test() {
  constexpr long kRange = 512;
  constexpr int kWriters = 4;
  constexpr int kScanners = 2;
  constexpr int kScansPerThread = 60;
  Tree t;
  for (long k = 0; k < kRange; k += 3) t.insert(k);  // STABLE: k % 3 == 0

  std::atomic<bool> stop{false};
  std::atomic<bool> failed{false};
  std::atomic<int> scans_done{0};
  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&t, &stop, w] {
      pcg32 gen = pcg32::for_thread(1000, static_cast<unsigned>(w));
      while (!stop.load(std::memory_order_relaxed)) {
        // CHURN: k % 3 == 1. NEVER (k % 3 == 2) is never inserted.
        const long k = 3 * static_cast<long>(gen.bounded(kRange / 3)) + 1;
        if ((gen() & 1u) != 0) {
          t.insert(k);
        } else {
          t.erase(k);
        }
      }
    });
  }
  // Failure strings are written only by their owner scanner and read
  // only after join(); the `failed` flag is the cross-thread signal.
  std::vector<std::string> failures(kScanners);
  for (int s = 0; s < kScanners; ++s) {
    threads.emplace_back([&t, &scans_done, &failed, &failures, s] {
      const auto fail = [&failed, &failures, s](const char* why) {
        failures[s] = why;
        failed.store(true, std::memory_order_relaxed);
      };
      for (int i = 0; i < kScansPerThread; ++i) {
        const bool closed = (i & 1) != 0;
        const long lo = 40 + (i % 7);
        const long hi = kRange - 40 - (i % 5);
        const std::vector<long> got =
            closed ? t.range_scan_closed(lo, hi) : t.range_scan(lo, hi);
        std::set<long> seen;
        for (std::size_t j = 0; j < got.size(); ++j) {
          const long k = got[j];
          if (j > 0 && got[j - 1] >= k) return fail("result not sorted/unique");
          if (k < lo || (closed ? k > hi : k >= hi)) {
            return fail("key outside the requested interval");
          }
          if (k % 3 == 2) return fail("NEVER-inserted key reported present");
          seen.insert(k);
        }
        for (long k = lo + ((3 - lo % 3) % 3); closed ? k <= hi : k < hi;
             k += 3) {
          if (seen.count(k) == 0) return fail("STABLE key missing from scan");
        }
        scans_done.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  // Writers run until every scanner finished all its scans (or one
  // reported a violation).
  while (scans_done.load(std::memory_order_relaxed) <
             kScanners * kScansPerThread &&
         !failed.load(std::memory_order_relaxed)) {
    std::this_thread::yield();
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& th : threads) th.join();
  for (const std::string& f : failures) EXPECT_EQ(f, "");
  EXPECT_EQ(t.validate(), "");
  // STABLE keys were never erased; the terminal state must hold them.
  for (long k = 0; k < kRange; k += 3) EXPECT_TRUE(t.contains(k));
}

TEST(KaryScanConcurrent, PartitionContractEpoch) {
  run_partition_scan_test<epoch_tree>();
}
TEST(KaryScanConcurrent, PartitionContractHazard) {
  run_partition_scan_test<hazard_tree>();
}
TEST(KaryScanConcurrent, PartitionContractHazardWideFanout) {
  run_partition_scan_test<hazard_wide_tree>();
}
TEST(KaryScanConcurrent, PartitionContractHazardFromRoot) {
  run_partition_scan_test<hazard_root_tree>();
}

// for_each racing writers: full-domain scans stay sorted and observe
// every STABLE key even while the churn keys flicker.
TEST(KaryScanConcurrent, ForEachUnderChurnHazard) {
  constexpr long kRange = 256;
  hazard_tree t;
  for (long k = 0; k < kRange; k += 2) t.insert(k);  // STABLE: even keys
  std::atomic<bool> stop{false};
  std::thread writer([&t, &stop] {
    pcg32 gen(77);
    while (!stop.load(std::memory_order_relaxed)) {
      const long k = 2 * static_cast<long>(gen.bounded(kRange / 2)) + 1;
      if ((gen() & 1u) != 0) {
        t.insert(k);
      } else {
        t.erase(k);
      }
    }
  });
  for (int i = 0; i < 40; ++i) {
    std::vector<long> got;
    t.for_each([&got](const long& k) { got.push_back(k); });
    ASSERT_TRUE(std::is_sorted(got.begin(), got.end()));
    std::set<long> seen(got.begin(), got.end());
    for (long k = 0; k < kRange; k += 2) ASSERT_TRUE(seen.count(k) == 1);
  }
  stop.store(true, std::memory_order_relaxed);
  writer.join();
  EXPECT_EQ(t.validate(), "");
}

}  // namespace
}  // namespace lfbst
