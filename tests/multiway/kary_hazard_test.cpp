// Hazard-pointer-protected multiway tree: the validated descent with
// the per-level mark check, bounded garbage, heavy concurrent churn with
// readers, and the teardown canaries the destructor-ordering comment in
// multiway/kary_tree.hpp points at — trees destroyed with a non-empty
// retired backlog must free everything exactly once (UAF/double-free
// shows under ASAN, the PR 5 epoch-teardown bug class).
#include "multiway/kary_tree.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "common/barrier.hpp"
#include "common/rng.hpp"
#include "reclaim/epoch.hpp"
#include "reclaim/hazard_reclaimer.hpp"

namespace lfbst {
namespace {

using hazard_tree = kary_tree<long, 8, std::less<long>, reclaim::hazard>;
using hazard_wide_tree = kary_tree<long, 16, std::less<long>, reclaim::hazard>;
using hazard_root_tree =
    kary_tree<long, 8, std::less<long>, reclaim::hazard, stats::none,
              atomics::native, restart::from_root>;
using epoch_tree = kary_tree<long, 8, std::less<long>, reclaim::epoch>;

TEST(KaryHazard, SequentialSemanticsMatchOracle) {
  hazard_tree t;
  std::set<long> oracle;
  pcg32 rng(404);
  for (int i = 0; i < 80'000; ++i) {
    const long k = rng.bounded(700);
    switch (rng.bounded(3)) {
      case 0:
        ASSERT_EQ(t.insert(k), oracle.insert(k).second) << i;
        break;
      case 1:
        ASSERT_EQ(t.erase(k), oracle.erase(k) > 0) << i;
        break;
      default:
        ASSERT_EQ(t.contains(k), oracle.count(k) > 0) << i;
    }
  }
  EXPECT_EQ(t.size_slow(), oracle.size());
  EXPECT_EQ(t.validate(), "");
}

TEST(KaryHazard, GarbageIsBounded) {
  // Hazard pointers bound retired-but-unfreed objects by the scan
  // threshold, independent of operation count. The k-ary tree retires
  // both nodes and info records through the same domain; fill/drain
  // rounds exercise REPLACE, SPROUT, and COALESCE retirement.
  hazard_tree t;
  for (int round = 0; round < 200; ++round) {
    for (long k = 0; k < 100; ++k) ASSERT_TRUE(t.insert(k));
    for (long k = 0; k < 100; ++k) ASSERT_TRUE(t.erase(k));
  }
  EXPECT_LT(t.reclaimer_pending(), 5'000u);
}

template <typename Tree>
void run_churn_conservation() {
  Tree t;
  constexpr unsigned kThreads = 4;
  std::atomic<long> net{0};
  spin_barrier barrier(kThreads);
  std::vector<std::thread> threads;
  for (unsigned tid = 0; tid < kThreads; ++tid) {
    threads.emplace_back([&, tid] {
      pcg32 rng = pcg32::for_thread(11, tid);
      long local = 0;
      barrier.arrive_and_wait();
      for (int i = 0; i < 40'000; ++i) {
        const long k = rng.bounded(128);
        if (rng.bounded(2) == 0) {
          if (t.insert(k)) ++local;
        } else {
          if (t.erase(k)) --local;
        }
      }
      net.fetch_add(local);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(t.size_slow(), static_cast<std::size_t>(net.load()));
  EXPECT_EQ(t.validate(), "");
}

TEST(KaryHazard, ConcurrentChurnConservation) {
  run_churn_conservation<hazard_tree>();
}
TEST(KaryHazard, ConcurrentChurnConservationWideFanout) {
  run_churn_conservation<hazard_wide_tree>();
}
TEST(KaryHazard, ConcurrentChurnConservationFromRoot) {
  run_churn_conservation<hazard_root_tree>();
}

TEST(KaryHazard, ReadersNeverSeeReclaimedNodes) {
  // Readers race deleters on a hot key range; every contains() must
  // return a sane answer and never touch freed memory. The k-ary case
  // is sharper than the binary one: edges are never marked, so the
  // validated descent's per-level node-mark check is the only thing
  // keeping a reader off a coalesced-away parent.
  hazard_tree t;
  constexpr long kAnchors = 64;
  for (long a = 1; a <= kAnchors; ++a) ASSERT_TRUE(t.insert(-a));
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> violations{0};
  std::vector<std::thread> threads;
  for (unsigned w = 0; w < 2; ++w) {
    threads.emplace_back([&, w] {
      pcg32 rng = pcg32::for_thread(21, w);
      for (int i = 0; i < 50'000; ++i) {
        const long k = rng.bounded(64);
        if (rng.bounded(2) == 0) {
          t.insert(k);
        } else {
          t.erase(k);
        }
      }
      stop.store(true);
    });
  }
  for (unsigned r = 0; r < 2; ++r) {
    threads.emplace_back([&, r] {
      pcg32 rng = pcg32::for_thread(31, r);
      while (!stop.load(std::memory_order_acquire)) {
        if (!t.contains(-(1 + static_cast<long>(rng.bounded(kAnchors))))) {
          violations.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(violations.load(), 0u);
  EXPECT_EQ(t.validate(), "");
}

TEST(KaryHazard, DuelingDeletesResolveOnce) {
  // Opposite-direction erasure sweeps force delete-delete races on
  // sibling keys of the same leaf and parent — the COALESCE help path.
  hazard_tree t;
  constexpr long kKeys = 1024;
  for (long k = 0; k < kKeys; ++k) ASSERT_TRUE(t.insert(k));
  std::atomic<long> wins{0};
  spin_barrier barrier(4);
  std::vector<std::thread> threads;
  for (unsigned tid = 0; tid < 4; ++tid) {
    threads.emplace_back([&, tid] {
      long local = 0;
      barrier.arrive_and_wait();
      if (tid % 2 == 0) {
        for (long k = 0; k < kKeys; ++k) local += t.erase(k) ? 1 : 0;
      } else {
        for (long k = kKeys - 1; k >= 0; --k) local += t.erase(k) ? 1 : 0;
      }
      wins.fetch_add(local);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(wins.load(), kKeys);
  EXPECT_EQ(t.size_slow(), 0u);
  EXPECT_EQ(t.validate(), "");
}

// --- teardown canaries (the destructor-ordering audit) ----------------------
//
// Destroy trees that still hold a non-empty retired backlog. The
// destructor must free the reachable tree AND drain the backlog while
// the node/info pools are still alive; freeing anything twice, or
// draining after pool destruction, is a UAF/double-free that ASAN
// catches here. The churn is sized so SPROUT and COALESCE both ran,
// leaving retired nodes *and* retired info records pending.

template <typename Tree>
void run_teardown_canary() {
  for (int round = 0; round < 20; ++round) {
    Tree t;
    for (long k = 0; k < 500; ++k) t.insert(k);
    for (long k = 0; k < 500; k += 2) t.erase(k);
    if (round == 0) {
      // The canary is only meaningful if something is actually pending.
      EXPECT_GT(t.reclaimer_pending(), 0u);
    }
  }
  SUCCEED();
}

TEST(KaryTeardown, HazardDrainsPendingAtDestruction) {
  run_teardown_canary<hazard_tree>();
}
TEST(KaryTeardown, EpochDrainsPendingAtDestruction) {
  run_teardown_canary<epoch_tree>();
}

TEST(KaryTeardown, DestructionAfterMultithreadedChurn) {
  // The backlog holds retirements from every worker thread; the single
  // destroying thread must still free all of it exactly once.
  for (int round = 0; round < 5; ++round) {
    hazard_tree t;
    std::vector<std::thread> threads;
    for (unsigned tid = 0; tid < 4; ++tid) {
      threads.emplace_back([&t, tid] {
        pcg32 rng = pcg32::for_thread(91, tid);
        for (int i = 0; i < 10'000; ++i) {
          const long k = rng.bounded(256);
          if (rng.bounded(2) == 0) {
            t.insert(k);
          } else {
            t.erase(k);
          }
        }
      });
    }
    for (auto& th : threads) th.join();
  }
  SUCCEED();
}

}  // namespace
}  // namespace lfbst
