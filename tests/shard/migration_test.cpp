// Sequential semantics of online subrange migration: the router's
// splitter surgery (quantize_down / with_splitter), the full
// migrate_splitter lifecycle on an idle set (keys move, membership is
// unchanged, the swapped router routes every key to the shard that now
// holds it), the new obs counters, the rebalancer's decision loop, and
// the NUMA placement policy's single-node degradation. The concurrent
// and adversarial versions of the same protocol live in
// rebalance_concurrent_test.cpp / rebalance_stress_test.cpp; suite
// names keep the Migration/Rebalance stems so CI's promoted TSan step
// (-R 'Rebalance|Migration') picks all of them up.
#include <gtest/gtest.h>

#include <limits>
#include <set>
#include <vector>

#include "core/natarajan_tree.hpp"
#include "obs/heatmap.hpp"
#include "shard/numa.hpp"
#include "shard/rebalancer.hpp"
#include "shard/sharded_set.hpp"

namespace lfbst {
namespace {

using recorded_tree =
    nm_tree<long, std::less<long>, reclaim::epoch, obs::recording>;

// --- router surgery --------------------------------------------------

TEST(MigrationRouter, QuantizeDownIsIdentityOnExactBucketDomain) {
  // A 64-key domain over a 4096-bucket table: every key is its own
  // bucket edge.
  shard::range_router<long> router(4, 0, 64);
  for (long k = 0; k < 64; ++k) EXPECT_EQ(router.quantize_down(k), k);
}

TEST(MigrationRouter, QuantizeDownSnapsToBucketEdges) {
  // 2^16 keys over 2^12 buckets: bucket width 16.
  shard::range_router<long> router(4, 0, 1 << 16);
  EXPECT_EQ(router.quantize_down(0), 0);
  EXPECT_EQ(router.quantize_down(15), 0);
  EXPECT_EQ(router.quantize_down(16), 16);
  EXPECT_EQ(router.quantize_down(17), 16);
  EXPECT_EQ(router.quantize_down((1 << 16) - 1), (1 << 16) - 16);
}

TEST(MigrationRouter, WithSplitterMovesExactlyOneBoundary) {
  shard::range_router<long> router(4, 0, 64);
  ASSERT_EQ(router.splitter(1), 16);
  ASSERT_EQ(router.splitter(2), 32);
  ASSERT_EQ(router.splitter(3), 48);
  const auto moved = router.with_splitter(2, 24);
  EXPECT_EQ(moved.splitter(1), 16);
  EXPECT_EQ(moved.splitter(2), 24);
  EXPECT_EQ(moved.splitter(3), 48);
  // Routing matches the new boundary on both sides of it.
  EXPECT_EQ(moved.shard_of(23), 1u);
  EXPECT_EQ(moved.shard_of(24), 2u);
  // The original router is untouched (it is immutable by design).
  EXPECT_EQ(router.splitter(2), 32);
}

TEST(MigrationRouter, WithSplitterOnFullDomainRouter) {
  // The 1-arg constructor spans the key type's whole domain (2^W keys,
  // which the half-open [lo, hi) form cannot express). with_splitter
  // must preserve that full-domain footing, not shrink it by one key.
  using lim = std::numeric_limits<long>;
  shard::range_router<long> router(2);
  ASSERT_EQ(router.lo(), lim::min());
  ASSERT_EQ(router.hi_inclusive(), lim::max());
  ASSERT_EQ(router.splitter(1), 0);
  const long target = router.quantize_down(lim::max() / 2);
  const auto moved = router.with_splitter(1, target);
  EXPECT_EQ(moved.splitter(1), target);
  EXPECT_EQ(moved.lo(), lim::min());
  EXPECT_EQ(moved.hi_inclusive(), lim::max());
  EXPECT_EQ(moved.shard_of(target - 1), 0u);
  EXPECT_EQ(moved.shard_of(target), 1u);
}

// --- sequential migrate_splitter lifecycle ---------------------------

TEST(MigrationSequential, LoweringASplitterMovesTheSubrange) {
  shard::sharded_set<recorded_tree> set(4, 0, 4096);
  set.arm_rebalancing();
  for (long k = 0; k < 4096; k += 3) ASSERT_TRUE(set.insert(k));
  const std::size_t before = set.size_slow();
  ASSERT_EQ(set.router().splitter(1), 1024);

  // Lower splitter 1 to 512: [512, 1024) moves from shard 1 to shard 0.
  const std::size_t moved = set.migrate_splitter(1, 512);
  EXPECT_EQ(moved, 171u);  // ceil((1024-512)/3)
  EXPECT_EQ(set.router().splitter(1), 512);
  EXPECT_EQ(set.size_slow(), before);
  EXPECT_EQ(set.validate(), "");

  // Every key now sits in the shard the new router routes it to.
  for (std::size_t s = 0; s < set.shard_count(); ++s) {
    for (long k : set.shard(s).range_scan_closed(0, 4095)) {
      EXPECT_EQ(set.router().shard_of(k), s) << "stray key " << k;
    }
  }
  for (long k = 0; k < 4096; ++k) EXPECT_EQ(set.contains(k), k % 3 == 0);
}

TEST(MigrationSequential, RaisingASplitterMovesTheSubrangeRight) {
  shard::sharded_set<recorded_tree> set(4, 0, 4096);
  set.arm_rebalancing();
  for (long k = 0; k < 4096; k += 2) ASSERT_TRUE(set.insert(k));
  const std::size_t moved = set.migrate_splitter(2, 2560);
  EXPECT_EQ(moved, 256u);  // evens of [2048, 2560)
  EXPECT_EQ(set.router().splitter(2), 2560);
  EXPECT_EQ(set.validate(), "");
  for (long k = 0; k < 4096; ++k) EXPECT_EQ(set.contains(k), k % 2 == 0);
}

TEST(MigrationSequential, NonMonotoneTargetIsRejected) {
  shard::sharded_set<recorded_tree> set(4, 0, 4096);
  set.arm_rebalancing();
  for (long k = 0; k < 4096; k += 7) ASSERT_TRUE(set.insert(k));
  // Targets at or beyond a neighboring splitter would make the
  // partition non-monotone; the call must refuse and change nothing.
  EXPECT_EQ(set.migrate_splitter(2, 1024), 0u);  // == splitter(1)
  EXPECT_EQ(set.migrate_splitter(2, 512), 0u);   // < splitter(1)
  EXPECT_EQ(set.migrate_splitter(2, 3072), 0u);  // == splitter(3)
  EXPECT_EQ(set.migrate_splitter(2, 4000), 0u);  // > splitter(3)
  EXPECT_EQ(set.router().splitter(2), 2048);
  EXPECT_EQ(set.validate(), "");
}

TEST(MigrationSequential, ScansSpanTheFlippedSplitter) {
  shard::sharded_set<recorded_tree> set(4, 0, 4096);
  set.arm_rebalancing();
  std::vector<long> expect;
  for (long k = 0; k < 4096; k += 5) {
    ASSERT_TRUE(set.insert(k));
    expect.push_back(k);
  }
  ASSERT_GT(set.migrate_splitter(1, 640), 0u);
  EXPECT_EQ(set.range_scan_closed(0, 4095), expect);
  // Paged scans resume correctly across the moved boundary.
  std::vector<long> paged;
  long lo = 0;
  for (;;) {
    const auto page = set.range_scan_limit(lo, 4096, 100);
    paged.insert(paged.end(), page.keys.begin(), page.keys.end());
    if (!page.truncated) break;
    lo = page.resume_key;
  }
  EXPECT_EQ(paged, expect);
}

// --- obs counters ----------------------------------------------------

TEST(MigrationCounters, LayerCountersRecordMigrations) {
  shard::sharded_set<recorded_tree> set(4, 0, 4096);
  set.arm_rebalancing();
  for (long k = 0; k < 2048; k += 2) ASSERT_TRUE(set.insert(k));
  EXPECT_EQ(set.migration_count(), 0u);
  EXPECT_EQ(set.keys_migrated(), 0u);
  const std::size_t moved = set.migrate_splitter(1, 512);
  ASSERT_GT(moved, 0u);
  EXPECT_EQ(set.migration_count(), 1u);
  EXPECT_EQ(set.keys_migrated(), moved);
  EXPECT_GT(set.dual_route_window_ns(), 0u);

  // The merged snapshot folds the layer counters in, under the names
  // the telemetry plane exports.
  const obs::metrics_snapshot merged = set.merged_counters();
  EXPECT_EQ(merged.values[static_cast<std::size_t>(
                obs::counter::migrations)],
            1u);
  EXPECT_EQ(merged.values[static_cast<std::size_t>(
                obs::counter::keys_migrated)],
            moved);
  EXPECT_GT(merged.values[static_cast<std::size_t>(
                obs::counter::dual_route_window_ns)],
            0u);
}

TEST(MigrationCounters, CounterNamesAreExported) {
  EXPECT_STREQ(obs::counter_name(obs::counter::migrations), "migrations");
  EXPECT_STREQ(obs::counter_name(obs::counter::keys_migrated),
               "keys_migrated");
  EXPECT_STREQ(obs::counter_name(obs::counter::dual_route_window_ns),
               "dual_route_window_ns");
}

// --- rebalancer decision loop ----------------------------------------

TEST(RebalancerUnit, BalancedTrafficNeverMigrates) {
  shard::sharded_set<recorded_tree> set(4, 0, 4096);
  shard::rebalancer_options opts;
  opts.min_window_ops = 64;
  shard::rebalancer<shard::sharded_set<recorded_tree>> reb(set, opts);
  EXPECT_TRUE(set.rebalancing_armed());
  for (long k = 0; k < 4096; ++k) (void)set.contains(k);
  EXPECT_EQ(reb.rebalance_once(), 0u);
  EXPECT_EQ(reb.migrations(), 0u);
  EXPECT_EQ(set.router().splitter(1), 1024);
}

TEST(RebalancerUnit, QuietWindowBelowMinOpsIsIgnored) {
  shard::sharded_set<recorded_tree> set(4, 0, 4096);
  shard::rebalancer_options opts;
  opts.min_window_ops = 1u << 20;
  shard::rebalancer<shard::sharded_set<recorded_tree>> reb(set, opts);
  for (long k = 0; k < 512; ++k) (void)set.insert(k);  // all shard 0
  EXPECT_EQ(reb.rebalance_once(), 0u);
}

TEST(RebalancerUnit, HotShardDonatesToNeighbor) {
  shard::sharded_set<recorded_tree> set(4, 0, 4096);
  shard::rebalancer_options opts;
  opts.min_window_ops = 64;
  shard::rebalancer<shard::sharded_set<recorded_tree>> reb(set, opts);
  for (long k = 0; k < 4096; k += 2) ASSERT_TRUE(set.insert(k));
  reb.prime();
  // All the traffic lands in shard 0's range [0, 1024).
  for (int round = 0; round < 4; ++round) {
    for (long k = 0; k < 1024; ++k) (void)set.contains(k);
  }
  const std::size_t moved = reb.rebalance_once();
  EXPECT_GT(moved, 0u);
  EXPECT_EQ(reb.migrations(), 1u);
  // Shard 0 donated its tail to shard 1: the boundary moved left.
  EXPECT_LT(set.router().splitter(1), 1024);
  EXPECT_EQ(set.validate(), "");
}

TEST(RebalancerUnit, HeatmapGuidesTheSplitTowardTraffic) {
  shard::sharded_set<recorded_tree> set(2, 0, 4096);
  obs::key_heatmap heatmap(0, 4096);
  set.for_each_shard_stats(
      [&](obs::recording& stats) { stats.attach_heatmap(&heatmap); });
  shard::rebalancer_options opts;
  opts.min_window_ops = 64;
  opts.heatmap = &heatmap;
  shard::rebalancer<shard::sharded_set<recorded_tree>> reb(set, opts);
  for (long k = 0; k < 4096; k += 4) ASSERT_TRUE(set.insert(k));
  reb.prime();
  heatmap.reset();
  // Traffic concentrated in [0, 256): the traffic-half split point is
  // far left of the range midpoint 1024 the fallback would pick.
  for (int round = 0; round < 64; ++round) {
    for (long k = 0; k < 256; ++k) (void)set.contains(k);
  }
  ASSERT_GT(reb.rebalance_once(), 0u);
  EXPECT_LT(set.router().splitter(1), 512);
  EXPECT_EQ(set.validate(), "");
}

// --- NUMA placement --------------------------------------------------

TEST(MigrationNuma, TopologyDetectsAtLeastOneNode) {
  const auto& topo = shard::numa::topology::cached();
  EXPECT_GE(topo.node_count(), 1u);
}

TEST(MigrationNuma, InactivePolicyAssignsNoNodes) {
  shard::numa::policy none;
  EXPECT_FALSE(none.active());
  EXPECT_EQ(none.node_for_shard(0, 8), -1);
}

TEST(MigrationNuma, ActivePolicySpreadsShardsInContiguousBlocks) {
  shard::numa::policy pol;
  pol.mode = shard::numa::placement::interleave;
  if (!pol.active()) {
    // Single-node machine: the policy must degrade to "no placement".
    EXPECT_EQ(pol.node_for_shard(0, 8), -1);
    return;
  }
  const auto nodes =
      static_cast<int>(shard::numa::topology::cached().node_count());
  int prev = 0;
  for (std::size_t s = 0; s < 8; ++s) {
    const int n = pol.node_for_shard(s, 8);
    EXPECT_GE(n, 0);
    EXPECT_LT(n, nodes);
    EXPECT_GE(n, prev);  // contiguous, monotone blocks
    prev = n;
  }
}

TEST(MigrationNuma, InterleavedSetWorksOnAnyTopology) {
  using set_type = shard::sharded_set<recorded_tree>;
  shard::numa::policy pol;
  pol.mode = shard::numa::placement::interleave;
  set_type set(set_type::router_type(4, 0, 4096), pol);
  for (long k = 0; k < 4096; k += 9) ASSERT_TRUE(set.insert(k));
  for (long k = 0; k < 4096; ++k) EXPECT_EQ(set.contains(k), k % 9 == 0);
  for (std::size_t s = 0; s < set.shard_count(); ++s) {
    const int node = set.shard_numa_node(s);
    EXPECT_GE(node, -1);
  }
  EXPECT_EQ(set.validate(), "");
}

}  // namespace
}  // namespace lfbst
