// Long-churn soak of the adaptive resharding machinery: Zipf-skewed
// writers hammer a hot shard while the background rebalancer migrates
// continuously, with full-range scans auditing the stable keys the
// whole time. The churn window defaults to a couple of seconds so the
// PR gate stays fast; the nightly rebalance-stress job raises it to
// minutes through LFBST_REBALANCE_STRESS_MS (and repeats under TSAN).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <thread>
#include <vector>

#include "common/barrier.hpp"
#include "common/rng.hpp"
#include "core/natarajan_tree.hpp"
#include "harness/zipf.hpp"
#include "obs/heatmap.hpp"
#include "shard/rebalancer.hpp"
#include "shard/sharded_set.hpp"

namespace lfbst {
namespace {

std::uint64_t churn_ms() {
  const char* raw = std::getenv("LFBST_REBALANCE_STRESS_MS");
  if (raw == nullptr) return 2000;
  const long v = std::strtol(raw, nullptr, 10);
  return v > 0 ? static_cast<std::uint64_t>(v) : 2000;
}

TEST(MigrationStress, LongChurnHotShardUnderAdaptiveRebalancing) {
  using recorded_tree =
      nm_tree<long, std::less<long>, reclaim::epoch, obs::recording>;
  using set_type = shard::sharded_set<recorded_tree>;
  constexpr long kRange = 1 << 16;
  set_type set(8, 0, kRange);
  obs::key_heatmap heatmap(0, kRange);
  set.for_each_shard_stats(
      [&](obs::recording& stats) { stats.attach_heatmap(&heatmap); });

  // Stable evens are never touched by the churn; every audit scan must
  // see all of them, migrations or not.
  for (long k = 0; k < kRange; k += 2) ASSERT_TRUE(set.insert(k));
  const std::size_t stable = static_cast<std::size_t>(kRange) / 2;
  heatmap.reset();

  shard::rebalancer_options opts;
  opts.interval_ms = 10;
  opts.min_window_ops = 512;
  opts.heatmap = &heatmap;
  shard::rebalancer<set_type> reb(set, opts);
  reb.start();

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  constexpr unsigned kWriters = 3;
  spin_barrier barrier(kWriters + 2);
  std::vector<std::thread> threads;
  for (unsigned tid = 0; tid < kWriters; ++tid) {
    threads.emplace_back([&, tid] {
      pcg32 rng = pcg32::for_thread(31337, tid);
      // Unscrambled Zipf ranks cluster at the low keys: a standing hot
      // shard the rebalancer keeps splitting. Odd keys only, so the
      // stable evens stay untouched.
      const harness::zipf_generator zipf(kRange / 2, 0.99);
      barrier.arrive_and_wait();
      while (!stop.load(std::memory_order_relaxed)) {
        const long k = 2 * static_cast<long>(zipf(rng)) + 1;
        switch (rng.bounded(3)) {
          case 0:
            (void)set.insert(k);
            break;
          case 1:
            (void)set.erase(k);
            break;
          default:
            (void)set.contains(k);
        }
      }
    });
  }
  threads.emplace_back([&] {
    barrier.arrive_and_wait();
    while (!stop.load(std::memory_order_relaxed)) {
      const std::vector<long> got = set.range_scan_closed(0, kRange - 1);
      std::size_t evens = 0;
      for (std::size_t i = 0; i < got.size(); ++i) {
        if (i > 0 && got[i - 1] >= got[i]) failures.fetch_add(1);
        if ((got[i] & 1) == 0) ++evens;
      }
      if (evens != stable) failures.fetch_add(1);
    }
  });
  // Paged scans ride along: the resume protocol must survive splitter
  // flips between pages.
  threads.emplace_back([&] {
    barrier.arrive_and_wait();
    while (!stop.load(std::memory_order_relaxed)) {
      std::size_t evens = 0;
      long lo = 0;
      long last = -1;
      for (;;) {
        const auto page = set.range_scan_limit(lo, kRange, 1024);
        for (long k : page.keys) {
          if (k <= last) failures.fetch_add(1);
          last = k;
          if ((k & 1) == 0) ++evens;
        }
        if (!page.truncated) break;
        lo = page.resume_key;
      }
      if (evens != stable) failures.fetch_add(1);
    }
  });

  std::this_thread::sleep_for(std::chrono::milliseconds(churn_ms()));
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : threads) t.join();
  reb.stop();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_GE(set.migration_count(), 1u);
  EXPECT_EQ(set.validate(), "");
  for (std::size_t s = 0; s < set.shard_count(); ++s) {
    for (long k : set.shard(s).range_scan_closed(0, kRange - 1)) {
      ASSERT_EQ(set.router().shard_of(k), s)
          << "key " << k << " stranded in shard " << s;
    }
  }
  for (long k = 0; k < kRange; k += 2) {
    ASSERT_TRUE(set.contains(k)) << "stable key " << k << " lost";
  }
}

}  // namespace
}  // namespace lfbst
