// Wall-clock races against online subrange migration: writers, batched
// operations and cross-shard scans running full speed while
// migrate_splitter flips the partition underneath them, plus recorded
// lincheck histories that prove per-key linearizability across the
// dual-routing window. The sequential semantics live in
// migration_test.cpp; the env-scaled soak in rebalance_stress_test.cpp.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <thread>
#include <vector>

#include "common/barrier.hpp"
#include "common/rng.hpp"
#include "core/natarajan_tree.hpp"
#include "lincheck/lincheck.hpp"
#include "lincheck/recorder.hpp"
#include "obs/heatmap.hpp"
#include "shard/rebalancer.hpp"
#include "shard/sharded_set.hpp"

namespace lfbst {
namespace {

using epoch_tree = nm_tree<long, std::less<long>, reclaim::epoch>;
using recorded_tree =
    nm_tree<long, std::less<long>, reclaim::epoch, obs::recording>;

// Every key found in a shard's tree must be one the current router
// routes to that shard — i.e. each key lives in exactly one logical
// shard once the set is quiescent.
template <typename Set>
void expect_keys_match_router(Set& set, long lo, long hi_incl) {
  for (std::size_t s = 0; s < set.shard_count(); ++s) {
    for (long k : set.shard(s).range_scan_closed(lo, hi_incl)) {
      EXPECT_EQ(set.router().shard_of(k), s)
          << "key " << k << " stranded in shard " << s;
    }
  }
}

// --------------------------------------------------------------------
// Stable evens + churning odds + a migration thread ping-ponging one
// splitter. Scans must always report every stable key; terminal state
// must be structurally valid with no key stranded in a wrong shard.
// --------------------------------------------------------------------

TEST(MigrationConcurrent, WritersAndScansRacingContinuousMigrations) {
  constexpr long kRange = 4096;
  shard::sharded_set<epoch_tree> set(4, 0, kRange);
  set.arm_rebalancing();
  for (long k = 0; k < kRange; k += 2) ASSERT_TRUE(set.insert(k));
  const std::size_t stable = static_cast<std::size_t>(kRange) / 2;

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  constexpr unsigned kWriters = 3;
  spin_barrier barrier(kWriters + 2);
  std::vector<std::thread> threads;
  for (unsigned tid = 0; tid < kWriters; ++tid) {
    threads.emplace_back([&, tid] {
      pcg32 rng = pcg32::for_thread(2024, tid);
      barrier.arrive_and_wait();
      while (!stop.load(std::memory_order_relaxed)) {
        const long k = 2 * static_cast<long>(rng.bounded(kRange / 2)) + 1;
        switch (rng.bounded(3)) {
          case 0:
            (void)set.insert(k);
            break;
          case 1:
            (void)set.erase(k);
            break;
          default:
            (void)set.contains(k);
        }
      }
    });
  }
  // Scanner: every full scan must contain every stable (even) key.
  threads.emplace_back([&] {
    barrier.arrive_and_wait();
    while (!stop.load(std::memory_order_relaxed)) {
      const std::vector<long> got = set.range_scan_closed(0, kRange - 1);
      std::size_t evens = 0;
      for (std::size_t i = 0; i < got.size(); ++i) {
        if (i > 0 && got[i - 1] >= got[i]) failures.fetch_add(1);
        if ((got[i] & 1) == 0) ++evens;
      }
      if (evens != stable) failures.fetch_add(1);
    }
  });
  // Migrator: ping-pong splitter 1 between 512 and 1024, and splitter 3
  // between 3072 and 3584, so both directions of subrange movement run.
  threads.emplace_back([&] {
    barrier.arrive_and_wait();
    bool low = true;
    for (int i = 0; i < 60 && !stop.load(std::memory_order_relaxed); ++i) {
      (void)set.migrate_splitter(1, low ? 512 : 1024);
      (void)set.migrate_splitter(3, low ? 3584 : 3072);
      low = !low;
    }
    stop.store(true, std::memory_order_relaxed);
  });
  for (auto& t : threads) t.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_GE(set.migration_count(), 2u);
  EXPECT_EQ(set.validate(), "");
  expect_keys_match_router(set, 0, kRange - 1);
  for (long k = 0; k < kRange; k += 2) {
    EXPECT_TRUE(set.contains(k)) << "stable key " << k << " lost";
  }
}

// --------------------------------------------------------------------
// Batched operations racing migrations, with per-thread key ownership:
// each thread mutates only keys ≡ tid (mod kWriters) and tracks the
// final state it produced, so after the race every owned key's
// membership must match exactly — per-key linearizability with no
// cross-thread ambiguity.
// --------------------------------------------------------------------

TEST(MigrationConcurrent, BatchesRacingMigrationsKeepPerKeyTruth) {
  constexpr long kRange = 4096;
  constexpr unsigned kWriters = 3;
  shard::sharded_set<epoch_tree> set(4, 0, kRange);
  set.arm_rebalancing();

  std::atomic<bool> stop{false};
  spin_barrier barrier(kWriters + 1);
  std::vector<std::map<long, bool>> truth(kWriters);
  std::vector<std::thread> threads;
  for (unsigned tid = 0; tid < kWriters; ++tid) {
    threads.emplace_back([&, tid] {
      pcg32 rng = pcg32::for_thread(4242, tid);
      auto& mine = truth[tid];
      barrier.arrive_and_wait();
      while (!stop.load(std::memory_order_relaxed)) {
        std::vector<long> keys(4);
        for (auto& k : keys) {
          k = static_cast<long>(rng.bounded(kRange / kWriters)) * kWriters +
              static_cast<long>(tid);
        }
        if (rng.bounded(2) == 0) {
          (void)set.insert_batch(keys);
          for (long k : keys) mine[k] = true;
        } else {
          (void)set.erase_batch(keys);
          for (long k : keys) mine[k] = false;
        }
      }
    });
  }
  threads.emplace_back([&] {
    barrier.arrive_and_wait();
    bool low = true;
    for (int i = 0; i < 40; ++i) {
      (void)set.migrate_splitter(2, low ? 1536 : 2048);
      low = !low;
    }
    stop.store(true, std::memory_order_relaxed);
  });
  for (auto& t : threads) t.join();

  EXPECT_GE(set.migration_count(), 2u);
  EXPECT_EQ(set.validate(), "");
  expect_keys_match_router(set, 0, kRange - 1);
  for (unsigned tid = 0; tid < kWriters; ++tid) {
    for (const auto& [key, present] : truth[tid]) {
      EXPECT_EQ(set.contains(key), present)
          << "owned key " << key << " of thread " << tid;
    }
  }
}

// --------------------------------------------------------------------
// Recorded lincheck histories: singles, batches and scans racing a
// migration thread, checked against the sequential set specification.
// The migration itself never appears in the history — it must be
// membership-invisible — so a key double-present, lost, or observed
// out of order during the dual-routing window fails the check.
// --------------------------------------------------------------------

TEST(MigrationLincheck, HistoriesStayLinearizableAcrossSplitterFlips) {
  using set_type = shard::sharded_set<nm_tree<int, std::less<int>,
                                              reclaim::epoch>>;
  pcg32 seed_rng(555);
  for (int round = 0; round < 150; ++round) {
    set_type set(2, 0, 16);
    set.arm_rebalancing();
    lincheck::recorder rec;
    constexpr unsigned kThreads = 3;
    spin_barrier barrier(kThreads + 1);
    const std::uint64_t base_seed = seed_rng.next64();
    std::vector<std::thread> threads;
    for (unsigned tid = 0; tid < kThreads; ++tid) {
      threads.emplace_back([&, tid] {
        pcg32 rng = pcg32::for_thread(base_seed, tid);
        // Exactly one scan per thread, at a random slot, so the history
        // length is deterministically bounded: the checker caps at 64
        // entries and each scan contributes its full key width. Worst
        // case here is 3 threads x (4 batch ops x 2 + 1 scan x 8) = 48.
        const int scan_slot = static_cast<int>(rng.bounded(5));
        barrier.arrive_and_wait();
        for (int i = 0; i < 5; ++i) {
          if (i == scan_slot) {
            // [4, 12) straddles every splitter target the migrator
            // visits (4, 12 and 8), so scans observe the moving range.
            rec.range_scan(set, 4, 12);
            continue;
          }
          const int key = static_cast<int>(rng.bounded(16));
          switch (rng.bounded(4)) {
            case 0:
              rec.insert(set, key);
              break;
            case 1:
              rec.erase(set, key);
              break;
            case 2:
              rec.contains(set, key);
              break;
            default: {
              const int other = static_cast<int>(rng.bounded(16));
              if (rng.bounded(2) == 0) {
                rec.insert_batch(set, {key, other});
              } else {
                rec.erase_batch(set, {key, other});
              }
              break;
            }
          }
        }
      });
    }
    threads.emplace_back([&] {
      barrier.arrive_and_wait();
      // Flip the single splitter across the whole round: 8 -> 4 -> 12
      // -> 8, each flip draining whatever currently lives in between.
      for (int target : {4, 12, 8}) {
        (void)set.migrate_splitter(1, target);
      }
    });
    for (auto& t : threads) t.join();
    const lincheck::history h = rec.take();
    ASSERT_TRUE(lincheck::checker::is_linearizable(h))
        << "non-linearizable history in round " << round << " (seed "
        << base_seed << ", " << set.migration_count() << " migrations)";
    ASSERT_EQ(set.validate(), "");
  }
}

// --------------------------------------------------------------------
// The adaptive loop end to end under real concurrency: a background
// rebalancer thread against hot writers. The trigger must fire, the
// partition must tighten around the hot range, and the set must stay
// valid throughout.
// --------------------------------------------------------------------

TEST(RebalancerConcurrent, AdaptiveLoopConvergesOnHotTraffic) {
  using set_type = shard::sharded_set<recorded_tree>;
  constexpr long kRange = 1 << 16;
  set_type set(4, 0, kRange);
  obs::key_heatmap heatmap(0, kRange);
  set.for_each_shard_stats(
      [&](obs::recording& stats) { stats.attach_heatmap(&heatmap); });
  shard::rebalancer_options opts;
  opts.interval_ms = 5;
  opts.min_window_ops = 256;
  opts.heatmap = &heatmap;
  shard::rebalancer<set_type> reb(set, opts);
  reb.start();

  std::atomic<bool> stop{false};
  constexpr unsigned kWriters = 3;
  spin_barrier barrier(kWriters);
  std::vector<std::thread> threads;
  for (unsigned tid = 0; tid < kWriters; ++tid) {
    threads.emplace_back([&, tid] {
      pcg32 rng = pcg32::for_thread(77, tid);
      barrier.arrive_and_wait();
      while (!stop.load(std::memory_order_relaxed)) {
        // 90% of traffic in the bottom 1/16 of the domain.
        const long k =
            rng.bounded(10) < 9
                ? static_cast<long>(rng.bounded(kRange / 16))
                : static_cast<long>(rng.bounded(kRange));
        switch (rng.bounded(3)) {
          case 0:
            (void)set.insert(k);
            break;
          case 1:
            (void)set.erase(k);
            break;
          default:
            (void)set.contains(k);
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(500));
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : threads) t.join();
  reb.stop();

  EXPECT_GE(set.migration_count(), 1u);
  EXPECT_GT(set.keys_migrated(), 0u);
  // The hot sixteenth started wholly inside shard 0; convergence means
  // the first splitter moved down into it.
  EXPECT_LT(set.router().splitter(1), kRange / 4);
  EXPECT_EQ(set.validate(), "");
  expect_keys_match_router(set, 0, kRange - 1);
}

}  // namespace
}  // namespace lfbst
