// Unit tests for the range-partitioned sharded front-end: router
// exactness (splitter boundaries, clamping, quantization), 1-shard
// degeneracy against the plain tree, batch grouping semantics, the
// cross-shard ordered range scan, merged per-instance metrics, and
// composition over every lock-free tree of the paper's evaluation.
#include "shard/sharded_set.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <set>
#include <vector>

#include "common/rng.hpp"
#include "lfbst/lfbst.hpp"
#include "shard/router.hpp"

namespace lfbst {
namespace {

using shard::range_router;
using shard::sharded_set;

// --- router -----------------------------------------------------------------

TEST(RangeRouter, UniformSplittersOnPowerOfTwoSpan) {
  range_router<long> r(4, 0, 1024);
  EXPECT_EQ(r.shard_count(), 4u);
  EXPECT_EQ(r.splitter(0), 0);
  EXPECT_EQ(r.splitter(1), 256);
  EXPECT_EQ(r.splitter(2), 512);
  EXPECT_EQ(r.splitter(3), 768);
}

TEST(RangeRouter, KeysOnSplitterBoundariesRouteRight) {
  range_router<long> r(4, 0, 1024);
  for (std::size_t i = 1; i < r.shard_count(); ++i) {
    const long boundary = r.splitter(i);
    EXPECT_EQ(r.shard_of(boundary), i) << "boundary key " << boundary;
    EXPECT_EQ(r.shard_of(boundary - 1), i - 1)
        << "pre-boundary key " << boundary - 1;
  }
}

TEST(RangeRouter, OutOfDomainKeysClampToEdgeShards) {
  range_router<long> r(8, 100, 900);
  EXPECT_EQ(r.shard_of(99), 0u);
  EXPECT_EQ(r.shard_of(-1'000'000), 0u);
  EXPECT_EQ(r.shard_of(900), r.shard_count() - 1);
  EXPECT_EQ(r.shard_of(1'000'000), r.shard_count() - 1);
}

TEST(RangeRouter, NonPowerOfTwoSpanStaysBalanced) {
  // The bucket grid rounds 1000 up to 1024; the splitters must still
  // divide the *domain*, not the grid (a grid split would leave the
  // tail shards empty).
  range_router<long> r(4, 0, 1000);
  EXPECT_EQ(r.splitter(1), 250);
  EXPECT_EQ(r.splitter(2), 500);
  EXPECT_EQ(r.splitter(3), 750);
}

TEST(RangeRouter, RoutingIsMonotoneInTheKey) {
  range_router<long> r(16, 0, 1'000'000);
  std::size_t prev = 0;
  for (long k = 0; k < 1'000'000; k += 997) {
    const std::size_t s = r.shard_of(k);
    EXPECT_GE(s, prev) << "key " << k;
    prev = s;
  }
  EXPECT_EQ(prev, r.shard_count() - 1);  // every shard is reachable
}

TEST(RangeRouter, RoutingAgreesWithInducedSplitters) {
  range_router<long> r(8, 0, 123'457);  // deliberately odd span
  for (long k = 0; k < 123'457; k += 61) {
    const std::size_t s = r.shard_of(k);
    EXPECT_GE(k, r.splitter(s));
    if (s + 1 < r.shard_count()) EXPECT_LT(k, r.splitter(s + 1));
  }
}

TEST(RangeRouter, ExplicitSplitters) {
  range_router<long> r(0, 1000, std::vector<long>{100, 500, 900});
  EXPECT_EQ(r.shard_count(), 4u);
  EXPECT_EQ(r.shard_of(99), 0u);
  EXPECT_EQ(r.shard_of(100), 1u);
  EXPECT_EQ(r.shard_of(499), 1u);
  EXPECT_EQ(r.shard_of(500), 2u);
  EXPECT_EQ(r.shard_of(899), 2u);
  EXPECT_EQ(r.shard_of(900), 3u);
  EXPECT_EQ(r.shard_of(999), 3u);
}

TEST(RangeRouter, FullDomainRouterHandlesNegativeKeys) {
  range_router<int> r(8);
  EXPECT_EQ(r.shard_of(std::numeric_limits<int>::min()), 0u);
  EXPECT_EQ(r.shard_of(std::numeric_limits<int>::max()),
            r.shard_count() - 1);
  // Monotone across the sign boundary.
  EXPECT_LE(r.shard_of(-1), r.shard_of(0));
  EXPECT_LT(r.shard_of(std::numeric_limits<int>::min()), r.shard_of(0));
}

// --- 1-shard degeneracy -----------------------------------------------------

TEST(ShardedSet, OneShardBehavesExactlyLikeThePlainTree) {
  sharded_set<nm_tree<long>> sharded(1, 0, 1024);
  nm_tree<long> plain;
  ASSERT_EQ(sharded.shard_count(), 1u);

  pcg32 rng(7);
  for (int i = 0; i < 20'000; ++i) {
    const long k = static_cast<long>(rng.bounded(1024));
    switch (rng.bounded(3)) {
      case 0: EXPECT_EQ(sharded.insert(k), plain.insert(k)) << k; break;
      case 1: EXPECT_EQ(sharded.erase(k), plain.erase(k)) << k; break;
      default:
        EXPECT_EQ(sharded.contains(k), plain.contains(k)) << k;
    }
  }
  EXPECT_EQ(sharded.size_slow(), plain.size_slow());
  std::vector<long> sharded_keys, plain_keys;
  sharded.for_each_slow([&](const long& k) { sharded_keys.push_back(k); });
  plain.for_each_slow([&](const long& k) { plain_keys.push_back(k); });
  EXPECT_EQ(sharded_keys, plain_keys);
  EXPECT_EQ(sharded.validate(), "");
}

// --- single-key operations across shards ------------------------------------

TEST(ShardedSet, OperationsMatchStdSetOracleAcrossShards) {
  sharded_set<nm_tree<long>> set(8, 0, 4096);
  std::set<long> oracle;
  pcg32 rng(11);
  for (int i = 0; i < 30'000; ++i) {
    const long k = static_cast<long>(rng.bounded(4096));
    switch (rng.bounded(3)) {
      case 0:
        EXPECT_EQ(set.insert(k), oracle.insert(k).second);
        break;
      case 1:
        EXPECT_EQ(set.erase(k), oracle.erase(k) > 0);
        break;
      default:
        EXPECT_EQ(set.contains(k), oracle.count(k) > 0);
    }
  }
  EXPECT_EQ(set.size_slow(), oracle.size());
  EXPECT_EQ(set.validate(), "");
}

TEST(ShardedSet, KeysLandInTheRoutedShard) {
  sharded_set<nm_tree<long>> set(8, 0, 800);
  for (long k = 0; k < 800; k += 7) ASSERT_TRUE(set.insert(k));
  for (std::size_t i = 0; i < set.shard_count(); ++i) {
    set.shard(i).for_each_slow([&](const long& k) {
      EXPECT_EQ(set.router().shard_of(k), i) << "key " << k;
    });
  }
  EXPECT_EQ(set.validate(), "");
}

// --- batched operations -----------------------------------------------------

TEST(ShardedSet, BatchSpanningAllShardsPreservesInputOrder) {
  sharded_set<nm_tree<long>> set(8, 0, 1024);
  // One key per shard, deliberately in reverse shard order, plus a
  // second round that must all fail.
  std::vector<long> keys;
  for (int s = 7; s >= 0; --s) keys.push_back(s * 128 + 3);
  std::vector<bool> first = set.insert_batch(keys);
  EXPECT_EQ(first, std::vector<bool>(8, true));
  std::vector<bool> second = set.insert_batch(keys);
  EXPECT_EQ(second, std::vector<bool>(8, false));
  EXPECT_EQ(set.contains_batch(keys), std::vector<bool>(8, true));
  EXPECT_EQ(set.erase_batch(keys), std::vector<bool>(8, true));
  EXPECT_EQ(set.size_slow(), 0u);
}

TEST(ShardedSet, DuplicateKeysInOneBatchApplyInInputOrder) {
  sharded_set<nm_tree<long>> set(4, 0, 64);
  const std::vector<long> keys{5, 5, 9, 5};
  const std::vector<bool> inserted = set.insert_batch(keys);
  EXPECT_EQ(inserted, (std::vector<bool>{true, false, true, false}));
  const std::vector<bool> erased = set.erase_batch({5, 5});
  EXPECT_EQ(erased, (std::vector<bool>{true, false}));
}

TEST(ShardedSet, MixedBatchResultsLandAtOriginalPositions) {
  sharded_set<nm_tree<long>> set(8, 0, 1024);
  std::set<long> oracle;
  pcg32 rng(13);
  for (int round = 0; round < 50; ++round) {
    std::vector<long> keys;
    const unsigned n = 1 + rng.bounded(64);
    for (unsigned i = 0; i < n; ++i) {
      keys.push_back(static_cast<long>(rng.bounded(1024)));
    }
    const auto mode = rng.bounded(3);
    std::vector<bool> got;
    std::vector<bool> want;
    if (mode == 0) {
      got = set.insert_batch(keys);
      for (const long k : keys) want.push_back(oracle.insert(k).second);
    } else if (mode == 1) {
      got = set.erase_batch(keys);
      for (const long k : keys) want.push_back(oracle.erase(k) > 0);
    } else {
      got = set.contains_batch(keys);
      for (const long k : keys) want.push_back(oracle.count(k) > 0);
    }
    ASSERT_EQ(got, want) << "round " << round << " mode " << mode;
  }
  EXPECT_EQ(set.size_slow(), oracle.size());
  EXPECT_EQ(set.validate(), "");
}

TEST(ShardedSet, EmptyBatchIsANoOp) {
  sharded_set<nm_tree<long>> set(4, 0, 64);
  EXPECT_TRUE(set.insert_batch({}).empty());
  EXPECT_TRUE(set.erase_batch({}).empty());
  EXPECT_TRUE(set.contains_batch({}).empty());
}

// --- range scan -------------------------------------------------------------

TEST(ShardedSet, RangeScanStitchesShardsInKeyOrder) {
  sharded_set<nm_tree<long>> set(8, 0, 1024);
  std::vector<long> inserted;
  pcg32 rng(17);
  for (int i = 0; i < 400; ++i) {
    const long k = static_cast<long>(rng.bounded(1024));
    if (set.insert(k)) inserted.push_back(k);
  }
  std::sort(inserted.begin(), inserted.end());
  EXPECT_EQ(set.range_scan(0, 1024), inserted);
}

TEST(ShardedSet, RangeScanHonorsHalfOpenBounds) {
  sharded_set<nm_tree<long>> set(4, 0, 1024);
  for (long k : {10L, 20L, 30L, 40L}) ASSERT_TRUE(set.insert(k));
  EXPECT_EQ(set.range_scan(20, 40), (std::vector<long>{20, 30}));
  EXPECT_EQ(set.range_scan(20, 41), (std::vector<long>{20, 30, 40}));
  EXPECT_EQ(set.range_scan(21, 40), (std::vector<long>{30}));
  EXPECT_TRUE(set.range_scan(20, 20).empty());   // empty interval
  EXPECT_TRUE(set.range_scan(40, 20).empty());   // inverted interval
  EXPECT_TRUE(set.range_scan(50, 1024).empty()); // nothing above 40
}

TEST(ShardedSet, RangeScanAcrossEmptyMiddleShards) {
  sharded_set<nm_tree<long>> set(8, 0, 1024);
  // Keys only in the first and last shard; the six shards in between
  // are empty and must contribute nothing.
  ASSERT_TRUE(set.insert(5));
  ASSERT_TRUE(set.insert(1000));
  EXPECT_EQ(set.range_scan(0, 1024), (std::vector<long>{5, 1000}));
  EXPECT_TRUE(set.range_scan(200, 800).empty());
}

TEST(ShardedSet, RangeScanOnEmptySetIsEmpty) {
  sharded_set<nm_tree<long>> set(8, 0, 1024);
  EXPECT_TRUE(set.range_scan(0, 1024).empty());
}

TEST(ShardedSet, RangeScanAtSplitterBoundary) {
  sharded_set<nm_tree<long>> set(4, 0, 1024);
  const long b1 = set.router().splitter(1);
  const long b2 = set.router().splitter(2);
  for (long k = b1 - 2; k < b2 + 2; ++k) ASSERT_TRUE(set.insert(k));
  // Exactly shard 1's range: starts on its splitter, ends one short of
  // the next.
  std::vector<long> want;
  for (long k = b1; k < b2; ++k) want.push_back(k);
  EXPECT_EQ(set.range_scan(b1, b2), want);
}

TEST(ShardedSet, RangeScanClosedIncludesBothEndpoints) {
  sharded_set<nm_tree<long>> set(4, 0, 1024);
  for (long k : {10L, 20L, 30L, 40L}) ASSERT_TRUE(set.insert(k));
  EXPECT_EQ(set.range_scan_closed(20, 40), (std::vector<long>{20, 30, 40}));
  EXPECT_EQ(set.range_scan_closed(20, 20), (std::vector<long>{20}));
  EXPECT_TRUE(set.range_scan_closed(40, 20).empty());  // inverted interval
  EXPECT_TRUE(set.range_scan_closed(21, 29).empty());
}

// --- bounded scans (the server's paging form) -------------------------------

TEST(ShardedSet, RangeScanLimitPagesStitchIntoTheFullScan) {
  sharded_set<nm_tree<long>> set(8, 0, 1024);
  pcg32 rng(23);
  for (int i = 0; i < 500; ++i) {
    (void)set.insert(static_cast<long>(rng.bounded(1024)));
  }
  const std::vector<long> full = set.range_scan(0, 1024);
  for (const std::size_t page_size : {1u, 3u, 7u, 64u, 4096u}) {
    std::vector<long> paged;
    long cursor = 0;
    for (;;) {
      const auto page = set.range_scan_limit(cursor, 1024, page_size);
      EXPECT_LE(page.keys.size(), page_size);
      paged.insert(paged.end(), page.keys.begin(), page.keys.end());
      if (!page.truncated) break;
      EXPECT_GT(page.resume_key, cursor);  // progress every page
      cursor = page.resume_key;
    }
    EXPECT_EQ(paged, full) << "page size " << page_size;
  }
}

TEST(ShardedSet, RangeScanLimitResumesExactlyAtShardBoundaries) {
  sharded_set<nm_tree<long>> set(4, 0, 1024);
  const long b1 = set.router().splitter(1);
  // Keys straddling the seam: b1-3 .. b1+2 plus distant outliers.
  for (long k = b1 - 3; k <= b1 + 2; ++k) ASSERT_TRUE(set.insert(k));
  ASSERT_TRUE(set.insert(5));
  ASSERT_TRUE(set.insert(1000));
  // A page that fills exactly at the last key below the seam must
  // resume at the seam key itself — nothing skipped, nothing repeated.
  const auto page = set.range_scan_limit(0, 1024, 4);  // 5, b1-3..b1-1
  ASSERT_EQ(page.keys, (std::vector<long>{5, b1 - 3, b1 - 2, b1 - 1}));
  ASSERT_TRUE(page.truncated);
  EXPECT_EQ(page.resume_key, b1);
  const auto rest = set.range_scan_limit(page.resume_key, 1024, 4096);
  EXPECT_EQ(rest.keys, (std::vector<long>{b1, b1 + 1, b1 + 2, 1000}));
  EXPECT_FALSE(rest.truncated);
}

TEST(ShardedSet, RangeScanLimitEdgeCases) {
  sharded_set<nm_tree<long>> set(4, 0, 1024);
  for (long k : {10L, 20L, 30L}) ASSERT_TRUE(set.insert(k));
  // Zero budget: a pure continuation marker, resuming at lo.
  const auto zero = set.range_scan_limit(10, 31, 0);
  EXPECT_TRUE(zero.keys.empty());
  EXPECT_TRUE(zero.truncated);
  EXPECT_EQ(zero.resume_key, 10);
  // Empty and inverted intervals are complete, not truncated.
  EXPECT_FALSE(set.range_scan_limit(10, 10, 8).truncated);
  EXPECT_FALSE(set.range_scan_limit(30, 10, 8).truncated);
  // Budget larger than the population: complete in one page.
  const auto all = set.range_scan_limit(0, 1024, 8);
  EXPECT_EQ(all.keys, (std::vector<long>{10, 20, 30}));
  EXPECT_FALSE(all.truncated);
  // Budget exactly the population: conservatively truncated (the scan
  // cannot know it finished), and the follow-up page is empty.
  const auto exact = set.range_scan_limit(0, 1024, 3);
  EXPECT_EQ(exact.keys, (std::vector<long>{10, 20, 30}));
  EXPECT_TRUE(exact.truncated);
  const auto after = set.range_scan_limit(exact.resume_key, 1024, 3);
  EXPECT_TRUE(after.keys.empty());
  EXPECT_FALSE(after.truncated);
  // A page ending exactly at hi - 1 is complete by construction.
  const auto to_edge = set.range_scan_limit(0, 31, 3);
  EXPECT_EQ(to_edge.keys, (std::vector<long>{10, 20, 30}));
  EXPECT_FALSE(to_edge.truncated);
}

TEST(ShardedSet, RangeScanLimitAtTheKeyDomainMaximum) {
  // The resume arithmetic must not overflow when a full page ends on
  // the largest representable key.
  sharded_set<nm_tree<long>> set;  // whole long domain
  const long max = std::numeric_limits<long>::max();
  ASSERT_TRUE(set.insert(max - 2));
  ASSERT_TRUE(set.insert(max - 1));
  const auto page = set.range_scan_limit(max - 2, max, 2);
  EXPECT_EQ(page.keys, (std::vector<long>{max - 2, max - 1}));
  EXPECT_FALSE(page.truncated);  // last key == hi - 1: complete
}

TEST(ShardedSet, RangeScanLimitFallsBackForTreesWithoutBoundedScan) {
  // EFRB has no bounded concurrent scan: the quiescent fallback must
  // still page correctly (in key order, budget respected).
  sharded_set<efrb_tree<long>> set(4, 0, 1024);
  for (long k : {3L, 300L, 600L, 900L}) ASSERT_TRUE(set.insert(k));
  const auto page = set.range_scan_limit(0, 1024, 3);
  EXPECT_EQ(page.keys, (std::vector<long>{3, 300, 600}));
  ASSERT_TRUE(page.truncated);
  const auto rest = set.range_scan_limit(page.resume_key, 1024, 3);
  EXPECT_EQ(rest.keys, (std::vector<long>{900}));
  EXPECT_FALSE(rest.truncated);
}

TEST(ShardedSet, RangeScanClosedAtSplitterBoundary) {
  sharded_set<nm_tree<long>> set(4, 0, 1024);
  const long b1 = set.router().splitter(1);
  const long b2 = set.router().splitter(2);
  for (long k = b1 - 2; k <= b2 + 2; ++k) ASSERT_TRUE(set.insert(k));
  // Closed interval whose endpoints are exactly the splitters: both
  // boundary keys are included, and the scan crosses the shard seam.
  std::vector<long> want;
  for (long k = b1; k <= b2; ++k) want.push_back(k);
  EXPECT_EQ(set.range_scan_closed(b1, b2), want);
}

// The half-open form cannot name an interval containing the largest
// key of the domain — [lo, max) excludes max and [lo, max+1) overflows.
// The closed form covers that gap, all the way to the router's edge
// shard.
TEST(ShardedSet, RangeScanClosedReachesDomainMax) {
  constexpr long kMax = std::numeric_limits<long>::max();
  sharded_set<nm_tree<long>> set;  // default: whole key domain
  ASSERT_TRUE(set.insert(kMax));
  ASSERT_TRUE(set.insert(kMax - 5));
  ASSERT_TRUE(set.insert(0));
  EXPECT_EQ(set.range_scan_closed(kMax - 5, kMax),
            (std::vector<long>{kMax - 5, kMax}));
  EXPECT_EQ(set.range_scan_closed(0, kMax),
            (std::vector<long>{0, kMax - 5, kMax}));
  // Documented half-open behaviour over the same bounds: max excluded.
  EXPECT_EQ(set.range_scan(0, kMax), (std::vector<long>{0, kMax - 5}));
}

// --- merged metrics ---------------------------------------------------------

using recorded_nm =
    nm_tree<long, std::less<long>, reclaim::leaky, obs::recording>;

TEST(ShardedSet, MergedCountersEqualPerShardSums) {
  sharded_set<recorded_nm> set(4, 0, 256);
  pcg32 rng(23);
  std::uint64_t inserts = 0, searches = 0, erases = 0;
  for (int i = 0; i < 5'000; ++i) {
    const long k = static_cast<long>(rng.bounded(256));
    switch (rng.bounded(3)) {
      case 0: set.insert(k); ++inserts; break;
      case 1: set.erase(k); ++erases; break;
      default: set.contains(k); ++searches;
    }
  }
  const obs::metrics_snapshot merged = set.merged_counters();
  EXPECT_EQ(merged[obs::counter::ops_insert], inserts);
  EXPECT_EQ(merged[obs::counter::ops_search], searches);
  EXPECT_EQ(merged[obs::counter::ops_erase], erases);

  obs::metrics_snapshot manual;
  for (std::size_t i = 0; i < set.shard_count(); ++i) {
    manual.merge(set.shard(i).stats().counters().snapshot());
  }
  EXPECT_EQ(merged.values, manual.values);
}

TEST(ShardedSet, MergedHistogramsCoverEveryOperation) {
  sharded_set<recorded_nm> set(4, 0, 256);
  for (long k = 0; k < 200; ++k) set.insert(k);
  const obs::histogram lat =
      set.merged_latency_histogram(stats::op_kind::insert);
  EXPECT_EQ(lat.count(), 200u);
  const obs::histogram depth = set.merged_seek_depth_histogram();
  EXPECT_GT(depth.count(), 0u);
}

// --- composition over the other lock-free trees -----------------------------

template <typename Tree>
void composition_smoke() {
  sharded_set<Tree> set(4, 0, 512);
  std::set<long> oracle;
  pcg32 rng(29);
  for (int i = 0; i < 5'000; ++i) {
    const long k = static_cast<long>(rng.bounded(512));
    switch (rng.bounded(3)) {
      case 0: ASSERT_EQ(set.insert(k), oracle.insert(k).second); break;
      case 1: ASSERT_EQ(set.erase(k), oracle.erase(k) > 0); break;
      default: ASSERT_EQ(set.contains(k), oracle.count(k) > 0);
    }
  }
  ASSERT_EQ(set.size_slow(), oracle.size());
  ASSERT_EQ(set.validate(), "");
  std::vector<long> want(oracle.begin(), oracle.end());
  ASSERT_EQ(set.range_scan(0, 512), want);
}

TEST(ShardedSet, ComposesOverEfrb) { composition_smoke<efrb_tree<long>>(); }
TEST(ShardedSet, ComposesOverHj) { composition_smoke<hj_tree<long>>(); }
TEST(ShardedSet, ComposesOverNmWithEpochReclamation) {
  composition_smoke<nm_tree<long, std::less<long>, reclaim::epoch>>();
}

TEST(ShardedSet, DefaultConstructionCoversTheWholeKeyDomain) {
  sharded_set<nm_tree<int>> set;
  EXPECT_EQ(set.shard_count(), sharded_set<nm_tree<int>>::default_shard_count);
  EXPECT_TRUE(set.insert(-1'000'000));
  EXPECT_TRUE(set.insert(0));
  EXPECT_TRUE(set.insert(1'000'000));
  EXPECT_EQ(set.range_scan(-2'000'000, 2'000'000),
            (std::vector<int>{-1'000'000, 0, 1'000'000}));
  EXPECT_EQ(set.validate(), "");
}

static_assert(ConcurrentSet<shard::sharded_set<nm_tree<long>>>);
static_assert(ConcurrentSet<shard::sharded_set<efrb_tree<long>>>);
static_assert(ConcurrentSet<shard::sharded_set<hj_tree<long>>>);

}  // namespace
}  // namespace lfbst
