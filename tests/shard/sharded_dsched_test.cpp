// Deterministic schedule exploration through the sharded front-end:
// the inner NM trees run under dsched::sched_atomics, so every
// flag/tag/CAS step of every shard is a schedule point and the
// exploration drives batched operations through genuinely interleaved
// cross-shard and same-shard executions. Every terminal state is
// checked for per-element linearizability (batches are not atomic;
// each element must linearize somewhere inside the batch call) and
// structural validity of every shard.
//
// Budgets scale with LFBST_DSCHED_BUDGET_SCALE (the nightly workflow
// raises it; PR CI runs at 1).
#include <gtest/gtest.h>

#include <vector>

#include "core/natarajan_tree.hpp"
#include "dsched/atomics.hpp"
#include "dsched/harness.hpp"
#include "shard/sharded_set.hpp"

namespace lfbst {
namespace {

using sched_nm = nm_tree<int, std::less<int>, reclaim::leaky, stats::none,
                         tag_policy::bts, void, dsched::sched_atomics>;

// The harness default-constructs the tree under test; pin the shard
// geometry to 4 shards over the dsched key universe [0, 64), i.e.
// shards of 16 keys with splitters at 16/32/48.
struct sched_sharded : shard::sharded_set<sched_nm> {
  sched_sharded() : sharded_set(4, 0, 64) {}
};

using scenario = dsched::scenario<sched_sharded>;

// --------------------------------------------------------------------
// Cross-shard batches: two threads' batches each span two shards, so
// the four element operations interleave across independent trees. The
// per-element results must still linearize (and they exercise the
// batch grouping path, not just the router).
// --------------------------------------------------------------------

TEST(ShardedDsched, CrossShardBatchInsertVsBatchEraseExhaustive) {
  scenario sc;
  sc.setup = [](sched_sharded& t) {
    ASSERT_TRUE(t.insert(1));   // shard 0
    ASSERT_TRUE(t.insert(33));  // shard 2
  };
  sc.threads.push_back([](dsched::recorder<sched_sharded>& r) {
    r.insert_batch({2, 34});  // shards 0 and 2
  });
  sc.threads.push_back([](dsched::recorder<sched_sharded>& r) {
    r.erase_batch({1, 33});  // the same two shards
  });
  sc.universe = {1, 2, 33, 34};
  const auto sum =
      dsched::explore_dfs(sc, dsched::scaled_budget(4096));
  EXPECT_TRUE(sum.all_ok()) << sum.first_failure;
  EXPECT_GE(sum.executions, 100u);
}

// --------------------------------------------------------------------
// Same-shard contention through the batch path: a batch's two elements
// and two racing single-key deletes all target shard 0, so the NM
// protocol's flag/tag/cleanup windows open between batch elements.
// --------------------------------------------------------------------

TEST(ShardedDsched, SameShardBatchVsRacingDeletesExhaustive) {
  scenario sc;
  sc.setup = [](sched_sharded& t) {
    ASSERT_TRUE(t.insert(1));
    ASSERT_TRUE(t.insert(2));
  };
  sc.threads.push_back([](dsched::recorder<sched_sharded>& r) {
    r.insert_batch({3, 1});  // second element collides with the erase
  });
  sc.threads.push_back([](dsched::recorder<sched_sharded>& r) {
    r.erase(1);
    r.erase(2);
  });
  sc.universe = {1, 2, 3};
  const auto sum =
      dsched::explore_dfs(sc, dsched::scaled_budget(4096));
  EXPECT_TRUE(sum.all_ok()) << sum.first_failure;
  EXPECT_GE(sum.executions, 100u);
}

// --------------------------------------------------------------------
// Splitter-boundary race: key 16 is the first key of shard 1 and key
// 15 the last of shard 0. A batch covering both races a batch erasing
// both — exercising routing exactness under interleaving.
// --------------------------------------------------------------------

TEST(ShardedDsched, SplitterBoundaryBatchesExhaustive) {
  scenario sc;
  sc.setup = [](sched_sharded& t) {
    ASSERT_EQ(t.router().splitter(1), 16);
    ASSERT_TRUE(t.insert(15));
    ASSERT_TRUE(t.insert(16));
  };
  sc.threads.push_back([](dsched::recorder<sched_sharded>& r) {
    r.contains_batch({15, 16});
    r.insert_batch({15, 16});
  });
  sc.threads.push_back([](dsched::recorder<sched_sharded>& r) {
    r.erase_batch({16, 15});
  });
  sc.universe = {15, 16};
  const auto sum =
      dsched::explore_dfs(sc, dsched::scaled_budget(4096));
  EXPECT_TRUE(sum.all_ok()) << sum.first_failure;
  EXPECT_GE(sum.executions, 100u);
}

// --------------------------------------------------------------------
// Three-thread PCT + random-walk sweeps over a denser mix of batches
// and singles across all four shards.
// --------------------------------------------------------------------

TEST(ShardedDsched, ThreeThreadBatchSoupPctSweep) {
  scenario sc;
  sc.setup = [](sched_sharded& t) {
    for (int k : {1, 17, 33, 49}) ASSERT_TRUE(t.insert(k));
  };
  sc.threads.push_back([](dsched::recorder<sched_sharded>& r) {
    r.insert_batch({2, 18, 34});
  });
  sc.threads.push_back([](dsched::recorder<sched_sharded>& r) {
    r.erase_batch({1, 17});
    r.insert(50);
  });
  sc.threads.push_back([](dsched::recorder<sched_sharded>& r) {
    r.contains_batch({1, 33});
    r.erase(49);
  });
  sc.universe = {1, 2, 17, 18, 33, 34, 49, 50};
  const auto pct = dsched::explore_pct(sc, /*base_seed=*/7000,
                                       dsched::scaled_budget(500),
                                       /*depth=*/3);
  EXPECT_TRUE(pct.all_ok()) << pct.first_failure;
  const auto walk = dsched::explore_random(sc, /*base_seed=*/9000,
                                           dsched::scaled_budget(500));
  EXPECT_TRUE(walk.all_ok()) << walk.first_failure;
}

// --------------------------------------------------------------------
// Splitter migration racing recorded operations. The migration thread
// drives sharded_set::migrate_splitter through the recorder's tree()
// escape hatch: it is control plane, not a history op — the check is
// precisely that membership histories stay linearizable while the
// partition moves under them. dual-routing window, gate quiescence and
// drain all execute at schedule points (the inner trees and the gate
// spins both run under sched_atomics/shared_step).
//
// Only DFS and random-walk exploration here, no PCT: the quiesce spin
// is a genuine wait (the migrator cannot progress while an op thread
// is parked inside the gate), and PCT's fixed priorities can pin the
// spinning migrator forever — a scheduler artifact, not a bug. DFS's
// lowest-runnable completion rule and the random walk are both fair
// enough to drain the gate on every explored path.
// --------------------------------------------------------------------

TEST(ShardedDschedMigration, SinglesRacingSplitterMigrationExhaustive) {
  scenario sc;
  sc.setup = [](sched_sharded& t) {
    t.arm_rebalancing();
    ASSERT_TRUE(t.insert(14));  // inside the moving subrange [12, 16)
    ASSERT_TRUE(t.insert(17));  // shard 1, outside it
  };
  sc.threads.push_back([](dsched::recorder<sched_sharded>& r) {
    r.insert(15);  // lands in the subrange mid-flight
    r.contains(14);
    r.erase(17);
  });
  sc.threads.push_back([](dsched::recorder<sched_sharded>& r) {
    // Lower splitter 1 from 16 to 12: [12, 16) moves shard 0 -> 1.
    (void)r.tree().migrate_splitter(1, 12);
  });
  sc.universe = {14, 15, 17};
  sc.on_terminal = [](sched_sharded& t) {
    ASSERT_EQ(t.router().splitter(1), 12);
    // Post-migration, every key sits where the new router points.
    for (int k : t.shard(1).range_scan_closed(0, 63)) {
      ASSERT_GE(k, 12);
    }
    ASSERT_TRUE(t.shard(0).range_scan_closed(12, 63).empty());
  };
  const auto sum = dsched::explore_dfs(sc, dsched::scaled_budget(2048));
  EXPECT_TRUE(sum.all_ok()) << sum.first_failure;
  EXPECT_GE(sum.executions, 50u);
}

TEST(ShardedDschedMigration, BatchAcrossMovingBoundaryExhaustive) {
  scenario sc;
  sc.setup = [](sched_sharded& t) {
    t.arm_rebalancing();
    ASSERT_TRUE(t.insert(13));
  };
  sc.threads.push_back([](dsched::recorder<sched_sharded>& r) {
    // One element in the moving subrange, one outside: the batch's
    // two per-element linearization points straddle the flip.
    r.insert_batch({14, 18});
    r.erase(13);
  });
  sc.threads.push_back([](dsched::recorder<sched_sharded>& r) {
    (void)r.tree().migrate_splitter(1, 12);
  });
  sc.universe = {13, 14, 18};
  const auto sum = dsched::explore_dfs(sc, dsched::scaled_budget(2048));
  EXPECT_TRUE(sum.all_ok()) << sum.first_failure;
  EXPECT_GE(sum.executions, 50u);
}

TEST(ShardedDschedMigration, ScanRacingSplitterMigrationSweep) {
  scenario sc;
  sc.setup = [](sched_sharded& t) {
    t.arm_rebalancing();
    for (int k : {10, 14, 18}) ASSERT_TRUE(t.insert(k));
  };
  sc.threads.push_back([](dsched::recorder<sched_sharded>& r) {
    // The conservative-interval scan contract must hold across the
    // flip: 10 and 18 are present the whole time and must appear.
    r.range_scan(8, 24);
  });
  sc.threads.push_back([](dsched::recorder<sched_sharded>& r) {
    r.erase(14);
    r.insert(15);
  });
  sc.threads.push_back([](dsched::recorder<sched_sharded>& r) {
    (void)r.tree().migrate_splitter(1, 12);
  });
  sc.universe = {10, 14, 15, 18};
  const auto dfs = dsched::explore_dfs(sc, dsched::scaled_budget(1024));
  EXPECT_TRUE(dfs.all_ok()) << dfs.first_failure;
  const auto walk = dsched::explore_random(sc, /*base_seed=*/11000,
                                           dsched::scaled_budget(500));
  EXPECT_TRUE(walk.all_ok()) << walk.first_failure;
}

TEST(ShardedDschedMigration, OpposingMigrationsRandomWalk) {
  scenario sc;
  sc.setup = [](sched_sharded& t) {
    t.arm_rebalancing();
    for (int k : {14, 30, 46}) ASSERT_TRUE(t.insert(k));
  };
  sc.threads.push_back([](dsched::recorder<sched_sharded>& r) {
    r.insert(15);
    r.contains(30);
    r.erase(46);
  });
  sc.threads.push_back([](dsched::recorder<sched_sharded>& r) {
    // Two serialized flips of different boundaries from one control
    // thread: boundary 1 down, boundary 3 up.
    (void)r.tree().migrate_splitter(1, 12);
    (void)r.tree().migrate_splitter(3, 52);
  });
  sc.universe = {14, 15, 30, 46};
  sc.on_terminal = [](sched_sharded& t) {
    ASSERT_EQ(t.router().splitter(1), 12);
    ASSERT_EQ(t.router().splitter(3), 52);
  };
  const auto walk = dsched::explore_random(sc, /*base_seed=*/13000,
                                           dsched::scaled_budget(600));
  EXPECT_TRUE(walk.all_ok()) << walk.first_failure;
}

}  // namespace
}  // namespace lfbst
