// Concurrency tests for the sharded front-end under wall-clock
// scheduling: conservation under a mixed soup of single-key and batched
// operations, cross-shard batch linearizability checked per element
// with the Wing–Gong checker, and stripe-ownership exactness (each
// thread owns keys scattered over every shard).
//
// The deterministic counterpart lives in
// tests/shard/sharded_dsched_test.cpp.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "common/barrier.hpp"
#include "common/rng.hpp"
#include "lfbst/lfbst.hpp"
#include "lincheck/recorder.hpp"

namespace lfbst {
namespace {

constexpr unsigned kThreads = 4;

using sharded_nm = shard::sharded_set<nm_tree<long>>;

// Successful inserts minus successful erases must equal the final size,
// with batches contributing every element individually.
TEST(ShardedConcurrent, MixedSinglesAndBatchesConserveSize) {
  sharded_nm set(8, 0, 512);
  constexpr int kRoundsPerThread = 4'000;
  std::atomic<long> net{0};
  spin_barrier barrier(kThreads);
  std::vector<std::thread> threads;
  for (unsigned tid = 0; tid < kThreads; ++tid) {
    threads.emplace_back([&, tid] {
      pcg32 rng = pcg32::for_thread(2026, tid);
      long local_net = 0;
      barrier.arrive_and_wait();
      for (int i = 0; i < kRoundsPerThread; ++i) {
        const auto roll = rng.bounded(6);
        if (roll < 3) {  // single-key ops
          const long k = rng.bounded(512);
          if (roll == 0) {
            if (set.insert(k)) ++local_net;
          } else if (roll == 1) {
            if (set.erase(k)) --local_net;
          } else {
            (void)set.contains(k);
          }
        } else {  // batched ops spanning shards
          std::vector<long> keys;
          const unsigned n = 1 + rng.bounded(16);
          for (unsigned j = 0; j < n; ++j) {
            keys.push_back(rng.bounded(512));
          }
          if (roll == 3) {
            for (const bool ok : set.insert_batch(keys)) {
              if (ok) ++local_net;
            }
          } else if (roll == 4) {
            for (const bool ok : set.erase_batch(keys)) {
              if (ok) --local_net;
            }
          } else {
            (void)set.contains_batch(keys);
          }
        }
      }
      net.fetch_add(local_net, std::memory_order_relaxed);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(static_cast<long>(set.size_slow()), net.load());
  EXPECT_EQ(set.validate(), "");
}

// Threads own disjoint key stripes scattered across every shard
// (stripe = key mod kThreads), so each stripe's final membership is
// exactly predictable even though batches interleave freely.
TEST(ShardedConcurrent, StripedBatchOwnershipIsExact) {
  sharded_nm set(8, 0, 1024);
  spin_barrier barrier(kThreads);
  std::vector<std::set<long>> finals(kThreads);
  std::vector<std::thread> threads;
  for (unsigned tid = 0; tid < kThreads; ++tid) {
    threads.emplace_back([&, tid] {
      pcg32 rng = pcg32::for_thread(31, tid);
      std::set<long> mine;
      barrier.arrive_and_wait();
      for (int round = 0; round < 2'000; ++round) {
        std::vector<long> keys;
        const unsigned n = 1 + rng.bounded(8);
        for (unsigned j = 0; j < n; ++j) {
          // This thread's stripe only, spread over all shards.
          keys.push_back((rng.bounded(256)) * kThreads + tid);
        }
        if (rng.bounded(2) == 0) {
          const auto ok = set.insert_batch(keys);
          for (std::size_t j = 0; j < keys.size(); ++j) {
            const bool expected = mine.insert(keys[j]).second;
            ASSERT_EQ(ok[j], expected) << "key " << keys[j];
          }
        } else {
          const auto ok = set.erase_batch(keys);
          for (std::size_t j = 0; j < keys.size(); ++j) {
            const bool expected = mine.erase(keys[j]) > 0;
            ASSERT_EQ(ok[j], expected) << "key " << keys[j];
          }
        }
      }
      finals[tid] = std::move(mine);
    });
  }
  for (auto& t : threads) t.join();

  std::set<long> expected;
  for (const auto& f : finals) expected.insert(f.begin(), f.end());
  std::set<long> actual;
  set.for_each_slow([&](const long& k) { actual.insert(k); });
  EXPECT_EQ(actual, expected);
  EXPECT_EQ(set.validate(), "");
}

// Small concurrent histories of batches + singles, each element one
// history entry, decided by the Wing–Gong checker. Terminal membership
// is folded in as late contains ops so the final state must be
// explained by the same linearization.
TEST(ShardedConcurrent, BatchElementsAreLinearizable) {
  constexpr int kHistories = 150;
  constexpr unsigned kWorkers = 3;
  for (int h = 0; h < kHistories; ++h) {
    shard::sharded_set<nm_tree<int>> set(4, 0, 16);
    lincheck::recorder rec;
    spin_barrier barrier(kWorkers);
    std::vector<std::thread> workers;
    for (unsigned tid = 0; tid < kWorkers; ++tid) {
      workers.emplace_back([&, tid] {
        pcg32 rng = pcg32::for_thread(
            static_cast<std::uint64_t>(h) * 7919 + 1, tid);
        barrier.arrive_and_wait();
        for (int op = 0; op < 3; ++op) {
          std::vector<int> keys;
          const unsigned n = 1 + rng.bounded(3);
          for (unsigned j = 0; j < n; ++j) {
            keys.push_back(static_cast<int>(rng.bounded(16)));
          }
          switch (rng.bounded(3)) {
            case 0: rec.insert_batch(set, keys); break;
            case 1: rec.erase_batch(set, keys); break;
            default: rec.contains_batch(set, keys);
          }
        }
      });
    }
    for (auto& t : workers) t.join();

    lincheck::history hist = rec.take();
    // Terminal observations, strictly after everything else.
    std::uint64_t ts = 1;
    for (const auto& op : hist) {
      ts = std::max(ts, op.response + 1);
    }
    for (int k = 0; k < 16; ++k) {
      hist.push_back({lincheck::op_kind::contains, k, set.contains(k), ts,
                      ts});
      ++ts;
    }
    ASSERT_LE(hist.size(), lincheck::checker::max_ops);
    EXPECT_TRUE(lincheck::checker::is_linearizable(hist))
        << "history " << h << " not linearizable";
    ASSERT_EQ(set.validate(), "");
  }
}

// Scans racing writers, checked with the Wing–Gong checker: the
// recorder turns each scan into one contains(k, k ∈ result) entry per
// interval key over the scan's conservative window, so a key the scan
// wrongly misses (present for the whole window) or wrongly reports
// (absent throughout) makes the history non-linearizable.
TEST(ShardedConcurrent, ScanResultsAreLinearizable) {
  constexpr int kHistories = 120;
  for (int h = 0; h < kHistories; ++h) {
    shard::sharded_set<nm_tree<int>> set(4, 0, 16);
    std::uint64_t initial_state = 0;
    for (int k = 0; k < 16; k += 4) {
      ASSERT_TRUE(set.insert(k));  // pre-population, outside the history
      initial_state |= std::uint64_t{1} << k;
    }
    lincheck::recorder rec;
    spin_barrier barrier(3);
    std::vector<std::thread> workers;
    for (unsigned tid = 0; tid < 2; ++tid) {
      workers.emplace_back([&, tid] {
        pcg32 rng = pcg32::for_thread(
            static_cast<std::uint64_t>(h) * 104729 + 3, tid);
        barrier.arrive_and_wait();
        for (int op = 0; op < 4; ++op) {
          const int k = static_cast<int>(rng.bounded(16));
          if (rng.bounded(2) == 0) {
            rec.insert(set, k);
          } else {
            rec.erase(set, k);
          }
        }
      });
    }
    workers.emplace_back([&] {
      barrier.arrive_and_wait();
      rec.range_scan(set, 2, 14);  // 12 history entries per scan
      rec.range_scan(set, 0, 8);
    });
    for (auto& t : workers) t.join();

    lincheck::history hist = rec.take();
    std::uint64_t ts = 1;
    for (const auto& op : hist) ts = std::max(ts, op.response + 1);
    for (int k = 0; k < 16; ++k) {
      hist.push_back({lincheck::op_kind::contains, k, set.contains(k), ts,
                      ts});
      ++ts;
    }
    ASSERT_LE(hist.size(), lincheck::checker::max_ops);
    EXPECT_TRUE(lincheck::checker::is_linearizable(hist, initial_state))
        << "history " << h << " not linearizable";
    ASSERT_EQ(set.validate(), "");
  }
}

// Concurrent range scans against the *churning* shards themselves — the
// contract the per-shard concurrent scan lifts to the front-end: no
// quiescence anywhere, yet every scan stays sorted, in-interval, and
// complete for keys that were present the whole time. STABLE keys
// (k % 3 == 0) are pre-inserted and never touched; CHURN keys
// (k % 3 == 1) flicker under the writers; NEVER keys (k % 3 == 2) are
// never inserted and must never appear.
template <typename Tree>
void sharded_churning_scan_contract() {
  shard::sharded_set<Tree> set(8, 0, 1024);
  for (long k = 0; k < 1024; k += 3) ASSERT_TRUE(set.insert(k));
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (unsigned w = 0; w < 3; ++w) {
    writers.emplace_back([&set, &stop, w] {
      pcg32 rng = pcg32::for_thread(97, w);
      while (!stop.load(std::memory_order_relaxed)) {
        const long k = 3 * static_cast<long>(rng.bounded(341)) + 1;
        if ((rng() & 1u) != 0) {
          set.insert(k);
        } else {
          set.erase(k);
        }
      }
    });
  }
  for (int scan = 0; scan < 60; ++scan) {
    const bool closed = (scan & 1) != 0;
    const long lo = 100 + scan;
    const long hi = 900 - scan;
    const std::vector<long> got =
        closed ? set.range_scan_closed(lo, hi) : set.range_scan(lo, hi);
    std::set<long> seen;
    for (std::size_t j = 0; j < got.size(); ++j) {
      const long k = got[j];
      ASSERT_TRUE(j == 0 || got[j - 1] < k) << "not sorted at scan " << scan;
      ASSERT_GE(k, lo);
      if (closed) {
        ASSERT_LE(k, hi);
      } else {
        ASSERT_LT(k, hi);
      }
      ASSERT_NE(k % 3, 2) << "NEVER key " << k << " reported present";
      seen.insert(k);
    }
    for (long k = lo + ((3 - lo % 3) % 3); closed ? k <= hi : k < hi; k += 3) {
      ASSERT_EQ(seen.count(k), 1u) << "STABLE key " << k << " missing";
    }
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& w : writers) w.join();
  EXPECT_EQ(set.validate(), "");
}

TEST(ShardedConcurrent, RangeScanOfChurningShardsEpoch) {
  sharded_churning_scan_contract<
      nm_tree<long, std::less<long>, reclaim::epoch>>();
}
TEST(ShardedConcurrent, RangeScanOfChurningShardsHazard) {
  sharded_churning_scan_contract<
      nm_tree<long, std::less<long>, reclaim::hazard>>();
}

// Concurrent range scans against untouched shards: writers hammer the
// low shards while a reader repeatedly scans the quiescent high range.
TEST(ShardedConcurrent, RangeScanOfQuiescentShardsDuringWrites) {
  sharded_nm set(8, 0, 1024);
  // High half pre-populated and never touched again: shards 4..7.
  std::vector<long> high;
  for (long k = 512; k < 1024; k += 3) {
    ASSERT_TRUE(set.insert(k));
    high.push_back(k);
  }
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    pcg32 rng(41);
    while (!stop.load(std::memory_order_relaxed)) {
      const long k = rng.bounded(512);  // low shards only
      if (rng.bounded(2) == 0) {
        set.insert(k);
      } else {
        set.erase(k);
      }
    }
  });
  for (int scan = 0; scan < 200; ++scan) {
    ASSERT_EQ(set.range_scan(512, 1024), high) << "scan " << scan;
  }
  stop.store(true, std::memory_order_relaxed);
  writer.join();
  EXPECT_EQ(set.validate(), "");
}

}  // namespace
}  // namespace lfbst
