// Regression tests for the router/comparator-order agreement check
// (shard/sharded_set.hpp: router_order_compatible). The range router
// partitions and stitches in numeric key order; a per-shard tree
// ordered by any other Compare would accept every routed key while
// quietly mis-sharding. The trait must reject those combinations at
// compile time and keep accepting everything that was legal before.
#include "shard/sharded_set.hpp"

#include <gtest/gtest.h>

#include <functional>
#include <set>

#include "common/rng.hpp"
#include "core/key_scramble.hpp"
#include "core/natarajan_tree.hpp"
#include "multiway/kary_tree.hpp"
#include "shard/router.hpp"

namespace lfbst {
namespace {

// Numeric-ordered trees — every tree of the paper's evaluation — stay
// shardable.
static_assert(shard::router_order_compatible_v<nm_tree<long>>);
static_assert(shard::router_order_compatible_v<nm_tree<int>>);
static_assert(shard::router_order_compatible_v<kary_tree<long, 8>>);

// A type that predates the key_compare export is presumed
// numeric-ordered (permissive default — the check cannot see inside).
struct legacy_set {
  using key_type = long;
};
static_assert(shard::router_order_compatible_v<legacy_set>);

// Any non-default Compare breaks the agreement: reversed order,
// scrambled order — both must be rejected so the failure is a compile
// error naming the fix, not silent mis-sharding at runtime.
static_assert(
    !shard::router_order_compatible_v<nm_tree<long, std::greater<long>>>);
static_assert(
    !shard::router_order_compatible_v<nm_tree<long, scramble_less<long>>>);
static_assert(
    !shard::router_order_compatible_v<kary_tree<long, 8, std::greater<long>>>);

// The sanctioned composition routes in scrambled space *above* the
// router, so the inner tree keeps std::less and the trait is happy.
static_assert(shard::router_order_compatible_v<
              shard::sharded_set<nm_tree<long>>::tree_type>);

TEST(RouterCompat, DefaultOrderShardsStillRouteAndStitchCorrectly) {
  // Runtime smoke guarding the permissive arm: the combination the
  // trait admits really does place every key on the shard the router
  // names and stitch ordered scans across shards.
  shard::sharded_set<nm_tree<long>> s(8, 0, 4096);
  std::set<long> oracle;
  pcg32 rng(99u);
  for (int i = 0; i < 4000; ++i) {
    const long k = static_cast<long>(rng.bounded(4096));
    EXPECT_EQ(s.insert(k), oracle.insert(k).second);
  }
  EXPECT_EQ(s.validate(), "");
  EXPECT_EQ(s.size_slow(), oracle.size());
  const auto scanned = s.range_scan_closed(0, 4095);
  EXPECT_EQ(scanned, std::vector<long>(oracle.begin(), oracle.end()));
  // Spot-check placement agreement between router and shards.
  const auto& router = s.router();
  for (long k = 0; k < 4096; k += 97) {
    if (!oracle.count(k)) continue;
    EXPECT_TRUE(s.shard(router.shard_of(k)).contains(k)) << "key " << k;
  }
}

}  // namespace
}  // namespace lfbst
