// Tests for the Zipfian generator: bounds, determinism, monotone rank
// frequencies, skew sensitivity, and the uniform-ish limit.
#include "harness/zipf.hpp"

#include <gtest/gtest.h>

#include <array>
#include <set>
#include <vector>

#include "common/rng.hpp"

namespace lfbst::harness {
namespace {

TEST(Zipf, DrawsStayInRange) {
  zipf_generator z(1000, 0.9);
  pcg32 rng(1);
  for (int i = 0; i < 100'000; ++i) {
    EXPECT_LT(z(rng), 1000u);
  }
}

TEST(Zipf, DeterministicGivenRngSeed) {
  zipf_generator z(5000, 0.7);
  pcg32 a(9), b(9);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(z(a), z(b));
}

TEST(Zipf, RankZeroIsHottest) {
  zipf_generator z(10'000, 0.9);
  pcg32 rng(4);
  std::array<int, 4> counts{};  // ranks 0..3
  int total = 200'000;
  for (int i = 0; i < total; ++i) {
    const std::uint64_t r = z(rng);
    if (r < counts.size()) ++counts[r];
  }
  EXPECT_GT(counts[0], counts[1]);
  EXPECT_GT(counts[1], counts[2]);
  EXPECT_GT(counts[2], counts[3]);
  // Under theta=0.9, rank 0 draws several percent of all traffic.
  EXPECT_GT(counts[0], total / 50);
}

TEST(Zipf, HigherThetaMoreSkew) {
  pcg32 rng(5);
  auto hot_fraction = [&rng](double theta) {
    zipf_generator z(100'000, theta);
    int hot = 0;
    const int n = 100'000;
    for (int i = 0; i < n; ++i) hot += (z(rng) < 100) ? 1 : 0;
    return static_cast<double>(hot) / n;
  };
  const double mild = hot_fraction(0.5);
  const double heavy = hot_fraction(0.99);
  EXPECT_GT(heavy, 2 * mild);
}

TEST(Zipf, ThetaZeroIsNearUniform) {
  zipf_generator z(1000, 0.0);
  pcg32 rng(6);
  std::vector<int> buckets(10, 0);
  const int n = 200'000;
  for (int i = 0; i < n; ++i) ++buckets[z(rng) / 100];
  for (int b : buckets) {
    EXPECT_GT(b, n / 10 * 0.7);
    EXPECT_LT(b, n / 10 * 1.3);
  }
}

TEST(Zipf, ScrambleStaysInRangeAndSpreadsHotRanks) {
  // The multiplicative scramble is not a bijection (the product wraps
  // mod 2^64 before the mod-n), and does not need to be: the bench only
  // needs hot ranks scattered across the key space with few collisions.
  zipf_generator z(10'000, 0.9);
  std::set<std::uint64_t> hot_keys;
  std::uint64_t min_key = ~0ull, max_key = 0;
  for (std::uint64_t r = 0; r < 100; ++r) {
    const std::uint64_t k = z.scramble(r);
    ASSERT_LT(k, 10'000u);
    hot_keys.insert(k);
    min_key = std::min(min_key, k);
    max_key = std::max(max_key, k);
  }
  EXPECT_GE(hot_keys.size(), 95u);       // few collisions among hot ranks
  EXPECT_GT(max_key - min_key, 5'000u);  // spread over the key space
}

TEST(Zipf, WorksWithTinySpaces) {
  zipf_generator z(1, 0.9);
  pcg32 rng(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(z(rng), 0u);
  zipf_generator z2(2, 0.5);
  bool saw0 = false, saw1 = false;
  for (int i = 0; i < 1000; ++i) {
    const auto r = z2(rng);
    saw0 |= (r == 0);
    saw1 |= (r == 1);
  }
  EXPECT_TRUE(saw0);
  EXPECT_TRUE(saw1);
}

}  // namespace
}  // namespace lfbst::harness
