// Tests for the run-statistics helper used by the repeated-run modes of
// the benchmark harnesses.
#include "harness/statistics.hpp"

#include <gtest/gtest.h>

namespace lfbst::harness {
namespace {

TEST(Statistics, EmptyIsZero) {
  const run_stats s = summarize_runs({});
  EXPECT_EQ(s.runs, 0u);
  EXPECT_EQ(s.mean, 0.0);
  EXPECT_EQ(s.rel_spread(), 0.0);
}

TEST(Statistics, SingleSample) {
  const run_stats s = summarize_runs({5.0});
  EXPECT_EQ(s.runs, 1u);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.min, 5.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
}

TEST(Statistics, KnownValues) {
  const run_stats s = summarize_runs({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0,
                                      9.0});
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  // Sample stddev of this classic set: sqrt(32/7).
  EXPECT_NEAR(s.stddev, 2.13809, 1e-4);
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
  EXPECT_NEAR(s.rel_spread(), 2.13809 / 5.0, 1e-4);
}

TEST(Statistics, ConstantSamplesHaveZeroSpread) {
  const run_stats s = summarize_runs({3.0, 3.0, 3.0});
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.rel_spread(), 0.0);
}

TEST(Statistics, AggregateRunsCallsMeasureNTimes) {
  int calls = 0;
  const run_stats s = aggregate_runs(
      [&] {
        ++calls;
        return static_cast<double>(calls);
      },
      4);
  EXPECT_EQ(calls, 4);
  EXPECT_EQ(s.runs, 4u);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);  // 1+2+3+4 over 4
}

TEST(Statistics, WarmupIsDiscarded) {
  int calls = 0;
  const run_stats s = aggregate_runs(
      [&] {
        ++calls;
        return calls == 1 ? 1000.0 : 2.0;  // outlier warm-up
      },
      3, /*discard_warmup=*/true);
  EXPECT_EQ(calls, 4);
  EXPECT_DOUBLE_EQ(s.mean, 2.0);
}

}  // namespace
}  // namespace lfbst::harness
