// Tests for the measurement harness itself: mix arithmetic,
// pre-population, counter plumbing, determinism of workload streams, and
// the table formatter. A benchmark harness with a bug produces
// confident-looking garbage, so it gets the same testing as the trees.
#include <gtest/gtest.h>

#include <string>

#include "harness/algorithms.hpp"
#include "harness/runner.hpp"
#include "harness/table.hpp"
#include "harness/workload.hpp"
#include "lfbst/lfbst.hpp"

namespace lfbst::harness {
namespace {

TEST(Workload, PaperMixesSumTo100) {
  for (const op_mix& m : paper_mixes) {
    EXPECT_EQ(m.search_pct + m.insert_pct + m.erase_pct, 100u) << m.name;
  }
}

TEST(Workload, MixByNameRoundTrips) {
  EXPECT_EQ(mix_by_name("write-dominated").insert_pct, 50u);
  EXPECT_EQ(mix_by_name("mixed").search_pct, 70u);
  EXPECT_EQ(mix_by_name("read-dominated").search_pct, 90u);
  EXPECT_EQ(mix_by_name("nonsense").search_pct, mixed.search_pct);
}

TEST(Workload, LabelIsHumanReadable) {
  workload_config cfg;
  cfg.key_range = 1000;
  cfg.mix = write_dominated;
  cfg.threads = 8;
  EXPECT_NE(cfg.label().find("write-dominated"), std::string::npos);
  EXPECT_NE(cfg.label().find("1000"), std::string::npos);
  EXPECT_NE(cfg.label().find("8"), std::string::npos);
}

TEST(Runner, PrepopulateReachesHalfRange) {
  nm_tree<long> t;
  prepopulate_half(t, 1000, /*seed=*/1);
  EXPECT_EQ(t.size_slow(), 500u);
  EXPECT_EQ(t.validate(), "");
}

TEST(Runner, PrepopulateIsDeterministic) {
  nm_tree<long> a, b;
  prepopulate_half(a, 500, 7);
  prepopulate_half(b, 500, 7);
  std::vector<long> ka, kb;
  a.for_each_slow([&ka](long k) { ka.push_back(k); });
  b.for_each_slow([&kb](long k) { kb.push_back(k); });
  EXPECT_EQ(ka, kb);
}

TEST(Runner, CountsAddUp) {
  nm_tree<long> t;
  workload_config cfg;
  cfg.key_range = 1000;
  cfg.mix = mixed;
  cfg.threads = 2;
  cfg.duration = std::chrono::milliseconds(50);
  const run_result r = run_workload(t, cfg);
  EXPECT_EQ(r.total_ops, r.searches + r.inserts + r.erases);
  EXPECT_GT(r.total_ops, 0u);
  EXPECT_GT(r.elapsed_seconds, 0.0);
  EXPECT_GT(r.ops_per_second(), 0.0);
  EXPECT_LE(r.successful_inserts, r.inserts);
  EXPECT_LE(r.successful_erases, r.erases);
  EXPECT_EQ(t.validate(), "");
}

TEST(Runner, FinalSizeMatchesConservation) {
  nm_tree<long> t;
  workload_config cfg;
  cfg.key_range = 256;
  cfg.mix = write_dominated;
  cfg.threads = 4;
  cfg.duration = std::chrono::milliseconds(80);
  const run_result r = run_workload(t, cfg);
  // size = prepopulated + successful inserts - successful erases.
  const long expected = static_cast<long>(cfg.key_range / 2) +
                        static_cast<long>(r.successful_inserts) -
                        static_cast<long>(r.successful_erases);
  EXPECT_EQ(static_cast<long>(r.final_size), expected);
}

TEST(Runner, MixPercentagesAreRespected) {
  nm_tree<long> t;
  workload_config cfg;
  cfg.key_range = 1000;
  cfg.mix = read_dominated;  // 90/9/1
  cfg.threads = 2;
  cfg.duration = std::chrono::milliseconds(120);
  const run_result r = run_workload(t, cfg);
  const double search_frac =
      static_cast<double>(r.searches) / static_cast<double>(r.total_ops);
  const double erase_frac =
      static_cast<double>(r.erases) / static_cast<double>(r.total_ops);
  EXPECT_NEAR(search_frac, 0.90, 0.02);
  EXPECT_NEAR(erase_frac, 0.01, 0.01);
}

TEST(Runner, WriteDominatedDoesNoSearches) {
  nm_tree<long> t;
  workload_config cfg;
  cfg.key_range = 128;
  cfg.mix = write_dominated;
  cfg.threads = 1;
  cfg.duration = std::chrono::milliseconds(30);
  const run_result r = run_workload(t, cfg);
  EXPECT_EQ(r.searches, 0u);
  EXPECT_GT(r.inserts, 0u);
  EXPECT_GT(r.erases, 0u);
}

TEST(Runner, WorksAcrossAllAlgorithms) {
  workload_config cfg;
  cfg.key_range = 512;
  cfg.mix = mixed;
  cfg.threads = 2;
  cfg.duration = std::chrono::milliseconds(25);
  int count = 0;
  for_each_algorithm<long>([&]<typename Tree>() {
    Tree t;
    const run_result r = run_workload(t, cfg);
    EXPECT_GT(r.total_ops, 0u) << Tree::algorithm_name;
    EXPECT_EQ(t.validate(), "") << Tree::algorithm_name;
    ++count;
  });
  EXPECT_EQ(count, 7);
}

TEST(Runner, WorksAcrossShardedAlgorithms) {
  workload_config cfg;
  cfg.key_range = 512;
  cfg.mix = mixed;
  cfg.threads = 2;
  cfg.duration = std::chrono::milliseconds(25);
  int count = 0;
  for_each_sharded_algorithm<long>([&]<typename Set>() {
    Set set(/*shard_count=*/4, 0, static_cast<long>(cfg.key_range));
    const run_result r = run_workload(set, cfg);
    EXPECT_GT(r.total_ops, 0u) << Set::algorithm_name;
    EXPECT_EQ(set.validate(), "") << Set::algorithm_name;
    ++count;
  });
  EXPECT_EQ(count, 4);
}

TEST(Runner, ShardedConservationMatchesPlainTree) {
  shard::sharded_set<nm_tree<long>> set(8, 0, 256);
  workload_config cfg;
  cfg.key_range = 256;
  cfg.mix = uniform_50_25_25;
  cfg.threads = 4;
  cfg.duration = std::chrono::milliseconds(80);
  const run_result r = run_workload(set, cfg);
  const long expected = static_cast<long>(cfg.key_range / 2) +
                        static_cast<long>(r.successful_inserts) -
                        static_cast<long>(r.successful_erases);
  EXPECT_EQ(static_cast<long>(r.final_size), expected);
  EXPECT_EQ(set.validate(), "");
}

TEST(Table, AlignsAndEmitsCsv) {
  text_table tbl({"algo", "threads", "mops"});
  tbl.add_row({"NM-BST", "4", "1.23"});
  tbl.add_row({"EFRB-BST", "16", "0.98"});
  // Render into a memstream-like file.
  char buf[4096] = {};
  std::FILE* f = fmemopen(buf, sizeof(buf), "w");
  ASSERT_NE(f, nullptr);
  tbl.print(f);
  tbl.print_csv(f);
  std::fclose(f);
  const std::string out(buf);
  EXPECT_NE(out.find("NM-BST"), std::string::npos);
  EXPECT_NE(out.find("EFRB-BST"), std::string::npos);
  EXPECT_NE(out.find("algo,threads,mops"), std::string::npos);
  EXPECT_NE(out.find("NM-BST,4,1.23"), std::string::npos);
}

TEST(Table, FormatHelper) {
  EXPECT_EQ(format("%.2f", 1.234), "1.23");
  EXPECT_EQ(format("%s/%d", "x", 7), "x/7");
}

}  // namespace
}  // namespace lfbst::harness
