// Tests for the reproduction binaries' flag parser — measurement
// harnesses that silently mis-parse their parameters produce
// wrong-but-plausible numbers, so the parser is tested like everything
// else.
#include "harness/flags.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace lfbst::bench {
namespace {

flags make(std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  return flags(static_cast<int>(args.size()),
               const_cast<char**>(args.data()));
}

TEST(Flags, HasDetectsBareAndAssignedForms) {
  EXPECT_TRUE(make({"--full"}).has("full"));
  EXPECT_TRUE(make({"--millis=5"}).has("millis"));
  EXPECT_FALSE(make({"--full"}).has("millis"));
  EXPECT_FALSE(make({}).has("full"));
}

TEST(Flags, GetSupportsBothSyntaxes) {
  EXPECT_EQ(make({"--algo=nm"}).get("algo", "x"), "nm");
  EXPECT_EQ(make({"--algo", "efrb"}).get("algo", "x"), "efrb");
  EXPECT_EQ(make({}).get("algo", "fallback"), "fallback");
}

TEST(Flags, GetIntParsesAndFallsBack) {
  EXPECT_EQ(make({"--millis=250"}).get_int("millis", 9), 250);
  EXPECT_EQ(make({"--millis", "42"}).get_int("millis", 9), 42);
  EXPECT_EQ(make({}).get_int("millis", 9), 9);
  EXPECT_EQ(make({"--millis=-3"}).get_int("millis", 9), -3);
}

TEST(Flags, GetIntListParsesCommaSeparated) {
  const auto v = make({"--threads=1,2,4,8"}).get_int_list("threads", {7});
  EXPECT_EQ(v, (std::vector<std::int64_t>{1, 2, 4, 8}));
}

TEST(Flags, GetIntListSingleElement) {
  const auto v = make({"--threads=16"}).get_int_list("threads", {7});
  EXPECT_EQ(v, (std::vector<std::int64_t>{16}));
}

TEST(Flags, GetIntListFallsBack) {
  const auto v = make({}).get_int_list("threads", {1, 2});
  EXPECT_EQ(v, (std::vector<std::int64_t>{1, 2}));
}

TEST(Flags, PrefixNamesDoNotCollide) {
  // --keyrange must not match --key, and vice versa.
  const flags f = make({"--keyrange=100"});
  EXPECT_FALSE(f.has("key"));
  EXPECT_EQ(f.get_int("keyrange", 0), 100);
}

TEST(Flags, LastOfRepeatedFlagsIsUsedDeterministically) {
  // Documented behaviour: first occurrence wins (scan order).
  const flags f = make({"--millis=1", "--millis=2"});
  EXPECT_EQ(f.get_int("millis", 0), 1);
}

}  // namespace
}  // namespace lfbst::bench
