// Pins the live-telemetry plane (obs/telemetry.hpp, obs/heatmap.hpp;
// docs/TELEMETRY.md): the seqlock window ring's publish/read protocol,
// the sampler's window algebra against a workload of known size, shard
// shares summing to one, heatmap attribution through the recording
// policy's on_op_key hook, the Prometheus rendering, and the flight
// recorder's time-windowed dump. The concurrent cases (scraping and
// sampling while writers run) are part of the TSan suite.
#include "obs/telemetry.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "core/natarajan_tree.hpp"
#include "obs/heatmap.hpp"
#include "obs/metrics.hpp"
#include "obs/prometheus.hpp"
#include "obs/trace.hpp"
#include "shard/sharded_set.hpp"

namespace lfbst::obs {
namespace {

using set_type = shard::sharded_set<
    nm_tree<std::int64_t, std::less<std::int64_t>, reclaim::epoch,
            recording>>;

telemetry_window make_window(std::uint64_t seq) {
  telemetry_window w;
  w.seq = seq;
  w.t0_ns = seq * 100;
  w.t1_ns = seq * 100 + 100;
  w.shard_count = 4;
  for (std::size_t c = 0; c < counter_count; ++c) {
    w.delta.values[c] = seq + c;
  }
  for (std::size_t s = 0; s < 4; ++s) w.shard_ops[s] = seq * 10 + s;
  w.lat_p50_ns = seq + 1;
  w.lat_p99_ns = seq + 2;
  w.seek_p50 = seq + 3;
  w.seek_p99 = seq + 4;
  return w;
}

TEST(TelemetryRing, PublishReadRoundTrip) {
  telemetry_ring ring;
  telemetry_window out;
  EXPECT_FALSE(ring.latest(out)) << "nothing published yet";
  EXPECT_EQ(ring.published(), 0u);

  const telemetry_window w = make_window(0);
  ring.publish(w);
  EXPECT_EQ(ring.published(), 1u);
  ASSERT_TRUE(ring.read(0, out));
  EXPECT_EQ(out.seq, w.seq);
  EXPECT_EQ(out.t0_ns, w.t0_ns);
  EXPECT_EQ(out.t1_ns, w.t1_ns);
  EXPECT_EQ(out.shard_count, w.shard_count);
  EXPECT_EQ(out.delta.values, w.delta.values);
  EXPECT_EQ(out.shard_ops, w.shard_ops);
  EXPECT_EQ(out.lat_p50_ns, w.lat_p50_ns);
  EXPECT_EQ(out.lat_p99_ns, w.lat_p99_ns);
  EXPECT_EQ(out.seek_p50, w.seek_p50);
  EXPECT_EQ(out.seek_p99, w.seek_p99);
}

TEST(TelemetryRing, WrapRetainsOnlyLastCapacityWindows) {
  telemetry_ring ring;
  const std::uint64_t total = 3 * telemetry_ring::capacity + 5;
  for (std::uint64_t s = 0; s < total; ++s) ring.publish(make_window(s));
  EXPECT_EQ(ring.published(), total);

  telemetry_window out;
  // Overwritten windows refuse to read...
  EXPECT_FALSE(ring.read(0, out));
  EXPECT_FALSE(ring.read(total - telemetry_ring::capacity - 1, out));
  // ...retained ones read back exactly.
  for (std::uint64_t s = total - telemetry_ring::capacity; s < total; ++s) {
    ASSERT_TRUE(ring.read(s, out)) << "seq " << s;
    EXPECT_EQ(out.t0_ns, s * 100);
  }
  ASSERT_TRUE(ring.latest(out));
  EXPECT_EQ(out.seq, total - 1);
}

TEST(TelemetryRing, ConcurrentReadersNeverSeeTornWindows) {
  // The seqlock invariant: whatever a reader successfully returns must
  // be one of the windows the writer actually published — the
  // per-window checksum relation (shard_ops derived from seq) holds.
  telemetry_ring ring;
  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  std::atomic<std::uint64_t> good_reads{0};
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      telemetry_window out;
      while (!stop.load(std::memory_order_relaxed)) {
        if (!ring.latest(out)) continue;
        // Every field of a valid window is derived from its seq.
        ASSERT_EQ(out.t0_ns, out.seq * 100);
        ASSERT_EQ(out.t1_ns, out.seq * 100 + 100);
        ASSERT_EQ(out.lat_p50_ns, out.seq + 1);
        ASSERT_EQ(out.shard_ops[3], out.seq * 10 + 3);
        good_reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::uint64_t s = 0; s < 50'000; ++s) ring.publish(make_window(s));
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : readers) t.join();
  EXPECT_GT(good_reads.load(), 0u);
}

TEST(Sampler, WindowDeltaMatchesExecutedOps) {
  set_type set(4, 0, 1 << 16);
  sampler<set_type> smp(set);  // baseline primed at construction

  constexpr std::uint64_t inserts = 500, searches = 300, erases = 100;
  for (std::uint64_t i = 0; i < inserts; ++i) {
    set.insert(static_cast<std::int64_t>(i * 13 % (1 << 16)));
  }
  for (std::uint64_t i = 0; i < searches; ++i) {
    (void)set.contains(static_cast<std::int64_t>(i));
  }
  for (std::uint64_t i = 0; i < erases; ++i) {
    (void)set.erase(static_cast<std::int64_t>(i * 13 % (1 << 16)));
  }
  smp.sample_now();

  telemetry_window w;
  ASSERT_TRUE(smp.latest(w));
  EXPECT_EQ(w.delta.values[static_cast<std::size_t>(counter::ops_insert)],
            inserts);
  EXPECT_EQ(w.delta.values[static_cast<std::size_t>(counter::ops_search)],
            searches);
  EXPECT_EQ(w.delta.values[static_cast<std::size_t>(counter::ops_erase)],
            erases);
  EXPECT_EQ(w.point_ops(), inserts + searches + erases);
  EXPECT_GT(w.t1_ns, w.t0_ns);
  EXPECT_GT(w.ops_per_sec(), 0.0);
  // Single-threaded windows have real latency samples too.
  EXPECT_GT(w.lat_p99_ns, 0u);
  EXPECT_GE(w.lat_p99_ns, w.lat_p50_ns);
  EXPECT_GE(w.seek_p99, w.seek_p50);

  // The per-shard deltas decompose the total and the shares sum to 1.
  ASSERT_EQ(w.shard_count, 4u);
  std::uint64_t shard_sum = 0;
  double share_sum = 0.0;
  for (std::size_t s = 0; s < w.shard_count; ++s) {
    shard_sum += w.shard_ops[s];
    share_sum += w.shard_share(s);
  }
  EXPECT_EQ(shard_sum, w.point_ops());
  EXPECT_NEAR(share_sum, 1.0, 1e-9);
  EXPECT_GE(w.max_shard_share(), 1.0 / 4);
  EXPECT_LE(w.max_shard_share(), 1.0);

  // A quiet second window: deltas are rates, so they drop back to zero.
  smp.sample_now();
  ASSERT_TRUE(smp.latest(w));
  EXPECT_EQ(w.point_ops(), 0u);
  EXPECT_EQ(smp.windows_published(), 2u);
}

TEST(Sampler, BackgroundThreadPublishesWindows) {
  set_type set(2, 0, 1 << 12);
  telemetry_options opts;
  opts.interval_ms = 5;
  sampler<set_type> smp(set, opts);
  smp.start();
  pcg32 rng(3);
  const auto deadline = trace_log::now_ns() + 2'000'000'000ull;
  while (smp.windows_published() < 3 && trace_log::now_ns() < deadline) {
    (void)set.insert(static_cast<std::int64_t>(rng.bounded(1 << 12)));
  }
  smp.stop();  // publishes one final window
  EXPECT_GE(smp.windows_published(), 3u);
  telemetry_window w;
  EXPECT_TRUE(smp.latest(w));
}

TEST(Heatmap, AttributesKeysToBuckets) {
  // shift 0 = record every op: attribution is exact.
  key_heatmap hm(0, 6400, /*sample_shift=*/0);
  EXPECT_EQ(hm.ops_per_sample(), 1u);
  for (std::int64_t k = 0; k < 100; ++k) hm.record(k);  // bucket 0
  for (std::int64_t k = 0; k < 50; ++k) hm.record(6399);  // top bucket
  EXPECT_EQ(hm.samples(), 150u);
  EXPECT_EQ(hm.bucket(0), 100u);
  EXPECT_EQ(hm.bucket(key_heatmap::bucket_count - 1), 50u);
  // Out-of-range keys clamp to the top bucket instead of vanishing.
  hm.record(1 << 20);
  hm.record(-5);
  EXPECT_EQ(hm.bucket(key_heatmap::bucket_count - 1), 52u);
  EXPECT_EQ(hm.bucket_lo(0), 0);
  EXPECT_LE(hm.bucket_lo(1), 6400 / 64 + 1);
  hm.reset();
  EXPECT_EQ(hm.samples(), 0u);
}

TEST(Heatmap, RecordingPolicyFeedsAttachedHeatmap) {
  // The full hook chain: tree op -> note_key -> recording::on_op_key ->
  // heatmap. Exact with shift 0.
  key_heatmap hm(0, 1 << 12, /*sample_shift=*/0);
  set_type set(2, 0, 1 << 12);
  set.for_each_shard_stats(
      [&](recording& st) { st.attach_heatmap(&hm); });
  constexpr std::uint64_t ops = 400;
  for (std::uint64_t i = 0; i < ops; ++i) {
    (void)set.insert(static_cast<std::int64_t>(i % (1 << 12)));
  }
  EXPECT_EQ(hm.samples(), ops);
  std::uint64_t across = 0;
  for (std::size_t b = 0; b < key_heatmap::bucket_count; ++b) {
    across += hm.bucket(b);
  }
  EXPECT_EQ(across, ops);
  set.for_each_shard_stats(
      [&](recording& st) { st.attach_heatmap(nullptr); });
  (void)set.insert(1);
  EXPECT_EQ(hm.samples(), ops) << "detached heatmap must stop recording";
}

TEST(Sampler, PrometheusTextCarriesTheFamilySet) {
  set_type set(2, 0, 1 << 12);
  key_heatmap hm(0, 1 << 12, 0);
  set.for_each_shard_stats(
      [&](recording& st) { st.attach_heatmap(&hm); });
  sampler<set_type> smp(set);
  smp.attach_heatmap(&hm);
  for (std::int64_t k = 0; k < 200; ++k) (void)set.insert(k);
  smp.sample_now();

  const std::string text = smp.prometheus_text();
  for (const char* needle :
       {"# TYPE lfbst_ops_insert_total counter",
        "lfbst_ops_search_total", "lfbst_ops_erase_total",
        "lfbst_shard_ops_total{shard=\"0\"}",
        "lfbst_windows_published_total 1",
        "lfbst_window_ops 200", "lfbst_window_ops_per_sec",
        "lfbst_shard_share{shard=\"1\"}", "lfbst_shard_share_max",
        "lfbst_latency_window_ns{quantile=\"0.5\"}",
        "lfbst_latency_window_ns{quantile=\"0.99\"}",
        "lfbst_seek_depth_window{quantile=\"0.5\"}",
        "lfbst_heatmap_samples_total 200",
        "lfbst_heatmap_ops_total{bucket=\"0\",lo=\"0\"}",
        "lfbst_flight_dumps_total 0"}) {
    EXPECT_NE(text.find(needle), std::string::npos)
        << "missing: " << needle << "\n"
        << text;
  }
}

TEST(TraceLog, MinTimestampFilterCutsOldEvents) {
  trace_log log(1 << 8);
  log.emit(event_type::cas_fail, 1);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  const std::uint64_t cut = trace_log::now_ns();
  log.emit(event_type::bts, 2);
  const std::string all = log.chrome_trace_json();
  const std::string recent = log.chrome_trace_json(cut);
  EXPECT_NE(all.find("cas_fail"), std::string::npos);
  EXPECT_NE(all.find("bts"), std::string::npos);
  EXPECT_EQ(recent.find("cas_fail"), std::string::npos)
      << "pre-cut event must be filtered";
  EXPECT_NE(recent.find("bts"), std::string::npos);
}

TEST(Sampler, FlightDumpWritesWindowedTraceFile) {
  set_type set(2, 0, 1 << 12);
  trace_log flight(1 << 10);
  set.for_each_shard_stats(
      [&](recording& st) { st.attach_trace(&flight); });
  const std::string path =
      ::testing::TempDir() + "lfbst_telemetry_flight.json";
  telemetry_options opts;
  opts.flight_path = path;
  opts.flight_window_ms = 60'000;  // keep everything this test emits
  sampler<set_type> smp(set, opts);
  smp.attach_flight_recorder(&flight);

  for (std::int64_t k = 0; k < 100; ++k) (void)set.insert(k);
  EXPECT_EQ(smp.flight_dumps(), 0u);
  smp.request_flight_dump();
  smp.sample_now();  // services the request synchronously
  EXPECT_EQ(smp.flight_dumps(), 1u);

  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr) << "dump file missing: " << path;
  std::string body;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) body.append(buf, n);
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_NE(body.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(body.find("\"ph\":\"B\""), std::string::npos)
      << "expected op spans from the recording hooks";
  EXPECT_EQ(body.back(), '}');
}

TEST(Sampler, ConcurrentScrapeWhileSamplingAndWriting) {
  // The TSan target: writers mutate, the sampler ticks, and a scraper
  // renders concurrently. Nothing to assert beyond "no race, valid
  // text" — the seqlock and racy-monotone reads carry the proof.
  set_type set(4, 0, 1 << 14);
  key_heatmap hm(0, 1 << 14);
  trace_log flight(1 << 8);
  set.for_each_shard_stats([&](recording& st) {
    st.attach_heatmap(&hm);
    st.attach_trace(&flight);
  });
  telemetry_options opts;
  opts.interval_ms = 2;
  sampler<set_type> smp(set, opts);
  smp.attach_heatmap(&hm);
  smp.attach_flight_recorder(&flight);
  smp.start();

  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 2; ++t) {
    writers.emplace_back([&, t] {
      pcg32 rng(static_cast<std::uint64_t>(t) + 17);
      while (!stop.load(std::memory_order_relaxed)) {
        const auto k = static_cast<std::int64_t>(rng.bounded(1 << 14));
        if (rng.bounded(2) == 0) {
          (void)set.insert(k);
        } else {
          (void)set.erase(k);
        }
      }
    });
  }
  std::thread scraper([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const std::string text = smp.prometheus_text();
      ASSERT_NE(text.find("lfbst_window_ops"), std::string::npos);
    }
  });
  smp.request_flight_dump();
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  stop.store(true, std::memory_order_relaxed);
  for (auto& w : writers) w.join();
  scraper.join();
  smp.stop();
  EXPECT_GT(smp.windows_published(), 0u);
  std::remove(smp.flight_path().c_str());
}

}  // namespace
}  // namespace lfbst::obs
