// Tests for the JSON DOM (dump/parse round-trips, escaping, error
// handling) and the bench export helpers that define the
// "lfbst-bench-v1" schema consumed by tools/check_bench_json.py and
// tools/plot_figure4.py.
#include "obs/export.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/histogram.hpp"
#include "obs/metrics.hpp"

namespace lfbst::obs {
namespace {

TEST(Json, ScalarDump) {
  EXPECT_EQ(json::value(nullptr).dump(), "null");
  EXPECT_EQ(json::value(true).dump(), "true");
  EXPECT_EQ(json::value(false).dump(), "false");
  EXPECT_EQ(json::value(42).dump(), "42");
  EXPECT_EQ(json::value(std::int64_t{-7}).dump(), "-7");
  EXPECT_EQ(json::value("hi").dump(), "\"hi\"");
  EXPECT_EQ(json::value(1.5).dump(), "1.5");
}

TEST(Json, ObjectKeysKeepInsertionOrder) {
  json::value obj = json::value::object();
  obj.set("zebra", 1);
  obj.set("alpha", 2);
  obj.set("mid", 3);
  EXPECT_EQ(obj.dump(), "{\"zebra\":1,\"alpha\":2,\"mid\":3}");
  obj.set("alpha", 9);  // overwrite keeps position
  EXPECT_EQ(obj.dump(), "{\"zebra\":1,\"alpha\":9,\"mid\":3}");
}

TEST(Json, RoundTripNestedDocument) {
  json::value doc = json::value::object();
  doc.set("name", "lfbst");
  doc.set("count", std::int64_t{123456789012345});
  doc.set("ratio", 0.125);
  doc.set("ok", true);
  doc.set("nothing", nullptr);
  json::value arr = json::value::array();
  arr.push_back(1);
  arr.push_back("two");
  json::value inner = json::value::object();
  inner.set("deep", -1);
  arr.push_back(std::move(inner));
  doc.set("items", std::move(arr));

  for (int indent : {0, 2}) {
    const std::string text = doc.dump(indent);
    const json::value parsed = json::value::parse(text);
    EXPECT_EQ(parsed.at("name").as_string(), "lfbst");
    EXPECT_EQ(parsed.at("count").as_int(), 123456789012345);
    EXPECT_EQ(parsed.at("ratio").as_double(), 0.125);
    EXPECT_TRUE(parsed.at("ok").as_bool());
    EXPECT_TRUE(parsed.at("nothing").is_null());
    const json::value& items = parsed.at("items");
    ASSERT_EQ(items.size(), 3u);
    EXPECT_EQ(items[0].as_int(), 1);
    EXPECT_EQ(items[1].as_string(), "two");
    EXPECT_EQ(items[2].at("deep").as_int(), -1);
    // Dump of the parse equals the compact dump: a full fixpoint.
    EXPECT_EQ(parsed.dump(), doc.dump());
  }
}

TEST(Json, StringEscapingRoundTrips) {
  const std::string nasty = "quote\" backslash\\ newline\n tab\t ctrl\x01";
  const json::value v(nasty);
  const std::string text = v.dump();
  EXPECT_EQ(json::value::parse(text).as_string(), nasty);
  EXPECT_NE(text.find("\\u0001"), std::string::npos);
}

TEST(Json, ParseRejectsGarbage) {
  EXPECT_THROW((void)json::value::parse(""), std::runtime_error);
  EXPECT_THROW((void)json::value::parse("{"), std::runtime_error);
  EXPECT_THROW((void)json::value::parse("{\"a\":1} extra"),
               std::runtime_error);
  EXPECT_THROW((void)json::value::parse("[1,]"), std::runtime_error);
  EXPECT_THROW((void)json::value::parse("nul"), std::runtime_error);
  EXPECT_THROW((void)json::value::parse("\"unterminated"),
               std::runtime_error);
}

TEST(Json, AtThrowsOnMissingKey) {
  json::value obj = json::value::object();
  obj.set("present", 1);
  EXPECT_TRUE(obj.contains("present"));
  EXPECT_FALSE(obj.contains("absent"));
  EXPECT_THROW((void)obj.at("absent"), std::out_of_range);
}

TEST(Export, HistogramToJsonCarriesPercentileLadder) {
  histogram h;
  for (std::uint64_t v = 1; v <= 100; ++v) h.record(v);
  const json::value j = histogram_to_json(h);
  EXPECT_EQ(j.at("count").as_uint(), 100u);
  EXPECT_EQ(j.at("min").as_uint(), 1u);
  EXPECT_EQ(j.at("max").as_uint(), 100u);
  EXPECT_EQ(j.at("p50").as_uint(), 50u);  // exact below 64
  EXPECT_GE(j.at("p99").as_uint(), 99u);
  EXPECT_GE(j.at("p999").as_uint(), j.at("p99").as_uint());
  EXPECT_DOUBLE_EQ(j.at("mean").as_double(), 50.5);
}

TEST(Export, MetricsToJsonUsesStableCounterNames) {
  metrics m;
  m.add(counter::cas, 3);
  m.add(counter::helps_tagged, 2);
  const json::value j = metrics_to_json(m);
  EXPECT_EQ(j.at("cas").as_uint(), 3u);
  EXPECT_EQ(j.at("helps_tagged").as_uint(), 2u);
  EXPECT_EQ(j.at("ops_search").as_uint(), 0u);
  EXPECT_EQ(j.members().size(), counter_count);
}

TEST(Export, SnapshotToJsonRoundTrips) {
  recording rec;
  rec.on_op_begin(stats::op_kind::insert);
  rec.on_cas();
  rec.on_op_end(stats::op_kind::insert, true);
  rec.on_seek(5);
  const json::value j = snapshot_to_json(rec);
  const json::value back = json::value::parse(j.dump(2));
  EXPECT_EQ(back.at("counters").at("ops_insert").as_uint(), 1u);
  EXPECT_EQ(back.at("counters").at("cas").as_uint(), 1u);
  EXPECT_EQ(back.at("latency_ns").at("insert").at("count").as_uint(), 1u);
  EXPECT_EQ(back.at("latency_ns").at("erase").at("count").as_uint(), 0u);
  EXPECT_EQ(back.at("seek_depth").at("p50").as_uint(), 5u);
}

TEST(Export, BenchReportMatchesSchema) {
  bench_report report("unit_test");
  report.config.set("threads", 4);
  report.config.set("workload", "mixed");
  json::value row = json::value::object();
  row.set("algorithm", "NM-BST");
  row.set("mops_per_sec", 12.5);
  report.add_result(std::move(row));

  const json::value doc = report.to_json();
  EXPECT_EQ(doc.at("schema").as_string(), "lfbst-bench-v1");
  EXPECT_EQ(doc.at("bench").as_string(), "unit_test");
  EXPECT_EQ(doc.at("config").at("threads").as_int(), 4);
  ASSERT_EQ(doc.at("results").size(), 1u);
  EXPECT_EQ(doc.at("results")[0].at("algorithm").as_string(), "NM-BST");
  // Round-trips through the parser (what check_bench_json.py loads).
  const json::value back = json::value::parse(doc.dump(2));
  EXPECT_EQ(back.at("results")[0].at("mops_per_sec").as_double(), 12.5);
}

TEST(Export, RowsFromTableCoercesNumbers) {
  const std::vector<std::string> header{"algorithm", "threads", "mops",
                                        "ratio"};
  const std::vector<std::vector<std::string>> rows{
      {"NM-BST", "4", "12.375", "1.20x"},
      {"EFRB-BST", "8", "9.5", "-"},
  };
  const json::value out = rows_from_table(header, rows);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].at("algorithm").as_string(), "NM-BST");
  EXPECT_EQ(out[0].at("threads").as_int(), 4);  // integer, not string
  EXPECT_EQ(out[0].at("mops").as_double(), 12.375);
  // "1.20x" is not fully numeric: stays a string.
  EXPECT_EQ(out[0].at("ratio").as_string(), "1.20x");
  EXPECT_EQ(out[1].at("ratio").as_string(), "-");
}

TEST(Export, RowsFromTableIgnoresRaggedTail) {
  const std::vector<std::string> header{"a", "b"};
  const std::vector<std::vector<std::string>> rows{{"1", "2", "extra"},
                                                   {"3"}};
  const json::value out = rows_from_table(header, rows);
  EXPECT_EQ(out[0].members().size(), 2u);
  EXPECT_EQ(out[1].members().size(), 1u);
  EXPECT_EQ(out[1].at("a").as_int(), 3);
}

}  // namespace
}  // namespace lfbst::obs
