// Tests for the lock-free trace rings: bounded memory with an
// oldest-overwritten policy and an honest drop counter, concurrent
// emitters, the recording-policy mirror, the process-global sink, and
// Chrome trace_event JSON output that parses cleanly.
#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "common/barrier.hpp"
#include "core/natarajan_tree.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"

namespace lfbst::obs {
namespace {

TEST(TraceLog, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(trace_log(1).capacity_per_thread(), 1u);
  EXPECT_EQ(trace_log(3).capacity_per_thread(), 4u);
  EXPECT_EQ(trace_log(16).capacity_per_thread(), 16u);
  EXPECT_EQ(trace_log(1000).capacity_per_thread(), 1024u);
}

TEST(TraceLog, RecordsEventsInOrder) {
  trace_log log(64);
  for (std::uint32_t i = 0; i < 10; ++i) {
    log.emit(event_type::cas_fail, i, static_cast<std::uint16_t>(i * 2));
  }
  EXPECT_EQ(log.recorded(), 10u);
  EXPECT_EQ(log.dropped(), 0u);
  std::vector<trace_event> seen;
  log.for_each_event(
      [&](unsigned, const trace_event& ev) { seen.push_back(ev); });
  ASSERT_EQ(seen.size(), 10u);
  std::uint64_t prev_ts = 0;
  for (std::uint32_t i = 0; i < 10; ++i) {
    EXPECT_EQ(seen[i].arg, i);
    EXPECT_EQ(seen[i].aux, i * 2);
    EXPECT_EQ(seen[i].type,
              static_cast<std::uint16_t>(event_type::cas_fail));
    EXPECT_GE(seen[i].ts_ns, prev_ts);
    prev_ts = seen[i].ts_ns;
  }
}

TEST(TraceLog, OverflowDropsOldestAndCountsDrops) {
  trace_log log(16);
  constexpr std::uint32_t kEmitted = 40;
  for (std::uint32_t i = 0; i < kEmitted; ++i) {
    log.emit(event_type::help, i);
  }
  EXPECT_EQ(log.recorded(), kEmitted);
  EXPECT_EQ(log.dropped(), kEmitted - 16);
  // The retained window is exactly the newest 16 events, oldest first.
  std::vector<std::uint32_t> args;
  log.for_each_event(
      [&](unsigned, const trace_event& ev) { args.push_back(ev.arg); });
  ASSERT_EQ(args.size(), 16u);
  for (std::uint32_t i = 0; i < 16; ++i) {
    EXPECT_EQ(args[i], kEmitted - 16 + i);
  }
}

TEST(TraceLog, ClearResets) {
  trace_log log(16);
  log.emit(event_type::bts);
  log.clear();
  EXPECT_EQ(log.recorded(), 0u);
  int n = 0;
  log.for_each_event([&](unsigned, const trace_event&) { ++n; });
  EXPECT_EQ(n, 0);
}

TEST(TraceLog, ConcurrentEmittersKeepPerThreadStreams) {
  trace_log log(1 << 12);
  constexpr unsigned kThreads = 4;
  constexpr std::uint32_t kPerThread = 2'000;
  // Thread slots are recycled on thread exit, so on a small machine a
  // thread that finishes early could exit and hand its ring to the next
  // emitter, overflowing it. The exit barrier keeps every thread alive
  // (slot held) until all emitting is done, pinning one ring per thread.
  spin_barrier barrier(kThreads);
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&log, &barrier] {
      barrier.arrive_and_wait();
      for (std::uint32_t i = 0; i < kPerThread; ++i) {
        log.emit(event_type::cleanup, i);
      }
      barrier.arrive_and_wait();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(log.recorded(), kThreads * kPerThread);
  EXPECT_EQ(log.dropped(), 0u);
  // Per ring slot, events arrive in emission order (single writer).
  std::uint32_t streams_checked = 0;
  std::uint32_t expected = 0;
  unsigned current_slot = ~0u;
  log.for_each_event([&](unsigned slot, const trace_event& ev) {
    if (slot != current_slot) {
      current_slot = slot;
      expected = 0;
      ++streams_checked;
    }
    EXPECT_EQ(ev.arg, expected++);
  });
  EXPECT_EQ(streams_checked, kThreads);
}

TEST(TraceLog, ChromeJsonParsesAndPairsDurations) {
  trace_log log(64);
  log.emit(event_type::op_begin, 0, 1);  // insert
  log.emit(event_type::cas_fail, 0);
  log.emit(event_type::op_end, 1, 1);
  const std::string doc = log.chrome_trace_json();
  // The hand-rolled exporter must produce valid JSON (pinned with the
  // obs JSON parser) in Chrome trace_event shape.
  const json::value parsed = json::value::parse(doc);
  ASSERT_TRUE(parsed.is_object());
  EXPECT_EQ(parsed.at("displayTimeUnit").as_string(), "ns");
  const json::value& events = parsed.at("traceEvents");
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].at("ph").as_string(), "B");
  EXPECT_EQ(events[0].at("name").as_string(), "insert");
  EXPECT_EQ(events[1].at("ph").as_string(), "i");
  EXPECT_EQ(events[1].at("name").as_string(), "cas_fail");
  EXPECT_EQ(events[2].at("ph").as_string(), "E");
  for (const json::value& ev : events.items()) {
    EXPECT_TRUE(ev.contains("ts"));
    EXPECT_TRUE(ev.contains("pid"));
    EXPECT_TRUE(ev.contains("tid"));
  }
}

TEST(TraceLog, EmptyChromeJsonIsValid) {
  trace_log log(16);
  const json::value parsed = json::value::parse(log.chrome_trace_json());
  EXPECT_EQ(parsed.at("traceEvents").size(), 0u);
}

TEST(GlobalSink, RoutesOnlyWhenAttached) {
  emit_global(event_type::epoch_advance, 1);  // no sink: must be a no-op
  trace_log log(16);
  set_global_trace_sink(&log);
  emit_global(event_type::epoch_advance, 2);
  emit_global(event_type::hazard_scan, 3);
  set_global_trace_sink(nullptr);
  emit_global(event_type::pool_refill, 4);  // detached again
  EXPECT_EQ(log.recorded(), 2u);
  std::vector<std::uint32_t> args;
  log.for_each_event(
      [&](unsigned, const trace_event& ev) { args.push_back(ev.arg); });
  EXPECT_EQ(args, (std::vector<std::uint32_t>{2, 3}));
}

TEST(RecordingMirror, TreeEventsLandInAttachedLog) {
  nm_tree<long, std::less<long>, reclaim::leaky, recording> tree;
  trace_log log(1 << 10);
  tree.stats().attach_trace(&log);
  tree.insert(1);
  tree.insert(2);
  tree.erase(1);
  tree.stats().attach_trace(nullptr);
  tree.insert(3);  // detached: not traced
  // 3 traced ops -> 3 op_begin + 3 op_end, plus protocol events
  // (cleanup, excision) from the erase.
  std::uint64_t begins = 0, ends = 0, cleanups = 0, excisions = 0;
  log.for_each_event([&](unsigned, const trace_event& ev) {
    switch (static_cast<event_type>(ev.type)) {
      case event_type::op_begin: ++begins; break;
      case event_type::op_end: ++ends; break;
      case event_type::cleanup: ++cleanups; break;
      case event_type::excision: ++excisions; break;
      default: break;
    }
  });
  EXPECT_EQ(begins, 3u);
  EXPECT_EQ(ends, 3u);
  EXPECT_GE(cleanups, 1u);
  EXPECT_EQ(excisions, 1u);
}

}  // namespace
}  // namespace lfbst::obs
